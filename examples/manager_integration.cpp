// The paper's running example (Examples 1-3), end to end: integrating
// three consistent sources produces an inconsistent Mgr relation; data
// cleaning with partial reliability information leaves it inconsistent
// and answers Q2 incorrectly; preference-driven consistent query
// answering returns the intended answer.
//
// Run: ./manager_integration

#include <cstdio>
#include <string>

#include "cleaning/cleaning.h"
#include "cqa/cqa.h"
#include "query/parser.h"
#include "workload/generators.h"

using namespace prefrep;

namespace {

void PrintVerdict(const char* label, CqaVerdict verdict) {
  std::printf("%-46s %s\n", label, std::string(CqaVerdictName(verdict)).c_str());
}

}  // namespace

int main() {
  MgrScenario s = MakeMgrScenario();
  std::printf("== Example 1: integrated database r = s1 ∪ s2 ∪ s3 ==\n");
  for (TupleId id = 0; id < s.db->tuple_count(); ++id) {
    std::printf("  %s\n", s.db->DescribeTuple(id).c_str());
  }

  auto problem = RepairProblem::Create(s.db.get(), s.fds);
  CHECK(problem.ok());
  std::printf("\nFDs: Dept -> Name Salary Reports ; Name -> Dept Salary "
              "Reports\nconflicts: %d\n",
              problem->graph().edge_count());

  auto q1 = ParseQuery(
      "exists x1,y1,z1,x2,y2,z2 . Mgr(Mary,x1,y1,z1) and "
      "Mgr(John,x2,y2,z2) and y1 < y2");
  auto q2 = ParseQuery(
      "exists x1,y1,z1,x2,y2,z2 . Mgr(Mary,x1,y1,z1) and "
      "Mgr(John,x2,y2,z2) and y1 > y2 and z1 < z2");
  CHECK(q1.ok() && q2.ok());

  auto q1_in_r = EvalClosed(*s.db, nullptr, **q1);
  std::printf("\nQ1 (John earns more than Mary) in r: %s  <- misleading!\n",
              *q1_in_r ? "true" : "false");

  std::printf("\n== Example 2: repairs of r ==\n");
  problem->EnumerateRepairs([&](const DynamicBitset& repair) {
    std::printf("  repair:");
    ForEachSetBit(repair, [&](int id) {
      std::printf(" %s", s.db->TupleOf(id).ToString().c_str());
    });
    std::printf("\n");
    return true;
  });
  Priority empty = Priority::Empty(problem->graph());
  PrintVerdict("Q1 under Rep (no preferences):",
               *PreferredConsistentAnswer(*problem, empty, RepairFamily::kAll,
                                          **q1));
  PrintVerdict("Q2 under Rep (no preferences):",
               *PreferredConsistentAnswer(*problem, empty, RepairFamily::kAll,
                                          **q2));

  std::printf("\n== Example 3: source s3 is less reliable than s1, s2 ==\n");
  auto priority = PriorityFromSourceReliability(*problem, {0, 1, 1, 0});
  CHECK(priority.ok());
  std::printf("priority: %s\n", priority->ToString().c_str());

  std::printf("\n-- data cleaning baseline (keep unresolved) --\n");
  CleaningReport report = CleanWithPolicy(*problem, *priority,
                                          UnresolvedConflictPolicy::kKeep);
  std::printf("%s", report.Summary(*s.db).c_str());
  Database cleaned = s.db->Induce(report.kept);
  std::printf("cleaned database consistent? %s\n",
              *IsConsistent(cleaned, s.fds) ? "yes" : "NO — still broken");
  auto q2_cleaned = EvalClosed(*s.db, &report.kept, **q2);
  std::printf("Q2 in cleaned database: %s  <- wrong answer\n",
              *q2_cleaned ? "true" : "false");

  std::printf("\n-- preference-driven consistent query answers --\n");
  for (RepairFamily family :
       {RepairFamily::kLocal, RepairFamily::kSemiGlobal, RepairFamily::kGlobal,
        RepairFamily::kCommon}) {
    auto verdict =
        PreferredConsistentAnswer(*problem, *priority, family, **q2);
    CHECK(verdict.ok());
    std::printf("Q2 under %-6s: %s\n",
                std::string(RepairFamilyName(family)).c_str(),
                std::string(CqaVerdictName(*verdict)).c_str());
  }
  std::printf("\nthe preferred repairs keep the reliable information and\n"
              "answer Q2 = certainly-true, matching the paper's intuition.\n");
  return 0;
}
