// Data cleaning vs preferred consistent query answers on a sensor-fusion
// scenario with timestamps: several stations report readings for the same
// sensors; newer reports are preferred, but some conflicts have no
// timestamp information. Eager cleaning either stays inconsistent or
// loses data; C-Rep/G-Rep answers degrade gracefully.
//
// Run: ./data_cleaning

#include <cstdio>
#include <string>

#include "cleaning/cleaning.h"
#include "cqa/cqa.h"
#include "query/parser.h"
#include "repair/repair.h"

using namespace prefrep;

int main() {
  Database db;
  Schema schema = *Schema::Create(
      "Reading", {Attribute{"Sensor", ValueType::kName},
                  Attribute{"Value", ValueType::kNumber}});
  CHECK(db.AddRelation(schema).ok());

  auto insert = [&](const char* sensor, int64_t value, int64_t ts) {
    auto id = db.Insert("Reading",
                        Tuple::Of(Value::Name(sensor), Value::Number(value)),
                        TupleMeta{TupleMeta::kNoSource, ts});
    CHECK(id.ok()) << id.status().ToString();
  };
  // Sensor A: three conflicting readings with increasing timestamps.
  insert("A", 10, 100);
  insert("A", 12, 200);
  insert("A", 15, 300);
  // Sensor B: two conflicting readings, no timestamps available.
  insert("B", 70, TupleMeta::kNoTimestamp);
  insert("B", 75, TupleMeta::kNoTimestamp);
  // Sensor C: a single clean reading.
  insert("C", 42, 400);

  std::vector<FunctionalDependency> fds = {
      *FunctionalDependency::Parse(schema, "Sensor -> Value")};
  auto problem = RepairProblem::Create(&db, fds);
  CHECK(problem.ok());

  std::printf("readings:\n");
  for (TupleId id = 0; id < db.tuple_count(); ++id) {
    std::printf("  %s\n", db.DescribeTuple(id).c_str());
  }
  std::printf("conflicts: %d, repairs: %s\n\n",
              problem->graph().edge_count(),
              problem->CountRepairs().ToString().c_str());

  Priority newest = PriorityFromTimestamps(*problem, /*newer_wins=*/true);
  std::printf("timestamp priority (newer wins): %s\n\n",
              newest.ToString().c_str());

  std::printf("-- eager cleaning, keep-unresolved --\n");
  CleaningReport keep =
      CleanWithPolicy(*problem, newest, UnresolvedConflictPolicy::kKeep);
  std::printf("%s\n", keep.Summary(db).c_str());

  std::printf("-- eager cleaning, remove-unresolved --\n");
  CleaningReport remove =
      CleanWithPolicy(*problem, newest, UnresolvedConflictPolicy::kRemove);
  std::printf("%s\n", remove.Summary(db).c_str());
  std::printf("note: sensor B disappears entirely under remove-unresolved "
              "(information loss),\nwhile keep-unresolved leaves %d live "
              "conflict(s).\n\n",
              keep.residual_conflicts);

  // Preferred CQA keeps B's disjunctive information queryable.
  struct NamedQuery {
    const char* label;
    const char* text;
  } queries[] = {
      {"A reads 15", "Reading('A', 15)"},
      {"A reads at least 12", "exists v . Reading('A', v) and v >= 12"},
      {"B reads something in [70, 75]",
       "exists v . Reading('B', v) and v >= 70 and v <= 75"},
      {"B reads exactly 75", "Reading('B', 75)"},
      {"C reads 42", "Reading('C', 42)"},
  };
  std::printf("-- preferred consistent answers (C-Rep, timestamp "
              "priority) --\n");
  for (const NamedQuery& nq : queries) {
    auto query = ParseQuery(nq.text);
    CHECK(query.ok()) << query.status().ToString();
    auto verdict = PreferredConsistentAnswer(*problem, newest,
                                             RepairFamily::kCommon, **query);
    CHECK(verdict.ok());
    std::printf("  %-32s %s\n", nq.label,
                std::string(CqaVerdictName(*verdict)).c_str());
  }

  std::printf("\n-- same queries under plain Rep (no preferences) --\n");
  Priority empty = Priority::Empty(problem->graph());
  for (const NamedQuery& nq : queries) {
    auto query = ParseQuery(nq.text);
    auto verdict = PreferredConsistentAnswer(*problem, empty,
                                             RepairFamily::kAll, **query);
    std::printf("  %-32s %s\n", nq.label,
                std::string(CqaVerdictName(*verdict)).c_str());
  }
  std::printf("\nthe timestamp preference upgrades A's answers from "
              "undetermined to certain,\nwhile B's honest uncertainty is "
              "preserved instead of being cleaned away.\n");
  return 0;
}
