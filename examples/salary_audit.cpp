// Salary audit: aggregates over an inconsistent payroll built from two
// disagreeing HR extracts. Shows range-consistent aggregation (MIN / MAX /
// SUM / AVG / COUNT) under plain Rep vs a timestamp preference, the
// polynomial COUNT(*) range, SQL-driven certain answers, and a DOT dump
// of the conflict graph with its orientation.
//
// Run: ./salary_audit

#include <cstdio>
#include <string>

#include "cleaning/cleaning.h"
#include "cqa/aggregation.h"
#include "cqa/cqa.h"
#include "graph/dot.h"
#include "sql/sql.h"

using namespace prefrep;

int main() {
  Database db;
  Schema schema = *Schema::Create(
      "Payroll", {Attribute{"Name", ValueType::kName},
                  Attribute{"Salary", ValueType::kNumber}});
  CHECK(db.AddRelation(schema).ok());
  auto insert = [&](const char* name, int64_t salary, int64_t ts) {
    CHECK(db.Insert("Payroll",
                    Tuple::Of(Value::Name(name), Value::Number(salary)),
                    TupleMeta{TupleMeta::kNoSource, ts})
              .ok());
  };
  // Extract A (ts=1) vs extract B (ts=2) disagree on ada and bob.
  insert("ada", 120, 1);
  insert("ada", 135, 2);
  insert("bob", 90, 1);
  insert("bob", 80, 2);
  insert("cleo", 100, 1);  // undisputed

  std::vector<FunctionalDependency> fds = {
      *FunctionalDependency::Parse(schema, "Name -> Salary")};
  auto problem = RepairProblem::Create(&db, fds);
  CHECK(problem.ok());
  Priority empty = Priority::Empty(problem->graph());
  Priority newest = PriorityFromTimestamps(*problem, /*newer_wins=*/true);

  std::printf("payroll (%d tuples, %d conflicts, %s repairs)\n\n",
              db.tuple_count(), problem->graph().edge_count(),
              problem->CountRepairs().ToString().c_str());

  std::printf("conflict graph with the timestamp orientation (DOT):\n%s\n",
              ToDot(problem->graph(), &newest, [&](int id) {
                return db.TupleOf(id).ToString();
              }).c_str());

  struct Row {
    AggregateFunction fn;
    const char* label;
  } rows[] = {
      {AggregateFunction::kMin, "MIN(Salary)"},
      {AggregateFunction::kMax, "MAX(Salary)"},
      {AggregateFunction::kSum, "SUM(Salary)"},
      {AggregateFunction::kAvg, "AVG(Salary)"},
      {AggregateFunction::kCount, "COUNT(*)"},
  };
  std::printf("%-14s | %-22s | %s\n", "aggregate", "Rep range",
              "newest-wins G-Rep range");
  for (const Row& row : rows) {
    auto rep = AggregateConsistentRange(*problem, empty, RepairFamily::kAll,
                                        "Payroll", "Salary", row.fn);
    auto pref = AggregateConsistentRange(*problem, newest,
                                         RepairFamily::kGlobal, "Payroll",
                                         "Salary", row.fn);
    CHECK(rep.ok() && pref.ok());
    std::printf("%-14s | %-22s | %s\n", row.label,
                rep->ToString().c_str(), pref->ToString().c_str());
  }

  auto count_star = CountStarRange(*problem, "Payroll");
  CHECK(count_star.ok());
  std::printf("\npolynomial COUNT(*) range (component decomposition): %s\n",
              count_star->ToString().c_str());

  // SQL: who certainly earns at least 130? Only the newer extract says
  // ada does, so the answer depends on the preference.
  auto sql = ParseSql(db,
                      "SELECT p.Name FROM Payroll p WHERE p.Salary >= 130");
  CHECK(sql.ok()) << sql.status().ToString();
  auto certain = PreferredConsistentAnswers(*problem, newest,
                                            RepairFamily::kGlobal, **sql);
  CHECK(certain.ok());
  std::printf("\ncertainly earning >= 130 (newest-wins, G-Rep):\n");
  for (const Tuple& row : certain->rows) {
    std::printf("  %s\n", row.ToString().c_str());
  }
  auto baseline = PreferredConsistentAnswers(*problem, empty,
                                             RepairFamily::kAll, **sql);
  CHECK(baseline.ok());
  std::printf("under plain Rep the certain set has %zu row(s) — the\n"
              "newest-wins preference turns ada's raise into a certain "
              "fact.\n",
              baseline->rows.size());
  return 0;
}
