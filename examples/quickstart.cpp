// Quickstart: build an inconsistent database, inspect its repairs, add a
// priority, and compare consistent answers across the preferred-repair
// families (Rep, L-Rep, S-Rep, G-Rep, C-Rep).
//
// Run: ./quickstart

#include <cstdio>
#include <string>

#include "cqa/cqa.h"
#include "query/parser.h"
#include "repair/repair.h"

using namespace prefrep;

int main() {
  // A projects table where Lead is supposed to be determined by Project.
  Database db;
  Schema schema = *Schema::Create(
      "Proj", {Attribute{"Project", ValueType::kName},
               Attribute{"Lead", ValueType::kName},
               Attribute{"Budget", ValueType::kNumber}});
  CHECK(db.AddRelation(schema).ok());

  auto insert = [&](const char* project, const char* lead, int64_t budget,
                    int source) {
    auto id = db.Insert("Proj",
                        Tuple::Of(Value::Name(project), Value::Name(lead),
                                  Value::Number(budget)),
                        TupleMeta{source, TupleMeta::kNoTimestamp});
    CHECK(id.ok()) << id.status().ToString();
    return *id;
  };
  // Two sources disagree about who leads "apollo" and its budget.
  TupleId apollo_ada = insert("apollo", "ada", 100, /*source=*/1);
  TupleId apollo_bob = insert("apollo", "bob", 80, /*source=*/2);
  insert("zephyr", "cleo", 50, 1);

  std::vector<FunctionalDependency> fds = {
      *FunctionalDependency::Parse(schema, "Project -> Lead Budget")};

  auto problem = RepairProblem::Create(&db, fds);
  CHECK(problem.ok()) << problem.status().ToString();

  std::printf("database:\n%s\n", db.ToString().c_str());
  std::printf("conflicts: %d, repairs: %s\n\n",
              problem->graph().edge_count(),
              problem->CountRepairs().ToString().c_str());

  problem->EnumerateRepairs([&](const DynamicBitset& repair) {
    std::printf("repair %s\n", repair.ToString().c_str());
    return true;
  });

  // A closed query: does apollo have a budget of at least 90?
  auto query = ParseQuery(
      "exists l, b . Proj('apollo', l, b) and b >= 90");
  CHECK(query.ok()) << query.status().ToString();

  // Without preferences: the classic Arenas-Bertossi-Chomicki semantics.
  Priority empty = Priority::Empty(problem->graph());
  auto verdict = PreferredConsistentAnswer(*problem, empty,
                                           RepairFamily::kAll, **query);
  std::printf("\nno priority, Rep semantics: %s\n",
              std::string(CqaVerdictName(*verdict)).c_str());

  // Trust source 1 over source 2.
  auto priority =
      Priority::Create(problem->graph(), {{apollo_ada, apollo_bob}});
  CHECK(priority.ok());
  for (RepairFamily family : kAllFamilies) {
    auto preferred = PreferredConsistentAnswer(*problem, *priority, family,
                                               **query);
    CHECK(preferred.ok());
    std::printf("with priority, %-6s: %s\n",
                std::string(RepairFamilyName(family)).c_str(),
                std::string(CqaVerdictName(*preferred)).c_str());
  }

  // Open query: which (project, lead) pairs are certain under G-Rep?
  auto open = ParseQuery("Proj(p, l, b)");
  CHECK(open.ok());
  auto answers = PreferredConsistentAnswers(*problem, *priority,
                                            RepairFamily::kGlobal, **open);
  CHECK(answers.ok());
  std::printf("\ncertain Proj rows under G-Rep:\n");
  for (const Tuple& row : answers->rows) {
    std::printf("  %s\n", row.ToString().c_str());
  }
  return 0;
}
