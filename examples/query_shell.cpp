// query_shell: an interactive shell over the resident server facade
// (server/session.h). Data definition (relation/insert/load/fd) stages a
// working database; the first query builds an immutable Snapshot and a
// Session over it, and every later query goes through the session's
// PreparedQuery / plan / result caches — repeat a query to watch the
// cache column flip from miss to hit.
//
// Updates after that first snapshot take the incremental path: 'insert'
// and 'delete' stage into a DatabaseDelta against the current snapshot,
// and 'apply' runs Snapshot::Derive — the successor snapshot shares
// untouched relations and clean components with its parent, and the new
// session seeds its caches from the old one ('cache' shows what
// survived). Schema-level DDL (relation/fd/load) still marks the staging
// area dirty and rebuilds from scratch on the next query (the server's
// invalidation contract: caches never go stale because snapshots never
// change).
//
// Commands are listed by 'help' (generated from the command registry
// below). Ctrl-C cancels the query in flight (cooperatively, via the
// query's ExecutionContext) instead of killing the shell.
//
// Example session:
//   relation Mgr Name:name Dept:name Salary:number Reports:number
//   insert Mgr Mary,R&D,40000,3,@1,@-1
//   ...
//   fd Mgr Dept -> Name Salary Reports
//   ask exists x,y,z . Mgr(Mary,x,y,z)

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "base/exec_context.h"
#include "base/strings.h"
#include "cleaning/cleaning.h"
#include "graph/dot.h"
#include "query/parser.h"
#include "relational/csv.h"
#include "relational/delta.h"
#include "repair/metrics.h"
#include "server/session.h"
#include "sql/sql.h"

using namespace prefrep;

namespace {

// The context of the query currently executing, if any. The SIGINT
// handler may only touch this pointer and call RequestCancel() through
// it — both are lock-free atomics, so the handler is async-signal-safe.
std::atomic<ExecutionContext*> g_active_context{nullptr};

void HandleSigint(int) {
  ExecutionContext* context = g_active_context.load(std::memory_order_acquire);
  if (context != nullptr) {
    context->RequestCancel();
    return;
  }
  // No query in flight: stay alive and nudge (write() is signal-safe).
  constexpr char kMsg[] = "\n(interrupt; type 'quit' to exit)\n> ";
  [[maybe_unused]] ssize_t n = write(STDOUT_FILENO, kMsg, sizeof(kMsg) - 1);
}

void InstallSigintHandler() {
  struct sigaction action = {};
  action.sa_handler = HandleSigint;
  sigemptyset(&action.sa_mask);
  // SA_RESTART keeps the prompt's blocking getline() from failing when a
  // stray Ctrl-C arrives between queries.
  action.sa_flags = SA_RESTART;
  sigaction(SIGINT, &action, nullptr);
}

// Publishes a query's context to the SIGINT handler for its duration.
class ScopedActiveContext {
 public:
  explicit ScopedActiveContext(ExecutionContext* context) {
    g_active_context.store(context, std::memory_order_release);
  }
  ~ScopedActiveContext() {
    g_active_context.store(nullptr, std::memory_order_release);
  }
  ScopedActiveContext(const ScopedActiveContext&) = delete;
  ScopedActiveContext& operator=(const ScopedActiveContext&) = delete;
};

class Timer {
 public:
  double Ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
};

class Shell {
 public:
  int Run();

 private:
  // One registry row per command: dispatch, usage and help text all come
  // from this table ('help' renders it, so it can never go stale).
  struct Command {
    const char* name;
    const char* usage;
    const char* help;
    Status (Shell::*handler)(const std::string& args);
  };
  static const Command kCommands[];

  Status Dispatch(const std::string& line);
  Status Help(const std::string&);

  Status DeclareRelation(const std::string& args) {
    std::istringstream in(args);
    std::string name;
    in >> name;
    std::vector<Attribute> attributes;
    std::string spec;
    while (in >> spec) {
      size_t colon = spec.find(':');
      if (colon == std::string::npos) {
        return Status::InvalidArgument("attribute spec needs name:type");
      }
      std::string type = spec.substr(colon + 1);
      if (type != "name" && type != "number") {
        return Status::InvalidArgument("type must be 'name' or 'number'");
      }
      attributes.push_back(Attribute{
          spec.substr(0, colon),
          type == "name" ? ValueType::kName : ValueType::kNumber});
    }
    PREFREP_ASSIGN_OR_RETURN(Schema schema,
                             Schema::Create(name, std::move(attributes)));
    PREFREP_RETURN_IF_ERROR(db_.AddRelation(schema));
    dirty_ = true;
    std::printf("declared %s\n", schema.ToString().c_str());
    return Status::Ok();
  }

  // Parses "<Name> v1,v2,...[,@src,@ts]" against the relation's schema.
  Status ParseTupleArgs(const std::string& args, const Database& db,
                        std::string* name, Tuple* tuple, TupleMeta* meta) {
    std::istringstream in(args);
    in >> *name;
    std::string csv;
    std::getline(in, csv);
    PREFREP_ASSIGN_OR_RETURN(const Relation* rel, db.relation(*name));
    const Schema& schema = rel->schema();

    std::vector<std::string> fields(StrSplit(StripWhitespace(csv), ','));
    // Optional trailing @source, @ts fields.
    while (!fields.empty() && !fields.back().empty() &&
           StripWhitespace(fields.back())[0] == '@') {
      std::string_view field = StripWhitespace(fields.back());
      PREFREP_ASSIGN_OR_RETURN(int64_t v, ParseInt64(field.substr(1)));
      if (meta->timestamp == TupleMeta::kNoTimestamp &&
          fields.size() == static_cast<size_t>(schema.arity()) + 2) {
        meta->timestamp = v;
      } else {
        meta->source_id = static_cast<int>(v);
      }
      fields.pop_back();
    }
    if (static_cast<int>(fields.size()) != schema.arity()) {
      return Status::InvalidArgument("expected " +
                                     std::to_string(schema.arity()) +
                                     " values");
    }
    std::vector<Value> values;
    for (int i = 0; i < schema.arity(); ++i) {
      std::string_view field = StripWhitespace(fields[i]);
      if (schema.attribute(i).type == ValueType::kNumber) {
        PREFREP_ASSIGN_OR_RETURN(int64_t v, ParseInt64(field));
        values.push_back(Value::Number(v));
      } else {
        values.push_back(Value::Name(std::string(field)));
      }
    }
    *tuple = Tuple(std::move(values));
    return Status::Ok();
  }

  // Lazily creates the pending delta against the current snapshot.
  DatabaseDelta& PendingDelta() {
    if (delta_ == nullptr) {
      delta_ = std::make_unique<DatabaseDelta>(&snapshot_->db());
    }
    return *delta_;
  }

  Status Insert(const std::string& args) {
    // Before the first snapshot (or after schema DDL) inserts stage into
    // the working database directly; afterwards they stage into the
    // pending delta for the incremental 'apply' path.
    if (dirty_ || session_ == nullptr) {
      std::string name;
      Tuple tuple;
      TupleMeta meta;
      PREFREP_RETURN_IF_ERROR(ParseTupleArgs(args, db_, &name, &tuple, &meta));
      PREFREP_ASSIGN_OR_RETURN(TupleId id,
                               db_.Insert(name, std::move(tuple), meta));
      dirty_ = true;
      std::printf("inserted tuple %d\n", id);
      return Status::Ok();
    }
    std::string name;
    Tuple tuple;
    TupleMeta meta;
    PREFREP_RETURN_IF_ERROR(
        ParseTupleArgs(args, snapshot_->db(), &name, &tuple, &meta));
    PREFREP_RETURN_IF_ERROR(
        PendingDelta().Insert(name, std::move(tuple), meta));
    std::printf("staged insert (%s; 'apply' to derive)\n",
                delta_->Describe().c_str());
    return Status::Ok();
  }

  Status Delete(const std::string& args) {
    PREFREP_RETURN_IF_ERROR(Refresh());
    std::string name;
    Tuple tuple;
    TupleMeta meta;
    PREFREP_RETURN_IF_ERROR(
        ParseTupleArgs(args, snapshot_->db(), &name, &tuple, &meta));
    // Delete resolves against the post-delta state: deleting values that
    // match a pending insert un-stages that insert instead.
    const int inserts_before = PendingDelta().insert_count();
    PREFREP_RETURN_IF_ERROR(PendingDelta().Delete(name, tuple));
    std::printf("%s (%s; 'apply' to derive)\n",
                delta_->insert_count() < inserts_before
                    ? "un-staged pending insert"
                    : "staged delete",
                delta_->Describe().c_str());
    return Status::Ok();
  }

  // Applies the pending delta through Snapshot::Derive: the successor
  // shares untouched relations and clean components with the parent, and
  // the new session seeds its caches from the old one.
  Status Apply(const std::string&) {
    if (delta_ == nullptr || delta_->empty()) {
      return Status::InvalidArgument(
          "no staged changes ('insert'/'delete' after a query stage a "
          "delta)");
    }
    std::unique_ptr<ExecutionContext> context = MakeContext();
    ScopedActiveContext active(context.get());
    Timer timer;
    PREFREP_ASSIGN_OR_RETURN(std::shared_ptr<const Snapshot> derived,
                             Snapshot::Derive(snapshot_, *delta_,
                                              context.get()));
    auto session = std::make_unique<Session>(derived, *session_);
    snapshot_ = std::move(derived);
    session_ = std::move(session);
    db_ = snapshot_->db();  // copy-on-write: shared storage, cheap
    priority_ = std::make_unique<Priority>(Priority::Empty(snapshot_->graph()));
    delta_.reset();
    std::printf("(derived %s in %.2f ms; priority reset)\n",
                snapshot_->Describe().c_str(), timer.Ms());
    std::printf("cache: %s\n", session_->cache_stats().ToString().c_str());
    return Status::Ok();
  }

  Status Load(const std::string& args) {
    std::istringstream in(args);
    std::string name, path, mode;
    in >> name >> path >> mode;
    std::ifstream file(path);
    if (!file) return Status::NotFound("cannot open '" + path + "'");
    std::stringstream buffer;
    buffer << file.rdbuf();
    CsvOptions options;
    options.with_provenance = (mode == "withmeta");
    PREFREP_ASSIGN_OR_RETURN(int count,
                             LoadCsv(db_, name, buffer.str(), options));
    dirty_ = true;
    std::printf("loaded %d tuple(s)\n", count);
    return Status::Ok();
  }

  Status AddFd(const std::string& args) {
    std::istringstream in(args);
    std::string name;
    in >> name;
    std::string text;
    std::getline(in, text);
    PREFREP_ASSIGN_OR_RETURN(const Relation* rel, db_.relation(name));
    PREFREP_ASSIGN_OR_RETURN(
        FunctionalDependency fd,
        FunctionalDependency::Parse(rel->schema(), StripWhitespace(text)));
    fds_.push_back(fd);
    dirty_ = true;
    std::printf("added FD %s on %s\n",
                fd.ToString(rel->schema()).c_str(), name.c_str());
    return Status::Ok();
  }

  // Builds a fresh immutable Snapshot (from a copy of the staging
  // database) and a Session over it whenever DDL dirtied the staging
  // area. The old session — with its caches — is dropped; its snapshot
  // would be stale.
  Status Refresh() {
    if (!dirty_ && session_ != nullptr) return Status::Ok();
    // A staged delta borrows the OLD snapshot's database; a full rebuild
    // invalidates it.
    if (delta_ != nullptr && !delta_->empty()) {
      std::printf("(discarding unapplied %s)\n", delta_->Describe().c_str());
    }
    delta_.reset();
    PREFREP_ASSIGN_OR_RETURN(std::shared_ptr<const Snapshot> snapshot,
                             Snapshot::Create(db_, fds_));
    snapshot_ = std::move(snapshot);
    session_ = std::make_unique<Session>(snapshot_);
    priority_ = std::make_unique<Priority>(Priority::Empty(snapshot_->graph()));
    dirty_ = false;
    std::printf("(built %s; priority reset)\n",
                snapshot_->Describe().c_str());
    return Status::Ok();
  }

  Status SetPriority(const std::string& args) {
    PREFREP_RETURN_IF_ERROR(Refresh());
    std::istringstream in(args);
    std::string kind;
    in >> kind;
    if (kind == "source") {
      std::string csv;
      in >> csv;
      std::vector<int64_t> ranks;
      for (const std::string& part : StrSplit(csv, ',')) {
        PREFREP_ASSIGN_OR_RETURN(int64_t r, ParseInt64(StripWhitespace(part)));
        ranks.push_back(r);
      }
      PREFREP_ASSIGN_OR_RETURN(
          Priority p,
          PriorityFromSourceReliability(snapshot_->problem(), ranks));
      *priority_ = std::move(p);
    } else if (kind == "timestamp") {
      std::string mode;
      in >> mode;
      *priority_ =
          PriorityFromTimestamps(snapshot_->problem(), mode != "oldest");
    } else if (kind == "edge") {
      int winner = 0, loser = 0;
      if (!(in >> winner >> loser)) {
        return Status::InvalidArgument("usage: priority edge <w> <l>");
      }
      PREFREP_ASSIGN_OR_RETURN(
          Priority p, priority_->Extend(snapshot_->graph(),
                                        {{winner, loser}}));
      *priority_ = std::move(p);
    } else {
      return Status::InvalidArgument("usage: priority source|timestamp|edge");
    }
    std::printf("priority = %s\n", priority_->ToString().c_str());
    return Status::Ok();
  }

  Status SetFamily(const std::string& args) {
    if (args == "rep") {
      family_ = RepairFamily::kAll;
    } else if (args == "l") {
      family_ = RepairFamily::kLocal;
    } else if (args == "s") {
      family_ = RepairFamily::kSemiGlobal;
    } else if (args == "g") {
      family_ = RepairFamily::kGlobal;
    } else if (args == "c") {
      family_ = RepairFamily::kCommon;
    } else {
      return Status::InvalidArgument("family must be rep|l|s|g|c");
    }
    std::printf("family = %s\n",
                std::string(RepairFamilyName(family_)).c_str());
    return Status::Ok();
  }

  Status ShowConflicts(const std::string&) {
    PREFREP_RETURN_IF_ERROR(Refresh());
    for (auto [u, v] : snapshot_->graph().edges()) {
      std::printf("  %d: %s  <->  %d: %s\n", u,
                  db_.DescribeTuple(u).c_str(), v,
                  db_.DescribeTuple(v).c_str());
    }
    return Status::Ok();
  }

  Status ShowStats(const std::string&) {
    PREFREP_RETURN_IF_ERROR(Refresh());
    RepairSpaceMetrics metrics =
        ComputeRepairSpaceMetrics(snapshot_->problem(), priority_.get());
    std::printf("%s", metrics.ToString().c_str());
    return Status::Ok();
  }

  Status ShowDot(const std::string&) {
    PREFREP_RETURN_IF_ERROR(Refresh());
    std::printf("%s", ToDot(snapshot_->graph(), priority_.get(), [&](int id) {
                  return db_.TupleOf(id).ToString();
                }).c_str());
    return Status::Ok();
  }

  Status ShowRepairs(const std::string& args) {
    PREFREP_RETURN_IF_ERROR(Refresh());
    size_t limit = 20;
    if (!args.empty()) {
      PREFREP_ASSIGN_OR_RETURN(int64_t v, ParseInt64(args));
      limit = static_cast<size_t>(v);
    }
    std::unique_ptr<ExecutionContext> context = MakeContext();
    ScopedActiveContext active(context.get());
    ParallelOptions options;
    options.context = context.get();
    size_t shown = 0;
    EnumeratePreferredRepairs(snapshot_->graph(), *priority_, family_,
                              options, [&](const DynamicBitset& repair) {
                                if (context->ShouldStop()) return false;
                                std::printf("  %s\n",
                                            repair.ToString().c_str());
                                return ++shown < limit;
                              });
    if (context->interrupted()) return context->StatusWithStats();
    std::printf("(%zu %s repair(s) shown, limit %zu)\n", shown,
                std::string(RepairFamilyName(family_)).c_str(), limit);
    return Status::Ok();
  }

  Status SetTimeout(const std::string& args) {
    PREFREP_ASSIGN_OR_RETURN(int64_t ms, ParseInt64(StripWhitespace(args)));
    if (ms < 0) return Status::InvalidArgument("timeout must be >= 0 ms");
    timeout_ms_ = ms;
    if (timeout_ms_ == 0) {
      std::printf("timeout off\n");
    } else {
      std::printf("timeout = %lld ms per query\n",
                  static_cast<long long>(timeout_ms_));
    }
    return Status::Ok();
  }

  Status SetBudget(const std::string& args) {
    PREFREP_ASSIGN_OR_RETURN(int64_t mb, ParseInt64(StripWhitespace(args)));
    if (mb < 0) return Status::InvalidArgument("budget must be >= 0 MB");
    budget_mb_ = static_cast<size_t>(mb);
    if (budget_mb_ == 0) {
      std::printf("budget = default (%zu MB)\n",
                  ExecutionLimits{}.component_list_budget_bytes >> 20);
    } else {
      std::printf("budget = %zu MB of materialized repair lists\n",
                  budget_mb_);
    }
    return Status::Ok();
  }

  Status ShowDatabase(const std::string&) {
    std::printf("%s", db_.ToString().c_str());
    return Status::Ok();
  }

  Status ShowCache(const std::string&) {
    PREFREP_RETURN_IF_ERROR(Refresh());
    std::printf("%s\n", snapshot_->Describe().c_str());
    std::printf("cache: %s\n", session_->cache_stats().ToString().c_str());
    return Status::Ok();
  }

  // One fresh context per query — interrupts latch, so contexts are
  // single-use. Carries the shell's timeout/budget knobs.
  std::unique_ptr<ExecutionContext> MakeContext() const {
    ExecutionLimits limits;
    if (budget_mb_ > 0) {
      limits.component_list_budget_bytes = budget_mb_ << 20;
    }
    auto context = std::make_unique<ExecutionContext>(limits);
    if (timeout_ms_ > 0) {
      context->SetDeadlineAfter(std::chrono::milliseconds(timeout_ms_));
    }
    return context;
  }

  Status Ask(const std::string& args) {
    PREFREP_RETURN_IF_ERROR(Refresh());
    PREFREP_ASSIGN_OR_RETURN(std::unique_ptr<Query> query, ParseQuery(args));
    std::unique_ptr<ExecutionContext> context = MakeContext();
    ScopedActiveContext active(context.get());
    EvalOptions options;
    options.context = context.get();
    CqaPlan executed;
    bool cache_hit = false;
    Timer timer;
    PREFREP_ASSIGN_OR_RETURN(
        CqaVerdict verdict,
        session_->Ask(*query, *priority_, family_, options, &executed,
                      &cache_hit));
    std::printf("%s under %s  [%s, %.2f ms, cache %s]\n",
                std::string(CqaVerdictName(verdict)).c_str(),
                std::string(RepairFamilyName(family_)).c_str(),
                std::string(CqaTierName(executed.tier)).c_str(), timer.Ms(),
                cache_hit ? "hit" : "miss");
    return Status::Ok();
  }

  Status Answers(const std::string& args) {
    PREFREP_RETURN_IF_ERROR(Refresh());
    PREFREP_ASSIGN_OR_RETURN(std::unique_ptr<Query> query, ParseQuery(args));
    return RunAnswers(*query);
  }

  Status Explain(const std::string& args) {
    PREFREP_RETURN_IF_ERROR(Refresh());
    PREFREP_ASSIGN_OR_RETURN(std::unique_ptr<Query> query, ParseQuery(args));
    CqaRequest request = query->IsClosed() ? CqaRequest::kVerdict
                                           : CqaRequest::kOpenAnswers;
    CqaPlan plan = session_->Explain(*query, *priority_, family_, request);
    std::printf("%s\n", plan.ToString().c_str());
    return Status::Ok();
  }

  Status Sql(const std::string& args) {
    PREFREP_RETURN_IF_ERROR(Refresh());
    PREFREP_ASSIGN_OR_RETURN(std::unique_ptr<Query> query,
                             ParseSql(db_, args));
    return RunAnswers(*query);
  }

  // Shared by 'answers' and 'sql': certain answers through the session.
  Status RunAnswers(const Query& query) {
    std::unique_ptr<ExecutionContext> context = MakeContext();
    ScopedActiveContext active(context.get());
    EvalOptions options;
    options.context = context.get();
    CqaPlan executed;
    bool cache_hit = false;
    Timer timer;
    PREFREP_ASSIGN_OR_RETURN(
        OpenAnswer answer,
        session_->Answers(query, *priority_, family_, options, &executed,
                          &cache_hit));
    std::printf("certain answers (%s):  [%s, %.2f ms, cache %s]\n",
                StrJoin(answer.variables, ", ").c_str(),
                std::string(CqaTierName(executed.tier)).c_str(), timer.Ms(),
                cache_hit ? "hit" : "miss");
    for (const Tuple& row : answer.rows) {
      std::printf("  %s\n", row.ToString().c_str());
    }
    std::printf("(%zu row(s))\n", answer.rows.size());
    return Status::Ok();
  }

  Database db_;
  std::vector<FunctionalDependency> fds_;
  std::shared_ptr<const Snapshot> snapshot_;
  // Pending incremental changes staged against snapshot_->db(); consumed
  // by 'apply', discarded by a full rebuild.
  std::unique_ptr<DatabaseDelta> delta_;
  std::unique_ptr<Session> session_;
  std::unique_ptr<Priority> priority_;
  RepairFamily family_ = RepairFamily::kGlobal;
  bool dirty_ = true;
  int64_t timeout_ms_ = 0;  // 0 = no deadline
  size_t budget_mb_ = 0;    // 0 = ExecutionLimits default
};

const Shell::Command Shell::kCommands[] = {
    {"relation", "relation <Name> <attr:name|number> ...",
     "declare a relation", &Shell::DeclareRelation},
    {"insert", "insert <Name> v1,v2,...[,@src,@ts]",
     "insert a tuple (staged into a delta once a snapshot exists)",
     &Shell::Insert},
    {"delete", "delete <Name> v1,v2,...",
     "stage a delete into the pending delta", &Shell::Delete},
    {"apply", "apply",
     "derive the successor snapshot from the staged delta", &Shell::Apply},
    {"load", "load <Name> <csv-file> [withmeta]", "bulk load CSV",
     &Shell::Load},
    {"fd", "fd <Name> <A B -> C D>", "add a functional dependency",
     &Shell::AddFd},
    {"priority", "priority source|timestamp|edge ...",
     "set the priority (source ranks / timestamps / one edge)",
     &Shell::SetPriority},
    {"family", "family rep|l|s|g|c", "pick the repair family",
     &Shell::SetFamily},
    {"conflicts", "conflicts", "show conflict edges", &Shell::ShowConflicts},
    {"stats", "stats", "repair-space metrics", &Shell::ShowStats},
    {"dot", "dot", "conflict graph in DOT format", &Shell::ShowDot},
    {"repairs", "repairs [limit]", "list (preferred) repairs",
     &Shell::ShowRepairs},
    {"ask", "ask <first-order query>",
     "closed-query verdict (tier, time, cache hit/miss)", &Shell::Ask},
    {"answers", "answers <first-order query>", "open-query certain answers",
     &Shell::Answers},
    {"explain", "explain <first-order query>", "show the CQA planner tier",
     &Shell::Explain},
    {"sql", "sql <SELECT ...>", "SQL certain answers", &Shell::Sql},
    {"timeout", "timeout <ms>", "per-query deadline (0 = off)",
     &Shell::SetTimeout},
    {"budget", "budget <mb>", "repair-list byte budget (0 = default)",
     &Shell::SetBudget},
    {"show", "show", "dump the database", &Shell::ShowDatabase},
    {"cache", "cache", "session cache statistics", &Shell::ShowCache},
    {"help", "help", "this list", &Shell::Help},
};

Status Shell::Dispatch(const std::string& line) {
  std::istringstream in(line);
  std::string command;
  in >> command;
  std::string rest;
  std::getline(in, rest);
  std::string args(StripWhitespace(rest));
  for (const Command& entry : kCommands) {
    if (command == entry.name) return (this->*entry.handler)(args);
  }
  return Status::InvalidArgument("unknown command '" + command +
                                 "' (try 'help')");
}

Status Shell::Help(const std::string&) {
  for (const Command& entry : kCommands) {
    std::printf("%-38s %s\n", entry.usage, entry.help);
  }
  std::printf("%-38s %s\n", "quit",
              "exit (Ctrl-C cancels a running query)");
  return Status::Ok();
}

int Shell::Run() {
  std::string line;
  std::printf("prefrep shell — type 'help' for commands\n");
  while (true) {
    std::printf("> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::string_view trimmed = StripWhitespace(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    if (trimmed == "quit" || trimmed == "exit") break;
    Status status = Dispatch(std::string(trimmed));
    if (!status.ok()) {
      std::printf("error: %s\n", status.ToString().c_str());
    }
  }
  return 0;
}

}  // namespace

int main() {
  InstallSigintHandler();
  return Shell().Run();
}
