// Incremental maintenance under updates: Snapshot::Derive versus a full
// rebuild, on a multi-relation multi-component instance (8 relations x 50
// complete-multipartite components, ~6400 tuples, ~400 components).
//
// Row families:
//   - Derive{,InsertOnly,DeleteTail,DeleteScattered}/<i>: build the
//     successor snapshot incrementally from a staged delta of the named
//     shape (the `delta_pct` counter reports staged operations as a
//     percentage of the instance). Untouched relations share storage, the
//     survivor conflict edges and the adjacency bitsets of the identity
//     region are carried over (ConflictGraph::DeriveFrom — ragged rows let
//     insert-only and delete-only deltas share too, despite the changed
//     universe size), only inserted tuples probe the per-FD LHS index, and
//     only dirty components re-BFS. DeleteScattered spreads deletions from
//     id 0 up, erasing the identity prefix: it reports how Derive degrades
//     when the sharing cannot engage.
//   - FullRebuild{...}/<i>: the from-scratch baseline on the same deltas —
//     re-insert every tuple (DatabaseDelta::ApplyNaive) and
//     Snapshot::Create, which re-detects all conflicts, rebuilds the whole
//     adjacency structure and re-decomposes the graph.
//   - ServeLoop{Derive,Rebuild}/<q>: a mixed serving loop on a separate
//     small two-relation instance; one iteration is one epoch = one update
//     roll (new snapshot + new session) followed by <q> queries against the
//     cold relation. The update touches only the hot relation and preserves
//     the active domain, so the derive path's seeded session keeps serving
//     the queries from cache while the rebuild path re-answers them cold.
//
// Acceptance signals (BENCH_pr10.json): at delta <= 1% of the instance the
// balanced Derive rows must beat FullRebuild by >= 10x, and the insert-only
// and delete-tail rows by >= 5x (PR 9 rebuilt those shapes from scratch).

#include <memory>
#include <vector>

#include "bench_common.h"
#include "relational/delta.h"
#include "server/session.h"
#include "server/snapshot.h"

namespace prefrep::bench {
namespace {

constexpr uint64_t kSeed = 20260808;

// ------------------------------------------- derive vs rebuild sweep --

// Delta shapes swept by the Derive/FullRebuild rows. PR 9 only derived
// adjacency incrementally for kBalanced (equal counts keep the universe
// size fixed); the ragged sharing of PR 10 extends it to the unbalanced
// shapes, which used to rebuild every adjacency row from scratch.
enum class DeltaShape {
  kBalanced,         // `ops` tail deletes + `ops` conflicting inserts
  kInsertOnly,       // `ops` conflicting inserts, universe grows
  kDeleteTail,       // `ops` tail deletes, identity prefix maximal
  kDeleteScattered,  // `ops` evenly spaced deletes from id 0 up: the
                     // dense renumbering leaves no identity prefix, the
                     // worst case the sharing cannot help
};

struct UpdateSetup {
  std::shared_ptr<const Snapshot> snapshot;
  // One staged delta per (shape, sweep size), reusable: Derive/Apply never
  // consume the delta.
  std::vector<std::unique_ptr<DatabaseDelta>> deltas[4];
  std::vector<int> ops;  // staged operations per sweep size
};

// Stages one delta of `shape`. Deletes are confined to the tail relation
// for kBalanced/kDeleteTail (all in R7); inserts join R7's first eight key
// groups, so they create real conflict edges and dirty real components,
// not just isolated vertices. Unique W values keep every insert fresh.
std::unique_ptr<DatabaseDelta> StageDelta(const Snapshot& snapshot, int ops,
                                          DeltaShape shape) {
  auto delta = std::make_unique<DatabaseDelta>(&snapshot.db());
  const int n = snapshot.db().tuple_count();
  switch (shape) {
    case DeltaShape::kBalanced:
    case DeltaShape::kDeleteTail:
      for (int i = 0; i < ops; ++i) {
        CHECK(delta->Delete(static_cast<TupleId>(n - 1 - i)).ok());
      }
      break;
    case DeltaShape::kDeleteScattered: {
      const int stride = n / ops;
      CHECK(stride >= 1);
      for (int i = 0; i < ops; ++i) {
        CHECK(delta->Delete(static_cast<TupleId>(i * stride)).ok());
      }
      break;
    }
    case DeltaShape::kInsertOnly:
      break;
  }
  if (shape == DeltaShape::kBalanced || shape == DeltaShape::kInsertOnly) {
    for (int i = 0; i < ops; ++i) {
      auto status = delta->Insert(
          "R7", Tuple::Of(Value::Number(i % 8), Value::Number(1),
                          Value::Number(100000 + i)));
      CHECK(status.ok()) << status.ToString();
    }
  }
  return delta;
}

UpdateSetup& SharedSetup() {
  static UpdateSetup* setup = [] {
    auto* s = new UpdateSetup();
    Rng rng(kSeed);
    GeneratedInstance inst = MakeMultiRelationComponentsInstance(
        rng, /*relations=*/8, /*groups_per_relation=*/50, /*min_size=*/14,
        /*max_size=*/18);
    auto snapshot = Snapshot::Create(*inst.db, inst.fds);
    CHECK(snapshot.ok()) << snapshot.status().ToString();
    s->snapshot = *std::move(snapshot);
    // Staged ops ~0.05%, ~0.25%, ~0.5%, ~2.5%, ~10% of the instance per
    // side (the balanced shape's delta_pct doubles: deletes + inserts).
    const int n = s->snapshot->db().tuple_count();
    for (int ops : {n / 2000 + 1, n / 400, n / 200, n / 40, n / 10}) {
      s->ops.push_back(ops);
      for (int shape = 0; shape < 4; ++shape) {
        s->deltas[shape].push_back(
            StageDelta(*s->snapshot, ops, static_cast<DeltaShape>(shape)));
      }
    }
    return s;
  }();
  return *setup;
}

double DeltaPercent(const UpdateSetup& setup, DeltaShape shape, size_t index) {
  const int sides = shape == DeltaShape::kBalanced ? 2 : 1;
  return 100.0 * sides * setup.ops[index] /
         setup.snapshot->db().tuple_count();
}

template <DeltaShape kShape>
void DeriveBench(benchmark::State& state) {
  UpdateSetup& setup = SharedSetup();
  const size_t index = static_cast<size_t>(state.range(0));
  const DatabaseDelta& delta =
      *setup.deltas[static_cast<int>(kShape)][index];
  for (auto _ : state) {
    auto derived = Snapshot::Derive(setup.snapshot, delta);
    CHECK(derived.ok()) << derived.status().ToString();
    KeepAlive(*derived);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["delta_pct"] = DeltaPercent(setup, kShape, index);
  state.SetLabel("incremental successor snapshot");
}

template <DeltaShape kShape>
void RebuildBench(benchmark::State& state) {
  UpdateSetup& setup = SharedSetup();
  const size_t index = static_cast<size_t>(state.range(0));
  const DatabaseDelta& delta =
      *setup.deltas[static_cast<int>(kShape)][index];
  for (auto _ : state) {
    auto db = delta.ApplyNaive();
    CHECK(db.ok());
    auto rebuilt = Snapshot::Create(*std::move(db), setup.snapshot->fds());
    CHECK(rebuilt.ok()) << rebuilt.status().ToString();
    KeepAlive(*rebuilt);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["delta_pct"] = DeltaPercent(setup, kShape, index);
  state.SetLabel("re-insert + full conflict re-detection");
}

void BM_IncrementalUpdate_Derive(benchmark::State& state) {
  DeriveBench<DeltaShape::kBalanced>(state);
}
BENCHMARK(BM_IncrementalUpdate_Derive)
    ->DenseRange(0, 4)
    ->Unit(benchmark::kMicrosecond);

void BM_IncrementalUpdate_FullRebuild(benchmark::State& state) {
  RebuildBench<DeltaShape::kBalanced>(state);
}
BENCHMARK(BM_IncrementalUpdate_FullRebuild)
    ->DenseRange(0, 4)
    ->Unit(benchmark::kMicrosecond);

void BM_IncrementalUpdate_DeriveInsertOnly(benchmark::State& state) {
  DeriveBench<DeltaShape::kInsertOnly>(state);
}
BENCHMARK(BM_IncrementalUpdate_DeriveInsertOnly)
    ->DenseRange(0, 4)
    ->Unit(benchmark::kMicrosecond);

void BM_IncrementalUpdate_FullRebuildInsertOnly(benchmark::State& state) {
  RebuildBench<DeltaShape::kInsertOnly>(state);
}
BENCHMARK(BM_IncrementalUpdate_FullRebuildInsertOnly)
    ->DenseRange(0, 4)
    ->Unit(benchmark::kMicrosecond);

void BM_IncrementalUpdate_DeriveDeleteTail(benchmark::State& state) {
  DeriveBench<DeltaShape::kDeleteTail>(state);
}
BENCHMARK(BM_IncrementalUpdate_DeriveDeleteTail)
    ->DenseRange(0, 4)
    ->Unit(benchmark::kMicrosecond);

void BM_IncrementalUpdate_FullRebuildDeleteTail(benchmark::State& state) {
  RebuildBench<DeltaShape::kDeleteTail>(state);
}
BENCHMARK(BM_IncrementalUpdate_FullRebuildDeleteTail)
    ->DenseRange(0, 4)
    ->Unit(benchmark::kMicrosecond);

void BM_IncrementalUpdate_DeriveDeleteScattered(benchmark::State& state) {
  DeriveBench<DeltaShape::kDeleteScattered>(state);
}
BENCHMARK(BM_IncrementalUpdate_DeriveDeleteScattered)
    ->DenseRange(0, 4)
    ->Unit(benchmark::kMicrosecond);

void BM_IncrementalUpdate_FullRebuildDeleteScattered(benchmark::State& state) {
  RebuildBench<DeltaShape::kDeleteScattered>(state);
}
BENCHMARK(BM_IncrementalUpdate_FullRebuildDeleteScattered)
    ->DenseRange(0, 4)
    ->Unit(benchmark::kMicrosecond);

// ------------------------------------------------ mixed serving loops --

constexpr int kServeQueryMix = 3;

// The serve loop runs on its own small instance with closed ground
// quantifier-free queries: with the empty priority every family collapses
// to Rep, so the planner serves them from the polynomial tier-1 engine —
// a quantified query here would route to the enumeration tier, whose cost
// under the empty priority is the full repair product (~3^24 repairs).
// Two relations: R0 is the cold relation the queries read; R1 is the hot
// relation the updates touch. Relation-by-relation id assignment keeps
// all of R0 in the identity region of every update.
struct ServeSetup {
  std::shared_ptr<const Snapshot> snapshot;
  std::unique_ptr<DatabaseDelta> delta;
  std::vector<std::unique_ptr<Query>> queries;
};

ServeSetup& SharedServeSetup() {
  static ServeSetup* setup = [] {
    auto* s = new ServeSetup();
    Rng rng(kSeed);
    GeneratedInstance inst = MakeMultiRelationComponentsInstance(
        rng, /*relations=*/2, /*groups_per_relation=*/12, /*min_size=*/3,
        /*max_size=*/5);
    auto snapshot = Snapshot::Create(*inst.db, inst.fds);
    CHECK(snapshot.ok()) << snapshot.status().ToString();
    s->snapshot = *std::move(snapshot);
    // Balanced update on the hot relation: replace its last tuple (k, v, w)
    // with (k, v', w) for the other conflict class v' != v. Both classes
    // exist in every group (the generator splits every group of size >= 2
    // across >= 2 classes) and w was unique to the deleted tuple, so the
    // insert is fresh, conflicts with the deleted tuple's old rivals, and
    // every value stays inside the active domain — the footprint a seeded
    // session can survive.
    const Database& db = s->snapshot->db();
    const TupleId last = static_cast<TupleId>(db.tuple_count() - 1);
    const Tuple& victim = db.TupleOf(last);
    s->delta = std::make_unique<DatabaseDelta>(&db);
    CHECK(s->delta->Delete(last).ok());
    const int64_t flipped = victim.value(1).number() == 0 ? 1 : 0;
    CHECK(s->delta
              ->Insert("R1", Tuple::Of(victim.value(0),
                                       Value::Number(flipped),
                                       victim.value(2)))
              .ok());
    s->queries.push_back(MustParse("R0(0, 0, 0) or R0(1, 0, 0)"));
    s->queries.push_back(MustParse("R0(2, 0, 0) and not R0(0, 9, 9)"));
    s->queries.push_back(MustParse("R0(3, 0, 0) or not R0(4, 0, 0)"));
    CHECK(s->queries.size() == kServeQueryMix);
    return s;
  }();
  return *setup;
}

// One iteration = one epoch: an update rolls snapshot + session, then
// `queries_per_update` queries are served from the fresh session. Every
// update derives from the same base version (so the staged delta stays
// valid); the derive path seeds the new session from a warm session on the
// base snapshot, the rebuild path starts cold.
template <bool kIncremental>
void ServeLoop(benchmark::State& state) {
  ServeSetup& setup = SharedServeSetup();
  const int queries_per_update = static_cast<int>(state.range(0));
  const DatabaseDelta& delta = *setup.delta;
  Priority empty = Priority::Empty(setup.snapshot->graph());
  Session base_session(setup.snapshot);
  for (const auto& query : setup.queries) {
    CHECK(base_session.Ask(*query, empty, RepairFamily::kGlobal, {}).ok());
  }
  int i = 0;
  for (auto _ : state) {
    std::unique_ptr<Session> session;
    if constexpr (kIncremental) {
      auto derived = Snapshot::Derive(setup.snapshot, delta);
      CHECK(derived.ok());
      session = std::make_unique<Session>(*derived, base_session);
    } else {
      auto db = delta.ApplyNaive();
      CHECK(db.ok());
      auto rebuilt = Snapshot::Create(*std::move(db), setup.snapshot->fds());
      CHECK(rebuilt.ok());
      session = std::make_unique<Session>(*rebuilt);
    }
    for (int q = 0; q < queries_per_update; ++q) {
      const Query& query =
          *setup.queries[static_cast<size_t>(i++ % kServeQueryMix)];
      auto verdict = session->Ask(query, empty, RepairFamily::kGlobal, {});
      CHECK(verdict.ok()) << verdict.status().ToString();
      KeepAlive(*verdict);
    }
  }
  // Operations served per epoch: the update plus the queries.
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(queries_per_update + 1));
  state.SetLabel(kIncremental ? "derive + seeded session"
                              : "rebuild + cold session");
}

void BM_IncrementalUpdate_ServeLoopDerive(benchmark::State& state) {
  ServeLoop<true>(state);
}
BENCHMARK(BM_IncrementalUpdate_ServeLoopDerive)
    ->Arg(1)
    ->Arg(16)
    ->Arg(256)
    ->Unit(benchmark::kMicrosecond);

void BM_IncrementalUpdate_ServeLoopRebuild(benchmark::State& state) {
  ServeLoop<false>(state);
}
BENCHMARK(BM_IncrementalUpdate_ServeLoopRebuild)
    ->Arg(1)
    ->Arg(16)
    ->Arg(256)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace prefrep::bench

BENCHMARK_MAIN();
