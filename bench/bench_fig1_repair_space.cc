// FIG1/EX4 — the repair space of r_n (Figure 1, Example 4).
//
// The paper's point: an inconsistent database may have exponentially many
// repairs (r_n has exactly 2^n), so enumerating them is hopeless while the
// conflict graph remains a linear-size compact representation. This bench
// regenerates the three facets:
//   - conflict-graph construction scales linearly in the number of tuples,
//   - exact repair *counting* via per-component products stays cheap even
//     for n = 256 (2^256 repairs),
//   - repair *enumeration* is Θ(2^n).

#include "bench_common.h"
#include "constraints/conflicts.h"
#include "graph/mis.h"

namespace prefrep::bench {
namespace {

void BM_Fig1_ConflictGraphConstruction(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  GeneratedInstance rn = MakeRnInstance(n);
  for (auto _ : state) {
    auto edges = FindConflicts(*rn.db, rn.fds);
    CHECK(edges.ok());
    benchmark::DoNotOptimize(edges->size());
  }
  state.counters["tuples"] = 2.0 * n;
  state.counters["conflicts"] = n;
}
BENCHMARK(BM_Fig1_ConflictGraphConstruction)
    ->RangeMultiplier(4)
    ->Range(16, 16384)
    ->Unit(benchmark::kMicrosecond);

void BM_Fig1_ExactRepairCount(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  BenchSetup setup = MakeSetup(MakeRnInstance(n), /*seed=*/1, 0.0);
  BigUint count;
  for (auto _ : state) {
    count = setup.problem->CountRepairs();
    benchmark::DoNotOptimize(&count);
  }
  CHECK(count == BigUint::PowerOfTwo(n));
  state.counters["repair_count_digits"] =
      static_cast<double>(count.ToString().size());
  state.SetLabel("repairs = 2^" + std::to_string(n));
}
BENCHMARK(BM_Fig1_ExactRepairCount)
    ->Arg(8)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Unit(benchmark::kMicrosecond);

void BM_Fig1_RepairEnumeration(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  BenchSetup setup = MakeSetup(MakeRnInstance(n), /*seed=*/1, 0.0);
  int64_t visited = 0;
  for (auto _ : state) {
    visited = 0;
    setup.problem->EnumerateRepairs([&visited](const DynamicBitset&) {
      ++visited;
      return true;
    });
    KeepAlive(visited);
  }
  CHECK_EQ(visited, int64_t{1} << n);
  state.counters["repairs"] = static_cast<double>(visited);
  state.counters["repairs_per_sec"] = benchmark::Counter(
      static_cast<double>(visited), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_Fig1_RepairEnumeration)
    ->DenseRange(4, 18, 2)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace prefrep::bench

BENCHMARK_MAIN();
