// Planner dispatch: what the tier classifier buys over always running the
// sharded enumeration engine.
//
// Three matched pairs, each "planned" (the planner picks the tier) vs
// "forced enumeration" (the planner's own differential reference):
//   - tier 0: a conflict-free key-group instance, where enumeration pays
//     a per-component decomposition for nothing;
//   - tier 1 verdicts: a ground disjunction on r_n, where the repair
//     space is 2^n but the conflict-graph prover is linear;
//   - tier 1 collapse: G-Rep under an *empty* priority on r_n, where P3
//     collapses the family to Rep and the fast path applies even though
//     the caller asked for a preferred family.
// The planned side must beat forced enumeration by >= 10x on the largest
// size of each pair (checked offline against BENCH_pr6.json).

#include "bench_common.h"
#include "cqa/planner.h"

namespace prefrep::bench {
namespace {

const CqaPlannerOptions& ForcedEnumeration() {
  static const CqaPlannerOptions forced = [] {
    CqaPlannerOptions opts;
    opts.force_tier = CqaTier::kEnumeration;
    return opts;
  }();
  return forced;
}

// ----------------------------------------- tier 0: conflict-free bypass --

void BM_PlannerDispatch_ConflictFree_Planned(benchmark::State& state) {
  int groups = static_cast<int>(state.range(0));
  BenchSetup setup = MakeSetup(MakeKeyGroupsInstance(groups, 1), /*seed=*/11,
                               0.0);
  Priority empty = Priority::Empty(setup.problem->graph());
  std::unique_ptr<Query> query = MustParse("R(0, 0) or R(1, 0)");
  CqaPlan executed;
  for (auto _ : state) {
    auto verdict = PlannedConsistentAnswer(*setup.problem, empty,
                                           RepairFamily::kCommon, *query,
                                           CqaPlannerOptions(),
                                           &executed);
    CHECK(verdict.ok());
    CHECK(*verdict == CqaVerdict::kCertainlyTrue);
    KeepAlive(executed.tier);
  }
  CHECK(executed.tier == CqaTier::kSingleRepair);
  state.counters["tuples"] = static_cast<double>(groups);
  state.SetLabel("planned: tier 0 single-repair");
}
BENCHMARK(BM_PlannerDispatch_ConflictFree_Planned)
    ->RangeMultiplier(8)
    ->Range(64, 32768)
    ->Unit(benchmark::kMicrosecond);

void BM_PlannerDispatch_ConflictFree_ForcedEnum(benchmark::State& state) {
  int groups = static_cast<int>(state.range(0));
  BenchSetup setup = MakeSetup(MakeKeyGroupsInstance(groups, 1), /*seed=*/11,
                               0.0);
  Priority empty = Priority::Empty(setup.problem->graph());
  std::unique_ptr<Query> query = MustParse("R(0, 0) or R(1, 0)");
  for (auto _ : state) {
    auto verdict = PlannedConsistentAnswer(*setup.problem, empty,
                                           RepairFamily::kCommon, *query,
                                           ForcedEnumeration());
    CHECK(verdict.ok());
    CHECK(*verdict == CqaVerdict::kCertainlyTrue);
    benchmark::DoNotOptimize(*verdict);
  }
  state.counters["tuples"] = static_cast<double>(groups);
  state.SetLabel("forced: tier 2 enumeration");
}
BENCHMARK(BM_PlannerDispatch_ConflictFree_ForcedEnum)
    ->RangeMultiplier(8)
    ->Range(64, 32768)
    ->Unit(benchmark::kMicrosecond);

// ------------------------------------- tier 1: ground verdict on r_n --

void BM_PlannerDispatch_GroundVerdict_Planned(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  BenchSetup setup = MakeSetup(MakeRnInstance(n), /*seed=*/3, 0.0);
  Priority empty = Priority::Empty(setup.problem->graph());
  std::unique_ptr<Query> query = MustParse("R(0, 0) or R(0, 1)");
  CqaPlan executed;
  for (auto _ : state) {
    auto verdict = PlannedConsistentAnswer(*setup.problem, empty,
                                           RepairFamily::kAll, *query,
                                           CqaPlannerOptions(),
                                           &executed);
    CHECK(verdict.ok());
    CHECK(*verdict == CqaVerdict::kCertainlyTrue);
    KeepAlive(executed.tier);
  }
  CHECK(executed.tier == CqaTier::kGroundFastPath);
  state.counters["repair_space"] = setup.problem->CountRepairs().ToDouble();
  state.SetLabel("planned: tier 1 conflict-graph prover");
}
BENCHMARK(BM_PlannerDispatch_GroundVerdict_Planned)
    ->DenseRange(4, 16, 4)
    ->Unit(benchmark::kMicrosecond);

void BM_PlannerDispatch_GroundVerdict_ForcedEnum(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  BenchSetup setup = MakeSetup(MakeRnInstance(n), /*seed=*/3, 0.0);
  Priority empty = Priority::Empty(setup.problem->graph());
  std::unique_ptr<Query> query = MustParse("R(0, 0) or R(0, 1)");
  for (auto _ : state) {
    auto verdict = PlannedConsistentAnswer(*setup.problem, empty,
                                           RepairFamily::kAll, *query,
                                           ForcedEnumeration());
    CHECK(verdict.ok());
    CHECK(*verdict == CqaVerdict::kCertainlyTrue);
    benchmark::DoNotOptimize(*verdict);
  }
  state.counters["repair_space"] = setup.problem->CountRepairs().ToDouble();
  state.SetLabel("forced: tier 2 enumeration");
}
BENCHMARK(BM_PlannerDispatch_GroundVerdict_ForcedEnum)
    ->DenseRange(4, 16, 4)
    ->Unit(benchmark::kMillisecond);

// --------------------- tier 1 via P3: preferred family, empty priority --

void BM_PlannerDispatch_EmptyPriorityCollapse_Planned(
    benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  BenchSetup setup = MakeSetup(MakeRnInstance(n), /*seed=*/3, 0.0);
  Priority empty = Priority::Empty(setup.problem->graph());
  std::unique_ptr<Query> query = MustParse("R(0, 0) or R(0, 1)");
  CqaPlan executed;
  for (auto _ : state) {
    auto verdict = PlannedConsistentAnswer(*setup.problem, empty,
                                           RepairFamily::kGlobal, *query,
                                           CqaPlannerOptions(),
                                           &executed);
    CHECK(verdict.ok());
    CHECK(*verdict == CqaVerdict::kCertainlyTrue);
    KeepAlive(executed.tier);
  }
  CHECK(executed.tier == CqaTier::kGroundFastPath);
  CHECK(executed.family_collapsed);
  state.counters["repair_space"] = setup.problem->CountRepairs().ToDouble();
  state.SetLabel("planned: G-Rep collapsed to Rep (P3)");
}
BENCHMARK(BM_PlannerDispatch_EmptyPriorityCollapse_Planned)
    ->DenseRange(4, 16, 4)
    ->Unit(benchmark::kMicrosecond);

void BM_PlannerDispatch_EmptyPriorityCollapse_ForcedEnum(
    benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  BenchSetup setup = MakeSetup(MakeRnInstance(n), /*seed=*/3, 0.0);
  Priority empty = Priority::Empty(setup.problem->graph());
  std::unique_ptr<Query> query = MustParse("R(0, 0) or R(0, 1)");
  for (auto _ : state) {
    auto verdict = PlannedConsistentAnswer(*setup.problem, empty,
                                           RepairFamily::kGlobal, *query,
                                           ForcedEnumeration());
    CHECK(verdict.ok());
    CHECK(*verdict == CqaVerdict::kCertainlyTrue);
    benchmark::DoNotOptimize(*verdict);
  }
  state.counters["repair_space"] = setup.problem->CountRepairs().ToDouble();
  state.SetLabel("forced: tier 2 G-Rep enumeration");
}
BENCHMARK(BM_PlannerDispatch_EmptyPriorityCollapse_ForcedEnum)
    ->DenseRange(4, 16, 4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace prefrep::bench

BENCHMARK_MAIN();
