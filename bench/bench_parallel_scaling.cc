// Thread-scaling sweep for sharded per-component enumeration and CQA.
//
// Workloads are multi-component by construction (workload/generators.h):
//   - family rows: 8 disjoint conflict paths, whose per-component repair
//     lists are Fibonacci-sized — materialization dominates, which is
//     exactly the layer the pool parallelizes. The callback stops at the
//     first product output, so the measured cost is the sharded
//     materialization, not the (serial, unbounded) product streaming.
//   - CQA rows: complete-multipartite components with small per-component
//     lists but a large repair product — the sharded per-repair eval loop
//     dominates. Queries are chosen to be certainly-true so no early stop
//     hides the full scan.
//
// threads=1 takes the serial path (no pool, no atomics on the hot loop);
// rows at 2/4/8 threads measure the same work on the work-stealing pool.
// NOTE: speedup requires physical cores; on a single-core host all
// thread counts collapse to serial time plus pool overhead.

#include "bench_common.h"

#include "base/thread_pool.h"
#include "graph/conflict_graph.h"

namespace prefrep::bench {
namespace {

constexpr int64_t kPathComponents = 8;
// A path of n vertices has ~1.3247^n maximal independent sets (the
// plastic-number recurrence M(n) = M(n-2) + M(n-3)): length 32 puts
// ~10k repairs in every component list, so materialization dominates
// the fixed decomposition cost while one serial iteration stays well
// under a second (bench-smoke runs every row at least once).
constexpr int64_t kPathLength = 32;
constexpr int64_t kGlobalPathLength = 24;  // G-Rep certifies quadratically

struct GraphWorkload {
  ConflictGraph graph;
  Priority priority;
};

GraphWorkload MakePathsWorkload(int64_t length) {
  Rng rng(42);
  std::vector<int> sizes(kPathComponents, static_cast<int>(length));
  ConflictGraph graph = MakeComponentPathsGraph(rng, sizes);
  Priority priority = RandomRankingPriority(rng, graph, 0.5);
  return GraphWorkload{std::move(graph), std::move(priority)};
}

void RunFamilyScaling(benchmark::State& state, RepairFamily family,
                      int64_t length) {
  GraphWorkload workload = MakePathsWorkload(length);
  ParallelOptions options{static_cast<int>(state.range(0))};
  for (auto _ : state) {
    int outputs = 0;
    bool complete = EnumeratePreferredRepairs(
        workload.graph, workload.priority, family, options,
        [&outputs](const DynamicBitset&) {
          ++outputs;
          return false;  // stop at the first product output: the
                         // per-component materialization has completed
        });
    CHECK(!complete);
    CHECK(outputs == 1);
    KeepAlive(outputs);
  }
  state.SetLabel(std::string(RepairFamilyName(family)) + " on " +
                 std::to_string(kPathComponents) + " paths of " +
                 std::to_string(length));
}

void BM_ParallelScaling_Rep(benchmark::State& state) {
  RunFamilyScaling(state, RepairFamily::kAll, kPathLength);
}
BENCHMARK(BM_ParallelScaling_Rep)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ParallelScaling_LRep(benchmark::State& state) {
  RunFamilyScaling(state, RepairFamily::kLocal, kPathLength);
}
BENCHMARK(BM_ParallelScaling_LRep)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ParallelScaling_SRep(benchmark::State& state) {
  RunFamilyScaling(state, RepairFamily::kSemiGlobal, kPathLength);
}
BENCHMARK(BM_ParallelScaling_SRep)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ParallelScaling_CRep(benchmark::State& state) {
  RunFamilyScaling(state, RepairFamily::kCommon, kPathLength);
}
BENCHMARK(BM_ParallelScaling_CRep)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ParallelScaling_GRep(benchmark::State& state) {
  RunFamilyScaling(state, RepairFamily::kGlobal, kGlobalPathLength);
}
BENCHMARK(BM_ParallelScaling_GRep)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// ------------------------------------------------------------- CQA --

BenchSetup MakeCqaWorkload() {
  Rng rng(7);
  GeneratedInstance instance =
      MakeComponentsInstance(rng, std::vector<int>(6, 12));
  return MakeSetup(std::move(instance), /*seed=*/11, 0.5);
}

void BM_ParallelScaling_CqaClosed(benchmark::State& state) {
  BenchSetup setup = MakeCqaWorkload();
  ParallelOptions options{static_cast<int>(state.range(0))};
  // Certainly true (every repair keeps >= 1 tuple of group 0), so the
  // verdict needs the full repair product — no early stop.
  std::unique_ptr<Query> query = MustParse("exists x, y . R(0, x, y)");
  for (auto _ : state) {
    auto verdict = PreferredConsistentAnswer(
        *setup.problem, *setup.priority, RepairFamily::kAll, *query,
        options);
    CHECK(verdict.ok());
    CHECK(*verdict == CqaVerdict::kCertainlyTrue);
    KeepAlive(verdict);
  }
  state.counters["repair_space"] = setup.problem->CountRepairs().ToDouble();
  state.SetLabel("sharded closed-query verdict, Rep");
}
BENCHMARK(BM_ParallelScaling_CqaClosed)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ParallelScaling_CqaOpen(benchmark::State& state) {
  BenchSetup setup = MakeCqaWorkload();
  ParallelOptions options{static_cast<int>(state.range(0))};
  // Every key has a certain row (repairs keep >= 1 tuple per group), so
  // the intersection never empties and every repair is evaluated.
  std::unique_ptr<Query> query = MustParse("exists v, w . R(k, v, w)");
  for (auto _ : state) {
    auto answers = PreferredConsistentAnswers(
        *setup.problem, *setup.priority, RepairFamily::kLocal, *query,
        options);
    CHECK(answers.ok());
    CHECK(answers->rows.size() == 6);
    KeepAlive(answers);
  }
  state.SetLabel("sharded open-query answers, L-Rep");
}
BENCHMARK(BM_ParallelScaling_CqaOpen)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace prefrep::bench

BENCHMARK_MAIN();
