// FIG5, "Consistent Answers to {∀,∃}-free queries" column.
//
// Paper claims (Figure 5): for quantifier-free (ground) queries,
//   Rep    PTIME           (conflict-graph prover, row 1)
//   L-Rep  co-NP-complete
//   S-Rep  co-NP-complete
//   C-Rep  co-NP-complete
//
// Measured: the polynomial prover stays microsecond-flat while every
// engine that must range over (preferred) repairs grows as Θ(2^n) on r_n.
// The query is the Example-4-style ground disjunction R(0,0) ∨ R(0,1),
// whose consistent answer is true — the worst case, since certifying
// 'true' cannot short-circuit.

#include "bench_common.h"

namespace prefrep::bench {
namespace {

std::unique_ptr<Query> WorstCaseQuery() {
  return MustParse("R(0, 0) or R(0, 1)");
}

// Polynomial engine (Rep row): flat in the repair count.
void BM_Fig5_QfCqa_RepPolynomial(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  BenchSetup setup = MakeSetup(MakeRnInstance(n), /*seed=*/3, 0.0);
  std::unique_ptr<Query> query = WorstCaseQuery();
  bool answer = false;
  for (auto _ : state) {
    auto result = GroundConsistentAnswer(*setup.problem, *query);
    CHECK(result.ok());
    answer = *result;
    KeepAlive(answer);
  }
  CHECK(answer);
  state.counters["tuples"] = 2.0 * n;
  state.counters["repair_space"] = setup.problem->CountRepairs().ToDouble();
  state.SetLabel("Rep / polynomial conflict-graph prover");
}
BENCHMARK(BM_Fig5_QfCqa_RepPolynomial)
    ->RangeMultiplier(4)
    ->Range(4, 4096)
    ->Unit(benchmark::kMicrosecond);

// Naive engine on the full repair space: Θ(2^n) growth.
void BM_Fig5_QfCqa_RepNaive(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  BenchSetup setup = MakeSetup(MakeRnInstance(n), /*seed=*/3, 0.0);
  Priority empty = Priority::Empty(setup.problem->graph());
  std::unique_ptr<Query> query = WorstCaseQuery();
  for (auto _ : state) {
    auto verdict = PreferredConsistentAnswer(*setup.problem, empty,
                                             RepairFamily::kAll, *query);
    CHECK(verdict.ok());
    CHECK(*verdict == CqaVerdict::kCertainlyTrue);
    benchmark::DoNotOptimize(*verdict);
  }
  state.counters["repair_space"] = setup.problem->CountRepairs().ToDouble();
  state.SetLabel("Rep / naive enumeration");
}
BENCHMARK(BM_Fig5_QfCqa_RepNaive)
    ->DenseRange(4, 14, 2)
    ->Unit(benchmark::kMillisecond);

// Preferred families (co-NP rows): with a half-oriented priority the
// preferred repair space still grows exponentially on r_n.
void BM_Fig5_QfCqa_PreferredFamilies(benchmark::State& state) {
  static const RepairFamily kFamilies[] = {
      RepairFamily::kLocal, RepairFamily::kSemiGlobal, RepairFamily::kCommon};
  RepairFamily family = kFamilies[state.range(0)];
  int n = static_cast<int>(state.range(1));
  BenchSetup setup = MakeSetup(MakeRnInstance(n), /*seed=*/3, 0.5);
  std::unique_ptr<Query> query = WorstCaseQuery();
  for (auto _ : state) {
    auto verdict = PreferredConsistentAnswer(*setup.problem, *setup.priority,
                                             family, *query);
    CHECK(verdict.ok());
    CHECK(*verdict == CqaVerdict::kCertainlyTrue);
    benchmark::DoNotOptimize(*verdict);
  }
  state.SetLabel(std::string(RepairFamilyName(family)));
}
BENCHMARK(BM_Fig5_QfCqa_PreferredFamilies)
    ->ArgsProduct({{0, 1, 2}, {4, 6, 8, 10, 12}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace prefrep::bench

BENCHMARK_MAIN();
