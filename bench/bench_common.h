// Shared helpers for the benchmark binaries. Each bench binary regenerates
// one table/figure of the paper (see DESIGN.md's per-experiment index and
// EXPERIMENTS.md for the measured results).

#ifndef PREFREP_BENCH_BENCH_COMMON_H_
#define PREFREP_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <memory>

#include "base/logging.h"
#include "base/random.h"
#include "core/algorithm1.h"
#include "core/families.h"
#include "cqa/cqa.h"
#include "query/parser.h"
#include "repair/repair.h"
#include "workload/generators.h"

namespace prefrep::bench {

// A workload instance bundled with its repair problem and a priority.
struct BenchSetup {
  GeneratedInstance instance;
  std::unique_ptr<RepairProblem> problem;
  std::unique_ptr<Priority> priority;
};

inline BenchSetup MakeSetup(GeneratedInstance instance, uint64_t seed,
                            double priority_density) {
  BenchSetup setup;
  setup.instance = std::move(instance);
  auto problem =
      RepairProblem::Create(setup.instance.db.get(), setup.instance.fds);
  CHECK(problem.ok()) << problem.status().ToString();
  setup.problem = std::make_unique<RepairProblem>(*std::move(problem));
  Rng rng(seed);
  setup.priority = std::make_unique<Priority>(
      RandomRankingPriority(rng, setup.problem->graph(), priority_density));
  return setup;
}

inline std::unique_ptr<Query> MustParse(std::string_view text) {
  auto q = ParseQuery(text);
  CHECK(q.ok()) << q.status().ToString();
  return *std::move(q);
}

// benchmark::DoNotOptimize pins values with a "+m,r" multi-alternative asm
// constraint that GCC 12 miscompiles at -O2 and above: the variable read
// back after the asm can hold garbage (google/benchmark#1340). KeepAlive
// uses the single "+m" alternative, which every compiler handles
// correctly. Use it instead of DoNotOptimize whenever the pinned value is
// inspected afterwards (e.g. CHECKed once timing ends).
template <class T>
inline void KeepAlive(T& value) {
#if defined(__GNUC__)
  asm volatile("" : "+m"(value) : : "memory");
#else
  benchmark::DoNotOptimize(value);
#endif
}

}  // namespace prefrep::bench

#endif  // PREFREP_BENCH_BENCH_COMMON_H_
