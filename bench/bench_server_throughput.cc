// Server throughput: what the Session/Snapshot facade buys a resident
// server over calling the planner free functions per request.
//
// Four rows over the same workload (a multi-component instance, a ranking
// priority, G-Rep, and a small rotating query mix whose quantified members
// route to the enumeration tier):
//   - free functions: the pre-server cost — every request re-plans and
//     re-compiles;
//   - session, cold cache: the facade with its caches cleared every
//     request — measures facade overhead without reuse;
//   - session, warm cache: steady-state serving, where repeats hit the
//     result cache (->Threads(1..8) gives QPS at N concurrent clients
//     sharing ONE session — items_per_second is the aggregate);
//   - session, Submit/Wait: the async queue's round-trip overhead on a
//     warm cache (admission, dispatch thread, promise hand-off).
//
// The warm-vs-cold gap is the PR's acceptance signal (recorded in
// BENCH_pr8.json); the host is single-core, so thread rows measure
// contention, not parallel speedup.

#include "bench_common.h"
#include "server/session.h"
#include "server/snapshot.h"

namespace prefrep::bench {
namespace {

constexpr int kQueryMix = 4;

struct ServerSetup {
  std::shared_ptr<const Snapshot> snapshot;
  Priority priority;
  std::vector<std::unique_ptr<Query>> queries;
};

ServerSetup& SharedSetup() {
  static ServerSetup* setup = [] {
    auto* s = new ServerSetup();
    Rng rng(20260808);
    GeneratedInstance inst = MakeComponentsInstance(rng, 24, 3, 5);
    auto snapshot = Snapshot::Create(*inst.db, inst.fds);
    CHECK(snapshot.ok()) << snapshot.status().ToString();
    s->snapshot = *std::move(snapshot);
    s->priority = RandomRankingPriority(rng, s->snapshot->graph(), 0.7);
    s->queries.push_back(MustParse("exists x, y, z . R(x, y, z)"));
    s->queries.push_back(MustParse("forall x, y, z . R(x, y, z)"));
    s->queries.push_back(MustParse("exists y, z . R(0, y, z)"));
    s->queries.push_back(MustParse("exists x, z . R(x, 0, z)"));
    CHECK(s->queries.size() == kQueryMix);
    return s;
  }();
  return *setup;
}

// One shared warm session for the multi-client rows; created on first use
// so single-binary filters still work.
Session& SharedWarmSession() {
  static Session* session = [] {
    ServerSetup& setup = SharedSetup();
    auto* s = new Session(setup.snapshot);
    for (const auto& query : setup.queries) {
      auto verdict =
          s->Ask(*query, setup.priority, RepairFamily::kGlobal, {});
      CHECK(verdict.ok()) << verdict.status().ToString();
    }
    return s;
  }();
  return *session;
}

// ------------------------------------------ row 1: free-function baseline --

void BM_ServerThroughput_FreeFunctions(benchmark::State& state) {
  ServerSetup& setup = SharedSetup();
  int i = 0;
  for (auto _ : state) {
    const Query& query = *setup.queries[static_cast<size_t>(i++ % kQueryMix)];
    auto verdict = PlannedConsistentAnswer(
        setup.snapshot->problem(), setup.priority, RepairFamily::kGlobal,
        query);
    CHECK(verdict.ok());
    benchmark::DoNotOptimize(*verdict);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("per-request plan + compile + execute");
}
BENCHMARK(BM_ServerThroughput_FreeFunctions)->Unit(benchmark::kMicrosecond);

// ---------------------------------------------- row 2: session, cold cache --

void BM_ServerThroughput_SessionCold(benchmark::State& state) {
  ServerSetup& setup = SharedSetup();
  Session session(setup.snapshot);
  int i = 0;
  for (auto _ : state) {
    session.ClearCache();
    const Query& query = *setup.queries[static_cast<size_t>(i++ % kQueryMix)];
    auto verdict =
        session.Ask(query, setup.priority, RepairFamily::kGlobal, {});
    CHECK(verdict.ok());
    benchmark::DoNotOptimize(*verdict);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("caches cleared per request");
}
BENCHMARK(BM_ServerThroughput_SessionCold)->Unit(benchmark::kMicrosecond);

// ---------------------------------------------- row 3: session, warm cache --

void BM_ServerThroughput_SessionWarm(benchmark::State& state) {
  ServerSetup& setup = SharedSetup();
  Session& session = SharedWarmSession();
  // Stagger per-thread rotation so concurrent clients mix their hits.
  int i = state.thread_index();
  for (auto _ : state) {
    const Query& query = *setup.queries[static_cast<size_t>(i++ % kQueryMix)];
    auto verdict =
        session.Ask(query, setup.priority, RepairFamily::kGlobal, {});
    CHECK(verdict.ok());
    benchmark::DoNotOptimize(*verdict);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("steady-state result-cache hits");
}
BENCHMARK(BM_ServerThroughput_SessionWarm)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->Unit(benchmark::kMicrosecond);

// -------------------------------------- row 4: async queue, warm cache --

void BM_ServerThroughput_AsyncSubmitWait(benchmark::State& state) {
  ServerSetup& setup = SharedSetup();
  Session& session = SharedWarmSession();
  int i = 0;
  for (auto _ : state) {
    SessionRequest request;
    request.kind = CqaRequest::kVerdict;
    request.query =
        setup.queries[static_cast<size_t>(i++ % kQueryMix)]->Clone();
    request.priority = setup.priority;
    request.family = RepairFamily::kGlobal;
    auto id = session.Submit(std::move(request));
    CHECK(id.ok()) << id.status().ToString();
    auto response = session.Wait(*id);
    CHECK(response.ok());
    CHECK(response->verdict.ok());
    benchmark::DoNotOptimize(*response->verdict);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("Submit/Wait round trip, warm cache");
}
BENCHMARK(BM_ServerThroughput_AsyncSubmitWait)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace prefrep::bench

BENCHMARK_MAIN();
