// FIG5, G-Rep row — computing G-consistent answers is Π²ₚ-complete.
//
// Paper claims (Figure 5): answers under G-Rep sit one level above the
// other families in the polynomial hierarchy: deciding the answer ranges
// over repairs (∀) with a co-NP optimality certificate per repair (∃).
// Our exact engine mirrors that structure: enumerate repairs, and for each
// run the ≪-maximality witness search. On alternating conflict cycles the
// per-repair certificate itself scans an exponential repair space, so the
// nesting is visible against C-Rep (PTIME checking) on identical inputs.

#include "bench_common.h"

namespace prefrep::bench {
namespace {

// Partial priority {v_i ≻ u_i} of the corrected Example 9 (see DESIGN.md):
// under it G-Rep = {v-triple} while S-Rep keeps both alternating sets.
Priority CyclePriority(const ConflictGraph& graph, int k) {
  std::vector<std::pair<int, int>> arcs;
  for (int i = 0; i < k; ++i) arcs.emplace_back(2 * i + 1, 2 * i);
  auto priority = Priority::Create(graph, std::move(arcs));
  CHECK(priority.ok());
  return *std::move(priority);
}

void BM_Fig5_GlobalCqa(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  BenchSetup setup = MakeSetup(MakeCycleInstance(k), /*seed=*/11, 0.0);
  Priority priority = CyclePriority(setup.problem->graph(), k);
  // Ground fact held by the unique G-repair {v_0..v_{k-1}}: certainly true
  // under G-Rep; certifying it visits every repair and certifies each.
  std::unique_ptr<Query> query = MustParse("R(0, 1, 0, 0)");
  for (auto _ : state) {
    auto verdict = PreferredConsistentAnswer(*setup.problem, priority,
                                             RepairFamily::kGlobal, *query);
    CHECK(verdict.ok());
    CHECK(*verdict == CqaVerdict::kCertainlyTrue);
    benchmark::DoNotOptimize(*verdict);
  }
  state.counters["tuples"] = 2.0 * k;
  state.counters["repair_space"] = setup.problem->CountRepairs().ToDouble();
  state.SetLabel("G-Rep: repairs x optimality certificates");
}
BENCHMARK(BM_Fig5_GlobalCqa)
    ->DenseRange(3, 9, 1)
    ->Unit(benchmark::kMillisecond);

// Same instances under C-Rep: membership checking is PTIME (Prop. 7), so
// the answer engine pays only the enumeration of the C-repairs.
void BM_Fig5_CommonCqaContrast(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  BenchSetup setup = MakeSetup(MakeCycleInstance(k), /*seed=*/11, 0.0);
  Priority priority = CyclePriority(setup.problem->graph(), k);
  std::unique_ptr<Query> query = MustParse("R(0, 1, 0, 0)");
  for (auto _ : state) {
    auto verdict = PreferredConsistentAnswer(*setup.problem, priority,
                                             RepairFamily::kCommon, *query);
    CHECK(verdict.ok());
    CHECK(*verdict == CqaVerdict::kCertainlyTrue);
    benchmark::DoNotOptimize(*verdict);
  }
  state.counters["tuples"] = 2.0 * k;
  state.SetLabel("C-Rep contrast (co-NP)");
}
BENCHMARK(BM_Fig5_CommonCqaContrast)
    ->DenseRange(3, 11, 1)
    ->Unit(benchmark::kMillisecond);

// S-Rep on the same inputs: the PTIME-checkable family that keeps both
// alternating triples; the answer degrades to 'undetermined'.
void BM_Fig5_SemiGlobalCqaContrast(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  BenchSetup setup = MakeSetup(MakeCycleInstance(k), /*seed=*/11, 0.0);
  Priority priority = CyclePriority(setup.problem->graph(), k);
  std::unique_ptr<Query> query = MustParse("R(0, 1, 0, 0)");
  for (auto _ : state) {
    auto verdict = PreferredConsistentAnswer(
        *setup.problem, priority, RepairFamily::kSemiGlobal, *query);
    CHECK(verdict.ok());
    CHECK(*verdict == CqaVerdict::kUndetermined);
    benchmark::DoNotOptimize(*verdict);
  }
  state.counters["tuples"] = 2.0 * k;
  state.SetLabel("S-Rep contrast (answer stays undetermined)");
}
BENCHMARK(BM_Fig5_SemiGlobalCqaContrast)
    ->DenseRange(3, 11, 1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace prefrep::bench

BENCHMARK_MAIN();
