// EXT-2 — range-consistent scalar aggregation (the paper's reference [2]).
//
// Aggregates under repair semantics return ranges [glb, lub]. This bench
// shows (a) the exact engine's cost tracks the preferred-repair count,
// (b) the per-component COUNT(*) algorithm stays polynomial where
// enumeration is impossible, and (c) preferences narrow ranges at modest
// extra cost (family sweep on a fixed workload).

#include "bench_common.h"
#include "cqa/aggregation.h"

namespace prefrep::bench {
namespace {

void BM_Aggregation_SumRangeExact(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  BenchSetup setup = MakeSetup(MakeRnInstance(n), /*seed=*/23, 0.0);
  Priority empty = Priority::Empty(setup.problem->graph());
  for (auto _ : state) {
    auto range = AggregateConsistentRange(
        *setup.problem, empty, RepairFamily::kAll, "R", "B",
        AggregateFunction::kSum);
    CHECK(range.ok());
    CHECK(range->lo == 0 && range->hi == static_cast<double>(n));
    benchmark::DoNotOptimize(range->hi);
  }
  state.counters["repair_space"] = setup.problem->CountRepairs().ToDouble();
  state.SetLabel("SUM range via enumeration");
}
BENCHMARK(BM_Aggregation_SumRangeExact)
    ->DenseRange(4, 14, 2)
    ->Unit(benchmark::kMillisecond);

void BM_Aggregation_CountStarPolynomial(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  BenchSetup setup = MakeSetup(MakeRnInstance(n), /*seed=*/23, 0.0);
  for (auto _ : state) {
    auto range = CountStarRange(*setup.problem, "R");
    CHECK(range.ok());
    CHECK(range->lo == static_cast<double>(n));
    benchmark::DoNotOptimize(range->lo);
  }
  state.counters["repair_space"] = setup.problem->CountRepairs().ToDouble();
  state.SetLabel("COUNT(*) range via component decomposition");
}
BENCHMARK(BM_Aggregation_CountStarPolynomial)
    ->RangeMultiplier(4)
    ->Range(4, 4096)
    ->Unit(benchmark::kMicrosecond);

void BM_Aggregation_FamilySweep(benchmark::State& state) {
  RepairFamily family = kAllFamilies[state.range(0)];
  BenchSetup setup = MakeSetup(MakeChainInstance(12), /*seed=*/23, 0.5);
  double width = 0;
  for (auto _ : state) {
    auto range = AggregateConsistentRange(
        *setup.problem, *setup.priority, family, "R", "B",
        AggregateFunction::kSum);
    CHECK(range.ok());
    width = range->hi - range->lo;
    KeepAlive(width);
  }
  state.counters["range_width"] = width;
  state.SetLabel(std::string(RepairFamilyName(family)));
}
BENCHMARK(BM_Aggregation_FamilySweep)
    ->DenseRange(0, 4, 1)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace prefrep::bench

BENCHMARK_MAIN();
