// FIG5, "Consistent Answers to conjunctive queries" column (Rep row).
//
// Paper claims (Figure 5, row 1): consistent answers are PTIME for
// {∀,∃}-free queries but co-NP-complete already for conjunctive queries
// under plain Rep. We regenerate the split on the same key-group
// databases:
//   - ground quantifier-free query -> polynomial prover, flat;
//   - existentially quantified conjunctive query -> repair enumeration,
//     growing as (group size)^groups.

#include "bench_common.h"

namespace prefrep::bench {
namespace {

// True in a repair iff the kept tuple of group 0 has value < 1, i.e. only
// in repairs keeping (0, 0): the consistent answer is false, but proving
// it requires inspecting the repair space.
std::unique_ptr<Query> ConjunctiveQuery() {
  return MustParse("exists v . R(0, v) and v < 1");
}

void BM_Fig5_ConjunctiveCqa_RepNaive(benchmark::State& state) {
  int groups = static_cast<int>(state.range(0));
  BenchSetup setup = MakeSetup(MakeKeyGroupsInstance(groups, 3),
                               /*seed=*/5, 0.0);
  Priority empty = Priority::Empty(setup.problem->graph());
  std::unique_ptr<Query> query = ConjunctiveQuery();
  for (auto _ : state) {
    auto verdict = PreferredConsistentAnswer(*setup.problem, empty,
                                             RepairFamily::kAll, *query);
    CHECK(verdict.ok());
    CHECK(*verdict == CqaVerdict::kUndetermined);
    benchmark::DoNotOptimize(*verdict);
  }
  state.counters["repair_space"] = setup.problem->CountRepairs().ToDouble();
  state.SetLabel("conjunctive / naive enumeration (co-NP)");
}
BENCHMARK(BM_Fig5_ConjunctiveCqa_RepNaive)
    ->DenseRange(2, 10, 1)
    ->Unit(benchmark::kMillisecond);

// The quantifier-free contrast on identical databases: the ground
// instantiation of the same condition is answered in polynomial time.
void BM_Fig5_ConjunctiveCqa_GroundContrast(benchmark::State& state) {
  int groups = static_cast<int>(state.range(0));
  BenchSetup setup = MakeSetup(MakeKeyGroupsInstance(groups, 3),
                               /*seed=*/5, 0.0);
  std::unique_ptr<Query> query = MustParse("R(0, 0)");
  for (auto _ : state) {
    auto result = GroundConsistentAnswer(*setup.problem, *query);
    CHECK(result.ok());
    CHECK(!*result);
    benchmark::DoNotOptimize(*result);
  }
  state.counters["repair_space"] = setup.problem->CountRepairs().ToDouble();
  state.SetLabel("ground instantiation / polynomial prover");
}
BENCHMARK(BM_Fig5_ConjunctiveCqa_GroundContrast)
    ->DenseRange(2, 10, 1)
    ->Unit(benchmark::kMillisecond);

// Query evaluation cost itself is not the bottleneck: evaluating the
// conjunctive query once on the inconsistent database is cheap; the
// blowup above comes purely from ranging over repairs.
void BM_Fig5_ConjunctiveCqa_SingleEvaluation(benchmark::State& state) {
  int groups = static_cast<int>(state.range(0));
  BenchSetup setup = MakeSetup(MakeKeyGroupsInstance(groups, 3),
                               /*seed=*/5, 0.0);
  std::unique_ptr<Query> query = ConjunctiveQuery();
  for (auto _ : state) {
    auto holds = EvalClosed(*setup.instance.db, nullptr, *query);
    CHECK(holds.ok());
    benchmark::DoNotOptimize(*holds);
  }
  state.SetLabel("one evaluation on the inconsistent database");
}
BENCHMARK(BM_Fig5_ConjunctiveCqa_SingleEvaluation)
    ->DenseRange(2, 10, 1)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace prefrep::bench

BENCHMARK_MAIN();
