// EXT-1 — §6 future work: denial constraints on conflict hypergraphs.
//
// The paper closes by generalizing conflict graphs to hypergraphs for
// denial constraints. This bench exercises our implementation of that
// extension: hyperedge detection cost for a unary range constraint plus a
// binary key constraint, hypergraph repair enumeration, and the
// polynomial ground-query prover on hypergraphs.

#include "bench_common.h"
#include "denial/denial.h"

namespace prefrep::bench {
namespace {

// Readings(Sensor:number, Value:number): `groups` sensors with 3 readings
// each (key violations) and every third reading out of range (unary
// violations).
struct DenialSetup {
  std::unique_ptr<Database> db;
  std::vector<DenialConstraint> constraints;
  std::unique_ptr<ConflictHypergraph> graph;
};

DenialSetup MakeDenialSetup(int groups, bool build_graph) {
  DenialSetup setup;
  setup.db = std::make_unique<Database>();
  Schema schema = *Schema::Create(
      "Readings", {Attribute{"Sensor", ValueType::kNumber},
                   Attribute{"Value", ValueType::kNumber}});
  CHECK(setup.db->AddRelation(schema).ok());
  for (int g = 0; g < groups; ++g) {
    for (int j = 0; j < 3; ++j) {
      int value = 10 * j + (j == 2 ? 1000 : 0);  // third reading: too big
      CHECK(setup.db
                ->Insert("Readings", Tuple::Of(Value::Number(g),
                                               Value::Number(value)))
                .ok());
    }
  }
  auto range = DenialConstraint::Create(
      *setup.db, {"Readings"},
      {DcComparison{ComparisonOp::kGt, DcOperand::Attr(0, 1),
                    DcOperand::Const(Value::Number(100))}});
  auto key = DenialConstraint::Create(
      *setup.db, {"Readings", "Readings"},
      {DcComparison{ComparisonOp::kEq, DcOperand::Attr(0, 0),
                    DcOperand::Attr(1, 0)},
       DcComparison{ComparisonOp::kNe, DcOperand::Attr(0, 1),
                    DcOperand::Attr(1, 1)}});
  CHECK(range.ok() && key.ok());
  setup.constraints = {*range, *key};
  if (build_graph) {
    auto edges = FindHyperedges(*setup.db, setup.constraints);
    CHECK(edges.ok());
    setup.graph = std::make_unique<ConflictHypergraph>(
        setup.db->tuple_count(), *edges);
  }
  return setup;
}

void BM_Denial_HyperedgeDetection(benchmark::State& state) {
  int groups = static_cast<int>(state.range(0));
  DenialSetup setup = MakeDenialSetup(groups, /*build_graph=*/false);
  size_t edges = 0;
  for (auto _ : state) {
    auto result = FindHyperedges(*setup.db, setup.constraints);
    CHECK(result.ok());
    edges = result->size();
    KeepAlive(edges);
  }
  state.counters["tuples"] = 3.0 * groups;
  state.counters["hyperedges"] = static_cast<double>(edges);
}
BENCHMARK(BM_Denial_HyperedgeDetection)
    ->RangeMultiplier(2)
    ->Range(4, 64)
    ->Unit(benchmark::kMicrosecond);

void BM_Denial_RepairEnumeration(benchmark::State& state) {
  int groups = static_cast<int>(state.range(0));
  DenialSetup setup = MakeDenialSetup(groups, /*build_graph=*/true);
  size_t repairs = 0;
  for (auto _ : state) {
    repairs = 0;
    EnumerateHypergraphRepairs(*setup.graph,
                               [&repairs](const DynamicBitset&) {
                                 ++repairs;
                                 return true;
                               });
    KeepAlive(repairs);
  }
  // Each sensor keeps exactly one in-range reading: 2 choices per group.
  CHECK_EQ(repairs, size_t{1} << groups);
  state.counters["repairs"] = static_cast<double>(repairs);
}
BENCHMARK(BM_Denial_RepairEnumeration)
    ->DenseRange(2, 10, 2)
    ->Unit(benchmark::kMillisecond);

void BM_Denial_GroundCqa(benchmark::State& state) {
  int groups = static_cast<int>(state.range(0));
  DenialSetup setup = MakeDenialSetup(groups, /*build_graph=*/true);
  // "Sensor 0 reads 0 or 10" holds in every repair; the out-of-range
  // reading 1010 never survives.
  std::unique_ptr<Query> query = MustParse(
      "(Readings(0, 0) or Readings(0, 10)) and not Readings(0, 1010)");
  bool answer = false;
  for (auto _ : state) {
    auto result = GroundConsistentAnswerDenial(*setup.db, *setup.graph,
                                               *query);
    CHECK(result.ok());
    answer = *result;
    KeepAlive(answer);
  }
  CHECK(answer);
  state.counters["tuples"] = 3.0 * groups;
  state.SetLabel("polynomial hypergraph prover");
}
BENCHMARK(BM_Denial_GroundCqa)
    ->RangeMultiplier(2)
    ->Range(4, 64)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace prefrep::bench

BENCHMARK_MAIN();
