// ABL-3 — conflict detection: hash partitioning vs the naive O(n²) scan.
//
// Conflict-graph construction is the substrate every semantics in the
// paper stands on. This ablation justifies the hash-partitioned detector
// in src/constraints: on key-group workloads it is near-linear in the
// number of tuples, while the all-pairs reference scan grows
// quadratically. Both produce identical edge sets (asserted here and
// differentially tested in tests/constraints_test.cc).

#include "bench_common.h"
#include "constraints/conflicts.h"

namespace prefrep::bench {
namespace {

void BM_Ablation_ConflictDetection_Hash(benchmark::State& state) {
  int groups = static_cast<int>(state.range(0));
  GeneratedInstance inst = MakeKeyGroupsInstance(groups, 4);
  size_t edges = 0;
  for (auto _ : state) {
    auto result = FindConflicts(*inst.db, inst.fds);
    CHECK(result.ok());
    edges = result->size();
    benchmark::DoNotOptimize(edges);
  }
  state.counters["tuples"] = 4.0 * groups;
  state.counters["conflicts"] = static_cast<double>(edges);
  state.SetLabel("hash-partitioned");
}
BENCHMARK(BM_Ablation_ConflictDetection_Hash)
    ->RangeMultiplier(4)
    ->Range(16, 4096)
    ->Unit(benchmark::kMicrosecond);

void BM_Ablation_ConflictDetection_Naive(benchmark::State& state) {
  int groups = static_cast<int>(state.range(0));
  GeneratedInstance inst = MakeKeyGroupsInstance(groups, 4);
  size_t edges = 0;
  for (auto _ : state) {
    auto result = FindConflictsNaive(*inst.db, inst.fds);
    CHECK(result.ok());
    edges = result->size();
    benchmark::DoNotOptimize(edges);
  }
  auto hashed = FindConflicts(*inst.db, inst.fds);
  CHECK(hashed.ok());
  CHECK_EQ(hashed->size(), edges);
  state.counters["tuples"] = 4.0 * groups;
  state.SetLabel("all-pairs reference");
}
BENCHMARK(BM_Ablation_ConflictDetection_Naive)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace prefrep::bench

BENCHMARK_MAIN();
