// Algorithm 1 — database cleaning by iterated winnow (§2.2, Prop. 1).
//
// The paper presents Algorithm 1 as the constructive end of the framework:
// with a total priority it computes the unique clean database. This bench
// measures its scaling (and the batched total-priority fast path) plus the
// eager one-pass cleaning baseline of src/cleaning, on key-group workloads
// with a total source-style ranking priority.

#include "bench_common.h"
#include "cleaning/cleaning.h"

namespace prefrep::bench {
namespace {

void BM_Algorithm1_Sequential(benchmark::State& state) {
  int groups = static_cast<int>(state.range(0));
  BenchSetup setup =
      MakeSetup(MakeKeyGroupsInstance(groups, 8), /*seed=*/13, 1.0);
  DynamicBitset result(setup.problem->tuple_count());
  for (auto _ : state) {
    result = CleanDatabase(setup.problem->graph(), *setup.priority);
    benchmark::DoNotOptimize(&result);
  }
  CHECK(setup.problem->IsRepair(result));
  state.counters["tuples"] = 8.0 * groups;
  state.counters["tuples_per_sec"] = benchmark::Counter(
      8.0 * groups, benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_Algorithm1_Sequential)
    ->RangeMultiplier(4)
    ->Range(4, 1024)
    ->Unit(benchmark::kMicrosecond);

void BM_Algorithm1_TotalBatch(benchmark::State& state) {
  int groups = static_cast<int>(state.range(0));
  BenchSetup setup =
      MakeSetup(MakeKeyGroupsInstance(groups, 8), /*seed=*/13, 1.0);
  DynamicBitset result(setup.problem->tuple_count());
  for (auto _ : state) {
    result = CleanDatabaseTotal(setup.problem->graph(), *setup.priority);
    benchmark::DoNotOptimize(&result);
  }
  CHECK(setup.problem->IsRepair(result));
  CHECK(result == CleanDatabase(setup.problem->graph(), *setup.priority));
  state.counters["tuples"] = 8.0 * groups;
  state.counters["tuples_per_sec"] = benchmark::Counter(
      8.0 * groups, benchmark::Counter::kIsIterationInvariantRate);
  state.SetLabel("batched winnow rounds (Prop. 1 fast path)");
}
BENCHMARK(BM_Algorithm1_TotalBatch)
    ->RangeMultiplier(4)
    ->Range(4, 1024)
    ->Unit(benchmark::kMicrosecond);

void BM_EagerCleaningBaseline(benchmark::State& state) {
  int groups = static_cast<int>(state.range(0));
  BenchSetup setup =
      MakeSetup(MakeKeyGroupsInstance(groups, 8), /*seed=*/13, 1.0);
  for (auto _ : state) {
    CleaningReport report = CleanWithPolicy(
        *setup.problem, *setup.priority, UnresolvedConflictPolicy::kKeep);
    benchmark::DoNotOptimize(report.kept.Count());
  }
  state.counters["tuples"] = 8.0 * groups;
  state.SetLabel("eager one-pass cleaning (non-maximal)");
}
BENCHMARK(BM_EagerCleaningBaseline)
    ->RangeMultiplier(4)
    ->Range(4, 1024)
    ->Unit(benchmark::kMicrosecond);

// Winnow itself: the inner operator of Algorithm 1.
void BM_WinnowOperator(benchmark::State& state) {
  int groups = static_cast<int>(state.range(0));
  BenchSetup setup =
      MakeSetup(MakeKeyGroupsInstance(groups, 8), /*seed=*/13, 1.0);
  DynamicBitset all = DynamicBitset::AllSet(setup.problem->tuple_count());
  for (auto _ : state) {
    DynamicBitset w = Winnow(*setup.priority, all);
    benchmark::DoNotOptimize(w.Count());
  }
  state.counters["tuples"] = 8.0 * groups;
}
BENCHMARK(BM_WinnowOperator)
    ->RangeMultiplier(4)
    ->Range(4, 1024)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace prefrep::bench

BENCHMARK_MAIN();
