// ABL-2 — family selectivity per workload class.
//
// Figure 5's last column suggests where each family is the right tool:
// L-Rep for keys without duplicates, S-Rep for one FD with duplicates,
// G-Rep / C-Rep for multiple FDs with mutual conflicts. This ablation
// makes the suggestion quantitative: for each workload class (at priority
// density 50%) it reports how many repairs each family retains — where a
// stronger family prunes strictly more, the paper's "possible
// applications" guidance is visible in the numbers.

#include "bench_common.h"

namespace prefrep::bench {
namespace {

GeneratedInstance MakeClassInstance(int workload_class) {
  switch (workload_class) {
    case 0:  // key, no duplicates (L-Rep territory)
      return MakeKeyGroupsInstance(4, 3);
    case 1:  // one non-key FD with duplicates (S-Rep territory)
      return MakeDuplicatesInstance(3, 2, 2);
    case 2:  // two FDs, mutual conflicts, chain (G/C-Rep territory)
      return MakeChainInstance(10);
    default:  // two FDs, mutual conflicts, cycle (G/C-Rep territory)
      return MakeCycleInstance(4);
  }
}

const char* ClassName(int workload_class) {
  switch (workload_class) {
    case 0:
      return "key-groups";
    case 1:
      return "duplicates";
    case 2:
      return "chain";
    default:
      return "cycle";
  }
}

void BM_Ablation_FamilySelectivity(benchmark::State& state) {
  int workload_class = static_cast<int>(state.range(0));
  RepairFamily family = kAllFamilies[state.range(1)];
  GeneratedInstance inst = MakeClassInstance(workload_class);
  auto problem = RepairProblem::Create(inst.db.get(), inst.fds);
  CHECK(problem.ok());
  Rng rng(2026);
  Priority priority = RandomRankingPriority(rng, problem->graph(), 0.5);

  size_t family_size = 0;
  for (auto _ : state) {
    auto repairs = PreferredRepairs(problem->graph(), priority, family);
    CHECK(repairs.ok());
    family_size = repairs->size();
    KeepAlive(family_size);
  }
  auto all = problem->AllRepairs();
  CHECK(all.ok());
  state.counters["family_size"] = static_cast<double>(family_size);
  state.counters["all_repairs"] = static_cast<double>(all->size());
  state.counters["retained_pct"] =
      100.0 * static_cast<double>(family_size) /
      static_cast<double>(all->size());
  state.SetLabel(std::string(ClassName(workload_class)) + " / " +
                 std::string(RepairFamilyName(family)));
}
BENCHMARK(BM_Ablation_FamilySelectivity)
    ->ArgsProduct({{0, 1, 2, 3}, {0, 1, 2, 3, 4}})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace prefrep::bench

BENCHMARK_MAIN();
