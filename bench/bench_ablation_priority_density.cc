// ABL-1 — how much preference information narrows the repair space.
//
// Monotonicity (P2) says extending a priority can only shrink each
// preferred-repair family; this ablation quantifies the narrowing: on a
// fixed conflict chain we sweep the fraction of oriented conflict edges
// (density 0%, 25%, 50%, 75%, 100%) and report |X-Rep| per family,
// averaged over seeds, together with the family-computation time.
// At density 0 every family equals Rep (P3); at density 1 the optimal
// families collapse to the single clean database (P4 / Prop. 1).

#include "bench_common.h"

namespace prefrep::bench {
namespace {

constexpr int kChainLength = 14;
constexpr int kSeeds = 5;

void BM_Ablation_PriorityDensity(benchmark::State& state) {
  RepairFamily family = kAllFamilies[state.range(0)];
  double density = static_cast<double>(state.range(1)) / 100.0;

  GeneratedInstance inst = MakeChainInstance(kChainLength);
  auto problem = RepairProblem::Create(inst.db.get(), inst.fds);
  CHECK(problem.ok());
  std::vector<Priority> priorities;
  for (int seed = 0; seed < kSeeds; ++seed) {
    Rng rng(100 + seed);
    priorities.push_back(
        RandomRankingPriority(rng, problem->graph(), density));
  }

  double total_repairs = 0;
  for (auto _ : state) {
    total_repairs = 0;
    for (const Priority& priority : priorities) {
      auto repairs = PreferredRepairs(problem->graph(), priority, family);
      CHECK(repairs.ok());
      total_repairs += static_cast<double>(repairs->size());
    }
    KeepAlive(total_repairs);
  }
  state.counters["avg_family_size"] = total_repairs / kSeeds;
  state.counters["density_pct"] = static_cast<double>(state.range(1));
  state.SetLabel(std::string(RepairFamilyName(family)));
}
BENCHMARK(BM_Ablation_PriorityDensity)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {0, 25, 50, 75, 100}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace prefrep::bench

BENCHMARK_MAIN();
