// FIG5, "Repair Check" column — X-repair checking per family.
//
// Paper claims (Figure 5):
//   Rep    PTIME      | L-Rep PTIME | S-Rep PTIME | C-Rep PTIME
//   G-Rep  co-NP-complete
//
// We measure the latency of IsPreferredRepair on a valid repair (the
// Algorithm 1 output, which belongs to every family) as the instance
// grows. The polynomial families are swept on large key-group workloads;
// G-repair checking is swept on conflict chains, where certifying global
// optimality forces the witness search through an exponentially growing
// repair space (Fibonacci-many repairs on a path).

#include "bench_common.h"

namespace prefrep::bench {
namespace {

constexpr int kPolyFamilyCount = 4;
const RepairFamily kPolyFamilies[kPolyFamilyCount] = {
    RepairFamily::kAll, RepairFamily::kLocal, RepairFamily::kSemiGlobal,
    RepairFamily::kCommon};

// ---- PTIME rows: Rep, L-Rep, S-Rep, C-Rep on key-group workloads --------

void BM_Fig5_RepairCheck_PolyFamilies(benchmark::State& state) {
  RepairFamily family = kPolyFamilies[state.range(0)];
  int groups = static_cast<int>(state.range(1));
  BenchSetup setup =
      MakeSetup(MakeKeyGroupsInstance(groups, 4), /*seed=*/7, 0.5);
  DynamicBitset repair =
      CleanDatabase(setup.problem->graph(), *setup.priority);
  bool member = false;
  for (auto _ : state) {
    member = IsPreferredRepair(setup.problem->graph(), *setup.priority,
                               family, repair);
    KeepAlive(member);
  }
  CHECK(member);  // Algorithm 1 outputs are in C ⊆ G ⊆ S ⊆ L ⊆ Rep
  state.counters["tuples"] = 4.0 * groups;
  state.SetLabel(std::string(RepairFamilyName(family)));
}
BENCHMARK(BM_Fig5_RepairCheck_PolyFamilies)
    ->ArgsProduct({{0, 1, 2, 3}, {16, 64, 256, 1024}})
    ->Unit(benchmark::kMicrosecond);

// ---- co-NP row: G-repair checking on conflict chains ---------------------

void BM_Fig5_RepairCheck_Global(benchmark::State& state) {
  int length = static_cast<int>(state.range(0));
  BenchSetup setup = MakeSetup(MakeChainInstance(length), /*seed=*/7, 0.5);
  DynamicBitset repair =
      CleanDatabase(setup.problem->graph(), *setup.priority);
  bool member = false;
  for (auto _ : state) {
    member = IsPreferredRepair(setup.problem->graph(), *setup.priority,
                               RepairFamily::kGlobal, repair);
    KeepAlive(member);
  }
  CHECK(member);
  state.counters["tuples"] = length;
  state.counters["repair_space"] =
      setup.problem->CountRepairs().ToDouble();
  state.SetLabel("G-Rep (witness search over all repairs)");
}
BENCHMARK(BM_Fig5_RepairCheck_Global)
    ->DenseRange(8, 38, 3)
    ->Unit(benchmark::kMicrosecond);

// The same chain sizes for a PTIME family: the flat baseline that makes
// the exponential growth of G-checking visible side by side.
void BM_Fig5_RepairCheck_CommonOnChains(benchmark::State& state) {
  int length = static_cast<int>(state.range(0));
  BenchSetup setup = MakeSetup(MakeChainInstance(length), /*seed=*/7, 0.5);
  DynamicBitset repair =
      CleanDatabase(setup.problem->graph(), *setup.priority);
  bool member = false;
  for (auto _ : state) {
    member = IsPreferredRepair(setup.problem->graph(), *setup.priority,
                               RepairFamily::kCommon, repair);
    KeepAlive(member);
  }
  CHECK(member);
  state.counters["tuples"] = length;
  state.SetLabel("C-Rep (greedy Prop. 7 simulation)");
}
BENCHMARK(BM_Fig5_RepairCheck_CommonOnChains)
    ->DenseRange(8, 38, 3)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace prefrep::bench

BENCHMARK_MAIN();
