// Per-repair evaluation throughput: reference evaluator vs PreparedQuery.
//
// The CQA hot loop (cqa/cqa.cc) evaluates one fixed query once per
// enumerated repair. The reference evaluator re-derives validation, the
// active domain and per-atom scans on every call, so its per-repair cost
// grows with the database; the prepared path hoists all of it into
// Compile and pays only the quantifier search per repair. This benchmark
// isolates exactly that per-repair cost on key-group instances (one
// repair = one choice per conflict clique), plus the one-off Compile cost
// for context.

#include <vector>

#include "bench_common.h"
#include "query/evaluator.h"
#include "query/prepared.h"

namespace prefrep::bench {
namespace {

// `count` random repairs of the key-groups instance: one kept tuple per
// group of `group_size` conflicting tuples.
std::vector<DynamicBitset> RandomRepairs(const Database& db, int groups,
                                         int group_size, int count,
                                         uint64_t seed) {
  Rng rng(seed);
  std::vector<DynamicBitset> repairs;
  repairs.reserve(count);
  for (int r = 0; r < count; ++r) {
    DynamicBitset repair(db.tuple_count());
    for (int g = 0; g < groups; ++g) {
      repair.Set(g * group_size + static_cast<int>(rng.UniformInt(group_size)));
    }
    repairs.push_back(std::move(repair));
  }
  return repairs;
}

constexpr int kGroupSize = 3;
constexpr int kRepairPoolSize = 64;

// The Fig. 5 conjunctive shape: exists v . R(0, v) and v < 1.
std::unique_ptr<Query> ConjunctiveQuery() {
  return MustParse("exists v . R(0, v) and v < 1");
}

void BM_PerRepair_ReferenceEvaluator(benchmark::State& state) {
  int groups = static_cast<int>(state.range(0));
  GeneratedInstance instance = MakeKeyGroupsInstance(groups, kGroupSize);
  std::vector<DynamicBitset> repairs =
      RandomRepairs(*instance.db, groups, kGroupSize, kRepairPoolSize, 7);
  std::unique_ptr<Query> query = ConjunctiveQuery();
  size_t next = 0;
  bool holds = false;
  for (auto _ : state) {
    auto result =
        EvalClosed(*instance.db, &repairs[next++ % kRepairPoolSize], *query);
    CHECK(result.ok());
    holds = *result;
    KeepAlive(holds);
  }
  state.counters["tuples"] = static_cast<double>(instance.db->tuple_count());
  state.SetLabel("EvalClosed: re-derives domain/validation per repair");
}
BENCHMARK(BM_PerRepair_ReferenceEvaluator)
    ->RangeMultiplier(8)
    ->Range(8, 4096)
    ->Unit(benchmark::kMicrosecond);

void BM_PerRepair_PreparedEvaluator(benchmark::State& state) {
  int groups = static_cast<int>(state.range(0));
  GeneratedInstance instance = MakeKeyGroupsInstance(groups, kGroupSize);
  std::vector<DynamicBitset> repairs =
      RandomRepairs(*instance.db, groups, kGroupSize, kRepairPoolSize, 7);
  std::unique_ptr<Query> query = ConjunctiveQuery();
  auto prepared = PreparedQuery::Compile(*instance.db, *query);
  CHECK(prepared.ok()) << prepared.status().ToString();
  size_t next = 0;
  bool holds = false;
  for (auto _ : state) {
    auto result = prepared->EvalClosed(&repairs[next++ % kRepairPoolSize]);
    CHECK(result.ok());
    holds = *result;
    KeepAlive(holds);
  }
  state.counters["tuples"] = static_cast<double>(instance.db->tuple_count());
  state.SetLabel("PreparedQuery: per-repair quantifier search only");
}
BENCHMARK(BM_PerRepair_PreparedEvaluator)
    ->RangeMultiplier(8)
    ->Range(8, 4096)
    ->Unit(benchmark::kMicrosecond);

// The hoisted one-off cost: compiling (validation, typing, active domain,
// tuple indexes). Amortized over a repair space this rounds to zero.
void BM_PreparedCompile(benchmark::State& state) {
  int groups = static_cast<int>(state.range(0));
  GeneratedInstance instance = MakeKeyGroupsInstance(groups, kGroupSize);
  std::unique_ptr<Query> query = ConjunctiveQuery();
  for (auto _ : state) {
    auto prepared = PreparedQuery::Compile(*instance.db, *query);
    CHECK(prepared.ok());
    benchmark::DoNotOptimize(prepared);
  }
  state.counters["tuples"] = static_cast<double>(instance.db->tuple_count());
  state.SetLabel("Compile (once per CQA call)");
}
BENCHMARK(BM_PreparedCompile)
    ->RangeMultiplier(8)
    ->Range(8, 4096)
    ->Unit(benchmark::kMicrosecond);

// Open-query variant: per-repair answer-set computation for R(0, y).
void BM_PerRepairOpen_ReferenceEvaluator(benchmark::State& state) {
  int groups = static_cast<int>(state.range(0));
  GeneratedInstance instance = MakeKeyGroupsInstance(groups, kGroupSize);
  std::vector<DynamicBitset> repairs =
      RandomRepairs(*instance.db, groups, kGroupSize, kRepairPoolSize, 9);
  std::unique_ptr<Query> query = MustParse("R(0, y)");
  size_t next = 0;
  for (auto _ : state) {
    auto answer =
        EvalOpen(*instance.db, &repairs[next++ % kRepairPoolSize], *query);
    CHECK(answer.ok());
    benchmark::DoNotOptimize(answer->rows);
  }
  state.counters["tuples"] = static_cast<double>(instance.db->tuple_count());
}
BENCHMARK(BM_PerRepairOpen_ReferenceEvaluator)
    ->RangeMultiplier(8)
    ->Range(8, 512)
    ->Unit(benchmark::kMicrosecond);

void BM_PerRepairOpen_PreparedEvaluator(benchmark::State& state) {
  int groups = static_cast<int>(state.range(0));
  GeneratedInstance instance = MakeKeyGroupsInstance(groups, kGroupSize);
  std::vector<DynamicBitset> repairs =
      RandomRepairs(*instance.db, groups, kGroupSize, kRepairPoolSize, 9);
  std::unique_ptr<Query> query = MustParse("R(0, y)");
  auto prepared = PreparedQuery::Compile(*instance.db, *query);
  CHECK(prepared.ok());
  size_t next = 0;
  for (auto _ : state) {
    auto answer = prepared->EvalOpen(&repairs[next++ % kRepairPoolSize]);
    CHECK(answer.ok());
    benchmark::DoNotOptimize(answer->rows);
  }
  state.counters["tuples"] = static_cast<double>(instance.db->tuple_count());
}
BENCHMARK(BM_PerRepairOpen_PreparedEvaluator)
    ->RangeMultiplier(8)
    ->Range(8, 512)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace prefrep::bench

BENCHMARK_MAIN();
