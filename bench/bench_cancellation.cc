// Time-to-cancel for the governed enumeration stack (manual timing).
//
// Each iteration launches a long-running governed query on a worker
// thread, waits until the engine is demonstrably mid-flight (the
// context's repairs_examined counter has moved), then requests
// cancellation and measures the interval until the engine returns. That
// interval — not the query's runtime — is the reported time: it bounds
// how stale a Ctrl-C or deadline can go unnoticed, i.e. the worst-case
// gap between ShouldStop() polls across every engine layer.
//
// Rows cover the two long-loop shapes at threads 1 and 4: streamed
// family enumeration (C-Rep's choice-tree walk over path components,
// repair space far too large to finish) and sharded CQA evaluation (a
// certainly-true query, so no early stop ends the scan first).
//
// The companion guardrail lives in the gated benches compared against
// the previous baseline: attaching no context must stay within noise
// (<2%), since ungoverned paths poll nothing.

#include "bench_common.h"

#include <atomic>
#include <chrono>
#include <thread>

#include "base/exec_context.h"
#include "base/thread_pool.h"
#include "graph/conflict_graph.h"

namespace prefrep::bench {
namespace {

struct GraphWorkload {
  ConflictGraph graph;
  Priority priority;
};

GraphWorkload MakePathsWorkload() {
  Rng rng(42);
  std::vector<int> sizes(8, 32);  // ~10k-repair lists per component
  ConflictGraph graph = MakeComponentPathsGraph(rng, sizes);
  Priority priority = RandomRankingPriority(rng, graph, 0.5);
  return GraphWorkload{std::move(graph), std::move(priority)};
}

double SecondsBetween(std::chrono::steady_clock::time_point a,
                      std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

void BM_TimeToCancel_FamilyEnumeration(benchmark::State& state) {
  GraphWorkload workload = MakePathsWorkload();
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ExecutionContext context;
    ParallelOptions options;
    options.threads = threads;
    options.context = &context;
    std::thread worker([&] {
      EnumeratePreferredRepairs(
          workload.graph, workload.priority, RepairFamily::kCommon, options,
          [&context](const DynamicBitset&) {
            context.stats().AddRepairsExamined();
            return true;  // never stops voluntarily: the space is huge
          });
    });
    while (context.stats().repairs_examined() == 0) {
      std::this_thread::yield();
    }
    auto t0 = std::chrono::steady_clock::now();
    context.RequestCancel();
    worker.join();
    auto t1 = std::chrono::steady_clock::now();
    state.SetIterationTime(SecondsBetween(t0, t1));
  }
  state.SetLabel("C-Rep on 8 paths of 32, threads=" +
                 std::to_string(threads));
}
BENCHMARK(BM_TimeToCancel_FamilyEnumeration)
    ->Arg(1)->Arg(4)
    ->UseManualTime()
    ->Unit(benchmark::kMicrosecond);

void BM_TimeToCancel_ShardedCqa(benchmark::State& state) {
  // Complete-multipartite components: small per-component lists, a
  // ~390k-repair product dominated by the (sharded) per-repair eval.
  Rng rng(7);
  BenchSetup setup =
      MakeSetup(MakeComponentsInstance(rng, {5, 5, 5, 5, 5, 5, 5, 5}),
                /*seed=*/11, /*priority_density=*/0.0);
  // Certainly true (some tuple of group 0 survives in every repair), so
  // the scan never short-circuits on its own.
  std::unique_ptr<Query> query = MustParse("exists x, y . R(0, x, y)");
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ExecutionContext context;
    ParallelOptions options;
    options.threads = threads;
    options.context = &context;
    std::thread worker([&] {
      auto verdict = EnumeratedConsistentAnswer(
          *setup.problem, *setup.priority, RepairFamily::kAll, *query,
          options);
      // Cancelled runs surface the context's status; completing first
      // (cancel raced the tail of the scan) is also legal.
      CHECK(!verdict.ok() || *verdict == CqaVerdict::kCertainlyTrue);
    });
    while (context.stats().repairs_examined() == 0) {
      std::this_thread::yield();
    }
    auto t0 = std::chrono::steady_clock::now();
    context.RequestCancel();
    worker.join();
    auto t1 = std::chrono::steady_clock::now();
    state.SetIterationTime(SecondsBetween(t0, t1));
  }
  state.SetLabel("certainly-true CQA over 5^8 repairs, threads=" +
                 std::to_string(threads));
}
BENCHMARK(BM_TimeToCancel_ShardedCqa)
    ->Arg(1)->Arg(4)
    ->UseManualTime()
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace prefrep::bench

BENCHMARK_MAIN();
