#!/usr/bin/env python3
"""Documentation consistency checker (CI `docs` job).

Two guarantees, so the docs cannot silently rot as the tree grows:

  1. Every intra-repository markdown link resolves: for each `[text](target)`
     in a tracked *.md file whose target is not an external URL or a pure
     anchor, the referenced file (relative to the linking file) must exist.
  2. docs/ARCHITECTURE.md stays complete: every module directory under src/
     must be mentioned (as `src/<module>/`), so adding a module without
     documenting it fails CI.

Stdlib only; exits non-zero with one line per violation.
"""

import argparse
import pathlib
import re
import sys

# [text](target) — target captured up to the closing paren; markdown image
# links ![alt](target) match the same pattern via the [alt] part.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

SKIP_DIRS = {".git", "build", "third_party", ".ccache"}

EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def markdown_files(root: pathlib.Path):
    for path in sorted(root.rglob("*.md")):
        if any(part in SKIP_DIRS for part in path.parts):
            continue
        yield path


def check_links(root: pathlib.Path) -> list:
    errors = []
    for md in markdown_files(root):
        text = md.read_text(encoding="utf-8")
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(EXTERNAL_PREFIXES):
                continue
            if target.startswith("#"):  # intra-document anchor
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (md.parent / path_part).resolve()
            if not resolved.exists():
                errors.append(
                    f"{md.relative_to(root)}: broken link '{target}'"
                )
    return errors


def check_architecture_coverage(root: pathlib.Path) -> list:
    arch = root / "docs" / "ARCHITECTURE.md"
    if not arch.exists():
        return ["docs/ARCHITECTURE.md does not exist"]
    text = arch.read_text(encoding="utf-8")
    errors = []
    src = root / "src"
    for module in sorted(p.name for p in src.iterdir() if p.is_dir()):
        if f"src/{module}/" not in text:
            errors.append(
                f"docs/ARCHITECTURE.md: module 'src/{module}/' is not"
                " documented"
            )
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent,
        help="repository root (default: the parent of tools/)",
    )
    args = parser.parse_args()

    errors = check_links(args.root) + check_architecture_coverage(args.root)
    for error in errors:
        print(f"error: {error}", file=sys.stderr)
    if not errors:
        count = len(list(markdown_files(args.root)))
        print(f"docs check OK ({count} markdown files)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
