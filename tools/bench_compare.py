#!/usr/bin/env python3
"""Compare Google Benchmark JSON results against a checked-in baseline.

Used by the `bench-regression` CI job and for local before/after checks:

    # current results, one JSON per binary (--benchmark_out):
    python3 tools/bench_compare.py --baseline BENCH_pr2.json out/*.json

    # or compare two merged baseline files directly:
    python3 tools/bench_compare.py --baseline BENCH_pr2.json BENCH_pr3.json

Baselines are "merged" files: one top-level key per bench binary, each
holding that binary's Google Benchmark output (see the `note` field of
BENCH_seed.json). Current results may be merged files or plain
`--benchmark_out` files, whose binary name is taken from the filename stem.

Rows are matched by (binary, benchmark name) and compared on wall time
(`real_time`, normalized across time units). A matched row fails the gate
when current > --threshold x baseline. Rows present only in the current
results (new benchmarks) or only in the baseline (removed benchmarks) are
reported but never fail the gate, so adding benchmarks stays cheap.
Matched rows whose baseline is faster than --min-baseline-us are also
report-only: microsecond-scale rows swing well past any sane threshold
from scheduler/runner variance alone, and CI compares runs from different
machines. For exactly that cross-machine case, --normalize-by-median
divides every ratio by the median matched ratio before thresholding: a
runner uniformly k-times slower than the baseline machine then gates at
~1.0x everywhere, while a genuine hot-path regression still sticks out
above the pack. The factor is clamped to [1.0, 4.0]: a median below 1
(the current run is mostly *faster*, e.g. an optimizing PR) must not
tighten the gate on its untouched rows, and a median above 4 is not a
plausible runner-speed gap, so the remainder still gates. The blind spot
left open is a change that regresses every matched row by the same
factor (indistinguishable from slower hardware by construction); per-row
regressions — the realistic kind — rise above the median and fail.

Exit status: 0 OK, 1 regression(s) over threshold, 2 usage/input error.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def fail_usage(message: str) -> "sys.NoReturn":
    print(f"bench_compare: error: {message}", file=sys.stderr)
    sys.exit(2)


def row_time_ns(row: dict) -> float:
    unit = row.get("time_unit", "ns")
    if unit not in TIME_UNIT_NS:
        fail_usage(f"unknown time_unit {unit!r} in row {row.get('name')!r}")
    return float(row["real_time"]) * TIME_UNIT_NS[unit]


def iteration_rows(document: dict) -> dict[str, dict]:
    """name -> row for the document's plain iteration rows (no aggregates)."""
    rows = {}
    for row in document.get("benchmarks", []):
        if row.get("run_type", "iteration") != "iteration":
            continue
        rows[row["name"]] = row
    return rows


def load_merged_or_single(path: pathlib.Path) -> dict[str, dict[str, dict]]:
    """binary -> name -> row, accepting merged and --benchmark_out formats."""
    try:
        document = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        fail_usage(f"cannot read {path}: {error}")
    if "benchmarks" in document:
        # A single binary's --benchmark_out file; strip common suffixes so
        # `bench_foo.json` and `bench_foo.out.json` both map to `bench_foo`.
        binary = path.name.split(".")[0]
        return {binary: iteration_rows(document)}
    merged = {}
    for key, value in document.items():
        if isinstance(value, dict) and "benchmarks" in value:
            merged[key] = iteration_rows(value)
    if not merged:
        fail_usage(f"{path} holds no benchmark documents")
    return merged


def format_time(ns: float) -> str:
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.3g} {unit}"
    return f"{ns:.3g} ns"


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Gate benchmark results against a baseline JSON.")
    parser.add_argument("--baseline", required=True, type=pathlib.Path,
                        help="merged baseline file, e.g. BENCH_pr2.json")
    parser.add_argument("--threshold", type=float, default=1.5,
                        help="fail when current > threshold x baseline "
                             "(default 1.5)")
    parser.add_argument("--min-baseline-us", type=float, default=0.0,
                        help="report-only (never fail) rows whose baseline "
                             "wall time is below this many microseconds "
                             "(default 0 = gate everything)")
    parser.add_argument("--normalize-by-median", action="store_true",
                        help="divide each ratio by the median matched ratio "
                             "before thresholding (cancels a uniform "
                             "machine-speed offset between baseline and "
                             "current hardware)")
    parser.add_argument("current", nargs="+", type=pathlib.Path,
                        help="current result files (--benchmark_out or "
                             "merged)")
    args = parser.parse_args()
    if args.threshold <= 0:
        fail_usage("--threshold must be positive")

    baseline = load_merged_or_single(args.baseline)
    current: dict[str, dict[str, dict]] = {}
    for path in args.current:
        for binary, rows in load_merged_or_single(path).items():
            current.setdefault(binary, {}).update(rows)

    matched_rows = []  # (binary, name, base_ns, cur_ns, raw_ratio)
    new_rows = []
    removed_rows = []

    for binary in sorted(current):
        base_rows = baseline.get(binary, {})
        if not base_rows:
            new_rows.extend(f"{binary}:{name}" for name in current[binary])
            continue
        for name in sorted(current[binary]):
            if name not in base_rows:
                new_rows.append(f"{binary}:{name}")
                continue
            base_ns = row_time_ns(base_rows[name])
            cur_ns = row_time_ns(current[binary][name])
            ratio = cur_ns / base_ns if base_ns > 0 else float("inf")
            matched_rows.append((binary, name, base_ns, cur_ns, ratio))
        removed_rows.extend(f"{binary}:{name}" for name in sorted(base_rows)
                            if name not in current[binary])
    removed_rows.extend(f"{binary}:{name}"
                        for binary in sorted(baseline)
                        if binary not in current
                        for name in sorted(baseline[binary]))

    if not matched_rows:
        fail_usage("no rows matched the baseline — wrong files?")

    speed_factor = 1.0
    if args.normalize_by_median:
        ratios = sorted(r[4] for r in matched_rows)
        mid = len(ratios) // 2
        median = (ratios[mid] if len(ratios) % 2
                  else (ratios[mid - 1] + ratios[mid]) / 2)
        # Clamp: a median < 1 means the current run is mostly faster (an
        # optimizing change) — that must not tighten the gate on untouched
        # rows; a median > 4 is not a plausible runner-speed gap.
        speed_factor = min(max(median, 1.0), 4.0)
        print(f"bench_compare: median matched ratio {median:.3f}x; "
              f"normalizing by {speed_factor:.3f}x "
              f"(machine-speed offset, clamped to [1, 4])")

    regressions = []
    improvements = 0
    for binary, name, base_ns, cur_ns, raw_ratio in matched_rows:
        ratio = raw_ratio / speed_factor
        status = "ok"
        if ratio > args.threshold:
            if base_ns < args.min_baseline_us * 1e3:
                status = "noise"  # too fast to gate across machines
            else:
                status = "REGRESSION"
                regressions.append((binary, name, ratio))
        elif ratio < 1.0:
            improvements += 1
        print(f"{status:>10}  {ratio:6.2f}x  {binary}:{name}  "
              f"{format_time(base_ns)} -> {format_time(cur_ns)}")

    for entry in new_rows:
        print(f"{'new':>10}      -    {entry}  (report-only, no baseline row)")
    for entry in removed_rows:
        print(f"{'removed':>10}      -    {entry}  (present only in baseline)")

    print(f"\nbench_compare: {len(matched_rows)} matched rows, "
          f"{improvements} faster, "
          f"{len(regressions)} over {args.threshold:.2f}x threshold, "
          f"{len(new_rows)} new, {len(removed_rows)} removed")
    if regressions:
        worst = max(regressions, key=lambda r: r[2])
        print(f"bench_compare: FAIL — worst {worst[0]}:{worst[1]} "
              f"at {worst[2]:.2f}x", file=sys.stderr)
        return 1
    print("bench_compare: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
