# Shared build helpers: GoogleTest resolution and test registration.

# Resolves GoogleTest in order of preference: a vendored tree under
# third_party/googletest, the system package, then a FetchContent
# download (see third_party/README.md). Defines GTest::gtest_main.
function(prefrep_resolve_gtest)
  if(TARGET GTest::gtest_main)
    return()
  endif()
  # Shared settings for the two source-build providers (vendored, fetched).
  set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  if(EXISTS "${PROJECT_SOURCE_DIR}/third_party/googletest/CMakeLists.txt")
    add_subdirectory("${PROJECT_SOURCE_DIR}/third_party/googletest"
                     "${PROJECT_BINARY_DIR}/third_party/googletest"
                     EXCLUDE_FROM_ALL)
    set(provider "vendored (third_party/googletest)")
  else()
    find_package(GTest QUIET)
    if(GTest_FOUND)
      set(provider "system (find_package)")
    else()
      include(FetchContent)
      FetchContent_Declare(
        googletest
        URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz
        URL_HASH SHA256=8ad598c73ad796e0d8280b082cebd82a630d73e73cd3c70057938a6501bba5d7
      )
      FetchContent_MakeAvailable(googletest)
      set(provider "downloaded (FetchContent)")
    endif()
  endif()
  message(STATUS "prefrep: GoogleTest provider: ${provider}")
endfunction()

# Adds one test binary + ctest entry for a tests/*.cc suite and labels it
# by filename: *_property_test / properties_test -> property,
# paper_* -> paper, else unit. The target name and label are returned
# through `out_target` and `out_label`.
function(prefrep_add_test_suite test_source out_target out_label)
  get_filename_component(test_name "${test_source}" NAME_WE)
  add_executable(${test_name} "${test_source}")
  target_link_libraries(${test_name} PRIVATE prefrep GTest::gtest_main)
  add_test(NAME ${test_name} COMMAND ${test_name})
  if(test_name MATCHES "(_property|properties)_test$")
    set(test_label "property")
  elseif(test_name MATCHES "^paper_")
    set(test_label "paper")
  else()
    set(test_label "unit")
  endif()
  set_tests_properties(${test_name} PROPERTIES LABELS "${test_label}"
                                               TIMEOUT 300)
  set(${out_target} "${test_name}" PARENT_SCOPE)
  set(${out_label} "${test_label}" PARENT_SCOPE)
endfunction()
