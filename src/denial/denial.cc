#include "denial/denial.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "query/normal_form.h"

namespace prefrep {

namespace {

Status ValidateOperand(const Database& db,
                       const std::vector<std::string>& relations,
                       const DcOperand& operand) {
  if (operand.is_constant()) return Status::Ok();
  if (operand.tuple_index < 0 ||
      operand.tuple_index >= static_cast<int>(relations.size())) {
    return Status::OutOfRange("operand tuple index " +
                              std::to_string(operand.tuple_index) +
                              " out of range");
  }
  PREFREP_ASSIGN_OR_RETURN(const Relation* rel,
                           db.relation(relations[operand.tuple_index]));
  if (operand.attribute < 0 || operand.attribute >= rel->schema().arity()) {
    return Status::OutOfRange("operand attribute " +
                              std::to_string(operand.attribute) +
                              " out of range for " + rel->schema().ToString());
  }
  return Status::Ok();
}

Value ResolveOperand(const DcOperand& operand,
                     const std::vector<const Tuple*>& tuples) {
  if (operand.is_constant()) return operand.constant;
  return tuples[operand.tuple_index]->value(operand.attribute);
}

}  // namespace

Result<DenialConstraint> DenialConstraint::Create(
    const Database& db, std::vector<std::string> relations,
    std::vector<DcComparison> comparisons) {
  if (relations.empty()) {
    return Status::InvalidArgument("denial constraint quantifies no tuples");
  }
  for (const std::string& rel : relations) {
    if (!db.HasRelation(rel)) {
      return Status::NotFound("denial constraint references unknown "
                              "relation '" + rel + "'");
    }
  }
  for (const DcComparison& cmp : comparisons) {
    PREFREP_RETURN_IF_ERROR(ValidateOperand(db, relations, cmp.lhs));
    PREFREP_RETURN_IF_ERROR(ValidateOperand(db, relations, cmp.rhs));
  }
  DenialConstraint dc;
  dc.relations_ = std::move(relations);
  dc.comparisons_ = std::move(comparisons);
  return dc;
}

Result<DenialConstraint> DenialConstraint::FromFd(
    const Database& db, const FunctionalDependency& fd, int rhs_attribute) {
  if (std::find(fd.rhs().begin(), fd.rhs().end(), rhs_attribute) ==
      fd.rhs().end()) {
    return Status::InvalidArgument("attribute is not on the FD's RHS");
  }
  std::vector<DcComparison> comparisons;
  for (int a : fd.lhs()) {
    comparisons.push_back(DcComparison{
        ComparisonOp::kEq, DcOperand::Attr(0, a), DcOperand::Attr(1, a)});
  }
  comparisons.push_back(DcComparison{ComparisonOp::kNe,
                                     DcOperand::Attr(0, rhs_attribute),
                                     DcOperand::Attr(1, rhs_attribute)});
  return Create(db, {fd.relation_name(), fd.relation_name()},
                std::move(comparisons));
}

bool DenialConstraint::ViolatedBy(
    const std::vector<const Tuple*>& tuples) const {
  CHECK_EQ(static_cast<int>(tuples.size()), arity());
  for (const DcComparison& cmp : comparisons_) {
    if (!EvalComparison(cmp.op, ResolveOperand(cmp.lhs, tuples),
                        ResolveOperand(cmp.rhs, tuples))) {
      return false;
    }
  }
  return true;
}

Result<std::vector<std::vector<TupleId>>> FindHyperedges(
    const Database& db, const std::vector<DenialConstraint>& constraints) {
  std::set<std::vector<TupleId>> candidates;
  for (const DenialConstraint& dc : constraints) {
    int k = dc.arity();
    // Relation index per quantified position.
    std::vector<int> rel_index(k);
    for (int i = 0; i < k; ++i) {
      bool found = false;
      for (int r = 0; r < db.relation_count(); ++r) {
        if (db.relations()[r].schema().relation_name() ==
            dc.relations()[i]) {
          rel_index[i] = r;
          found = true;
        }
      }
      if (!found) {
        return Status::NotFound("unknown relation in denial constraint");
      }
    }
    // Nested enumeration of assignments (data size ^ k; k is tiny).
    std::vector<int> rows(k, 0);
    std::vector<const Tuple*> tuples(k, nullptr);
    std::function<void(int)> recurse = [&](int pos) {
      if (pos == k) {
        if (!dc.ViolatedBy(tuples)) return;
        std::vector<TupleId> edge;
        for (int i = 0; i < k; ++i) {
          edge.push_back(db.GlobalId(rel_index[i], rows[i]));
        }
        std::sort(edge.begin(), edge.end());
        edge.erase(std::unique(edge.begin(), edge.end()), edge.end());
        candidates.insert(std::move(edge));
        return;
      }
      const Relation& rel = db.relations()[rel_index[pos]];
      for (int row = 0; row < rel.size(); ++row) {
        rows[pos] = row;
        tuples[pos] = &rel.tuple(row);
        recurse(pos + 1);
      }
    };
    recurse(0);
  }
  // Keep only minimal hyperedges (a superset of a violation is redundant).
  std::vector<std::vector<TupleId>> minimal;
  for (const auto& edge : candidates) {
    bool has_subset = false;
    for (const auto& other : candidates) {
      if (&other == &edge || other.size() >= edge.size()) continue;
      if (std::includes(edge.begin(), edge.end(), other.begin(),
                        other.end())) {
        has_subset = true;
        break;
      }
    }
    if (!has_subset) minimal.push_back(edge);
  }
  return minimal;
}

ConflictHypergraph::ConflictHypergraph(
    int vertex_count, std::vector<std::vector<int>> hyperedges)
    : vertex_count_(vertex_count), edges_(std::move(hyperedges)) {
  incident_.assign(vertex_count, {});
  edge_masks_.reserve(edges_.size());
  for (size_t e = 0; e < edges_.size(); ++e) {
    std::sort(edges_[e].begin(), edges_[e].end());
    DynamicBitset mask(vertex_count);
    for (int v : edges_[e]) {
      CHECK(v >= 0 && v < vertex_count);
      mask.Set(v);
      incident_[v].push_back(static_cast<int>(e));
    }
    edge_masks_.push_back(std::move(mask));
  }
}

bool ConflictHypergraph::IsIndependent(const DynamicBitset& s) const {
  CHECK_EQ(s.size(), vertex_count_);
  for (const DynamicBitset& mask : edge_masks_) {
    if (mask.IsSubsetOf(s)) return false;
  }
  return true;
}

bool ConflictHypergraph::IsMaximalIndependent(const DynamicBitset& s) const {
  if (!IsIndependent(s)) return false;
  for (int v = 0; v < vertex_count_; ++v) {
    if (s.Test(v)) continue;
    // Adding v must complete some hyperedge.
    bool blocked = false;
    for (int e : incident_[v]) {
      DynamicBitset rest = edge_masks_[e];
      rest.Reset(v);
      if (rest.IsSubsetOf(s)) {
        blocked = true;
        break;
      }
    }
    if (!blocked) return false;
  }
  return true;
}

bool EnumerateHypergraphRepairs(
    const ConflictHypergraph& graph,
    const std::function<bool(const DynamicBitset&)>& callback) {
  // Branch on a violated hyperedge: remove one of its vertices. Leaves are
  // independent but possibly non-maximal; dedupe, filter, then emit.
  std::unordered_set<DynamicBitset, DynamicBitset::Hash> visited;
  std::vector<DynamicBitset> leaves;
  std::function<void(DynamicBitset)> recurse = [&](DynamicBitset s) {
    if (!visited.insert(s).second) return;
    // Find a hyperedge fully inside s.
    const std::vector<std::vector<int>>& edges = graph.edges();
    for (const std::vector<int>& edge : edges) {
      bool contained = true;
      for (int v : edge) {
        if (!s.Test(v)) {
          contained = false;
          break;
        }
      }
      if (!contained) continue;
      for (int v : edge) {
        DynamicBitset next = s;
        next.Reset(v);
        recurse(std::move(next));
      }
      return;
    }
    leaves.push_back(std::move(s));
  };
  recurse(DynamicBitset::AllSet(graph.vertex_count()));

  for (const DynamicBitset& leaf : leaves) {
    if (!graph.IsMaximalIndependent(leaf)) continue;
    if (!callback(leaf)) return false;
  }
  return true;
}

Result<std::vector<DynamicBitset>> AllHypergraphRepairs(
    const ConflictHypergraph& graph, size_t limit) {
  std::vector<DynamicBitset> repairs;
  bool complete = EnumerateHypergraphRepairs(
      graph, [&repairs, limit](const DynamicBitset& r) {
        if (repairs.size() >= limit) return false;
        repairs.push_back(r);
        return true;
      });
  if (!complete) {
    return Status::ResourceExhausted("more than " + std::to_string(limit) +
                                     " hypergraph repairs");
  }
  return repairs;
}

namespace {

// Is there a hypergraph repair containing `required` and excluding every
// member of `excluded`? (All ids refer to facts present in the database.)
bool RepairWithConstraintsExists(const ConflictHypergraph& graph,
                                 const DynamicBitset& required,
                                 const std::vector<TupleId>& excluded) {
  if (!graph.IsIndependent(required)) return false;
  DynamicBitset excluded_mask(graph.vertex_count());
  for (TupleId s : excluded) {
    if (required.Test(s)) return false;
    excluded_mask.Set(s);
  }

  // Each excluded fact s must be blocked: some hyperedge e ∋ s with
  // e \ {s} inside the repair. Backtrack over the choice of e.
  std::function<bool(size_t, DynamicBitset&)> search =
      [&](size_t index, DynamicBitset& chosen) -> bool {
    if (index == excluded.size()) return true;
    TupleId s = excluded[index];
    for (int e : graph.IncidentEdges(s)) {
      DynamicBitset witness(graph.vertex_count());
      bool usable = true;
      for (int v : graph.edges()[e]) {
        if (v == s) continue;
        if (excluded_mask.Test(v)) {
          usable = false;
          break;
        }
        witness.Set(v);
      }
      if (!usable) continue;
      if (witness.IsSubsetOf(chosen)) {
        // Already blocked at no extra cost.
        return search(index + 1, chosen);
      }
      DynamicBitset candidate = chosen;
      candidate |= witness;
      if (!graph.IsIndependent(candidate)) continue;
      if (search(index + 1, candidate)) {
        chosen = candidate;
        return true;
      }
    }
    return false;
  };

  DynamicBitset chosen = required;
  return search(0, chosen);
}

}  // namespace

Result<bool> GroundConsistentAnswerDenial(const Database& db,
                                          const ConflictHypergraph& graph,
                                          const Query& query) {
  if (!query.IsGround() || !query.IsQuantifierFree()) {
    return Status::InvalidArgument(
        "GroundConsistentAnswerDenial needs a ground quantifier-free query");
  }
  std::unique_ptr<Query> negated = Query::Not(query.Clone());
  PREFREP_ASSIGN_OR_RETURN(std::vector<GroundDisjunct> dnf,
                           GroundDnf(*negated));
  for (const GroundDisjunct& disjunct : dnf) {
    DynamicBitset required(graph.vertex_count());
    std::vector<TupleId> excluded;
    bool unsat = false;
    for (const GroundLiteral& lit : disjunct) {
      if (!lit.is_atom) {
        if (!lit.ComparisonHolds()) {
          unsat = true;
          break;
        }
        continue;
      }
      auto id = db.FindTuple(lit.relation, lit.tuple);
      if (lit.positive) {
        if (!id.ok()) {
          unsat = true;
          break;
        }
        required.Set(*id);
      } else if (id.ok()) {
        excluded.push_back(*id);
      }
    }
    if (unsat) continue;
    std::sort(excluded.begin(), excluded.end());
    excluded.erase(std::unique(excluded.begin(), excluded.end()),
                   excluded.end());
    if (RepairWithConstraintsExists(graph, required, excluded)) {
      return false;  // some repair satisfies ¬Q
    }
  }
  return true;
}

}  // namespace prefrep
