// Denial constraints and conflict hypergraphs — the paper's §6 extension.
//
// A denial constraint forbids the joint presence of k tuples satisfying a
// conjunction of comparisons, e.g. "no two Emp tuples where the manager
// earns less than the report" or "no single tuple with Salary > 100".
// Functional dependencies are the special case k = 2 with equality
// comparisons.
//
// Violations are *hyperedges* (sets of up to k tuples) and repairs are the
// maximal independent sets of the conflict hypergraph [Chomicki &
// Marcinkowski, Inf. & Comp. 2005]. As the paper notes, the binary notion
// of priority has no clear meaning on hyperedges, so this module supports
// the plain Rep semantics only: repair enumeration/checking and consistent
// query answers (both naive and the polynomial ground-query prover).

#ifndef PREFREP_DENIAL_DENIAL_H_
#define PREFREP_DENIAL_DENIAL_H_

#include <functional>
#include <string>
#include <vector>

#include "base/biguint.h"
#include "base/bitset.h"
#include "base/exec_context.h"
#include "base/status.h"
#include "constraints/fd.h"
#include "query/ast.h"
#include "relational/database.h"

namespace prefrep {

// One side of a denial-constraint comparison: an attribute of the i-th
// quantified tuple, or a constant.
struct DcOperand {
  static DcOperand Attr(int tuple_index, int attribute) {
    DcOperand op;
    op.tuple_index = tuple_index;
    op.attribute = attribute;
    return op;
  }
  static DcOperand Const(Value value) {
    DcOperand op;
    op.constant = std::move(value);
    return op;
  }
  bool is_constant() const { return tuple_index < 0; }

  int tuple_index = -1;  // index into the constraint's tuple list
  int attribute = -1;
  Value constant;
};

struct DcComparison {
  ComparisonOp op = ComparisonOp::kEq;
  DcOperand lhs, rhs;
};

// ¬∃ t_0 ∈ R_0, ..., t_{k-1} ∈ R_{k-1} . c_1 ∧ ... ∧ c_m
class DenialConstraint {
 public:
  // `relations` lists the relation of each quantified tuple (k >= 1).
  // Validates attribute indices against the schemas in `db`.
  static Result<DenialConstraint> Create(const Database& db,
                                         std::vector<std::string> relations,
                                         std::vector<DcComparison> comparisons);

  // Encodes an FD X -> Y as the equivalent k=2 denial constraint
  // (agree on X, differ on some B ∈ Y; one constraint per RHS attribute
  // would also work, this uses B fixed to `rhs_attribute`).
  static Result<DenialConstraint> FromFd(const Database& db,
                                         const FunctionalDependency& fd,
                                         int rhs_attribute);

  int arity() const { return static_cast<int>(relations_.size()); }
  const std::vector<std::string>& relations() const { return relations_; }
  const std::vector<DcComparison>& comparisons() const { return comparisons_; }

  // True iff the given tuples (one per quantified position, possibly with
  // repeats) jointly violate the constraint.
  bool ViolatedBy(const std::vector<const Tuple*>& tuples) const;

 private:
  std::vector<std::string> relations_;
  std::vector<DcComparison> comparisons_;
};

// All minimal violation sets ("conflict hyperedges") of `db` w.r.t. the
// constraints: each is a sorted set of distinct TupleIds. Assignments that
// bind two quantified positions to the same tuple are collapsed; non-
// minimal hyperedges (supersets of others) are dropped, so independent
// sets are exactly the consistent subsets.
Result<std::vector<std::vector<TupleId>>> FindHyperedges(
    const Database& db, const std::vector<DenialConstraint>& constraints);

class ConflictHypergraph {
 public:
  ConflictHypergraph() = default;
  ConflictHypergraph(int vertex_count,
                     std::vector<std::vector<int>> hyperedges);

  int vertex_count() const { return vertex_count_; }
  int edge_count() const { return static_cast<int>(edges_.size()); }
  const std::vector<std::vector<int>>& edges() const { return edges_; }
  // Ids of hyperedges containing vertex v.
  const std::vector<int>& IncidentEdges(int v) const { return incident_[v]; }

  // True iff no hyperedge is fully contained in `s` (s is consistent).
  bool IsIndependent(const DynamicBitset& s) const;
  // True iff `s` is independent and no vertex can be added (a repair).
  bool IsMaximalIndependent(const DynamicBitset& s) const;

 private:
  int vertex_count_ = 0;
  std::vector<std::vector<int>> edges_;
  std::vector<DynamicBitset> edge_masks_;
  std::vector<std::vector<int>> incident_;
};

// Visits every maximal independent set of the hypergraph exactly once
// (branch-and-dedupe; exponential worst case, as unavoidable). The
// callback returns false to stop early; returns true iff completed.
bool EnumerateHypergraphRepairs(
    const ConflictHypergraph& graph,
    const std::function<bool(const DynamicBitset&)>& callback);

Result<std::vector<DynamicBitset>> AllHypergraphRepairs(
    const ConflictHypergraph& graph, size_t limit = kDefaultRepairListLimit);

// Consistent answer to a ground quantifier-free query under denial
// constraints: true iff the query holds in every hypergraph repair.
// Generalizes the conflict-graph prover: an excluded fact s needs a
// witness hyperedge e ∋ s with e \ {s} jointly consistent with everything
// chosen so far.
Result<bool> GroundConsistentAnswerDenial(const Database& db,
                                          const ConflictHypergraph& graph,
                                          const Query& query);

}  // namespace prefrep

#endif  // PREFREP_DENIAL_DENIAL_H_
