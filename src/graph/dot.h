// Graphviz (DOT) export of conflict graphs and priorities — the paper's
// Figures 1-4 are exactly such drawings. Oriented conflicts render as
// arrows from the dominating tuple to the dominated one; unoriented
// conflicts as plain edges.

#ifndef PREFREP_GRAPH_DOT_H_
#define PREFREP_GRAPH_DOT_H_

#include <functional>
#include <string>

#include "graph/conflict_graph.h"
#include "priority/priority.h"

namespace prefrep {

// Renders `graph` in DOT format. `label` supplies per-vertex labels (pass
// e.g. [&](int id) { return db.TupleOf(id).ToString(); }); nullptr uses
// the vertex id. `priority` may be nullptr (no orientation).
[[nodiscard]] std::string ToDot(
    const ConflictGraph& graph, const Priority* priority,
    const std::function<std::string(int)>& label = nullptr);

}  // namespace prefrep

#endif  // PREFREP_GRAPH_DOT_H_
