// Connected-component decomposition of a conflict graph.
//
// Conflicts and priorities both live on conflict edges, so every repair
// notion in the paper decomposes over connected components: a set is a
// (preferred) repair of the whole graph iff its restriction to each
// component is a (preferred) repair of that component (Staworko-Chomicki-
// Marcinkowski exploit the same structure). The enumeration engines
// therefore search each component in its own compact universe — bitsets,
// memo keys and optimality certificates all shrink to component size —
// and recombine per-component results lazily with a cross-product
// odometer (ComponentProductEnumerator).

#ifndef PREFREP_GRAPH_COMPONENTS_H_
#define PREFREP_GRAPH_COMPONENTS_H_

#include <functional>
#include <optional>
#include <vector>

#include "base/biguint.h"
#include "base/bitset.h"
#include "graph/conflict_graph.h"

namespace prefrep {

// Shared budget for materialized per-component choice lists (MIS lists in
// graph/mis.cc, family lists in core/families.cc). Only a component whose
// own repair space is astronomical can exceed it; the enumerators then
// fall back to whole-graph streaming forms with O(depth) memory.
inline constexpr size_t kComponentListBudgetBytes = size_t{256} << 20;

// The compact subgraph induced by `vertices` (sorted ascending): local
// vertex i stands for global vertex vertices[i].
[[nodiscard]] ConflictGraph InducedSubgraph(const ConflictGraph& graph,
                                            const std::vector<int>& vertices);

// True iff the graph is one connected component spanning every vertex
// (and nonempty). The enumeration engines use this as a cheap pre-check:
// a spanning component needs no decomposition, no priority projection and
// no local/global remapping, keeping the fixed per-call overhead on small
// connected inputs (a few microseconds of end-to-end CQA) near zero.
[[nodiscard]] bool SpansOneComponent(const ConflictGraph& graph);

// One non-singleton connected component in its compact local universe.
struct GraphComponent {
  std::vector<int> vertices;  // global ids, ascending; local i <-> vertices[i]
  ConflictGraph graph;        // induced subgraph over local ids
};

class ComponentDecomposition {
 public:
  explicit ComponentDecomposition(const ConflictGraph& graph);

  int vertex_count() const { return vertex_count_; }

  // Non-singleton components, ordered by smallest global vertex.
  const std::vector<GraphComponent>& components() const { return components_; }

  // Degree-0 vertices; they belong to every repair of every family.
  const DynamicBitset& isolated() const { return isolated_; }

  // Component index of a global vertex, or -1 for isolated vertices.
  int ComponentOf(int global_vertex) const {
    return component_of_[global_vertex];
  }
  // Local index of a global vertex within its component (-1 if isolated).
  int LocalIndex(int global_vertex) const {
    return local_index_[global_vertex];
  }

  // Overwrites the bits of component c in `global` with `local`'s bits;
  // bits outside the component are left untouched.
  void Scatter(int c, const DynamicBitset& local, DynamicBitset& global) const;
  // local = global restricted to component c (local universe).
  void Gather(int c, const DynamicBitset& global, DynamicBitset& local) const;

 private:
  int vertex_count_ = 0;
  std::vector<GraphComponent> components_;
  DynamicBitset isolated_;
  std::vector<int> component_of_;
  std::vector<int> local_index_;
};

// Lazily enumerates the cross product of per-component choice lists as
// full-universe bitsets (isolated vertices always present). `choices[c]`
// holds local-universe bitsets for decomposition component c. The product
// is streamed through one reusable scratch bitset — no allocation per
// output — and the callback can stop enumeration early by returning false.
class ComponentProductEnumerator {
 public:
  ComponentProductEnumerator(const ComponentDecomposition& decomposition,
                             std::vector<std::vector<DynamicBitset>> choices);

  // Visits every combination exactly once (order unspecified); returns true
  // iff enumeration ran to completion. An empty choice list for any
  // component makes the product empty (vacuously complete).
  bool Enumerate(const std::function<bool(const DynamicBitset&)>& callback);

  // Exact product size in BigUint arithmetic.
  [[nodiscard]] BigUint Count() const;

 private:
  const ComponentDecomposition& decomposition_;
  std::vector<std::vector<DynamicBitset>> choices_;
};

// Materializes one choice list per component via `produce` and streams
// their cross product through `callback`. `produce(c, out, used_bytes)`
// appends component c's list, charging `used_bytes` against the shared
// kComponentListBudgetBytes budget, and returns false on overflow; this is
// the one place the budget/product orchestration lives, shared by the MIS
// and family enumerators. Returns nullopt when some component overflowed
// (the caller picks its whole-graph streaming fallback), otherwise the
// product enumeration's completion flag.
template <typename ProduceComponent>
std::optional<bool> TryEnumerateViaComponentProduct(
    const ComponentDecomposition& decomposition, ProduceComponent&& produce,
    const std::function<bool(const DynamicBitset&)>& callback) {
  std::vector<std::vector<DynamicBitset>> lists(
      decomposition.components().size());
  size_t used_bytes = 0;
  for (size_t c = 0; c < lists.size(); ++c) {
    if (!produce(static_cast<int>(c), &lists[c], &used_bytes)) {
      lists.clear();
      lists.shrink_to_fit();  // free before the caller's streaming fallback
      return std::nullopt;
    }
  }
  return ComponentProductEnumerator(decomposition, std::move(lists))
      .Enumerate(callback);
}

}  // namespace prefrep

#endif  // PREFREP_GRAPH_COMPONENTS_H_
