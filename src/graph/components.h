// Connected-component decomposition of a conflict graph.
//
// Conflicts and priorities both live on conflict edges, so every repair
// notion in the paper decomposes over connected components: a set is a
// (preferred) repair of the whole graph iff its restriction to each
// component is a (preferred) repair of that component (Staworko-Chomicki-
// Marcinkowski exploit the same structure). The enumeration engines
// therefore search each component in its own compact universe — bitsets,
// memo keys and optimality certificates all shrink to component size —
// and recombine per-component results lazily with a cross-product
// odometer (ComponentProductEnumerator).

#ifndef PREFREP_GRAPH_COMPONENTS_H_
#define PREFREP_GRAPH_COMPONENTS_H_

#include <atomic>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "base/biguint.h"
#include "base/bitset.h"
#include "base/exec_context.h"
#include "base/thread_pool.h"
#include "graph/conflict_graph.h"

namespace prefrep {

// Default budget for materialized per-component choice lists (MIS lists in
// graph/mis.cc, family lists in core/families.cc) when no ExecutionContext
// is attached; contexts carry their own limit in ExecutionLimits. Only a
// component whose own repair space is astronomical can exceed it; the
// enumerators then fall back to whole-graph streaming forms with O(depth)
// memory. The accounting itself lives in base/exec_context.h's
// ResourceArbiter (shared by every producer of one enumeration call;
// thread-safe so parallel per-component producers can share it — whether a
// charge overflows depends only on the grand total, not on thread
// interleaving, except transient peaks of producers that refund, where a
// parallel run can overflow where serial would squeak by; both outcomes
// are correct since overflow only selects the streaming fallback).
inline constexpr size_t kComponentListBudgetBytes =
    ExecutionLimits{}.component_list_budget_bytes;

// The compact subgraph induced by `vertices` (sorted ascending): local
// vertex i stands for global vertex vertices[i].
[[nodiscard]] ConflictGraph InducedSubgraph(const ConflictGraph& graph,
                                            const std::vector<int>& vertices);

// True iff the graph is one connected component spanning every vertex
// (and nonempty). The enumeration engines use this as a cheap pre-check:
// a spanning component needs no decomposition, no priority projection and
// no local/global remapping, keeping the fixed per-call overhead on small
// connected inputs (a few microseconds of end-to-end CQA) near zero.
[[nodiscard]] bool SpansOneComponent(const ConflictGraph& graph);

// One non-singleton connected component in its compact local universe.
struct GraphComponent {
  std::vector<int> vertices;  // global ids, ascending; local i <-> vertices[i]
  ConflictGraph graph;        // induced subgraph over local ids
};

class ComponentDecomposition;

// Seed for the incremental decomposition constructor: how a parent
// decomposition maps onto a derived graph. Built by Snapshot::Derive
// (server/snapshot.h) from the delta's id remap and fresh conflict edges.
struct DecompositionDeltaSeed {
  const ComponentDecomposition* parent = nullptr;
  // Old id → new id; -1 for deleted ids (DeltaRemap::old_to_new). Must be
  // monotone on survivors, as delta.h's canonical order guarantees.
  const std::vector<int>* old_to_new = nullptr;
  // Parent component indices invalidated by the delta, sorted unique: every
  // component with a deleted member or with a fresh-edge endpoint.
  std::vector<int> dirty_components;
  // NEW-id vertices whose component must be re-solved by BFS, sorted
  // unique: the surviving members of dirty components plus every endpoint
  // of a fresh edge. Disjoint from the carried components' vertices (a
  // fresh edge touching a clean component would have dirtied it).
  std::vector<int> dirty_vertices;
};

class ComponentDecomposition {
 public:
  explicit ComponentDecomposition(const ConflictGraph& graph);

  // Incremental form: carries every clean parent component over (vertices
  // remapped, the local induced subgraph reused as-is — the monotone remap
  // preserves local structure bit-for-bit) and re-runs BFS only over the
  // dirty region of `graph`. Produces exactly the same decomposition as
  // ComponentDecomposition(graph): components ordered by smallest global
  // vertex, members ascending.
  ComponentDecomposition(const ConflictGraph& graph,
                         const DecompositionDeltaSeed& seed);

  int vertex_count() const { return vertex_count_; }

  // Non-singleton components, ordered by smallest global vertex.
  const std::vector<GraphComponent>& components() const { return components_; }

  // Degree-0 vertices; they belong to every repair of every family.
  const DynamicBitset& isolated() const { return isolated_; }

  // How this decomposition was obtained (delta diagnostics): components
  // carried over from a seed's clean parent components vs. components
  // actually built by BFS over the dirty region. A from-scratch
  // decomposition counts every component as rebuilt. Always:
  // carried + rebuilt == components().size().
  int carried_component_count() const { return carried_component_count_; }
  int rebuilt_component_count() const { return rebuilt_component_count_; }

  // Component index of a global vertex, or -1 for isolated vertices.
  int ComponentOf(int global_vertex) const {
    return component_of_[global_vertex];
  }
  // Local index of a global vertex within its component (-1 if isolated).
  int LocalIndex(int global_vertex) const {
    return local_index_[global_vertex];
  }

  // Overwrites the bits of component c in `global` with `local`'s bits;
  // bits outside the component are left untouched.
  void Scatter(int c, const DynamicBitset& local, DynamicBitset& global) const;
  // local = global restricted to component c (local universe).
  void Gather(int c, const DynamicBitset& global, DynamicBitset& local) const;

 private:
  int vertex_count_ = 0;
  std::vector<GraphComponent> components_;
  int carried_component_count_ = 0;
  int rebuilt_component_count_ = 0;
  DynamicBitset isolated_;
  std::vector<int> component_of_;
  std::vector<int> local_index_;
};

// Lazily enumerates the cross product of per-component choice lists as
// full-universe bitsets (isolated vertices always present). `choices[c]`
// holds local-universe bitsets for decomposition component c. The product
// is streamed through one reusable scratch bitset — no allocation per
// output — and the callback can stop enumeration early by returning false.
class ComponentProductEnumerator {
 public:
  // `context`, when set, is polled at every odometer tick; an interrupt
  // stops enumeration (Enumerate* return false).
  ComponentProductEnumerator(const ComponentDecomposition& decomposition,
                             std::vector<std::vector<DynamicBitset>> choices,
                             ExecutionContext* context = nullptr);
  // Borrowing form for sharded consumers: several enumerators (one per
  // worker thread) walk disjoint slices of one read-only choice table.
  // `choices` must outlive the enumerator.
  ComponentProductEnumerator(
      const ComponentDecomposition& decomposition,
      const std::vector<std::vector<DynamicBitset>>* choices,
      ExecutionContext* context = nullptr);

  // Not copyable/movable: choices_ may point into owned_choices_, and the
  // defaulted operations would leave the copy aimed at the source's
  // buffer.
  ComponentProductEnumerator(const ComponentProductEnumerator&) = delete;
  ComponentProductEnumerator& operator=(const ComponentProductEnumerator&) =
      delete;

  // Visits every combination exactly once (order unspecified); returns true
  // iff enumeration ran to completion. An empty choice list for any
  // component makes the product empty (vacuously complete).
  bool Enumerate(const std::function<bool(const DynamicBitset&)>& callback);

  // A constraint on one digit of the product: component `digit`'s choice
  // index ranges over [begin, end) instead of its full list.
  struct DigitRange {
    int digit;
    size_t begin;
    size_t end;
  };

  // Enumerates the box of the product where each constrained component
  // ranges over its DigitRange and every unconstrained component over its
  // full list (`ranges` may name each digit at most once). Boxes that
  // partition the full box partition the product — this is how cqa.cc
  // shards the per-repair evaluation loop across workers. Any empty range
  // makes the box a vacuously complete empty slice.
  bool EnumerateSlices(const std::vector<DigitRange>& ranges,
                       const std::function<bool(const DynamicBitset&)>& callback);

  // Single-digit convenience form of EnumerateSlices.
  bool EnumerateSlice(int c, size_t begin, size_t end,
                      const std::function<bool(const DynamicBitset&)>& callback);

  // Exact product size in BigUint arithmetic.
  [[nodiscard]] BigUint Count() const;

 private:
  const ComponentDecomposition& decomposition_;
  std::vector<std::vector<DynamicBitset>> owned_choices_;
  const std::vector<std::vector<DynamicBitset>>* choices_;
  ExecutionContext* context_;
};

// Fills lists[c] for every component by running `produce` — serially, or
// fanned out over a work-stealing pool when options.threads > 1 and there
// is more than one component. `produce(c, out, budget)` appends component
// c's choice list, charging the shared arbiter, and returns false on
// overflow or interrupt; it must be safe to run concurrently for distinct
// c (engines constructed inside a produce call are per-task and therefore
// confined to one thread). Pass `pool` to reuse a caller-owned ThreadPool
// (cqa.cc shares one pool between materialization and eval sharding);
// with nullptr a pool is created on demand.
//
// The arbiter's limit comes from options.context when set (its stats also
// record charges and completed components), else kComponentListBudgetBytes.
// Returns OK when every list materialized; kResourceExhausted when any
// component overflowed the byte budget (callers pick their streaming
// fallback); the context's kCancelled / kDeadlineExceeded / failure status
// when it was interrupted mid-materialization.
template <typename ProduceComponent>
[[nodiscard]] Status MaterializeComponentLists(
    const ComponentDecomposition& decomposition,
    const ParallelOptions& options, ProduceComponent&& produce,
    std::vector<std::vector<DynamicBitset>>* lists,
    ThreadPool* pool = nullptr) {
  const size_t count = decomposition.components().size();
  lists->assign(count, {});
  ExecutionContext* context = options.context;
  ResourceArbiter arbiter(
      context != nullptr ? context->limits().component_list_budget_bytes
                         : kComponentListBudgetBytes,
      context != nullptr ? &context->stats() : nullptr);
  const auto finish = [&](bool overflow) {
    if (context != nullptr && context->interrupted()) return context->status();
    if (overflow) {
      return Status::ResourceExhausted(
          "component list budget exhausted (" +
          std::to_string(arbiter.limit()) + " bytes)");
    }
    return Status::Ok();
  };
  int threads = EffectiveThreadCount(options, count);
  if (threads <= 1) {
    for (size_t c = 0; c < count; ++c) {
      if (context != nullptr && context->ShouldStop()) return finish(false);
      if (!produce(static_cast<int>(c), &(*lists)[c], &arbiter)) {
        return finish(true);
      }
      if (context != nullptr) context->stats().AddComponentsCompleted();
    }
    return finish(false);
  }
  std::atomic<bool> overflow{false};
  auto run = [&](ThreadPool& p) {
    return p.ParallelFor(
        count,
        [&](size_t c, int /*worker*/) {
          if (overflow.load(std::memory_order_relaxed)) return;
          if (!produce(static_cast<int>(c), &(*lists)[c], &arbiter)) {
            overflow.store(true, std::memory_order_relaxed);
          } else if (context != nullptr) {
            context->stats().AddComponentsCompleted();
          }
        },
        context);
  };
  Status pool_status = Status::Ok();
  if (pool != nullptr) {
    pool_status = run(*pool);
  } else {
    ThreadPool own_pool(threads);
    pool_status = run(own_pool);
  }
  if (!pool_status.ok()) return pool_status;
  return finish(overflow.load(std::memory_order_relaxed));
}

// Materializes one choice list per component via `produce` (see
// MaterializeComponentLists for its contract and the threading model) and
// streams their cross product through `callback`; this is the one place
// the budget/product orchestration lives, shared by the MIS and family
// enumerators. Returns nullopt when some component overflowed the byte
// budget (the caller picks its whole-graph streaming fallback), otherwise
// the product enumeration's completion flag — false in particular when the
// context was interrupted (entry points convert that to kCancelled /
// kDeadlineExceeded via the context's latched status).
template <typename ProduceComponent>
std::optional<bool> TryEnumerateViaComponentProduct(
    const ComponentDecomposition& decomposition,
    const ParallelOptions& options, ProduceComponent&& produce,
    const std::function<bool(const DynamicBitset&)>& callback) {
  std::vector<std::vector<DynamicBitset>> lists;
  Status materialized = MaterializeComponentLists(
      decomposition, options, std::forward<ProduceComponent>(produce), &lists);
  if (materialized.code() == StatusCode::kResourceExhausted) {
    lists.clear();
    lists.shrink_to_fit();  // free before the caller's streaming fallback
    return std::nullopt;
  }
  if (!materialized.ok()) return false;  // interrupted; context holds why
  return ComponentProductEnumerator(decomposition, std::move(lists),
                                    options.context)
      .Enumerate(callback);
}

}  // namespace prefrep

#endif  // PREFREP_GRAPH_COMPONENTS_H_
