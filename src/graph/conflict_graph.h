// Conflict graph (§2.1): vertices are tuples, edges join conflicting tuples.
//
// The conflict graph is the compact representation of the repair space: the
// repairs of the database are exactly the maximal independent sets of its
// conflict graph. Vertices are global TupleIds; adjacency is stored as one
// DynamicBitset per vertex so the optimality checks in src/core are
// word-parallel.
//
// Each per-vertex bitset is held through shared_ptr<const DynamicBitset>:
// once a graph is built its adjacency is immutable, so copying a graph (the
// component decomposition carries per-component local graphs this way) is a
// refcount bump per vertex, and DeriveFrom can build a successor graph that
// shares the untouched rows of its parent's adjacency instead of
// re-allocating O(V^2/64) bits — the dominant cost of graph construction,
// and what makes incremental snapshot derivation (server/snapshot.h) beat a
// full rebuild.

#ifndef PREFREP_GRAPH_CONFLICT_GRAPH_H_
#define PREFREP_GRAPH_CONFLICT_GRAPH_H_

#include <memory>
#include <utility>
#include <vector>

#include "base/bitset.h"

namespace prefrep {

class ConflictGraph {
 public:
  ConflictGraph() = default;

  // `edges` are unordered vertex pairs over [0, vertex_count); self-loops
  // are rejected by CHECK (a tuple never conflicts with itself).
  ConflictGraph(int vertex_count, const std::vector<std::pair<int, int>>& edges);

  // Fast path for callers that already hold the edge list in canonical
  // form — each pair (min, max), strictly ascending overall (sorted and
  // deduplicated): skips the normalize/sort/dedup pass of the public
  // constructor. The incremental snapshot derivation produces its merged
  // edge list in exactly this form. Canonicality is DCHECK-verified.
  static ConflictGraph FromSortedUniqueEdges(
      int vertex_count, std::vector<std::pair<int, int>> edges);

  // Successor-graph constructor for incremental snapshot derivation.
  // `edges` is the new graph's full edge list in canonical form (as in
  // FromSortedUniqueEdges). Vertices below `identity_limit` that are NOT in
  // `dirty` denote the same tuple as in `parent` with the same set of
  // neighbors; their adjacency bitsets are shared with the parent
  // (refcount bump, no allocation). Everything else gets a freshly built
  // bitset from `edges`.
  //
  // The universes need NOT coincide: a shared row keeps the parent's
  // size, and the graph's adjacency is therefore RAGGED — row v may be
  // sized to a different universe than vertex_count(). That is sound
  // because a clean identity vertex has every neighbor below
  // identity_limit <= min(vertex_count, parent.vertex_count()), so the
  // row read zero-extended (insert-heavy child, row smaller than the
  // universe) or truncated (delete-heavy child, row larger) is exactly
  // the child's neighborhood. Every adjacency consumer goes through the
  // ragged-tolerant DynamicBitset operations (base/bitset.h) or the
  // accessors below, which normalize where a sized value escapes
  // (Vicinity) and guard where an index could overrun a smaller row
  // (HasEdge). `identity_limit` must not exceed either universe; the
  // caller is responsible for `dirty` (sized vertex_count) covering every
  // identity vertex whose neighborhood changed — the randomized suites in
  // tests/incremental_snapshot_test.cc pin the resulting adjacency
  // against a from-scratch build for balanced and unbalanced deltas
  // alike.
  static ConflictGraph DeriveFrom(const ConflictGraph& parent,
                                  int vertex_count,
                                  std::vector<std::pair<int, int>> edges,
                                  int identity_limit,
                                  const DynamicBitset& dirty);

  int vertex_count() const { return vertex_count_; }
  int edge_count() const {
    return edges_ == nullptr ? 0 : static_cast<int>(edges_->size());
  }
  // Deduplicated, each pair normalized to (min, max), sorted.
  const std::vector<std::pair<int, int>>& edges() const {
    static const std::vector<std::pair<int, int>> kEmpty;
    return edges_ == nullptr ? kEmpty : *edges_;
  }

  // n(t): all tuples conflicting with t. In a DeriveFrom-built graph the
  // returned row may be RAGGED — sized to the parent universe, with
  // zero-extension semantics beyond its size (see DeriveFrom). Combine it
  // only through the ragged-tolerant DynamicBitset operations, and never
  // assume its size() equals vertex_count().
  const DynamicBitset& Neighbors(int v) const { return *adjacency_[v]; }
  // v(t) = {t} ∪ n(t), always sized to vertex_count() (safe to store and
  // combine with same-universe sets even when the underlying row is
  // ragged).
  DynamicBitset Vicinity(int v) const;
  int Degree(int v) const { return adjacency_[v]->Count(); }
  bool HasEdge(int u, int v) const {
    // A ragged row shorter than the universe has no neighbors at or
    // beyond its size (zero-extension), so an out-of-row index is simply
    // a non-edge.
    return u != v && v < adjacency_[u]->size() && adjacency_[u]->Test(v);
  }

  // True iff vertex v's adjacency bitset is the same heap object in both
  // graphs (diagnostics and tests for DeriveFrom's structural sharing).
  bool SharesAdjacencyWith(const ConflictGraph& other, int v) const {
    return adjacency_[v] == other.adjacency_[v];
  }

  // Union of n(t) over all t in `s`.
  DynamicBitset NeighborsOfSet(const DynamicBitset& s) const;
  // Allocation-free form: overwrites `out` (same universe) with the union.
  void NeighborsOfSetInto(const DynamicBitset& s, DynamicBitset& out) const;

  // True iff no two elements of `s` are adjacent (i.e. `s` is consistent).
  bool IsIndependent(const DynamicBitset& s) const;
  // True iff `s` is independent and every vertex outside `s` has a
  // neighbor inside `s` (i.e. `s` is a repair).
  bool IsMaximalIndependent(const DynamicBitset& s) const;

  // Connected components, each sorted ascending; components ordered by
  // smallest vertex.
  std::vector<std::vector<int>> ConnectedComponents() const;

 private:
  static std::vector<std::shared_ptr<const DynamicBitset>> BuildAdjacency(
      int vertex_count, const std::vector<std::pair<int, int>>& edges);

  int vertex_count_ = 0;
  // Both the edge list and the per-vertex bitsets are immutable after
  // construction and shared with copies (a graph copy is refcount bumps —
  // the decomposition carries per-component local graphs by copy).
  std::shared_ptr<const std::vector<std::pair<int, int>>> edges_;
  std::vector<std::shared_ptr<const DynamicBitset>> adjacency_;
};

}  // namespace prefrep

#endif  // PREFREP_GRAPH_CONFLICT_GRAPH_H_
