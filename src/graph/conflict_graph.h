// Conflict graph (§2.1): vertices are tuples, edges join conflicting tuples.
//
// The conflict graph is the compact representation of the repair space: the
// repairs of the database are exactly the maximal independent sets of its
// conflict graph. Vertices are global TupleIds; adjacency is stored as one
// DynamicBitset per vertex so the optimality checks in src/core are
// word-parallel.

#ifndef PREFREP_GRAPH_CONFLICT_GRAPH_H_
#define PREFREP_GRAPH_CONFLICT_GRAPH_H_

#include <utility>
#include <vector>

#include "base/bitset.h"

namespace prefrep {

class ConflictGraph {
 public:
  ConflictGraph() = default;

  // `edges` are unordered vertex pairs over [0, vertex_count); self-loops
  // are rejected by CHECK (a tuple never conflicts with itself).
  ConflictGraph(int vertex_count, const std::vector<std::pair<int, int>>& edges);

  int vertex_count() const { return vertex_count_; }
  int edge_count() const { return static_cast<int>(edges_.size()); }
  // Deduplicated, each pair normalized to (min, max), sorted.
  const std::vector<std::pair<int, int>>& edges() const { return edges_; }

  // n(t): all tuples conflicting with t.
  const DynamicBitset& Neighbors(int v) const { return adjacency_[v]; }
  // v(t) = {t} ∪ n(t).
  DynamicBitset Vicinity(int v) const;
  int Degree(int v) const { return adjacency_[v].Count(); }
  bool HasEdge(int u, int v) const {
    return u != v && adjacency_[u].Test(v);
  }

  // Union of n(t) over all t in `s`.
  DynamicBitset NeighborsOfSet(const DynamicBitset& s) const;
  // Allocation-free form: overwrites `out` (same universe) with the union.
  void NeighborsOfSetInto(const DynamicBitset& s, DynamicBitset& out) const;

  // True iff no two elements of `s` are adjacent (i.e. `s` is consistent).
  bool IsIndependent(const DynamicBitset& s) const;
  // True iff `s` is independent and every vertex outside `s` has a
  // neighbor inside `s` (i.e. `s` is a repair).
  bool IsMaximalIndependent(const DynamicBitset& s) const;

  // Connected components, each sorted ascending; components ordered by
  // smallest vertex.
  std::vector<std::vector<int>> ConnectedComponents() const;

 private:
  int vertex_count_ = 0;
  std::vector<std::pair<int, int>> edges_;
  std::vector<DynamicBitset> adjacency_;
};

}  // namespace prefrep

#endif  // PREFREP_GRAPH_CONFLICT_GRAPH_H_
