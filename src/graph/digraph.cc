#include "graph/digraph.h"

#include <algorithm>
#include <deque>

namespace prefrep {

Result<std::vector<int>> TopologicalOrder(
    int n, const std::vector<std::pair<int, int>>& arcs) {
  std::vector<std::vector<int>> out_arcs(n);
  std::vector<int> in_degree(n, 0);
  for (auto [u, v] : arcs) {
    CHECK(u >= 0 && u < n && v >= 0 && v < n);
    out_arcs[u].push_back(v);
    ++in_degree[v];
  }
  std::deque<int> ready;
  for (int v = 0; v < n; ++v) {
    if (in_degree[v] == 0) ready.push_back(v);
  }
  std::vector<int> order;
  order.reserve(n);
  while (!ready.empty()) {
    int v = ready.front();
    ready.pop_front();
    order.push_back(v);
    for (int w : out_arcs[v]) {
      if (--in_degree[w] == 0) ready.push_back(w);
    }
  }
  if (static_cast<int>(order.size()) != n) {
    return Status::FailedPrecondition("digraph contains a directed cycle");
  }
  return order;
}

bool IsAcyclicDigraph(int n, const std::vector<std::pair<int, int>>& arcs) {
  return TopologicalOrder(n, arcs).ok();
}

bool CanExtendToCyclicOrientation(
    const ConflictGraph& graph,
    const std::vector<std::pair<int, int>>& oriented_arcs) {
  int n = graph.vertex_count();
  // allowed[u] = vertices v such that the arc u->v is consistent with the
  // partial orientation: edge {u,v} exists and is not oriented v->u.
  // |= (not copy-assign) so each set is sized to the universe even when the
  // graph hands back a ragged derived row.
  std::vector<DynamicBitset> allowed(n, DynamicBitset(n));
  for (int v = 0; v < n; ++v) allowed[v] |= graph.Neighbors(v);
  for (auto [u, v] : oriented_arcs) {
    CHECK(graph.HasEdge(u, v)) << "orientation of non-edge (" << u << ","
                               << v << ")";
    allowed[v].Reset(u);  // edge is oriented u->v; forbid v->u
  }

  // A simple directed cycle of length >= 3 exists iff for some allowed arc
  // (u,v) there is a directed path v ~> u that does not use the arc (v,u).
  // (Simple paths cannot reuse an undirected edge, so any such path closes
  // a >= 3 cycle compatible with the orientation.)
  for (int u = 0; u < n; ++u) {
    for (int v = allowed[u].FirstSetBit(); v >= 0;
         v = allowed[u].NextSetBit(v + 1)) {
      // BFS from v to u, with the single arc (v,u) suppressed.
      std::vector<bool> visited(n, false);
      std::deque<int> queue;
      visited[v] = true;
      queue.push_back(v);
      bool found = false;
      while (!queue.empty() && !found) {
        int x = queue.front();
        queue.pop_front();
        ForEachSetBit(allowed[x], [&](int y) {
          if (x == v && y == u) return;  // would reuse edge {u,v}
          if (visited[y]) return;
          if (y == u) {
            found = true;
            return;
          }
          visited[y] = true;
          queue.push_back(y);
        });
      }
      if (found) return true;
    }
  }
  return false;
}

}  // namespace prefrep
