#include "graph/dot.h"

namespace prefrep {

namespace {

// Escapes double quotes for DOT string labels.
std::string EscapeLabel(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string ToDot(const ConflictGraph& graph, const Priority* priority,
                  const std::function<std::string(int)>& label) {
  std::string out = "graph conflicts {\n";
  out += "  node [shape=ellipse];\n";
  for (int v = 0; v < graph.vertex_count(); ++v) {
    std::string text = label ? label(v) : "t" + std::to_string(v);
    out += "  n" + std::to_string(v) + " [label=\"" + EscapeLabel(text) +
           "\"];\n";
  }
  for (auto [u, v] : graph.edges()) {
    bool u_wins = priority != nullptr && priority->Dominates(u, v);
    bool v_wins = priority != nullptr && priority->Dominates(v, u);
    if (u_wins || v_wins) {
      int from = u_wins ? u : v;
      int to = u_wins ? v : u;
      // Undirected graph with a directed decoration: arrowhead on the
      // dominated endpoint.
      out += "  n" + std::to_string(from) + " -- n" + std::to_string(to) +
             " [dir=forward, arrowhead=normal];\n";
    } else {
      out += "  n" + std::to_string(u) + " -- n" + std::to_string(v) +
             ";\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace prefrep
