// Directed-graph utilities used by priorities:
//   - acyclicity / topological order of the priority relation,
//   - the Theorem 2 side condition: can a partial orientation of the
//     conflict graph be extended to a *cyclic* orientation?

#ifndef PREFREP_GRAPH_DIGRAPH_H_
#define PREFREP_GRAPH_DIGRAPH_H_

#include <utility>
#include <vector>

#include "base/status.h"
#include "graph/conflict_graph.h"

namespace prefrep {

// True iff the digraph (vertices [0,n), arcs as ordered pairs) has no
// directed cycle.
[[nodiscard]] bool IsAcyclicDigraph(
    int n, const std::vector<std::pair<int, int>>& arcs);

// A topological order of the digraph, or kFailedPrecondition if cyclic.
Result<std::vector<int>> TopologicalOrder(
    int n, const std::vector<std::pair<int, int>>& arcs);

// Theorem 2 side condition. Given the conflict graph and a partial
// orientation of its edges (`oriented_arcs`, each an ordered pair lying on
// some conflict edge), decides whether the orientation can be extended to an
// orientation of the whole conflict graph containing a directed cycle.
//
// A compatible cycle exists iff the digraph D — with one arc per oriented
// edge and both arcs per unoriented conflict edge — contains a simple
// directed cycle of length >= 3 (length-2 "cycles" would use the same edge
// twice, which an orientation cannot).
bool CanExtendToCyclicOrientation(
    const ConflictGraph& graph,
    const std::vector<std::pair<int, int>>& oriented_arcs);

}  // namespace prefrep

#endif  // PREFREP_GRAPH_DIGRAPH_H_
