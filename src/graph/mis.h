// Maximal-independent-set enumeration: the repair space of a database.
//
// MisEngine runs Bron–Kerbosch with pivoting (on the complement graph,
// expressed directly with vicinity masks) as an explicit stack over pooled
// frames — no bitset is allocated per search node. The whole-graph entry
// points decompose the graph into connected components first, search each
// component in its compact local universe, and recombine the per-component
// results lazily with ComponentProductEnumerator (early-stop callbacks
// still short-circuit). Counting multiplies per-component counts in exact
// BigUint arithmetic (Example 4 exhibits 2^n repairs).

#ifndef PREFREP_GRAPH_MIS_H_
#define PREFREP_GRAPH_MIS_H_

#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "base/biguint.h"
#include "base/bitset.h"
#include "base/exec_context.h"
#include "base/status.h"
#include "base/thread_pool.h"
#include "graph/conflict_graph.h"

namespace prefrep {

// Iterative Bron–Kerbosch over one (typically component-compact) graph.
// Frames and the vicinity masks are allocated once per engine and reused
// across Enumerate calls; the search itself never touches the heap.
// Callbacks receive a reference to the engine's chosen-set scratch — copy
// it to keep it.
class MisEngine {
 public:
  // `context`, when set, is polled at every frame pop; an interrupt stops
  // the search (Enumerate returns false).
  explicit MisEngine(const ConflictGraph& graph,
                     ExecutionContext* context = nullptr);
  MisEngine(const MisEngine&) = delete;
  MisEngine& operator=(const MisEngine&) = delete;

  // Visits every maximal independent set exactly once; the callback returns
  // false to stop early. Returns true iff enumeration ran to completion.
  template <typename Callback>
  bool Enumerate(Callback&& callback) {
    chosen_.Clear();
    Frame& root = FrameAt(0);
    root.candidates = DynamicBitset::AllSet(vertex_count_);
    root.excluded.Clear();
    root.entering = true;
    int depth = 0;
    while (depth >= 0) {
      if (context_ != nullptr && context_->ShouldStop()) return false;
      Frame& frame = *frames_[depth];
      if (frame.entering) {
        frame.entering = false;
        if (frame.candidates.None() && frame.excluded.None()) {
          if (!callback(static_cast<const DynamicBitset&>(chosen_))) {
            return false;
          }
          --depth;
          continue;
        }
        // Pivot u ∈ candidates ∪ excluded minimizing |candidates ∩
        // vicinity(u)|: branching is then bounded to candidates inside u's
        // vicinity. `branch` doubles as the pivot-pool scratch.
        frame.branch.AssignOr(frame.candidates, frame.excluded);
        int pivot = -1;
        int best = std::numeric_limits<int>::max();
        ForEachSetBit(frame.branch, [&](int u) {
          int c = frame.candidates.IntersectionCount(vicinity_[u]);
          if (c < best) {
            best = c;
            pivot = u;
          }
        });
        frame.branch.AssignAnd(frame.candidates, vicinity_[pivot]);
        frame.v = -1;
      }
      // Resume iteration over the frame's branch vertices: retire the
      // previous branch vertex (un-choose, move candidates → excluded),
      // then descend into the next one.
      if (frame.v >= 0) {
        chosen_.Reset(frame.v);
        frame.candidates.Reset(frame.v);
        frame.excluded.Set(frame.v);
      }
      int v = frame.branch.NextSetBit(frame.v + 1);
      if (v < 0) {
        --depth;
        continue;
      }
      frame.v = v;
      chosen_.Set(v);
      Frame& child = FrameAt(depth + 1);
      const DynamicBitset& vicinity = vicinity_[v];
      child.candidates.AssignDifference(frame.candidates, vicinity);
      child.excluded.AssignDifference(frame.excluded, vicinity);
      child.entering = true;
      ++depth;
    }
    return true;
  }

  const ConflictGraph& graph() const { return graph_; }

 private:
  struct Frame {
    DynamicBitset candidates;
    DynamicBitset excluded;
    DynamicBitset branch;
    int v = -1;
    bool entering = true;
  };

  // Frames are pooled behind stable pointers: depth d's frame is allocated
  // the first time the search reaches it and reused afterwards.
  Frame& FrameAt(int depth);

  const ConflictGraph& graph_;
  ExecutionContext* context_;
  int vertex_count_;
  DynamicBitset chosen_;
  std::vector<DynamicBitset> vicinity_;
  std::vector<std::unique_ptr<Frame>> frames_;
};

// Visits every maximal independent set of `graph` exactly once. The callback
// returns false to stop enumeration early. Returns true iff enumeration ran
// to completion. Bitsets passed to the callback span the full vertex set.
bool EnumerateMaximalIndependentSets(
    const ConflictGraph& graph,
    const std::function<bool(const DynamicBitset&)>& callback);

// Same, with per-component materialization fanned out across
// options.threads workers (each component searched by its own MisEngine on
// one thread). The callback always runs on the calling thread, in the same
// order as the serial form, so options only change wall-clock, never
// results (caveat: within a hair of the kComponentListBudgetBytes budget,
// concurrent producers' transient peak can trip the whole-graph streaming
// fallback where serial would not — same MIS set, different order).
// Connected graphs take the serial streaming path unchanged — there is
// only one component to search.
bool EnumerateMaximalIndependentSets(
    const ConflictGraph& graph, const ParallelOptions& options,
    const std::function<bool(const DynamicBitset&)>& callback);

// All maximal independent sets of the subgraph induced by `component`
// (bitsets span the full vertex set but only touch component vertices).
// An interrupted context yields a truncated list — callers must consult
// the context before trusting it.
[[nodiscard]] std::vector<DynamicBitset> ComponentMaximalIndependentSets(
    const ConflictGraph& graph, const std::vector<int>& component,
    ExecutionContext* context = nullptr);

// Materializes all maximal independent sets, failing with
// kResourceExhausted if there are more than `limit` (clamped to
// options.context's max_repair_list when a context is attached); an
// interrupted context fails with its kCancelled / kDeadlineExceeded.
Result<std::vector<DynamicBitset>> AllMaximalIndependentSets(
    const ConflictGraph& graph, size_t limit = kDefaultRepairListLimit);
Result<std::vector<DynamicBitset>> AllMaximalIndependentSets(
    const ConflictGraph& graph, const ParallelOptions& options,
    size_t limit = kDefaultRepairListLimit);

// Exact number of maximal independent sets (product over components).
[[nodiscard]] BigUint CountMaximalIndependentSets(const ConflictGraph& graph);

}  // namespace prefrep

#endif  // PREFREP_GRAPH_MIS_H_
