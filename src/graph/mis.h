// Maximal-independent-set enumeration: the repair space of a database.
//
// Enumeration runs Bron–Kerbosch with pivoting (on the complement graph,
// expressed directly with vicinity masks) independently per connected
// component; full-graph results are combined with an odometer product.
// Counting multiplies per-component counts in exact BigUint arithmetic
// (Example 4 exhibits 2^n repairs).

#ifndef PREFREP_GRAPH_MIS_H_
#define PREFREP_GRAPH_MIS_H_

#include <functional>
#include <vector>

#include "base/biguint.h"
#include "base/bitset.h"
#include "base/status.h"
#include "graph/conflict_graph.h"

namespace prefrep {

// Visits every maximal independent set of `graph` exactly once. The callback
// returns false to stop enumeration early. Returns true iff enumeration ran
// to completion. Bitsets passed to the callback span the full vertex set.
bool EnumerateMaximalIndependentSets(
    const ConflictGraph& graph,
    const std::function<bool(const DynamicBitset&)>& callback);

// All maximal independent sets of the subgraph induced by `component`
// (bitsets span the full vertex set but only touch component vertices).
[[nodiscard]] std::vector<DynamicBitset> ComponentMaximalIndependentSets(
    const ConflictGraph& graph, const std::vector<int>& component);

// Materializes all maximal independent sets, failing with
// kResourceExhausted if there are more than `limit`.
Result<std::vector<DynamicBitset>> AllMaximalIndependentSets(
    const ConflictGraph& graph, size_t limit = 1u << 20);

// Exact number of maximal independent sets (product over components).
[[nodiscard]] BigUint CountMaximalIndependentSets(const ConflictGraph& graph);

}  // namespace prefrep

#endif  // PREFREP_GRAPH_MIS_H_
