#include "graph/conflict_graph.h"

#include <algorithm>

namespace prefrep {

std::vector<std::shared_ptr<const DynamicBitset>> ConflictGraph::BuildAdjacency(
    int vertex_count, const std::vector<std::pair<int, int>>& edges) {
  std::vector<std::shared_ptr<DynamicBitset>> building;
  building.reserve(vertex_count);
  for (int v = 0; v < vertex_count; ++v) {
    building.push_back(std::make_shared<DynamicBitset>(vertex_count));
  }
  for (auto [u, v] : edges) {
    building[u]->Set(v);
    building[v]->Set(u);
  }
  std::vector<std::shared_ptr<const DynamicBitset>> adjacency(vertex_count);
  for (int v = 0; v < vertex_count; ++v) adjacency[v] = std::move(building[v]);
  return adjacency;
}

ConflictGraph::ConflictGraph(int vertex_count,
                             const std::vector<std::pair<int, int>>& edges)
    : vertex_count_(vertex_count) {
  CHECK_GE(vertex_count, 0);
  std::vector<std::pair<int, int>> canonical;
  canonical.reserve(edges.size());
  for (auto [u, v] : edges) {
    CHECK(u >= 0 && u < vertex_count && v >= 0 && v < vertex_count)
        << "edge (" << u << "," << v << ") out of range";
    CHECK_NE(u, v) << "self-loop at vertex " << u;
    if (u > v) std::swap(u, v);
    canonical.emplace_back(u, v);
  }
  std::sort(canonical.begin(), canonical.end());
  canonical.erase(std::unique(canonical.begin(), canonical.end()),
                  canonical.end());
  adjacency_ = BuildAdjacency(vertex_count, canonical);
  edges_ = std::make_shared<const std::vector<std::pair<int, int>>>(
      std::move(canonical));
}

ConflictGraph ConflictGraph::FromSortedUniqueEdges(
    int vertex_count, std::vector<std::pair<int, int>> edges) {
  CHECK_GE(vertex_count, 0);
  ConflictGraph graph;
  graph.vertex_count_ = vertex_count;
  for (size_t i = 0; i < edges.size(); ++i) {
    auto [u, v] = edges[i];
    DCHECK(u >= 0 && u < v && v < vertex_count)
        << "edge (" << u << "," << v << ") not normalized or out of range";
    DCHECK(i == 0 || edges[i - 1] < edges[i])
        << "edges not strictly ascending at index " << i;
  }
  graph.adjacency_ = BuildAdjacency(vertex_count, edges);
  graph.edges_ = std::make_shared<const std::vector<std::pair<int, int>>>(
      std::move(edges));
  return graph;
}

ConflictGraph ConflictGraph::DeriveFrom(const ConflictGraph& parent,
                                        int vertex_count,
                                        std::vector<std::pair<int, int>> edges,
                                        int identity_limit,
                                        const DynamicBitset& dirty) {
  CHECK_GE(vertex_count, 0);
  CHECK_GE(identity_limit, 0);
  if (identity_limit > 0) {
    // Sharing a parent bitset reinterprets it over the new universe
    // (zero-extended or truncated — see the header); the identity region
    // itself must exist in both universes.
    CHECK_LE(identity_limit, vertex_count);
    CHECK_LE(identity_limit, parent.vertex_count_);
    CHECK_EQ(dirty.size(), vertex_count);
  }
  ConflictGraph graph;
  graph.vertex_count_ = vertex_count;
  graph.adjacency_.resize(vertex_count);
  // Fresh (still mutable) bitsets for the dirty region; shared rows for the
  // clean identity region.
  std::vector<std::shared_ptr<DynamicBitset>> fresh(vertex_count);
  for (int v = 0; v < vertex_count; ++v) {
    if (v < identity_limit && !dirty.Test(v)) {
      graph.adjacency_[v] = parent.adjacency_[v];
    } else {
      fresh[v] = std::make_shared<DynamicBitset>(vertex_count);
      graph.adjacency_[v] = fresh[v];
    }
  }
  for (size_t i = 0; i < edges.size(); ++i) {
    auto [u, v] = edges[i];
    DCHECK(u >= 0 && u < v && v < vertex_count)
        << "edge (" << u << "," << v << ") not normalized or out of range";
    DCHECK(i == 0 || edges[i - 1] < edges[i])
        << "edges not strictly ascending at index " << i;
    if (fresh[u] != nullptr) fresh[u]->Set(v);
    if (fresh[v] != nullptr) fresh[v]->Set(u);
  }
  graph.edges_ = std::make_shared<const std::vector<std::pair<int, int>>>(
      std::move(edges));
  return graph;
}

DynamicBitset ConflictGraph::Vicinity(int v) const {
  // Not a plain copy: a ragged row would hand the caller a set over the
  // wrong universe. Normalize to vertex_count() via the ragged-tolerant
  // OR (exact — row bits never reach past min(sizes)).
  DynamicBitset out(vertex_count_);
  out |= *adjacency_[v];
  out.Set(v);
  return out;
}

DynamicBitset ConflictGraph::NeighborsOfSet(const DynamicBitset& s) const {
  DynamicBitset out(vertex_count_);
  NeighborsOfSetInto(s, out);
  return out;
}

void ConflictGraph::NeighborsOfSetInto(const DynamicBitset& s,
                                       DynamicBitset& out) const {
  CHECK_EQ(s.size(), vertex_count_);
  CHECK_EQ(out.size(), vertex_count_);
  out.Clear();
  ForEachSetBit(s, [&](int v) { out |= *adjacency_[v]; });
}

bool ConflictGraph::IsIndependent(const DynamicBitset& s) const {
  CHECK_EQ(s.size(), vertex_count_);
  bool independent = true;
  ForEachSetBit(s, [&](int v) {
    if (independent && adjacency_[v]->Intersects(s)) independent = false;
  });
  return independent;
}

bool ConflictGraph::IsMaximalIndependent(const DynamicBitset& s) const {
  if (!IsIndependent(s)) return false;
  // Every outside vertex must be blocked by (adjacent to) some member.
  DynamicBitset covered = NeighborsOfSet(s) | s;
  return covered.Count() == vertex_count_;
}

std::vector<std::vector<int>> ConflictGraph::ConnectedComponents() const {
  std::vector<std::vector<int>> components;
  std::vector<bool> visited(vertex_count_, false);
  for (int start = 0; start < vertex_count_; ++start) {
    if (visited[start]) continue;
    std::vector<int> component;
    std::vector<int> stack = {start};
    visited[start] = true;
    while (!stack.empty()) {
      int v = stack.back();
      stack.pop_back();
      component.push_back(v);
      ForEachSetBit(*adjacency_[v], [&](int w) {
        if (!visited[w]) {
          visited[w] = true;
          stack.push_back(w);
        }
      });
    }
    std::sort(component.begin(), component.end());
    components.push_back(std::move(component));
  }
  return components;
}

}  // namespace prefrep
