#include "graph/conflict_graph.h"

#include <algorithm>

namespace prefrep {

ConflictGraph::ConflictGraph(int vertex_count,
                             const std::vector<std::pair<int, int>>& edges)
    : vertex_count_(vertex_count) {
  CHECK_GE(vertex_count, 0);
  adjacency_.assign(vertex_count, DynamicBitset(vertex_count));
  edges_.reserve(edges.size());
  for (auto [u, v] : edges) {
    CHECK(u >= 0 && u < vertex_count && v >= 0 && v < vertex_count)
        << "edge (" << u << "," << v << ") out of range";
    CHECK_NE(u, v) << "self-loop at vertex " << u;
    if (u > v) std::swap(u, v);
    edges_.emplace_back(u, v);
  }
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  for (auto [u, v] : edges_) {
    adjacency_[u].Set(v);
    adjacency_[v].Set(u);
  }
}

DynamicBitset ConflictGraph::Vicinity(int v) const {
  DynamicBitset out = adjacency_[v];
  out.Set(v);
  return out;
}

DynamicBitset ConflictGraph::NeighborsOfSet(const DynamicBitset& s) const {
  DynamicBitset out(vertex_count_);
  NeighborsOfSetInto(s, out);
  return out;
}

void ConflictGraph::NeighborsOfSetInto(const DynamicBitset& s,
                                       DynamicBitset& out) const {
  CHECK_EQ(s.size(), vertex_count_);
  CHECK_EQ(out.size(), vertex_count_);
  out.Clear();
  ForEachSetBit(s, [&](int v) { out |= adjacency_[v]; });
}

bool ConflictGraph::IsIndependent(const DynamicBitset& s) const {
  CHECK_EQ(s.size(), vertex_count_);
  bool independent = true;
  ForEachSetBit(s, [&](int v) {
    if (independent && adjacency_[v].Intersects(s)) independent = false;
  });
  return independent;
}

bool ConflictGraph::IsMaximalIndependent(const DynamicBitset& s) const {
  if (!IsIndependent(s)) return false;
  // Every outside vertex must be blocked by (adjacent to) some member.
  DynamicBitset covered = NeighborsOfSet(s) | s;
  return covered.Count() == vertex_count_;
}

std::vector<std::vector<int>> ConflictGraph::ConnectedComponents() const {
  std::vector<std::vector<int>> components;
  std::vector<bool> visited(vertex_count_, false);
  for (int start = 0; start < vertex_count_; ++start) {
    if (visited[start]) continue;
    std::vector<int> component;
    std::vector<int> stack = {start};
    visited[start] = true;
    while (!stack.empty()) {
      int v = stack.back();
      stack.pop_back();
      component.push_back(v);
      ForEachSetBit(adjacency_[v], [&](int w) {
        if (!visited[w]) {
          visited[w] = true;
          stack.push_back(w);
        }
      });
    }
    std::sort(component.begin(), component.end());
    components.push_back(std::move(component));
  }
  return components;
}

}  // namespace prefrep
