#include "graph/components.h"

#include <algorithm>
#include <utility>

namespace prefrep {

ConflictGraph InducedSubgraph(const ConflictGraph& graph,
                              const std::vector<int>& vertices) {
  int local_count = static_cast<int>(vertices.size());
  std::vector<int> local_of(graph.vertex_count(), -1);
  for (int i = 0; i < local_count; ++i) {
    CHECK(i == 0 || vertices[i - 1] < vertices[i])
        << "InducedSubgraph needs sorted distinct vertices";
    local_of[vertices[i]] = i;
  }
  std::vector<std::pair<int, int>> local_edges;
  for (int i = 0; i < local_count; ++i) {
    ForEachSetBit(graph.Neighbors(vertices[i]), [&](int w) {
      // Emit each edge once from its lower endpoint.
      if (w > vertices[i] && local_of[w] >= 0) {
        local_edges.emplace_back(i, local_of[w]);
      }
    });
  }
  return ConflictGraph(local_count, local_edges);
}

bool SpansOneComponent(const ConflictGraph& graph) {
  int n = graph.vertex_count();
  if (n == 0) return false;
  // Word-parallel BFS from vertex 0.
  DynamicBitset visited(n);
  DynamicBitset frontier(n);
  DynamicBitset next(n);
  frontier.Set(0);
  while (frontier.Any()) {
    visited |= frontier;
    next.Clear();
    ForEachSetBit(frontier, [&](int v) { next |= graph.Neighbors(v); });
    next.Subtract(visited);
    std::swap(frontier, next);
  }
  return visited.Count() == n;
}

ComponentDecomposition::ComponentDecomposition(const ConflictGraph& graph)
    : vertex_count_(graph.vertex_count()),
      isolated_(graph.vertex_count()),
      component_of_(graph.vertex_count(), -1),
      local_index_(graph.vertex_count(), -1) {
  for (const std::vector<int>& vertices : graph.ConnectedComponents()) {
    if (vertices.size() == 1) {
      isolated_.Set(vertices[0]);
      continue;
    }
    int c = static_cast<int>(components_.size());
    for (size_t i = 0; i < vertices.size(); ++i) {
      component_of_[vertices[i]] = c;
      local_index_[vertices[i]] = static_cast<int>(i);
    }
    GraphComponent component;
    component.graph = InducedSubgraph(graph, vertices);
    component.vertices = vertices;
    components_.push_back(std::move(component));
  }
  rebuilt_component_count_ = static_cast<int>(components_.size());
}

ComponentDecomposition::ComponentDecomposition(
    const ConflictGraph& graph, const DecompositionDeltaSeed& seed)
    : vertex_count_(graph.vertex_count()),
      isolated_(graph.vertex_count()),
      component_of_(graph.vertex_count(), -1),
      local_index_(graph.vertex_count(), -1) {
  CHECK(seed.parent != nullptr && seed.old_to_new != nullptr);
  const ComponentDecomposition& parent = *seed.parent;
  const std::vector<int>& old_to_new = *seed.old_to_new;
  CHECK_EQ(static_cast<int>(old_to_new.size()), parent.vertex_count());

  // Clean parent components survive intact: every member remapped (the
  // delta deleted none of them — that would have dirtied the component),
  // the local subgraph reused. Parent order is by smallest old vertex and
  // the remap is monotone, so the carried list stays sorted by smallest
  // new vertex.
  std::vector<GraphComponent> carried;
  carried.reserve(parent.components().size());
  size_t next_dirty = 0;
  for (size_t c = 0; c < parent.components().size(); ++c) {
    while (next_dirty < seed.dirty_components.size() &&
           seed.dirty_components[next_dirty] < static_cast<int>(c)) {
      ++next_dirty;
    }
    if (next_dirty < seed.dirty_components.size() &&
        seed.dirty_components[next_dirty] == static_cast<int>(c)) {
      continue;
    }
    const GraphComponent& source = parent.components()[c];
    GraphComponent component;
    component.vertices.reserve(source.vertices.size());
    for (int old_vertex : source.vertices) {
      int new_vertex = old_to_new[old_vertex];
      DCHECK(new_vertex >= 0) << "clean component lost vertex " << old_vertex;
      component.vertices.push_back(new_vertex);
    }
    component.graph = source.graph;
    carried.push_back(std::move(component));
  }

  // Dirty region: plain BFS from the seed vertices over the new graph.
  // Closure stays inside the dirty region — an edge from a dirty vertex
  // into a clean component would be a fresh edge, which dirties that
  // component by the seed's contract.
  std::vector<GraphComponent> rebuilt;
  DynamicBitset visited(vertex_count_);
  std::vector<int> stack;
  for (int start : seed.dirty_vertices) {
    if (visited.Test(start)) continue;
    std::vector<int> vertices;
    stack.assign(1, start);
    visited.Set(start);
    while (!stack.empty()) {
      int v = stack.back();
      stack.pop_back();
      vertices.push_back(v);
      ForEachSetBit(graph.Neighbors(v), [&](int w) {
        if (!visited.Test(w)) {
          visited.Set(w);
          stack.push_back(w);
        }
      });
    }
    if (vertices.size() == 1) continue;  // isolated; swept up below
    std::sort(vertices.begin(), vertices.end());
    GraphComponent component;
    component.graph = InducedSubgraph(graph, vertices);
    component.vertices = std::move(vertices);
    rebuilt.push_back(std::move(component));
  }
  std::sort(rebuilt.begin(), rebuilt.end(),
            [](const GraphComponent& a, const GraphComponent& b) {
              return a.vertices.front() < b.vertices.front();
            });

  // Count directly from the two lists rather than by parent/child set
  // arithmetic — fresh edges can merge several dirty parent components
  // into one child component, so differences of totals don't track what
  // was actually BFS-built.
  carried_component_count_ = static_cast<int>(carried.size());
  rebuilt_component_count_ = static_cast<int>(rebuilt.size());

  // Merge carried and rebuilt by smallest vertex — the global order
  // ComponentDecomposition(graph) would produce — and index everything.
  components_.reserve(carried.size() + rebuilt.size());
  size_t i = 0;
  size_t j = 0;
  while (i < carried.size() || j < rebuilt.size()) {
    bool take_carried =
        j >= rebuilt.size() ||
        (i < carried.size() &&
         carried[i].vertices.front() < rebuilt[j].vertices.front());
    components_.push_back(take_carried ? std::move(carried[i++])
                                       : std::move(rebuilt[j++]));
  }
  for (size_t c = 0; c < components_.size(); ++c) {
    const std::vector<int>& vertices = components_[c].vertices;
    for (size_t k = 0; k < vertices.size(); ++k) {
      component_of_[vertices[k]] = static_cast<int>(c);
      local_index_[vertices[k]] = static_cast<int>(k);
    }
  }
  for (int v = 0; v < vertex_count_; ++v) {
    if (component_of_[v] < 0) isolated_.Set(v);
  }
}

void ComponentDecomposition::Scatter(int c, const DynamicBitset& local,
                                     DynamicBitset& global) const {
  const GraphComponent& component = components_[c];
  CHECK_EQ(local.size(), component.graph.vertex_count());
  CHECK_EQ(global.size(), vertex_count_);
  for (size_t i = 0; i < component.vertices.size(); ++i) {
    global.Assign(component.vertices[i], local.Test(static_cast<int>(i)));
  }
}

void ComponentDecomposition::Gather(int c, const DynamicBitset& global,
                                    DynamicBitset& local) const {
  const GraphComponent& component = components_[c];
  CHECK_EQ(local.size(), component.graph.vertex_count());
  CHECK_EQ(global.size(), vertex_count_);
  for (size_t i = 0; i < component.vertices.size(); ++i) {
    local.Assign(static_cast<int>(i), global.Test(component.vertices[i]));
  }
}

ComponentProductEnumerator::ComponentProductEnumerator(
    const ComponentDecomposition& decomposition,
    std::vector<std::vector<DynamicBitset>> choices, ExecutionContext* context)
    : decomposition_(decomposition),
      owned_choices_(std::move(choices)),
      choices_(&owned_choices_),
      context_(context) {
  CHECK_EQ(choices_->size(), decomposition_.components().size());
}

ComponentProductEnumerator::ComponentProductEnumerator(
    const ComponentDecomposition& decomposition,
    const std::vector<std::vector<DynamicBitset>>* choices,
    ExecutionContext* context)
    : decomposition_(decomposition), choices_(choices), context_(context) {
  CHECK_EQ(choices_->size(), decomposition_.components().size());
}

bool ComponentProductEnumerator::Enumerate(
    const std::function<bool(const DynamicBitset&)>& callback) {
  return EnumerateSlices({}, callback);
}

bool ComponentProductEnumerator::EnumerateSlices(
    const std::vector<DigitRange>& ranges,
    const std::function<bool(const DynamicBitset&)>& callback) {
  const std::vector<std::vector<DynamicBitset>>& choices = *choices_;
  int digits = static_cast<int>(choices.size());
  if (digits == 0) {
    // No non-singleton components: the unique combination keeps exactly
    // the isolated vertices.
    DynamicBitset scratch = decomposition_.isolated();
    return callback(scratch);
  }
  std::vector<size_t> begins(digits, 0);
  std::vector<size_t> ends(digits);
  for (int d = 0; d < digits; ++d) ends[d] = choices[d].size();
  for (const DigitRange& range : ranges) {
    CHECK(range.digit >= 0 && range.digit < digits);
    CHECK_LE(range.end, choices[range.digit].size());
    begins[range.digit] = range.begin;
    ends[range.digit] = range.end;
  }
  for (int d = 0; d < digits; ++d) {
    if (begins[d] >= ends[d]) return true;  // empty box (or empty list)
  }
  DynamicBitset scratch = decomposition_.isolated();
  std::vector<size_t> index(digits);
  for (int d = 0; d < digits; ++d) {
    index[d] = begins[d];
    decomposition_.Scatter(d, choices[d][index[d]], scratch);
  }
  while (true) {
    if (context_ != nullptr && context_->ShouldStop()) return false;
    if (!callback(scratch)) return false;
    // Odometer advance: bump the first digit that has a next option,
    // rewinding the ones before it. Only changed digits are re-scattered,
    // so consecutive outputs cost O(size of the components that moved).
    int d = 0;
    while (d < digits && index[d] + 1 == ends[d]) {
      index[d] = begins[d];
      decomposition_.Scatter(d, choices[d][index[d]], scratch);
      ++d;
    }
    if (d == digits) return true;
    ++index[d];
    decomposition_.Scatter(d, choices[d][index[d]], scratch);
  }
}

bool ComponentProductEnumerator::EnumerateSlice(
    int c, size_t begin, size_t end,
    const std::function<bool(const DynamicBitset&)>& callback) {
  return EnumerateSlices({{c, begin, end}}, callback);
}

BigUint ComponentProductEnumerator::Count() const {
  BigUint total = BigUint::One();
  for (const std::vector<DynamicBitset>& options : *choices_) {
    total *= BigUint(options.size());
  }
  return total;
}

}  // namespace prefrep
