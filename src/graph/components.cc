#include "graph/components.h"

#include <utility>

namespace prefrep {

ConflictGraph InducedSubgraph(const ConflictGraph& graph,
                              const std::vector<int>& vertices) {
  int local_count = static_cast<int>(vertices.size());
  std::vector<int> local_of(graph.vertex_count(), -1);
  for (int i = 0; i < local_count; ++i) {
    CHECK(i == 0 || vertices[i - 1] < vertices[i])
        << "InducedSubgraph needs sorted distinct vertices";
    local_of[vertices[i]] = i;
  }
  std::vector<std::pair<int, int>> local_edges;
  for (int i = 0; i < local_count; ++i) {
    ForEachSetBit(graph.Neighbors(vertices[i]), [&](int w) {
      // Emit each edge once from its lower endpoint.
      if (w > vertices[i] && local_of[w] >= 0) {
        local_edges.emplace_back(i, local_of[w]);
      }
    });
  }
  return ConflictGraph(local_count, local_edges);
}

bool SpansOneComponent(const ConflictGraph& graph) {
  int n = graph.vertex_count();
  if (n == 0) return false;
  // Word-parallel BFS from vertex 0.
  DynamicBitset visited(n);
  DynamicBitset frontier(n);
  DynamicBitset next(n);
  frontier.Set(0);
  while (frontier.Any()) {
    visited |= frontier;
    next.Clear();
    ForEachSetBit(frontier, [&](int v) { next |= graph.Neighbors(v); });
    next.Subtract(visited);
    std::swap(frontier, next);
  }
  return visited.Count() == n;
}

ComponentDecomposition::ComponentDecomposition(const ConflictGraph& graph)
    : vertex_count_(graph.vertex_count()),
      isolated_(graph.vertex_count()),
      component_of_(graph.vertex_count(), -1),
      local_index_(graph.vertex_count(), -1) {
  for (const std::vector<int>& vertices : graph.ConnectedComponents()) {
    if (vertices.size() == 1) {
      isolated_.Set(vertices[0]);
      continue;
    }
    int c = static_cast<int>(components_.size());
    for (size_t i = 0; i < vertices.size(); ++i) {
      component_of_[vertices[i]] = c;
      local_index_[vertices[i]] = static_cast<int>(i);
    }
    GraphComponent component;
    component.graph = InducedSubgraph(graph, vertices);
    component.vertices = vertices;
    components_.push_back(std::move(component));
  }
}

void ComponentDecomposition::Scatter(int c, const DynamicBitset& local,
                                     DynamicBitset& global) const {
  const GraphComponent& component = components_[c];
  CHECK_EQ(local.size(), component.graph.vertex_count());
  CHECK_EQ(global.size(), vertex_count_);
  for (size_t i = 0; i < component.vertices.size(); ++i) {
    global.Assign(component.vertices[i], local.Test(static_cast<int>(i)));
  }
}

void ComponentDecomposition::Gather(int c, const DynamicBitset& global,
                                    DynamicBitset& local) const {
  const GraphComponent& component = components_[c];
  CHECK_EQ(local.size(), component.graph.vertex_count());
  CHECK_EQ(global.size(), vertex_count_);
  for (size_t i = 0; i < component.vertices.size(); ++i) {
    local.Assign(static_cast<int>(i), global.Test(component.vertices[i]));
  }
}

ComponentProductEnumerator::ComponentProductEnumerator(
    const ComponentDecomposition& decomposition,
    std::vector<std::vector<DynamicBitset>> choices, ExecutionContext* context)
    : decomposition_(decomposition),
      owned_choices_(std::move(choices)),
      choices_(&owned_choices_),
      context_(context) {
  CHECK_EQ(choices_->size(), decomposition_.components().size());
}

ComponentProductEnumerator::ComponentProductEnumerator(
    const ComponentDecomposition& decomposition,
    const std::vector<std::vector<DynamicBitset>>* choices,
    ExecutionContext* context)
    : decomposition_(decomposition), choices_(choices), context_(context) {
  CHECK_EQ(choices_->size(), decomposition_.components().size());
}

bool ComponentProductEnumerator::Enumerate(
    const std::function<bool(const DynamicBitset&)>& callback) {
  return EnumerateSlices({}, callback);
}

bool ComponentProductEnumerator::EnumerateSlices(
    const std::vector<DigitRange>& ranges,
    const std::function<bool(const DynamicBitset&)>& callback) {
  const std::vector<std::vector<DynamicBitset>>& choices = *choices_;
  int digits = static_cast<int>(choices.size());
  if (digits == 0) {
    // No non-singleton components: the unique combination keeps exactly
    // the isolated vertices.
    DynamicBitset scratch = decomposition_.isolated();
    return callback(scratch);
  }
  std::vector<size_t> begins(digits, 0);
  std::vector<size_t> ends(digits);
  for (int d = 0; d < digits; ++d) ends[d] = choices[d].size();
  for (const DigitRange& range : ranges) {
    CHECK(range.digit >= 0 && range.digit < digits);
    CHECK_LE(range.end, choices[range.digit].size());
    begins[range.digit] = range.begin;
    ends[range.digit] = range.end;
  }
  for (int d = 0; d < digits; ++d) {
    if (begins[d] >= ends[d]) return true;  // empty box (or empty list)
  }
  DynamicBitset scratch = decomposition_.isolated();
  std::vector<size_t> index(digits);
  for (int d = 0; d < digits; ++d) {
    index[d] = begins[d];
    decomposition_.Scatter(d, choices[d][index[d]], scratch);
  }
  while (true) {
    if (context_ != nullptr && context_->ShouldStop()) return false;
    if (!callback(scratch)) return false;
    // Odometer advance: bump the first digit that has a next option,
    // rewinding the ones before it. Only changed digits are re-scattered,
    // so consecutive outputs cost O(size of the components that moved).
    int d = 0;
    while (d < digits && index[d] + 1 == ends[d]) {
      index[d] = begins[d];
      decomposition_.Scatter(d, choices[d][index[d]], scratch);
      ++d;
    }
    if (d == digits) return true;
    ++index[d];
    decomposition_.Scatter(d, choices[d][index[d]], scratch);
  }
}

bool ComponentProductEnumerator::EnumerateSlice(
    int c, size_t begin, size_t end,
    const std::function<bool(const DynamicBitset&)>& callback) {
  return EnumerateSlices({{c, begin, end}}, callback);
}

BigUint ComponentProductEnumerator::Count() const {
  BigUint total = BigUint::One();
  for (const std::vector<DynamicBitset>& options : *choices_) {
    total *= BigUint(options.size());
  }
  return total;
}

}  // namespace prefrep
