#include "graph/components.h"

#include <utility>

namespace prefrep {

ConflictGraph InducedSubgraph(const ConflictGraph& graph,
                              const std::vector<int>& vertices) {
  int local_count = static_cast<int>(vertices.size());
  std::vector<int> local_of(graph.vertex_count(), -1);
  for (int i = 0; i < local_count; ++i) {
    CHECK(i == 0 || vertices[i - 1] < vertices[i])
        << "InducedSubgraph needs sorted distinct vertices";
    local_of[vertices[i]] = i;
  }
  std::vector<std::pair<int, int>> local_edges;
  for (int i = 0; i < local_count; ++i) {
    ForEachSetBit(graph.Neighbors(vertices[i]), [&](int w) {
      // Emit each edge once from its lower endpoint.
      if (w > vertices[i] && local_of[w] >= 0) {
        local_edges.emplace_back(i, local_of[w]);
      }
    });
  }
  return ConflictGraph(local_count, local_edges);
}

bool SpansOneComponent(const ConflictGraph& graph) {
  int n = graph.vertex_count();
  if (n == 0) return false;
  // Word-parallel BFS from vertex 0.
  DynamicBitset visited(n);
  DynamicBitset frontier(n);
  DynamicBitset next(n);
  frontier.Set(0);
  while (frontier.Any()) {
    visited |= frontier;
    next.Clear();
    ForEachSetBit(frontier, [&](int v) { next |= graph.Neighbors(v); });
    next.Subtract(visited);
    std::swap(frontier, next);
  }
  return visited.Count() == n;
}

ComponentDecomposition::ComponentDecomposition(const ConflictGraph& graph)
    : vertex_count_(graph.vertex_count()),
      isolated_(graph.vertex_count()),
      component_of_(graph.vertex_count(), -1),
      local_index_(graph.vertex_count(), -1) {
  for (const std::vector<int>& vertices : graph.ConnectedComponents()) {
    if (vertices.size() == 1) {
      isolated_.Set(vertices[0]);
      continue;
    }
    int c = static_cast<int>(components_.size());
    for (size_t i = 0; i < vertices.size(); ++i) {
      component_of_[vertices[i]] = c;
      local_index_[vertices[i]] = static_cast<int>(i);
    }
    GraphComponent component;
    component.graph = InducedSubgraph(graph, vertices);
    component.vertices = vertices;
    components_.push_back(std::move(component));
  }
}

void ComponentDecomposition::Scatter(int c, const DynamicBitset& local,
                                     DynamicBitset& global) const {
  const GraphComponent& component = components_[c];
  CHECK_EQ(local.size(), component.graph.vertex_count());
  CHECK_EQ(global.size(), vertex_count_);
  for (size_t i = 0; i < component.vertices.size(); ++i) {
    global.Assign(component.vertices[i], local.Test(static_cast<int>(i)));
  }
}

void ComponentDecomposition::Gather(int c, const DynamicBitset& global,
                                    DynamicBitset& local) const {
  const GraphComponent& component = components_[c];
  CHECK_EQ(local.size(), component.graph.vertex_count());
  CHECK_EQ(global.size(), vertex_count_);
  for (size_t i = 0; i < component.vertices.size(); ++i) {
    local.Assign(static_cast<int>(i), global.Test(component.vertices[i]));
  }
}

ComponentProductEnumerator::ComponentProductEnumerator(
    const ComponentDecomposition& decomposition,
    std::vector<std::vector<DynamicBitset>> choices)
    : decomposition_(decomposition), choices_(std::move(choices)) {
  CHECK_EQ(choices_.size(), decomposition_.components().size());
}

bool ComponentProductEnumerator::Enumerate(
    const std::function<bool(const DynamicBitset&)>& callback) {
  for (const std::vector<DynamicBitset>& options : choices_) {
    if (options.empty()) return true;  // empty product
  }
  int digits = static_cast<int>(choices_.size());
  DynamicBitset scratch = decomposition_.isolated();
  std::vector<size_t> index(digits, 0);
  for (int c = 0; c < digits; ++c) {
    decomposition_.Scatter(c, choices_[c][0], scratch);
  }
  while (true) {
    if (!callback(scratch)) return false;
    // Odometer advance: bump the first digit that has a next option,
    // rewinding the ones before it. Only changed digits are re-scattered,
    // so consecutive outputs cost O(size of the components that moved).
    int c = 0;
    while (c < digits && index[c] + 1 == choices_[c].size()) {
      index[c] = 0;
      decomposition_.Scatter(c, choices_[c][0], scratch);
      ++c;
    }
    if (c == digits) return true;
    ++index[c];
    decomposition_.Scatter(c, choices_[c][index[c]], scratch);
  }
}

BigUint ComponentProductEnumerator::Count() const {
  BigUint total = BigUint::One();
  for (const std::vector<DynamicBitset>& options : choices_) {
    total *= BigUint(options.size());
  }
  return total;
}

}  // namespace prefrep
