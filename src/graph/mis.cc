#include "graph/mis.h"

#include <limits>

namespace prefrep {

namespace {

// Bron–Kerbosch with pivoting, phrased for independent sets: a maximal
// independent set of G is a maximal clique of the complement of G, and the
// complement-neighborhood of v is "everything outside v's vicinity".
class MisVisitor {
 public:
  MisVisitor(const ConflictGraph& graph,
             const std::function<bool(const DynamicBitset&)>& callback)
      : graph_(graph), callback_(callback) {}

  // Returns false if the callback requested an early stop.
  bool Expand(DynamicBitset& chosen, DynamicBitset candidates,
              DynamicBitset excluded) {
    if (candidates.None() && excluded.None()) {
      return callback_(chosen);
    }
    // Pivot u ∈ candidates ∪ excluded minimizing |candidates ∩ vicinity(u)|:
    // this bounds branching to candidates inside u's vicinity.
    int pivot = -1;
    int best = std::numeric_limits<int>::max();
    DynamicBitset pool = candidates | excluded;
    ForEachSetBit(pool, [&](int u) {
      int c = candidates.IntersectionCount(graph_.Vicinity(u));
      if (c < best) {
        best = c;
        pivot = u;
      }
    });
    DynamicBitset branch = candidates & graph_.Vicinity(pivot);
    for (int v = branch.FirstSetBit(); v >= 0; v = branch.NextSetBit(v + 1)) {
      DynamicBitset vicinity = graph_.Vicinity(v);
      chosen.Set(v);
      if (!Expand(chosen, Difference(candidates, vicinity),
                  Difference(excluded, vicinity))) {
        return false;
      }
      chosen.Reset(v);
      candidates.Reset(v);
      excluded.Set(v);
    }
    return true;
  }

 private:
  const ConflictGraph& graph_;
  const std::function<bool(const DynamicBitset&)>& callback_;
};

}  // namespace

bool EnumerateMaximalIndependentSets(
    const ConflictGraph& graph,
    const std::function<bool(const DynamicBitset&)>& callback) {
  int n = graph.vertex_count();
  DynamicBitset chosen(n);
  MisVisitor visitor(graph, callback);
  return visitor.Expand(chosen, DynamicBitset::AllSet(n), DynamicBitset(n));
}

std::vector<DynamicBitset> ComponentMaximalIndependentSets(
    const ConflictGraph& graph, const std::vector<int>& component) {
  int n = graph.vertex_count();
  DynamicBitset candidates(n);
  for (int v : component) candidates.Set(v);

  std::vector<DynamicBitset> results;
  DynamicBitset chosen(n);
  std::function<bool(const DynamicBitset&)> collect =
      [&results](const DynamicBitset& s) {
        results.push_back(s);
        return true;
      };
  MisVisitor visitor(graph, collect);
  visitor.Expand(chosen, std::move(candidates), DynamicBitset(n));
  return results;
}

Result<std::vector<DynamicBitset>> AllMaximalIndependentSets(
    const ConflictGraph& graph, size_t limit) {
  std::vector<DynamicBitset> results;
  bool complete = EnumerateMaximalIndependentSets(
      graph, [&results, limit](const DynamicBitset& s) {
        if (results.size() >= limit) return false;
        results.push_back(s);
        return true;
      });
  if (!complete) {
    return Status::ResourceExhausted(
        "more than " + std::to_string(limit) + " maximal independent sets");
  }
  return results;
}

BigUint CountMaximalIndependentSets(const ConflictGraph& graph) {
  BigUint total = BigUint::One();
  for (const std::vector<int>& component : graph.ConnectedComponents()) {
    if (component.size() == 1) continue;  // isolated vertex: one choice
    uint64_t count = 0;
    // Count within the component only (no cross-component blowup).
    std::vector<DynamicBitset> sets =
        ComponentMaximalIndependentSets(graph, component);
    count = sets.size();
    total *= BigUint(count);
  }
  return total;
}

}  // namespace prefrep
