#include "graph/mis.h"

#include <algorithm>
#include <new>
#include <optional>
#include <utility>

#include "base/failpoint.h"
#include "graph/components.h"

namespace prefrep {

MisEngine::MisEngine(const ConflictGraph& graph, ExecutionContext* context)
    : graph_(graph),
      context_(context),
      vertex_count_(graph.vertex_count()),
      chosen_(vertex_count_) {
  vicinity_.reserve(vertex_count_);
  for (int v = 0; v < vertex_count_; ++v) {
    vicinity_.push_back(graph.Vicinity(v));
  }
}

MisEngine::Frame& MisEngine::FrameAt(int depth) {
  while (static_cast<int>(frames_.size()) <= depth) {
    auto frame = std::make_unique<Frame>();
    frame->candidates = DynamicBitset(vertex_count_);
    frame->excluded = DynamicBitset(vertex_count_);
    frame->branch = DynamicBitset(vertex_count_);
    frames_.push_back(std::move(frame));
  }
  return *frames_[depth];
}

bool EnumerateMaximalIndependentSets(
    const ConflictGraph& graph,
    const std::function<bool(const DynamicBitset&)>& callback) {
  return EnumerateMaximalIndependentSets(graph, ParallelOptions{}, callback);
}

bool EnumerateMaximalIndependentSets(
    const ConflictGraph& graph, const ParallelOptions& options,
    const std::function<bool(const DynamicBitset&)>& callback) {
  ExecutionContext* context = options.context;
  if (SpansOneComponent(graph)) {
    // Connected graph: no decomposition, no remapping — search in place.
    MisEngine engine(graph, context);
    return engine.Enumerate(callback);
  }
  ComponentDecomposition decomposition(graph);
  const std::vector<GraphComponent>& components = decomposition.components();

  if (components.empty()) {
    // Only isolated vertices: the unique repair keeps all of them.
    return callback(decomposition.isolated());
  }

  if (components.size() == 1) {
    // Single component: stream straight out of the engine — no
    // materialization, matching the memory profile of the monolithic
    // search on connected graphs.
    DynamicBitset scratch = decomposition.isolated();
    MisEngine engine(components[0].graph, context);
    return engine.Enumerate([&](const DynamicBitset& local) {
      decomposition.Scatter(0, local, scratch);
      return callback(scratch);
    });
  }

  // Materialize each component's MIS list in its compact universe, then
  // stream the cross product. If the lists outgrow the byte budget (only
  // possible when one component alone has an astronomical repair space),
  // fall back to the whole-graph streaming search.
  std::optional<bool> complete = TryEnumerateViaComponentProduct(
      decomposition, options,
      [&](int c, std::vector<DynamicBitset>* out, ResourceArbiter* arbiter) {
        const ConflictGraph& subgraph = components[c].graph;
        const size_t per_set_bytes =
            DynamicBitset(subgraph.vertex_count()).MemoryBytes();
        MisEngine engine(subgraph, context);
        return engine.Enumerate([&](const DynamicBitset& local) {
          if (!arbiter->TryCharge(per_set_bytes)) return false;
          out->push_back(local);
          return true;
        });
      },
      callback);
  if (complete.has_value()) return *complete;
  if (context != nullptr && context->interrupted()) return false;
  PREFREP_FAILPOINT("families.streaming_fallback");
  MisEngine whole(graph, context);
  return whole.Enumerate(callback);
}

std::vector<DynamicBitset> ComponentMaximalIndependentSets(
    const ConflictGraph& graph, const std::vector<int>& component,
    ExecutionContext* context) {
  ConflictGraph subgraph = InducedSubgraph(graph, component);
  MisEngine engine(subgraph, context);
  std::vector<DynamicBitset> results;
  DynamicBitset scratch(graph.vertex_count());
  engine.Enumerate([&](const DynamicBitset& local) {
    for (size_t i = 0; i < component.size(); ++i) {
      scratch.Assign(component[i], local.Test(static_cast<int>(i)));
    }
    results.push_back(scratch);
    return true;
  });
  return results;
}

Result<std::vector<DynamicBitset>> AllMaximalIndependentSets(
    const ConflictGraph& graph, size_t limit) {
  return AllMaximalIndependentSets(graph, ParallelOptions{}, limit);
}

Result<std::vector<DynamicBitset>> AllMaximalIndependentSets(
    const ConflictGraph& graph, const ParallelOptions& options, size_t limit) try {
  ExecutionContext* context = options.context;
  if (context != nullptr) {
    limit = std::min(limit, context->limits().max_repair_list);
  }
  std::vector<DynamicBitset> results;
  bool complete = EnumerateMaximalIndependentSets(
      graph, options, [&results, limit](const DynamicBitset& s) {
        if (results.size() >= limit) return false;
        results.push_back(s);
        return true;
      });
  if (!complete) {
    if (context != nullptr && context->interrupted()) {
      return context->StatusWithStats();
    }
    return Status::ResourceExhausted(
        "more than " + std::to_string(limit) + " maximal independent sets");
  }
  return results;
} catch (const std::bad_alloc&) {
  return Status::ResourceExhausted(
      "allocation failed materializing maximal independent sets");
}

BigUint CountMaximalIndependentSets(const ConflictGraph& graph) {
  ComponentDecomposition decomposition(graph);
  BigUint total = BigUint::One();
  for (const GraphComponent& component : decomposition.components()) {
    uint64_t count = 0;
    MisEngine engine(component.graph);
    engine.Enumerate([&count](const DynamicBitset&) {
      ++count;
      return true;
    });
    total *= BigUint(count);
  }
  return total;
}

}  // namespace prefrep
