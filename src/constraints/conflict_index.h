// FdConflictIndex: a per-FD hash index over LHS projections, built once
// per snapshot, probed per delta tuple.
//
// Conflict detection from scratch (conflicts.h) partitions every tuple of
// an FD's relation by its LHS-projection hash. The incremental path
// (delta.h + server/snapshot.h's Snapshot::Derive) only needs the
// conflicts OF THE DELTA TUPLES: an FD conflict requires LHS agreement, so
// an inserted tuple can only conflict with tuples in the same LHS
// partition, and a deleted tuple removes exactly its incident edges. The
// index stores, per FD, a flat (lhs_hash, tuple_id) array sorted by hash:
// probing one tuple is a binary search plus an in-bucket fd.Conflicts
// verification (hash collisions are verified away, never trusted), and
// deriving the index for a successor database is a linear filter/remap of
// survivors merged with the sorted probe entries of the inserts.
//
// Everything is expressed over global TupleIds of the database the index
// was built for; Derive translates to the successor's id space via the
// DeltaRemap (monotone, so sortedness survives the remap).

#ifndef PREFREP_CONSTRAINTS_CONFLICT_INDEX_H_
#define PREFREP_CONSTRAINTS_CONFLICT_INDEX_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "base/exec_context.h"
#include "base/status.h"
#include "constraints/conflicts.h"
#include "constraints/fd.h"
#include "relational/database.h"
#include "relational/delta.h"

namespace prefrep {

class FdConflictIndex {
 public:
  FdConflictIndex() = default;

  // Builds the index for `db` w.r.t. `fds` (kNotFound when an FD names an
  // unknown relation, mirroring FindConflicts).
  static Result<FdConflictIndex> Build(
      const Database& db, const std::vector<FunctionalDependency>& fds,
      ExecutionContext* context = nullptr);

  // Appends to `out` the ids of all tuples in `db` conflicting with
  // `tuple` under FD `fd_index`, as if `tuple` were a fresh row of that
  // FD's relation. `db` must be the database the index was built for.
  void ProbeConflicts(const Database& db,
                      const std::vector<FunctionalDependency>& fds,
                      int fd_index, const Tuple& tuple,
                      std::vector<TupleId>* out) const;

  // The index of the post-delta database, plus — appended to `new_edges`,
  // normalized (min, max), sorted, deduplicated, in NEW ids — every
  // conflict edge incident to an inserted tuple. Edges between survivors
  // are unchanged by construction (LHS agreement is a property of the two
  // tuples alone), so the caller combines `new_edges` with the remapped
  // survivor edges of the parent graph.
  //
  // `new_db` must be delta.Apply()'s result and `remap` its DeltaRemap.
  static Result<FdConflictIndex> Derive(
      const FdConflictIndex& parent,
      const std::vector<FunctionalDependency>& fds,
      const DatabaseDelta& delta, const Database& new_db,
      const DeltaRemap& remap,
      std::vector<std::pair<TupleId, TupleId>>* new_edges,
      ExecutionContext* context = nullptr);

  size_t entry_count() const;

 private:
  struct PerFd {
    int relation = -1;  // relation index in the database
    // (LHS-projection hash, global tuple id), sorted.
    std::vector<std::pair<uint64_t, TupleId>> entries;
  };

  std::vector<PerFd> per_fd_;
};

}  // namespace prefrep

#endif  // PREFREP_CONSTRAINTS_CONFLICT_INDEX_H_
