#include "constraints/conflicts.h"

#include <algorithm>
#include <unordered_map>

namespace prefrep {

size_t FdProjectionHash(const Tuple& t, const std::vector<int>& attrs) {
  Value::Hash vh;
  size_t h = 1469598103934665603ull;
  for (int a : attrs) {
    h ^= vh(t.value(a));
    h *= 1099511628211ull;
  }
  return h;
}

namespace {

void SortAndDedup(std::vector<ConflictEdge>& edges) {
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
}

// Looks up the relation an FD refers to, with a uniform error.
Result<int> RelationIndexFor(const Database& db,
                             const FunctionalDependency& fd) {
  Result<int> index = db.RelationIndex(fd.relation_name());
  if (!index.ok()) {
    return Status::NotFound("FD references unknown relation '" +
                            fd.relation_name() + "'");
  }
  return index;
}

}  // namespace

Result<std::vector<ConflictEdge>> FindConflicts(
    const Database& db, const std::vector<FunctionalDependency>& fds) {
  std::vector<ConflictEdge> edges;
  for (const FunctionalDependency& fd : fds) {
    PREFREP_ASSIGN_OR_RETURN(int rel_idx, RelationIndexFor(db, fd));
    const Relation& rel = db.relations()[rel_idx];

    // Partition rows by LHS-projection hash; verify agreement inside
    // buckets to be safe against hash collisions.
    std::unordered_map<size_t, std::vector<int>> buckets;
    for (int row = 0; row < rel.size(); ++row) {
      buckets[FdProjectionHash(rel.tuple(row), fd.lhs())].push_back(row);
    }
    for (const auto& [hash, rows] : buckets) {
      (void)hash;
      for (size_t i = 0; i < rows.size(); ++i) {
        for (size_t j = i + 1; j < rows.size(); ++j) {
          const Tuple& t1 = rel.tuple(rows[i]);
          const Tuple& t2 = rel.tuple(rows[j]);
          if (fd.Conflicts(t1, t2)) {
            TupleId a = db.GlobalId(rel_idx, rows[i]);
            TupleId b = db.GlobalId(rel_idx, rows[j]);
            edges.emplace_back(std::min(a, b), std::max(a, b));
          }
        }
      }
    }
  }
  SortAndDedup(edges);
  return edges;
}

Result<std::vector<ConflictEdge>> FindConflictsNaive(
    const Database& db, const std::vector<FunctionalDependency>& fds) {
  std::vector<ConflictEdge> edges;
  for (const FunctionalDependency& fd : fds) {
    PREFREP_ASSIGN_OR_RETURN(int rel_idx, RelationIndexFor(db, fd));
    const Relation& rel = db.relations()[rel_idx];
    for (int i = 0; i < rel.size(); ++i) {
      for (int j = i + 1; j < rel.size(); ++j) {
        if (fd.Conflicts(rel.tuple(i), rel.tuple(j))) {
          TupleId a = db.GlobalId(rel_idx, i);
          TupleId b = db.GlobalId(rel_idx, j);
          edges.emplace_back(std::min(a, b), std::max(a, b));
        }
      }
    }
  }
  SortAndDedup(edges);
  return edges;
}

Result<bool> IsConsistent(const Database& db,
                          const std::vector<FunctionalDependency>& fds) {
  PREFREP_ASSIGN_OR_RETURN(std::vector<ConflictEdge> edges,
                           FindConflicts(db, fds));
  return edges.empty();
}

}  // namespace prefrep
