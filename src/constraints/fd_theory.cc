#include "constraints/fd_theory.h"

#include <algorithm>

namespace prefrep {

namespace {

AttributeSet ToSet(int arity, const std::vector<int>& attrs) {
  return AttributeSet::FromIndices(arity, attrs);
}

}  // namespace

AttributeSet AttributeClosure(const Schema& schema,
                              const std::vector<FunctionalDependency>& fds,
                              const AttributeSet& attrs) {
  CHECK_EQ(attrs.size(), schema.arity());
  AttributeSet closure = attrs;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const FunctionalDependency& fd : fds) {
      AttributeSet lhs = ToSet(schema.arity(), fd.lhs());
      if (!lhs.IsSubsetOf(closure)) continue;
      for (int b : fd.rhs()) {
        if (!closure.Test(b)) {
          closure.Set(b);
          changed = true;
        }
      }
    }
  }
  return closure;
}

bool Implies(const Schema& schema,
             const std::vector<FunctionalDependency>& fds,
             const FunctionalDependency& fd) {
  AttributeSet closure =
      AttributeClosure(schema, fds, ToSet(schema.arity(), fd.lhs()));
  return ToSet(schema.arity(), fd.rhs()).IsSubsetOf(closure);
}

bool IsSuperkey(const Schema& schema,
                const std::vector<FunctionalDependency>& fds,
                const AttributeSet& attrs) {
  return AttributeClosure(schema, fds, attrs).Count() == schema.arity();
}

std::vector<AttributeSet> CandidateKeys(
    const Schema& schema, const std::vector<FunctionalDependency>& fds) {
  int n = schema.arity();
  CHECK_LE(n, 20) << "CandidateKeys enumerates subsets; arity too large";
  std::vector<AttributeSet> keys;
  // Enumerate subsets in order of increasing size so minimality can be
  // checked against previously found keys.
  std::vector<uint32_t> subsets;
  subsets.reserve(1u << n);
  for (uint32_t mask = 0; mask < (1u << n); ++mask) subsets.push_back(mask);
  std::sort(subsets.begin(), subsets.end(), [](uint32_t a, uint32_t b) {
    int pa = __builtin_popcount(a), pb = __builtin_popcount(b);
    return pa != pb ? pa < pb : a < b;
  });
  for (uint32_t mask : subsets) {
    AttributeSet attrs(n);
    for (int i = 0; i < n; ++i) {
      if (mask & (1u << i)) attrs.Set(i);
    }
    bool contains_key = std::any_of(
        keys.begin(), keys.end(),
        [&](const AttributeSet& key) { return key.IsSubsetOf(attrs); });
    if (contains_key) continue;
    if (IsSuperkey(schema, fds, attrs)) keys.push_back(attrs);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

bool IsBcnf(const Schema& schema,
            const std::vector<FunctionalDependency>& fds) {
  for (const FunctionalDependency& fd : fds) {
    AttributeSet lhs = ToSet(schema.arity(), fd.lhs());
    AttributeSet rhs = ToSet(schema.arity(), fd.rhs());
    // Trivial FD: RHS ⊆ LHS.
    if (rhs.IsSubsetOf(lhs)) continue;
    if (!IsSuperkey(schema, fds, lhs)) return false;
  }
  return true;
}

std::vector<FunctionalDependency> MinimalCover(
    const Schema& schema, const std::vector<FunctionalDependency>& fds) {
  // Step 1: split RHS into singletons.
  std::vector<FunctionalDependency> cover;
  for (const FunctionalDependency& fd : fds) {
    for (int b : fd.rhs()) {
      auto single = FunctionalDependency::Create(schema, fd.lhs(), {b});
      CHECK(single.ok());
      cover.push_back(*single);
    }
  }

  // Step 2: remove extraneous LHS attributes.
  for (auto& fd : cover) {
    bool reduced = true;
    while (reduced && fd.lhs().size() > 1) {
      reduced = false;
      for (size_t i = 0; i < fd.lhs().size(); ++i) {
        std::vector<int> smaller = fd.lhs();
        smaller.erase(smaller.begin() + static_cast<long>(i));
        auto candidate = FunctionalDependency::Create(schema, smaller,
                                                      fd.rhs());
        CHECK(candidate.ok());
        if (Implies(schema, cover, *candidate)) {
          fd = *candidate;
          reduced = true;
          break;
        }
      }
    }
  }

  // Step 3: drop redundant FDs.
  for (size_t i = 0; i < cover.size();) {
    std::vector<FunctionalDependency> rest;
    for (size_t j = 0; j < cover.size(); ++j) {
      if (j != i) rest.push_back(cover[j]);
    }
    if (Implies(schema, rest, cover[i])) {
      cover = std::move(rest);
    } else {
      ++i;
    }
  }

  // Deduplicate identical FDs (can arise from step 1).
  std::vector<FunctionalDependency> unique;
  for (const auto& fd : cover) {
    if (std::find(unique.begin(), unique.end(), fd) == unique.end()) {
      unique.push_back(fd);
    }
  }
  return unique;
}

bool IsSingleKeyDependency(const Schema& schema,
                           const std::vector<FunctionalDependency>& fds) {
  if (fds.size() != 1) return false;
  return fds[0].IsKeyDependencyFor(schema);
}

}  // namespace prefrep
