#include "constraints/conflict_index.h"

#include <algorithm>
#include <limits>

namespace prefrep {

Result<FdConflictIndex> FdConflictIndex::Build(
    const Database& db, const std::vector<FunctionalDependency>& fds,
    ExecutionContext* context) {
  FdConflictIndex index;
  index.per_fd_.reserve(fds.size());
  for (const FunctionalDependency& fd : fds) {
    Result<int> rel_idx = db.RelationIndex(fd.relation_name());
    if (!rel_idx.ok()) {
      return Status::NotFound("FD references unknown relation '" +
                              fd.relation_name() + "'");
    }
    const Relation& rel = db.relations()[*rel_idx];
    PerFd per_fd;
    per_fd.relation = *rel_idx;
    per_fd.entries.reserve(rel.size());
    for (int row = 0; row < rel.size(); ++row) {
      if ((row & 4095) == 0 && context != nullptr && context->ShouldStop()) {
        return context->status();
      }
      per_fd.entries.emplace_back(FdProjectionHash(rel.tuple(row), fd.lhs()),
                                  db.GlobalId(*rel_idx, row));
    }
    std::sort(per_fd.entries.begin(), per_fd.entries.end());
    index.per_fd_.push_back(std::move(per_fd));
  }
  return index;
}

void FdConflictIndex::ProbeConflicts(
    const Database& db, const std::vector<FunctionalDependency>& fds,
    int fd_index, const Tuple& tuple, std::vector<TupleId>* out) const {
  const PerFd& per_fd = per_fd_[fd_index];
  const FunctionalDependency& fd = fds[fd_index];
  const uint64_t hash = FdProjectionHash(tuple, fd.lhs());
  auto it = std::lower_bound(
      per_fd.entries.begin(), per_fd.entries.end(),
      std::make_pair(hash, std::numeric_limits<TupleId>::min()));
  for (; it != per_fd.entries.end() && it->first == hash; ++it) {
    if (fd.Conflicts(tuple, db.TupleOf(it->second))) {
      out->push_back(it->second);
    }
  }
}

Result<FdConflictIndex> FdConflictIndex::Derive(
    const FdConflictIndex& parent,
    const std::vector<FunctionalDependency>& fds, const DatabaseDelta& delta,
    const Database& new_db, const DeltaRemap& remap,
    std::vector<std::pair<TupleId, TupleId>>* new_edges,
    ExecutionContext* context) {
  CHECK_EQ(parent.per_fd_.size(), fds.size());
  FdConflictIndex out;
  out.per_fd_.resize(parent.per_fd_.size());
  for (size_t f = 0; f < parent.per_fd_.size(); ++f) {
    const PerFd& old_fd = parent.per_fd_[f];
    PerFd& new_fd = out.per_fd_[f];
    new_fd.relation = old_fd.relation;

    // Survivors: filter deleted ids, translate to new ids. The remap is
    // monotone, so the (hash, id) order is preserved — no re-sort.
    std::vector<std::pair<uint64_t, TupleId>> survivors;
    survivors.reserve(old_fd.entries.size());
    size_t scanned = 0;
    for (const auto& [hash, old_id] : old_fd.entries) {
      if ((scanned++ & 4095) == 0 && context != nullptr &&
          context->ShouldStop()) {
        return context->status();
      }
      TupleId new_id = remap.old_to_new[old_id];
      if (new_id >= 0) survivors.emplace_back(hash, new_id);
    }

    // Inserted entries for this FD's relation, sorted then merged.
    std::vector<std::pair<uint64_t, TupleId>> added;
    for (size_t i = 0; i < delta.inserts().size(); ++i) {
      const DatabaseDelta::PendingInsert& insert = delta.inserts()[i];
      if (insert.relation != old_fd.relation) continue;
      added.emplace_back(FdProjectionHash(insert.tuple, fds[f].lhs()),
                         remap.inserted_ids[i]);
    }
    std::sort(added.begin(), added.end());
    new_fd.entries.resize(survivors.size() + added.size());
    std::merge(survivors.begin(), survivors.end(), added.begin(), added.end(),
               new_fd.entries.begin());
  }

  // Fresh edges: probe every inserted tuple against the derived index. An
  // insert-insert conflict is found from both endpoints and a tuple finds
  // itself in its own bucket — dedup and self-skip below.
  std::vector<TupleId> partners;
  for (size_t i = 0; i < delta.inserts().size(); ++i) {
    if (context != nullptr && context->ShouldStop()) return context->status();
    const DatabaseDelta::PendingInsert& insert = delta.inserts()[i];
    const TupleId self = remap.inserted_ids[i];
    for (size_t f = 0; f < fds.size(); ++f) {
      if (out.per_fd_[f].relation != insert.relation) continue;
      partners.clear();
      out.ProbeConflicts(new_db, fds, static_cast<int>(f), insert.tuple,
                         &partners);
      for (TupleId partner : partners) {
        if (partner == self) continue;
        new_edges->emplace_back(std::min(self, partner),
                                std::max(self, partner));
      }
    }
  }
  std::sort(new_edges->begin(), new_edges->end());
  new_edges->erase(std::unique(new_edges->begin(), new_edges->end()),
                   new_edges->end());
  return out;
}

size_t FdConflictIndex::entry_count() const {
  size_t count = 0;
  for (const PerFd& per_fd : per_fd_) count += per_fd.entries.size();
  return count;
}

}  // namespace prefrep
