// Functional dependencies (the paper's §2.1 class of integrity constraints).
//
// An FD "X -> Y" over relation R states that any two tuples agreeing on all
// attributes of X also agree on all attributes of Y. Two tuples are
// *conflicting* w.r.t. X -> Y when they agree on X and differ on some
// attribute of Y.

#ifndef PREFREP_CONSTRAINTS_FD_H_
#define PREFREP_CONSTRAINTS_FD_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "relational/schema.h"
#include "relational/tuple.h"

namespace prefrep {

class FunctionalDependency {
 public:
  FunctionalDependency() = default;

  // Attribute positions are indices into the relation's schema.
  // Validates: non-empty sides, indices in range, no duplicates within a side.
  static Result<FunctionalDependency> Create(const Schema& schema,
                                             std::vector<int> lhs,
                                             std::vector<int> rhs);

  // By attribute names, e.g. ({"Dept"}, {"Name", "Salary", "Reports"}).
  static Result<FunctionalDependency> CreateByName(
      const Schema& schema, const std::vector<std::string>& lhs,
      const std::vector<std::string>& rhs);

  // Parses "Dept -> Name Salary Reports" (attributes may also be separated
  // by commas).
  static Result<FunctionalDependency> Parse(const Schema& schema,
                                            std::string_view text);

  const std::string& relation_name() const { return relation_name_; }
  const std::vector<int>& lhs() const { return lhs_; }
  const std::vector<int>& rhs() const { return rhs_; }

  // True iff t1, t2 agree on every LHS attribute.
  bool AgreeOnLhs(const Tuple& t1, const Tuple& t2) const;
  // True iff t1, t2 are conflicting w.r.t. this FD: they agree on the LHS
  // and differ on some RHS attribute.
  bool Conflicts(const Tuple& t1, const Tuple& t2) const;
  // True iff the pair does not violate the FD.
  bool SatisfiedBy(const Tuple& t1, const Tuple& t2) const {
    return !Conflicts(t1, t2);
  }

  // True iff this FD is a key dependency for `schema`: LHS -> all other
  // attributes (used for the paper's Prop. 3 "one key dependency" case).
  bool IsKeyDependencyFor(const Schema& schema) const;

  // E.g. "Dept -> Name Salary Reports".
  std::string ToString(const Schema& schema) const;

  friend bool operator==(const FunctionalDependency& a,
                         const FunctionalDependency& b) {
    return a.relation_name_ == b.relation_name_ && a.lhs_ == b.lhs_ &&
           a.rhs_ == b.rhs_;
  }

 private:
  std::string relation_name_;
  std::vector<int> lhs_;
  std::vector<int> rhs_;
};

}  // namespace prefrep

#endif  // PREFREP_CONSTRAINTS_FD_H_
