// Conflict detection: computes the edges of the conflict graph (§2.1).
//
// For each FD X -> Y over relation R, tuples are hash-partitioned on their
// X-projection; only tuples within the same partition can conflict, which
// avoids the naive O(n^2) all-pairs scan when partitions are small (the
// naive detector is kept for the ABL-3 ablation benchmark).

#ifndef PREFREP_CONSTRAINTS_CONFLICTS_H_
#define PREFREP_CONSTRAINTS_CONFLICTS_H_

#include <utility>
#include <vector>

#include "base/status.h"
#include "constraints/fd.h"
#include "relational/database.h"

namespace prefrep {

// An unordered pair of conflicting global tuple ids; first < second.
using ConflictEdge = std::pair<TupleId, TupleId>;

// Hash of the projection of `t` onto attribute positions `attrs` — the
// partition key of the hash-based detector, shared with the incremental
// FD-LHS index (conflict_index.h) so both partition identically.
size_t FdProjectionHash(const Tuple& t, const std::vector<int>& attrs);

// Finds all conflicting pairs in `db` w.r.t. `fds` (hash-partitioned).
// Each FD must reference a relation present in `db`. The result is
// deduplicated (a pair conflicting under several FDs appears once) and
// sorted.
Result<std::vector<ConflictEdge>> FindConflicts(
    const Database& db, const std::vector<FunctionalDependency>& fds);

// Reference implementation: all-pairs scan. Same contract as FindConflicts.
Result<std::vector<ConflictEdge>> FindConflictsNaive(
    const Database& db, const std::vector<FunctionalDependency>& fds);

// True iff `db` contains no conflicting pair w.r.t. `fds`.
Result<bool> IsConsistent(const Database& db,
                          const std::vector<FunctionalDependency>& fds);

}  // namespace prefrep

#endif  // PREFREP_CONSTRAINTS_CONFLICTS_H_
