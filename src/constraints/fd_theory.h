// Classical FD theory: attribute closure, implication, keys, BCNF,
// minimal cover.
//
// The paper's future work (§6) suggests studying the complexity results
// under the assumption that the FD set conforms to BCNF (following [2]);
// this module provides the machinery to state and test that condition, and
// general FD tooling a downstream user of the library expects.

#ifndef PREFREP_CONSTRAINTS_FD_THEORY_H_
#define PREFREP_CONSTRAINTS_FD_THEORY_H_

#include <vector>

#include "base/bitset.h"
#include "base/status.h"
#include "constraints/fd.h"
#include "relational/schema.h"

namespace prefrep {

// Attribute sets are bitsets over [0, schema.arity()).
using AttributeSet = DynamicBitset;

// X+ : the closure of `attrs` under `fds` (all FDs must be over `schema`).
[[nodiscard]] AttributeSet AttributeClosure(
    const Schema& schema, const std::vector<FunctionalDependency>& fds,
    const AttributeSet& attrs);

// True iff `fds` logically implies `fd` (via closure).
[[nodiscard]] bool Implies(const Schema& schema,
                           const std::vector<FunctionalDependency>& fds,
                           const FunctionalDependency& fd);

// True iff `attrs` functionally determines every attribute (a superkey).
[[nodiscard]] bool IsSuperkey(const Schema& schema,
                              const std::vector<FunctionalDependency>& fds,
                              const AttributeSet& attrs);

// All minimal keys (candidate keys), ordered by bitset order.
// Exponential in arity; intended for the small schemas of this domain.
[[nodiscard]] std::vector<AttributeSet> CandidateKeys(
    const Schema& schema, const std::vector<FunctionalDependency>& fds);

// True iff every non-trivial FD implied by `fds` has a superkey LHS.
// It suffices to check the given FDs (standard BCNF characterization).
[[nodiscard]] bool IsBcnf(const Schema& schema,
                          const std::vector<FunctionalDependency>& fds);

// A minimal cover: singleton RHS, no redundant LHS attributes, no redundant
// FDs. Deterministic for a given input order.
[[nodiscard]] std::vector<FunctionalDependency> MinimalCover(
    const Schema& schema, const std::vector<FunctionalDependency>& fds);

// True iff `fds` contains (syntactically, up to attribute-set equality)
// exactly one FD and it is a key dependency — the paper's Prop. 3 setting.
[[nodiscard]] bool IsSingleKeyDependency(
    const Schema& schema, const std::vector<FunctionalDependency>& fds);

}  // namespace prefrep

#endif  // PREFREP_CONSTRAINTS_FD_THEORY_H_
