#include "constraints/fd.h"

#include <algorithm>

#include "base/strings.h"

namespace prefrep {

namespace {

Status ValidateSide(const Schema& schema, const std::vector<int>& side,
                    const char* which) {
  if (side.empty()) {
    return Status::InvalidArgument(std::string("empty ") + which +
                                   " in functional dependency");
  }
  for (size_t i = 0; i < side.size(); ++i) {
    if (side[i] < 0 || side[i] >= schema.arity()) {
      return Status::OutOfRange("attribute index " + std::to_string(side[i]) +
                                " out of range for " + schema.ToString());
    }
    for (size_t j = 0; j < i; ++j) {
      if (side[i] == side[j]) {
        return Status::InvalidArgument(
            std::string("duplicate attribute in FD ") + which);
      }
    }
  }
  return Status::Ok();
}

}  // namespace

Result<FunctionalDependency> FunctionalDependency::Create(
    const Schema& schema, std::vector<int> lhs, std::vector<int> rhs) {
  PREFREP_RETURN_IF_ERROR(ValidateSide(schema, lhs, "LHS"));
  PREFREP_RETURN_IF_ERROR(ValidateSide(schema, rhs, "RHS"));
  FunctionalDependency fd;
  fd.relation_name_ = schema.relation_name();
  fd.lhs_ = std::move(lhs);
  fd.rhs_ = std::move(rhs);
  std::sort(fd.lhs_.begin(), fd.lhs_.end());
  std::sort(fd.rhs_.begin(), fd.rhs_.end());
  return fd;
}

Result<FunctionalDependency> FunctionalDependency::CreateByName(
    const Schema& schema, const std::vector<std::string>& lhs,
    const std::vector<std::string>& rhs) {
  std::vector<int> lhs_idx, rhs_idx;
  for (const std::string& name : lhs) {
    PREFREP_ASSIGN_OR_RETURN(int idx, schema.AttributeIndex(name));
    lhs_idx.push_back(idx);
  }
  for (const std::string& name : rhs) {
    PREFREP_ASSIGN_OR_RETURN(int idx, schema.AttributeIndex(name));
    rhs_idx.push_back(idx);
  }
  return Create(schema, std::move(lhs_idx), std::move(rhs_idx));
}

Result<FunctionalDependency> FunctionalDependency::Parse(
    const Schema& schema, std::string_view text) {
  size_t arrow = text.find("->");
  if (arrow == std::string_view::npos) {
    return Status::ParseError("missing '->' in FD: '" + std::string(text) +
                              "'");
  }
  auto parse_side =
      [&](std::string_view side) -> Result<std::vector<std::string>> {
    std::vector<std::string> names;
    std::string normalized(side);
    std::replace(normalized.begin(), normalized.end(), ',', ' ');
    for (const std::string& part : StrSplit(normalized, ' ')) {
      std::string_view name = StripWhitespace(part);
      if (name.empty()) continue;
      if (!IsIdentifier(name)) {
        return Status::ParseError("bad attribute name '" + std::string(name) +
                                  "' in FD");
      }
      names.emplace_back(name);
    }
    return names;
  };
  PREFREP_ASSIGN_OR_RETURN(std::vector<std::string> lhs,
                           parse_side(text.substr(0, arrow)));
  PREFREP_ASSIGN_OR_RETURN(std::vector<std::string> rhs,
                           parse_side(text.substr(arrow + 2)));
  return CreateByName(schema, lhs, rhs);
}

bool FunctionalDependency::AgreeOnLhs(const Tuple& t1, const Tuple& t2) const {
  for (int a : lhs_) {
    if (t1.value(a) != t2.value(a)) return false;
  }
  return true;
}

bool FunctionalDependency::Conflicts(const Tuple& t1, const Tuple& t2) const {
  if (!AgreeOnLhs(t1, t2)) return false;
  for (int b : rhs_) {
    if (t1.value(b) != t2.value(b)) return true;
  }
  return false;
}

bool FunctionalDependency::IsKeyDependencyFor(const Schema& schema) const {
  // LHS -> every attribute outside the LHS.
  std::vector<bool> covered(schema.arity(), false);
  for (int a : lhs_) covered[a] = true;
  for (int b : rhs_) covered[b] = true;
  return std::all_of(covered.begin(), covered.end(),
                     [](bool c) { return c; });
}

std::string FunctionalDependency::ToString(const Schema& schema) const {
  std::string out;
  for (size_t i = 0; i < lhs_.size(); ++i) {
    if (i > 0) out += " ";
    out += schema.attribute(lhs_[i]).name;
  }
  out += " -> ";
  for (size_t i = 0; i < rhs_.size(); ++i) {
    if (i > 0) out += " ";
    out += schema.attribute(rhs_[i]).name;
  }
  return out;
}

}  // namespace prefrep
