// Checkers for the paper's axioms P1-P4 (§1) on concrete instances.
//
// The paper proves which family satisfies which axiom (Props. 2, 3, 4, 6);
// these helpers *verify the claims empirically* on any instance+priority,
// and power the randomized property sweeps in tests/ and the ablation
// benchmarks. They materialize repair families, so they are meant for
// moderate instance sizes.

#ifndef PREFREP_CORE_PROPERTIES_H_
#define PREFREP_CORE_PROPERTIES_H_

#include "base/status.h"
#include "core/families.h"
#include "graph/conflict_graph.h"
#include "priority/priority.h"

namespace prefrep {

// P1 (non-emptiness): X-Rep(priority) != {}.
Result<bool> SatisfiesNonEmptiness(const ConflictGraph& graph,
                                   const Priority& priority,
                                   RepairFamily family);

// P2 (monotonicity) for a concrete extension pair: `stronger` must extend
// `weaker`; checks X-Rep(stronger) ⊆ X-Rep(weaker).
Result<bool> SatisfiesMonotonicityFor(const ConflictGraph& graph,
                                      const Priority& weaker,
                                      const Priority& stronger,
                                      RepairFamily family);

// P3 (non-discrimination): X-Rep(empty priority) == Rep.
Result<bool> SatisfiesNonDiscrimination(const ConflictGraph& graph,
                                        RepairFamily family);

// P4 (categoricity) for a concrete total priority: |X-Rep(total)| == 1.
// `total` must be total for `graph` (kFailedPrecondition otherwise).
Result<bool> SatisfiesCategoricityFor(const ConflictGraph& graph,
                                      const Priority& total,
                                      RepairFamily family);

// Containment helper: X-Rep(priority) ⊆ Y-Rep(priority). Used to verify
// the paper's chain C ⊆ G ⊆ S ⊆ L ⊆ Rep (Props. 3, 4, 6).
Result<bool> FamilyContainedIn(const ConflictGraph& graph,
                               const Priority& priority, RepairFamily inner,
                               RepairFamily outer);

}  // namespace prefrep

#endif  // PREFREP_CORE_PROPERTIES_H_
