#include "core/extensions.h"

#include <set>

#include "core/algorithm1.h"
#include "graph/digraph.h"

namespace prefrep {

namespace {

class ExtensionEnumerator {
 public:
  ExtensionEnumerator(const ConflictGraph& graph, const Priority& priority,
                      const std::function<bool(const Priority&)>& callback)
      : graph_(graph), callback_(callback) {
    arcs_ = priority.arcs();
    for (auto [u, v] : graph.edges()) {
      if (!priority.Dominates(u, v) && !priority.Dominates(v, u)) {
        free_edges_.emplace_back(u, v);
      }
    }
  }

  bool Run() { return Visit(0); }

 private:
  bool Visit(size_t index) {
    if (index == free_edges_.size()) {
      auto total = Priority::Create(graph_, arcs_);
      CHECK(total.ok()) << total.status().ToString();
      return callback_(*total);
    }
    auto [u, v] = free_edges_[index];
    for (auto arc : {std::make_pair(u, v), std::make_pair(v, u)}) {
      arcs_.push_back(arc);
      // Prune orientations that already created a cycle.
      if (IsAcyclicDigraph(graph_.vertex_count(), arcs_)) {
        if (!Visit(index + 1)) return false;
      }
      arcs_.pop_back();
    }
    return true;
  }

  const ConflictGraph& graph_;
  const std::function<bool(const Priority&)>& callback_;
  std::vector<std::pair<int, int>> arcs_;
  std::vector<std::pair<int, int>> free_edges_;
};

}  // namespace

bool EnumerateTotalExtensions(
    const ConflictGraph& graph, const Priority& priority,
    const std::function<bool(const Priority&)>& callback) {
  ExtensionEnumerator enumerator(graph, priority, callback);
  return enumerator.Run();
}

Result<std::vector<DynamicBitset>> ExtensionFamilyRepairs(
    const ConflictGraph& graph, const Priority& priority, size_t limit) {
  std::set<DynamicBitset> repairs;
  bool complete = EnumerateTotalExtensions(
      graph, priority, [&](const Priority& total) {
        if (repairs.size() > limit) return false;
        repairs.insert(CleanDatabaseTotal(graph, total));
        return true;
      });
  if (!complete || repairs.size() > limit) {
    return Status::ResourceExhausted("extension family exceeds limit");
  }
  return std::vector<DynamicBitset>(repairs.begin(), repairs.end());
}

}  // namespace prefrep
