#include "core/families.h"

#include <algorithm>
#include <unordered_set>

#include "core/optimality.h"
#include "graph/mis.h"

namespace prefrep {

namespace {

// DFS over Algorithm 1 choice sequences. States are identified by the set
// of chosen tuples (the chosen set determines the remaining set), so each
// distinct partial output is expanded once.
class CommonRepairEnumerator {
 public:
  CommonRepairEnumerator(const ConflictGraph& graph, const Priority& priority,
                         const std::function<bool(const DynamicBitset&)>& cb)
      : graph_(graph), priority_(priority), callback_(cb) {}

  bool Run() {
    int n = graph_.vertex_count();
    return Visit(DynamicBitset(n), DynamicBitset::AllSet(n));
  }

 private:
  bool Visit(const DynamicBitset& chosen, const DynamicBitset& remaining) {
    if (!visited_.insert(chosen).second) return true;
    DynamicBitset winnow = Winnow(priority_, remaining);
    if (winnow.None()) {
      // ≻ is acyclic, so an empty winnow implies an empty remaining set;
      // `chosen` is a completed run of Algorithm 1.
      return callback_(chosen);
    }
    for (int x = winnow.FirstSetBit(); x >= 0; x = winnow.NextSetBit(x + 1)) {
      DynamicBitset next_chosen = chosen;
      next_chosen.Set(x);
      if (!Visit(next_chosen, Difference(remaining, graph_.Vicinity(x)))) {
        return false;
      }
    }
    return true;
  }

  const ConflictGraph& graph_;
  const Priority& priority_;
  const std::function<bool(const DynamicBitset&)>& callback_;
  std::unordered_set<DynamicBitset, DynamicBitset::Hash> visited_;
};

}  // namespace

std::string_view RepairFamilyName(RepairFamily family) {
  switch (family) {
    case RepairFamily::kAll:
      return "Rep";
    case RepairFamily::kLocal:
      return "L-Rep";
    case RepairFamily::kSemiGlobal:
      return "S-Rep";
    case RepairFamily::kGlobal:
      return "G-Rep";
    case RepairFamily::kCommon:
      return "C-Rep";
  }
  return "?";
}

bool IsPreferredRepair(const ConflictGraph& graph, const Priority& priority,
                       RepairFamily family, const DynamicBitset& repair) {
  switch (family) {
    case RepairFamily::kAll:
      return graph.IsMaximalIndependent(repair);
    case RepairFamily::kLocal:
      return IsLocallyOptimal(graph, priority, repair);
    case RepairFamily::kSemiGlobal:
      return IsSemiGloballyOptimal(graph, priority, repair);
    case RepairFamily::kGlobal:
      return IsGloballyOptimal(graph, priority, repair);
    case RepairFamily::kCommon:
      return IsCommonRepair(graph, priority, repair);
  }
  return false;
}

bool EnumeratePreferredRepairs(
    const ConflictGraph& graph, const Priority& priority, RepairFamily family,
    const std::function<bool(const DynamicBitset&)>& callback) {
  switch (family) {
    case RepairFamily::kAll:
      return EnumerateMaximalIndependentSets(graph, callback);
    case RepairFamily::kLocal:
      return EnumerateMaximalIndependentSets(
          graph, [&](const DynamicBitset& repair) {
            if (!IsLocallyOptimal(graph, priority, repair)) return true;
            return callback(repair);
          });
    case RepairFamily::kSemiGlobal:
      return EnumerateMaximalIndependentSets(
          graph, [&](const DynamicBitset& repair) {
            if (!IsSemiGloballyOptimal(graph, priority, repair)) return true;
            return callback(repair);
          });
    case RepairFamily::kGlobal: {
      // The ≪-maximality certificate compares a repair only against other
      // repairs, and the repair list is invariant across candidates:
      // materialize it once and certify against the list, instead of
      // re-running the MIS enumeration machinery inside every certificate
      // (which made G-Rep enumeration pay the repair space twice over).
      // The cap is byte-based so wide bitsets cannot OOM the process;
      // beyond it we fall back to the seed's O(1)-memory nested form
      // (paying one extra enumeration to discover the overflow — noise
      // against the quadratic certificate cost that follows).
      constexpr size_t kMaterializeBytes = size_t{256} << 20;
      const size_t bitset_bytes =
          DynamicBitset(graph.vertex_count()).MemoryBytes();
      const size_t materialize_limit =
          std::min(size_t{1} << 20, kMaterializeBytes / bitset_bytes);
      std::vector<DynamicBitset> repairs;
      bool materialized = EnumerateMaximalIndependentSets(
          graph, [&](const DynamicBitset& repair) {
            if (repairs.size() >= materialize_limit) return false;
            repairs.push_back(repair);
            return true;
          });
      if (!materialized) {
        // Release the partial list before the memory-free fallback —
        // this is the moment memory pressure is highest.
        repairs.clear();
        repairs.shrink_to_fit();
        return EnumerateMaximalIndependentSets(
            graph, [&](const DynamicBitset& repair) {
              if (!IsGloballyOptimal(graph, priority, repair)) return true;
              return callback(repair);
            });
      }
      for (const DynamicBitset& repair : repairs) {
        if (!IsGloballyOptimalAmong(priority, repair, repairs)) continue;
        if (!callback(repair)) return false;
      }
      return true;
    }
    case RepairFamily::kCommon: {
      CommonRepairEnumerator enumerator(graph, priority, callback);
      return enumerator.Run();
    }
  }
  return true;
}

Result<std::vector<DynamicBitset>> PreferredRepairs(
    const ConflictGraph& graph, const Priority& priority, RepairFamily family,
    size_t limit) {
  std::vector<DynamicBitset> repairs;
  bool complete = EnumeratePreferredRepairs(
      graph, priority, family, [&repairs, limit](const DynamicBitset& r) {
        if (repairs.size() >= limit) return false;
        repairs.push_back(r);
        return true;
      });
  if (!complete) {
    return Status::ResourceExhausted("more than " + std::to_string(limit) +
                                     " preferred repairs in family " +
                                     std::string(RepairFamilyName(family)));
  }
  return repairs;
}

}  // namespace prefrep
