#include "core/families.h"

#include <algorithm>
#include <memory>
#include <new>
#include <optional>
#include <unordered_set>
#include <utility>

#include "base/failpoint.h"
#include "core/optimality.h"
#include "graph/components.h"
#include "graph/mis.h"

namespace prefrep {

namespace {

// DFS over Algorithm 1 choice sequences on one (component-compact) graph.
// States are identified by the set of chosen tuples (the chosen set
// determines the remaining set), so each distinct partial output is
// expanded once. The walk is an explicit stack over pooled frames — the
// only per-node heap traffic is the memo insertion of a *new* state:
// revisit probes use transparent lookup against the shared chosen-set
// scratch, whose hash is maintained incrementally word-by-word.
class CommonRepairEnumerator {
 public:
  // `context`, when set, is polled at every choice-tree node; an interrupt
  // stops the walk (Run returns false).
  CommonRepairEnumerator(const ConflictGraph& graph, const Priority& priority,
                         ExecutionContext* context = nullptr)
      : graph_(graph),
        priority_(priority),
        context_(context),
        vertex_count_(graph.vertex_count()),
        chosen_(vertex_count_) {
    vicinity_.reserve(vertex_count_);
    for (int v = 0; v < vertex_count_; ++v) {
      vicinity_.push_back(graph.Vicinity(v));
    }
  }

  // Visits every distinct completed Algorithm 1 output exactly once; the
  // callback returns false to stop early. Returns true iff the walk ran to
  // completion. The bitset passed to the callback is scratch — copy to keep.
  template <typename Callback>
  bool Run(Callback&& callback) {
    chosen_.Clear();
    chosen_hash_ = 0;
    visited_.clear();
    visited_.insert(MemoKey{chosen_, chosen_hash_});
    Frame& root = FrameAt(0);
    root.remaining = DynamicBitset::AllSet(vertex_count_);
    root.entering = true;
    int depth = 0;
    while (depth >= 0) {
      if (context_ != nullptr && context_->ShouldStop()) return false;
      Frame& frame = *frames_[depth];
      if (frame.entering) {
        frame.entering = false;
        WinnowInto(priority_, frame.remaining, frame.winnow);
        if (frame.winnow.None()) {
          // ≻ is acyclic, so an empty winnow implies an empty remaining
          // set; `chosen` is a completed run of Algorithm 1.
          if (!callback(static_cast<const DynamicBitset&>(chosen_))) {
            return false;
          }
          --depth;
          continue;
        }
        frame.x = -1;
      }
      if (frame.x >= 0) FlipChosen(frame.x);  // retire the previous pick
      int x = frame.winnow.NextSetBit(frame.x + 1);
      if (x < 0) {
        --depth;
        continue;
      }
      frame.x = x;
      FlipChosen(x);
      // Probe the memo before descending: a state reached through a
      // different choice order is expanded only once.
      if (visited_.find(ChosenView{&chosen_, chosen_hash_}) !=
          visited_.end()) {
        continue;
      }
      visited_.insert(MemoKey{chosen_, chosen_hash_});
      Frame& child = FrameAt(depth + 1);
      child.remaining.AssignDifference(frame.remaining, vicinity_[x]);
      child.entering = true;
      ++depth;
    }
    return true;
  }

 private:
  struct Frame {
    DynamicBitset remaining;
    DynamicBitset winnow;
    int x = -1;
    bool entering = true;
  };

  struct MemoKey {
    DynamicBitset bits;
    uint64_t hash;
  };
  struct ChosenView {
    const DynamicBitset* bits;
    uint64_t hash;
  };
  struct MemoHash {
    using is_transparent = void;
    size_t operator()(const MemoKey& k) const {
      return static_cast<size_t>(k.hash);
    }
    size_t operator()(const ChosenView& v) const {
      return static_cast<size_t>(v.hash);
    }
  };
  struct MemoEq {
    using is_transparent = void;
    bool operator()(const MemoKey& a, const MemoKey& b) const {
      return a.bits == b.bits;
    }
    bool operator()(const ChosenView& v, const MemoKey& k) const {
      return *v.bits == k.bits;
    }
    bool operator()(const MemoKey& k, const ChosenView& v) const {
      return k.bits == *v.bits;
    }
  };

  // Toggles `x` in the chosen scratch, updating its hash from the one
  // changed word instead of rehashing the whole set.
  void FlipChosen(int x) {
    int word = x >> 6;
    uint64_t before = chosen_.Word(word);
    chosen_.Assign(x, !chosen_.Test(x));
    chosen_hash_ ^= DynamicBitset::WordHashMix(word, before) ^
                    DynamicBitset::WordHashMix(word, chosen_.Word(word));
  }

  Frame& FrameAt(int depth) {
    while (static_cast<int>(frames_.size()) <= depth) {
      auto frame = std::make_unique<Frame>();
      frame->remaining = DynamicBitset(vertex_count_);
      frame->winnow = DynamicBitset(vertex_count_);
      frames_.push_back(std::move(frame));
    }
    return *frames_[depth];
  }

  const ConflictGraph& graph_;
  const Priority& priority_;
  ExecutionContext* context_;
  int vertex_count_;
  DynamicBitset chosen_;
  uint64_t chosen_hash_ = 0;
  std::vector<DynamicBitset> vicinity_;
  std::vector<std::unique_ptr<Frame>> frames_;
  std::unordered_set<MemoKey, MemoHash, MemoEq> visited_;
};

// Streams the members of `family` on one component graph through `emit`
// (local universe). kGlobal is excluded — it cannot stream (the
// ≪-certificate needs the full component repair list); see
// MaterializeComponentFamily / the single-component path below.
template <typename Callback>
bool StreamComponentFamily(const ConflictGraph& graph,
                           const Priority& priority, RepairFamily family,
                           Callback&& emit,
                           ExecutionContext* context = nullptr) {
  switch (family) {
    case RepairFamily::kAll:
      return MisEngine(graph, context).Enumerate(emit);
    case RepairFamily::kLocal:
      return MisEngine(graph, context)
          .Enumerate([&](const DynamicBitset& repair) {
            if (!IsLocallyOptimal(graph, priority, repair)) return true;
            return emit(repair);
          });
    case RepairFamily::kSemiGlobal:
      return MisEngine(graph, context)
          .Enumerate([&](const DynamicBitset& repair) {
            if (!IsSemiGloballyOptimal(graph, priority, repair)) return true;
            return emit(repair);
          });
    case RepairFamily::kCommon:
      return CommonRepairEnumerator(graph, priority, context).Run(emit);
    case RepairFamily::kGlobal:
      break;
  }
  CHECK(false) << "kGlobal cannot stream";
  return false;
}

// Erases the repairs that are not ≪-maximal among `repairs` (which must be
// the component's *complete* repair list). Certification is quadratic in
// the component list — exponentially smaller than the whole-graph list the
// pre-decomposition engine certified against. `context` is polled once per
// certified repair; on interrupt the filter stops and returns false
// (repairs is then partially filtered and meaningless).
bool FilterGloballyOptimalInPlace(const Priority& priority,
                                  std::vector<DynamicBitset>* repairs,
                                  ExecutionContext* context = nullptr) {
  if (repairs->empty()) return true;
  int n = (*repairs)[0].size();
  DynamicBitset scratch1(n);
  DynamicBitset scratch2(n);
  auto dominated = [&](const DynamicBitset& repair) {
    for (const DynamicBitset& other : *repairs) {
      if (&other == &repair) continue;
      if (IsPreferredOver(priority, repair, other, scratch1, scratch2)) {
        return true;
      }
    }
    return false;
  };
  // Certify every repair against the full list before erasing any of it,
  // then compact in place — the list may sit near the materialization
  // budget, so no second list is allocated.
  std::vector<char> keep(repairs->size());
  for (size_t i = 0; i < repairs->size(); ++i) {
    if (context != nullptr && context->ShouldStop()) return false;
    keep[i] = !dominated((*repairs)[i]);
  }
  size_t write = 0;
  for (size_t i = 0; i < repairs->size(); ++i) {
    if (keep[i]) {
      if (write != i) (*repairs)[write] = std::move((*repairs)[i]);
      ++write;
    }
  }
  repairs->resize(write);
  return true;
}

// Materializes the members of `family` on one component graph into `out`,
// charging the shared arbiter. Returns false if the budget would be
// exceeded or the context was interrupted (out is then meaningless). Safe
// to run concurrently for distinct components: every engine it constructs
// is local to the call.
bool MaterializeComponentFamily(const ConflictGraph& graph,
                                const Priority& priority, RepairFamily family,
                                std::vector<DynamicBitset>* out,
                                ResourceArbiter* arbiter,
                                ExecutionContext* context = nullptr) {
  PREFREP_FAILPOINT("families.materialize");
  const size_t per_set_bytes =
      DynamicBitset(graph.vertex_count()).MemoryBytes();
  auto collect = [&](const DynamicBitset& repair) {
    if (!arbiter->TryCharge(per_set_bytes)) return false;
    out->push_back(repair);
    return true;
  };
  if (family == RepairFamily::kGlobal) {
    // Collect the complete component repair list first; the ≪-maximality
    // certificate compares a repair only against other repairs of the same
    // component (priorities never cross components).
    if (!MisEngine(graph, context).Enumerate(collect)) return false;
    size_t before = out->size();
    if (!FilterGloballyOptimalInPlace(priority, out, context)) return false;
    arbiter->Refund((before - out->size()) * per_set_bytes);
    return true;
  }
  return StreamComponentFamily(graph, priority, family, collect, context);
}

// Streams `family` on one graph — the whole (connected) conflict graph or
// one component's compact subgraph — through `emit`. kGlobal materializes
// the graph's repair list first (the ≪-certificate needs it), falling back
// to the seed's O(1)-memory nested certificate if the list is over budget.
template <typename Emit>
bool EnumerateFamilyOnGraph(const ConflictGraph& graph,
                            const Priority& priority, RepairFamily family,
                            Emit&& emit, ExecutionContext* context = nullptr) {
  if (family != RepairFamily::kGlobal) {
    return StreamComponentFamily(graph, priority, family, emit, context);
  }
  std::vector<DynamicBitset> repairs;
  ResourceArbiter arbiter(
      context != nullptr ? context->limits().component_list_budget_bytes
                         : kComponentListBudgetBytes,
      context != nullptr ? &context->stats() : nullptr);
  if (MaterializeComponentFamily(graph, priority, family, &repairs, &arbiter,
                                 context)) {
    for (const DynamicBitset& repair : repairs) {
      if (context != nullptr && context->ShouldStop()) return false;
      if (!emit(repair)) return false;
    }
    return true;
  }
  if (context != nullptr && context->interrupted()) return false;
  // Release the partial list before the memory-free fallback — this is
  // the moment memory pressure is highest.
  repairs.clear();
  repairs.shrink_to_fit();
  return MisEngine(graph, context).Enumerate([&](const DynamicBitset& repair) {
    if (!IsGloballyOptimal(graph, priority, repair)) return true;
    return emit(repair);
  });
}

// Whole-graph streaming fallback (the seed's forms) for the pathological
// case where even per-component lists exceed the byte budget.
bool EnumerateWholeGraphFallback(
    const ConflictGraph& graph, const Priority& priority, RepairFamily family,
    const std::function<bool(const DynamicBitset&)>& callback,
    ExecutionContext* context = nullptr) {
  PREFREP_FAILPOINT("families.streaming_fallback");
  switch (family) {
    case RepairFamily::kAll:
    case RepairFamily::kLocal:
    case RepairFamily::kSemiGlobal:
    case RepairFamily::kCommon:
      return StreamComponentFamily(graph, priority, family, callback, context);
    case RepairFamily::kGlobal: {
      // Nested streaming ≪-witness search with both levels on MisEngine
      // directly: going through IsGloballyOptimal here would re-attempt
      // the (already failed) per-component materialization inside every
      // certificate. The outer engine's chosen-set scratch stays stable
      // while the inner engine runs, so `repair` needs no copy.
      int n = graph.vertex_count();
      DynamicBitset scratch1(n);
      DynamicBitset scratch2(n);
      MisEngine outer(graph, context);
      MisEngine inner(graph, context);
      return outer.Enumerate([&](const DynamicBitset& repair) {
        bool dominated = false;
        inner.Enumerate([&](const DynamicBitset& other) {
          if (other == repair) return true;
          if (IsPreferredOver(priority, repair, other, scratch1, scratch2)) {
            dominated = true;
            return false;
          }
          return true;
        });
        // An interrupted certificate proves nothing: stop before emitting
        // a repair the completed search might have rejected.
        if (context != nullptr && context->interrupted()) return false;
        if (dominated) return true;
        return callback(repair);
      });
    }
  }
  return true;
}

}  // namespace

std::string_view RepairFamilyName(RepairFamily family) {
  switch (family) {
    case RepairFamily::kAll:
      return "Rep";
    case RepairFamily::kLocal:
      return "L-Rep";
    case RepairFamily::kSemiGlobal:
      return "S-Rep";
    case RepairFamily::kGlobal:
      return "G-Rep";
    case RepairFamily::kCommon:
      return "C-Rep";
  }
  return "?";
}

RepairFamily EffectiveFamily(const Priority& priority, RepairFamily family) {
  return PriorityIsEmpty(priority) ? RepairFamily::kAll : family;
}

bool IsPreferredRepair(const ConflictGraph& graph, const Priority& priority,
                       RepairFamily family, const DynamicBitset& repair) {
  switch (family) {
    case RepairFamily::kAll:
      return graph.IsMaximalIndependent(repair);
    case RepairFamily::kLocal:
      return IsLocallyOptimal(graph, priority, repair);
    case RepairFamily::kSemiGlobal:
      return IsSemiGloballyOptimal(graph, priority, repair);
    case RepairFamily::kGlobal:
      return IsGloballyOptimal(graph, priority, repair);
    case RepairFamily::kCommon:
      return IsCommonRepair(graph, priority, repair);
  }
  return false;
}

// Every family notion decomposes over connected components: conflicts and
// priorities both live on conflict edges, so a set is a family member iff
// its restriction to each component is a family member of that component
// (for ≪-maximality: a witness differing in some component yields a
// component-local witness, and vice versa; for C-Rep: choice steps in
// distinct components commute, so Algorithm 1 runs factor per component).
// Each component is searched in its own compact universe — bitsets, memo
// keys and certificates all shrink to component size — and the product is
// streamed lazily so early-stop callbacks still short-circuit.
bool EnumeratePreferredRepairs(
    const ConflictGraph& graph, const Priority& priority, RepairFamily family,
    const std::function<bool(const DynamicBitset&)>& callback) {
  return EnumeratePreferredRepairs(graph, priority, family, ParallelOptions{},
                                   callback);
}

bool EnumeratePreferredRepairs(
    const ConflictGraph& graph, const Priority& priority, RepairFamily family,
    const ParallelOptions& options,
    const std::function<bool(const DynamicBitset&)>& callback) {
  ExecutionContext* context = options.context;
  if (family == RepairFamily::kAll) {
    return EnumerateMaximalIndependentSets(graph, options, callback);
  }
  if (SpansOneComponent(graph)) {
    // Connected graph: no decomposition, no priority projection, no
    // remapping — enumerate in place. There is only one component, so
    // options.threads has nothing to fan out over.
    return EnumerateFamilyOnGraph(graph, priority, family, callback, context);
  }
  ComponentDecomposition decomposition(graph);
  const std::vector<GraphComponent>& components = decomposition.components();
  if (components.empty()) {
    // Only isolated vertices: the unique repair belongs to every family.
    return callback(decomposition.isolated());
  }
  std::vector<Priority> local_priorities =
      ProjectPriorities(decomposition, priority);
  if (components.size() == 1) {
    // One non-singleton component plus isolated vertices: enumerate the
    // component locally and scatter into the full universe.
    const GraphComponent& component = decomposition.components()[0];
    DynamicBitset scratch = decomposition.isolated();
    return EnumerateFamilyOnGraph(
        component.graph, local_priorities[0], family,
        [&](const DynamicBitset& local) {
          decomposition.Scatter(0, local, scratch);
          return callback(scratch);
        },
        context);
  }
  std::optional<bool> complete = TryEnumerateViaComponentProduct(
      decomposition, options,
      [&](int c, std::vector<DynamicBitset>* out, ResourceArbiter* arbiter) {
        return MaterializeComponentFamily(components[c].graph,
                                          local_priorities[c], family, out,
                                          arbiter, context);
      },
      callback);
  if (complete.has_value()) return *complete;
  if (context != nullptr && context->interrupted()) return false;
  return EnumerateWholeGraphFallback(graph, priority, family, callback,
                                     context);
}

Result<std::vector<DynamicBitset>> PreferredRepairs(
    const ConflictGraph& graph, const Priority& priority, RepairFamily family,
    size_t limit) {
  return PreferredRepairs(graph, priority, family, ParallelOptions{}, limit);
}

Result<std::vector<DynamicBitset>> PreferredRepairs(
    const ConflictGraph& graph, const Priority& priority, RepairFamily family,
    const EvalOptions& options) {
  EvalContextScope scope(options);
  return PreferredRepairs(graph, priority, family, options.Parallel(scope.context()),
                          options.limits.max_repair_list);
}

Result<std::vector<DynamicBitset>> PreferredRepairs(
    const ConflictGraph& graph, const Priority& priority, RepairFamily family,
    const ParallelOptions& options, size_t limit) try {
  ExecutionContext* context = options.context;
  if (context != nullptr) {
    limit = std::min(limit, context->limits().max_repair_list);
  }
  std::vector<DynamicBitset> repairs;
  bool complete = EnumeratePreferredRepairs(
      graph, priority, family, options,
      [&repairs, limit, context](const DynamicBitset& r) {
        if (repairs.size() >= limit) return false;
        repairs.push_back(r);
        if (context != nullptr) context->stats().AddRepairsExamined();
        return true;
      });
  if (!complete) {
    if (context != nullptr && context->interrupted()) {
      return context->StatusWithStats();
    }
    return Status::ResourceExhausted("more than " + std::to_string(limit) +
                                     " preferred repairs in family " +
                                     std::string(RepairFamilyName(family)));
  }
  return repairs;
} catch (const std::bad_alloc&) {
  return Status::ResourceExhausted("allocation failed materializing family " +
                                   std::string(RepairFamilyName(family)));
}

std::optional<ComponentFamilyLists> MaterializeComponentFamilyLists(
    const ConflictGraph& graph, const Priority& priority, RepairFamily family,
    const ParallelOptions& options, ThreadPool* pool) {
  ComponentFamilyLists out{ComponentDecomposition(graph), {}, {}};
  const std::vector<GraphComponent>& components =
      out.decomposition.components();
  out.local_priorities = ProjectPriorities(out.decomposition, priority);
  ExecutionContext* context = options.context;
  Status materialized = MaterializeComponentLists(
      out.decomposition, options,
      [&](int c, std::vector<DynamicBitset>* list, ResourceArbiter* arbiter) {
        return MaterializeComponentFamily(components[c].graph,
                                          out.local_priorities[c], family,
                                          list, arbiter, context);
      },
      &out.choices, pool);
  // Both overflow and interrupt yield nullopt: the streaming/serial paths
  // the caller falls back to poll the context themselves, so an interrupt
  // still surfaces without re-running the materialization.
  if (!materialized.ok()) return std::nullopt;
  return out;
}

bool EnumeratePreferredRepairsStreaming(
    const ConflictGraph& graph, const Priority& priority, RepairFamily family,
    const std::function<bool(const DynamicBitset&)>& callback,
    ExecutionContext* context) {
  return EnumerateWholeGraphFallback(graph, priority, family, callback,
                                     context);
}

}  // namespace prefrep
