// Algorithm 1 ("Cleaning the database", §2.2): iterated winnow.
//
//   r' <- {}
//   while ω≻(r) != {}:
//     choose any x ∈ ω≻(r)
//     r' <- r' ∪ {x};  r <- r \ ({x} ∪ n(x))
//   return r'
//
// For a *total* priority the result is the unique "clean" database
// regardless of the choices (Prop. 1). For partial priorities different
// choice sequences may produce different repairs; the set of all outcomes
// is exactly C-Rep (Prop. 7).

#ifndef PREFREP_CORE_ALGORITHM1_H_
#define PREFREP_CORE_ALGORITHM1_H_

#include <vector>

#include "base/bitset.h"
#include "graph/conflict_graph.h"
#include "priority/priority.h"

namespace prefrep {

// Runs Algorithm 1 choosing, at each step, the winnow candidate appearing
// earliest in `choice_order` (a permutation of the vertices). The result is
// always a repair, and always a common repair (element of C-Rep).
[[nodiscard]] DynamicBitset CleanDatabase(
    const ConflictGraph& graph, const Priority& priority,
    const std::vector<int>& choice_order);

// CleanDatabase with the identity choice order (lowest tuple id first).
[[nodiscard]] DynamicBitset CleanDatabase(const ConflictGraph& graph,
                                          const Priority& priority);

// Fast path for total priorities: the winnow set is independent, so every
// round can consume it wholesale (Prop. 1 guarantees choice-independence).
// CHECK-fails if `priority` is not total for `graph`.
[[nodiscard]] DynamicBitset CleanDatabaseTotal(const ConflictGraph& graph,
                                               const Priority& priority);

}  // namespace prefrep

#endif  // PREFREP_CORE_ALGORITHM1_H_
