#include "core/properties.h"

#include <algorithm>

namespace prefrep {

namespace {

bool IsSubsetOfFamily(const std::vector<DynamicBitset>& inner,
                      const std::vector<DynamicBitset>& outer) {
  for (const DynamicBitset& r : inner) {
    if (std::find(outer.begin(), outer.end(), r) == outer.end()) return false;
  }
  return true;
}

}  // namespace

Result<bool> SatisfiesNonEmptiness(const ConflictGraph& graph,
                                   const Priority& priority,
                                   RepairFamily family) {
  bool found = false;
  EnumeratePreferredRepairs(graph, priority, family,
                            [&found](const DynamicBitset&) {
                              found = true;
                              return false;  // one witness suffices
                            });
  return found;
}

Result<bool> SatisfiesMonotonicityFor(const ConflictGraph& graph,
                                      const Priority& weaker,
                                      const Priority& stronger,
                                      RepairFamily family) {
  if (!weaker.IsExtendedBy(stronger)) {
    return Status::FailedPrecondition(
        "second priority does not extend the first");
  }
  PREFREP_ASSIGN_OR_RETURN(std::vector<DynamicBitset> narrow,
                           PreferredRepairs(graph, stronger, family));
  PREFREP_ASSIGN_OR_RETURN(std::vector<DynamicBitset> wide,
                           PreferredRepairs(graph, weaker, family));
  return IsSubsetOfFamily(narrow, wide);
}

Result<bool> SatisfiesNonDiscrimination(const ConflictGraph& graph,
                                        RepairFamily family) {
  Priority empty = Priority::Empty(graph);
  PREFREP_ASSIGN_OR_RETURN(std::vector<DynamicBitset> preferred,
                           PreferredRepairs(graph, empty, family));
  PREFREP_ASSIGN_OR_RETURN(
      std::vector<DynamicBitset> all,
      PreferredRepairs(graph, empty, RepairFamily::kAll));
  return preferred.size() == all.size() && IsSubsetOfFamily(preferred, all);
}

Result<bool> SatisfiesCategoricityFor(const ConflictGraph& graph,
                                      const Priority& total,
                                      RepairFamily family) {
  if (!total.IsTotalFor(graph)) {
    return Status::FailedPrecondition("priority is not total for the graph");
  }
  PREFREP_ASSIGN_OR_RETURN(std::vector<DynamicBitset> repairs,
                           PreferredRepairs(graph, total, family));
  return repairs.size() == 1;
}

Result<bool> FamilyContainedIn(const ConflictGraph& graph,
                               const Priority& priority, RepairFamily inner,
                               RepairFamily outer) {
  PREFREP_ASSIGN_OR_RETURN(std::vector<DynamicBitset> inner_repairs,
                           PreferredRepairs(graph, priority, inner));
  PREFREP_ASSIGN_OR_RETURN(std::vector<DynamicBitset> outer_repairs,
                           PreferredRepairs(graph, priority, outer));
  return IsSubsetOfFamily(inner_repairs, outer_repairs);
}

}  // namespace prefrep
