// Total-extension semantics: resolving a partial priority by considering
// every total extension.
//
// The paper's related work (§5) discusses Brewka-style preferred
// subtheories, which handle partial preference information by quantifying
// over all extensions to total orders, "constructed in a manner analogous
// to C-repairs". This module makes that connection executable: it
// enumerates the total priorities extending a given one and collects the
// unique clean database of each (Prop. 1). tests/extensions_test.cc
// validates empirically that this family coincides with C-Rep — i.e.
// Algorithm 1's choice nondeterminism is exactly deferred orientation of
// the remaining conflicts.

#ifndef PREFREP_CORE_EXTENSIONS_H_
#define PREFREP_CORE_EXTENSIONS_H_

#include <functional>
#include <vector>

#include "base/bitset.h"
#include "base/exec_context.h"
#include "base/status.h"
#include "graph/conflict_graph.h"
#include "priority/priority.h"

namespace prefrep {

// Visits every total priority extending `priority` (acyclic orientations
// of the remaining conflict edges) exactly once. The callback returns
// false to stop early; returns true iff enumeration completed. The number
// of extensions is exponential in the unoriented edge count.
bool EnumerateTotalExtensions(
    const ConflictGraph& graph, const Priority& priority,
    const std::function<bool(const Priority&)>& callback);

// The repairs selected by the total-extension semantics: the set
// { CleanDatabaseTotal(≻') : ≻' a total extension of `priority` }.
// Deduplicated; fails with kResourceExhausted past `limit` distinct
// repairs.
Result<std::vector<DynamicBitset>> ExtensionFamilyRepairs(
    const ConflictGraph& graph, const Priority& priority,
    size_t limit = kDefaultRepairListLimit);

}  // namespace prefrep

#endif  // PREFREP_CORE_EXTENSIONS_H_
