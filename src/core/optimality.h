// Repair-optimality notions (§3): the heart of the paper.
//
// Given a conflict graph, a priority and a repair r', the paper defines
// three increasingly aggressive ways a priority can disqualify r':
//
//   locally optimal      — no single tuple x ∈ r' can be traded for a
//                          dominating tuple y ≻ x keeping consistency;
//   semi-globally optimal— no tuple set X ⊆ r' can be traded for a single
//                          y dominating all of X;
//   globally optimal     — no tuple set can be traded for a set Y covering
//                          it through domination; equivalently (Prop. 5)
//                          r' is ≪-maximal among repairs.
//
// plus the *common repairs* (Thm. 1 / Prop. 7): repairs produced by every
// run of Algorithm 1, checkable in PTIME by a greedy simulation.
//
// All functions expect `repair` to satisfy graph.IsMaximalIndependent().

#ifndef PREFREP_CORE_OPTIMALITY_H_
#define PREFREP_CORE_OPTIMALITY_H_

#include <vector>

#include "base/bitset.h"
#include "graph/conflict_graph.h"
#include "priority/priority.h"

namespace prefrep {

// Proposition 5's lifting: r1 ≪ r2 ("r2 is preferred over r1") iff every
// x ∈ r1 \ r2 is dominated by some y ∈ r2 \ r1. Vacuously true when
// r1 ⊆ r2 (for distinct repairs the difference is never empty).
[[nodiscard]] bool IsPreferredOver(const Priority& priority,
                                   const DynamicBitset& r1,
                                   const DynamicBitset& r2);

// Allocation-free form for certificate loops: `only_r1` and `only_r2` are
// caller-provided scratch buffers over the same universe (their contents
// are overwritten). The G-Rep quadratic certification pass calls this
// once per repair pair.
[[nodiscard]] bool IsPreferredOver(const Priority& priority,
                                   const DynamicBitset& r1,
                                   const DynamicBitset& r2,
                                   DynamicBitset& only_r1,
                                   DynamicBitset& only_r2);

// L: no x ∈ r' and y ∈ r \ r' with y ≻ x and (r' \ {x}) ∪ {y} consistent.
// PTIME (Theorem 4).
[[nodiscard]] bool IsLocallyOptimal(const ConflictGraph& graph,
                                    const Priority& priority,
                                    const DynamicBitset& repair);

// S: no nonempty X ⊆ r' and y with ∀x∈X. y ≻ x and (r' \ X) ∪ {y}
// consistent. Equivalently: no y outside r' dominating all its neighbors
// in r' (§4.2). PTIME (Corollary 1).
[[nodiscard]] bool IsSemiGloballyOptimal(const ConflictGraph& graph,
                                         const Priority& priority,
                                         const DynamicBitset& repair);

// G via Prop. 5: no repair r'' != r' with r' ≪ r''. The witness search
// enumerates repairs (co-NP-complete in general, Theorem 5).
[[nodiscard]] bool IsGloballyOptimal(const ConflictGraph& graph,
                                     const Priority& priority,
                                     const DynamicBitset& repair);

// G among a pre-materialized repair set (used when the caller already
// enumerated all repairs).
[[nodiscard]] bool IsGloballyOptimalAmong(
    const Priority& priority, const DynamicBitset& repair,
    const std::vector<DynamicBitset>& repairs);

// C via Prop. 7: simulates Algorithm 1 restricting the choices in Step 3
// to ω≻(r) ∩ r'. PTIME (Corollary 2).
[[nodiscard]] bool IsCommonRepair(const ConflictGraph& graph,
                                  const Priority& priority,
                                  const DynamicBitset& repair);

}  // namespace prefrep

#endif  // PREFREP_CORE_OPTIMALITY_H_
