#include "core/optimality.h"

#include "graph/mis.h"

namespace prefrep {

bool IsPreferredOver(const Priority& priority, const DynamicBitset& r1,
                     const DynamicBitset& r2) {
  DynamicBitset only_r1(r1.size());
  DynamicBitset only_r2(r1.size());
  return IsPreferredOver(priority, r1, r2, only_r1, only_r2);
}

bool IsPreferredOver(const Priority& priority, const DynamicBitset& r1,
                     const DynamicBitset& r2, DynamicBitset& only_r1,
                     DynamicBitset& only_r2) {
  only_r1.AssignDifference(r1, r2);
  only_r2.AssignDifference(r2, r1);
  bool all_dominated = true;
  ForEachSetBit(only_r1, [&](int x) {
    if (all_dominated && !priority.DominatorsOf(x).Intersects(only_r2)) {
      all_dominated = false;
    }
  });
  return all_dominated;
}

bool IsLocallyOptimal(const ConflictGraph& graph, const Priority& priority,
                      const DynamicBitset& repair) {
  DCHECK(graph.IsMaximalIndependent(repair));
  int n = graph.vertex_count();
  DynamicBitset inside(n);
  for (int y = 0; y < n; ++y) {
    if (repair.Test(y)) continue;
    // (r' \ {x}) ∪ {y} is consistent iff y's only neighbor inside r' is x.
    inside.AssignAnd(graph.Neighbors(y), repair);
    int x = inside.FirstSetBit();
    if (x < 0) continue;  // cannot happen for maximal repairs
    if (inside.NextSetBit(x + 1) >= 0) continue;  // more than one neighbor
    if (priority.Dominates(y, x)) return false;
  }
  return true;
}

bool IsSemiGloballyOptimal(const ConflictGraph& graph,
                           const Priority& priority,
                           const DynamicBitset& repair) {
  DCHECK(graph.IsMaximalIndependent(repair));
  int n = graph.vertex_count();
  DynamicBitset inside(n);
  for (int y = 0; y < n; ++y) {
    if (repair.Test(y)) continue;
    // X must equal n(y) ∩ r' (smaller X leaves a conflict with y; larger X
    // adds tuples y does not conflict with, which y cannot dominate).
    inside.AssignAnd(graph.Neighbors(y), repair);
    if (inside.None()) continue;
    if (inside.IsSubsetOf(priority.DominatedBy(y))) return false;
  }
  return true;
}

bool IsGloballyOptimal(const ConflictGraph& graph, const Priority& priority,
                       const DynamicBitset& repair) {
  DCHECK(graph.IsMaximalIndependent(repair));
  bool found_witness = false;
  DynamicBitset scratch1(repair.size());
  DynamicBitset scratch2(repair.size());
  EnumerateMaximalIndependentSets(graph, [&](const DynamicBitset& other) {
    if (other == repair) return true;
    if (IsPreferredOver(priority, repair, other, scratch1, scratch2)) {
      found_witness = true;
      return false;  // stop enumeration
    }
    return true;
  });
  return !found_witness;
}

bool IsGloballyOptimalAmong(const Priority& priority,
                            const DynamicBitset& repair,
                            const std::vector<DynamicBitset>& repairs) {
  DynamicBitset scratch1(repair.size());
  DynamicBitset scratch2(repair.size());
  for (const DynamicBitset& other : repairs) {
    if (other == repair) continue;
    if (IsPreferredOver(priority, repair, other, scratch1, scratch2)) {
      return false;
    }
  }
  return true;
}

bool IsCommonRepair(const ConflictGraph& graph, const Priority& priority,
                    const DynamicBitset& repair) {
  DCHECK(graph.IsMaximalIndependent(repair));
  int n = graph.vertex_count();
  DynamicBitset remaining = DynamicBitset::AllSet(n);
  DynamicBitset to_pick = repair;
  DynamicBitset winnow(n);
  DynamicBitset picks(n);
  DynamicBitset neighbors(n);
  while (true) {
    WinnowInto(priority, remaining, winnow);
    picks.AssignAnd(winnow, to_pick);
    if (picks.None()) break;
    // Picking any x ∈ ω≻(r) ∩ r' keeps every other such candidate valid
    // (members of r' are pairwise non-conflicting and removals only shrink
    // domination), so all candidates can be consumed in one batch.
    to_pick.Subtract(picks);
    remaining.Subtract(picks);
    graph.NeighborsOfSetInto(picks, neighbors);
    remaining.Subtract(neighbors);
  }
  return remaining.None();
}

}  // namespace prefrep
