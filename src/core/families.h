// The four families of preferred repairs: L-Rep, S-Rep, G-Rep, C-Rep,
// plus the unrestricted Rep (no priorities given).
//
// PreferredRepairs / EnumeratePreferredRepairs select the subset of the
// repair space a family retains under a given priority; these drive the
// preferred-consistent-query-answer engines in src/cqa.

#ifndef PREFREP_CORE_FAMILIES_H_
#define PREFREP_CORE_FAMILIES_H_

#include <functional>
#include <optional>
#include <string_view>
#include <vector>

#include "base/bitset.h"
#include "base/eval_options.h"
#include "base/status.h"
#include "base/thread_pool.h"
#include "graph/components.h"
#include "graph/conflict_graph.h"
#include "priority/priority.h"

namespace prefrep {

enum class RepairFamily {
  kAll,         // Rep: every repair (Arenas-Bertossi-Chomicki baseline)
  kLocal,       // L-Rep: locally optimal repairs
  kSemiGlobal,  // S-Rep: semi-globally optimal repairs
  kGlobal,      // G-Rep: globally optimal repairs
  kCommon,      // C-Rep: common repairs (all Algorithm 1 outputs)
};

// "Rep", "L-Rep", "S-Rep", "G-Rep", "C-Rep".
std::string_view RepairFamilyName(RepairFamily family);

// All five families, in the paper's order (handy for sweeps).
inline constexpr RepairFamily kAllFamilies[] = {
    RepairFamily::kAll, RepairFamily::kLocal, RepairFamily::kSemiGlobal,
    RepairFamily::kGlobal, RepairFamily::kCommon};

// True iff `priority` resolves no conflict at all (no arcs). Under an
// empty priority nothing is ever dominated, so the non-discrimination
// property P3 (§3, pinned by tests/properties_test.cc) collapses every
// family to plain Rep: L/S/G-optimality hold vacuously and every repair
// is an Algorithm 1 output.
inline bool PriorityIsEmpty(const Priority& priority) {
  return priority.arc_count() == 0;
}

// The family actually in force: `family` itself, except that an empty
// priority collapses every family to RepairFamily::kAll (see
// PriorityIsEmpty). The CQA planner normalizes through this before
// choosing an algorithm — it both unlocks the polynomial Rep-only fast
// paths for all five families and lets the enumeration tier skip the
// per-repair optimality filters (G-Rep's quadratic certificate, C-Rep's
// memoized choice-tree walk) when they cannot reject anything.
RepairFamily EffectiveFamily(const Priority& priority, RepairFamily family);

// X-repair checking (problem (i) of §4.1): is `repair` — assumed to be a
// repair — a member of family X under `priority`?
bool IsPreferredRepair(const ConflictGraph& graph, const Priority& priority,
                       RepairFamily family, const DynamicBitset& repair);

// Visits every repair of the family exactly once (order unspecified).
// The callback returns false to stop early; returns true iff enumeration
// completed. For kGlobal this runs the co-NP witness search per repair;
// for kCommon it explores the Algorithm 1 choice tree with memoization.
bool EnumeratePreferredRepairs(
    const ConflictGraph& graph, const Priority& priority, RepairFamily family,
    const std::function<bool(const DynamicBitset&)>& callback);

// Same, with per-component family materialization fanned out across
// options.threads workers: each component is searched by its own engine
// instance on one thread (engines are single-threaded by design), the
// per-component lists merge in component order, and the product odometer
// streams combinations through `callback` on the calling thread — so the
// emitted sequence is identical to the serial form and options only
// change wall-clock. threads <= 1 takes the serial path unchanged. One
// caveat at the edge of the kComponentListBudgetBytes budget: parallel
// G-Rep materialization holds several unfiltered lists concurrently where
// serial holds one at a time, so a transient peak can trip the streaming
// fallback where serial squeaks by — the repair *set* is still identical,
// but the fallback's emission order differs from the product's.
bool EnumeratePreferredRepairs(
    const ConflictGraph& graph, const Priority& priority, RepairFamily family,
    const ParallelOptions& options,
    const std::function<bool(const DynamicBitset&)>& callback);

// Materializes the family, failing with kResourceExhausted beyond `limit`
// (clamped to options.context's max_repair_list when a context is
// attached); an interrupted context fails with its kCancelled /
// kDeadlineExceeded status instead.
Result<std::vector<DynamicBitset>> PreferredRepairs(
    const ConflictGraph& graph, const Priority& priority, RepairFamily family,
    size_t limit = kDefaultRepairListLimit);
Result<std::vector<DynamicBitset>> PreferredRepairs(
    const ConflictGraph& graph, const Priority& priority, RepairFamily family,
    const ParallelOptions& options, size_t limit = kDefaultRepairListLimit);

// Consolidated-options form: threads, deadline and the repair-list cap all
// come from `options` (the cap from options.limits.max_repair_list — one
// source of truth with every other enumerator, see
// base/exec_context.h kDefaultRepairListLimit). Prefer this overload; the
// positional forms above survive as thin compatibility wrappers.
Result<std::vector<DynamicBitset>> PreferredRepairs(
    const ConflictGraph& graph, const Priority& priority, RepairFamily family,
    const EvalOptions& options);

// Per-component family lists in their compact local universes, together
// with the decomposition and projected priorities that define them. The
// input of sharded consumers: cqa.cc splits the product space across
// worker threads by slicing one component's list
// (ComponentProductEnumerator::EnumerateSlice).
struct ComponentFamilyLists {
  ComponentDecomposition decomposition;
  std::vector<Priority> local_priorities;
  std::vector<std::vector<DynamicBitset>> choices;
};

// Materializes every component's family list, fanning components out
// across options.threads workers (on `pool` when given, else an
// on-demand pool). Returns nullopt when the lists exceed the byte budget
// (options.context's limit, else kComponentListBudgetBytes) — callers
// then take a serial streaming path
// (EnumeratePreferredRepairsStreaming, which will not re-attempt the
// materialization that just failed) — or when the context was interrupted
// (the fallback path re-polls the context and surfaces the interrupt). A
// graph with no non-singleton component yields empty `choices`; its
// unique repair is decomposition.isolated().
[[nodiscard]] std::optional<ComponentFamilyLists>
MaterializeComponentFamilyLists(const ConflictGraph& graph,
                                const Priority& priority, RepairFamily family,
                                const ParallelOptions& options,
                                ThreadPool* pool = nullptr);

// Whole-graph streaming enumeration with O(search depth) memory: the
// forms EnumeratePreferredRepairs falls back to once per-component lists
// exceed the byte budget. For consumers that already know the budget is
// blown — re-running the doomed materialization would double the
// exponential core. Emission order differs from the product-based path
// (there is no product); the set of repairs is identical.
bool EnumeratePreferredRepairsStreaming(
    const ConflictGraph& graph, const Priority& priority, RepairFamily family,
    const std::function<bool(const DynamicBitset&)>& callback,
    ExecutionContext* context = nullptr);

}  // namespace prefrep

#endif  // PREFREP_CORE_FAMILIES_H_
