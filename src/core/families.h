// The four families of preferred repairs: L-Rep, S-Rep, G-Rep, C-Rep,
// plus the unrestricted Rep (no priorities given).
//
// PreferredRepairs / EnumeratePreferredRepairs select the subset of the
// repair space a family retains under a given priority; these drive the
// preferred-consistent-query-answer engines in src/cqa.

#ifndef PREFREP_CORE_FAMILIES_H_
#define PREFREP_CORE_FAMILIES_H_

#include <functional>
#include <string_view>
#include <vector>

#include "base/bitset.h"
#include "base/status.h"
#include "graph/conflict_graph.h"
#include "priority/priority.h"

namespace prefrep {

enum class RepairFamily {
  kAll,         // Rep: every repair (Arenas-Bertossi-Chomicki baseline)
  kLocal,       // L-Rep: locally optimal repairs
  kSemiGlobal,  // S-Rep: semi-globally optimal repairs
  kGlobal,      // G-Rep: globally optimal repairs
  kCommon,      // C-Rep: common repairs (all Algorithm 1 outputs)
};

// "Rep", "L-Rep", "S-Rep", "G-Rep", "C-Rep".
std::string_view RepairFamilyName(RepairFamily family);

// All five families, in the paper's order (handy for sweeps).
inline constexpr RepairFamily kAllFamilies[] = {
    RepairFamily::kAll, RepairFamily::kLocal, RepairFamily::kSemiGlobal,
    RepairFamily::kGlobal, RepairFamily::kCommon};

// X-repair checking (problem (i) of §4.1): is `repair` — assumed to be a
// repair — a member of family X under `priority`?
bool IsPreferredRepair(const ConflictGraph& graph, const Priority& priority,
                       RepairFamily family, const DynamicBitset& repair);

// Visits every repair of the family exactly once (order unspecified).
// The callback returns false to stop early; returns true iff enumeration
// completed. For kGlobal this runs the co-NP witness search per repair;
// for kCommon it explores the Algorithm 1 choice tree with memoization.
bool EnumeratePreferredRepairs(
    const ConflictGraph& graph, const Priority& priority, RepairFamily family,
    const std::function<bool(const DynamicBitset&)>& callback);

// Materializes the family, failing with kResourceExhausted beyond `limit`.
Result<std::vector<DynamicBitset>> PreferredRepairs(
    const ConflictGraph& graph, const Priority& priority, RepairFamily family,
    size_t limit = 1u << 20);

}  // namespace prefrep

#endif  // PREFREP_CORE_FAMILIES_H_
