#include "core/algorithm1.h"

#include <numeric>

namespace prefrep {

DynamicBitset CleanDatabase(const ConflictGraph& graph,
                            const Priority& priority,
                            const std::vector<int>& choice_order) {
  int n = graph.vertex_count();
  CHECK_EQ(static_cast<int>(choice_order.size()), n);
  // position[v] = rank of v in the choice order (lower = preferred).
  std::vector<int> position(n);
  for (int i = 0; i < n; ++i) position[choice_order[i]] = i;

  DynamicBitset remaining = DynamicBitset::AllSet(n);
  DynamicBitset result(n);
  while (true) {
    DynamicBitset winnow = Winnow(priority, remaining);
    if (winnow.None()) break;  // with an acyclic ≻ this means remaining = {}
    int chosen = -1;
    ForEachSetBit(winnow, [&](int v) {
      if (chosen < 0 || position[v] < position[chosen]) chosen = v;
    });
    result.Set(chosen);
    remaining.Subtract(graph.Vicinity(chosen));
  }
  return result;
}

DynamicBitset CleanDatabase(const ConflictGraph& graph,
                            const Priority& priority) {
  std::vector<int> identity(graph.vertex_count());
  std::iota(identity.begin(), identity.end(), 0);
  return CleanDatabase(graph, priority, identity);
}

DynamicBitset CleanDatabaseTotal(const ConflictGraph& graph,
                                 const Priority& priority) {
  CHECK(priority.IsTotalFor(graph)) << "CleanDatabaseTotal needs a total "
                                       "priority; use CleanDatabase";
  int n = graph.vertex_count();
  DynamicBitset remaining = DynamicBitset::AllSet(n);
  DynamicBitset result(n);
  while (true) {
    DynamicBitset winnow = Winnow(priority, remaining);
    if (winnow.None()) break;
    // Totality makes ω≻ independent: no conflict edge can have both
    // endpoints undominated. Consume the whole round at once.
    result |= winnow;
    remaining.Subtract(winnow);
    remaining.Subtract(graph.NeighborsOfSet(winnow));
  }
  return result;
}

}  // namespace prefrep
