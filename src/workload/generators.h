// Synthetic workload generators for tests, benchmarks and examples.
//
// Three structural families mirror the "possible applications" column of
// the paper's Figure 5:
//   - key-group instances (one key dependency; conflict cliques),
//   - duplicates instances (one non-key FD; Example 8's pattern),
//   - chain instances (two FDs with mutual conflicts; Example 9's pattern),
// plus r_n from Example 4 (2^n repairs) and the Mgr integration scenario
// from Examples 1-3.
//
// All generators are deterministic given the Rng seed.

#ifndef PREFREP_WORKLOAD_GENERATORS_H_
#define PREFREP_WORKLOAD_GENERATORS_H_

#include <memory>
#include <vector>

#include "base/random.h"
#include "base/status.h"
#include "constraints/fd.h"
#include "graph/conflict_graph.h"
#include "priority/priority.h"
#include "relational/database.h"

namespace prefrep {

// A generated database together with its integrity constraints.
// (Held by unique_ptr internally so the struct stays movable while
// RepairProblem instances keep stable pointers to the database.)
struct GeneratedInstance {
  std::unique_ptr<Database> db;
  std::vector<FunctionalDependency> fds;
};

// Example 4: r_n over R(A, B) with FD A -> B; tuples (i, 0), (i, 1) for
// i < n. Has exactly 2^n repairs.
GeneratedInstance MakeRnInstance(int n);

// One key dependency K -> V over R(K, V): `groups` clusters of
// `group_size` mutually conflicting tuples (conflict cliques). The Fig. 5
// "key (no duplicates)" application of L-Rep.
GeneratedInstance MakeKeyGroupsInstance(int groups, int group_size);

// One non-key FD A -> B over R(A, B, C): each cluster contains
// `duplicates` tuples agreeing on (A, B) (pairwise non-conflicting
// "duplicates", Example 8) plus `rivals` tuples with distinct B values that
// conflict with everything else in the cluster. The Fig. 5 "one FD
// (duplicates)" application of S-Rep.
GeneratedInstance MakeDuplicatesInstance(int groups, int duplicates,
                                         int rivals);

// Two FDs A -> B and C -> D over R(A, B, C, D) with mutual conflicts
// forming a conflict path t_0 - t_1 - ... - t_{length-1}, alternating
// between the two FDs (Example 9 generalized; Example 9 itself is
// length = 5). The Fig. 5 "many FDs with mutual conflicts" application of
// G-Rep / C-Rep.
GeneratedInstance MakeChainInstance(int length);

// Two FDs A -> B and C -> D over R(A, B, C, D) whose conflict graph is a
// 2k-cycle u_0 - v_0 - u_1 - v_1 - ... - u_{k-1} - v_{k-1} - u_0 with edges
// alternating between the two FDs. With the priority {v_i ≻ u_i} this is a
// sound replacement for the paper's (internally inconsistent) Example 9:
// S-Rep = {{u_0..u_{k-1}}, {v_0..v_{k-1}}} while G-Rep = {{v_0..v_{k-1}}}
// (see DESIGN.md, "Errata"). Requires k >= 3.
GeneratedInstance MakeCycleInstance(int k);

// Random instance over R(A_0..A_{arity-1}) (all numeric) with `fd_specs`
// random unary FDs A_i -> A_j, values drawn from [0, domain_size).
// Duplicate tuples are skipped, so the result may have fewer than
// `tuple_target` tuples.
GeneratedInstance MakeRandomInstance(Rng& rng, int tuple_target, int arity,
                                     int domain_size, int fd_count);

// A random priority orienting each conflict edge independently with
// probability `density` according to a uniformly random global ranking of
// the tuples (rank-derived orientations are transitive-free but always
// acyclic). density=1 yields a total priority.
Priority RandomRankingPriority(Rng& rng, const ConflictGraph& graph,
                               double density);

// A random priority built by orienting a random `density` fraction of the
// edges one at a time in random order, each in a direction keeping the
// relation acyclic (prefers a random direction, falls back to the other).
// Unlike RandomRankingPriority this can produce orientations not induced by
// any global ranking (e.g. non-transitive triangles).
Priority RandomDagPriority(Rng& rng, const ConflictGraph& graph,
                           double density);

// A conflict graph that is the disjoint union of paths: component i is a
// path of component_sizes[i] vertices (size 1 = isolated vertex), with
// global vertex ids interleaved by a random permutation so components are
// never contiguous id ranges. A path's repair space is Fibonacci in its
// length, so per-component enumeration cost is controllable and
// exponential — the knob the parallel property tests and the thread-
// scaling bench both need.
[[nodiscard]] ConflictGraph MakeComponentPathsGraph(
    Rng& rng, const std::vector<int>& component_sizes);

// Database-backed multi-component instance over R(K, V, W) with FD
// K -> V: group i holds component_sizes[i] tuples with key i, split
// across >= 2 V-classes (same-class tuples agree on V and never conflict;
// cross-class tuples conflict), so every group of size >= 2 is one
// connected complete-multipartite conflict component and size-1 groups
// are isolated vertices. W makes tuples distinct. Used by the parallel
// CQA equivalence tests, which need a database and queries, not just a
// graph.
GeneratedInstance MakeComponentsInstance(Rng& rng,
                                         const std::vector<int>& component_sizes);

// Convenience: `components` groups with sizes uniform in
// [min_size, max_size].
GeneratedInstance MakeComponentsInstance(Rng& rng, int components,
                                         int min_size, int max_size);

// Multi-relation variant: `relations` relations R0..R{relations-1}, each
// laid out like MakeComponentsInstance (schema Ri(K, V, W), FD K -> V,
// `groups_per_relation` complete-multipartite components with sizes
// uniform in [min_size, max_size]). Global tuple ids are assigned relation
// by relation, so a delta confined to the last relation leaves every
// earlier relation in the identity region — the workload shape the
// incremental snapshot derivation (Snapshot::Derive) is built for, used by
// its equivalence tests and bench_incremental_update.
GeneratedInstance MakeMultiRelationComponentsInstance(
    Rng& rng, int relations, int groups_per_relation, int min_size,
    int max_size);

// Data-integration workload (the paper's §1 motivation, scaled up): the
// union of `sources` individually consistent sources over R(K, V) with key
// FD K -> V. Each source covers each key in [0, keys) with probability
// `coverage` and assigns a value from [0, value_domain); identical (K, V)
// facts from different sources merge (set semantics, first source wins the
// provenance tag). Conflicts arise where sources disagree on a key's
// value. Every source is consistent in isolation (verified by CHECK).
GeneratedInstance MakeIntegrationWorkload(Rng& rng, int sources, int keys,
                                          double coverage, int value_domain);

// ---------------------------------------------------------------------------
// The paper's running example (Examples 1-3).
// ---------------------------------------------------------------------------

// The Mgr(Name, Dept, Salary, Reports) integration scenario: the union of
// three consistent sources with FDs Dept -> Name Salary Reports and
// Name -> Dept Salary Reports. Tuple metadata records the source.
struct MgrScenario {
  std::unique_ptr<Database> db;
  std::vector<FunctionalDependency> fds;
  // Global tuple ids of the four facts.
  TupleId mary_rd;   // (Mary, R&D, 40k, 3)  from s1
  TupleId john_rd;   // (John, R&D, 10k, 2)  from s2
  TupleId mary_it;   // (Mary, IT, 20k, 1)   from s3
  TupleId john_pr;   // (John, PR, 30k, 4)   from s3
  // Source reliability ranks of Example 3: s1 = s2 = 1 > s3 = 0.
  std::vector<int64_t> source_ranks;
};

MgrScenario MakeMgrScenario();

}  // namespace prefrep

#endif  // PREFREP_WORKLOAD_GENERATORS_H_
