#include "workload/generators.h"

#include <algorithm>

#include "graph/digraph.h"

namespace prefrep {

namespace {

Schema MustSchema(std::string name, std::vector<Attribute> attributes) {
  auto schema = Schema::Create(std::move(name), std::move(attributes));
  CHECK(schema.ok()) << schema.status().ToString();
  return *std::move(schema);
}

FunctionalDependency MustFd(const Schema& schema, std::string_view text) {
  auto fd = FunctionalDependency::Parse(schema, text);
  CHECK(fd.ok()) << fd.status().ToString();
  return *std::move(fd);
}

void MustInsert(Database& db, std::string_view relation, Tuple tuple,
                TupleMeta meta = TupleMeta{}) {
  auto id = db.Insert(relation, std::move(tuple), meta);
  CHECK(id.ok()) << id.status().ToString();
}

Schema NumericSchema(std::string relation, std::vector<std::string> attrs) {
  std::vector<Attribute> attributes;
  attributes.reserve(attrs.size());
  for (auto& a : attrs) {
    attributes.push_back(Attribute{std::move(a), ValueType::kNumber});
  }
  return MustSchema(std::move(relation), std::move(attributes));
}

}  // namespace

GeneratedInstance MakeRnInstance(int n) {
  CHECK_GE(n, 0);
  GeneratedInstance out;
  out.db = std::make_unique<Database>();
  Schema schema = NumericSchema("R", {"A", "B"});
  CHECK(out.db->AddRelation(schema).ok());
  out.fds.push_back(MustFd(schema, "A -> B"));
  for (int i = 0; i < n; ++i) {
    MustInsert(*out.db, "R", Tuple::Of(Value::Number(i), Value::Number(0)));
    MustInsert(*out.db, "R", Tuple::Of(Value::Number(i), Value::Number(1)));
  }
  return out;
}

GeneratedInstance MakeKeyGroupsInstance(int groups, int group_size) {
  CHECK_GE(groups, 0);
  CHECK_GE(group_size, 1);
  GeneratedInstance out;
  out.db = std::make_unique<Database>();
  Schema schema = NumericSchema("R", {"K", "V"});
  CHECK(out.db->AddRelation(schema).ok());
  out.fds.push_back(MustFd(schema, "K -> V"));
  for (int g = 0; g < groups; ++g) {
    for (int j = 0; j < group_size; ++j) {
      MustInsert(*out.db, "R", Tuple::Of(Value::Number(g), Value::Number(j)));
    }
  }
  return out;
}

GeneratedInstance MakeDuplicatesInstance(int groups, int duplicates,
                                         int rivals) {
  CHECK_GE(groups, 0);
  CHECK_GE(duplicates, 0);
  CHECK_GE(rivals, 0);
  GeneratedInstance out;
  out.db = std::make_unique<Database>();
  Schema schema = NumericSchema("R", {"A", "B", "C"});
  CHECK(out.db->AddRelation(schema).ok());
  out.fds.push_back(MustFd(schema, "A -> B"));
  for (int g = 0; g < groups; ++g) {
    // `duplicates` tuples agreeing on (A, B) = (g, 0): not conflicting with
    // each other, but conflicting with every rival below (Example 8).
    for (int j = 0; j < duplicates; ++j) {
      MustInsert(*out.db, "R",
                 Tuple::Of(Value::Number(g), Value::Number(0),
                           Value::Number(j)));
    }
    // `rivals` tuples with distinct B values 1..rivals.
    for (int k = 1; k <= rivals; ++k) {
      MustInsert(*out.db, "R",
                 Tuple::Of(Value::Number(g), Value::Number(k),
                           Value::Number(duplicates + k)));
    }
  }
  return out;
}

GeneratedInstance MakeChainInstance(int length) {
  CHECK_GE(length, 0);
  GeneratedInstance out;
  out.db = std::make_unique<Database>();
  Schema schema = NumericSchema("R", {"A", "B", "C", "D"});
  CHECK(out.db->AddRelation(schema).ok());
  out.fds.push_back(MustFd(schema, "A -> B"));
  out.fds.push_back(MustFd(schema, "C -> D"));
  // t_i and t_{i+1} share A (and differ on B) for even i, share C (and
  // differ on D) for odd i; all other pairs differ on both A and C.
  for (int i = 0; i < length; ++i) {
    int a = i / 2;
    int b = i % 2;
    int c = (i + 1) / 2;
    int d = i % 2;
    MustInsert(*out.db, "R",
               Tuple::Of(Value::Number(a), Value::Number(b), Value::Number(c),
                         Value::Number(d)));
  }
  return out;
}

GeneratedInstance MakeCycleInstance(int k) {
  CHECK_GE(k, 3) << "a chordless conflict cycle needs k >= 3 (2k vertices)";
  GeneratedInstance out;
  out.db = std::make_unique<Database>();
  Schema schema = NumericSchema("R", {"A", "B", "C", "D"});
  CHECK(out.db->AddRelation(schema).ok());
  out.fds.push_back(MustFd(schema, "A -> B"));
  out.fds.push_back(MustFd(schema, "C -> D"));
  // FD1 groups {u_i, v_i} share A = i; FD2 groups {v_i, u_{i+1}} share
  // C = i. Values of B (resp. D) differ inside each group. Tuples are
  // inserted u_0, v_0, u_1, v_1, ... so ids are u_i = 2i, v_i = 2i+1.
  for (int i = 0; i < k; ++i) {
    int prev = (i + k - 1) % k;
    // u_i: A group i (B=0), C group prev (D=1).
    MustInsert(*out.db, "R",
               Tuple::Of(Value::Number(i), Value::Number(0),
                         Value::Number(prev), Value::Number(1)));
    // v_i: A group i (B=1), C group i (D=0).
    MustInsert(*out.db, "R",
               Tuple::Of(Value::Number(i), Value::Number(1), Value::Number(i),
                         Value::Number(0)));
  }
  return out;
}

GeneratedInstance MakeRandomInstance(Rng& rng, int tuple_target, int arity,
                                     int domain_size, int fd_count) {
  CHECK_GE(arity, 2);
  CHECK_GE(domain_size, 1);
  GeneratedInstance out;
  out.db = std::make_unique<Database>();
  std::vector<std::string> attrs;
  for (int i = 0; i < arity; ++i) attrs.push_back("A" + std::to_string(i));
  Schema schema = NumericSchema("R", attrs);
  CHECK(out.db->AddRelation(schema).ok());

  for (int f = 0; f < fd_count; ++f) {
    int lhs = static_cast<int>(rng.UniformInt(arity));
    int rhs = static_cast<int>(rng.UniformInt(arity));
    if (rhs == lhs) rhs = (rhs + 1) % arity;
    auto fd = FunctionalDependency::Create(schema, {lhs}, {rhs});
    CHECK(fd.ok());
    if (std::find(out.fds.begin(), out.fds.end(), *fd) == out.fds.end()) {
      out.fds.push_back(*std::move(fd));
    }
  }

  for (int t = 0; t < tuple_target; ++t) {
    std::vector<Value> values;
    values.reserve(arity);
    for (int i = 0; i < arity; ++i) {
      values.push_back(
          Value::Number(static_cast<int64_t>(rng.UniformInt(domain_size))));
    }
    // Skip duplicates (set semantics).
    auto id = out.db->Insert("R", Tuple(std::move(values)));
    if (!id.ok()) continue;
  }
  return out;
}

Priority RandomRankingPriority(Rng& rng, const ConflictGraph& graph,
                               double density) {
  std::vector<int> perm = rng.Permutation(graph.vertex_count());
  std::vector<std::pair<int, int>> arcs;
  for (auto [u, v] : graph.edges()) {
    if (!rng.Bernoulli(density)) continue;
    if (perm[u] > perm[v]) {
      arcs.emplace_back(u, v);
    } else {
      arcs.emplace_back(v, u);
    }
  }
  auto priority = Priority::Create(graph, std::move(arcs));
  CHECK(priority.ok()) << priority.status().ToString();
  return *std::move(priority);
}

Priority RandomDagPriority(Rng& rng, const ConflictGraph& graph,
                           double density) {
  std::vector<std::pair<int, int>> edges = graph.edges();
  rng.Shuffle(edges);
  std::vector<std::pair<int, int>> arcs;
  int n = graph.vertex_count();
  for (auto [u, v] : edges) {
    if (!rng.Bernoulli(density)) continue;
    bool forward_first = rng.Bernoulli(0.5);
    int a = forward_first ? u : v;
    int b = forward_first ? v : u;
    arcs.emplace_back(a, b);
    if (!IsAcyclicDigraph(n, arcs)) {
      // The opposite direction of an edge added to a DAG is always safe.
      arcs.back() = {b, a};
      CHECK(IsAcyclicDigraph(n, arcs));
    }
  }
  auto priority = Priority::Create(graph, std::move(arcs));
  CHECK(priority.ok()) << priority.status().ToString();
  return *std::move(priority);
}

ConflictGraph MakeComponentPathsGraph(Rng& rng,
                                      const std::vector<int>& component_sizes) {
  int n = 0;
  for (int size : component_sizes) {
    CHECK_GE(size, 1);
    n += size;
  }
  std::vector<int> relabel = rng.Permutation(n);
  std::vector<std::pair<int, int>> edges;
  edges.reserve(static_cast<size_t>(n));
  int base = 0;
  for (int size : component_sizes) {
    for (int i = 1; i < size; ++i) {
      edges.emplace_back(relabel[base + i - 1], relabel[base + i]);
    }
    base += size;
  }
  return ConflictGraph(n, edges);
}

GeneratedInstance MakeComponentsInstance(
    Rng& rng, const std::vector<int>& component_sizes) {
  GeneratedInstance out;
  out.db = std::make_unique<Database>();
  Schema schema = NumericSchema("R", {"K", "V", "W"});
  CHECK(out.db->AddRelation(schema).ok());
  out.fds.push_back(MustFd(schema, "K -> V"));
  for (size_t g = 0; g < component_sizes.size(); ++g) {
    int size = component_sizes[g];
    CHECK_GE(size, 1);
    // The first `classes` tuples seed one V-class each (so no class is
    // empty and the component really is a >= 2-part multipartite graph);
    // the rest land in random classes.
    int classes =
        size >= 2 ? static_cast<int>(rng.UniformRange(2, size)) : 1;
    for (int j = 0; j < size; ++j) {
      int v = j < classes ? j : static_cast<int>(rng.UniformInt(classes));
      MustInsert(*out.db, "R",
                 Tuple::Of(Value::Number(static_cast<int64_t>(g)),
                           Value::Number(v), Value::Number(j)));
    }
  }
  return out;
}

GeneratedInstance MakeComponentsInstance(Rng& rng, int components,
                                         int min_size, int max_size) {
  CHECK_GE(components, 0);
  CHECK_GE(min_size, 1);
  CHECK_GE(max_size, min_size);
  std::vector<int> sizes;
  sizes.reserve(components);
  for (int i = 0; i < components; ++i) {
    sizes.push_back(static_cast<int>(rng.UniformRange(min_size, max_size)));
  }
  return MakeComponentsInstance(rng, sizes);
}

GeneratedInstance MakeMultiRelationComponentsInstance(Rng& rng, int relations,
                                                      int groups_per_relation,
                                                      int min_size,
                                                      int max_size) {
  CHECK_GE(relations, 1);
  CHECK_GE(groups_per_relation, 0);
  CHECK_GE(min_size, 1);
  CHECK_GE(max_size, min_size);
  GeneratedInstance out;
  out.db = std::make_unique<Database>();
  for (int r = 0; r < relations; ++r) {
    Schema schema = NumericSchema("R" + std::to_string(r), {"K", "V", "W"});
    CHECK(out.db->AddRelation(schema).ok());
    out.fds.push_back(MustFd(schema, "K -> V"));
    for (int g = 0; g < groups_per_relation; ++g) {
      int size = static_cast<int>(rng.UniformRange(min_size, max_size));
      int classes =
          size >= 2 ? static_cast<int>(rng.UniformRange(2, size)) : 1;
      for (int j = 0; j < size; ++j) {
        int v = j < classes ? j : static_cast<int>(rng.UniformInt(classes));
        MustInsert(*out.db, schema.relation_name(),
                   Tuple::Of(Value::Number(static_cast<int64_t>(g)),
                             Value::Number(v), Value::Number(j)));
      }
    }
  }
  return out;
}

GeneratedInstance MakeIntegrationWorkload(Rng& rng, int sources, int keys,
                                          double coverage,
                                          int value_domain) {
  CHECK_GE(sources, 1);
  CHECK_GE(keys, 0);
  CHECK_GE(value_domain, 1);
  GeneratedInstance out;
  out.db = std::make_unique<Database>();
  Schema schema = NumericSchema("R", {"K", "V"});
  CHECK(out.db->AddRelation(schema).ok());
  out.fds.push_back(MustFd(schema, "K -> V"));
  for (int s = 0; s < sources; ++s) {
    for (int k = 0; k < keys; ++k) {
      if (!rng.Bernoulli(coverage)) continue;
      int64_t v = static_cast<int64_t>(rng.UniformInt(value_domain));
      auto id = out.db->Insert(
          "R", Tuple::Of(Value::Number(k), Value::Number(v)),
          TupleMeta{s, TupleMeta::kNoTimestamp});
      // Another source already contributed the identical fact: set union.
      if (!id.ok()) {
        CHECK_EQ(static_cast<int>(id.status().code()),
                 static_cast<int>(StatusCode::kAlreadyExists));
      }
    }
  }
  return out;
}

MgrScenario MakeMgrScenario() {
  MgrScenario scenario;
  scenario.db = std::make_unique<Database>();
  Schema schema = MustSchema(
      "Mgr", {Attribute{"Name", ValueType::kName},
              Attribute{"Dept", ValueType::kName},
              Attribute{"Salary", ValueType::kNumber},
              Attribute{"Reports", ValueType::kNumber}});
  CHECK(scenario.db->AddRelation(schema).ok());
  // fd1: Dept -> Name Salary Reports ; fd2: Name -> Dept Salary Reports.
  scenario.fds.push_back(MustFd(schema, "Dept -> Name Salary Reports"));
  scenario.fds.push_back(MustFd(schema, "Name -> Dept Salary Reports"));

  auto insert = [&](const char* name, const char* dept, int64_t salary,
                    int64_t reports, int source) {
    auto id = scenario.db->Insert(
        "Mgr",
        Tuple::Of(Value::Name(name), Value::Name(dept), Value::Number(salary),
                  Value::Number(reports)),
        TupleMeta{source, TupleMeta::kNoTimestamp});
    CHECK(id.ok()) << id.status().ToString();
    return *id;
  };
  scenario.mary_rd = insert("Mary", "R&D", 40000, 3, 1);
  scenario.john_rd = insert("John", "R&D", 10000, 2, 2);
  scenario.mary_it = insert("Mary", "IT", 20000, 1, 3);
  scenario.john_pr = insert("John", "PR", 30000, 4, 3);

  // Example 3: s3 is less reliable than s1 and than s2; s1 vs s2 unknown.
  scenario.source_ranks = {1, 1, 0, 0};
  return scenario;
}

}  // namespace prefrep
