#include "relational/value.h"

namespace prefrep {

std::string_view ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kName:
      return "name";
    case ValueType::kNumber:
      return "number";
  }
  return "unknown";
}

}  // namespace prefrep
