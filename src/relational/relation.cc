#include "relational/relation.h"

namespace prefrep {

Relation::Rep* Relation::Mutable() {
  if (rep_.use_count() != 1) rep_ = std::make_shared<Rep>(*rep_);
  return rep_.get();
}

Result<int> Relation::AddTuple(Tuple tuple, TupleMeta meta) {
  PREFREP_RETURN_IF_ERROR(ValidateTuple(rep_->schema, tuple));
  if (rep_->index.contains(tuple)) {
    return Status::AlreadyExists("duplicate tuple " + tuple.ToString() +
                                 " in relation '" +
                                 rep_->schema.relation_name() + "'");
  }
  Rep* rep = Mutable();
  int row = static_cast<int>(rep->tuples.size());
  rep->index.emplace(tuple, row);
  rep->tuples.push_back(std::move(tuple));
  rep->meta.push_back(meta);
  return row;
}

Result<int> Relation::Find(const Tuple& tuple) const {
  auto it = rep_->index.find(tuple);
  if (it == rep_->index.end()) {
    return Status::NotFound("tuple " + tuple.ToString() + " not in relation '" +
                            rep_->schema.relation_name() + "'");
  }
  return it->second;
}

std::string Relation::ToString() const {
  std::string out = rep_->schema.ToString() + " {\n";
  for (const Tuple& t : rep_->tuples) {
    out += "  " + t.ToString() + "\n";
  }
  out += "}";
  return out;
}

}  // namespace prefrep
