#include "relational/relation.h"

namespace prefrep {

Result<int> Relation::AddTuple(Tuple tuple, TupleMeta meta) {
  PREFREP_RETURN_IF_ERROR(ValidateTuple(schema_, tuple));
  if (index_.contains(tuple)) {
    return Status::AlreadyExists("duplicate tuple " + tuple.ToString() +
                                 " in relation '" + schema_.relation_name() +
                                 "'");
  }
  int row = static_cast<int>(tuples_.size());
  index_.emplace(tuple, row);
  tuples_.push_back(std::move(tuple));
  meta_.push_back(meta);
  return row;
}

Result<int> Relation::Find(const Tuple& tuple) const {
  auto it = index_.find(tuple);
  if (it == index_.end()) {
    return Status::NotFound("tuple " + tuple.ToString() +
                            " not in relation '" + schema_.relation_name() +
                            "'");
  }
  return it->second;
}

std::string Relation::ToString() const {
  std::string out = schema_.ToString() + " {\n";
  for (const Tuple& t : tuples_) {
    out += "  " + t.ToString() + "\n";
  }
  out += "}";
  return out;
}

}  // namespace prefrep
