// Tuples and per-tuple provenance metadata.

#ifndef PREFREP_RELATIONAL_TUPLE_H_
#define PREFREP_RELATIONAL_TUPLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relational/schema.h"
#include "relational/value.h"

namespace prefrep {

// A tuple of interned Values. Since Value is a trivially copyable 16-byte
// scalar, the backing vector is a flat contiguous buffer: copying a tuple
// is one allocation plus a memcpy, and comparing/hashing touches no string
// data.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  // Convenience builder: Tuple::Of(Value::Name("Mary"), Value::Number(40)).
  template <typename... Vs>
  static Tuple Of(Vs... values) {
    return Tuple(std::vector<Value>{std::move(values)...});
  }

  int arity() const { return static_cast<int>(values_.size()); }
  const Value& value(int i) const { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  // E.g. "(Mary, R&D, 40000, 3)".
  std::string ToString() const;

  friend bool operator==(const Tuple& a, const Tuple& b) {
    return a.values_ == b.values_;
  }
  friend bool operator!=(const Tuple& a, const Tuple& b) { return !(a == b); }
  friend bool operator<(const Tuple& a, const Tuple& b) {
    return a.values_ < b.values_;
  }

  struct Hash {
    size_t operator()(const Tuple& t) const {
      Value::Hash vh;
      size_t h = 1469598103934665603ull;
      for (const Value& v : t.values_) {
        h ^= vh(v);
        h *= 1099511628211ull;
      }
      return h;
    }
  };

 private:
  std::vector<Value> values_;
};

// Provenance carried alongside each tuple. Data-cleaning systems expose
// exactly this kind of information (paper §1): the source a tuple came from
// and its creation/modification timestamp. Priorities can be synthesized
// from either (src/cleaning).
struct TupleMeta {
  static constexpr int kNoSource = -1;
  static constexpr int64_t kNoTimestamp = -1;

  int source_id = kNoSource;
  int64_t timestamp = kNoTimestamp;
};

// Checks that `tuple` conforms to `schema` (arity and per-position types).
Status ValidateTuple(const Schema& schema, const Tuple& tuple);

}  // namespace prefrep

#endif  // PREFREP_RELATIONAL_TUPLE_H_
