// Relation: a schema plus a bag of tuples with provenance metadata.
//
// Tuples are stored in insertion order; their index is their local id.
// Duplicate tuples are rejected (the paper works with set semantics).

#ifndef PREFREP_RELATIONAL_RELATION_H_
#define PREFREP_RELATIONAL_RELATION_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "relational/schema.h"
#include "relational/tuple.h"

namespace prefrep {

class Relation {
 public:
  Relation() = default;
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  int size() const { return static_cast<int>(tuples_.size()); }
  const Tuple& tuple(int i) const { return tuples_[i]; }
  const TupleMeta& meta(int i) const { return meta_[i]; }
  const std::vector<Tuple>& tuples() const { return tuples_; }

  // Validates against the schema and rejects exact duplicates.
  // Returns the local row index.
  Result<int> AddTuple(Tuple tuple, TupleMeta meta = TupleMeta{});

  // Row index of `tuple` if present.
  Result<int> Find(const Tuple& tuple) const;
  bool Contains(const Tuple& tuple) const { return Find(tuple).ok(); }

  // Multi-line textual dump (for examples / debugging).
  std::string ToString() const;

 private:
  Schema schema_;
  std::vector<Tuple> tuples_;
  std::vector<TupleMeta> meta_;
  std::unordered_map<Tuple, int, Tuple::Hash> index_;
};

}  // namespace prefrep

#endif  // PREFREP_RELATIONAL_RELATION_H_
