// Relation: a schema plus a bag of tuples with provenance metadata.
//
// Tuples are stored in insertion order; their index is their local id.
// Duplicate tuples are rejected (the paper works with set semantics).
//
// Storage is copy-on-write: copying a Relation shares one immutable
// representation (schema, tuples, metadata, hash index) and the first
// mutation through a copy clones it. This is what makes Database copies —
// and in particular ApplyDelta's derived databases (delta.h) — cheap:
// untouched relations are shared structurally between versions instead of
// being deep-copied. Readers holding `const Relation&` never observe a
// representation change; mutation is only reachable through non-const
// AddTuple.

#ifndef PREFREP_RELATIONAL_RELATION_H_
#define PREFREP_RELATIONAL_RELATION_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "relational/schema.h"
#include "relational/tuple.h"

namespace prefrep {

class Relation {
 public:
  Relation() : rep_(std::make_shared<Rep>()) {}
  explicit Relation(Schema schema) : rep_(std::make_shared<Rep>()) {
    rep_->schema = std::move(schema);
  }

  const Schema& schema() const { return rep_->schema; }
  int size() const { return static_cast<int>(rep_->tuples.size()); }
  const Tuple& tuple(int i) const { return rep_->tuples[i]; }
  const TupleMeta& meta(int i) const { return rep_->meta[i]; }
  const std::vector<Tuple>& tuples() const { return rep_->tuples; }

  // Validates against the schema and rejects exact duplicates.
  // Returns the local row index.
  Result<int> AddTuple(Tuple tuple, TupleMeta meta = TupleMeta{});

  // Row index of `tuple` if present.
  Result<int> Find(const Tuple& tuple) const;
  bool Contains(const Tuple& tuple) const { return Find(tuple).ok(); }

  // True iff both relations point at the same underlying storage (they are
  // copies of one another with no intervening mutation). Structural-sharing
  // diagnostics and tests; value equality is not implied the other way.
  bool SharesStorageWith(const Relation& other) const {
    return rep_ == other.rep_;
  }

  // Multi-line textual dump (for examples / debugging).
  std::string ToString() const;

 private:
  struct Rep {
    Schema schema;
    std::vector<Tuple> tuples;
    std::vector<TupleMeta> meta;
    std::unordered_map<Tuple, int, Tuple::Hash> index;
  };

  // Clones the representation if it is shared with another Relation.
  Rep* Mutable();

  std::shared_ptr<Rep> rep_;  // never null
};

}  // namespace prefrep

#endif  // PREFREP_RELATIONAL_RELATION_H_
