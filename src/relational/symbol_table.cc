#include "relational/symbol_table.h"

#include "base/logging.h"

namespace prefrep {

SymbolTable::~SymbolTable() {
  for (size_t c = 0; c < kMaxChunks; ++c) {
    std::string* chunk = chunks_[c].load(std::memory_order_relaxed);
    if (chunk == nullptr) break;  // chunks fill in order
    delete[] chunk;
  }
}

SymbolTable& SymbolTable::Global() {
  static SymbolTable* table = new SymbolTable();
  return *table;
}

uint32_t SymbolTable::Intern(std::string_view text) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ids_.find(text);
  if (it != ids_.end()) return it->second;
  size_t id = size_.load(std::memory_order_relaxed);
  CHECK(id < kChunkSize * kMaxChunks) << "symbol table full";
  size_t chunk_index = id / kChunkSize;
  std::string* chunk = chunks_[chunk_index].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new std::string[kChunkSize];
    chunks_[chunk_index].store(chunk, std::memory_order_release);
  }
  std::string& slot = chunk[id % kChunkSize];
  slot.assign(text);
  ids_.emplace(std::string_view(slot), static_cast<uint32_t>(id));
  // Publish after the string is fully constructed.
  size_.store(id + 1, std::memory_order_release);
  return static_cast<uint32_t>(id);
}

bool SymbolTable::Contains(std::string_view text) const {
  std::lock_guard<std::mutex> lock(mu_);
  return ids_.contains(text);
}

}  // namespace prefrep
