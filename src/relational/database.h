// Database: a set of relations with a dense global tuple-id space.
//
// The paper restricts itself to a single relation "only for the sake of
// clarity" (§2) and notes the framework extends to multiple relations along
// the lines of [7]. We support multiple relations throughout: conflict
// graphs, priorities and repairs are expressed over global TupleIds.
//
// A TupleId identifies a (relation, row) pair; ids are assigned densely in
// insertion order across all relations, so subsets of the database are
// DynamicBitsets over [0, tuple_count()).

#ifndef PREFREP_RELATIONAL_DATABASE_H_
#define PREFREP_RELATIONAL_DATABASE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "base/bitset.h"
#include "base/status.h"
#include "relational/relation.h"

namespace prefrep {

using TupleId = int;

class Database {
 public:
  Database() = default;

  // Registers an empty relation; fails on duplicate names.
  Status AddRelation(Schema schema);

  // Inserts a tuple and returns its global TupleId.
  Result<TupleId> Insert(std::string_view relation_name, Tuple tuple,
                         TupleMeta meta = TupleMeta{});

  int relation_count() const { return static_cast<int>(relations_.size()); }
  const std::vector<Relation>& relations() const { return relations_; }
  Result<const Relation*> relation(std::string_view name) const;
  // Index of the relation named `name` into relations() — a hash lookup,
  // so callers never need to scan relations by name or pointer identity.
  Result<int> RelationIndex(std::string_view name) const;
  bool HasRelation(std::string_view name) const;

  // Total number of tuples across all relations == size of the TupleId space.
  int tuple_count() const { return static_cast<int>(locations_.size()); }

  // Global id of row `row` of relation `relation_index`.
  TupleId GlobalId(int relation_index, int row) const {
    return relation_global_ids_[relation_index][row];
  }
  // Global id lookup by relation name + tuple value.
  Result<TupleId> FindTuple(std::string_view relation_name,
                            const Tuple& tuple) const;

  // Relation index / local row of a global id.
  int RelationIndexOf(TupleId id) const { return locations_[id].relation; }
  int RowOf(TupleId id) const { return locations_[id].row; }
  const Tuple& TupleOf(TupleId id) const {
    const Location& loc = locations_[id];
    return relations_[loc.relation].tuple(loc.row);
  }
  const TupleMeta& MetaOf(TupleId id) const {
    const Location& loc = locations_[id];
    return relations_[loc.relation].meta(loc.row);
  }
  const Schema& SchemaOf(TupleId id) const {
    return relations_[locations_[id].relation].schema();
  }

  // All tuple ids belonging to relation `relation_index`.
  DynamicBitset RelationMask(int relation_index) const;
  // The full database as a tuple set.
  DynamicBitset AllTuples() const {
    return DynamicBitset::AllSet(tuple_count());
  }

  // Materializes the sub-database induced by `keep` (e.g. a repair) as a
  // standalone Database. Provenance metadata is preserved.
  Database Induce(const DynamicBitset& keep) const;

  // "R(a, b)  [source=1 ts=5]" style line for a tuple id.
  std::string DescribeTuple(TupleId id) const;

  // Multi-line dump of all relations.
  std::string ToString() const;

 private:
  // DatabaseDelta::Apply (delta.h) assembles a successor database directly
  // from these internals so untouched relations share storage with the
  // base instead of being re-inserted tuple by tuple.
  friend class DatabaseDelta;

  struct Location {
    int relation;
    int row;
  };

  // Transparent hashing so string_view lookups never allocate.
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::vector<Relation> relations_;
  std::unordered_map<std::string, int, StringHash, std::equal_to<>>
      relation_index_;
  // Global ids of each relation's rows (inserts may interleave relations).
  std::vector<std::vector<TupleId>> relation_global_ids_;
  std::vector<Location> locations_;
};

}  // namespace prefrep

#endif  // PREFREP_RELATIONAL_DATABASE_H_
