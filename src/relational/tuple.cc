#include "relational/tuple.h"

namespace prefrep {

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

Status ValidateTuple(const Schema& schema, const Tuple& tuple) {
  if (tuple.arity() != schema.arity()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(tuple.arity()) +
        " does not match schema " + schema.ToString());
  }
  for (int i = 0; i < schema.arity(); ++i) {
    if (tuple.value(i).type() != schema.attribute(i).type) {
      return Status::InvalidArgument(
          "value '" + tuple.value(i).ToString() + "' at position " +
          std::to_string(i) + " has wrong type for " + schema.ToString());
    }
  }
  return Status::Ok();
}

}  // namespace prefrep
