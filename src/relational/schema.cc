#include "relational/schema.h"

#include "base/strings.h"

namespace prefrep {

Result<Schema> Schema::Create(std::string relation_name,
                              std::vector<Attribute> attributes) {
  if (!IsIdentifier(relation_name)) {
    return Status::InvalidArgument("relation name is not an identifier: '" +
                                   relation_name + "'");
  }
  if (attributes.empty()) {
    return Status::InvalidArgument("schema for '" + relation_name +
                                   "' has no attributes");
  }
  for (size_t i = 0; i < attributes.size(); ++i) {
    if (!IsIdentifier(attributes[i].name)) {
      return Status::InvalidArgument("attribute name is not an identifier: '" +
                                     attributes[i].name + "'");
    }
    for (size_t j = 0; j < i; ++j) {
      if (attributes[i].name == attributes[j].name) {
        return Status::InvalidArgument("duplicate attribute '" +
                                       attributes[i].name + "' in schema '" +
                                       relation_name + "'");
      }
    }
  }
  return Schema(std::move(relation_name), std::move(attributes));
}

Result<int> Schema::AttributeIndex(std::string_view name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return static_cast<int>(i);
  }
  return Status::NotFound("no attribute '" + std::string(name) +
                          "' in relation '" + relation_name_ + "'");
}

bool Schema::HasAttribute(std::string_view name) const {
  return AttributeIndex(name).ok();
}

std::string Schema::ToString() const {
  std::string out = relation_name_ + "(";
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) out += ", ";
    out += attributes_[i].name;
    out += ":";
    out += ValueTypeName(attributes_[i].type);
  }
  out += ")";
  return out;
}

bool operator==(const Schema& a, const Schema& b) {
  if (a.relation_name_ != b.relation_name_) return false;
  if (a.attributes_.size() != b.attributes_.size()) return false;
  for (size_t i = 0; i < a.attributes_.size(); ++i) {
    if (a.attributes_[i].name != b.attributes_[i].name ||
        a.attributes_[i].type != b.attributes_[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace prefrep
