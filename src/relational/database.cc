#include "relational/database.h"

namespace prefrep {

Status Database::AddRelation(Schema schema) {
  if (relation_index_.contains(schema.relation_name())) {
    return Status::AlreadyExists("relation '" + schema.relation_name() +
                                 "' already exists");
  }
  relation_index_.emplace(schema.relation_name(),
                          static_cast<int>(relations_.size()));
  relations_.emplace_back(std::move(schema));
  relation_global_ids_.emplace_back();
  return Status::Ok();
}

Result<TupleId> Database::Insert(std::string_view relation_name, Tuple tuple,
                                 TupleMeta meta) {
  PREFREP_ASSIGN_OR_RETURN(int rel, RelationIndex(relation_name));
  PREFREP_ASSIGN_OR_RETURN(int row,
                           relations_[rel].AddTuple(std::move(tuple), meta));
  TupleId id = static_cast<TupleId>(locations_.size());
  locations_.push_back(Location{rel, row});
  relation_global_ids_[rel].push_back(id);
  return id;
}

Result<const Relation*> Database::relation(std::string_view name) const {
  PREFREP_ASSIGN_OR_RETURN(int rel, RelationIndex(name));
  return static_cast<const Relation*>(&relations_[rel]);
}

Result<int> Database::RelationIndex(std::string_view name) const {
  auto it = relation_index_.find(name);
  if (it == relation_index_.end()) {
    return Status::NotFound("no relation '" + std::string(name) + "'");
  }
  return it->second;
}

bool Database::HasRelation(std::string_view name) const {
  return relation_index_.contains(name);
}

Result<TupleId> Database::FindTuple(std::string_view relation_name,
                                    const Tuple& tuple) const {
  PREFREP_ASSIGN_OR_RETURN(int rel, RelationIndex(relation_name));
  PREFREP_ASSIGN_OR_RETURN(int row, relations_[rel].Find(tuple));
  return relation_global_ids_[rel][row];
}

DynamicBitset Database::RelationMask(int relation_index) const {
  DynamicBitset mask(tuple_count());
  for (TupleId id : relation_global_ids_[relation_index]) mask.Set(id);
  return mask;
}

Database Database::Induce(const DynamicBitset& keep) const {
  CHECK_EQ(keep.size(), tuple_count());
  Database out;
  for (const Relation& rel : relations_) {
    Status st = out.AddRelation(rel.schema());
    CHECK(st.ok()) << st.ToString();
  }
  // Preserve global insertion order so induced ids remain deterministic.
  ForEachSetBit(keep, [&](TupleId id) {
    const Location& loc = locations_[id];
    auto inserted =
        out.Insert(relations_[loc.relation].schema().relation_name(),
                   relations_[loc.relation].tuple(loc.row),
                   relations_[loc.relation].meta(loc.row));
    CHECK(inserted.ok()) << inserted.status().ToString();
  });
  return out;
}

std::string Database::DescribeTuple(TupleId id) const {
  const Location& loc = locations_[id];
  const Relation& rel = relations_[loc.relation];
  std::string out =
      rel.schema().relation_name() + rel.tuple(loc.row).ToString();
  const TupleMeta& meta = rel.meta(loc.row);
  if (meta.source_id != TupleMeta::kNoSource ||
      meta.timestamp != TupleMeta::kNoTimestamp) {
    out += "  [";
    if (meta.source_id != TupleMeta::kNoSource) {
      out += "source=" + std::to_string(meta.source_id);
    }
    if (meta.timestamp != TupleMeta::kNoTimestamp) {
      if (meta.source_id != TupleMeta::kNoSource) out += " ";
      out += "ts=" + std::to_string(meta.timestamp);
    }
    out += "]";
  }
  return out;
}

std::string Database::ToString() const {
  std::string out;
  for (const Relation& rel : relations_) {
    out += rel.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace prefrep
