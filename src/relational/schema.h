// Relation schemas: a named relation with a list of typed attributes.

#ifndef PREFREP_RELATIONAL_SCHEMA_H_
#define PREFREP_RELATIONAL_SCHEMA_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "relational/value.h"

namespace prefrep {

struct Attribute {
  std::string name;
  ValueType type;
};

class Schema {
 public:
  Schema() = default;
  Schema(std::string relation_name, std::vector<Attribute> attributes)
      : relation_name_(std::move(relation_name)),
        attributes_(std::move(attributes)) {}

  // Validates: non-empty identifier names, no duplicate attributes.
  static Result<Schema> Create(std::string relation_name,
                               std::vector<Attribute> attributes);

  const std::string& relation_name() const { return relation_name_; }
  int arity() const { return static_cast<int>(attributes_.size()); }
  const std::vector<Attribute>& attributes() const { return attributes_; }
  const Attribute& attribute(int i) const { return attributes_[i]; }

  // Index of the attribute named `name`, or kNotFound.
  Result<int> AttributeIndex(std::string_view name) const;
  bool HasAttribute(std::string_view name) const;

  // E.g. "Mgr(Name:name, Dept:name, Salary:number, Reports:number)".
  std::string ToString() const;

  friend bool operator==(const Schema& a, const Schema& b);

 private:
  std::string relation_name_;
  std::vector<Attribute> attributes_;
};

}  // namespace prefrep

#endif  // PREFREP_RELATIONAL_SCHEMA_H_
