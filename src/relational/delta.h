// DatabaseDelta: a batched set of inserts and deletes against one base
// Database version, validated eagerly, applied as a whole.
//
// A delta is the unit of update for the incremental-maintenance path
// (server/snapshot.h's Snapshot::Derive): instead of mutating a database
// in place — impossible under the MVCC contract, snapshots are immutable —
// callers stage changes against a base version and Apply() produces the
// successor version. Values inside staged tuples go through the same
// SymbolTable interning as any other Value (value.h), so tuples staged in
// a delta compare and hash exactly like resident ones.
//
// Canonical post-delta tuple-id order (what Apply produces, what every
// equivalence test pins, and what Snapshot::Derive's remap reasoning
// relies on): surviving base tuples keep their relative global-id order
// and are renumbered densely from 0, then pending inserts follow in delta
// order. The old→new id map is therefore monotone, and every id below
// `DeltaRemap::first_shifted` maps to itself — the "identity region" that
// lets derived sessions keep cache entries keyed by tuple ids.
//
// Validation happens at staging time, against base ∪ delta state:
//   - Insert: relation must exist, the tuple must match its schema, and it
//     must not duplicate a surviving base tuple or an earlier pending
//     insert. Deleting a base tuple first and re-inserting the same values
//     is allowed (the reborn tuple gets a fresh id at the end).
//   - Delete by id: the id must be in range and not already deleted.
//     Pending inserts have no id yet and cannot be deleted by id.
//   - Delete by value: resolves against the post-delta state — a surviving
//     base tuple is staged for deletion; a value-equal pending insert is
//     un-staged instead (RemoveInsert), so staging an insert and deleting
//     the same values is a no-op pair.

#ifndef PREFREP_RELATIONAL_DELTA_H_
#define PREFREP_RELATIONAL_DELTA_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/bitset.h"
#include "base/exec_context.h"
#include "base/status.h"
#include "relational/database.h"

namespace prefrep {

// How the delta moved the global tuple-id space, old version → new.
struct DeltaRemap {
  // Size old_tuple_count; -1 for deleted ids, else the new id. Monotone on
  // survivors (survivors keep their relative order).
  std::vector<TupleId> old_to_new;
  // New ids of the delta's pending inserts, in delta order. Always at the
  // top of the new id space (>= survivor count).
  std::vector<TupleId> inserted_ids;
  // Smallest old id whose mapping is not the identity (the first deleted
  // id); every id below it denotes the same tuple in both versions. Equals
  // old_tuple_count when nothing was deleted.
  TupleId first_shifted = 0;
  int old_tuple_count = 0;
  int new_tuple_count = 0;

  bool IdentityOn(TupleId old_id) const { return old_id < first_shifted; }
};

class DatabaseDelta {
 public:
  // Borrows `base`; it must outlive the delta and stay unmodified.
  explicit DatabaseDelta(const Database* base);

  const Database& base() const { return *base_; }

  // Stages an insert (validated now, applied later).
  Status Insert(std::string_view relation_name, Tuple tuple,
                TupleMeta meta = TupleMeta{});
  // Stages a delete by global tuple id.
  Status Delete(TupleId id);
  // Stages a delete by value against the post-delta state: a surviving
  // base tuple is staged for deletion, a value-equal pending insert is
  // un-staged (see RemoveInsert). kNotFound when neither exists;
  // kAlreadyExists when the only match is a base tuple already staged for
  // deletion (with no pending re-insert).
  Status Delete(std::string_view relation_name, const Tuple& tuple);
  // Un-stages a pending insert of exactly `tuple` (kNotFound if none is
  // pending). Later pending inserts keep their relative delta order.
  Status RemoveInsert(std::string_view relation_name, const Tuple& tuple);

  bool empty() const { return inserts_.empty() && deletes_.empty(); }
  int insert_count() const { return static_cast<int>(inserts_.size()); }
  int delete_count() const { return static_cast<int>(deletes_.size()); }

  struct PendingInsert {
    int relation = 0;  // index into base().relations()
    Tuple tuple;
    TupleMeta meta;
  };
  const std::vector<PendingInsert>& inserts() const { return inserts_; }
  // Deleted base ids, ascending.
  const std::vector<TupleId>& deletes() const { return deletes_; }
  bool IsDeleted(TupleId id) const { return deleted_.Test(id); }

  // Indices of relations with at least one staged insert or delete, sorted.
  std::vector<int> TouchedRelations() const;

  // Builds the post-delta database in the canonical order documented
  // above. Fast path: untouched relations share storage with the base
  // (relation.h's copy-on-write), touched ones are rebuilt. `remap`
  // (optional) receives the id translation; `context` (optional) is polled
  // so large applies are cancellable — on interrupt the context's status
  // (kCancelled / kDeadlineExceeded) is returned and no partial database
  // escapes.
  Result<Database> Apply(DeltaRemap* remap = nullptr,
                         ExecutionContext* context = nullptr) const;

  // Reference implementation of the same semantics through the public
  // Database API only (re-insert everything). The differential tests pin
  // Apply() against this.
  Result<Database> ApplyNaive(DeltaRemap* remap = nullptr) const;

  // One line, e.g. "delta: +3/-2 tuples over 2 relations".
  std::string Describe() const;

 private:
  void FillRemap(DeltaRemap* remap) const;

  const Database* base_;
  std::vector<PendingInsert> inserts_;
  std::vector<TupleId> deletes_;  // sorted ascending
  DynamicBitset deleted_;         // over base tuple ids
  // Pending-insert tuples per relation, for duplicate staging checks.
  std::unordered_map<int, std::unordered_set<Tuple, Tuple::Hash>>
      pending_by_relation_;
};

// Occurrence counts of every Value in a database — the active domain with
// multiplicities. PreparedQuery quantifier domains are drawn from the
// active domain of the WHOLE database, so a derived snapshot can only
// reuse parent-compiled artifacts when the domain is unchanged; the census
// makes that check O(delta) instead of O(database).
class ValueCensus {
 public:
  static ValueCensus Of(const Database& db);

  // Folds the delta's value-count changes in. Returns true iff the SET of
  // distinct values (the active domain) is unchanged — every value removed
  // for the last time or introduced for the first time returns false.
  bool Apply(const DatabaseDelta& delta);

  size_t distinct_values() const { return counts_.size(); }

 private:
  std::unordered_map<Value, int64_t, Value::Hash> counts_;
};

}  // namespace prefrep

#endif  // PREFREP_RELATIONAL_DELTA_H_
