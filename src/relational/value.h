// Value: an element of one of the paper's two disjoint domains.
//
// The paper (§2) works over uninterpreted names D and natural numbers N.
// Constants with different names are different (unique-name assumption);
// the order predicates <, > are interpreted over N only.

#ifndef PREFREP_RELATIONAL_VALUE_H_
#define PREFREP_RELATIONAL_VALUE_H_

#include <cstdint>
#include <string>
#include <utility>

#include "base/logging.h"

namespace prefrep {

enum class ValueType : uint8_t {
  kName = 0,    // uninterpreted constant from D
  kNumber = 1,  // natural number / integer from N
};

std::string_view ValueTypeName(ValueType type);

class Value {
 public:
  // Default: the number 0 (needed for container resizing).
  Value() : type_(ValueType::kNumber), number_(0) {}

  static Value Name(std::string name) {
    Value v;
    v.type_ = ValueType::kName;
    v.number_ = 0;
    v.name_ = std::move(name);
    return v;
  }
  static Value Number(int64_t n) {
    Value v;
    v.type_ = ValueType::kNumber;
    v.number_ = n;
    return v;
  }

  ValueType type() const { return type_; }
  bool is_name() const { return type_ == ValueType::kName; }
  bool is_number() const { return type_ == ValueType::kNumber; }

  const std::string& name() const {
    DCHECK(is_name());
    return name_;
  }
  int64_t number() const {
    DCHECK(is_number());
    return number_;
  }

  // Names print raw; numbers print in decimal.
  std::string ToString() const {
    return is_name() ? name_ : std::to_string(number_);
  }

  // Equality across the two domains is always false (the domains are
  // disjoint), matching the paper's semantics of '='.
  friend bool operator==(const Value& a, const Value& b) {
    if (a.type_ != b.type_) return false;
    return a.is_name() ? a.name_ == b.name_ : a.number_ == b.number_;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

  // Canonical total order for sorting / deduplication only. This is NOT the
  // query-language '<' (which is defined only on numbers); see
  // query/evaluator.h for the semantic comparison.
  friend bool operator<(const Value& a, const Value& b) {
    if (a.type_ != b.type_) return a.type_ < b.type_;
    return a.is_name() ? a.name_ < b.name_ : a.number_ < b.number_;
  }

  struct Hash {
    size_t operator()(const Value& v) const {
      std::hash<std::string> hs;
      std::hash<int64_t> hn;
      size_t base = v.is_name() ? hs(v.name_) : hn(v.number_);
      return base * 31 + static_cast<size_t>(v.type_);
    }
  };

 private:
  ValueType type_;
  int64_t number_;
  std::string name_;
};

}  // namespace prefrep

#endif  // PREFREP_RELATIONAL_VALUE_H_
