// Value: an element of one of the paper's two disjoint domains.
//
// The paper (§2) works over uninterpreted names D and natural numbers N.
// Constants with different names are different (unique-name assumption);
// the order predicates <, > are interpreted over N only.
//
// Names are interned in the process-wide SymbolTable, so a Value is a
// trivially copyable 16-byte tagged scalar: equality and hashing are O(1)
// integer operations regardless of name length, and tuples of Values are
// flat contiguous buffers with no per-value heap allocation. This is the
// foundation the repair-enumeration hot loops build on (query/prepared.h):
// evaluating a query in 2^n repairs copies and compares values constantly,
// and none of that should ever touch string data.

#ifndef PREFREP_RELATIONAL_VALUE_H_
#define PREFREP_RELATIONAL_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>

#include "base/logging.h"
#include "relational/symbol_table.h"

namespace prefrep {

enum class ValueType : uint8_t {
  kName = 0,    // uninterpreted constant from D
  kNumber = 1,  // natural number / integer from N
};

std::string_view ValueTypeName(ValueType type);

class Value {
 public:
  // Default: the number 0 (needed for container resizing).
  constexpr Value() : type_(ValueType::kNumber), name_id_(0), number_(0) {}

  // Interns `name` in SymbolTable::Global() (a no-op when already known).
  static Value Name(std::string_view name) {
    return InternedName(SymbolTable::Global().Intern(name));
  }
  // Wraps an id previously returned by SymbolTable::Global().Intern().
  static Value InternedName(uint32_t id) {
    Value v;
    v.type_ = ValueType::kName;
    v.name_id_ = id;
    return v;
  }
  static constexpr Value Number(int64_t n) {
    Value v;
    v.type_ = ValueType::kNumber;
    v.number_ = n;
    return v;
  }

  ValueType type() const { return type_; }
  bool is_name() const { return type_ == ValueType::kName; }
  bool is_number() const { return type_ == ValueType::kNumber; }

  const std::string& name() const {
    DCHECK(is_name());
    return SymbolTable::Global().NameOf(name_id_);
  }
  uint32_t name_id() const {
    DCHECK(is_name());
    return name_id_;
  }
  int64_t number() const {
    DCHECK(is_number());
    return number_;
  }

  // Names print raw; numbers print in decimal.
  std::string ToString() const {
    return is_name() ? name() : std::to_string(number_);
  }

  // Equality across the two domains is always false (the domains are
  // disjoint), matching the paper's semantics of '='. O(1): interned names
  // compare by id.
  friend bool operator==(const Value& a, const Value& b) {
    if (a.type_ != b.type_) return false;
    return a.is_name() ? a.name_id_ == b.name_id_ : a.number_ == b.number_;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

  // Canonical total order for sorting / deduplication only: numbers by
  // value, names lexicographically (so answer sets and dumps stay in the
  // familiar order regardless of intern order). This is NOT the
  // query-language '<' (which is defined only on numbers); see
  // query/evaluator.h for the semantic comparison.
  friend bool operator<(const Value& a, const Value& b) {
    if (a.type_ != b.type_) return a.type_ < b.type_;
    if (a.is_number()) return a.number_ < b.number_;
    if (a.name_id_ == b.name_id_) return false;
    return a.name() < b.name();
  }

  struct Hash {
    size_t operator()(const Value& v) const {
      // splitmix64-style mix over the 64-bit payload; O(1) for names too.
      uint64_t x =
          v.is_name() ? v.name_id_ : static_cast<uint64_t>(v.number_);
      x += 0x9e3779b97f4a7c15ull + static_cast<uint64_t>(v.type_);
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      return static_cast<size_t>(x ^ (x >> 31));
    }
  };

 private:
  ValueType type_;
  uint32_t name_id_;  // valid when kName
  int64_t number_;    // valid when kNumber
};

static_assert(std::is_trivially_copyable_v<Value>,
              "Value must stay a trivially copyable scalar");
static_assert(sizeof(Value) == 16, "Value must stay a 16-byte scalar");

}  // namespace prefrep

#endif  // PREFREP_RELATIONAL_VALUE_H_
