// SymbolTable: interns name strings to dense uint32_t ids.
//
// The paper's uninterpreted domain D is a set of opaque constants whose
// only meaningful operation is equality. Interning makes that literal:
// every distinct name string is stored once and identified by a dense
// id, so Value comparison and hashing are O(1) integer operations and
// Value itself is a trivially copyable 16-byte scalar (relational/value.h).
//
// Ids are assigned in first-intern order and are stable for the lifetime
// of the table. A process-wide table (SymbolTable::Global()) backs Value;
// separate instances exist only for unit testing the container itself.
// Interned strings are never freed — the name universe of a workload is
// tiny compared to its tuple count.
//
// Concurrency: Intern (the ingest path) serializes through a mutex;
// NameOf (the read path, hit by Value::name() and canonical name
// ordering inside evaluation loops) is lock-free. Strings live in
// fixed-size chunks whose addresses never change; a reader holding an id
// handed out by Intern always sees a fully constructed string.

#ifndef PREFREP_RELATIONAL_SYMBOL_TABLE_H_
#define PREFREP_RELATIONAL_SYMBOL_TABLE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "base/logging.h"

namespace prefrep {

class SymbolTable {
 public:
  SymbolTable() = default;
  ~SymbolTable();
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  // The process-wide table used by Value. Never destroyed (leaked on
  // purpose so Values in static destructors stay valid).
  static SymbolTable& Global();

  // Id of `text`, interning it on first sight. Ids are dense: the k-th
  // distinct string interned gets id k.
  uint32_t Intern(std::string_view text);

  // The string behind an id. Lock-free; the reference is stable for the
  // lifetime of the table. Ids must come from Intern — checked even in
  // release builds, since an out-of-range id would otherwise read another
  // symbol's string or dereference an unpublished chunk.
  const std::string& NameOf(uint32_t id) const {
    CHECK(id < size()) << "symbol id " << id << " was never interned";
    return ChunkOf(id)[id % kChunkSize];
  }

  // True iff `text` has been interned (does not intern).
  bool Contains(std::string_view text) const;

  // Number of distinct strings interned so far.
  size_t size() const { return size_.load(std::memory_order_acquire); }

 private:
  // 4096-string chunks; chunk addresses never change once published, so
  // readers index without synchronization beyond the acquire load.
  static constexpr size_t kChunkSize = 4096;
  static constexpr size_t kMaxChunks = 1 << 14;  // up to 2^26 symbols

  const std::string* ChunkOf(uint32_t id) const {
    return chunks_[id / kChunkSize].load(std::memory_order_acquire);
  }

  mutable std::mutex mu_;  // serializes Intern / map lookups
  std::atomic<size_t> size_{0};
  std::atomic<std::string*> chunks_[kMaxChunks] = {};
  // Keys are views into chunk storage (stable for the table's lifetime).
  std::unordered_map<std::string_view, uint32_t> ids_;
};

}  // namespace prefrep

#endif  // PREFREP_RELATIONAL_SYMBOL_TABLE_H_
