#include "relational/delta.h"

#include <algorithm>
#include <utility>

namespace prefrep {

DatabaseDelta::DatabaseDelta(const Database* base)
    : base_(base), deleted_(base->tuple_count()) {
  CHECK(base != nullptr);
}

Status DatabaseDelta::Insert(std::string_view relation_name, Tuple tuple,
                             TupleMeta meta) {
  PREFREP_ASSIGN_OR_RETURN(int rel, base_->RelationIndex(relation_name));
  const Relation& relation = base_->relations()[rel];
  PREFREP_RETURN_IF_ERROR(ValidateTuple(relation.schema(), tuple));
  // Duplicate against the post-delta state: a surviving base tuple or an
  // earlier pending insert. A base tuple already staged for deletion does
  // not block re-insertion.
  Result<int> row = relation.Find(tuple);
  if (row.ok() && !deleted_.Test(base_->GlobalId(rel, *row))) {
    return Status::AlreadyExists("duplicate tuple " + tuple.ToString() +
                                 " in relation '" +
                                 relation.schema().relation_name() + "'");
  }
  auto& pending = pending_by_relation_[rel];
  if (pending.contains(tuple)) {
    return Status::AlreadyExists("tuple " + tuple.ToString() +
                                 " already staged for insert into '" +
                                 relation.schema().relation_name() + "'");
  }
  pending.insert(tuple);
  inserts_.push_back(PendingInsert{rel, std::move(tuple), meta});
  return Status::Ok();
}

Status DatabaseDelta::Delete(TupleId id) {
  if (id < 0 || id >= base_->tuple_count()) {
    return Status::InvalidArgument("tuple id " + std::to_string(id) +
                                   " out of range [0, " +
                                   std::to_string(base_->tuple_count()) + ")");
  }
  if (deleted_.Test(id)) {
    return Status::AlreadyExists("tuple id " + std::to_string(id) +
                                 " already staged for deletion");
  }
  deleted_.Set(id);
  deletes_.insert(std::lower_bound(deletes_.begin(), deletes_.end(), id), id);
  return Status::Ok();
}

Status DatabaseDelta::Delete(std::string_view relation_name,
                             const Tuple& tuple) {
  // Resolve against the POST-delta state, not just the base: a surviving
  // base tuple is staged for deletion, while a value-equal pending insert
  // (including a re-insert of a deleted base tuple) is simply un-staged.
  Result<TupleId> id = base_->FindTuple(relation_name, tuple);
  if (id.ok() && !deleted_.Test(*id)) return Delete(*id);
  Status removed = RemoveInsert(relation_name, tuple);
  if (removed.ok() || removed.code() != StatusCode::kNotFound) return removed;
  // Nothing pending either; report the base-side resolution failure
  // (kNotFound, or kAlreadyExists for an already-staged deletion).
  if (id.ok()) {
    return Status::AlreadyExists("tuple id " + std::to_string(*id) +
                                 " already staged for deletion");
  }
  return id.status();
}

Status DatabaseDelta::RemoveInsert(std::string_view relation_name,
                                   const Tuple& tuple) {
  PREFREP_ASSIGN_OR_RETURN(int rel, base_->RelationIndex(relation_name));
  auto pending = pending_by_relation_.find(rel);
  if (pending == pending_by_relation_.end() ||
      !pending->second.contains(tuple)) {
    return Status::NotFound("no pending insert of " + tuple.ToString() +
                            " into '" + std::string(relation_name) + "'");
  }
  pending->second.erase(tuple);
  for (auto it = inserts_.begin(); it != inserts_.end(); ++it) {
    if (it->relation == rel && it->tuple == tuple) {
      inserts_.erase(it);
      break;
    }
  }
  return Status::Ok();
}

std::vector<int> DatabaseDelta::TouchedRelations() const {
  std::vector<bool> touched(base_->relation_count(), false);
  for (const PendingInsert& insert : inserts_) touched[insert.relation] = true;
  for (TupleId id : deletes_) touched[base_->RelationIndexOf(id)] = true;
  std::vector<int> out;
  for (int rel = 0; rel < base_->relation_count(); ++rel) {
    if (touched[rel]) out.push_back(rel);
  }
  return out;
}

void DatabaseDelta::FillRemap(DeltaRemap* remap) const {
  remap->old_tuple_count = base_->tuple_count();
  remap->new_tuple_count =
      base_->tuple_count() - delete_count() + insert_count();
  remap->first_shifted =
      deletes_.empty() ? base_->tuple_count() : deletes_.front();
  remap->old_to_new.assign(base_->tuple_count(), -1);
  TupleId next = 0;
  for (TupleId id = 0; id < base_->tuple_count(); ++id) {
    if (!deleted_.Test(id)) remap->old_to_new[id] = next++;
  }
  remap->inserted_ids.clear();
  remap->inserted_ids.reserve(inserts_.size());
  for (size_t i = 0; i < inserts_.size(); ++i) {
    remap->inserted_ids.push_back(next++);
  }
  CHECK_EQ(next, remap->new_tuple_count);
}

Result<Database> DatabaseDelta::Apply(DeltaRemap* remap,
                                      ExecutionContext* context) const {
  const int old_count = base_->tuple_count();
  const int rel_count = base_->relation_count();
  std::vector<bool> touched(rel_count, false);
  std::vector<bool> has_deletes(rel_count, false);
  for (const PendingInsert& insert : inserts_) touched[insert.relation] = true;
  for (TupleId id : deletes_) {
    touched[base_->RelationIndexOf(id)] = true;
    has_deletes[base_->RelationIndexOf(id)] = true;
  }

  Database out;
  out.relation_index_ = base_->relation_index_;
  out.relations_.reserve(rel_count);
  for (int rel = 0; rel < rel_count; ++rel) {
    if (!has_deletes[rel]) {
      // Share storage with the base (copy-on-write Relation); relations
      // with pending inserts clone lazily on the first AddTuple below.
      out.relations_.push_back(base_->relations_[rel]);
    } else {
      // Rebuild survivors in row order (== ascending global id).
      Relation rebuilt(base_->relations_[rel].schema());
      const Relation& source = base_->relations_[rel];
      for (int row = 0; row < source.size(); ++row) {
        if ((row & 1023) == 0 && context != nullptr && context->ShouldStop()) {
          return context->status();
        }
        if (deleted_.Test(base_->GlobalId(rel, row))) continue;
        Result<int> added = rebuilt.AddTuple(source.tuple(row),
                                             source.meta(row));
        CHECK(added.ok()) << added.status().ToString();
      }
      out.relations_.push_back(std::move(rebuilt));
    }
  }

  // Global id space: survivors in old global order, then inserts in delta
  // order (the canonical order documented in the header).
  out.relation_global_ids_.assign(rel_count, {});
  out.locations_.reserve(old_count - delete_count() + insert_count());
  std::vector<int> next_row(rel_count, 0);
  for (TupleId id = 0; id < old_count; ++id) {
    if ((id & 4095) == 0 && context != nullptr && context->ShouldStop()) {
      return context->status();
    }
    if (deleted_.Test(id)) continue;
    int rel = base_->RelationIndexOf(id);
    TupleId new_id = static_cast<TupleId>(out.locations_.size());
    out.locations_.push_back(Database::Location{rel, next_row[rel]++});
    out.relation_global_ids_[rel].push_back(new_id);
  }
  for (const PendingInsert& insert : inserts_) {
    if (context != nullptr && context->ShouldStop()) return context->status();
    Result<int> row = out.relations_[insert.relation].AddTuple(insert.tuple,
                                                               insert.meta);
    if (!row.ok()) return row.status();
    CHECK_EQ(*row, next_row[insert.relation]);
    ++next_row[insert.relation];
    TupleId new_id = static_cast<TupleId>(out.locations_.size());
    out.locations_.push_back(Database::Location{insert.relation, *row});
    out.relation_global_ids_[insert.relation].push_back(new_id);
  }
  if (remap != nullptr) FillRemap(remap);
  return out;
}

Result<Database> DatabaseDelta::ApplyNaive(DeltaRemap* remap) const {
  Database out;
  for (const Relation& rel : base_->relations()) {
    PREFREP_RETURN_IF_ERROR(out.AddRelation(rel.schema()));
  }
  for (TupleId id = 0; id < base_->tuple_count(); ++id) {
    if (deleted_.Test(id)) continue;
    const Relation& rel = base_->relations()[base_->RelationIndexOf(id)];
    PREFREP_RETURN_IF_ERROR(
        out.Insert(rel.schema().relation_name(), base_->TupleOf(id),
                   base_->MetaOf(id))
            .status());
  }
  for (const PendingInsert& insert : inserts_) {
    const Relation& rel = base_->relations()[insert.relation];
    PREFREP_RETURN_IF_ERROR(
        out.Insert(rel.schema().relation_name(), insert.tuple, insert.meta)
            .status());
  }
  if (remap != nullptr) FillRemap(remap);
  return out;
}

std::string DatabaseDelta::Describe() const {
  return "delta: +" + std::to_string(insert_count()) + "/-" +
         std::to_string(delete_count()) + " tuples over " +
         std::to_string(TouchedRelations().size()) + " relations";
}

ValueCensus ValueCensus::Of(const Database& db) {
  ValueCensus census;
  for (TupleId id = 0; id < db.tuple_count(); ++id) {
    const Tuple& tuple = db.TupleOf(id);
    for (int i = 0; i < tuple.arity(); ++i) ++census.counts_[tuple.value(i)];
  }
  return census;
}

bool ValueCensus::Apply(const DatabaseDelta& delta) {
  // Net count change per value first: a delete of a value's last occurrence
  // paired with an insert of the same value leaves the domain unchanged.
  std::unordered_map<Value, int64_t, Value::Hash> change;
  for (TupleId id : delta.deletes()) {
    const Tuple& tuple = delta.base().TupleOf(id);
    for (int i = 0; i < tuple.arity(); ++i) --change[tuple.value(i)];
  }
  for (const DatabaseDelta::PendingInsert& insert : delta.inserts()) {
    for (int i = 0; i < insert.tuple.arity(); ++i) {
      ++change[insert.tuple.value(i)];
    }
  }
  bool preserved = true;
  for (const auto& [value, diff] : change) {
    if (diff == 0) continue;
    auto it = counts_.find(value);
    int64_t before = it == counts_.end() ? 0 : it->second;
    int64_t after = before + diff;
    CHECK_GE(after, 0);
    if ((before > 0) != (after > 0)) preserved = false;
    if (after == 0) {
      if (it != counts_.end()) counts_.erase(it);
    } else if (it == counts_.end()) {
      counts_.emplace(value, after);
    } else {
      it->second = after;
    }
  }
  return preserved;
}

}  // namespace prefrep
