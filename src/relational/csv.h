// CSV import/export for relations.
//
// Format: one tuple per line, comma-separated, values parsed according to
// the schema's attribute types. Optional trailing provenance columns
// "@source" and "@ts" (in that order) populate TupleMeta. Lines starting
// with '#' and blank lines are skipped. No quoting: names must not contain
// commas or newlines.

#ifndef PREFREP_RELATIONAL_CSV_H_
#define PREFREP_RELATIONAL_CSV_H_

#include <string>
#include <string_view>

#include "base/status.h"
#include "relational/database.h"

namespace prefrep {

struct CsvOptions {
  // Whether the trailing "@source,@ts" provenance columns are present.
  bool with_provenance = false;
};

// Parses `text` and inserts all tuples into relation `relation_name` of `db`.
// Returns the number of tuples inserted.
Result<int> LoadCsv(Database& db, std::string_view relation_name,
                    std::string_view text, CsvOptions options = {});

// Serializes a relation (all tuples) to CSV, inverse of LoadCsv.
Result<std::string> DumpCsv(const Database& db, std::string_view relation_name,
                            CsvOptions options = {});

}  // namespace prefrep

#endif  // PREFREP_RELATIONAL_CSV_H_
