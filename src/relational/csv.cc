#include "relational/csv.h"

#include "base/strings.h"

namespace prefrep {

Result<int> LoadCsv(Database& db, std::string_view relation_name,
                    std::string_view text, CsvOptions options) {
  PREFREP_ASSIGN_OR_RETURN(const Relation* rel, db.relation(relation_name));
  const Schema& schema = rel->schema();
  int expected_fields = schema.arity() + (options.with_provenance ? 2 : 0);

  int inserted = 0;
  int line_no = 0;
  for (const std::string& raw_line : StrSplit(text, '\n')) {
    ++line_no;
    std::string_view line = StripWhitespace(raw_line);
    if (line.empty() || line[0] == '#') continue;

    std::vector<std::string> fields = StrSplit(line, ',');
    if (static_cast<int>(fields.size()) != expected_fields) {
      return Status::ParseError(
          "line " + std::to_string(line_no) + ": expected " +
          std::to_string(expected_fields) + " fields, got " +
          std::to_string(fields.size()));
    }

    std::vector<Value> values;
    values.reserve(schema.arity());
    for (int i = 0; i < schema.arity(); ++i) {
      std::string_view field = StripWhitespace(fields[i]);
      if (schema.attribute(i).type == ValueType::kNumber) {
        auto parsed = ParseInt64(field);
        if (!parsed.ok()) {
          return Status::ParseError("line " + std::to_string(line_no) + ": " +
                                    parsed.status().message());
        }
        values.push_back(Value::Number(*parsed));
      } else {
        // Interns directly from the field view; no temporary string.
        values.push_back(Value::Name(field));
      }
    }

    TupleMeta meta;
    if (options.with_provenance) {
      auto source = ParseInt64(StripWhitespace(fields[schema.arity()]));
      auto ts = ParseInt64(StripWhitespace(fields[schema.arity() + 1]));
      if (!source.ok() || !ts.ok()) {
        return Status::ParseError("line " + std::to_string(line_no) +
                                  ": bad provenance columns");
      }
      meta.source_id = static_cast<int>(*source);
      meta.timestamp = *ts;
    }

    auto id = db.Insert(relation_name, Tuple(std::move(values)), meta);
    if (!id.ok()) {
      return Status::ParseError("line " + std::to_string(line_no) + ": " +
                                id.status().message());
    }
    ++inserted;
  }
  return inserted;
}

Result<std::string> DumpCsv(const Database& db, std::string_view relation_name,
                            CsvOptions options) {
  PREFREP_ASSIGN_OR_RETURN(const Relation* rel, db.relation(relation_name));
  std::string out;
  for (int row = 0; row < rel->size(); ++row) {
    const Tuple& t = rel->tuple(row);
    for (int i = 0; i < t.arity(); ++i) {
      if (i > 0) out += ",";
      out += t.value(i).ToString();
    }
    if (options.with_provenance) {
      const TupleMeta& meta = rel->meta(row);
      out += "," + std::to_string(meta.source_id);
      out += "," + std::to_string(meta.timestamp);
    }
    out += "\n";
  }
  return out;
}

}  // namespace prefrep
