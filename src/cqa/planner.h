// CQA planner: routes every consistent-query-answering call to the
// cheapest sound algorithm, falling back to the sharded enumeration
// engine when no shortcut applies.
//
// The classifier looks at four inputs — query shape (query/ast.h's
// QueryShape), repair family, priority shape, and instance shape — and
// picks a tier:
//
//   Tier 0, kSingleRepair: the database is conflict-free, so its unique
//     repair is the database itself for *every* family and priority.
//     CQA degenerates to one plain evaluation: no component
//     decomposition, no materialization, no product walk.
//   Tier 1, kGroundFastPath: the plan is Rep-equivalent — the requested
//     family is kAll, or the priority is empty and P3 collapses any
//     family to Rep (core/families.h EffectiveFamily) — and the query
//     fits a polynomial engine: closed ground quantifier-free queries go
//     to GroundConsistentVerdict (the paper's Fig. 5 first row),
//     quantifier-free negation-free open queries to
//     GroundConsistentOpenAnswers, and COUNT(*) aggregation to
//     CountStarRange. Data-polynomial; never enumerates repairs.
//   Tier 2, kEnumeration: the sharded repair-product engine
//     (EnumeratedConsistentAnswer[s]) — always sound, exponential in the
//     worst case.
//
// ExplainPlan exposes the decision so tests, benches, and the shell can
// assert which tier fires; the Planned* entry points plan and execute,
// reporting the tier that actually ran (a tier-1 plan whose DNF
// conversion blows the budget falls back to tier 2 at runtime).
//
// Equivalence of the tiers is pinned by the randomized differential
// suite in tests/planner_test.cc: planner-forced fast paths against
// planner-forced enumeration, across all five families, both priority
// kinds, and every query shape class.

#ifndef PREFREP_CQA_PLANNER_H_
#define PREFREP_CQA_PLANNER_H_

#include <optional>
#include <string>
#include <string_view>

#include "base/eval_options.h"
#include "base/status.h"
#include "base/thread_pool.h"
#include "cqa/aggregation.h"
#include "cqa/cqa.h"
#include "core/families.h"
#include "priority/priority.h"
#include "query/ast.h"
#include "repair/repair.h"

namespace prefrep {

class PreparedQuery;

// CqaTier itself lives in base/eval_options.h (so the consolidated
// EvalOptions can carry force_tier below the cqa layer); this header is
// its documentation home and re-exports it by inclusion.

// "single-repair", "ground-fast-path", "enumeration".
std::string_view CqaTierName(CqaTier tier);

// Which entry point the plan is for: the two differ in what tier 1 can
// handle (a closed ground query has a polynomial verdict; an open query
// needs quantifier-freeness and monotonicity instead).
enum class CqaRequest {
  kVerdict,      // PreferredConsistentAnswer (closed query)
  kOpenAnswers,  // PreferredConsistentAnswers
};

struct CqaPlan {
  CqaTier tier = CqaTier::kEnumeration;
  RepairFamily requested_family = RepairFamily::kAll;
  // kAll when the priority is empty (P3), `requested_family` otherwise.
  // Tier 2 also executes under this: an empty priority makes the
  // optimality filters (G-Rep's quadratic certificate, C-Rep's memoized
  // walk) pure overhead, so the planner strips them.
  RepairFamily effective_family = RepairFamily::kAll;
  bool family_collapsed = false;  // effective_family != requested_family
  std::string reason;             // one-line routing rationale

  // E.g. "tier 1 (ground-fast-path): G-Rep collapsed to Rep (empty
  // priority); ground quantifier-free query".
  std::string ToString() const;
};

struct CqaPlannerOptions {
  // Forces a tier instead of planning (the differential tests and the
  // dispatch bench). Forcing kSingleRepair on a database with conflicts,
  // or kGroundFastPath on a (plan, query) outside its scope, fails with
  // kInvalidArgument rather than computing an unsound answer; forcing
  // kGroundFastPath past the DNF budget surfaces kResourceExhausted
  // instead of falling back.
  std::optional<CqaTier> force_tier;
  // DNF budget for the tier-1 ground engine. ExplainPlan pre-checks the
  // conversion under this budget (query-size-dependent work only), so
  // oversized queries plan straight to tier 2.
  size_t max_dnf_disjuncts = kDefaultDnfDisjunctBudget;
  // Tier-2 sharding knob, forwarded to the enumeration engine.
  ParallelOptions parallel;

  // --- resident-server seams (src/server/session.h) -----------------------
  // A PreparedQuery previously compiled against problem.db() for the SAME
  // query: tier 0 and tier 2 then skip PreparedQuery::Compile and evaluate
  // private copies of it (the object itself is never mutated, so one
  // cached master can serve concurrent calls). Owned by the caller; must
  // outlive the call.
  const PreparedQuery* prepared = nullptr;
  // A CqaPlan previously returned by ExplainPlan for the SAME
  // (problem, priority, family, query, request, max_dnf_disjuncts) inputs:
  // the dispatch then skips re-planning (including the DNF pre-attempt).
  // Ignored when force_tier is set. Owned by the caller.
  const CqaPlan* precomputed_plan = nullptr;
};

// Classifies (query shape, family, priority shape, instance shape)
// without touching the repair space. Deterministic and cheap: the only
// non-O(query) work is the conflict-count check and, for would-be tier-1
// plans, the DNF conversion attempt (exponential in the fixed query
// size, capped by the budget — never data-dependent).
CqaPlan ExplainPlan(const RepairProblem& problem, const Priority& priority,
                    RepairFamily family, const Query& query,
                    CqaRequest request, const CqaPlannerOptions& options = {});

// Plan + dispatch for PreferredConsistentAnswer. `executed` (optional)
// receives the plan that actually ran, after any runtime fallback.
Result<CqaVerdict> PlannedConsistentAnswer(
    const RepairProblem& problem, const Priority& priority,
    RepairFamily family, const Query& query,
    const CqaPlannerOptions& options = {}, CqaPlan* executed = nullptr);

// Plan + dispatch for PreferredConsistentAnswers (open queries; a closed
// query degenerates to the zero-variable answer set).
Result<OpenAnswer> PlannedConsistentAnswers(
    const RepairProblem& problem, const Priority& priority,
    RepairFamily family, const Query& query,
    const CqaPlannerOptions& options = {}, CqaPlan* executed = nullptr);

// Plan + dispatch for aggregation ranges: COUNT under a Rep-equivalent
// plan routes to the polynomial per-component CountStarRange; everything
// else enumerates via AggregateConsistentRange (under the effective
// family). Conflict-free instances aggregate the database once.
Result<AggregateRange> PlannedAggregateRange(
    const RepairProblem& problem, const Priority& priority,
    RepairFamily family, std::string_view relation,
    std::string_view attribute, AggregateFunction fn,
    const CqaPlannerOptions& options = {}, CqaPlan* executed = nullptr);

// ---------------------------------------------------------------------------
// Consolidated-options forms. One EvalOptions carries what used to be
// spread across CqaPlannerOptions + ParallelOptions + ad-hoc budget
// parameters: threads, force_tier, deadline, ExecutionLimits, context.
// Deadline/limits are enforced by a call-scoped ExecutionContext
// (EvalContextScope) when no external context is attached. Prefer these —
// and the Session facade in src/server/session.h, which adds caching —
// over the positional forms above.
//
// NOTE: passing a braced `{}` as the options argument is ambiguous between
// the two overload sets; spell the type (CqaPlannerOptions() or
// EvalOptions()) when also passing `executed`.
// ---------------------------------------------------------------------------

Result<CqaVerdict> PlannedConsistentAnswer(
    const RepairProblem& problem, const Priority& priority,
    RepairFamily family, const Query& query, const EvalOptions& options,
    CqaPlan* executed = nullptr);

Result<OpenAnswer> PlannedConsistentAnswers(
    const RepairProblem& problem, const Priority& priority,
    RepairFamily family, const Query& query, const EvalOptions& options,
    CqaPlan* executed = nullptr);

Result<AggregateRange> PlannedAggregateRange(
    const RepairProblem& problem, const Priority& priority,
    RepairFamily family, std::string_view relation,
    std::string_view attribute, AggregateFunction fn,
    const EvalOptions& options, CqaPlan* executed = nullptr);

}  // namespace prefrep

#endif  // PREFREP_CQA_PLANNER_H_
