// Range-consistent answers to scalar aggregation queries.
//
// The paper's future work points at Arenas et al., "Scalar Aggregation in
// Inconsistent Databases" (TCS 296(3), 2003) [2]: under repair semantics a
// scalar aggregate does not have a single consistent value; the meaningful
// answer is the RANGE [glb, lub] of the aggregate across (preferred)
// repairs. This module computes exact ranges for MIN / MAX / SUM / COUNT /
// AVG of a numeric column over any preferred-repair family, plus a
// polynomial per-component algorithm for COUNT(*) ranges under plain Rep.
//
// Preferences narrow ranges: since X-Rep ⊆ Rep, the X-range is always
// contained in the Rep-range (tested in tests/aggregation_test.cc).

#ifndef PREFREP_CQA_AGGREGATION_H_
#define PREFREP_CQA_AGGREGATION_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "base/status.h"
#include "base/thread_pool.h"
#include "core/families.h"
#include "priority/priority.h"
#include "repair/repair.h"

namespace prefrep {

enum class AggregateFunction { kMin, kMax, kSum, kCount, kAvg };

std::string_view AggregateFunctionName(AggregateFunction fn);

// An inclusive range of aggregate values across the preferred repairs.
// For kAvg the bounds are exact rationals rendered as doubles; for the
// integer aggregates lo/hi are exact.
struct AggregateRange {
  // True iff some preferred repair has an empty aggregation input (e.g.
  // MIN over a relation whose tuples can all be conflicted away). Such
  // repairs contribute no value to [lo, hi].
  bool empty_possible = false;
  // Meaningless when no repair produced a value (all inputs empty).
  bool has_value = false;
  double lo = 0;
  double hi = 0;

  // "[lo, hi]" (+ " (empty possible)").
  std::string ToString() const;
};

// Exact range of `fn` applied to attribute `attribute` of relation
// `relation` across all repairs of `family` under `priority`.
// Exponential in the number of preferred repairs (co-NP-hard in general,
// per [2]); intended for moderate instances. `options.context`, when
// set, is polled once per repair; expiry/cancel surfaces as the
// context's latched kCancelled / kDeadlineExceeded status.
Result<AggregateRange> AggregateConsistentRange(
    const RepairProblem& problem, const Priority& priority,
    RepairFamily family, std::string_view relation,
    std::string_view attribute, AggregateFunction fn,
    const ParallelOptions& options = {});

// Consolidated-options form: threads, deadline and limits come from one
// EvalOptions (base/eval_options.h), enforced by a call-scoped context
// when no external one is attached. Prefer this; the positional form
// above survives as a compatibility wrapper.
Result<AggregateRange> AggregateConsistentRange(
    const RepairProblem& problem, const Priority& priority,
    RepairFamily family, std::string_view relation,
    std::string_view attribute, AggregateFunction fn,
    const EvalOptions& options);

// Polynomial special case: the COUNT(*) range of `relation` under plain
// Rep. Repair sizes decompose over connected components of the conflict
// graph: the range is the sum of per-component [min, max] maximal-
// independent-set sizes restricted to the relation. `context`, when set,
// is polled per component (and inside the per-component MIS search).
Result<AggregateRange> CountStarRange(const RepairProblem& problem,
                                      std::string_view relation,
                                      ExecutionContext* context = nullptr);

}  // namespace prefrep

#endif  // PREFREP_CQA_AGGREGATION_H_
