#include "cqa/aggregation.h"

#include <algorithm>
#include <limits>
#include <new>

#include "base/exec_context.h"
#include "graph/mis.h"

namespace prefrep {

std::string_view AggregateFunctionName(AggregateFunction fn) {
  switch (fn) {
    case AggregateFunction::kMin:
      return "MIN";
    case AggregateFunction::kMax:
      return "MAX";
    case AggregateFunction::kSum:
      return "SUM";
    case AggregateFunction::kCount:
      return "COUNT";
    case AggregateFunction::kAvg:
      return "AVG";
  }
  return "?";
}

std::string AggregateRange::ToString() const {
  if (!has_value) {
    return empty_possible ? "[empty]" : "[undefined]";
  }
  std::string out = "[" + std::to_string(lo) + ", " + std::to_string(hi) +
                    "]";
  if (empty_possible) out += " (empty possible)";
  return out;
}

namespace {

// The aggregate of one repair restricted to `relation_mask`, or nullopt
// semantics via `defined=false` when the input is empty.
struct RepairAggregate {
  bool defined = false;
  double value = 0;
};

RepairAggregate AggregateOfRepair(const RepairProblem& problem,
                                  const DynamicBitset& repair,
                                  const DynamicBitset& relation_mask,
                                  int attribute, AggregateFunction fn,
                                  DynamicBitset& rows) {
  int64_t count = 0;
  int64_t sum = 0;
  int64_t min_v = std::numeric_limits<int64_t>::max();
  int64_t max_v = std::numeric_limits<int64_t>::min();
  // `rows` is caller-provided scratch: the repair enumeration loop calls
  // this once per repair and must stay allocation-free.
  rows.AssignAnd(repair, relation_mask);
  RepairAggregate out;
  if (fn == AggregateFunction::kCount) {
    // COUNT(*) must not touch attribute values: `attribute` is a dummy
    // index and may name a non-numeric column.
    out.defined = true;
    out.value = static_cast<double>(rows.Count());
    return out;
  }
  ForEachSetBit(rows, [&](int id) {
    int64_t v = problem.db().TupleOf(id).value(attribute).number();
    ++count;
    sum += v;
    min_v = std::min(min_v, v);
    max_v = std::max(max_v, v);
  });
  if (count == 0) return out;  // MIN/MAX/SUM/AVG of an empty input
  out.defined = true;
  switch (fn) {
    case AggregateFunction::kMin:
      out.value = static_cast<double>(min_v);
      break;
    case AggregateFunction::kMax:
      out.value = static_cast<double>(max_v);
      break;
    case AggregateFunction::kSum:
      out.value = static_cast<double>(sum);
      break;
    case AggregateFunction::kAvg:
      out.value = static_cast<double>(sum) / static_cast<double>(count);
      break;
    case AggregateFunction::kCount:
      break;  // handled above
  }
  return out;
}

}  // namespace

Result<AggregateRange> AggregateConsistentRange(
    const RepairProblem& problem, const Priority& priority,
    RepairFamily family, std::string_view relation,
    std::string_view attribute, AggregateFunction fn,
    const ParallelOptions& options) try {
  ExecutionContext* context = options.context;
  PREFREP_ASSIGN_OR_RETURN(const Relation* rel,
                           problem.db().relation(relation));
  int attr = 0;
  if (fn == AggregateFunction::kCount) {
    // COUNT(*): the attribute is irrelevant; use 0.
  } else {
    PREFREP_ASSIGN_OR_RETURN(attr,
                             rel->schema().AttributeIndex(attribute));
    if (rel->schema().attribute(attr).type != ValueType::kNumber) {
      return Status::InvalidArgument("aggregate over non-numeric attribute '" +
                                     std::string(attribute) + "'");
    }
  }

  PREFREP_ASSIGN_OR_RETURN(int rel_index,
                           problem.db().RelationIndex(relation));
  DynamicBitset relation_mask = problem.db().RelationMask(rel_index);

  AggregateRange range;
  DynamicBitset rows_scratch(problem.graph().vertex_count());
  EnumeratePreferredRepairs(
      problem.graph(), priority, family, options,
      [&](const DynamicBitset& repair) {
        if (context != nullptr) {
          if (context->ShouldStop()) return false;
          context->stats().AddRepairsExamined();
        }
        RepairAggregate agg = AggregateOfRepair(problem, repair, relation_mask,
                                                attr, fn, rows_scratch);
        if (!agg.defined) {
          range.empty_possible = true;
          return true;
        }
        if (!range.has_value) {
          range.has_value = true;
          range.lo = range.hi = agg.value;
        } else {
          range.lo = std::min(range.lo, agg.value);
          range.hi = std::max(range.hi, agg.value);
        }
        return true;
      });
  // A range computed from a prefix of the repair space is not a range at
  // all — surface the interrupt instead of a too-narrow [lo, hi].
  if (context != nullptr && context->interrupted()) {
    return context->StatusWithStats();
  }
  return range;
} catch (const std::bad_alloc&) {
  return Status::ResourceExhausted(
      "allocation failed during aggregate range enumeration");
}

Result<AggregateRange> AggregateConsistentRange(
    const RepairProblem& problem, const Priority& priority,
    RepairFamily family, std::string_view relation,
    std::string_view attribute, AggregateFunction fn,
    const EvalOptions& options) {
  EvalContextScope scope(options);
  return AggregateConsistentRange(problem, priority, family, relation,
                                  attribute, fn,
                                  options.Parallel(scope.context()));
}

Result<AggregateRange> CountStarRange(const RepairProblem& problem,
                                      std::string_view relation,
                                      ExecutionContext* context) {
  PREFREP_ASSIGN_OR_RETURN(int rel_index,
                           problem.db().RelationIndex(relation));
  DynamicBitset relation_mask = problem.db().RelationMask(rel_index);

  // Repairs decompose over connected components; the minimum (maximum)
  // repair size restricted to the relation is the sum of per-component
  // minima (maxima).
  AggregateRange range;
  range.has_value = true;
  int64_t lo = 0;
  int64_t hi = 0;
  for (const std::vector<int>& component :
       problem.graph().ConnectedComponents()) {
    if (context != nullptr && context->ShouldStop()) {
      return context->StatusWithStats();
    }
    if (component.size() == 1) {
      // Isolated tuple: present in every repair.
      if (relation_mask.Test(component[0])) {
        ++lo;
        ++hi;
      }
      continue;
    }
    int comp_min = std::numeric_limits<int>::max();
    int comp_max = 0;
    for (const DynamicBitset& mis :
         ComponentMaximalIndependentSets(problem.graph(), component,
                                         context)) {
      int size = mis.IntersectionCount(relation_mask);
      comp_min = std::min(comp_min, size);
      comp_max = std::max(comp_max, size);
    }
    // An interrupted MIS search returns a truncated list whose min/max
    // say nothing about the component.
    if (context != nullptr && context->interrupted()) {
      return context->StatusWithStats();
    }
    if (context != nullptr) context->stats().AddComponentsCompleted();
    lo += comp_min;
    hi += comp_max;
  }
  range.lo = static_cast<double>(lo);
  range.hi = static_cast<double>(hi);
  return range;
}

}  // namespace prefrep
