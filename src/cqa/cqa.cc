#include "cqa/cqa.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include "query/normal_form.h"
#include "query/prepared.h"

namespace prefrep {

std::string_view CqaVerdictName(CqaVerdict verdict) {
  switch (verdict) {
    case CqaVerdict::kCertainlyTrue:
      return "certainly-true";
    case CqaVerdict::kCertainlyFalse:
      return "certainly-false";
    case CqaVerdict::kUndetermined:
      return "undetermined";
  }
  return "?";
}

Result<CqaVerdict> PreferredConsistentAnswer(const RepairProblem& problem,
                                             const Priority& priority,
                                             RepairFamily family,
                                             const Query& query) {
  if (!query.IsClosed()) {
    PREFREP_RETURN_IF_ERROR(ValidateQuery(problem.db(), query));
    return Status::InvalidArgument(
        "consistent answers need a closed query; got " + query.ToString());
  }
  // Compile once; the enumeration loop below pays only for the per-repair
  // quantifier search (query/prepared.h).
  PREFREP_ASSIGN_OR_RETURN(PreparedQuery prepared,
                           PreparedQuery::Compile(problem.db(), query));
  bool seen_true = false;
  bool seen_false = false;
  Status eval_error = Status::Ok();
  EnumeratePreferredRepairs(
      problem.graph(), priority, family, [&](const DynamicBitset& repair) {
        Result<bool> holds = prepared.EvalClosed(&repair);
        if (!holds.ok()) {
          eval_error = holds.status();
          return false;
        }
        (*holds ? seen_true : seen_false) = true;
        return !(seen_true && seen_false);  // stop once both observed
      });
  PREFREP_RETURN_IF_ERROR(eval_error);
  if (seen_true && seen_false) return CqaVerdict::kUndetermined;
  if (seen_false) return CqaVerdict::kCertainlyFalse;
  // All repairs satisfy Q (or the family was empty, which P1-families
  // never are; vacuously true then).
  return CqaVerdict::kCertainlyTrue;
}

Result<bool> IsConsistentlyTrue(const RepairProblem& problem,
                                const Priority& priority, RepairFamily family,
                                const Query& query) {
  PREFREP_ASSIGN_OR_RETURN(
      CqaVerdict verdict,
      PreferredConsistentAnswer(problem, priority, family, query));
  return verdict == CqaVerdict::kCertainlyTrue;
}

Result<OpenAnswer> PreferredConsistentAnswers(const RepairProblem& problem,
                                              const Priority& priority,
                                              RepairFamily family,
                                              const Query& query) {
  PREFREP_ASSIGN_OR_RETURN(PreparedQuery prepared,
                           PreparedQuery::Compile(problem.db(), query));
  bool first = true;
  std::set<Tuple> certain;
  std::vector<std::string> variables;
  Status eval_error = Status::Ok();
  EnumeratePreferredRepairs(
      problem.graph(), priority, family, [&](const DynamicBitset& repair) {
        Result<OpenAnswer> answer = prepared.EvalOpen(&repair);
        if (!answer.ok()) {
          eval_error = answer.status();
          return false;
        }
        if (first) {
          variables = answer->variables;
          certain.insert(answer->rows.begin(), answer->rows.end());
          first = false;
        } else {
          std::set<Tuple> here(answer->rows.begin(), answer->rows.end());
          for (auto it = certain.begin(); it != certain.end();) {
            it = here.contains(*it) ? std::next(it) : certain.erase(it);
          }
        }
        return !certain.empty() || first;  // nothing left to lose: stop
      });
  PREFREP_RETURN_IF_ERROR(eval_error);
  OpenAnswer out;
  out.variables = std::move(variables);
  out.rows.assign(certain.begin(), certain.end());
  return out;
}

namespace {

// Decides whether some repair satisfies the ground disjunct: it must
// contain all positive facts, avoid all negative ones, and all constant
// comparisons must hold.
Result<bool> DisjunctSatisfiableBySomeRepair(const RepairProblem& problem,
                                             const GroundDisjunct& disjunct) {
  const ConflictGraph& graph = problem.graph();
  int n = graph.vertex_count();

  DynamicBitset required(n);   // positive facts (must be in the repair)
  std::vector<TupleId> excluded;  // facts that must be out

  for (const GroundLiteral& lit : disjunct) {
    if (!lit.is_atom) {
      if (!lit.ComparisonHolds()) return false;
      continue;
    }
    auto id = problem.db().FindTuple(lit.relation, lit.tuple);
    if (lit.positive) {
      // A fact not in the database is in no repair.
      if (!id.ok()) return false;
      required.Set(*id);
    } else {
      // A fact not in the database is absent from every repair: trivially
      // satisfied.
      if (id.ok()) excluded.push_back(*id);
    }
  }

  // The positive part must be conflict-free.
  if (!graph.IsIndependent(required)) return false;

  // Every excluded fact must be kept out of a *maximal* independent set
  // containing `required`, i.e. blocked by a conflicting witness in the
  // repair. A fact both required and excluded is contradictory.
  std::sort(excluded.begin(), excluded.end());
  excluded.erase(std::unique(excluded.begin(), excluded.end()),
                 excluded.end());
  std::vector<TupleId> need_witness;
  for (TupleId s : excluded) {
    if (required.Test(s)) return false;
    if (graph.Neighbors(s).Intersects(required)) continue;  // already blocked
    need_witness.push_back(s);
  }

  // Backtracking over witness choices w_s ∈ n(s): the witnesses must be
  // mutually consistent and consistent with the required facts, and must
  // not be excluded facts themselves. The search depth is the number of
  // negative literals (fixed with the query), so this is data-polynomial.
  // Candidate masks come from a pooled scratch buffer per search level, so
  // the backtracking itself stays off the heap.
  DynamicBitset excluded_mask(n);
  for (TupleId s : excluded) excluded_mask.Set(s);

  BitsetPool pool(n);
  std::function<bool(size_t, DynamicBitset&)> search =
      [&](size_t index, DynamicBitset& chosen) -> bool {
    if (index == need_witness.size()) return true;
    TupleId s = need_witness[index];
    if (graph.Neighbors(s).Intersects(chosen)) {
      // Already blocked by a previously chosen witness.
      return search(index + 1, chosen);
    }
    BitsetPool::Handle candidates = pool.Acquire();
    candidates->AssignDifference(graph.Neighbors(s), excluded_mask);
    for (int w = candidates->FirstSetBit(); w >= 0;
         w = candidates->NextSetBit(w + 1)) {
      // The witness must not conflict with anything selected so far.
      if (graph.Neighbors(w).Intersects(chosen)) continue;
      chosen.Set(w);
      if (search(index + 1, chosen)) return true;
      chosen.Reset(w);
    }
    return false;
  };

  DynamicBitset chosen = required;
  return search(0, chosen);
}

// The certainty test both ground engines share: `true` is the consistent
// answer iff no repair satisfies any disjunct of the negated query's DNF.
Result<bool> NoRepairSatisfiesAnyDisjunct(
    const RepairProblem& problem, const std::vector<GroundDisjunct>& dnf) {
  for (const GroundDisjunct& disjunct : dnf) {
    PREFREP_ASSIGN_OR_RETURN(
        bool satisfiable, DisjunctSatisfiableBySomeRepair(problem, disjunct));
    if (satisfiable) return false;
  }
  return true;
}

}  // namespace

Result<bool> GroundConsistentAnswer(const RepairProblem& problem,
                                    const Query& query) {
  PREFREP_RETURN_IF_ERROR(ValidateQuery(problem.db(), query));
  if (!query.IsGround() || !query.IsQuantifierFree()) {
    return Status::InvalidArgument(
        "GroundConsistentAnswer handles ground quantifier-free queries; "
        "use PreferredConsistentAnswer for " +
        query.ToString());
  }
  std::unique_ptr<Query> negated = Query::Not(query.Clone());
  PREFREP_ASSIGN_OR_RETURN(std::vector<GroundDisjunct> dnf,
                           GroundDnf(*negated));
  return NoRepairSatisfiesAnyDisjunct(problem, dnf);
}

Result<OpenAnswer> GroundConsistentOpenAnswers(const RepairProblem& problem,
                                               const Query& query) {
  if (!query.IsQuantifierFree()) {
    return Status::InvalidArgument(
        "GroundConsistentOpenAnswers needs a quantifier-free query");
  }
  if (!IsNegationFree(query)) {
    return Status::InvalidArgument(
        "GroundConsistentOpenAnswers needs a negation-free (monotone) "
        "query; use PreferredConsistentAnswers");
  }
  // Candidates: answers over the full database (a superset of every
  // repair's answers, by monotonicity).
  PREFREP_ASSIGN_OR_RETURN(PreparedQuery prepared,
                           PreparedQuery::Compile(problem.db(), query));
  PREFREP_ASSIGN_OR_RETURN(OpenAnswer candidates, prepared.EvalOpen(nullptr));
  // Loop-invariant skeleton: the negated query's DNF is computed once;
  // each candidate row only substitutes its bindings into the disjunct
  // templates (instead of re-cloning, re-NNFing and re-DNFing the query
  // per row).
  std::unique_ptr<Query> negated = Query::Not(query.Clone());
  PREFREP_ASSIGN_OR_RETURN(std::vector<DisjunctTemplate> negated_dnf,
                           QuantifierFreeDnf(*negated));
  OpenAnswer certain;
  certain.variables = candidates.variables;
  std::map<std::string, Value> bindings;
  std::vector<GroundDisjunct> ground_dnf(negated_dnf.size());
  for (const Tuple& row : candidates.rows) {
    bindings.clear();
    for (size_t i = 0; i < certain.variables.size(); ++i) {
      bindings.emplace(certain.variables[i],
                       row.value(static_cast<int>(i)));
    }
    for (size_t d = 0; d < negated_dnf.size(); ++d) {
      PREFREP_ASSIGN_OR_RETURN(ground_dnf[d],
                               InstantiateDisjunct(negated_dnf[d], bindings));
    }
    PREFREP_ASSIGN_OR_RETURN(bool is_certain,
                             NoRepairSatisfiesAnyDisjunct(problem, ground_dnf));
    if (is_certain) certain.rows.push_back(row);
  }
  return certain;
}

Result<CqaVerdict> GroundConsistentVerdict(const RepairProblem& problem,
                                           const Query& query) {
  PREFREP_ASSIGN_OR_RETURN(bool certainly_true,
                           GroundConsistentAnswer(problem, query));
  if (certainly_true) return CqaVerdict::kCertainlyTrue;
  std::unique_ptr<Query> negated = Query::Not(query.Clone());
  PREFREP_ASSIGN_OR_RETURN(bool certainly_false,
                           GroundConsistentAnswer(problem, *negated));
  if (certainly_false) return CqaVerdict::kCertainlyFalse;
  return CqaVerdict::kUndetermined;
}

}  // namespace prefrep
