#include "cqa/cqa.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <map>
#include <new>
#include <set>
#include <utility>

#include "base/exec_context.h"
#include "base/failpoint.h"
#include "base/thread_pool.h"
#include "cqa/planner.h"
#include "graph/components.h"
#include "query/normal_form.h"
#include "query/prepared.h"

namespace prefrep {

namespace {

using DigitRange = ComponentProductEnumerator::DigitRange;

// A partition of the product space of per-component family lists into
// disjoint boxes (ComponentProductEnumerator::EnumerateSlices tasks), a
// few per worker so the work-stealing pool can rebalance uneven boxes.
struct CqaShardPlan {
  std::vector<std::vector<DigitRange>> chunks;
};

// Builds ~threads*4 chunks. One component's list rarely has enough
// entries on its own (multi-component instances often have many small
// lists but an astronomical product), so the planner works through the
// components by descending list length: it fixes whole digits — taking
// the cross product of their individual indices into the chunk set —
// while that keeps the chunk count at or under the target, then splits
// the next digit's range to make up the remainder. Chunk count stays
// under 2x the target; every chunk is a non-empty box (no list here is
// empty — callers return early for empty families).
CqaShardPlan PlanCqaShards(
    const std::vector<std::vector<DynamicBitset>>& choices, int threads) {
  const size_t target = static_cast<size_t>(threads) * size_t{4};
  std::vector<int> order(choices.size());
  for (size_t c = 0; c < order.size(); ++c) order[c] = static_cast<int>(c);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return choices[a].size() > choices[b].size();
  });
  CqaShardPlan plan;
  plan.chunks.emplace_back();  // one chunk covering the whole product
  size_t count = 1;
  for (int digit : order) {
    const size_t length = choices[digit].size();
    if (count >= target || length <= 1) break;  // nothing more to gain
    std::vector<std::vector<DigitRange>> expanded;
    if (count * length <= target) {
      // Fix this digit: every chunk splits into one chunk per index.
      expanded.reserve(plan.chunks.size() * length);
      for (const std::vector<DigitRange>& chunk : plan.chunks) {
        for (size_t i = 0; i < length; ++i) {
          expanded.push_back(chunk);
          expanded.back().push_back({digit, i, i + 1});
        }
      }
      count *= length;
    } else {
      // Last digit: split its range just enough to reach the target.
      size_t splits = std::min(length, (target + count - 1) / count);
      expanded.reserve(plan.chunks.size() * splits);
      for (const std::vector<DigitRange>& chunk : plan.chunks) {
        for (size_t s = 0; s < splits; ++s) {
          expanded.push_back(chunk);
          expanded.back().push_back(
              {digit, length * s / splits, length * (s + 1) / splits});
        }
      }
      count *= splits;
    }
    plan.chunks = std::move(expanded);
  }
  return plan;
}

// The enumeration driver a serial CQA loop runs on: either the standard
// product-based EnumeratePreferredRepairs or, when the caller already
// knows the component lists exceed the byte budget, the streaming
// fallback (re-attempting the doomed materialization would run the
// exponential core twice).
using EnumerateRepairsFn = std::function<bool(
    const std::function<bool(const DynamicBitset&)>& callback)>;

// Runs `eval_repair(chunk, worker, repair)` over every repair of the
// product, sharded across the caller's work-stealing pool; `abort` is
// shared with the callbacks so any shard can stop the others (after a
// worker error, or once the merged result can no longer change).
// eval_repair returning false also raises `abort`. The callback always
// runs with `worker` < pool.thread_count(), so callers index per-worker
// state (compiled query copies) with it and per-chunk state (partial
// results, Status slots) with `chunk`. Returns the pool's Status: non-OK
// when a worker threw or `context` was interrupted (each enumerator also
// polls the context per odometer tick).
[[nodiscard]] Status ForEachRepairSharded(
    const ComponentFamilyLists& lists, const CqaShardPlan& plan,
    ThreadPool& pool, ExecutionContext* context, std::atomic<bool>* abort,
    const std::function<bool(size_t chunk, int worker,
                             const DynamicBitset& repair)>& eval_repair) {
  return pool.ParallelFor(
      plan.chunks.size(),
      [&](size_t chunk, int worker) {
        if (abort->load(std::memory_order_relaxed)) return;
        ComponentProductEnumerator product(lists.decomposition, &lists.choices,
                                           context);
        product.EnumerateSlices(
            plan.chunks[chunk],
            [&](const DynamicBitset& repair) {
              PREFREP_FAILPOINT("cqa.eval");
              if (context != nullptr) context->stats().AddRepairsExamined();
              if (!eval_repair(chunk, worker, repair)) {
                abort->store(true, std::memory_order_relaxed);
                return false;
              }
              return !abort->load(std::memory_order_relaxed);
            });
      },
      context);
}

// Wraps a serial per-repair callback with the context's poll / stats /
// failpoint instrumentation; without a context the callback runs bare (no
// extra indirection on the ungoverned fast path).
std::function<bool(const DynamicBitset&)> WrapSerialEval(
    ExecutionContext* context,
    const std::function<bool(const DynamicBitset&)>& callback) {
  if (context == nullptr) return callback;
  return [context, &callback](const DynamicBitset& repair) {
    PREFREP_FAILPOINT("cqa.eval");
    if (context->ShouldStop()) return false;
    context->stats().AddRepairsExamined();
    return callback(repair);
  };
}

// Drops from `keep` every row not also in `other`. The serial loop, the
// per-chunk partials and the chunk merge all intersect through this one
// helper — their behavioral identity is what makes the sharded answer set
// provably equal to the serial one.
void IntersectInPlace(std::set<Tuple>* keep, const std::set<Tuple>& other) {
  for (auto it = keep->begin(); it != keep->end();) {
    it = other.contains(*it) ? std::next(it) : keep->erase(it);
  }
}

// The one orchestration point both CQA entry points share: picks the
// sharded or serial loop for `options` and hands it the right enumeration
// driver. threads > 1 materializes the per-component lists once (a single
// pool serves both materialization and eval sharding) and dispatches to
// `sharded(lists, pool)`; when the lists blow the byte budget it runs
// `serial` over the streaming fallback — with O(depth) memory, instead of
// re-running the materialization that just failed. Connected graphs take
// the serial path at every thread count: there the serial enumerator
// streams in place with early-stop, so materializing up front (the
// sharded prerequisite) could cost unboundedly more than the verdict
// needs — on multi-component graphs the serial path materializes the
// very same per-component lists, so sharding adds no memory or
// materialization the serial run wouldn't. threads <= 1, and instances
// with no component to shard over (a single repair of isolated
// vertices), also run `serial` over the standard enumerator.
template <typename ShardedFn, typename SerialFn>
auto RunCqa(const RepairProblem& problem, const Priority& priority,
            RepairFamily family, const ParallelOptions& options,
            const ShardedFn& sharded, const SerialFn& serial) {
  ExecutionContext* context = options.context;
  if (options.threads > 1 && !SpansOneComponent(problem.graph())) {
    ThreadPool pool(options.threads);
    std::optional<ComponentFamilyLists> lists = MaterializeComponentFamilyLists(
        problem.graph(), priority, family, options, &pool);
    if (!lists.has_value()) {
      return serial([&](const std::function<bool(const DynamicBitset&)>& cb) {
        return EnumeratePreferredRepairsStreaming(problem.graph(), priority,
                                                  family,
                                                  WrapSerialEval(context, cb),
                                                  context);
      });
    }
    if (!lists->choices.empty()) {
      return sharded(*lists, pool);
    }
  }
  return serial([&](const std::function<bool(const DynamicBitset&)>& cb) {
    return EnumeratePreferredRepairs(problem.graph(), priority, family,
                                     options, WrapSerialEval(context, cb));
  });
}

}  // namespace

std::string_view CqaVerdictName(CqaVerdict verdict) {
  switch (verdict) {
    case CqaVerdict::kCertainlyTrue:
      return "certainly-true";
    case CqaVerdict::kCertainlyFalse:
      return "certainly-false";
    case CqaVerdict::kUndetermined:
      return "undetermined";
  }
  return "?";
}

namespace {

// Sharded verdict: every worker evaluates its repair slices with a
// private copy of the compiled query and reports which outcomes it saw
// into one shared bit mask (bit 0: satisfying repair, bit 1: falsifying).
// OR-ing outcome bits is commutative, so the merged mask — and therefore
// the verdict — is exactly what the serial loop computes; once both bits
// are set no further repair can change it and every shard stops.
Result<CqaVerdict> ShardedConsistentAnswer(const ComponentFamilyLists& lists,
                                           const PreparedQuery& prepared,
                                           ThreadPool& pool,
                                           ExecutionContext* context) {
  for (const std::vector<DynamicBitset>& list : lists.choices) {
    // An empty component list makes the family empty: vacuously true,
    // matching the serial loop (whose callback never runs).
    if (list.empty()) return CqaVerdict::kCertainlyTrue;
  }
  CqaShardPlan plan = PlanCqaShards(lists.choices, pool.thread_count());
  std::vector<PreparedQuery> worker_query(pool.thread_count(), prepared);
  std::vector<Status> chunk_status(plan.chunks.size(), Status::Ok());
  std::atomic<uint32_t> seen_mask{0};
  std::atomic<bool> abort{false};
  Status pool_status = ForEachRepairSharded(
      lists, plan, pool, context, &abort,
      [&](size_t chunk, int worker, const DynamicBitset& repair) {
        Result<bool> holds = worker_query[worker].EvalClosed(&repair);
        if (!holds.ok()) {
          chunk_status[chunk] = holds.status();
          return false;
        }
        uint32_t bit = *holds ? 1u : 2u;
        uint32_t mask =
            seen_mask.fetch_or(bit, std::memory_order_relaxed) | bit;
        return mask != 3u;  // stop every shard once both observed
      });
  for (const Status& status : chunk_status) {
    PREFREP_RETURN_IF_ERROR(status);
  }
  PREFREP_RETURN_IF_ERROR(pool_status);
  uint32_t mask = seen_mask.load(std::memory_order_relaxed);
  if (mask == 3u) return CqaVerdict::kUndetermined;
  if (mask == 2u) return CqaVerdict::kCertainlyFalse;
  return CqaVerdict::kCertainlyTrue;
}

// The serial verdict loop, over whichever enumeration driver fits the
// caller's situation (see EnumerateRepairsFn).
Result<CqaVerdict> SerialConsistentAnswer(const PreparedQuery& prepared,
                                          const EnumerateRepairsFn& enumerate) {
  bool seen_true = false;
  bool seen_false = false;
  Status eval_error = Status::Ok();
  enumerate([&](const DynamicBitset& repair) {
    Result<bool> holds = prepared.EvalClosed(&repair);
    if (!holds.ok()) {
      eval_error = holds.status();
      return false;
    }
    (*holds ? seen_true : seen_false) = true;
    return !(seen_true && seen_false);  // stop once both observed
  });
  PREFREP_RETURN_IF_ERROR(eval_error);
  if (seen_true && seen_false) return CqaVerdict::kUndetermined;
  if (seen_false) return CqaVerdict::kCertainlyFalse;
  // All repairs satisfy Q (or the family was empty, which P1-families
  // never are; vacuously true then).
  return CqaVerdict::kCertainlyTrue;
}

}  // namespace

Result<CqaVerdict> PreferredConsistentAnswer(const RepairProblem& problem,
                                             const Priority& priority,
                                             RepairFamily family,
                                             const Query& query,
                                             ParallelOptions options) {
  CqaPlannerOptions planner_options;
  planner_options.parallel = options;
  return PlannedConsistentAnswer(problem, priority, family, query,
                                 planner_options);
}

Result<CqaVerdict> PreferredConsistentAnswer(const RepairProblem& problem,
                                             const Priority& priority,
                                             RepairFamily family,
                                             const Query& query,
                                             const EvalOptions& options) {
  return PlannedConsistentAnswer(problem, priority, family, query, options);
}

namespace {

// The enumeration core once a compiled query is in hand; both the
// Query-compiling entry point and the prepared-reusing server seam land
// here. `prepared` is evaluated in place, so it must be privately owned
// by this call (evaluation reuses internal scratch buffers).
Result<CqaVerdict> EnumeratedAnswerWithPrepared(const RepairProblem& problem,
                                                const Priority& priority,
                                                RepairFamily family,
                                                const PreparedQuery& prepared,
                                                ParallelOptions options) try {
  Result<CqaVerdict> verdict = RunCqa(
      problem, priority, family, options,
      [&](const ComponentFamilyLists& lists, ThreadPool& pool) {
        return ShardedConsistentAnswer(lists, prepared, pool, options.context);
      },
      [&](const EnumerateRepairsFn& enumerate) {
        return SerialConsistentAnswer(prepared, enumerate);
      });
  // A context interrupt truncates the enumeration silently (callbacks just
  // return false); surface it here so the caller never mistakes a partial
  // verdict for a complete one.
  if (options.context != nullptr && options.context->interrupted()) {
    return options.context->StatusWithStats();
  }
  return verdict;
} catch (const std::bad_alloc&) {
  return Status::ResourceExhausted("allocation failed during enumerated CQA");
}

}  // namespace

Result<CqaVerdict> EnumeratedConsistentAnswer(const RepairProblem& problem,
                                              const Priority& priority,
                                              RepairFamily family,
                                              const Query& query,
                                              ParallelOptions options) try {
  if (!query.IsClosed()) {
    PREFREP_RETURN_IF_ERROR(ValidateQuery(problem.db(), query));
    return Status::InvalidArgument(
        "consistent answers need a closed query; got " + query.ToString());
  }
  // Compile once; the enumeration loop below pays only for the per-repair
  // quantifier search (query/prepared.h).
  PREFREP_ASSIGN_OR_RETURN(PreparedQuery prepared,
                           PreparedQuery::Compile(problem.db(), query));
  return EnumeratedAnswerWithPrepared(problem, priority, family, prepared,
                                      options);
} catch (const std::bad_alloc&) {
  return Status::ResourceExhausted("allocation failed during enumerated CQA");
}

Result<CqaVerdict> EnumeratedConsistentAnswer(const RepairProblem& problem,
                                              const Priority& priority,
                                              RepairFamily family,
                                              const PreparedQuery& prepared,
                                              ParallelOptions options) try {
  if (!prepared.is_closed()) {
    return Status::InvalidArgument(
        "consistent answers need a closed query (prepared query has free "
        "variables)");
  }
  // Private copy: the shared cached master is never evaluated directly
  // (evaluation reuses internal scratch), so concurrent calls can share it.
  PreparedQuery local(prepared);
  return EnumeratedAnswerWithPrepared(problem, priority, family, local,
                                      options);
} catch (const std::bad_alloc&) {
  return Status::ResourceExhausted("allocation failed during enumerated CQA");
}

Result<bool> IsConsistentlyTrue(const RepairProblem& problem,
                                const Priority& priority, RepairFamily family,
                                const Query& query, ParallelOptions options) {
  PREFREP_ASSIGN_OR_RETURN(
      CqaVerdict verdict,
      PreferredConsistentAnswer(problem, priority, family, query, options));
  return verdict == CqaVerdict::kCertainlyTrue;
}

Result<bool> IsConsistentlyTrue(const RepairProblem& problem,
                                const Priority& priority, RepairFamily family,
                                const Query& query,
                                const EvalOptions& options) {
  PREFREP_ASSIGN_OR_RETURN(
      CqaVerdict verdict,
      PreferredConsistentAnswer(problem, priority, family, query, options));
  return verdict == CqaVerdict::kCertainlyTrue;
}

namespace {

// Sharded open answers: every worker intersects the answer sets of the
// repairs in its slices into a per-chunk partial set; set intersection is
// commutative and associative, so intersecting the partials (in any
// order) equals the serial running intersection. A chunk whose partial
// empties proves the global intersection empty and stops the rest.
Result<OpenAnswer> ShardedConsistentAnswers(const ComponentFamilyLists& lists,
                                            const PreparedQuery& prepared,
                                            ThreadPool& pool,
                                            ExecutionContext* context) {
  for (const std::vector<DynamicBitset>& list : lists.choices) {
    // Empty family: no repair ever ran, matching the serial loop's empty
    // OpenAnswer (variables included — they are set on the first repair).
    if (list.empty()) return OpenAnswer{};
  }
  CqaShardPlan plan = PlanCqaShards(lists.choices, pool.thread_count());
  std::vector<PreparedQuery> worker_query(pool.thread_count(), prepared);
  std::vector<Status> chunk_status(plan.chunks.size(), Status::Ok());
  struct ChunkPartial {
    std::set<Tuple> rows;
    bool any = false;
  };
  std::vector<ChunkPartial> partial(plan.chunks.size());
  std::atomic<bool> emptied{false};
  std::atomic<bool> abort{false};
  Status pool_status = ForEachRepairSharded(
      lists, plan, pool, context, &abort,
      [&](size_t chunk, int worker, const DynamicBitset& repair) {
        Result<OpenAnswer> answer = worker_query[worker].EvalOpen(&repair);
        if (!answer.ok()) {
          chunk_status[chunk] = answer.status();
          return false;
        }
        ChunkPartial& mine = partial[chunk];
        if (!mine.any) {
          mine.rows.insert(answer->rows.begin(), answer->rows.end());
          mine.any = true;
        } else {
          std::set<Tuple> here(answer->rows.begin(), answer->rows.end());
          IntersectInPlace(&mine.rows, here);
        }
        if (mine.rows.empty()) {
          emptied.store(true, std::memory_order_relaxed);
          return false;
        }
        return true;
      });
  for (const Status& status : chunk_status) {
    PREFREP_RETURN_IF_ERROR(status);
  }
  PREFREP_RETURN_IF_ERROR(pool_status);
  OpenAnswer out;
  out.variables = prepared.free_variables();
  if (emptied.load(std::memory_order_relaxed)) return out;
  // No shard emptied (and none aborted), so every chunk saw all of its
  // repairs: the certain answers are the intersection of the partials.
  std::set<Tuple> certain = std::move(partial[0].rows);
  for (size_t chunk = 1; chunk < partial.size(); ++chunk) {
    IntersectInPlace(&certain, partial[chunk].rows);
  }
  out.rows.assign(certain.begin(), certain.end());
  return out;
}

}  // namespace

namespace {

// The serial open-answer loop, over whichever enumeration driver fits the
// caller's situation (see EnumerateRepairsFn).
Result<OpenAnswer> SerialConsistentAnswers(const PreparedQuery& prepared,
                                           const EnumerateRepairsFn& enumerate) {
  bool first = true;
  std::set<Tuple> certain;
  std::vector<std::string> variables;
  Status eval_error = Status::Ok();
  enumerate([&](const DynamicBitset& repair) {
    Result<OpenAnswer> answer = prepared.EvalOpen(&repair);
    if (!answer.ok()) {
      eval_error = answer.status();
      return false;
    }
    if (first) {
      variables = answer->variables;
      certain.insert(answer->rows.begin(), answer->rows.end());
      first = false;
    } else {
      std::set<Tuple> here(answer->rows.begin(), answer->rows.end());
      IntersectInPlace(&certain, here);
    }
    return !certain.empty() || first;  // nothing left to lose: stop
  });
  PREFREP_RETURN_IF_ERROR(eval_error);
  OpenAnswer out;
  out.variables = std::move(variables);
  out.rows.assign(certain.begin(), certain.end());
  return out;
}

}  // namespace

Result<OpenAnswer> PreferredConsistentAnswers(const RepairProblem& problem,
                                              const Priority& priority,
                                              RepairFamily family,
                                              const Query& query,
                                              ParallelOptions options) {
  CqaPlannerOptions planner_options;
  planner_options.parallel = options;
  return PlannedConsistentAnswers(problem, priority, family, query,
                                  planner_options);
}

Result<OpenAnswer> PreferredConsistentAnswers(const RepairProblem& problem,
                                              const Priority& priority,
                                              RepairFamily family,
                                              const Query& query,
                                              const EvalOptions& options) {
  return PlannedConsistentAnswers(problem, priority, family, query, options);
}

namespace {

// Open-answer twin of EnumeratedAnswerWithPrepared; same private-ownership
// contract for `prepared`.
Result<OpenAnswer> EnumeratedAnswersWithPrepared(const RepairProblem& problem,
                                                 const Priority& priority,
                                                 RepairFamily family,
                                                 const PreparedQuery& prepared,
                                                 ParallelOptions options) try {
  Result<OpenAnswer> answers = RunCqa(
      problem, priority, family, options,
      [&](const ComponentFamilyLists& lists, ThreadPool& pool) {
        return ShardedConsistentAnswers(lists, prepared, pool, options.context);
      },
      [&](const EnumerateRepairsFn& enumerate) {
        return SerialConsistentAnswers(prepared, enumerate);
      });
  if (options.context != nullptr && options.context->interrupted()) {
    return options.context->StatusWithStats();
  }
  return answers;
} catch (const std::bad_alloc&) {
  return Status::ResourceExhausted("allocation failed during enumerated CQA");
}

}  // namespace

Result<OpenAnswer> EnumeratedConsistentAnswers(const RepairProblem& problem,
                                               const Priority& priority,
                                               RepairFamily family,
                                               const Query& query,
                                               ParallelOptions options) try {
  PREFREP_ASSIGN_OR_RETURN(PreparedQuery prepared,
                           PreparedQuery::Compile(problem.db(), query));
  return EnumeratedAnswersWithPrepared(problem, priority, family, prepared,
                                       options);
} catch (const std::bad_alloc&) {
  return Status::ResourceExhausted("allocation failed during enumerated CQA");
}

Result<OpenAnswer> EnumeratedConsistentAnswers(const RepairProblem& problem,
                                               const Priority& priority,
                                               RepairFamily family,
                                               const PreparedQuery& prepared,
                                               ParallelOptions options) try {
  // Private copy of the caller's cached master; see the closed-query
  // overload above for the sharing contract.
  PreparedQuery local(prepared);
  return EnumeratedAnswersWithPrepared(problem, priority, family, local,
                                       options);
} catch (const std::bad_alloc&) {
  return Status::ResourceExhausted("allocation failed during enumerated CQA");
}

namespace {

// Decides whether some repair satisfies the ground disjunct: it must
// contain all positive facts, avoid all negative ones, and all constant
// comparisons must hold.
Result<bool> DisjunctSatisfiableBySomeRepair(const RepairProblem& problem,
                                             const GroundDisjunct& disjunct) {
  const ConflictGraph& graph = problem.graph();
  int n = graph.vertex_count();

  DynamicBitset required(n);   // positive facts (must be in the repair)
  std::vector<TupleId> excluded;  // facts that must be out

  for (const GroundLiteral& lit : disjunct) {
    if (!lit.is_atom) {
      if (!lit.ComparisonHolds()) return false;
      continue;
    }
    auto id = problem.db().FindTuple(lit.relation, lit.tuple);
    if (lit.positive) {
      // A fact not in the database is in no repair.
      if (!id.ok()) return false;
      required.Set(*id);
    } else {
      // A fact not in the database is absent from every repair: trivially
      // satisfied.
      if (id.ok()) excluded.push_back(*id);
    }
  }

  // The positive part must be conflict-free.
  if (!graph.IsIndependent(required)) return false;

  // Every excluded fact must be kept out of a *maximal* independent set
  // containing `required`, i.e. blocked by a conflicting witness in the
  // repair. A fact both required and excluded is contradictory.
  std::sort(excluded.begin(), excluded.end());
  excluded.erase(std::unique(excluded.begin(), excluded.end()),
                 excluded.end());
  std::vector<TupleId> need_witness;
  for (TupleId s : excluded) {
    if (required.Test(s)) return false;
    if (graph.Neighbors(s).Intersects(required)) continue;  // already blocked
    need_witness.push_back(s);
  }

  // Backtracking over witness choices w_s ∈ n(s): the witnesses must be
  // mutually consistent and consistent with the required facts, and must
  // not be excluded facts themselves. The search depth is the number of
  // negative literals (fixed with the query), so this is data-polynomial.
  // Candidate masks come from a pooled scratch buffer per search level, so
  // the backtracking itself stays off the heap.
  DynamicBitset excluded_mask(n);
  for (TupleId s : excluded) excluded_mask.Set(s);

  BitsetPool pool(n);
  std::function<bool(size_t, DynamicBitset&)> search =
      [&](size_t index, DynamicBitset& chosen) -> bool {
    if (index == need_witness.size()) return true;
    TupleId s = need_witness[index];
    if (graph.Neighbors(s).Intersects(chosen)) {
      // Already blocked by a previously chosen witness.
      return search(index + 1, chosen);
    }
    BitsetPool::Handle candidates = pool.Acquire();
    candidates->AssignDifference(graph.Neighbors(s), excluded_mask);
    for (int w = candidates->FirstSetBit(); w >= 0;
         w = candidates->NextSetBit(w + 1)) {
      // The witness must not conflict with anything selected so far.
      if (graph.Neighbors(w).Intersects(chosen)) continue;
      chosen.Set(w);
      if (search(index + 1, chosen)) return true;
      chosen.Reset(w);
    }
    return false;
  };

  DynamicBitset chosen = required;
  return search(0, chosen);
}

// The certainty test both ground engines share: `true` is the consistent
// answer iff no repair satisfies any disjunct of the negated query's DNF.
// `context` is polled once per disjunct; an interrupt returns its status.
Result<bool> NoRepairSatisfiesAnyDisjunct(
    const RepairProblem& problem, const std::vector<GroundDisjunct>& dnf,
    ExecutionContext* context) {
  for (const GroundDisjunct& disjunct : dnf) {
    PREFREP_FAILPOINT("cqa.ground_disjunct");
    if (context != nullptr && context->ShouldStop()) {
      return context->StatusWithStats();
    }
    PREFREP_ASSIGN_OR_RETURN(
        bool satisfiable, DisjunctSatisfiableBySomeRepair(problem, disjunct));
    if (satisfiable) return false;
  }
  return true;
}

// Clamps a caller-supplied DNF cap to the context's limit.
size_t EffectiveDnfDisjunctCap(size_t max_dnf_disjuncts,
                               const ExecutionContext* context) {
  if (context == nullptr) return max_dnf_disjuncts;
  return std::min(max_dnf_disjuncts, context->limits().max_dnf_disjuncts);
}

size_t EffectiveDnfLiteralCap(const ExecutionContext* context) {
  if (context == nullptr) return kDefaultDnfLiteralBudget;
  return std::min(kDefaultDnfLiteralBudget,
                  context->limits().max_dnf_literals);
}

}  // namespace

Result<bool> GroundConsistentAnswer(const RepairProblem& problem,
                                    const Query& query,
                                    size_t max_dnf_disjuncts,
                                    ExecutionContext* context) {
  PREFREP_RETURN_IF_ERROR(ValidateQuery(problem.db(), query));
  if (!query.IsGround() || !query.IsQuantifierFree()) {
    return Status::InvalidArgument(
        "GroundConsistentAnswer handles ground quantifier-free queries; "
        "use PreferredConsistentAnswer for " +
        query.ToString());
  }
  std::unique_ptr<Query> negated = Query::Not(query.Clone());
  PREFREP_ASSIGN_OR_RETURN(
      std::vector<GroundDisjunct> dnf,
      GroundDnf(*negated, EffectiveDnfDisjunctCap(max_dnf_disjuncts, context),
                EffectiveDnfLiteralCap(context)));
  return NoRepairSatisfiesAnyDisjunct(problem, dnf, context);
}

Result<OpenAnswer> GroundConsistentOpenAnswers(const RepairProblem& problem,
                                               const Query& query,
                                               size_t max_dnf_disjuncts,
                                               ExecutionContext* context) {
  if (!query.IsQuantifierFree()) {
    return Status::InvalidArgument(
        "GroundConsistentOpenAnswers needs a quantifier-free query");
  }
  if (!IsNegationFree(query)) {
    return Status::InvalidArgument(
        "GroundConsistentOpenAnswers needs a negation-free (monotone) "
        "query; use PreferredConsistentAnswers");
  }
  // Candidates: answers over the full database (a superset of every
  // repair's answers, by monotonicity).
  PREFREP_ASSIGN_OR_RETURN(PreparedQuery prepared,
                           PreparedQuery::Compile(problem.db(), query));
  PREFREP_ASSIGN_OR_RETURN(OpenAnswer candidates, prepared.EvalOpen(nullptr));
  // Loop-invariant skeleton: the negated query's DNF is computed once;
  // each candidate row only substitutes its bindings into the disjunct
  // templates (instead of re-cloning, re-NNFing and re-DNFing the query
  // per row).
  std::unique_ptr<Query> negated = Query::Not(query.Clone());
  PREFREP_ASSIGN_OR_RETURN(
      std::vector<DisjunctTemplate> negated_dnf,
      QuantifierFreeDnf(*negated,
                        EffectiveDnfDisjunctCap(max_dnf_disjuncts, context),
                        EffectiveDnfLiteralCap(context)));
  OpenAnswer certain;
  certain.variables = candidates.variables;
  std::map<std::string, Value> bindings;
  std::vector<GroundDisjunct> ground_dnf(negated_dnf.size());
  for (const Tuple& row : candidates.rows) {
    if (context != nullptr && context->ShouldStop()) {
      return context->StatusWithStats();
    }
    bindings.clear();
    for (size_t i = 0; i < certain.variables.size(); ++i) {
      bindings.emplace(certain.variables[i],
                       row.value(static_cast<int>(i)));
    }
    for (size_t d = 0; d < negated_dnf.size(); ++d) {
      PREFREP_ASSIGN_OR_RETURN(ground_dnf[d],
                               InstantiateDisjunct(negated_dnf[d], bindings));
    }
    PREFREP_ASSIGN_OR_RETURN(
        bool is_certain,
        NoRepairSatisfiesAnyDisjunct(problem, ground_dnf, context));
    if (is_certain) certain.rows.push_back(row);
  }
  return certain;
}

Result<CqaVerdict> GroundConsistentVerdict(const RepairProblem& problem,
                                           const Query& query,
                                           size_t max_dnf_disjuncts,
                                           ExecutionContext* context) {
  PREFREP_ASSIGN_OR_RETURN(
      bool certainly_true,
      GroundConsistentAnswer(problem, query, max_dnf_disjuncts, context));
  if (certainly_true) return CqaVerdict::kCertainlyTrue;
  std::unique_ptr<Query> negated = Query::Not(query.Clone());
  PREFREP_ASSIGN_OR_RETURN(
      bool certainly_false,
      GroundConsistentAnswer(problem, *negated, max_dnf_disjuncts, context));
  if (certainly_false) return CqaVerdict::kCertainlyFalse;
  return CqaVerdict::kUndetermined;
}

}  // namespace prefrep
