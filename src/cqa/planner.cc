#include "cqa/planner.h"

#include <memory>
#include <utility>

#include "query/normal_form.h"
#include "query/prepared.h"

namespace prefrep {

std::string_view CqaTierName(CqaTier tier) {
  switch (tier) {
    case CqaTier::kSingleRepair:
      return "single-repair";
    case CqaTier::kGroundFastPath:
      return "ground-fast-path";
    case CqaTier::kEnumeration:
      return "enumeration";
  }
  return "?";
}

std::string CqaPlan::ToString() const {
  std::string out = "tier ";
  switch (tier) {
    case CqaTier::kSingleRepair:
      out += "0";
      break;
    case CqaTier::kGroundFastPath:
      out += "1";
      break;
    case CqaTier::kEnumeration:
      out += "2";
      break;
  }
  out += " (" + std::string(CqaTierName(tier)) + ")";
  if (!reason.empty()) out += ": " + reason;
  return out;
}

namespace {

// The routing rationale shared by every plan: how the family was
// normalized, phrased for CqaPlan::reason.
std::string FamilyNote(const CqaPlan& plan) {
  if (plan.family_collapsed) {
    return std::string(RepairFamilyName(plan.requested_family)) +
           " collapsed to Rep (empty priority)";
  }
  return std::string(RepairFamilyName(plan.requested_family));
}

// True iff the tier-1 engine's DNF conversions for this request fit the
// budget. Query-size-dependent work only (the conversion is capped at
// the budget itself), so planning stays data-independent.
bool DnfFitsBudget(const Query& query, CqaRequest request,
                   size_t max_dnf_disjuncts) {
  std::unique_ptr<Query> negated = Query::Not(query.Clone());
  if (!QuantifierFreeDnf(*negated, max_dnf_disjuncts).ok()) return false;
  if (request == CqaRequest::kVerdict) {
    // GroundConsistentVerdict may also DNF the un-negated query (for the
    // certainly-false test).
    if (!QuantifierFreeDnf(query, max_dnf_disjuncts).ok()) return false;
  }
  return true;
}

}  // namespace

CqaPlan ExplainPlan(const RepairProblem& problem, const Priority& priority,
                    RepairFamily family, const Query& query,
                    CqaRequest request, const CqaPlannerOptions& options) {
  CqaPlan plan;
  plan.requested_family = family;
  plan.effective_family = EffectiveFamily(priority, family);
  plan.family_collapsed = plan.effective_family != family;
  if (options.force_tier.has_value()) {
    plan.tier = *options.force_tier;
    plan.reason = "forced by options";
    return plan;
  }
  // Tier 0: a conflict-free database has exactly one repair — itself —
  // under every family and priority, so one evaluation answers the call.
  if (problem.graph().edge_count() == 0) {
    plan.tier = CqaTier::kSingleRepair;
    plan.reason = "conflict-free database: the unique repair is the "
                  "database itself";
    return plan;
  }
  QueryShape shape = ClassifyQuery(query);
  // Tier 1 is sound only under plain Rep semantics.
  if (plan.effective_family == RepairFamily::kAll) {
    if (request == CqaRequest::kVerdict && shape.ground &&
        shape.quantifier_free) {
      if (DnfFitsBudget(query, request, options.max_dnf_disjuncts)) {
        plan.tier = CqaTier::kGroundFastPath;
        plan.reason = FamilyNote(plan) +
                      "; ground quantifier-free query -> polynomial "
                      "conflict-graph verdict";
        return plan;
      }
      plan.reason = FamilyNote(plan) +
                    "; DNF budget exceeded -> enumeration fallback";
      return plan;
    }
    if (request == CqaRequest::kOpenAnswers && shape.quantifier_free &&
        shape.negation_free) {
      if (DnfFitsBudget(query, request, options.max_dnf_disjuncts)) {
        plan.tier = CqaTier::kGroundFastPath;
        plan.reason = FamilyNote(plan) +
                      "; quantifier-free negation-free query -> monotone "
                      "candidate certification";
        return plan;
      }
      plan.reason = FamilyNote(plan) +
                    "; DNF budget exceeded -> enumeration fallback";
      return plan;
    }
    plan.reason =
        FamilyNote(plan) + "; query shape outside the polynomial class";
    return plan;
  }
  plan.reason = FamilyNote(plan) +
                " with a non-empty priority: no polynomial route known";
  return plan;
}

namespace {

// Runs the tier-0 evaluation. PreparedQuery (not the reference
// evaluator) on purpose: the enumeration tier evaluates through
// PreparedQuery, and the two deliberately diverge on shadowed binder
// names (see query/prepared.h) — tier choice must never change an
// answer. `cached`, when set, is a caller-owned master compiled for the
// same query: evaluation runs on a private copy (evaluation reuses
// internal scratch, so the shared master is never touched).
Result<CqaVerdict> SingleRepairVerdict(const RepairProblem& problem,
                                       const Query& query,
                                       const PreparedQuery* cached) {
  if (cached != nullptr) {
    PreparedQuery local(*cached);
    PREFREP_ASSIGN_OR_RETURN(bool holds, local.EvalClosed(nullptr));
    return holds ? CqaVerdict::kCertainlyTrue : CqaVerdict::kCertainlyFalse;
  }
  PREFREP_ASSIGN_OR_RETURN(PreparedQuery prepared,
                           PreparedQuery::Compile(problem.db(), query));
  PREFREP_ASSIGN_OR_RETURN(bool holds, prepared.EvalClosed(nullptr));
  return holds ? CqaVerdict::kCertainlyTrue : CqaVerdict::kCertainlyFalse;
}

Result<OpenAnswer> SingleRepairAnswers(const RepairProblem& problem,
                                       const Query& query,
                                       const PreparedQuery* cached) {
  if (cached != nullptr) {
    PreparedQuery local(*cached);
    return local.EvalOpen(nullptr);
  }
  PREFREP_ASSIGN_OR_RETURN(PreparedQuery prepared,
                           PreparedQuery::Compile(problem.db(), query));
  return prepared.EvalOpen(nullptr);
}

Status ForcedTierError(CqaTier tier, const std::string& why) {
  return Status::InvalidArgument("cannot force tier " +
                                 std::string(CqaTierName(tier)) + ": " + why);
}

// Validates a forced tier against the same eligibility rules ExplainPlan
// uses, so a forced fast path can never produce an unsound answer.
Status CheckForcedTier(const RepairProblem& problem, const CqaPlan& plan,
                       const Query& query, CqaRequest request) {
  switch (plan.tier) {
    case CqaTier::kEnumeration:
      return Status::Ok();
    case CqaTier::kSingleRepair:
      if (problem.graph().edge_count() != 0) {
        return ForcedTierError(plan.tier, "database has conflicts");
      }
      return Status::Ok();
    case CqaTier::kGroundFastPath: {
      if (plan.effective_family != RepairFamily::kAll) {
        return ForcedTierError(
            plan.tier, "family " +
                           std::string(RepairFamilyName(
                               plan.effective_family)) +
                           " under a non-empty priority is not "
                           "Rep-equivalent");
      }
      QueryShape shape = ClassifyQuery(query);
      if (request == CqaRequest::kVerdict &&
          !(shape.ground && shape.quantifier_free)) {
        return ForcedTierError(plan.tier,
                               "query is not ground quantifier-free");
      }
      if (request == CqaRequest::kOpenAnswers &&
          !(shape.quantifier_free && shape.negation_free)) {
        return ForcedTierError(
            plan.tier, "query is not quantifier-free and negation-free");
      }
      return Status::Ok();
    }
  }
  return Status::Internal("unknown tier");
}

}  // namespace

Result<CqaVerdict> PlannedConsistentAnswer(const RepairProblem& problem,
                                           const Priority& priority,
                                           RepairFamily family,
                                           const Query& query,
                                           const CqaPlannerOptions& options,
                                           CqaPlan* executed) {
  // Entry-point contract shared with the enumeration engine: closed
  // queries only, same diagnostics either way.
  if (!query.IsClosed()) {
    PREFREP_RETURN_IF_ERROR(ValidateQuery(problem.db(), query));
    return Status::InvalidArgument(
        "consistent answers need a closed query; got " + query.ToString());
  }
  ExecutionContext* context = options.parallel.context;
  if (context != nullptr && context->interrupted()) {
    return context->StatusWithStats();
  }
  const bool forced = options.force_tier.has_value();
  // A caller-supplied plan (the Session plan cache) skips re-planning —
  // including the query-exponential DNF pre-attempt. force_tier wins: a
  // forced call re-plans so CheckForcedTier sees the forced tier.
  CqaPlan plan = (!forced && options.precomputed_plan != nullptr)
                     ? *options.precomputed_plan
                     : ExplainPlan(problem, priority, family, query,
                                   CqaRequest::kVerdict, options);
  if (forced) {
    PREFREP_RETURN_IF_ERROR(
        CheckForcedTier(problem, plan, query, CqaRequest::kVerdict));
  }
  if (executed != nullptr) *executed = plan;
  switch (plan.tier) {
    case CqaTier::kSingleRepair:
      return SingleRepairVerdict(problem, query, options.prepared);
    case CqaTier::kGroundFastPath: {
      Result<CqaVerdict> verdict = GroundConsistentVerdict(
          problem, query, options.max_dnf_disjuncts, context);
      if (forced || verdict.ok() ||
          verdict.status().code() != StatusCode::kResourceExhausted) {
        return verdict;
      }
      // Runtime fallback: the DNF blew the budget after all. ExplainPlan
      // pre-checks the conversion, so this is belt-and-braces.
      plan.tier = CqaTier::kEnumeration;
      plan.reason = FamilyNote(plan) +
                    "; DNF budget exceeded at runtime -> enumeration";
      if (executed != nullptr) *executed = plan;
      break;
    }
    case CqaTier::kEnumeration:
      break;
  }
  // A forced enumeration is the differential reference: it runs the
  // *requested* family so the planner's normalization is itself under
  // test; planned enumeration runs the (equivalent) effective family.
  RepairFamily enumerate_as =
      forced ? plan.requested_family : plan.effective_family;
  if (options.prepared != nullptr) {
    return EnumeratedConsistentAnswer(problem, priority, enumerate_as,
                                      *options.prepared, options.parallel);
  }
  return EnumeratedConsistentAnswer(problem, priority, enumerate_as, query,
                                    options.parallel);
}

Result<OpenAnswer> PlannedConsistentAnswers(const RepairProblem& problem,
                                            const Priority& priority,
                                            RepairFamily family,
                                            const Query& query,
                                            const CqaPlannerOptions& options,
                                            CqaPlan* executed) {
  ExecutionContext* context = options.parallel.context;
  if (context != nullptr && context->interrupted()) {
    return context->StatusWithStats();
  }
  const bool forced = options.force_tier.has_value();
  CqaPlan plan = (!forced && options.precomputed_plan != nullptr)
                     ? *options.precomputed_plan
                     : ExplainPlan(problem, priority, family, query,
                                   CqaRequest::kOpenAnswers, options);
  if (forced) {
    PREFREP_RETURN_IF_ERROR(
        CheckForcedTier(problem, plan, query, CqaRequest::kOpenAnswers));
  }
  if (executed != nullptr) *executed = plan;
  switch (plan.tier) {
    case CqaTier::kSingleRepair:
      return SingleRepairAnswers(problem, query, options.prepared);
    case CqaTier::kGroundFastPath: {
      Result<OpenAnswer> answers = GroundConsistentOpenAnswers(
          problem, query, options.max_dnf_disjuncts, context);
      if (forced || answers.ok() ||
          answers.status().code() != StatusCode::kResourceExhausted) {
        return answers;
      }
      plan.tier = CqaTier::kEnumeration;
      plan.reason = FamilyNote(plan) +
                    "; DNF budget exceeded at runtime -> enumeration";
      if (executed != nullptr) *executed = plan;
      break;
    }
    case CqaTier::kEnumeration:
      break;
  }
  RepairFamily enumerate_as =
      forced ? plan.requested_family : plan.effective_family;
  if (options.prepared != nullptr) {
    return EnumeratedConsistentAnswers(problem, priority, enumerate_as,
                                       *options.prepared, options.parallel);
  }
  return EnumeratedConsistentAnswers(problem, priority, enumerate_as, query,
                                     options.parallel);
}

Result<AggregateRange> PlannedAggregateRange(
    const RepairProblem& problem, const Priority& priority,
    RepairFamily family, std::string_view relation,
    std::string_view attribute, AggregateFunction fn,
    const CqaPlannerOptions& options, CqaPlan* executed) {
  ExecutionContext* context = options.parallel.context;
  if (context != nullptr && context->interrupted()) {
    return context->StatusWithStats();
  }
  CqaPlan plan;
  plan.requested_family = family;
  plan.effective_family = EffectiveFamily(priority, family);
  plan.family_collapsed = plan.effective_family != family;
  const bool forced = options.force_tier.has_value();
  bool count_star_eligible = fn == AggregateFunction::kCount &&
                             plan.effective_family == RepairFamily::kAll;
  if (forced) {
    plan.tier = *options.force_tier;
    plan.reason = "forced by options";
    if (plan.tier == CqaTier::kSingleRepair) {
      return ForcedTierError(plan.tier,
                             "aggregation has no single-repair tier");
    }
    if (plan.tier == CqaTier::kGroundFastPath && !count_star_eligible) {
      return ForcedTierError(
          plan.tier, "only COUNT under a Rep-equivalent plan has a "
                     "polynomial range");
    }
  } else if (count_star_eligible) {
    plan.tier = CqaTier::kGroundFastPath;
    plan.reason = FamilyNote(plan) +
                  "; COUNT(*) range decomposes over conflict components";
  } else {
    plan.tier = CqaTier::kEnumeration;
    plan.reason =
        FamilyNote(plan) + "; " +
        std::string(AggregateFunctionName(fn)) +
        " range needs the per-repair aggregate -> enumeration";
  }
  if (executed != nullptr) *executed = plan;
  if (plan.tier == CqaTier::kGroundFastPath) {
    return CountStarRange(problem, relation, context);
  }
  RepairFamily enumerate_as =
      forced ? plan.requested_family : plan.effective_family;
  return AggregateConsistentRange(problem, priority, enumerate_as, relation,
                                  attribute, fn, options.parallel);
}

namespace {

// Lowers an EvalOptions onto the positional planner knobs. The returned
// options borrow `effective` (the EvalContextScope's context, possibly
// null), so they must not outlive the scope.
CqaPlannerOptions LowerEvalOptions(const EvalOptions& options,
                                   ExecutionContext* effective) {
  CqaPlannerOptions planner_options;
  planner_options.force_tier = options.force_tier;
  planner_options.max_dnf_disjuncts = options.limits.max_dnf_disjuncts;
  planner_options.parallel = options.Parallel(effective);
  return planner_options;
}

}  // namespace

Result<CqaVerdict> PlannedConsistentAnswer(const RepairProblem& problem,
                                           const Priority& priority,
                                           RepairFamily family,
                                           const Query& query,
                                           const EvalOptions& options,
                                           CqaPlan* executed) {
  EvalContextScope scope(options);
  return PlannedConsistentAnswer(problem, priority, family, query,
                                 LowerEvalOptions(options, scope.context()),
                                 executed);
}

Result<OpenAnswer> PlannedConsistentAnswers(const RepairProblem& problem,
                                            const Priority& priority,
                                            RepairFamily family,
                                            const Query& query,
                                            const EvalOptions& options,
                                            CqaPlan* executed) {
  EvalContextScope scope(options);
  return PlannedConsistentAnswers(problem, priority, family, query,
                                  LowerEvalOptions(options, scope.context()),
                                  executed);
}

Result<AggregateRange> PlannedAggregateRange(
    const RepairProblem& problem, const Priority& priority,
    RepairFamily family, std::string_view relation,
    std::string_view attribute, AggregateFunction fn,
    const EvalOptions& options, CqaPlan* executed) {
  EvalContextScope scope(options);
  return PlannedAggregateRange(problem, priority, family, relation, attribute,
                               fn, LowerEvalOptions(options, scope.context()),
                               executed);
}

}  // namespace prefrep
