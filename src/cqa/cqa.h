// Preferred consistent query answering (§2.3): the end-to-end API.
//
// For a closed query Q and a family X of preferred repairs, `true` is the
// X-consistent answer iff Q holds in every repair of X-Rep. We report a
// three-valued verdict: certainly true (holds in all), certainly false
// (holds in none), or undetermined (differs between preferred repairs).
//
// The generic engine enumerates preferred repairs with two-sided
// short-circuiting; for the family Rep and *ground quantifier-free*
// queries, GroundConsistentAnswer implements the polynomial
// conflict-graph algorithm (Chomicki–Marcinkowski; first row of Fig. 5).

#ifndef PREFREP_CQA_CQA_H_
#define PREFREP_CQA_CQA_H_

#include <string_view>

#include "base/status.h"
#include "base/thread_pool.h"
#include "core/families.h"
#include "priority/priority.h"
#include "query/ast.h"
#include "query/evaluator.h"
#include "repair/repair.h"

namespace prefrep {

enum class CqaVerdict {
  kCertainlyTrue,   // Q holds in every preferred repair
  kCertainlyFalse,  // Q holds in no preferred repair
  kUndetermined,    // Q differs between preferred repairs
};

std::string_view CqaVerdictName(CqaVerdict verdict);

// Evaluates the closed query in every preferred repair of `family` under
// `priority` (enumeration stops as soon as both a satisfying and a
// falsifying repair have been seen).
//
// options.threads > 1 shards the work two ways: per-component family
// lists are materialized by parallel workers (core/families.h), then the
// repair product is split into slices evaluated concurrently, each worker
// holding a private copy of the compiled query. Per-shard partial
// verdicts ("saw a satisfying / falsifying repair") merge by a
// commutative OR, so the verdict is identical to the serial result; a
// shared flag stops every shard once both outcomes have been observed.
Result<CqaVerdict> PreferredConsistentAnswer(const RepairProblem& problem,
                                             const Priority& priority,
                                             RepairFamily family,
                                             const Query& query,
                                             ParallelOptions options = {});

// Convenience: true iff `true` is the X-consistent answer (Definition 3).
Result<bool> IsConsistentlyTrue(const RepairProblem& problem,
                                const Priority& priority, RepairFamily family,
                                const Query& query,
                                ParallelOptions options = {});

// Consistent answers to an *open* query: the assignments of its free
// variables satisfying it in every preferred repair (the intersection of
// the per-repair answer sets).
//
// options.threads > 1 shards exactly like PreferredConsistentAnswer; each
// worker intersects the answer sets of its repair slice and the per-shard
// partial intersections combine by the same commutative set intersection,
// so the answer set is identical to the serial result. A shard whose
// partial intersection empties proves the global answer empty and stops
// the others.
Result<OpenAnswer> PreferredConsistentAnswers(const RepairProblem& problem,
                                              const Priority& priority,
                                              RepairFamily family,
                                              const Query& query,
                                              ParallelOptions options = {});

// Polynomial-time consistent answers for ground quantifier-free queries
// under the plain Rep semantics: true iff the query holds in every repair.
// Negates the query, converts to DNF, and decides per disjunct whether
// some repair satisfies it via a bounded witness search over conflict
// neighborhoods (data-polynomial for a fixed query).
Result<bool> GroundConsistentAnswer(const RepairProblem& problem,
                                    const Query& query);

// Full three-valued verdict computed with two GroundConsistentAnswer
// calls (on Q and not Q).
Result<CqaVerdict> GroundConsistentVerdict(const RepairProblem& problem,
                                           const Query& query);

// Polynomial consistent answers for *open* negation-free quantifier-free
// queries under plain Rep: the candidate answers are computed on the full
// (inconsistent) database — sound because negation-free queries are
// monotone — and each candidate's ground instantiation is certified with
// GroundConsistentAnswer.
Result<OpenAnswer> GroundConsistentOpenAnswers(const RepairProblem& problem,
                                               const Query& query);

}  // namespace prefrep

#endif  // PREFREP_CQA_CQA_H_
