// Preferred consistent query answering (§2.3): the end-to-end API.
//
// For a closed query Q and a family X of preferred repairs, `true` is the
// X-consistent answer iff Q holds in every repair of X-Rep. We report a
// three-valued verdict: certainly true (holds in all), certainly false
// (holds in none), or undetermined (differs between preferred repairs).
//
// The generic engine enumerates preferred repairs with two-sided
// short-circuiting; for the family Rep and *ground quantifier-free*
// queries, GroundConsistentAnswer implements the polynomial
// conflict-graph algorithm (Chomicki–Marcinkowski; first row of Fig. 5).
// The Preferred* entry points route through the planner in
// cqa/planner.h, which picks between these engines per call.

#ifndef PREFREP_CQA_CQA_H_
#define PREFREP_CQA_CQA_H_

#include <string_view>

#include "base/eval_options.h"
#include "base/status.h"
#include "base/thread_pool.h"
#include "core/families.h"
#include "priority/priority.h"
#include "query/ast.h"
#include "query/evaluator.h"
#include "query/normal_form.h"
#include "query/prepared.h"
#include "repair/repair.h"

namespace prefrep {

enum class CqaVerdict {
  kCertainlyTrue,   // Q holds in every preferred repair
  kCertainlyFalse,  // Q holds in no preferred repair
  kUndetermined,    // Q differs between preferred repairs
};

std::string_view CqaVerdictName(CqaVerdict verdict);

// Evaluates the closed query in every preferred repair of `family` under
// `priority`. Routes through the CQA planner (cqa/planner.h): trivial
// instances and polynomially answerable plans never touch the repair
// product; everything else runs the enumeration engine below. The
// verdict is identical whichever tier fires (pinned by the differential
// suite in tests/planner_test.cc).
Result<CqaVerdict> PreferredConsistentAnswer(const RepairProblem& problem,
                                             const Priority& priority,
                                             RepairFamily family,
                                             const Query& query,
                                             ParallelOptions options = {});

// Consolidated-options form (threads, force_tier, deadline, limits,
// context in one EvalOptions — see base/eval_options.h). Prefer this and
// its siblings below over the positional ParallelOptions forms, which
// survive as compatibility wrappers.
Result<CqaVerdict> PreferredConsistentAnswer(const RepairProblem& problem,
                                             const Priority& priority,
                                             RepairFamily family,
                                             const Query& query,
                                             const EvalOptions& options);

// The tier-2 engine, planner-free: always evaluates the closed query in
// every preferred repair (enumeration stops as soon as both a satisfying
// and a falsifying repair have been seen). The planner's fallback and
// the reference side of the differential tests.
//
// options.threads > 1 shards the work two ways: per-component family
// lists are materialized by parallel workers (core/families.h), then the
// repair product is split into slices evaluated concurrently, each worker
// holding a private copy of the compiled query. Per-shard partial
// verdicts ("saw a satisfying / falsifying repair") merge by a
// commutative OR, so the verdict is identical to the serial result; a
// shared flag stops every shard once both outcomes have been observed.
Result<CqaVerdict> EnumeratedConsistentAnswer(const RepairProblem& problem,
                                              const Priority& priority,
                                              RepairFamily family,
                                              const Query& query,
                                              ParallelOptions options = {});

// Prepared-query seam for resident servers (src/server/session.h):
// `prepared` must have been compiled against problem.db() and stays
// untouched — the engine evaluates a private copy, so one cached master
// can serve concurrent calls. Skips recompilation; otherwise identical
// to the Query overload.
Result<CqaVerdict> EnumeratedConsistentAnswer(const RepairProblem& problem,
                                              const Priority& priority,
                                              RepairFamily family,
                                              const PreparedQuery& prepared,
                                              ParallelOptions options = {});

// Convenience: true iff `true` is the X-consistent answer (Definition 3).
Result<bool> IsConsistentlyTrue(const RepairProblem& problem,
                                const Priority& priority, RepairFamily family,
                                const Query& query,
                                ParallelOptions options = {});
Result<bool> IsConsistentlyTrue(const RepairProblem& problem,
                                const Priority& priority, RepairFamily family,
                                const Query& query, const EvalOptions& options);

// Consistent answers to an *open* query: the assignments of its free
// variables satisfying it in every preferred repair (the intersection of
// the per-repair answer sets). Routes through the CQA planner like
// PreferredConsistentAnswer.
Result<OpenAnswer> PreferredConsistentAnswers(const RepairProblem& problem,
                                              const Priority& priority,
                                              RepairFamily family,
                                              const Query& query,
                                              ParallelOptions options = {});

// Consolidated-options form; see PreferredConsistentAnswer above.
Result<OpenAnswer> PreferredConsistentAnswers(const RepairProblem& problem,
                                              const Priority& priority,
                                              RepairFamily family,
                                              const Query& query,
                                              const EvalOptions& options);

// Tier-2 engine for open queries, planner-free.
//
// options.threads > 1 shards exactly like EnumeratedConsistentAnswer;
// each worker intersects the answer sets of its repair slice and the
// per-shard partial intersections combine by the same commutative set
// intersection, so the answer set is identical to the serial result. A
// shard whose partial intersection empties proves the global answer
// empty and stops the others.
Result<OpenAnswer> EnumeratedConsistentAnswers(const RepairProblem& problem,
                                               const Priority& priority,
                                               RepairFamily family,
                                               const Query& query,
                                               ParallelOptions options = {});

// Prepared-query seam; see EnumeratedConsistentAnswer's prepared overload
// for the sharing contract.
Result<OpenAnswer> EnumeratedConsistentAnswers(const RepairProblem& problem,
                                               const Priority& priority,
                                               RepairFamily family,
                                               const PreparedQuery& prepared,
                                               ParallelOptions options = {});

// Polynomial-time consistent answers for ground quantifier-free queries
// under the plain Rep semantics: true iff the query holds in every repair.
// Negates the query, converts to DNF, and decides per disjunct whether
// some repair satisfies it via a bounded witness search over conflict
// neighborhoods (data-polynomial for a fixed query). An adversarially
// nested query whose DNF exceeds `max_dnf_disjuncts` fails with
// kResourceExhausted (the planner then falls back to enumeration).
//
// `context`, when set, clamps the DNF caps to its ExecutionLimits and is
// polled once per disjunct (and per candidate row in the open form);
// expiry/cancel surfaces as the context's latched status.
Result<bool> GroundConsistentAnswer(
    const RepairProblem& problem, const Query& query,
    size_t max_dnf_disjuncts = kDefaultDnfDisjunctBudget,
    ExecutionContext* context = nullptr);

// Full three-valued verdict computed with two GroundConsistentAnswer
// calls (on Q and not Q).
Result<CqaVerdict> GroundConsistentVerdict(
    const RepairProblem& problem, const Query& query,
    size_t max_dnf_disjuncts = kDefaultDnfDisjunctBudget,
    ExecutionContext* context = nullptr);

// Polynomial consistent answers for *open* negation-free quantifier-free
// queries under plain Rep: the candidate answers are computed on the full
// (inconsistent) database — sound because negation-free queries are
// monotone — and each candidate's ground instantiation is certified with
// GroundConsistentAnswer.
Result<OpenAnswer> GroundConsistentOpenAnswers(
    const RepairProblem& problem, const Query& query,
    size_t max_dnf_disjuncts = kDefaultDnfDisjunctBudget,
    ExecutionContext* context = nullptr);

}  // namespace prefrep

#endif  // PREFREP_CQA_CQA_H_
