#include "base/random.h"

#include <numeric>

namespace prefrep {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  CHECK_GT(bound, 0u);
  // Rejection sampling to remove modulo bias.
  uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(UniformInt(span));
}

double Rng::UniformDouble() {
  // 53 top bits give a uniform double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return UniformDouble() < p;
}

std::vector<int> Rng::Permutation(int n) {
  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  Shuffle(perm);
  return perm;
}

}  // namespace prefrep
