#include "base/biguint.h"

#include <algorithm>
#include <cmath>

namespace prefrep {

BigUint::BigUint(uint64_t v) {
  while (v != 0) {
    limbs_.push_back(static_cast<uint32_t>(v % kBase));
    v /= kBase;
  }
}

BigUint BigUint::PowerOfTwo(int exponent) {
  return Pow(BigUint(2), static_cast<uint64_t>(exponent));
}

BigUint BigUint::Pow(const BigUint& base, uint64_t exponent) {
  BigUint result = One();
  BigUint acc = base;
  while (exponent > 0) {
    if (exponent & 1) result *= acc;
    exponent >>= 1;
    if (exponent > 0) acc *= acc;
  }
  return result;
}

void BigUint::Normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigUint& BigUint::operator+=(const BigUint& o) {
  size_t n = std::max(limbs_.size(), o.limbs_.size());
  limbs_.resize(n, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t sum = carry + limbs_[i] + (i < o.limbs_.size() ? o.limbs_[i] : 0);
    limbs_[i] = static_cast<uint32_t>(sum % kBase);
    carry = sum / kBase;
  }
  if (carry != 0) limbs_.push_back(static_cast<uint32_t>(carry));
  return *this;
}

BigUint& BigUint::operator*=(const BigUint& o) {
  if (IsZero() || o.IsZero()) {
    limbs_.clear();
    return *this;
  }
  std::vector<uint32_t> out(limbs_.size() + o.limbs_.size(), 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t carry = 0;
    for (size_t j = 0; j < o.limbs_.size() || carry != 0; ++j) {
      uint64_t cur = out[i + j] + carry;
      if (j < o.limbs_.size()) {
        cur += static_cast<uint64_t>(limbs_[i]) * o.limbs_[j];
      }
      out[i + j] = static_cast<uint32_t>(cur % kBase);
      carry = cur / kBase;
    }
  }
  limbs_ = std::move(out);
  Normalize();
  return *this;
}

bool operator<(const BigUint& a, const BigUint& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size();
  }
  for (size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i];
  }
  return false;
}

bool BigUint::ToUint64(uint64_t* out) const {
  uint64_t value = 0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    // value * kBase + limb, with overflow detection.
    if (value > (~uint64_t{0}) / kBase) return false;
    value *= kBase;
    if (value > ~uint64_t{0} - limbs_[i]) return false;
    value += limbs_[i];
  }
  *out = value;
  return true;
}

double BigUint::ToDouble() const {
  double value = 0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    value = value * kBase + limbs_[i];
  }
  return value;
}

std::string BigUint::ToString() const {
  if (IsZero()) return "0";
  std::string out = std::to_string(limbs_.back());
  for (size_t i = limbs_.size() - 1; i-- > 0;) {
    std::string part = std::to_string(limbs_[i]);
    out += std::string(9 - part.size(), '0') + part;
  }
  return out;
}

}  // namespace prefrep
