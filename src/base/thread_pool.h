// Work-stealing thread pool for sharded per-component repair enumeration.
//
// The enumeration engines (graph/mis.cc, core/families.cc) decompose the
// conflict graph into connected components and materialize one choice list
// per component. Components are fully independent work units of wildly
// uneven cost — a component's repair space is exponential in its size —
// so the pool gives every worker its own task deque and lets idle workers
// steal from the others; a static round-robin split would serialize on
// whichever worker drew the largest component.
//
// The pool is deliberately simple and TSan-clean: deques are mutex
// guarded (task granularity is whole-component enumeration or a chunk of
// the repair product, microseconds to seconds, so queue overhead is
// noise), completion is one atomic counter, and the caller's thread
// participates as worker 0 so `thread_count` bounds total concurrency.

#ifndef PREFREP_BASE_THREAD_POOL_H_
#define PREFREP_BASE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "base/status.h"

namespace prefrep {

class ExecutionContext;

// Threading knob shared by the enumeration / CQA entry points. threads <= 1
// selects the serial path (the default: the pre-threaded code path with no
// pool and no synchronization). threads > 1 bounds the workers of one
// enumeration; results are identical to serial in either mode (pinned by
// tests/parallel_enumeration_test.cc) because every engine instance stays
// confined to one thread and the merge steps are commutative.
//
// `context`, when set, governs the whole call: engines poll it at step
// boundaries, pool workers observe its cancellation token between tasks,
// and byte budgets / DNF caps are drawn from its ExecutionLimits. Null means
// ungoverned (the historical defaults).
struct ParallelOptions {
  int threads = 1;
  ExecutionContext* context = nullptr;
};

// Worker count actually worth spawning for `task_count` independent tasks:
// never more threads than tasks, never less than one.
inline int EffectiveThreadCount(const ParallelOptions& options,
                                size_t task_count) {
  int threads = options.threads;
  if (threads < 1) threads = 1;
  if (task_count < static_cast<size_t>(threads)) {
    threads = static_cast<int>(task_count);
  }
  return threads < 1 ? 1 : threads;
}

class ThreadPool {
 public:
  // Spawns `thread_count - 1` OS threads; the caller participates as
  // worker 0 for the duration of each ParallelFor. thread_count >= 1.
  explicit ThreadPool(int thread_count);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  int thread_count() const { return thread_count_; }

  // Runs fn(task, worker) for tasks in [0, task_count) and returns when
  // every dispatched call has finished. `worker` is in [0, thread_count)
  // and identifies the executing lane within this call — index per-worker
  // state (engines, scratch, compiled queries) with it. Tasks are dealt
  // round-robin across the per-worker deques; a worker whose deque drains
  // steals from the back of the others. Not reentrant: fn must not call
  // ParallelFor on the same pool.
  //
  // Returns OK when every task ran to completion. A throw out of fn on ANY
  // lane (caller or pool worker) is captured — never std::terminate — and
  // surfaced as the returned Status (bad_alloc -> kResourceExhausted,
  // other std::exception -> kInternal); the first failure wins and the
  // remaining undispatched tasks are skipped. When `context` is set,
  // workers additionally observe its cancellation token between tasks and
  // a captured failure is latched into the context via Fail(); an
  // interrupted context yields its kCancelled / kDeadlineExceeded status.
  // Either way fn and its captures stay alive until the last in-flight
  // call finishes; some tasks may simply never have run.
  [[nodiscard]] Status ParallelFor(
      size_t task_count, const std::function<void(size_t task, int worker)>& fn,
      ExecutionContext* context = nullptr);

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<size_t> tasks;
  };

  void WorkerLoop(int worker);
  // Executes tasks until every deque (own, then victims) is empty. Catches
  // anything fn throws into epoch_error_; never lets an exception escape.
  void Drain(int worker);
  void CaptureEpochError(std::exception_ptr error);
  bool PopOwn(int worker, size_t* task);
  bool Steal(int thief, size_t* task);

  const int thread_count_;
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex mu_;  // guards epoch_ / stop_ / active_workers_ / fn_
  std::condition_variable work_cv_;    // workers wait here for a new epoch
  std::condition_variable parked_cv_;  // ParallelFor waits for stragglers
  uint64_t epoch_ = 0;
  int active_workers_ = 0;  // workers still draining the current epoch
  bool stop_ = false;
  const std::function<void(size_t, int)>* fn_ = nullptr;

  std::atomic<size_t> remaining_{0};
  std::mutex done_mu_;
  std::condition_variable done_cv_;

  // Per-epoch failure state: first captured exception (as Status) wins and
  // flips epoch_abort_ so the remaining tasks are skipped, not run.
  std::mutex error_mu_;
  Status epoch_error_;
  std::atomic<bool> epoch_abort_{false};
  ExecutionContext* context_ = nullptr;  // of the current epoch; may be null
};

}  // namespace prefrep

#endif  // PREFREP_BASE_THREAD_POOL_H_
