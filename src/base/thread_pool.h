// Work-stealing thread pool for sharded per-component repair enumeration.
//
// The enumeration engines (graph/mis.cc, core/families.cc) decompose the
// conflict graph into connected components and materialize one choice list
// per component. Components are fully independent work units of wildly
// uneven cost — a component's repair space is exponential in its size —
// so the pool gives every worker its own task deque and lets idle workers
// steal from the others; a static round-robin split would serialize on
// whichever worker drew the largest component.
//
// The pool is deliberately simple and TSan-clean: deques are mutex
// guarded (task granularity is whole-component enumeration or a chunk of
// the repair product, microseconds to seconds, so queue overhead is
// noise), completion is one atomic counter, and the caller's thread
// participates as worker 0 so `thread_count` bounds total concurrency.

#ifndef PREFREP_BASE_THREAD_POOL_H_
#define PREFREP_BASE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace prefrep {

// Threading knob shared by the enumeration / CQA entry points. threads <= 1
// selects the serial path (the default: the pre-threaded code path with no
// pool and no synchronization). threads > 1 bounds the workers of one
// enumeration; results are identical to serial in either mode (pinned by
// tests/parallel_enumeration_test.cc) because every engine instance stays
// confined to one thread and the merge steps are commutative.
struct ParallelOptions {
  int threads = 1;
};

// Worker count actually worth spawning for `task_count` independent tasks:
// never more threads than tasks, never less than one.
inline int EffectiveThreadCount(const ParallelOptions& options,
                                size_t task_count) {
  int threads = options.threads;
  if (threads < 1) threads = 1;
  if (task_count < static_cast<size_t>(threads)) {
    threads = static_cast<int>(task_count);
  }
  return threads < 1 ? 1 : threads;
}

class ThreadPool {
 public:
  // Spawns `thread_count - 1` OS threads; the caller participates as
  // worker 0 for the duration of each ParallelFor. thread_count >= 1.
  explicit ThreadPool(int thread_count);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  int thread_count() const { return thread_count_; }

  // Runs fn(task, worker) for every task in [0, task_count) exactly once
  // and returns when every call has finished. `worker` is in
  // [0, thread_count) and identifies the executing lane within this call —
  // index per-worker state (engines, scratch, compiled queries) with it.
  // Tasks are dealt round-robin across the per-worker deques; a worker
  // whose deque drains steals from the back of the others. Not reentrant:
  // fn must not call ParallelFor on the same pool.
  //
  // fn should not throw. If it throws on the caller's lane anyway (e.g.
  // std::bad_alloc), ParallelFor discards the unstarted tasks, waits for
  // in-flight calls to finish — fn and its captures stay alive until the
  // last worker parks — and rethrows; some tasks will simply never have
  // run. A throw on a pool worker terminates the process, as with any
  // exception escaping a std::thread.
  void ParallelFor(size_t task_count,
                   const std::function<void(size_t task, int worker)>& fn);

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<size_t> tasks;
  };

  void WorkerLoop(int worker);
  // Executes tasks until every deque (own, then victims) is empty.
  void Drain(int worker);
  // Clears every deque and waits for all workers to park, so the current
  // fn can be destroyed safely. Used when fn throws out of Drain(0).
  void AbandonEpoch();
  bool PopOwn(int worker, size_t* task);
  bool Steal(int thief, size_t* task);

  const int thread_count_;
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex mu_;  // guards epoch_ / stop_ / active_workers_ / fn_
  std::condition_variable work_cv_;    // workers wait here for a new epoch
  std::condition_variable parked_cv_;  // ParallelFor waits for stragglers
  uint64_t epoch_ = 0;
  int active_workers_ = 0;  // workers still draining the current epoch
  bool stop_ = false;
  const std::function<void(size_t, int)>* fn_ = nullptr;

  std::atomic<size_t> remaining_{0};
  std::mutex done_mu_;
  std::condition_variable done_cv_;
};

}  // namespace prefrep

#endif  // PREFREP_BASE_THREAD_POOL_H_
