#include "base/strings.h"

#include <cctype>

namespace prefrep {

std::vector<std::string> StrSplit(std::string_view text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      return parts;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

Result<int64_t> ParseInt64(std::string_view text) {
  if (text.empty()) return Status::ParseError("empty integer");
  bool negative = false;
  size_t i = 0;
  if (text[0] == '-') {
    negative = true;
    i = 1;
    if (text.size() == 1) return Status::ParseError("lone '-'");
  }
  uint64_t magnitude = 0;
  constexpr uint64_t kMax = uint64_t{1} << 63;  // |INT64_MIN|
  for (; i < text.size(); ++i) {
    char c = text[i];
    if (c < '0' || c > '9') {
      return Status::ParseError("invalid integer: '" + std::string(text) +
                                "'");
    }
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (magnitude > (kMax - digit) / 10) {
      return Status::ParseError("integer overflow: '" + std::string(text) +
                                "'");
    }
    magnitude = magnitude * 10 + digit;
  }
  if (!negative && magnitude >= kMax) {
    return Status::ParseError("integer overflow: '" + std::string(text) + "'");
  }
  if (negative) return static_cast<int64_t>(~magnitude + 1);
  return static_cast<int64_t>(magnitude);
}

bool IsIdentifier(std::string_view text) {
  if (text.empty()) return false;
  auto head = static_cast<unsigned char>(text[0]);
  if (!std::isalpha(head) && text[0] != '_') return false;
  for (char c : text.substr(1)) {
    auto u = static_cast<unsigned char>(c);
    if (!std::isalnum(u) && c != '_') return false;
  }
  return true;
}

}  // namespace prefrep
