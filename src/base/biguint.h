// BigUint: arbitrary-precision unsigned integers for exact repair counts.
//
// Example 4 of the paper exhibits instances with 2^n repairs; counting them
// exactly for n > 63 requires more than a machine word. Only the operations
// needed by repair counting are provided: addition, multiplication,
// exponentiation by squaring, comparison and decimal conversion.

#ifndef PREFREP_BASE_BIGUINT_H_
#define PREFREP_BASE_BIGUINT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace prefrep {

class BigUint {
 public:
  // Zero.
  BigUint() = default;
  // From a machine word.
  explicit BigUint(uint64_t v);

  static BigUint Zero() { return BigUint(); }
  static BigUint One() { return BigUint(1); }
  // 2^exponent.
  static BigUint PowerOfTwo(int exponent);
  // base^exponent (0^0 == 1).
  static BigUint Pow(const BigUint& base, uint64_t exponent);

  bool IsZero() const { return limbs_.empty(); }

  BigUint& operator+=(const BigUint& o);
  BigUint& operator*=(const BigUint& o);

  friend BigUint operator+(BigUint a, const BigUint& b) {
    a += b;
    return a;
  }
  friend BigUint operator*(BigUint a, const BigUint& b) {
    a *= b;
    return a;
  }

  friend bool operator==(const BigUint& a, const BigUint& b) {
    return a.limbs_ == b.limbs_;
  }
  friend bool operator<(const BigUint& a, const BigUint& b);
  friend bool operator<=(const BigUint& a, const BigUint& b) {
    return a == b || a < b;
  }

  // Exact value if it fits in uint64_t, otherwise false.
  bool ToUint64(uint64_t* out) const;
  // Approximate magnitude (inf if enormous); used only for reporting.
  double ToDouble() const;
  // Exact decimal representation.
  std::string ToString() const;

 private:
  // Base-1e9 limbs, little-endian, no trailing zero limbs ("zero" == empty).
  static constexpr uint32_t kBase = 1000000000;
  void Normalize();

  std::vector<uint32_t> limbs_;
};

}  // namespace prefrep

#endif  // PREFREP_BASE_BIGUINT_H_
