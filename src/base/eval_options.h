// EvalOptions: the one consolidated knob struct for every CQA-stack entry
// point, and the primary options type of the server facade (src/server/).
//
// Historically each call threaded `ParallelOptions` (threads + context),
// `CqaPlannerOptions` (tier forcing + DNF budget) and per-call limits as
// separate positional parameters — 113 occurrences across 17 files by
// PR 7. EvalOptions absorbs all of them:
//
//   threads     sharding width (ParallelOptions.threads)
//   force_tier  planner tier override (CqaPlannerOptions.force_tier)
//   deadline    per-call wall-clock budget; an ExecutionContext is
//               materialized on demand to enforce it
//   limits      per-call ExecutionLimits (byte / DNF / repair-list caps)
//   context     an externally owned ExecutionContext; when set it wins
//               and `deadline`/`limits` here are ignored (the context
//               already carries its own)
//
// EvalContextScope turns an EvalOptions into the effective per-call
// governance: it owns a fresh ExecutionContext exactly when the options
// demand one (deadline armed or non-default limits, and no external
// context), so ungoverned calls keep taking the historical zero-overhead
// paths (context == nullptr all the way down).
//
// This header lives in base/ — below core/ and cqa/ — so that both the
// engine layers and the server facade can name the same struct. CqaTier
// is defined here (rather than cqa/planner.h, which re-exports it) for
// the same layering reason: EvalOptions::force_tier needs the enum.

#ifndef PREFREP_BASE_EVAL_OPTIONS_H_
#define PREFREP_BASE_EVAL_OPTIONS_H_

#include <chrono>
#include <optional>

#include "base/exec_context.h"
#include "base/thread_pool.h"

namespace prefrep {

// The CQA planner's execution tiers (see cqa/planner.h for the routing
// rules; the enum lives here so base-level EvalOptions can carry it).
enum class CqaTier {
  kSingleRepair,    // tier 0: conflict-free database, evaluate once
  kGroundFastPath,  // tier 1: polynomial Rep-only engine
  kEnumeration,     // tier 2: sharded repair-product enumeration
};

struct EvalOptions {
  // Worker threads for the sharded enumeration paths; <= 1 is the serial
  // default. Results are bit-for-bit independent of this knob.
  int threads = 1;

  // Forces a planner tier instead of planning (differential tests and
  // benches). Forcing an inapplicable tier fails with kInvalidArgument.
  std::optional<CqaTier> force_tier;

  // Per-call wall-clock budget; unset means no deadline. Enforced by a
  // call-scoped ExecutionContext (expiry surfaces as kDeadlineExceeded).
  std::optional<std::chrono::nanoseconds> deadline;

  // Per-call resource limits (component-list bytes, DNF caps, repair-list
  // cap). Defaults reproduce the historical constants; leaving them
  // untouched keeps the call on the ungoverned fast path.
  ExecutionLimits limits;

  // Externally owned context (cooperative cancel, shared governance).
  // When set, it supersedes `deadline` and `limits` above.
  ExecutionContext* context = nullptr;

  // True iff the options need a call-scoped context to be honored (some
  // governance requested but no external context supplied).
  bool NeedsOwnContext() const {
    return context == nullptr &&
           (deadline.has_value() || !(limits == ExecutionLimits{}));
  }

  // The legacy ParallelOptions view of these options, against `effective`
  // (the external context or an EvalContextScope-owned one).
  ParallelOptions Parallel(ExecutionContext* effective) const {
    ParallelOptions parallel;
    parallel.threads = threads;
    parallel.context = effective;
    return parallel;
  }

  // Lifts a legacy ParallelOptions into the consolidated form (the
  // deprecated wrappers delegate through this).
  static EvalOptions FromParallel(const ParallelOptions& parallel) {
    EvalOptions options;
    options.threads = parallel.threads;
    options.context = parallel.context;
    return options;
  }
};

// Materializes the effective ExecutionContext for one call: the external
// one when given, a scope-owned one when the options demand governance,
// nullptr (ungoverned) otherwise. Stack-allocate next to the call.
class EvalContextScope {
 public:
  explicit EvalContextScope(const EvalOptions& options) {
    if (options.context != nullptr) {
      context_ = options.context;
      return;
    }
    if (options.NeedsOwnContext()) {
      owned_.emplace(options.limits);
      if (options.deadline.has_value()) {
        owned_->SetDeadlineAfter(*options.deadline);
      }
      context_ = &*owned_;
    }
  }

  EvalContextScope(const EvalContextScope&) = delete;
  EvalContextScope& operator=(const EvalContextScope&) = delete;

  // May be nullptr (ungoverned call).
  ExecutionContext* context() { return context_; }

 private:
  std::optional<ExecutionContext> owned_;
  ExecutionContext* context_ = nullptr;
};

}  // namespace prefrep

#endif  // PREFREP_BASE_EVAL_OPTIONS_H_
