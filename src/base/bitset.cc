#include "base/bitset.h"

#include <algorithm>
#include <bit>

namespace prefrep {

int DynamicBitset::Count() const {
  int total = 0;
  for (uint64_t w : words_) total += std::popcount(w);
  return total;
}

bool DynamicBitset::Any() const {
  for (uint64_t w : words_) {
    if (w != 0) return true;
  }
  return false;
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& o) {
  // Ragged-tolerant: `o` is read zero-extended and truncated to this
  // universe. Dropping a SET bit of `o` would change the meaning — the
  // only sanctioned ragged sources (shared adjacency rows of derived
  // conflict graphs) never have one past min(sizes).
  DCHECK(o.NextSetBit(size_) == -1)
      << "operator|= would drop set bits of a larger operand";
  const size_t common = std::min(words_.size(), o.words_.size());
  for (size_t i = 0; i < common; ++i) words_[i] |= o.words_[i];
  if (o.size_ > size_) ClearPadding();  // boundary word may straddle sizes
  return *this;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& o) {
  CHECK_EQ(size_, o.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator^=(const DynamicBitset& o) {
  CHECK_EQ(size_, o.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] ^= o.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::Subtract(const DynamicBitset& o) {
  CHECK_EQ(size_, o.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= ~o.words_[i];
  return *this;
}

void DynamicBitset::AssignOr(const DynamicBitset& a, const DynamicBitset& b) {
  CHECK_EQ(size_, a.size_);
  CHECK_EQ(size_, b.size_);
  for (size_t i = 0; i < words_.size(); ++i) {
    words_[i] = a.words_[i] | b.words_[i];
  }
}

void DynamicBitset::AssignAnd(const DynamicBitset& a, const DynamicBitset& b) {
  // Ragged-tolerant: sources read zero-extended, result confined to this
  // universe. Exact as long as a ∩ b has no element >= size_, which holds
  // whenever either operand fits (the common case: one operand is a
  // full-universe mask, the other a possibly-ragged adjacency row).
  DCHECK(a.NextSetBit(size_) == -1 || b.NextSetBit(size_) == -1)
      << "AssignAnd would drop set bits of the intersection";
  const size_t common =
      std::min({words_.size(), a.words_.size(), b.words_.size()});
  for (size_t i = 0; i < common; ++i) {
    words_[i] = a.words_[i] & b.words_[i];
  }
  for (size_t i = common; i < words_.size(); ++i) words_[i] = 0;
  if (common == words_.size() && !words_.empty()) ClearPadding();
}

void DynamicBitset::AssignDifference(const DynamicBitset& a,
                                     const DynamicBitset& b) {
  // Ragged-tolerant (see AssignAnd); exact when a's set bits fit this
  // universe — a \ b can only shrink a.
  DCHECK(a.NextSetBit(size_) == -1)
      << "AssignDifference would drop set bits of the minuend";
  const size_t a_common = std::min(words_.size(), a.words_.size());
  for (size_t i = 0; i < a_common; ++i) {
    uint64_t bw = i < b.words_.size() ? b.words_[i] : 0;
    words_[i] = a.words_[i] & ~bw;
  }
  for (size_t i = a_common; i < words_.size(); ++i) words_[i] = 0;
  if (a_common == words_.size() && !words_.empty()) ClearPadding();
}

int DynamicBitset::CountInWordRange(int word_begin, int word_end) const {
  DCHECK(word_begin >= 0 && word_begin <= word_end &&
         word_end <= WordCount());
  int total = 0;
  for (int i = word_begin; i < word_end; ++i) {
    total += std::popcount(words_[i]);
  }
  return total;
}

uint64_t DynamicBitset::WordHashValue() const {
  uint64_t h = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    h ^= WordHashMix(static_cast<int>(i), words_[i]);
  }
  return h;
}

DynamicBitset DynamicBitset::Complement() const {
  DynamicBitset out(size_);
  for (size_t i = 0; i < words_.size(); ++i) out.words_[i] = ~words_[i];
  out.ClearPadding();
  return out;
}

bool DynamicBitset::IsSubsetOf(const DynamicBitset& o) const {
  CHECK_EQ(size_, o.size_);
  for (size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & ~o.words_[i]) != 0) return false;
  }
  return true;
}

bool DynamicBitset::Intersects(const DynamicBitset& o) const {
  // Ragged-tolerant: under zero-extension the intersection lives entirely
  // in the common prefix, so differing sizes need no further care.
  const size_t common = std::min(words_.size(), o.words_.size());
  for (size_t i = 0; i < common; ++i) {
    if ((words_[i] & o.words_[i]) != 0) return true;
  }
  return false;
}

int DynamicBitset::IntersectionCount(const DynamicBitset& o) const {
  CHECK_EQ(size_, o.size_);
  int total = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    total += std::popcount(words_[i] & o.words_[i]);
  }
  return total;
}

int DynamicBitset::NextSetBit(int from) const {
  if (from < 0) from = 0;
  if (from >= size_) return -1;
  size_t word = static_cast<size_t>(from) >> 6;
  uint64_t cur = words_[word] & (~uint64_t{0} << (from & 63));
  while (true) {
    if (cur != 0) {
      int bit = static_cast<int>(word * 64 + std::countr_zero(cur));
      return bit < size_ ? bit : -1;
    }
    if (++word >= words_.size()) return -1;
    cur = words_[word];
  }
}

int DynamicBitset::SoleElement() const {
  int first = FirstSetBit();
  CHECK_GE(first, 0) << "SoleElement of empty set";
  CHECK_EQ(NextSetBit(first + 1), -1) << "SoleElement of non-singleton";
  return first;
}

std::vector<int> DynamicBitset::ToVector() const {
  std::vector<int> out;
  out.reserve(Count());
  ForEachSetBit(*this, [&out](int i) { out.push_back(i); });
  return out;
}

std::string DynamicBitset::ToString() const {
  std::string out = "{";
  bool first = true;
  ForEachSetBit(*this, [&](int i) {
    if (!first) out += ", ";
    first = false;
    out += std::to_string(i);
  });
  out += "}";
  return out;
}

size_t DynamicBitset::Hash::operator()(const DynamicBitset& s) const {
  // FNV-1a over the words.
  uint64_t h = 1469598103934665603ull;
  for (uint64_t w : s.words_) {
    h ^= w;
    h *= 1099511628211ull;
  }
  h ^= static_cast<uint64_t>(s.size_);
  h *= 1099511628211ull;
  return static_cast<size_t>(h);
}

}  // namespace prefrep
