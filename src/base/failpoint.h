// Test-only failpoint registry for fault injection.
//
// Long-running engines mark named sites with PREFREP_FAILPOINT("site.name").
// Tests arm a site with an action (throw bad_alloc, expire a deadline via a
// captured ExecutionContext, count hits, ...) to exercise error paths that
// are otherwise unreachable deterministically. In release builds (NDEBUG)
// the macro compiles to nothing; in debug builds a disarmed site costs one
// relaxed atomic load of a global counter.
//
// Usage (test side):
//   failpoint::ScopedFailpoint fp("thread_pool.task",
//                                 [] { throw std::bad_alloc(); });
//   ... run the workload; assert the surfaced Status ...
//
// Actions may fire concurrently from pool workers; the registry copies the
// action out of the lock before invoking it, so actions must not call back
// into Arm/Disarm. Tests must guard on failpoint::kEnabled (GTEST_SKIP in
// release) since the same test binaries run in Release CI legs.

#ifndef PREFREP_BASE_FAILPOINT_H_
#define PREFREP_BASE_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string_view>

namespace prefrep::failpoint {

#ifdef NDEBUG
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

// Arms `site`: the action fires on every hit after the first `skip` hits,
// at most `limit` times (limit < 0 means unlimited). Re-arming replaces the
// previous registration. No-op in release builds.
void Arm(std::string_view site, std::function<void()> action, int skip = 0,
         int limit = -1);

// Disarms one site / all sites. Hit counts for disarmed sites are dropped.
void Disarm(std::string_view site);
void DisarmAll();

// Number of times an armed `site` was reached (including skipped hits);
// 0 if the site is not armed.
uint64_t HitCount(std::string_view site);

// RAII arm/disarm for test scoping.
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string_view site, std::function<void()> action,
                  int skip = 0, int limit = -1)
      : site_(site) {
    Arm(site_, std::move(action), skip, limit);
  }
  ~ScopedFailpoint() { Disarm(site_); }

  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

  uint64_t hit_count() const { return HitCount(site_); }

 private:
  std::string_view site_;
};

namespace internal {
// Non-zero while any site is armed; the disarmed fast path reads only this.
extern std::atomic<int> g_armed_count;
void Evaluate(const char* site);

inline void MaybeEvaluate(const char* site) {
  if (g_armed_count.load(std::memory_order_relaxed) == 0) return;
  Evaluate(site);
}
}  // namespace internal

}  // namespace prefrep::failpoint

#ifdef NDEBUG
#define PREFREP_FAILPOINT(site) ((void)0)
#else
#define PREFREP_FAILPOINT(site) ::prefrep::failpoint::internal::MaybeEvaluate(site)
#endif

#endif  // PREFREP_BASE_FAILPOINT_H_
