#include "base/thread_pool.h"

#include "base/logging.h"

namespace prefrep {

ThreadPool::ThreadPool(int thread_count) : thread_count_(thread_count) {
  CHECK_GE(thread_count, 1);
  queues_.reserve(thread_count);
  for (int w = 0; w < thread_count; ++w) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(thread_count - 1);
  for (int w = 1; w < thread_count; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop(int worker) {
  uint64_t seen_epoch = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
    }
    Drain(worker);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_workers_;
    }
    parked_cv_.notify_one();
  }
}

void ThreadPool::ParallelFor(
    size_t task_count, const std::function<void(size_t, int)>& fn) {
  if (task_count == 0) return;
  {
    // Deal the tasks and open the epoch under one lock: a straggler from
    // the previous call must be parked before the deques refill, so it can
    // never run a new task against the old fn.
    std::unique_lock<std::mutex> lock(mu_);
    parked_cv_.wait(lock, [&] { return active_workers_ == 0; });
    fn_ = &fn;
    remaining_.store(task_count, std::memory_order_relaxed);
    for (size_t task = 0; task < task_count; ++task) {
      WorkerQueue& queue = *queues_[task % thread_count_];
      std::lock_guard<std::mutex> queue_lock(queue.mu);
      queue.tasks.push_back(task);
    }
    ++epoch_;
    active_workers_ = thread_count_ - 1;
  }
  work_cv_.notify_all();
  try {
    Drain(0);
  } catch (...) {
    // fn threw on the caller's lane. `fn` and everything it captures must
    // outlive the workers' last dereference of fn_, so before unwinding:
    // discard the undispatched tasks and wait for every worker to park
    // (in-flight calls finish normally). remaining_ is left stale; the
    // next ParallelFor resets it.
    AbandonEpoch();
    throw;
  }
  // The caller's deque view is empty, but stolen tasks may still be running
  // on workers; the last task completion releases this wait.
  std::unique_lock<std::mutex> lock(done_mu_);
  done_cv_.wait(lock, [&] {
    return remaining_.load(std::memory_order_acquire) == 0;
  });
}

void ThreadPool::AbandonEpoch() {
  for (const std::unique_ptr<WorkerQueue>& queue : queues_) {
    std::lock_guard<std::mutex> lock(queue->mu);
    queue->tasks.clear();
  }
  std::unique_lock<std::mutex> lock(mu_);
  parked_cv_.wait(lock, [&] { return active_workers_ == 0; });
}

void ThreadPool::Drain(int worker) {
  size_t task;
  while (PopOwn(worker, &task) || Steal(worker, &task)) {
    (*fn_)(task, worker);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Taking done_mu_ before notifying pairs with the predicate check in
      // ParallelFor: the waiter either sees remaining_ == 0 or is already
      // inside wait() when the notification fires.
      std::lock_guard<std::mutex> lock(done_mu_);
      done_cv_.notify_all();
    }
  }
}

bool ThreadPool::PopOwn(int worker, size_t* task) {
  WorkerQueue& queue = *queues_[worker];
  std::lock_guard<std::mutex> lock(queue.mu);
  if (queue.tasks.empty()) return false;
  *task = queue.tasks.front();
  queue.tasks.pop_front();
  return true;
}

bool ThreadPool::Steal(int thief, size_t* task) {
  for (int offset = 1; offset < thread_count_; ++offset) {
    WorkerQueue& queue = *queues_[(thief + offset) % thread_count_];
    std::lock_guard<std::mutex> lock(queue.mu);
    if (queue.tasks.empty()) continue;
    *task = queue.tasks.back();
    queue.tasks.pop_back();
    return true;
  }
  return false;
}

}  // namespace prefrep
