#include "base/thread_pool.h"

#include <exception>
#include <new>
#include <string>

#include "base/exec_context.h"
#include "base/failpoint.h"
#include "base/logging.h"

namespace prefrep {
namespace {

Status StatusFromException(std::exception_ptr error) {
  try {
    std::rethrow_exception(error);
  } catch (const std::bad_alloc&) {
    return Status::ResourceExhausted("worker allocation failed (bad_alloc)");
  } catch (const std::exception& e) {
    return Status::Internal(std::string("worker exception: ") + e.what());
  } catch (...) {
    return Status::Internal("worker exception of unknown type");
  }
}

}  // namespace

ThreadPool::ThreadPool(int thread_count) : thread_count_(thread_count) {
  CHECK_GE(thread_count, 1);
  queues_.reserve(thread_count);
  for (int w = 0; w < thread_count; ++w) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(thread_count - 1);
  for (int w = 1; w < thread_count; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop(int worker) {
  uint64_t seen_epoch = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
    }
    Drain(worker);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_workers_;
    }
    parked_cv_.notify_one();
  }
}

Status ThreadPool::ParallelFor(size_t task_count,
                               const std::function<void(size_t, int)>& fn,
                               ExecutionContext* context) {
  if (task_count == 0) return Status::Ok();
  {
    // Deal the tasks and open the epoch under one lock: a straggler from
    // the previous call must be parked before the deques refill, so it can
    // never run a new task against the old fn. The same parked guarantee
    // makes resetting the epoch failure state here race-free.
    std::unique_lock<std::mutex> lock(mu_);
    parked_cv_.wait(lock, [&] { return active_workers_ == 0; });
    fn_ = &fn;
    context_ = context;
    epoch_abort_.store(false, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> error_lock(error_mu_);
      epoch_error_ = Status::Ok();
    }
    remaining_.store(task_count, std::memory_order_relaxed);
    for (size_t task = 0; task < task_count; ++task) {
      WorkerQueue& queue = *queues_[task % thread_count_];
      std::lock_guard<std::mutex> queue_lock(queue.mu);
      queue.tasks.push_back(task);
    }
    ++epoch_;
    active_workers_ = thread_count_ - 1;
  }
  work_cv_.notify_all();
  Drain(0);
  // The caller's deque view is empty, but stolen tasks may still be running
  // on workers; the last task completion releases this wait, after which fn
  // and its captures are safe to destroy.
  {
    std::unique_lock<std::mutex> lock(done_mu_);
    done_cv_.wait(lock, [&] {
      return remaining_.load(std::memory_order_acquire) == 0;
    });
  }
  Status error;
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    error = epoch_error_;
  }
  if (!error.ok()) {
    if (context != nullptr) context->Fail(error);
    return error;
  }
  // A cancel/deadline observed mid-epoch skipped the remaining tasks; the
  // caller sees the context's latched status rather than a silent partial
  // completion.
  if (context != nullptr) return context->status();
  return Status::Ok();
}

void ThreadPool::CaptureEpochError(std::exception_ptr error) {
  std::lock_guard<std::mutex> lock(error_mu_);
  if (epoch_error_.ok()) epoch_error_ = StatusFromException(error);
  epoch_abort_.store(true, std::memory_order_relaxed);
}

void ThreadPool::Drain(int worker) {
  size_t task;
  while (PopOwn(worker, &task) || Steal(worker, &task)) {
    const bool skip =
        epoch_abort_.load(std::memory_order_relaxed) ||
        (context_ != nullptr && context_->ShouldStop());
    if (!skip) {
      try {
        PREFREP_FAILPOINT("thread_pool.task");
        (*fn_)(task, worker);
      } catch (...) {
        CaptureEpochError(std::current_exception());
      }
    }
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Taking done_mu_ before notifying pairs with the predicate check in
      // ParallelFor: the waiter either sees remaining_ == 0 or is already
      // inside wait() when the notification fires.
      std::lock_guard<std::mutex> lock(done_mu_);
      done_cv_.notify_all();
    }
  }
}

bool ThreadPool::PopOwn(int worker, size_t* task) {
  WorkerQueue& queue = *queues_[worker];
  std::lock_guard<std::mutex> lock(queue.mu);
  if (queue.tasks.empty()) return false;
  *task = queue.tasks.front();
  queue.tasks.pop_front();
  return true;
}

bool ThreadPool::Steal(int thief, size_t* task) {
  for (int offset = 1; offset < thread_count_; ++offset) {
    WorkerQueue& queue = *queues_[(thief + offset) % thread_count_];
    std::lock_guard<std::mutex> lock(queue.mu);
    if (queue.tasks.empty()) continue;
    *task = queue.tasks.back();
    queue.tasks.pop_back();
    return true;
  }
  return false;
}

}  // namespace prefrep
