// Small string helpers shared by the parsers and pretty-printers.

#ifndef PREFREP_BASE_STRINGS_H_
#define PREFREP_BASE_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"

namespace prefrep {

// Splits on `sep`; empty fields are preserved ("a,,b" -> {"a","","b"}).
std::vector<std::string> StrSplit(std::string_view text, char sep);

// Joins with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

// Removes leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

// Parses a decimal (optionally negative) 64-bit integer; the whole string
// must be consumed.
Result<int64_t> ParseInt64(std::string_view text);

// True if `text` is a valid identifier: [A-Za-z_][A-Za-z0-9_]*.
bool IsIdentifier(std::string_view text);

}  // namespace prefrep

#endif  // PREFREP_BASE_STRINGS_H_
