// ExecutionContext: per-query resource governance for the CQA stack.
//
// Preferred-repair CQA is Pi^p_2-complete in the general case, so every
// long-running loop in the engine must be boundable: by wall-clock deadline,
// by cooperative cancellation, and by memory/size budgets. ExecutionContext
// bundles the three concerns behind one object that is threaded through
// `ParallelOptions` (see thread_pool.h) into every enumeration engine:
//
//   - Deadline: a steady_clock time point; expiry latches kDeadlineExceeded.
//   - Cancellation: `RequestCancel()` is lock-free and async-signal-safe
//     (the query shell calls it from a SIGINT handler); the first interrupt
//     wins and latches the context's terminal status.
//   - Budgets: `ExecutionLimits` carries the per-context knobs that used to
//     be scattered constexprs (component-list bytes, DNF disjunct/literal
//     caps, repair-list cap). `ResourceArbiter` is the shared accounting
//     interface (atomic TryCharge/Refund) generalizing the old
//     ComponentListBudget.
//
// Engines poll `ShouldStop()` at step boundaries (MIS frame pops, C-Rep
// choice-tree nodes, odometer ticks, shard evaluations, DNF disjuncts). The
// poll is two relaxed atomic loads when no deadline is armed; a clock read
// is added only while a deadline is set. Polling callbacks return false to
// stop enumeration; Status-returning entry points then consult
// `interrupted()`/`status()` to convert the early stop into kCancelled or
// kDeadlineExceeded, annotated with an ExecutionStats snapshot.
//
// All members are thread-safe; one context is shared by every worker of a
// query. A context is single-use: once interrupted it stays interrupted.

#ifndef PREFREP_BASE_EXEC_CONTEXT_H_
#define PREFREP_BASE_EXEC_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <mutex>
#include <string>

#include "base/status.h"

namespace prefrep {

// Per-context resource knobs. Defaults reproduce the historical constexpr
// budgets exactly (kComponentListBudgetBytes, kDefaultDnfDisjunctBudget,
// kDefaultDnfLiteralBudget, and the 2^20 AllMaximalIndependentSets /
// PreferredRepairs list cap), so a default context changes no behavior.
struct ExecutionLimits {
  // Bytes of materialized per-component repair lists admitted before the
  // enumeration falls back to streaming (was graph/components.h's 256 MB).
  size_t component_list_budget_bytes = size_t{256} << 20;
  // Ground/quantifier-free DNF expansion caps (was query/normal_form.h's
  // kDefaultDnfDisjunctBudget / kDefaultDnfLiteralBudget).
  size_t max_dnf_disjuncts = 65536;
  size_t max_dnf_literals = size_t{1} << 20;
  // Cap on materialized repair lists returned by Result-valued enumerators.
  size_t max_repair_list = size_t{1} << 20;

  friend bool operator==(const ExecutionLimits&,
                         const ExecutionLimits&) = default;
};

// THE default repair-list cap (2^20): the single source of truth for the
// `limit` default of every Result-valued enumerator (PreferredRepairs,
// AllRepairs, AllMaximalIndependentSets, denial/extension forms).
// Attached contexts override it per call via limits().max_repair_list.
inline constexpr size_t kDefaultRepairListLimit =
    ExecutionLimits{}.max_repair_list;

// Monotonic counters describing how far a query got before finishing or
// being interrupted. Updated with relaxed atomics from all worker lanes;
// `Snapshot()` gives a consistent-enough copy for reporting (individual
// counters are exact, cross-counter skew is possible while running).
struct ExecutionStatsSnapshot {
  uint64_t components_completed = 0;
  uint64_t repairs_examined = 0;
  uint64_t bytes_charged = 0;  // cumulative arbiter admissions
  uint64_t peak_bytes = 0;     // high-water mark of concurrently held bytes
  uint64_t polls = 0;          // ShouldStop() calls observed

  // "components=3 repairs=1204 bytes_charged=65536 peak_bytes=4096 polls=..."
  std::string ToString() const;
};

class ExecutionStats {
 public:
  void AddComponentsCompleted(uint64_t n = 1) {
    components_completed_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddRepairsExamined(uint64_t n = 1) {
    repairs_examined_.fetch_add(n, std::memory_order_relaxed);
  }
  // Records an admitted charge of `bytes` with `in_use_after` bytes held
  // across the owning arbiter after the charge.
  void OnCharge(uint64_t bytes, uint64_t in_use_after);

  uint64_t repairs_examined() const {
    return repairs_examined_.load(std::memory_order_relaxed);
  }
  uint64_t components_completed() const {
    return components_completed_.load(std::memory_order_relaxed);
  }

  ExecutionStatsSnapshot Snapshot() const;

 private:
  friend class ExecutionContext;
  std::atomic<uint64_t> components_completed_{0};
  std::atomic<uint64_t> repairs_examined_{0};
  std::atomic<uint64_t> bytes_charged_{0};
  std::atomic<uint64_t> peak_bytes_{0};
  std::atomic<uint64_t> polls_{0};
};

// Thread-safe byte-accounting against a fixed limit; the unified successor
// of graph/components.h's ComponentListBudget. One arbiter governs one
// enumeration call; its limit comes from ExecutionLimits and its admissions
// are mirrored into ExecutionStats when a context is attached.
class ResourceArbiter {
 public:
  explicit ResourceArbiter(size_t limit_bytes, ExecutionStats* stats = nullptr)
      : limit_(limit_bytes), stats_(stats) {}

  ResourceArbiter(const ResourceArbiter&) = delete;
  ResourceArbiter& operator=(const ResourceArbiter&) = delete;

  // Attempts to admit `bytes`; returns false (without charging) if doing so
  // would exceed the limit.
  [[nodiscard]] bool TryCharge(size_t bytes);

  // Returns previously charged bytes to the pool.
  void Refund(size_t bytes);

  size_t used() const { return used_.load(std::memory_order_relaxed); }
  size_t limit() const { return limit_; }

 private:
  const size_t limit_;
  ExecutionStats* const stats_;
  std::atomic<size_t> used_{0};
};

class ExecutionContext {
 public:
  using Clock = std::chrono::steady_clock;

  ExecutionContext() = default;
  explicit ExecutionContext(const ExecutionLimits& limits) : limits_(limits) {}

  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  const ExecutionLimits& limits() const { return limits_; }
  ExecutionStats& stats() { return stats_; }
  const ExecutionStats& stats() const { return stats_; }

  // Arms (or re-arms) the deadline. Checked inside ShouldStop(); queries
  // without a deadline never read the clock.
  void set_deadline(Clock::time_point deadline);
  void SetDeadlineAfter(std::chrono::nanoseconds budget);

  // Requests cooperative cancellation. Lock-free and async-signal-safe:
  // performs only atomic operations, so it may be called from a signal
  // handler or any thread. Idempotent; loses to an earlier interrupt.
  void RequestCancel();

  // Latches `status` (must be non-OK) as the terminal state, e.g. a worker
  // exception converted to Status. First interrupt wins. Not signal-safe.
  void Fail(const Status& status);

  // Test facility: the n-th ShouldStop() poll (1-based, counted across all
  // threads) triggers RequestCancel(). n == 0 cancels on the next poll.
  // Drives the cancellation-fuzz suite's "cancel at an arbitrary step".
  void CancelAfterPolls(uint64_t n);

  // The hot poll, called at every enumeration step boundary. Returns true
  // once the context is interrupted (cancelled / deadline expired / failed).
  bool ShouldStop();

  // True once any interrupt latched. Unlike ShouldStop(), does not count as
  // a poll and never arms deadline/cancel transitions.
  bool interrupted() const {
    return state_.load(std::memory_order_acquire) != kLive;
  }

  // OK while live; the latched kCancelled / kDeadlineExceeded / failure
  // Status once interrupted.
  Status status() const;

  // Like status(), with an ExecutionStats snapshot appended to the message.
  Status StatusWithStats() const;

  uint64_t poll_count() const {
    return stats_.polls_.load(std::memory_order_relaxed);
  }

 private:
  enum : uint32_t { kLive = 0, kCancelled = 1, kDeadline = 2, kFailed = 3 };
  static constexpr int64_t kNoDeadline = std::numeric_limits<int64_t>::max();

  ExecutionLimits limits_;
  ExecutionStats stats_;
  std::atomic<uint32_t> state_{kLive};
  std::atomic<int64_t> deadline_ns_{kNoDeadline};
  std::atomic<uint64_t> cancel_after_polls_{
      std::numeric_limits<uint64_t>::max()};
  mutable std::mutex fail_mu_;  // guards fail_status_ only
  Status fail_status_;          // set once before state_ -> kFailed
};

}  // namespace prefrep

#endif  // PREFREP_BASE_EXEC_CONTEXT_H_
