#include "base/failpoint.h"

#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

namespace prefrep::failpoint {
namespace {

struct ArmedSite {
  std::function<void()> action;
  int skip = 0;
  int limit = -1;  // < 0: unlimited
  uint64_t hits = 0;
  int fired = 0;
};

std::mutex& RegistryMutex() {
  static std::mutex mu;
  return mu;
}

std::unordered_map<std::string, ArmedSite>& Registry() {
  static auto* registry = new std::unordered_map<std::string, ArmedSite>();
  return *registry;
}

}  // namespace

namespace internal {

std::atomic<int> g_armed_count{0};

void Evaluate(const char* site) {
  std::function<void()> action;
  {
    std::lock_guard<std::mutex> lock(RegistryMutex());
    auto it = Registry().find(site);
    if (it == Registry().end()) return;
    ArmedSite& armed = it->second;
    const uint64_t hit = armed.hits++;
    if (hit < static_cast<uint64_t>(armed.skip)) return;
    if (armed.limit >= 0 && armed.fired >= armed.limit) return;
    ++armed.fired;
    action = armed.action;  // copy; invoke outside the lock (it may throw)
  }
  if (action) action();
}

}  // namespace internal

void Arm(std::string_view site, std::function<void()> action, int skip,
         int limit) {
  if (!kEnabled) return;
  std::lock_guard<std::mutex> lock(RegistryMutex());
  auto [it, inserted] = Registry().try_emplace(std::string(site));
  it->second = ArmedSite{std::move(action), skip, limit, 0, 0};
  if (inserted) {
    internal::g_armed_count.fetch_add(1, std::memory_order_relaxed);
  }
}

void Disarm(std::string_view site) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  if (Registry().erase(std::string(site)) > 0) {
    internal::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisarmAll() {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  internal::g_armed_count.fetch_sub(static_cast<int>(Registry().size()),
                                    std::memory_order_relaxed);
  Registry().clear();
}

uint64_t HitCount(std::string_view site) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  auto it = Registry().find(std::string(site));
  return it == Registry().end() ? 0 : it->second.hits;
}

}  // namespace prefrep::failpoint
