// Deterministic pseudo-random generator for workload synthesis.
//
// All randomized generators in src/workload take an explicit seed so that
// tests and benchmarks are exactly reproducible across runs and machines
// (std::mt19937 distributions are not portable across standard libraries;
// we implement the distributions ourselves).

#ifndef PREFREP_BASE_RANDOM_H_
#define PREFREP_BASE_RANDOM_H_

#include <cstdint>
#include <vector>

#include "base/logging.h"

namespace prefrep {

// xoshiro256** seeded via SplitMix64.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform over all 64-bit values.
  uint64_t Next();

  // Uniform over [0, bound) via rejection sampling; bound > 0.
  uint64_t UniformInt(uint64_t bound);

  // Uniform over [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi);

  // Uniform over [0, 1).
  double UniformDouble();

  // True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  // A uniformly random permutation of {0, ..., n-1}.
  std::vector<int> Permutation(int n);

 private:
  uint64_t state_[4];
};

}  // namespace prefrep

#endif  // PREFREP_BASE_RANDOM_H_
