// Status / Result<T>: exception-free error propagation (RocksDB/Arrow idiom).
//
// Fallible public APIs return Status (no payload) or Result<T> (payload or
// error). Both carry a StatusCode and a human-readable message.

#ifndef PREFREP_BASE_STATUS_H_
#define PREFREP_BASE_STATUS_H_

#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "base/logging.h"

namespace prefrep {

// Broad error classification, modeled on absl::StatusCode.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kResourceExhausted,
  kInternal,
  kParseError,
  kCancelled,          // caller requested cancellation (cooperative)
  kDeadlineExceeded,   // the execution context's deadline expired
};

// Returns a stable lower-case name for `code` (e.g. "invalid_argument").
std::string_view StatusCodeName(StatusCode code);

// Value-type result of an operation that can fail. Cheap to copy when OK.
class [[nodiscard]] Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    CHECK(code != StatusCode::kOk) << "error status requires non-OK code";
  }

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "ok" or "<code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// Holds either a value of type T or an error Status. Accessing the value of
// an errored Result is a checked programming error.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  Result(T value) : payload_(std::in_place_index<0>, std::move(value)) {}
  Result(Status status) : payload_(std::in_place_index<1>, std::move(status)) {
    CHECK(!std::get<1>(payload_).ok())
        << "Result constructed from OK status but no value";
  }

  bool ok() const { return payload_.index() == 0; }

  // Error status; Status::Ok() when a value is held.
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<1>(payload_);
  }

  const T& value() const& {
    CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<0>(payload_);
  }
  T& value() & {
    CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<0>(payload_);
  }
  T&& value() && {
    CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<0>(std::move(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  T value_or(T fallback) const {
    if (ok()) return std::get<0>(payload_);
    return fallback;
  }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace prefrep

// Propagates an error Status from an expression, RocksDB-style.
#define PREFREP_RETURN_IF_ERROR(expr)                 \
  do {                                                \
    ::prefrep::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                        \
  } while (false)

// Evaluates a Result expression; on error returns its Status, otherwise
// assigns the value to `lhs` (declare the variable in `lhs`).
#define PREFREP_ASSIGN_OR_RETURN(lhs, expr)           \
  PREFREP_ASSIGN_OR_RETURN_IMPL(                      \
      PREFREP_STATUS_CONCAT(_result_tmp_, __LINE__), lhs, expr)

#define PREFREP_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

#define PREFREP_STATUS_CONCAT(a, b) PREFREP_STATUS_CONCAT_IMPL(a, b)
#define PREFREP_STATUS_CONCAT_IMPL(a, b) a##b

#endif  // PREFREP_BASE_STATUS_H_
