// DynamicBitset: a fixed-universe bit set used throughout the library to
// represent sets of tuples (repairs, winnow results, neighborhoods).
//
// All set-algebra operations used by the repair-optimality checks (subset
// test, intersection emptiness, difference) are word-parallel.

#ifndef PREFREP_BASE_BITSET_H_
#define PREFREP_BASE_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/logging.h"

namespace prefrep {

class DynamicBitset {
 public:
  DynamicBitset() : size_(0) {}

  // A bitset over the universe {0, ..., size-1}, initially empty.
  explicit DynamicBitset(int size) : size_(size), words_((size + 63) / 64, 0) {
    CHECK_GE(size, 0);
  }

  // A bitset over {0, ..., size-1} containing exactly `bits`.
  static DynamicBitset FromIndices(int size, std::initializer_list<int> bits) {
    DynamicBitset s(size);
    for (int b : bits) s.Set(b);
    return s;
  }
  static DynamicBitset FromIndices(int size, const std::vector<int>& bits) {
    DynamicBitset s(size);
    for (int b : bits) s.Set(b);
    return s;
  }

  // The full universe {0, ..., size-1}.
  static DynamicBitset AllSet(int size) {
    DynamicBitset s(size);
    for (auto& w : s.words_) w = ~uint64_t{0};
    s.ClearPadding();
    return s;
  }

  int size() const { return size_; }

  // Heap footprint of one bitset over this universe (used to budget
  // materialized repair lists without assuming the word layout). Counts the
  // words in use, not the vector capacity: a bitset assigned from a smaller
  // one may retain slack capacity, and budgets must not be charged for it.
  size_t MemoryBytes() const {
    return sizeof(DynamicBitset) + words_.size() * sizeof(uint64_t);
  }

  bool Test(int i) const {
    DCHECK(InRange(i));
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  void Set(int i) {
    DCHECK(InRange(i));
    words_[i >> 6] |= uint64_t{1} << (i & 63);
  }
  void Reset(int i) {
    DCHECK(InRange(i));
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }
  void Assign(int i, bool value) { value ? Set(i) : Reset(i); }

  // Number of set bits.
  int Count() const;
  bool Any() const;
  bool None() const { return !Any(); }

  // Word-level access for incremental algorithms (hash maintenance,
  // range popcounts). Words are little-endian 64-bit blocks; padding bits
  // beyond size() are always zero.
  int WordCount() const { return static_cast<int>(words_.size()); }
  uint64_t Word(int word_index) const {
    DCHECK(word_index >= 0 && word_index < WordCount());
    return words_[word_index];
  }
  // Number of set bits among words [word_begin, word_end).
  int CountInWordRange(int word_begin, int word_end) const;

  void Clear() {
    for (auto& w : words_) w = 0;
  }

  // In-place set algebra. Most operations require operands over one
  // universe size; the ones marked RAGGED-TOLERANT additionally accept a
  // source operand of a different size with zero-extension semantics: the
  // source is read as if padded with zeros beyond its size, and the result
  // is confined to the destination's universe. The tolerance exists for
  // one producer — ConflictGraph::DeriveFrom shares adjacency rows sized
  // to a PARENT universe with a child graph of a different vertex count
  // (graph/conflict_graph.h); such rows provably have no set bit at or
  // beyond min(sizes), so truncation and zero-extension are both exact.
  // Debug builds DCHECK that no SET bit is dropped, so an accidental size
  // mismatch elsewhere still trips in every test configuration.
  //
  DynamicBitset& operator|=(const DynamicBitset& o);  // RAGGED-TOLERANT in o
  DynamicBitset& operator&=(const DynamicBitset& o);
  DynamicBitset& operator^=(const DynamicBitset& o);
  // Set difference: removes every element of `o`.
  DynamicBitset& Subtract(const DynamicBitset& o);

  // Three-operand in-place forms: *this = a OP b, overwriting the previous
  // contents without touching the heap. These are the workhorses of the
  // enumeration hot loops, where `*this` is a pooled scratch buffer reused
  // across search nodes.
  void AssignOr(const DynamicBitset& a, const DynamicBitset& b);
  // RAGGED-TOLERANT in `a` and `b` (a ∩ b must fit the destination; in
  // practice one operand is a full-universe mask that bounds the result).
  void AssignAnd(const DynamicBitset& a, const DynamicBitset& b);
  // *this = a \ b. RAGGED-TOLERANT in `a` and `b` (a's set bits must fit
  // the destination).
  void AssignDifference(const DynamicBitset& a, const DynamicBitset& b);

  friend DynamicBitset operator|(DynamicBitset a, const DynamicBitset& b) {
    a |= b;
    return a;
  }
  friend DynamicBitset operator&(DynamicBitset a, const DynamicBitset& b) {
    a &= b;
    return a;
  }
  // a \ b.
  friend DynamicBitset Difference(DynamicBitset a, const DynamicBitset& b) {
    a.Subtract(b);
    return a;
  }

  // Complement within the universe.
  DynamicBitset Complement() const;

  bool IsSubsetOf(const DynamicBitset& o) const;
  // RAGGED-TOLERANT: operands of different sizes intersect over their
  // common prefix (exact under zero-extension — no DCHECK needed).
  bool Intersects(const DynamicBitset& o) const;
  int IntersectionCount(const DynamicBitset& o) const;

  // Index of the lowest set bit at position >= from, or -1 if none.
  int NextSetBit(int from) const;
  // Index of the lowest set bit, or -1 for the empty set.
  int FirstSetBit() const { return NextSetBit(0); }
  // The single element of a singleton set; CHECK-fails otherwise.
  int SoleElement() const;

  std::vector<int> ToVector() const;

  // E.g. "{0, 3, 7}".
  std::string ToString() const;

  friend bool operator==(const DynamicBitset& a, const DynamicBitset& b) {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }
  // Lexicographic on words; a total order usable with std::set / sorting.
  friend bool operator<(const DynamicBitset& a, const DynamicBitset& b) {
    if (a.size_ != b.size_) return a.size_ < b.size_;
    return a.words_ < b.words_;
  }

  struct Hash {
    size_t operator()(const DynamicBitset& s) const;
  };

  // --- Incremental word hash -----------------------------------------------
  //
  // WordHashValue() equals the XOR over all words of WordHashMix(i, word_i).
  // Because the combination is XOR and zero words mix to zero, flipping bits
  // inside a single word updates the hash in O(1):
  //
  //   h ^= WordHashMix(w, old_word) ^ WordHashMix(w, new_word);
  //
  // Enumeration memos key on (hash, set) pairs and maintain the hash
  // alongside the set instead of rehashing every word on every probe.
  static uint64_t WordHashMix(int word_index, uint64_t word) {
    if (word == 0) return 0;
    // splitmix64 finalizer over the word salted by its index; a full-width
    // mix keeps XOR-combined per-word hashes collision-resistant.
    uint64_t x = word + 0x9e3779b97f4a7c15ull * (uint64_t{1} + word_index);
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }
  uint64_t WordHashValue() const;

 private:
  bool InRange(int i) const { return i >= 0 && i < size_; }
  void ClearPadding() {
    int tail = size_ & 63;
    if (tail != 0 && !words_.empty()) {
      words_.back() &= (uint64_t{1} << tail) - 1;
    }
  }

  int size_;
  std::vector<uint64_t> words_;
};

// A pool of reusable scratch bitsets over one universe. Enumeration engines
// acquire a handle at frame setup and the buffer returns to the pool when
// the handle dies, so steady-state search nodes never touch the heap.
// Not thread-safe; use one pool per thread/engine instance. Handles must
// not outlive the pool they came from.
class BitsetPool {
 public:
  explicit BitsetPool(int universe_size) : universe_size_(universe_size) {
    CHECK_GE(universe_size, 0);
  }
  BitsetPool(const BitsetPool&) = delete;
  BitsetPool& operator=(const BitsetPool&) = delete;

  // Owning handle; releases the buffer back to the pool on destruction.
  class Handle {
   public:
    Handle() : pool_(nullptr) {}
    Handle(Handle&& o) noexcept
        : pool_(std::exchange(o.pool_, nullptr)), set_(std::move(o.set_)) {}
    Handle& operator=(Handle&& o) noexcept {
      if (this != &o) {
        Release();
        pool_ = std::exchange(o.pool_, nullptr);
        set_ = std::move(o.set_);
      }
      return *this;
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    ~Handle() { Release(); }

    DynamicBitset& operator*() { return *set_; }
    const DynamicBitset& operator*() const { return *set_; }
    DynamicBitset* operator->() { return set_.get(); }
    const DynamicBitset* operator->() const { return set_.get(); }

   private:
    friend class BitsetPool;
    Handle(BitsetPool* pool, std::unique_ptr<DynamicBitset> set)
        : pool_(pool), set_(std::move(set)) {}
    void Release() {
      if (pool_ != nullptr && set_ != nullptr) {
        pool_->free_.push_back(std::move(set_));
      }
      pool_ = nullptr;
    }
    BitsetPool* pool_;
    std::unique_ptr<DynamicBitset> set_;
  };

  // An empty bitset over the pool's universe (cleared before handing out).
  Handle Acquire() {
    if (free_.empty()) {
      return Handle(this, std::make_unique<DynamicBitset>(universe_size_));
    }
    std::unique_ptr<DynamicBitset> set = std::move(free_.back());
    free_.pop_back();
    set->Clear();
    return Handle(this, std::move(set));
  }

  int universe_size() const { return universe_size_; }
  // Buffers currently sitting in the pool (for tests).
  size_t idle_count() const { return free_.size(); }

 private:
  int universe_size_;
  std::vector<std::unique_ptr<DynamicBitset>> free_;
};

// Applies `fn(int)` to every element of `s` in increasing order.
template <typename Fn>
void ForEachSetBit(const DynamicBitset& s, Fn&& fn) {
  for (int i = s.FirstSetBit(); i >= 0; i = s.NextSetBit(i + 1)) fn(i);
}

}  // namespace prefrep

#endif  // PREFREP_BASE_BITSET_H_
