// DynamicBitset: a fixed-universe bit set used throughout the library to
// represent sets of tuples (repairs, winnow results, neighborhoods).
//
// All set-algebra operations used by the repair-optimality checks (subset
// test, intersection emptiness, difference) are word-parallel.

#ifndef PREFREP_BASE_BITSET_H_
#define PREFREP_BASE_BITSET_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "base/logging.h"

namespace prefrep {

class DynamicBitset {
 public:
  DynamicBitset() : size_(0) {}

  // A bitset over the universe {0, ..., size-1}, initially empty.
  explicit DynamicBitset(int size) : size_(size), words_((size + 63) / 64, 0) {
    CHECK_GE(size, 0);
  }

  // A bitset over {0, ..., size-1} containing exactly `bits`.
  static DynamicBitset FromIndices(int size, std::initializer_list<int> bits) {
    DynamicBitset s(size);
    for (int b : bits) s.Set(b);
    return s;
  }
  static DynamicBitset FromIndices(int size, const std::vector<int>& bits) {
    DynamicBitset s(size);
    for (int b : bits) s.Set(b);
    return s;
  }

  // The full universe {0, ..., size-1}.
  static DynamicBitset AllSet(int size) {
    DynamicBitset s(size);
    for (auto& w : s.words_) w = ~uint64_t{0};
    s.ClearPadding();
    return s;
  }

  int size() const { return size_; }

  // Heap footprint of one bitset over this universe (used to budget
  // materialized repair lists without assuming the word layout).
  size_t MemoryBytes() const {
    return sizeof(DynamicBitset) + words_.capacity() * sizeof(uint64_t);
  }

  bool Test(int i) const {
    DCHECK(InRange(i));
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  void Set(int i) {
    DCHECK(InRange(i));
    words_[i >> 6] |= uint64_t{1} << (i & 63);
  }
  void Reset(int i) {
    DCHECK(InRange(i));
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }
  void Assign(int i, bool value) { value ? Set(i) : Reset(i); }

  // Number of set bits.
  int Count() const;
  bool Any() const;
  bool None() const { return !Any(); }

  void Clear() {
    for (auto& w : words_) w = 0;
  }

  // In-place set algebra. Operands must share the same universe size.
  DynamicBitset& operator|=(const DynamicBitset& o);
  DynamicBitset& operator&=(const DynamicBitset& o);
  DynamicBitset& operator^=(const DynamicBitset& o);
  // Set difference: removes every element of `o`.
  DynamicBitset& Subtract(const DynamicBitset& o);

  friend DynamicBitset operator|(DynamicBitset a, const DynamicBitset& b) {
    a |= b;
    return a;
  }
  friend DynamicBitset operator&(DynamicBitset a, const DynamicBitset& b) {
    a &= b;
    return a;
  }
  // a \ b.
  friend DynamicBitset Difference(DynamicBitset a, const DynamicBitset& b) {
    a.Subtract(b);
    return a;
  }

  // Complement within the universe.
  DynamicBitset Complement() const;

  bool IsSubsetOf(const DynamicBitset& o) const;
  bool Intersects(const DynamicBitset& o) const;
  int IntersectionCount(const DynamicBitset& o) const;

  // Index of the lowest set bit at position >= from, or -1 if none.
  int NextSetBit(int from) const;
  // Index of the lowest set bit, or -1 for the empty set.
  int FirstSetBit() const { return NextSetBit(0); }
  // The single element of a singleton set; CHECK-fails otherwise.
  int SoleElement() const;

  std::vector<int> ToVector() const;

  // E.g. "{0, 3, 7}".
  std::string ToString() const;

  friend bool operator==(const DynamicBitset& a, const DynamicBitset& b) {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }
  // Lexicographic on words; a total order usable with std::set / sorting.
  friend bool operator<(const DynamicBitset& a, const DynamicBitset& b) {
    if (a.size_ != b.size_) return a.size_ < b.size_;
    return a.words_ < b.words_;
  }

  struct Hash {
    size_t operator()(const DynamicBitset& s) const;
  };

 private:
  bool InRange(int i) const { return i >= 0 && i < size_; }
  void ClearPadding() {
    int tail = size_ & 63;
    if (tail != 0 && !words_.empty()) {
      words_.back() &= (uint64_t{1} << tail) - 1;
    }
  }

  int size_;
  std::vector<uint64_t> words_;
};

// Applies `fn(int)` to every element of `s` in increasing order.
template <typename Fn>
void ForEachSetBit(const DynamicBitset& s, Fn&& fn) {
  for (int i = s.FirstSetBit(); i >= 0; i = s.NextSetBit(i + 1)) fn(i);
}

}  // namespace prefrep

#endif  // PREFREP_BASE_BITSET_H_
