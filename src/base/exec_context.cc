#include "base/exec_context.h"

namespace prefrep {

std::string ExecutionStatsSnapshot::ToString() const {
  std::string out = "components=" + std::to_string(components_completed);
  out += " repairs=" + std::to_string(repairs_examined);
  out += " bytes_charged=" + std::to_string(bytes_charged);
  out += " peak_bytes=" + std::to_string(peak_bytes);
  out += " polls=" + std::to_string(polls);
  return out;
}

void ExecutionStats::OnCharge(uint64_t bytes, uint64_t in_use_after) {
  bytes_charged_.fetch_add(bytes, std::memory_order_relaxed);
  uint64_t peak = peak_bytes_.load(std::memory_order_relaxed);
  while (in_use_after > peak &&
         !peak_bytes_.compare_exchange_weak(peak, in_use_after,
                                            std::memory_order_relaxed)) {
  }
}

ExecutionStatsSnapshot ExecutionStats::Snapshot() const {
  ExecutionStatsSnapshot snap;
  snap.components_completed = components_completed_.load(std::memory_order_relaxed);
  snap.repairs_examined = repairs_examined_.load(std::memory_order_relaxed);
  snap.bytes_charged = bytes_charged_.load(std::memory_order_relaxed);
  snap.peak_bytes = peak_bytes_.load(std::memory_order_relaxed);
  snap.polls = polls_.load(std::memory_order_relaxed);
  return snap;
}

bool ResourceArbiter::TryCharge(size_t bytes) {
  size_t used = used_.load(std::memory_order_relaxed);
  size_t next = 0;
  do {
    next = used + bytes;
    if (next < used || next > limit_) return false;  // overflow or over limit
  } while (!used_.compare_exchange_weak(used, next, std::memory_order_relaxed));
  if (stats_ != nullptr) stats_->OnCharge(bytes, next);
  return true;
}

void ResourceArbiter::Refund(size_t bytes) {
  used_.fetch_sub(bytes, std::memory_order_relaxed);
}

void ExecutionContext::set_deadline(Clock::time_point deadline) {
  deadline_ns_.store(deadline.time_since_epoch().count(),
                     std::memory_order_relaxed);
}

void ExecutionContext::SetDeadlineAfter(std::chrono::nanoseconds budget) {
  set_deadline(Clock::now() + budget);
}

void ExecutionContext::RequestCancel() {
  uint32_t expected = kLive;
  state_.compare_exchange_strong(expected, kCancelled,
                                 std::memory_order_release,
                                 std::memory_order_relaxed);
}

void ExecutionContext::Fail(const Status& status) {
  CHECK(!status.ok()) << "ExecutionContext::Fail requires a non-OK status";
  // Publish the status before the state flips so readers that observe
  // kFailed (acquire) see a fully-written fail_status_.
  std::lock_guard<std::mutex> lock(fail_mu_);
  uint32_t expected = kLive;
  if (state_.load(std::memory_order_relaxed) != kLive) return;
  fail_status_ = status;
  state_.compare_exchange_strong(expected, kFailed, std::memory_order_release,
                                 std::memory_order_relaxed);
}

void ExecutionContext::CancelAfterPolls(uint64_t n) {
  cancel_after_polls_.store(n, std::memory_order_relaxed);
}

bool ExecutionContext::ShouldStop() {
  if (state_.load(std::memory_order_relaxed) != kLive) return true;
  const uint64_t poll = stats_.polls_.fetch_add(1, std::memory_order_relaxed);
  if (poll + 1 >= cancel_after_polls_.load(std::memory_order_relaxed)) {
    RequestCancel();
    return true;
  }
  const int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
  if (deadline != kNoDeadline &&
      Clock::now().time_since_epoch().count() >= deadline) {
    uint32_t expected = kLive;
    state_.compare_exchange_strong(expected, kDeadline,
                                   std::memory_order_release,
                                   std::memory_order_relaxed);
    return true;
  }
  return false;
}

Status ExecutionContext::status() const {
  switch (state_.load(std::memory_order_acquire)) {
    case kLive:
      return Status::Ok();
    case kCancelled:
      return Status::Cancelled("execution cancelled by caller");
    case kDeadline:
      return Status::DeadlineExceeded("execution deadline exceeded");
    default: {
      std::lock_guard<std::mutex> lock(fail_mu_);
      return fail_status_;
    }
  }
}

Status ExecutionContext::StatusWithStats() const {
  Status base = status();
  if (base.ok()) return base;
  return Status(base.code(),
                base.message() + " [" + stats_.Snapshot().ToString() + "]");
}

}  // namespace prefrep
