// Minimal assertion / logging macros in the spirit of glog's CHECK family.
//
// The library does not use exceptions (Google C++ style); recoverable errors
// are reported through base/status.h, while programming errors (violated
// invariants, out-of-contract calls) abort through CHECK.

#ifndef PREFREP_BASE_LOGGING_H_
#define PREFREP_BASE_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace prefrep {
namespace internal_logging {

// Accumulates a failure message and aborts the process when destroyed.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* condition, const char* file, int line) {
    stream_ << "CHECK failed: " << condition << " at " << file << ":" << line
            << " ";
  }

  [[noreturn]] ~CheckFailureStream() {
    std::fputs(stream_.str().c_str(), stderr);
    std::fputc('\n', stderr);
    std::fflush(stderr);
    std::abort();
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// Lowers a streamed CheckFailureStream expression to void so it can sit in
// the else-branch of the ternary in CHECK ('&' binds looser than '<<').
struct Voidify {
  void operator&(CheckFailureStream&) const {}
  void operator&(CheckFailureStream&&) const {}
};

}  // namespace internal_logging
}  // namespace prefrep

// CHECK(cond) aborts with a diagnostic when `cond` is false. Additional
// context may be streamed: CHECK(x > 0) << "x was " << x;
#define CHECK(condition)                                                \
  (condition) ? (void)0                                                 \
              : ::prefrep::internal_logging::Voidify() &                \
                    ::prefrep::internal_logging::CheckFailureStream(    \
                        #condition, __FILE__, __LINE__)

#define CHECK_EQ(a, b) CHECK((a) == (b))
#define CHECK_NE(a, b) CHECK((a) != (b))
#define CHECK_LT(a, b) CHECK((a) < (b))
#define CHECK_LE(a, b) CHECK((a) <= (b))
#define CHECK_GT(a, b) CHECK((a) > (b))
#define CHECK_GE(a, b) CHECK((a) >= (b))

#ifndef NDEBUG
#define DCHECK(condition) CHECK(condition)
#else
#define DCHECK(condition) CHECK(true || (condition))
#endif

#endif  // PREFREP_BASE_LOGGING_H_
