// Snapshot: an immutable, shareable view of one database version for the
// resident CQA server (see session.h for the facade that queries it).
//
// Everything derivable from (database, FDs) that every query against the
// version needs — the conflict graph and the connected-component
// decomposition — is computed exactly once, at Create time. Sessions then
// share one Snapshot through shared_ptr<const Snapshot>: queries never
// mutate it, so any number of sessions (and their worker threads) can read
// it concurrently without synchronization. Updating data means building a
// NEW snapshot and pointing new sessions at it; in-flight queries keep the
// old version alive through their shared_ptr — MVCC in its simplest form.
//
// The Database is heap-allocated inside the snapshot because RepairProblem
// borrows a stable `const Database*`; the snapshot is therefore movable as
// a unit only via its shared_ptr, never copied.

#ifndef PREFREP_SERVER_SNAPSHOT_H_
#define PREFREP_SERVER_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/status.h"
#include "constraints/fd.h"
#include "graph/components.h"
#include "graph/conflict_graph.h"
#include "relational/database.h"
#include "repair/repair.h"

namespace prefrep {

class Snapshot {
 public:
  // Takes ownership of `db` and `fds`, builds the conflict graph and the
  // component decomposition. Fails (kInvalidArgument) when an FD names a
  // relation or attribute the database does not have.
  static Result<std::shared_ptr<const Snapshot>> Create(
      Database db, std::vector<FunctionalDependency> fds);

  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;

  const Database& db() const { return *db_; }
  const std::vector<FunctionalDependency>& fds() const {
    return problem_.fds();
  }
  const RepairProblem& problem() const { return problem_; }
  const ConflictGraph& graph() const { return problem_.graph(); }
  const ComponentDecomposition& decomposition() const {
    return *decomposition_;
  }

  // Process-unique, monotonically increasing. Distinguishes snapshot
  // versions in logs and cache diagnostics.
  uint64_t id() const { return id_; }

  // One line: tuple/conflict/component counts, e.g.
  // "snapshot #3: 12 tuples, 4 conflicts, 2 components (6 isolated tuples)".
  std::string Describe() const;

 private:
  Snapshot() = default;

  std::unique_ptr<Database> db_;  // stable address: problem_ borrows it
  RepairProblem problem_;
  std::unique_ptr<ComponentDecomposition> decomposition_;
  uint64_t id_ = 0;
};

}  // namespace prefrep

#endif  // PREFREP_SERVER_SNAPSHOT_H_
