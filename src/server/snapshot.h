// Snapshot: an immutable, shareable view of one database version for the
// resident CQA server (see session.h for the facade that queries it).
//
// Everything derivable from (database, FDs) that every query against the
// version needs — the conflict graph, the connected-component
// decomposition, the per-FD LHS probe index and the active-domain census —
// is computed exactly once, at Create time. Sessions then share one
// Snapshot through shared_ptr<const Snapshot>: queries never mutate it, so
// any number of sessions (and their worker threads) can read it
// concurrently without synchronization. Updating data means building a NEW
// snapshot and pointing new sessions at it; in-flight queries keep the old
// version alive through their shared_ptr — MVCC in its simplest form.
//
// Derive() is the incremental way to build that new version: instead of
// recomputing the world from the post-delta database, it
//   - applies the DatabaseDelta (untouched relations share storage with
//     the parent via Relation's copy-on-write),
//   - keeps every conflict edge between surviving tuples (LHS agreement is
//     a property of the two tuples alone) and probes only the inserted
//     tuples against the per-FD LHS hash index for fresh edges; the
//     successor graph also shares the adjacency bitsets of every
//     identity-region tuple whose neighborhood is unchanged
//     (ConflictGraph::DeriveFrom), skipping the O(V^2/64)-bit allocation
//     that dominates graph construction — the universes need not match,
//     shared rows keep the parent's bit length (ragged adjacency, see
//     conflict_graph.h),
//   - carries every clean component of the parent decomposition over and
//     re-runs BFS only on the dirty region,
//   - records what changed in a SnapshotDeltaInfo so a derived Session can
//     seed its caches from the parent and invalidate only entries whose
//     footprint intersects the dirty set.
// The result is bit-for-bit identical to Create() on the post-delta
// database (pinned by tests/incremental_snapshot_test.cc); the MVCC
// contract is unchanged — the parent snapshot is never touched.
//
// The Database is heap-allocated inside the snapshot because RepairProblem
// borrows a stable `const Database*`; the snapshot is therefore movable as
// a unit only via its shared_ptr, never copied.

#ifndef PREFREP_SERVER_SNAPSHOT_H_
#define PREFREP_SERVER_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/exec_context.h"
#include "base/status.h"
#include "constraints/conflict_index.h"
#include "constraints/fd.h"
#include "graph/components.h"
#include "graph/conflict_graph.h"
#include "relational/database.h"
#include "relational/delta.h"
#include "repair/repair.h"

namespace prefrep {

// What a Derive changed relative to the parent snapshot — the session
// cache-seeding contract (session.h) is expressed entirely in these terms.
struct SnapshotDeltaInfo {
  uint64_t parent_id = 0;
  // Relations with at least one insert or delete, sorted.
  std::vector<int> touched_relations;
  // Parent-decomposition component indices invalidated by the delta
  // (deleted member or fresh-edge endpoint), sorted.
  std::vector<int> dirty_parent_components;
  // Every tuple id below this denotes the same tuple in parent and child
  // (DeltaRemap::first_shifted); ids at or above it moved, died, or are
  // new.
  TupleId first_shifted_id = 0;
  // True iff the delta left the active domain (the set of distinct values
  // across the whole database) unchanged. PreparedQuery quantifier domains
  // range over the active domain, so cached results survive only when this
  // holds.
  bool domain_preserved = true;
  int inserted_tuples = 0;
  int deleted_tuples = 0;
  // Decomposition reuse accounting (diagnostics, bench assertions).
  int carried_components = 0;
  int rebuilt_components = 0;

  // One line, e.g. "delta from #3: +2/-1 tuples, 1 relation touched,
  // 2/17 components rebuilt, domain preserved".
  std::string ToString() const;
};

class Snapshot {
 public:
  // Takes ownership of `db` and `fds`, builds the conflict graph and the
  // component decomposition. Fails (kInvalidArgument) when an FD names a
  // relation or attribute the database does not have.
  static Result<std::shared_ptr<const Snapshot>> Create(
      Database db, std::vector<FunctionalDependency> fds);

  // Builds the successor snapshot of `base` under `delta` incrementally
  // (see the file comment). `delta` must have been staged against
  // base->db(). `context` (optional) is polled throughout; on interrupt
  // the context's status (kCancelled / kDeadlineExceeded) is returned, no
  // partial snapshot escapes, and the parent is untouched — rerunning the
  // same Derive yields a bit-for-bit identical successor.
  static Result<std::shared_ptr<const Snapshot>> Derive(
      const std::shared_ptr<const Snapshot>& base, const DatabaseDelta& delta,
      ExecutionContext* context = nullptr);

  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;

  const Database& db() const { return *db_; }
  const std::vector<FunctionalDependency>& fds() const {
    return problem_.fds();
  }
  const RepairProblem& problem() const { return problem_; }
  const ConflictGraph& graph() const { return problem_.graph(); }
  const ComponentDecomposition& decomposition() const {
    return *decomposition_;
  }
  // Per-FD LHS probe index over db() (what Derive probes delta tuples
  // against).
  const FdConflictIndex& conflict_index() const { return conflict_index_; }
  // Value-occurrence census of db() (what Derive folds the delta into).
  const ValueCensus& census() const { return census_; }

  // Non-null iff this snapshot came from Derive(); describes the delta
  // relative to the parent. The parent snapshot itself is NOT retained —
  // lineage does not pin memory.
  const SnapshotDeltaInfo* delta_info() const { return delta_info_.get(); }

  // Process-unique, monotonically increasing. Distinguishes snapshot
  // versions in logs and cache diagnostics.
  uint64_t id() const { return id_; }

  // One line: tuple/conflict/component counts, e.g.
  // "snapshot #3: 12 tuples, 4 conflicts, 2 components (6 isolated tuples)".
  std::string Describe() const;

 private:
  Snapshot() = default;

  std::unique_ptr<Database> db_;  // stable address: problem_ borrows it
  RepairProblem problem_;
  std::unique_ptr<ComponentDecomposition> decomposition_;
  FdConflictIndex conflict_index_;
  ValueCensus census_;
  std::unique_ptr<SnapshotDeltaInfo> delta_info_;
  uint64_t id_ = 0;
};

}  // namespace prefrep

#endif  // PREFREP_SERVER_SNAPSHOT_H_
