// LruCache: a string-keyed map with least-recently-used eviction.
//
// Backs the three Session caches (session.h). Eviction order matters
// there: the caches used to evict an arbitrary entry at capacity, which
// under steady mixed workloads could evict the hottest query; LRU keeps
// the working set resident (first scale-out rung of ROADMAP's server
// track). Get() counts as a use; Put() of an existing key updates the
// value and counts as a use; eviction removes the least recently used
// entry once size exceeds capacity (capacity 0 = unbounded).
//
// Not internally synchronized — the Session guards each cache with its
// cache mutex, and evaluation never holds it across a computation.

#ifndef PREFREP_SERVER_LRU_CACHE_H_
#define PREFREP_SERVER_LRU_CACHE_H_

#include <cstddef>
#include <list>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>

namespace prefrep {

template <typename Value>
class LruCache {
 public:
  explicit LruCache(size_t capacity = 0) : capacity_(capacity) {}

  // The value for `key`, marked most-recently-used; nullptr on miss. The
  // pointer stays valid until the next mutating call.
  Value* Get(const std::string& key) {
    auto it = map_.find(std::string_view(key));
    if (it == map_.end()) return nullptr;
    entries_.splice(entries_.end(), entries_, it->second);
    return &it->second->second;
  }

  // Read-only lookup that does NOT touch recency (diagnostics/tests).
  const Value* Peek(const std::string& key) const {
    auto it = map_.find(std::string_view(key));
    return it == map_.end() ? nullptr : &it->second->second;
  }

  // Inserts or overwrites, marks most-recently-used, then evicts from the
  // LRU end while over capacity.
  void Put(const std::string& key, Value value) {
    auto it = map_.find(std::string_view(key));
    if (it != map_.end()) {
      it->second->second = std::move(value);
      entries_.splice(entries_.end(), entries_, it->second);
      return;
    }
    entries_.emplace_back(key, std::move(value));
    auto node = std::prev(entries_.end());
    map_.emplace(std::string_view(node->first), node);
    while (capacity_ > 0 && entries_.size() > capacity_) {
      map_.erase(std::string_view(entries_.front().first));
      entries_.pop_front();
      ++evictions_;
    }
  }

  bool Contains(const std::string& key) const {
    return map_.contains(std::string_view(key));
  }

  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }
  // Evictions since construction or the last Clear().
  size_t evictions() const { return evictions_; }

  // Empties the cache and resets the eviction counter: a cleared cache
  // reports no activity (the shell's `cache` command surfaces these
  // numbers, and phantom evictions on an empty cache read as a bug).
  void Clear() {
    map_.clear();
    entries_.clear();
    evictions_ = 0;
  }

  // Visits entries from least to most recently used (fn(key, value));
  // seeding a derived session in this order preserves relative recency.
  template <typename Fn>
  void ForEachLruToMru(Fn&& fn) const {
    for (const auto& [key, value] : entries_) fn(key, value);
  }

 private:
  using Entry = std::pair<std::string, Value>;

  size_t capacity_;
  size_t evictions_ = 0;
  // Front = least recently used. string_view keys point into the list
  // nodes, whose strings are stable across splice/push/pop.
  std::list<Entry> entries_;
  std::unordered_map<std::string_view, typename std::list<Entry>::iterator>
      map_;
};

}  // namespace prefrep

#endif  // PREFREP_SERVER_LRU_CACHE_H_
