#include "server/snapshot.h"

#include <atomic>
#include <utility>

namespace prefrep {

namespace {
std::atomic<uint64_t> g_next_snapshot_id{0};
}  // namespace

Result<std::shared_ptr<const Snapshot>> Snapshot::Create(
    Database db, std::vector<FunctionalDependency> fds) {
  // Not make_shared: the constructor is private, and an error exit must not
  // leak a half-built snapshot (shared_ptr cleans up either way).
  std::shared_ptr<Snapshot> snapshot(new Snapshot());
  snapshot->db_ = std::make_unique<Database>(std::move(db));
  PREFREP_ASSIGN_OR_RETURN(
      snapshot->problem_,
      RepairProblem::Create(snapshot->db_.get(), std::move(fds)));
  snapshot->decomposition_ =
      std::make_unique<ComponentDecomposition>(snapshot->problem_.graph());
  snapshot->id_ = g_next_snapshot_id.fetch_add(1, std::memory_order_relaxed) + 1;
  return std::shared_ptr<const Snapshot>(std::move(snapshot));
}

std::string Snapshot::Describe() const {
  const ComponentDecomposition& d = *decomposition_;
  std::string out = "snapshot #" + std::to_string(id_) + ": " +
                    std::to_string(problem_.tuple_count()) + " tuples, " +
                    std::to_string(problem_.graph().edge_count()) +
                    " conflicts, " + std::to_string(d.components().size()) +
                    " components (" + std::to_string(d.isolated().Count()) +
                    " isolated tuples)";
  return out;
}

}  // namespace prefrep
