#include "server/snapshot.h"

#include <algorithm>
#include <atomic>
#include <utility>

namespace prefrep {

namespace {

std::atomic<uint64_t> g_next_snapshot_id{0};

void SortUnique(std::vector<int>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

}  // namespace

std::string SnapshotDeltaInfo::ToString() const {
  std::string out = "delta from #" + std::to_string(parent_id) + ": +" +
                    std::to_string(inserted_tuples) + "/-" +
                    std::to_string(deleted_tuples) + " tuples, " +
                    std::to_string(touched_relations.size()) +
                    (touched_relations.size() == 1 ? " relation" : " relations") +
                    " touched, " + std::to_string(rebuilt_components) + "/" +
                    std::to_string(carried_components + rebuilt_components) +
                    " components rebuilt, domain " +
                    (domain_preserved ? "preserved" : "changed");
  return out;
}

Result<std::shared_ptr<const Snapshot>> Snapshot::Create(
    Database db, std::vector<FunctionalDependency> fds) {
  // Not make_shared: the constructor is private, and an error exit must not
  // leak a half-built snapshot (shared_ptr cleans up either way).
  std::shared_ptr<Snapshot> snapshot(new Snapshot());
  snapshot->db_ = std::make_unique<Database>(std::move(db));
  PREFREP_ASSIGN_OR_RETURN(
      snapshot->problem_,
      RepairProblem::Create(snapshot->db_.get(), std::move(fds)));
  snapshot->decomposition_ =
      std::make_unique<ComponentDecomposition>(snapshot->problem_.graph());
  PREFREP_ASSIGN_OR_RETURN(
      snapshot->conflict_index_,
      FdConflictIndex::Build(*snapshot->db_, snapshot->problem_.fds()));
  snapshot->census_ = ValueCensus::Of(*snapshot->db_);
  snapshot->id_ = g_next_snapshot_id.fetch_add(1, std::memory_order_relaxed) + 1;
  return std::shared_ptr<const Snapshot>(std::move(snapshot));
}

Result<std::shared_ptr<const Snapshot>> Snapshot::Derive(
    const std::shared_ptr<const Snapshot>& base, const DatabaseDelta& delta,
    ExecutionContext* context) {
  CHECK(base != nullptr);
  if (&delta.base() != &base->db()) {
    return Status::InvalidArgument(
        "delta was staged against a different database than the base "
        "snapshot's");
  }

  // 1. Post-delta database (untouched relations share storage).
  DeltaRemap remap;
  PREFREP_ASSIGN_OR_RETURN(Database new_db, delta.Apply(&remap, context));

  // 2. Active-domain census, folded forward.
  ValueCensus census = base->census_;
  const bool domain_preserved = census.Apply(delta);

  // 3. Conflict edges. Survivor-survivor edges persist (an FD conflict is
  // a property of the two tuples alone); the monotone remap keeps them
  // normalized and sorted. Fresh edges — anything incident to an inserted
  // tuple — come from probing the per-FD LHS index.
  //
  // Alongside, mark which identity-region vertices (id < first_shifted,
  // same tuple and id in parent and child) have a CHANGED neighborhood:
  // an old edge whose other endpoint is at or above first_shifted (deleted
  // or renumbered) rewrites the low endpoint's bitset, as does a fresh
  // edge. Everything unmarked shares its adjacency bitset with the parent
  // graph even when the tuple counts differ: a clean identity row has all
  // neighbors below first_shifted <= min(old_count, new_count), so reading
  // it zero-extended (insert-heavy) or truncated (delete-heavy) over the
  // child universe is exact (see ConflictGraph::DeriveFrom).
  const int adjacency_identity_limit = remap.first_shifted;
  DynamicBitset dirty_adjacency(remap.new_tuple_count);
  std::vector<std::pair<TupleId, TupleId>> surviving_edges;
  surviving_edges.reserve(base->graph().edges().size());
  size_t scanned = 0;
  for (const auto& [u, v] : base->graph().edges()) {
    if ((scanned++ & 4095) == 0 && context != nullptr && context->ShouldStop()) {
      return context->status();
    }
    TupleId nu = remap.old_to_new[u];
    TupleId nv = remap.old_to_new[v];
    if (nu >= 0 && nv >= 0) surviving_edges.emplace_back(nu, nv);
    // u < v, so only u can sit in the identity region when v shifted.
    if (v >= remap.first_shifted && u < remap.first_shifted) {
      dirty_adjacency.Set(u);
    }
  }
  std::vector<std::pair<TupleId, TupleId>> fresh_edges;
  PREFREP_ASSIGN_OR_RETURN(
      FdConflictIndex conflict_index,
      FdConflictIndex::Derive(base->conflict_index_, base->fds(), delta,
                              new_db, remap, &fresh_edges, context));
  // Disjoint by construction: a fresh edge has an inserted endpoint.
  std::vector<std::pair<TupleId, TupleId>> edges;
  edges.resize(surviving_edges.size() + fresh_edges.size());
  std::merge(surviving_edges.begin(), surviving_edges.end(),
             fresh_edges.begin(), fresh_edges.end(), edges.begin());

  // 4. Dirty region of the parent decomposition: components that lost a
  // member or gained/kept an endpoint of a fresh edge; plus, in new ids,
  // the vertices to re-BFS.
  const ComponentDecomposition& parent_decomposition = base->decomposition();
  std::vector<int> dirty_components;
  std::vector<int> dirty_vertices;
  for (TupleId old_id : delta.deletes()) {
    int component = parent_decomposition.ComponentOf(old_id);
    if (component >= 0) dirty_components.push_back(component);
  }
  // new id -> old id for survivors (-1 for inserts), to place fresh-edge
  // endpoints in the parent decomposition.
  std::vector<TupleId> new_to_old(remap.new_tuple_count, -1);
  for (TupleId old_id = 0; old_id < remap.old_tuple_count; ++old_id) {
    TupleId new_id = remap.old_to_new[old_id];
    if (new_id >= 0) new_to_old[new_id] = old_id;
  }
  for (const auto& [u, v] : fresh_edges) {
    for (TupleId endpoint : {u, v}) {
      dirty_vertices.push_back(endpoint);
      if (endpoint < remap.first_shifted) dirty_adjacency.Set(endpoint);
      TupleId old_id = new_to_old[endpoint];
      if (old_id < 0) continue;  // inserted: not in the parent decomposition
      int component = parent_decomposition.ComponentOf(old_id);
      if (component >= 0) dirty_components.push_back(component);
    }
  }
  SortUnique(&dirty_components);
  for (int component : dirty_components) {
    for (int old_vertex :
         parent_decomposition.components()[component].vertices) {
      TupleId new_vertex = remap.old_to_new[old_vertex];
      if (new_vertex >= 0) dirty_vertices.push_back(new_vertex);
    }
  }
  SortUnique(&dirty_vertices);
  if (context != nullptr && context->ShouldStop()) return context->status();

  // 5. Assemble. Construction order matters: the problem owns the graph,
  // the decomposition is built from the problem's copy.
  std::shared_ptr<Snapshot> snapshot(new Snapshot());
  snapshot->db_ = std::make_unique<Database>(std::move(new_db));
  snapshot->problem_ = RepairProblem::FromPrecomputedGraph(
      snapshot->db_.get(), base->fds(),
      ConflictGraph::DeriveFrom(base->graph(), remap.new_tuple_count,
                                std::move(edges), adjacency_identity_limit,
                                dirty_adjacency));
  DecompositionDeltaSeed seed;
  seed.parent = &parent_decomposition;
  seed.old_to_new = &remap.old_to_new;
  seed.dirty_components = std::move(dirty_components);
  seed.dirty_vertices = std::move(dirty_vertices);
  snapshot->decomposition_ = std::make_unique<ComponentDecomposition>(
      snapshot->problem_.graph(), seed);
  snapshot->conflict_index_ = std::move(conflict_index);
  snapshot->census_ = std::move(census);

  auto info = std::make_unique<SnapshotDeltaInfo>();
  info->parent_id = base->id();
  info->touched_relations = delta.TouchedRelations();
  info->dirty_parent_components = seed.dirty_components;
  info->first_shifted_id = remap.first_shifted;
  info->domain_preserved = domain_preserved;
  info->inserted_tuples = delta.insert_count();
  info->deleted_tuples = delta.delete_count();
  // Direct counts from the seeded decomposition: set arithmetic over
  // parent/child totals undercounts rebuilds when fresh edges merge
  // several dirty parent components into one child component.
  info->rebuilt_components = snapshot->decomposition_->rebuilt_component_count();
  info->carried_components = snapshot->decomposition_->carried_component_count();
  snapshot->delta_info_ = std::move(info);
  snapshot->id_ = g_next_snapshot_id.fetch_add(1, std::memory_order_relaxed) + 1;
  return std::shared_ptr<const Snapshot>(std::move(snapshot));
}

std::string Snapshot::Describe() const {
  const ComponentDecomposition& d = *decomposition_;
  std::string out = "snapshot #" + std::to_string(id_) + ": " +
                    std::to_string(problem_.tuple_count()) + " tuples, " +
                    std::to_string(problem_.graph().edge_count()) +
                    " conflicts, " + std::to_string(d.components().size()) +
                    " components (" + std::to_string(d.isolated().Count()) +
                    " isolated tuples)";
  if (delta_info_ != nullptr) out += " [" + delta_info_->ToString() + "]";
  return out;
}

}  // namespace prefrep
