#include "server/session.h"

#include <utility>

namespace prefrep {

namespace {

// Lowers an EvalOptions onto the planner's positional knobs, against the
// already-resolved effective context.
CqaPlannerOptions Lower(const EvalOptions& options,
                        ExecutionContext* effective) {
  CqaPlannerOptions planner_options;
  planner_options.force_tier = options.force_tier;
  planner_options.max_dnf_disjuncts = options.limits.max_dnf_disjuncts;
  planner_options.parallel = options.Parallel(effective);
  return planner_options;
}

char KindTag(CqaRequest kind) {
  return kind == CqaRequest::kVerdict ? 'v' : 'a';
}

// Result-cache key: every input that determines the answer, exactly. The
// priority is serialized arc-by-arc — never hashed — because a key
// collision here would silently return a wrong answer.
std::string ResultKey(CqaRequest kind, RepairFamily family,
                      const Priority& priority,
                      const std::string& query_text) {
  std::string key;
  key.reserve(query_text.size() + 16 + priority.arc_count() * 8);
  key += KindTag(kind);
  key += static_cast<char>('0' + static_cast<int>(family));
  key += '|';
  for (const auto& [x, y] : priority.arcs()) {
    key += std::to_string(x);
    key += '>';
    key += std::to_string(y);
    key += ',';
  }
  key += '|';
  key += query_text;
  return key;
}

// Plan-cache key: the planner reads the priority only through its
// emptiness (EffectiveFamily), so plans are shared across all non-empty
// priorities of one (query, family, kind, DNF budget).
std::string PlanKey(CqaRequest kind, RepairFamily family, bool priority_empty,
                    size_t max_dnf_disjuncts, const std::string& query_text) {
  std::string key;
  key.reserve(query_text.size() + 24);
  key += KindTag(kind);
  key += static_cast<char>('0' + static_cast<int>(family));
  key += priority_empty ? 'e' : 'p';
  key += std::to_string(max_dnf_disjuncts);
  key += '|';
  key += query_text;
  return key;
}

template <typename Map>
void EvictIfFull(Map* map, size_t cap) {
  if (cap > 0 && map->size() >= cap) map->erase(map->begin());
}

}  // namespace

std::string SessionCacheStats::ToString() const {
  return "prepared " + std::to_string(prepared_hits) + "/" +
         std::to_string(prepared_misses) + ", plan " +
         std::to_string(plan_hits) + "/" + std::to_string(plan_misses) +
         ", result " + std::to_string(result_hits) + "/" +
         std::to_string(result_misses) + " (hits/misses)";
}

Session::Session(std::shared_ptr<const Snapshot> snapshot,
                 SessionOptions options)
    : snapshot_(std::move(snapshot)),
      options_(options),
      paused_(options.start_paused) {
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

Session::~Session() {
  std::vector<std::shared_ptr<PendingRequest>> flushed;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stop_ = true;
    // Fail everything still queued and interrupt whatever is running; the
    // dispatcher finishes its current request, then exits.
    for (std::shared_ptr<PendingRequest>& pending : queue_) {
      pending->state = RequestState::kDone;
      flushed.push_back(pending);
    }
    queue_.clear();
    for (auto& [id, pending] : requests_) {
      if (pending->state == RequestState::kRunning &&
          pending->context != nullptr) {
        pending->context->RequestCancel();
      }
    }
  }
  queue_cv_.notify_all();
  for (std::shared_ptr<PendingRequest>& pending : flushed) {
    pending->promise.set_value(CancelledResponse(*pending));
  }
  dispatcher_.join();
}

// ---- caches ---------------------------------------------------------------

Result<std::shared_ptr<const PreparedQuery>> Session::PreparedFor(
    const std::string& query_text, const Query& query) {
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = prepared_cache_.find(query_text);
    if (it != prepared_cache_.end()) {
      ++stats_.prepared_hits;
      return it->second;
    }
    ++stats_.prepared_misses;
  }
  // Compile outside the lock: compilation cost is the whole point of the
  // cache. A racing thread may compile the same query; first insert wins.
  PREFREP_ASSIGN_OR_RETURN(PreparedQuery compiled,
                           PreparedQuery::Compile(snapshot_->db(), query));
  auto master = std::make_shared<const PreparedQuery>(std::move(compiled));
  std::lock_guard<std::mutex> lock(cache_mu_);
  EvictIfFull(&prepared_cache_, options_.max_cache_entries);
  return prepared_cache_.emplace(query_text, master).first->second;
}

SessionCacheStats Session::cache_stats() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return stats_;
}

void Session::ClearCache() {
  std::lock_guard<std::mutex> lock(cache_mu_);
  prepared_cache_.clear();
  plan_cache_.clear();
  result_cache_.clear();
}

// ---- synchronous facade ---------------------------------------------------

Result<CqaVerdict> Session::EvalVerdict(const Query& query,
                                        const Priority& priority,
                                        RepairFamily family,
                                        const EvalOptions& options,
                                        CqaPlan* executed, bool* cache_hit) {
  if (cache_hit != nullptr) *cache_hit = false;
  // A forced tier exists to really execute that tier; serving it from the
  // cache (or caching its result under the unforced key) would defeat it.
  const bool cacheable =
      options_.enable_cache && !options.force_tier.has_value();
  if (!cacheable) {
    EvalContextScope scope(options);
    return PlannedConsistentAnswer(problem(), priority, family, query,
                                   Lower(options, scope.context()), executed);
  }
  const std::string query_text = query.ToString();
  const std::string result_key =
      ResultKey(CqaRequest::kVerdict, family, priority, query_text);
  const std::string plan_key =
      PlanKey(CqaRequest::kVerdict, family, PriorityIsEmpty(priority),
              options.limits.max_dnf_disjuncts, query_text);
  std::optional<CqaPlan> plan;
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = result_cache_.find(result_key);
    if (it != result_cache_.end() && it->second.verdict.has_value()) {
      ++stats_.result_hits;
      if (executed != nullptr) *executed = it->second.plan;
      if (cache_hit != nullptr) *cache_hit = true;
      return *it->second.verdict;
    }
    ++stats_.result_misses;
    auto plan_it = plan_cache_.find(plan_key);
    if (plan_it != plan_cache_.end()) {
      ++stats_.plan_hits;
      plan = plan_it->second;
    } else {
      ++stats_.plan_misses;
    }
  }
  PREFREP_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedQuery> prepared,
                           PreparedFor(query_text, query));
  EvalContextScope scope(options);
  CqaPlannerOptions planner_options = Lower(options, scope.context());
  planner_options.prepared = prepared.get();
  if (plan.has_value()) planner_options.precomputed_plan = &*plan;
  CqaPlan ran;
  Result<CqaVerdict> verdict = PlannedConsistentAnswer(
      problem(), priority, family, query, planner_options, &ran);
  if (executed != nullptr) *executed = ran;
  if (verdict.ok()) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    if (!plan.has_value()) {
      // Cache the plan that actually RAN (post any runtime fallback):
      // replaying it skips a doomed tier-1 attempt next time.
      EvictIfFull(&plan_cache_, options_.max_cache_entries);
      plan_cache_.emplace(plan_key, ran);
    }
    EvictIfFull(&result_cache_, options_.max_cache_entries);
    CachedResult& entry = result_cache_[result_key];
    entry.verdict = *verdict;
    entry.plan = ran;
  }
  return verdict;
}

Result<OpenAnswer> Session::EvalAnswers(const Query& query,
                                        const Priority& priority,
                                        RepairFamily family,
                                        const EvalOptions& options,
                                        CqaPlan* executed, bool* cache_hit) {
  if (cache_hit != nullptr) *cache_hit = false;
  const bool cacheable =
      options_.enable_cache && !options.force_tier.has_value();
  if (!cacheable) {
    EvalContextScope scope(options);
    return PlannedConsistentAnswers(problem(), priority, family, query,
                                    Lower(options, scope.context()), executed);
  }
  const std::string query_text = query.ToString();
  const std::string result_key =
      ResultKey(CqaRequest::kOpenAnswers, family, priority, query_text);
  const std::string plan_key =
      PlanKey(CqaRequest::kOpenAnswers, family, PriorityIsEmpty(priority),
              options.limits.max_dnf_disjuncts, query_text);
  std::optional<CqaPlan> plan;
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = result_cache_.find(result_key);
    if (it != result_cache_.end() && it->second.answers.has_value()) {
      ++stats_.result_hits;
      if (executed != nullptr) *executed = it->second.plan;
      if (cache_hit != nullptr) *cache_hit = true;
      return *it->second.answers;
    }
    ++stats_.result_misses;
    auto plan_it = plan_cache_.find(plan_key);
    if (plan_it != plan_cache_.end()) {
      ++stats_.plan_hits;
      plan = plan_it->second;
    } else {
      ++stats_.plan_misses;
    }
  }
  PREFREP_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedQuery> prepared,
                           PreparedFor(query_text, query));
  EvalContextScope scope(options);
  CqaPlannerOptions planner_options = Lower(options, scope.context());
  planner_options.prepared = prepared.get();
  if (plan.has_value()) planner_options.precomputed_plan = &*plan;
  CqaPlan ran;
  Result<OpenAnswer> answers = PlannedConsistentAnswers(
      problem(), priority, family, query, planner_options, &ran);
  if (executed != nullptr) *executed = ran;
  if (answers.ok()) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    if (!plan.has_value()) {
      EvictIfFull(&plan_cache_, options_.max_cache_entries);
      plan_cache_.emplace(plan_key, ran);
    }
    EvictIfFull(&result_cache_, options_.max_cache_entries);
    CachedResult& entry = result_cache_[result_key];
    entry.answers = *answers;
    entry.plan = ran;
  }
  return answers;
}

Result<CqaVerdict> Session::Ask(const Query& query, const Priority& priority,
                                RepairFamily family,
                                const EvalOptions& options, CqaPlan* executed,
                                bool* cache_hit) {
  return EvalVerdict(query, priority, family, options, executed, cache_hit);
}

Result<OpenAnswer> Session::Answers(const Query& query,
                                    const Priority& priority,
                                    RepairFamily family,
                                    const EvalOptions& options,
                                    CqaPlan* executed, bool* cache_hit) {
  return EvalAnswers(query, priority, family, options, executed, cache_hit);
}

Result<AggregateRange> Session::Aggregate(std::string_view relation,
                                          std::string_view attribute,
                                          AggregateFunction fn,
                                          const Priority& priority,
                                          RepairFamily family,
                                          const EvalOptions& options,
                                          CqaPlan* executed) {
  EvalContextScope scope(options);
  return PlannedAggregateRange(problem(), priority, family, relation,
                               attribute, fn, Lower(options, scope.context()),
                               executed);
}

Result<std::vector<DynamicBitset>> Session::Repairs(
    const Priority& priority, RepairFamily family,
    const EvalOptions& options) {
  return PreferredRepairs(snapshot_->graph(), priority, family, options);
}

CqaPlan Session::Explain(const Query& query, const Priority& priority,
                         RepairFamily family, CqaRequest kind,
                         const EvalOptions& options) const {
  CqaPlannerOptions planner_options;
  planner_options.force_tier = options.force_tier;
  planner_options.max_dnf_disjuncts = options.limits.max_dnf_disjuncts;
  return ExplainPlan(problem(), priority, family, query, kind,
                     planner_options);
}

// ---- asynchronous facade --------------------------------------------------

SessionResponse Session::CancelledResponse(const PendingRequest& pending) {
  SessionResponse response;
  response.id = pending.id;
  response.kind = pending.request.kind;
  Status cancelled = Status::Cancelled("request cancelled before completion");
  response.verdict = cancelled;
  response.answers = cancelled;
  return response;
}

Result<uint64_t> Session::Submit(SessionRequest request) {
  if (request.query == nullptr) {
    return Status::InvalidArgument("SessionRequest.query is null");
  }
  // A default-constructed priority stands for "no preferences": normalize
  // it to the snapshot's empty priority so family engines can index it.
  if (request.priority.vertex_count() == 0 &&
      snapshot_->graph().vertex_count() > 0) {
    request.priority = Priority::Empty(snapshot_->graph());
  }
  auto pending = std::make_shared<PendingRequest>();
  pending->request = std::move(request);
  if (pending->request.options.context == nullptr) {
    pending->context =
        std::make_unique<ExecutionContext>(pending->request.options.limits);
  }
  pending->future = pending->promise.get_future().share();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stop_) {
      return Status::FailedPrecondition("session is shutting down");
    }
    if (queue_.size() + running_ >= options_.max_pending_requests) {
      return Status::ResourceExhausted(
          "session admission limit reached (" +
          std::to_string(options_.max_pending_requests) +
          " requests queued or running)");
    }
    pending->id = ++next_request_id_;
    queue_.push_back(pending);
    requests_.emplace(pending->id, pending);
  }
  queue_cv_.notify_all();
  return pending->id;
}

Result<SessionResponse> Session::Wait(uint64_t request_id) {
  std::shared_ptr<PendingRequest> pending;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    auto it = requests_.find(request_id);
    if (it == requests_.end()) {
      return Status::NotFound("unknown request id " +
                              std::to_string(request_id));
    }
    pending = it->second;
  }
  SessionResponse response = pending->future.get();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    requests_.erase(request_id);
  }
  return response;
}

Status Session::Cancel(uint64_t request_id) {
  std::shared_ptr<PendingRequest> to_fail;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    auto it = requests_.find(request_id);
    if (it == requests_.end()) {
      return Status::NotFound("unknown request id " +
                              std::to_string(request_id));
    }
    std::shared_ptr<PendingRequest>& pending = it->second;
    switch (pending->state) {
      case RequestState::kQueued: {
        pending->state = RequestState::kDone;
        for (auto queue_it = queue_.begin(); queue_it != queue_.end();
             ++queue_it) {
          if ((*queue_it)->id == request_id) {
            queue_.erase(queue_it);
            break;
          }
        }
        to_fail = pending;
        break;
      }
      case RequestState::kRunning: {
        ExecutionContext* context = pending->context != nullptr
                                        ? pending->context.get()
                                        : pending->request.options.context;
        if (context != nullptr) context->RequestCancel();
        break;
      }
      case RequestState::kDone:
        break;  // already finished: cancelling is a no-op
    }
  }
  if (to_fail != nullptr) {
    to_fail->promise.set_value(CancelledResponse(*to_fail));
  }
  return Status::Ok();
}

void Session::ResumeDispatch() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    paused_ = false;
  }
  queue_cv_.notify_all();
}

size_t Session::pending_requests() const {
  std::lock_guard<std::mutex> lock(queue_mu_);
  return queue_.size() + running_;
}

SessionResponse Session::Execute(PendingRequest& pending) {
  SessionResponse response;
  response.id = pending.id;
  response.kind = pending.request.kind;
  EvalOptions options = pending.request.options;
  if (pending.context != nullptr) {
    // Arm the deadline at execution start, not admission: queue time does
    // not count against the request's budget.
    if (options.deadline.has_value()) {
      pending.context->SetDeadlineAfter(*options.deadline);
    }
    options.context = pending.context.get();
  }
  const Query& query = *pending.request.query;
  CqaPlan ran;
  bool hit = false;
  if (pending.request.kind == CqaRequest::kVerdict) {
    response.verdict = EvalVerdict(query, pending.request.priority,
                                   pending.request.family, options, &ran, &hit);
  } else {
    response.answers = EvalAnswers(query, pending.request.priority,
                                   pending.request.family, options, &ran, &hit);
  }
  response.executed = ran;
  response.cache_hit = hit;
  return response;
}

void Session::DispatchLoop() {
  for (;;) {
    std::shared_ptr<PendingRequest> pending;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return stop_ || (!paused_ && !queue_.empty());
      });
      if (stop_) return;  // the destructor flushes whatever is queued
      pending = queue_.front();
      queue_.pop_front();
      pending->state = RequestState::kRunning;
      ++running_;
    }
    SessionResponse response = Execute(*pending);
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      pending->state = RequestState::kDone;
      --running_;
    }
    pending->promise.set_value(std::move(response));
    queue_cv_.notify_all();
  }
}

}  // namespace prefrep
