#include "server/session.h"

#include <algorithm>
#include <utility>

namespace prefrep {

namespace {

// Lowers an EvalOptions onto the planner's positional knobs, against the
// already-resolved effective context.
CqaPlannerOptions Lower(const EvalOptions& options,
                        ExecutionContext* effective) {
  CqaPlannerOptions planner_options;
  planner_options.force_tier = options.force_tier;
  planner_options.max_dnf_disjuncts = options.limits.max_dnf_disjuncts;
  planner_options.parallel = options.Parallel(effective);
  return planner_options;
}

char KindTag(CqaRequest kind) {
  return kind == CqaRequest::kVerdict ? 'v' : 'a';
}

// Result-cache key: every input that determines the answer, exactly. The
// priority is serialized arc-by-arc — never hashed — because a key
// collision here would silently return a wrong answer.
std::string ResultKey(CqaRequest kind, RepairFamily family,
                      const Priority& priority,
                      const std::string& query_text) {
  std::string key;
  key.reserve(query_text.size() + 16 + priority.arc_count() * 8);
  key += KindTag(kind);
  key += static_cast<char>('0' + static_cast<int>(family));
  key += '|';
  for (const auto& [x, y] : priority.arcs()) {
    key += std::to_string(x);
    key += '>';
    key += std::to_string(y);
    key += ',';
  }
  key += '|';
  key += query_text;
  return key;
}

// Plan-cache key: the planner reads the priority only through its
// emptiness (EffectiveFamily), so plans are shared across all non-empty
// priorities of one (query, family, kind, DNF budget).
std::string PlanKey(CqaRequest kind, RepairFamily family, bool priority_empty,
                    size_t max_dnf_disjuncts, const std::string& query_text) {
  std::string key;
  key.reserve(query_text.size() + 24);
  key += KindTag(kind);
  key += static_cast<char>('0' + static_cast<int>(family));
  key += priority_empty ? 'e' : 'p';
  key += std::to_string(max_dnf_disjuncts);
  key += '|';
  key += query_text;
  return key;
}

// Intersects two sorted int vectors (true iff nonempty intersection).
bool SortedIntersect(const std::vector<int>& a, const std::vector<int>& b) {
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      return true;
    }
  }
  return false;
}

}  // namespace

std::string SessionCacheStats::ToString() const {
  std::string out = "prepared " + std::to_string(prepared_hits) + "/" +
                    std::to_string(prepared_misses) + ", plan " +
                    std::to_string(plan_hits) + "/" +
                    std::to_string(plan_misses) + ", result " +
                    std::to_string(result_hits) + "/" +
                    std::to_string(result_misses) + " (hits/misses)";
  if (seeded_plans > 0 || seeded_results > 0 || seed_dropped > 0) {
    out += "; seeded plan " + std::to_string(seeded_plans) + ", result " +
           std::to_string(seeded_results) + ", dropped " +
           std::to_string(seed_dropped);
  }
  return out;
}

Session::Session(std::shared_ptr<const Snapshot> snapshot,
                 SessionOptions options)
    : snapshot_(std::move(snapshot)),
      options_(options),
      prepared_cache_(options.max_cache_entries),
      plan_cache_(options.max_cache_entries),
      result_cache_(options.max_cache_entries),
      paused_(options.start_paused) {
  const Database& db = snapshot_->db();
  const ComponentDecomposition& decomposition = snapshot_->decomposition();
  relation_components_.assign(db.relation_count(), {});
  for (TupleId id = 0; id < db.tuple_count(); ++id) {
    int component = decomposition.ComponentOf(id);
    if (component < 0) continue;
    std::vector<int>& row = relation_components_[db.RelationIndexOf(id)];
    if (row.empty() || row.back() != component) row.push_back(component);
  }
  for (std::vector<int>& row : relation_components_) {
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
  }
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

Session::Session(std::shared_ptr<const Snapshot> snapshot,
                 const Session& parent, SessionOptions options)
    : Session(std::move(snapshot), options) {
  SeedFromParent(parent);
}

Session::~Session() {
  std::vector<std::shared_ptr<PendingRequest>> flushed;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stop_ = true;
    // Fail everything still queued and interrupt whatever is running; the
    // dispatcher finishes its current request, then exits.
    for (std::shared_ptr<PendingRequest>& pending : queue_) {
      pending->state = RequestState::kDone;
      flushed.push_back(pending);
    }
    queue_.clear();
    for (auto& [id, pending] : requests_) {
      if (pending->state == RequestState::kRunning &&
          pending->context != nullptr) {
        pending->context->RequestCancel();
      }
    }
  }
  queue_cv_.notify_all();
  for (std::shared_ptr<PendingRequest>& pending : flushed) {
    pending->promise.set_value(CancelledResponse(*pending));
  }
  dispatcher_.join();
}

// ---- caches ---------------------------------------------------------------

std::vector<int> Session::ComponentsForRelations(
    const std::vector<int>& relations) const {
  std::vector<int> out;
  for (int relation : relations) {
    const std::vector<int>& row = relation_components_[relation];
    out.insert(out.end(), row.begin(), row.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Session::ResultFootprint Session::FootprintFor(const Query& query,
                                               const Priority& priority) const {
  ResultFootprint footprint;
  for (const std::string& name : ReferencedRelations(query)) {
    Result<int> relation = snapshot_->db().RelationIndex(name);
    // A relation absent from the database stays absent in every derived
    // version (deltas cannot add relations), so it never invalidates.
    if (relation.ok()) footprint.relations.push_back(*relation);
  }
  std::sort(footprint.relations.begin(), footprint.relations.end());
  footprint.components = ComponentsForRelations(footprint.relations);
  for (const auto& [x, y] : priority.arcs()) {
    footprint.max_tuple_id = std::max(footprint.max_tuple_id, std::max(x, y));
  }
  return footprint;
}

void Session::SeedFromParent(const Session& parent) {
  const SnapshotDeltaInfo* info = snapshot_->delta_info();
  CHECK(info != nullptr)
      << "derived-session constructor needs a snapshot from Snapshot::Derive";
  CHECK_EQ(info->parent_id, parent.snapshot().id())
      << "snapshot was not derived from the parent session's snapshot";

  // Relation stability in the new version: untouched by the delta AND all
  // ids below first_shifted_id (so global ids — mask bits, priority arcs —
  // denote the same tuples).
  const Database& db = snapshot_->db();
  std::vector<bool> stable(db.relation_count(), true);
  for (int relation : info->touched_relations) stable[relation] = false;
  for (int relation = 0; relation < db.relation_count(); ++relation) {
    if (!stable[relation]) continue;
    int size = db.relations()[relation].size();
    // Ids are appended per relation in insertion order: the last row holds
    // the relation's largest global id.
    if (size > 0 && db.GlobalId(relation, size - 1) >= info->first_shifted_id) {
      stable[relation] = false;
    }
  }
  // The planner reads exactly one instance property: conflict-freeness.
  // Plans transfer iff it is unchanged.
  const bool plans_transfer =
      (parent.snapshot().graph().edge_count() == 0) ==
      (snapshot_->graph().edge_count() == 0);

  std::scoped_lock lock(cache_mu_, parent.cache_mu_);
  if (plans_transfer) {
    parent.plan_cache_.ForEachLruToMru(
        [&](const std::string& key, const CqaPlan& plan) {
          plan_cache_.Put(key, plan);
          ++stats_.seeded_plans;
        });
  } else {
    stats_.seed_dropped += parent.plan_cache_.size();
  }
  parent.result_cache_.ForEachLruToMru([&](const std::string& key,
                                           const CachedResult& entry) {
    const ResultFootprint& footprint = entry.footprint;
    bool survives = info->domain_preserved &&
                    footprint.max_tuple_id < info->first_shifted_id &&
                    !SortedIntersect(footprint.components,
                                     info->dirty_parent_components);
    if (survives) {
      for (int relation : footprint.relations) {
        if (!stable[relation]) {
          survives = false;
          break;
        }
      }
    }
    if (!survives) {
      ++stats_.seed_dropped;
      return;
    }
    CachedResult seeded = entry;
    // Re-express the component footprint in the new decomposition's ids.
    seeded.footprint.components =
        ComponentsForRelations(seeded.footprint.relations);
    result_cache_.Put(key, std::move(seeded));
    ++stats_.seeded_results;
  });
  // Prepared masters are intentionally not seeded: they are compiled
  // against the parent database's tuple universe (mask sizing, quantifier
  // domains, row->id maps) and recompile lazily on first use instead.
}

Result<std::shared_ptr<const PreparedQuery>> Session::PreparedFor(
    const std::string& query_text, const Query& query) {
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    std::shared_ptr<const PreparedQuery>* master =
        prepared_cache_.Get(query_text);
    if (master != nullptr) {
      ++stats_.prepared_hits;
      return *master;
    }
    ++stats_.prepared_misses;
  }
  // Compile outside the lock: compilation cost is the whole point of the
  // cache. A racing thread may compile the same query; last insert wins
  // (the masters are equivalent either way).
  PREFREP_ASSIGN_OR_RETURN(PreparedQuery compiled,
                           PreparedQuery::Compile(snapshot_->db(), query));
  auto master = std::make_shared<const PreparedQuery>(std::move(compiled));
  std::lock_guard<std::mutex> lock(cache_mu_);
  prepared_cache_.Put(query_text, master);
  return master;
}

SessionCacheStats Session::cache_stats() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return stats_;
}

void Session::ClearCache() {
  std::lock_guard<std::mutex> lock(cache_mu_);
  prepared_cache_.Clear();
  plan_cache_.Clear();
  result_cache_.Clear();
  // Counters restart with the emptied caches — a cleared session must not
  // report hit/miss/seed activity it can no longer back with entries.
  stats_ = SessionCacheStats{};
}

// ---- synchronous facade ---------------------------------------------------

Result<CqaVerdict> Session::EvalVerdict(const Query& query,
                                        const Priority& priority,
                                        RepairFamily family,
                                        const EvalOptions& options,
                                        CqaPlan* executed, bool* cache_hit) {
  if (cache_hit != nullptr) *cache_hit = false;
  // A forced tier exists to really execute that tier; serving it from the
  // cache (or caching its result under the unforced key) would defeat it.
  const bool cacheable =
      options_.enable_cache && !options.force_tier.has_value();
  if (!cacheable) {
    EvalContextScope scope(options);
    return PlannedConsistentAnswer(problem(), priority, family, query,
                                   Lower(options, scope.context()), executed);
  }
  const std::string query_text = query.ToString();
  const std::string result_key =
      ResultKey(CqaRequest::kVerdict, family, priority, query_text);
  const std::string plan_key =
      PlanKey(CqaRequest::kVerdict, family, PriorityIsEmpty(priority),
              options.limits.max_dnf_disjuncts, query_text);
  std::optional<CqaPlan> plan;
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    CachedResult* entry = result_cache_.Get(result_key);
    if (entry != nullptr && entry->verdict.has_value()) {
      ++stats_.result_hits;
      if (executed != nullptr) *executed = entry->plan;
      if (cache_hit != nullptr) *cache_hit = true;
      return *entry->verdict;
    }
    ++stats_.result_misses;
    CqaPlan* cached_plan = plan_cache_.Get(plan_key);
    if (cached_plan != nullptr) {
      ++stats_.plan_hits;
      plan = *cached_plan;
    } else {
      ++stats_.plan_misses;
    }
  }
  PREFREP_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedQuery> prepared,
                           PreparedFor(query_text, query));
  EvalContextScope scope(options);
  CqaPlannerOptions planner_options = Lower(options, scope.context());
  planner_options.prepared = prepared.get();
  if (plan.has_value()) planner_options.precomputed_plan = &*plan;
  CqaPlan ran;
  Result<CqaVerdict> verdict = PlannedConsistentAnswer(
      problem(), priority, family, query, planner_options, &ran);
  if (executed != nullptr) *executed = ran;
  if (verdict.ok()) {
    CachedResult entry;
    entry.verdict = *verdict;
    entry.plan = ran;
    entry.footprint = FootprintFor(query, priority);
    std::lock_guard<std::mutex> lock(cache_mu_);
    if (!plan.has_value()) {
      // Cache the plan that actually RAN (post any runtime fallback):
      // replaying it skips a doomed tier-1 attempt next time.
      plan_cache_.Put(plan_key, ran);
    }
    result_cache_.Put(result_key, std::move(entry));
  }
  return verdict;
}

Result<OpenAnswer> Session::EvalAnswers(const Query& query,
                                        const Priority& priority,
                                        RepairFamily family,
                                        const EvalOptions& options,
                                        CqaPlan* executed, bool* cache_hit) {
  if (cache_hit != nullptr) *cache_hit = false;
  const bool cacheable =
      options_.enable_cache && !options.force_tier.has_value();
  if (!cacheable) {
    EvalContextScope scope(options);
    return PlannedConsistentAnswers(problem(), priority, family, query,
                                    Lower(options, scope.context()), executed);
  }
  const std::string query_text = query.ToString();
  const std::string result_key =
      ResultKey(CqaRequest::kOpenAnswers, family, priority, query_text);
  const std::string plan_key =
      PlanKey(CqaRequest::kOpenAnswers, family, PriorityIsEmpty(priority),
              options.limits.max_dnf_disjuncts, query_text);
  std::optional<CqaPlan> plan;
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    CachedResult* entry = result_cache_.Get(result_key);
    if (entry != nullptr && entry->answers.has_value()) {
      ++stats_.result_hits;
      if (executed != nullptr) *executed = entry->plan;
      if (cache_hit != nullptr) *cache_hit = true;
      return *entry->answers;
    }
    ++stats_.result_misses;
    CqaPlan* cached_plan = plan_cache_.Get(plan_key);
    if (cached_plan != nullptr) {
      ++stats_.plan_hits;
      plan = *cached_plan;
    } else {
      ++stats_.plan_misses;
    }
  }
  PREFREP_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedQuery> prepared,
                           PreparedFor(query_text, query));
  EvalContextScope scope(options);
  CqaPlannerOptions planner_options = Lower(options, scope.context());
  planner_options.prepared = prepared.get();
  if (plan.has_value()) planner_options.precomputed_plan = &*plan;
  CqaPlan ran;
  Result<OpenAnswer> answers = PlannedConsistentAnswers(
      problem(), priority, family, query, planner_options, &ran);
  if (executed != nullptr) *executed = ran;
  if (answers.ok()) {
    CachedResult entry;
    entry.answers = *answers;
    entry.plan = ran;
    entry.footprint = FootprintFor(query, priority);
    std::lock_guard<std::mutex> lock(cache_mu_);
    if (!plan.has_value()) {
      plan_cache_.Put(plan_key, ran);
    }
    result_cache_.Put(result_key, std::move(entry));
  }
  return answers;
}

Result<CqaVerdict> Session::Ask(const Query& query, const Priority& priority,
                                RepairFamily family,
                                const EvalOptions& options, CqaPlan* executed,
                                bool* cache_hit) {
  return EvalVerdict(query, priority, family, options, executed, cache_hit);
}

Result<OpenAnswer> Session::Answers(const Query& query,
                                    const Priority& priority,
                                    RepairFamily family,
                                    const EvalOptions& options,
                                    CqaPlan* executed, bool* cache_hit) {
  return EvalAnswers(query, priority, family, options, executed, cache_hit);
}

Result<AggregateRange> Session::Aggregate(std::string_view relation,
                                          std::string_view attribute,
                                          AggregateFunction fn,
                                          const Priority& priority,
                                          RepairFamily family,
                                          const EvalOptions& options,
                                          CqaPlan* executed) {
  EvalContextScope scope(options);
  return PlannedAggregateRange(problem(), priority, family, relation,
                               attribute, fn, Lower(options, scope.context()),
                               executed);
}

Result<std::vector<DynamicBitset>> Session::Repairs(
    const Priority& priority, RepairFamily family,
    const EvalOptions& options) {
  return PreferredRepairs(snapshot_->graph(), priority, family, options);
}

CqaPlan Session::Explain(const Query& query, const Priority& priority,
                         RepairFamily family, CqaRequest kind,
                         const EvalOptions& options) const {
  CqaPlannerOptions planner_options;
  planner_options.force_tier = options.force_tier;
  planner_options.max_dnf_disjuncts = options.limits.max_dnf_disjuncts;
  return ExplainPlan(problem(), priority, family, query, kind,
                     planner_options);
}

// ---- asynchronous facade --------------------------------------------------

SessionResponse Session::CancelledResponse(const PendingRequest& pending) {
  SessionResponse response;
  response.id = pending.id;
  response.kind = pending.request.kind;
  Status cancelled = Status::Cancelled("request cancelled before completion");
  response.verdict = cancelled;
  response.answers = cancelled;
  return response;
}

Result<uint64_t> Session::Submit(SessionRequest request) {
  if (request.query == nullptr) {
    return Status::InvalidArgument("SessionRequest.query is null");
  }
  // A default-constructed priority stands for "no preferences": normalize
  // it to the snapshot's empty priority so family engines can index it.
  if (request.priority.vertex_count() == 0 &&
      snapshot_->graph().vertex_count() > 0) {
    request.priority = Priority::Empty(snapshot_->graph());
  }
  auto pending = std::make_shared<PendingRequest>();
  pending->request = std::move(request);
  if (pending->request.options.context == nullptr) {
    pending->context =
        std::make_unique<ExecutionContext>(pending->request.options.limits);
  }
  pending->future = pending->promise.get_future().share();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stop_) {
      return Status::FailedPrecondition("session is shutting down");
    }
    if (queue_.size() + running_ >= options_.max_pending_requests) {
      return Status::ResourceExhausted(
          "session admission limit reached (" +
          std::to_string(options_.max_pending_requests) +
          " requests queued or running)");
    }
    pending->id = ++next_request_id_;
    queue_.push_back(pending);
    requests_.emplace(pending->id, pending);
  }
  queue_cv_.notify_all();
  return pending->id;
}

Result<SessionResponse> Session::Wait(uint64_t request_id) {
  std::shared_ptr<PendingRequest> pending;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    auto it = requests_.find(request_id);
    if (it == requests_.end()) {
      return Status::NotFound("unknown request id " +
                              std::to_string(request_id));
    }
    pending = it->second;
  }
  SessionResponse response = pending->future.get();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    requests_.erase(request_id);
  }
  return response;
}

Status Session::Cancel(uint64_t request_id) {
  std::shared_ptr<PendingRequest> to_fail;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    auto it = requests_.find(request_id);
    if (it == requests_.end()) {
      return Status::NotFound("unknown request id " +
                              std::to_string(request_id));
    }
    std::shared_ptr<PendingRequest>& pending = it->second;
    switch (pending->state) {
      case RequestState::kQueued: {
        pending->state = RequestState::kDone;
        for (auto queue_it = queue_.begin(); queue_it != queue_.end();
             ++queue_it) {
          if ((*queue_it)->id == request_id) {
            queue_.erase(queue_it);
            break;
          }
        }
        to_fail = pending;
        break;
      }
      case RequestState::kRunning: {
        ExecutionContext* context = pending->context != nullptr
                                        ? pending->context.get()
                                        : pending->request.options.context;
        if (context != nullptr) context->RequestCancel();
        break;
      }
      case RequestState::kDone:
        break;  // already finished: cancelling is a no-op
    }
  }
  if (to_fail != nullptr) {
    to_fail->promise.set_value(CancelledResponse(*to_fail));
  }
  return Status::Ok();
}

void Session::ResumeDispatch() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    paused_ = false;
  }
  queue_cv_.notify_all();
}

size_t Session::pending_requests() const {
  std::lock_guard<std::mutex> lock(queue_mu_);
  return queue_.size() + running_;
}

SessionResponse Session::Execute(PendingRequest& pending) {
  SessionResponse response;
  response.id = pending.id;
  response.kind = pending.request.kind;
  EvalOptions options = pending.request.options;
  if (pending.context != nullptr) {
    // Arm the deadline at execution start, not admission: queue time does
    // not count against the request's budget.
    if (options.deadline.has_value()) {
      pending.context->SetDeadlineAfter(*options.deadline);
    }
    options.context = pending.context.get();
  }
  const Query& query = *pending.request.query;
  CqaPlan ran;
  bool hit = false;
  if (pending.request.kind == CqaRequest::kVerdict) {
    response.verdict = EvalVerdict(query, pending.request.priority,
                                   pending.request.family, options, &ran, &hit);
  } else {
    response.answers = EvalAnswers(query, pending.request.priority,
                                   pending.request.family, options, &ran, &hit);
  }
  response.executed = ran;
  response.cache_hit = hit;
  return response;
}

void Session::DispatchLoop() {
  for (;;) {
    std::shared_ptr<PendingRequest> pending;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return stop_ || (!paused_ && !queue_.empty());
      });
      if (stop_) return;  // the destructor flushes whatever is queued
      pending = queue_.front();
      queue_.pop_front();
      pending->state = RequestState::kRunning;
      ++running_;
    }
    SessionResponse response = Execute(*pending);
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      pending->state = RequestState::kDone;
      --running_;
    }
    pending->promise.set_value(std::move(response));
    queue_cv_.notify_all();
  }
}

}  // namespace prefrep
