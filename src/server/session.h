// Session: the primary query-facing facade of the resident CQA server.
//
// A Session binds one immutable Snapshot (snapshot.h) to the caches and
// the request queue that make repeated querying cheap:
//
//   - PreparedQuery cache: one compilation per distinct query text; every
//     evaluation (any family, any priority, any tier) reuses the cached
//     master through a private copy — copying a compiled query is far
//     cheaper than re-validating, type-inferring and index-hashing it.
//   - Plan cache: one planner decision per (query, family, request kind,
//     priority emptiness, DNF budget); repeat calls skip re-planning,
//     including the query-exponential DNF pre-attempt.
//   - Result cache: memoized verdicts / certain-answer sets keyed by the
//     EXACT inputs that determine them — request kind, family, query text
//     and the priority's full arc list (never a hash: a collision would
//     silently return a wrong answer). Only OK results are cached, and
//     threads/deadline/limits are excluded from the key: answers are
//     bit-for-bit independent of them, and failures are never cached.
//
// Hit/miss counters for all three caches are exposed via cache_stats().
// `force_tier` bypasses the plan and result caches (a forced call exists
// to really execute a tier — the differential tests depend on it).
//
// The cache invalidation contract is structural: a Session's snapshot is
// immutable, so its caches can never go stale. New data means a new
// Snapshot and a new Session; the old session stays correct for the old
// version until dropped.
//
// For a snapshot built by Snapshot::Derive, the derived-session
// constructor seeds the plan and result caches from the parent session
// instead of starting cold. Each result entry carries an invalidation
// footprint — the referenced relations, the components they overlap, and
// the largest tuple id in its priority-arc key — and survives iff the
// delta left all of it untouched: the active domain is preserved, no
// footprint relation was touched or had ids shift (all its ids below
// first_shifted_id), and no footprint component is in the dirty set.
// Surviving entries get their component footprint re-expressed in the new
// decomposition; everything else is dropped. Plan entries are seeded
// whenever conflict-free-ness didn't change (the only instance property
// the planner reads). Prepared masters are NOT seeded: they are compiled
// against the parent's tuple universe (mask sizes, domains) and recompile
// lazily per query instead. All caches evict least-recently-used at
// max_cache_entries (lru_cache.h); seeding preserves the parent's recency
// order.
//
// Submit/Wait run requests on the session's dispatcher thread with
// admission control: at most max_pending_requests are queued or running,
// further Submits fail fast with kResourceExhausted. Each admitted
// request gets its own ExecutionContext, so Cancel works whether the
// request is still queued (fails it with kCancelled immediately) or
// already running (cooperative interrupt through the engines' poll
// points). Sync and async calls share the caches.
//
// Thread safety: all public methods are safe to call concurrently; the
// caches are internally locked, and evaluation never holds a lock.

#ifndef PREFREP_SERVER_SESSION_H_
#define PREFREP_SERVER_SESSION_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "base/eval_options.h"
#include "base/status.h"
#include "cqa/aggregation.h"
#include "cqa/cqa.h"
#include "cqa/planner.h"
#include "priority/priority.h"
#include "query/ast.h"
#include "query/evaluator.h"
#include "query/prepared.h"
#include "server/lru_cache.h"
#include "server/snapshot.h"

namespace prefrep {

struct SessionOptions {
  // Per-cache entry cap (prepared / plan / result each); insertion past
  // the cap evicts the least-recently-used entry, bounding memory while
  // keeping the hot working set resident.
  size_t max_cache_entries = 1024;
  // Admission cap: queued + running async requests. Submits beyond it
  // fail with kResourceExhausted instead of queueing unboundedly.
  size_t max_pending_requests = 64;
  bool enable_cache = true;
  // Start the dispatcher paused: admitted requests queue but none runs
  // until ResumeDispatch(). Deterministic admission/cancellation tests.
  bool start_paused = false;
};

struct SessionCacheStats {
  uint64_t prepared_hits = 0;
  uint64_t prepared_misses = 0;
  uint64_t plan_hits = 0;
  uint64_t plan_misses = 0;
  uint64_t result_hits = 0;
  uint64_t result_misses = 0;
  // Derived-session seeding: entries inherited from the parent session vs
  // dropped because the delta invalidated their footprint. Zero for
  // sessions built without a parent.
  uint64_t seeded_plans = 0;
  uint64_t seeded_results = 0;
  uint64_t seed_dropped = 0;

  // "prepared 3/1, plan 2/2, result 5/3 (hits/misses)"; a derived session
  // appends "; seeded plan 2, result 4, dropped 1".
  std::string ToString() const;
};

// An async request. `query` is required; a default-constructed priority
// stands for the empty priority over the snapshot's graph.
struct SessionRequest {
  CqaRequest kind = CqaRequest::kVerdict;
  std::unique_ptr<Query> query;
  Priority priority;
  RepairFamily family = RepairFamily::kAll;
  // options.context, when set, is used as-is (caller governance); when
  // null the session creates a per-request context from options.limits /
  // options.deadline so Cancel always has something to interrupt.
  EvalOptions options;
};

struct SessionResponse {
  uint64_t id = 0;
  CqaRequest kind = CqaRequest::kVerdict;
  // The populated member matches `kind`; the other keeps its "unset"
  // error (Result<T> always holds a value or a status).
  Result<CqaVerdict> verdict = Status::Internal("request produced no verdict");
  Result<OpenAnswer> answers = Status::Internal("request produced no answers");
  CqaPlan executed;
  bool cache_hit = false;
};

class Session {
 public:
  explicit Session(std::shared_ptr<const Snapshot> snapshot,
                   SessionOptions options = {});

  // Derived-session constructor: `snapshot` must come from
  // Snapshot::Derive with `parent.snapshot()` as its base. Seeds the plan
  // and result caches from `parent` per the contract in the file comment;
  // `parent` is only read during construction and not retained.
  Session(std::shared_ptr<const Snapshot> snapshot, const Session& parent,
          SessionOptions options = {});

  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  const Snapshot& snapshot() const { return *snapshot_; }

  // ---- synchronous facade -----------------------------------------------

  // Three-valued consistent answer to a closed query (cached).
  // `executed` (optional) receives the plan that ran; `cache_hit`
  // (optional) reports whether the result came from the cache.
  Result<CqaVerdict> Ask(const Query& query, const Priority& priority,
                         RepairFamily family, const EvalOptions& options = {},
                         CqaPlan* executed = nullptr,
                         bool* cache_hit = nullptr);

  // Certain answers to an open query (cached like Ask).
  Result<OpenAnswer> Answers(const Query& query, const Priority& priority,
                             RepairFamily family,
                             const EvalOptions& options = {},
                             CqaPlan* executed = nullptr,
                             bool* cache_hit = nullptr);

  // Aggregate range (uncached: no PreparedQuery to reuse and ranges are
  // cheap relative to their enumeration anyway).
  Result<AggregateRange> Aggregate(std::string_view relation,
                                   std::string_view attribute,
                                   AggregateFunction fn,
                                   const Priority& priority,
                                   RepairFamily family,
                                   const EvalOptions& options = {},
                                   CqaPlan* executed = nullptr);

  // Materialized preferred-repair list under the session snapshot.
  Result<std::vector<DynamicBitset>> Repairs(const Priority& priority,
                                             RepairFamily family,
                                             const EvalOptions& options = {});

  // The planner's routing decision, without executing.
  CqaPlan Explain(const Query& query, const Priority& priority,
                  RepairFamily family, CqaRequest kind = CqaRequest::kVerdict,
                  const EvalOptions& options = {}) const;

  // ---- asynchronous facade ----------------------------------------------

  // Admits `request` to the dispatcher queue and returns its id, or
  // kResourceExhausted when max_pending_requests are already queued or
  // running, or kInvalidArgument when request.query is null.
  Result<uint64_t> Submit(SessionRequest request);

  // Blocks until the request finishes (or was cancelled) and returns its
  // response; kNotFound for an id never issued or already collected.
  Result<SessionResponse> Wait(uint64_t request_id);

  // Cancels a request: a queued one completes immediately with
  // kCancelled, a running one is cooperatively interrupted through its
  // ExecutionContext. kNotFound for an unknown/collected id; OK (no-op)
  // for one that already finished.
  Status Cancel(uint64_t request_id);

  // Releases a start_paused dispatcher (idempotent).
  void ResumeDispatch();

  // Queued + running async requests.
  size_t pending_requests() const;

  // ---- cache management -------------------------------------------------

  // Counters since session construction or the last ClearCache().
  SessionCacheStats cache_stats() const;
  // Empties all three caches and zeroes cache_stats() — after a clear the
  // session reports no phantom hit/miss/seed/eviction activity.
  void ClearCache();

 private:
  // Everything the delta could invalidate about a cached result, recorded
  // at insert time in the session's own snapshot terms.
  struct ResultFootprint {
    std::vector<int> relations;   // referenced relation indices, sorted
    std::vector<int> components;  // components overlapping them, sorted
    TupleId max_tuple_id = -1;    // largest id in the priority-arc key
  };

  struct CachedResult {
    std::optional<CqaVerdict> verdict;
    std::optional<OpenAnswer> answers;
    CqaPlan plan;
    ResultFootprint footprint;
  };

  enum class RequestState { kQueued, kRunning, kDone };

  struct PendingRequest {
    uint64_t id = 0;
    SessionRequest request;
    std::unique_ptr<ExecutionContext> context;  // null iff caller supplied one
    std::promise<SessionResponse> promise;
    std::shared_future<SessionResponse> future;
    RequestState state = RequestState::kQueued;  // guarded by queue_mu_
  };

  const RepairProblem& problem() const { return snapshot_->problem(); }

  // Returns the cached PreparedQuery master for `query_text`, compiling
  // and inserting on miss. Updates prepared hit/miss counters.
  Result<std::shared_ptr<const PreparedQuery>> PreparedFor(
      const std::string& query_text, const Query& query);

  // Components of this session's snapshot overlapping the given relation
  // indices (sorted union of relation_components_ rows).
  std::vector<int> ComponentsForRelations(
      const std::vector<int>& relations) const;
  // The invalidation footprint of a (query, priority) result in this
  // snapshot's terms.
  ResultFootprint FootprintFor(const Query& query,
                               const Priority& priority) const;
  // Copies surviving plan/result entries from `parent` (see the file
  // comment for the survival conditions). Called by the derived-session
  // constructor before any request runs.
  void SeedFromParent(const Session& parent);

  Result<CqaVerdict> EvalVerdict(const Query& query, const Priority& priority,
                                 RepairFamily family,
                                 const EvalOptions& options, CqaPlan* executed,
                                 bool* cache_hit);
  Result<OpenAnswer> EvalAnswers(const Query& query, const Priority& priority,
                                 RepairFamily family,
                                 const EvalOptions& options, CqaPlan* executed,
                                 bool* cache_hit);

  void DispatchLoop();
  SessionResponse Execute(PendingRequest& pending);
  static SessionResponse CancelledResponse(const PendingRequest& pending);

  std::shared_ptr<const Snapshot> snapshot_;
  SessionOptions options_;

  // Components overlapping each relation (row = relation index), computed
  // once at construction — the snapshot is immutable, so this never
  // changes. Used for result footprints.
  std::vector<std::vector<int>> relation_components_;

  mutable std::mutex cache_mu_;
  SessionCacheStats stats_;
  LruCache<std::shared_ptr<const PreparedQuery>> prepared_cache_;
  LruCache<CqaPlan> plan_cache_;
  LruCache<CachedResult> result_cache_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  bool paused_ = false;
  bool stop_ = false;
  uint64_t next_request_id_ = 0;
  size_t running_ = 0;
  std::deque<std::shared_ptr<PendingRequest>> queue_;
  std::unordered_map<uint64_t, std::shared_ptr<PendingRequest>> requests_;
  std::thread dispatcher_;
};

}  // namespace prefrep

#endif  // PREFREP_SERVER_SESSION_H_
