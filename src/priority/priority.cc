#include "priority/priority.h"

#include <algorithm>

#include "graph/components.h"
#include "graph/digraph.h"

namespace prefrep {

namespace {

Status ValidateArcs(const ConflictGraph& graph,
                    const std::vector<std::pair<int, int>>& arcs) {
  int n = graph.vertex_count();
  for (auto [x, y] : arcs) {
    if (x < 0 || x >= n || y < 0 || y >= n) {
      return Status::OutOfRange("priority arc (" + std::to_string(x) + "," +
                                std::to_string(y) + ") out of range");
    }
    if (!graph.HasEdge(x, y)) {
      return Status::InvalidArgument(
          "priority defined on non-conflicting tuples (" + std::to_string(x) +
          "," + std::to_string(y) + ")");
    }
  }
  for (auto [x, y] : arcs) {
    if (std::find(arcs.begin(), arcs.end(), std::make_pair(y, x)) !=
        arcs.end()) {
      return Status::InvalidArgument("conflict edge (" + std::to_string(x) +
                                     "," + std::to_string(y) +
                                     ") oriented in both directions");
    }
  }
  if (!IsAcyclicDigraph(n, arcs)) {
    return Status::InvalidArgument("priority relation is cyclic");
  }
  return Status::Ok();
}

}  // namespace

Priority Priority::Empty(const ConflictGraph& graph) {
  Priority p;
  p.vertex_count_ = graph.vertex_count();
  p.dominators_.assign(p.vertex_count_, DynamicBitset(p.vertex_count_));
  p.dominated_by_.assign(p.vertex_count_, DynamicBitset(p.vertex_count_));
  return p;
}

Result<Priority> Priority::Create(const ConflictGraph& graph,
                                  std::vector<std::pair<int, int>> arcs) {
  std::sort(arcs.begin(), arcs.end());
  arcs.erase(std::unique(arcs.begin(), arcs.end()), arcs.end());
  PREFREP_RETURN_IF_ERROR(ValidateArcs(graph, arcs));
  Priority p = Empty(graph);
  p.arcs_ = std::move(arcs);
  for (auto [x, y] : p.arcs_) {
    p.dominators_[y].Set(x);
    p.dominated_by_[x].Set(y);
  }
  return p;
}

Result<Priority> Priority::FromBinaryRelation(
    const ConflictGraph& graph,
    const std::vector<std::pair<int, int>>& arcs) {
  int n = graph.vertex_count();
  for (auto [x, y] : arcs) {
    if (x < 0 || x >= n || y < 0 || y >= n) {
      return Status::OutOfRange("relation pair (" + std::to_string(x) + "," +
                                std::to_string(y) + ") out of range");
    }
  }
  if (!IsAcyclicDigraph(n, arcs)) {
    return Status::InvalidArgument("binary relation is cyclic");
  }
  std::vector<std::pair<int, int>> kept;
  for (auto [x, y] : arcs) {
    if (graph.HasEdge(x, y)) kept.emplace_back(x, y);
  }
  return Create(graph, std::move(kept));
}

Priority Priority::FromRanking(const ConflictGraph& graph,
                               const std::vector<int64_t>& ranks,
                               bool higher_wins) {
  CHECK_EQ(static_cast<int>(ranks.size()), graph.vertex_count());
  std::vector<std::pair<int, int>> arcs;
  for (auto [u, v] : graph.edges()) {
    if (ranks[u] == ranks[v]) continue;
    bool u_wins = higher_wins ? ranks[u] > ranks[v] : ranks[u] < ranks[v];
    if (u_wins) {
      arcs.emplace_back(u, v);
    } else {
      arcs.emplace_back(v, u);
    }
  }
  auto result = Create(graph, std::move(arcs));
  CHECK(result.ok()) << result.status().ToString();
  return *std::move(result);
}

bool Priority::IsTotalFor(const ConflictGraph& graph) const {
  for (auto [u, v] : graph.edges()) {
    if (!Dominates(u, v) && !Dominates(v, u)) return false;
  }
  return true;
}

bool Priority::IsExtendedBy(const Priority& other) const {
  if (other.vertex_count_ != vertex_count_) return false;
  return std::includes(other.arcs_.begin(), other.arcs_.end(), arcs_.begin(),
                       arcs_.end());
}

Result<Priority> Priority::Extend(
    const ConflictGraph& graph,
    const std::vector<std::pair<int, int>>& extra_arcs) const {
  std::vector<std::pair<int, int>> all = arcs_;
  all.insert(all.end(), extra_arcs.begin(), extra_arcs.end());
  return Create(graph, std::move(all));
}

std::string Priority::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < arcs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(arcs_[i].first) + "≻" +
           std::to_string(arcs_[i].second);
  }
  out += "}";
  return out;
}

DynamicBitset Winnow(const Priority& priority, const DynamicBitset& r) {
  DynamicBitset result(r.size());
  WinnowInto(priority, r, result);
  return result;
}

void WinnowInto(const Priority& priority, const DynamicBitset& r,
                DynamicBitset& out) {
  CHECK_EQ(r.size(), priority.vertex_count());
  CHECK(&out != &r);
  out = r;
  ForEachSetBit(r, [&](int t) {
    if (priority.DominatorsOf(t).Intersects(r)) out.Reset(t);
  });
}

std::vector<Priority> ProjectPriorities(
    const ComponentDecomposition& decomposition, const Priority& priority) {
  CHECK_EQ(priority.vertex_count(), decomposition.vertex_count());
  // Bucket the arcs by component in one pass over the arc list.
  size_t component_count = decomposition.components().size();
  std::vector<std::vector<std::pair<int, int>>> arcs(component_count);
  for (auto [x, y] : priority.arcs()) {
    int c = decomposition.ComponentOf(x);
    DCHECK(c == decomposition.ComponentOf(y))
        << "priority arc across components";
    DCHECK(c >= 0) << "priority arc on an isolated vertex";
    arcs[c].emplace_back(decomposition.LocalIndex(x),
                         decomposition.LocalIndex(y));
  }
  std::vector<Priority> projected;
  projected.reserve(component_count);
  for (size_t c = 0; c < component_count; ++c) {
    // Restricting an acyclic conflict-edge orientation to an induced
    // subgraph keeps it valid, so Create cannot fail here.
    auto local = Priority::Create(decomposition.components()[c].graph,
                                  std::move(arcs[c]));
    CHECK(local.ok()) << local.status().ToString();
    projected.push_back(*std::move(local));
  }
  return projected;
}

}  // namespace prefrep
