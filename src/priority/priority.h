// Priority (Definition 2): an acyclic binary relation defined only on
// conflicting tuples — equivalently a partial acyclic orientation of the
// conflict graph. "x ≻ y" reads "x dominates y": in a conflict between x
// and y the user prefers to keep x.

#ifndef PREFREP_PRIORITY_PRIORITY_H_
#define PREFREP_PRIORITY_PRIORITY_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "base/bitset.h"
#include "base/status.h"
#include "graph/conflict_graph.h"

namespace prefrep {

class Priority {
 public:
  Priority() = default;

  // The empty priority (no conflicts resolved) for `graph`.
  static Priority Empty(const ConflictGraph& graph);

  // Validates (Definition 2): every arc (x, y) [meaning x ≻ y] must lie on a
  // conflict edge, no edge may be oriented both ways, and the relation must
  // be acyclic.
  static Result<Priority> Create(const ConflictGraph& graph,
                                 std::vector<std::pair<int, int>> arcs);

  // Builds a priority from an arbitrary acyclic binary relation on tuples by
  // keeping only the pairs that are actual conflicts (§2.2: "define the
  // priority as an arbitrary acyclic binary relation on r and then use such
  // a priority relation only on conflicting tuples").
  static Result<Priority> FromBinaryRelation(
      const ConflictGraph& graph, const std::vector<std::pair<int, int>>& arcs);

  // Orients every conflict edge from the higher-ranked tuple to the
  // lower-ranked one; edges between equally ranked tuples stay unoriented.
  // Rank-derived orientations are always acyclic. With `higher_wins` false
  // the lower rank dominates (e.g. "older timestamp wins").
  static Priority FromRanking(const ConflictGraph& graph,
                              const std::vector<int64_t>& ranks,
                              bool higher_wins = true);

  int vertex_count() const { return vertex_count_; }
  int arc_count() const { return static_cast<int>(arcs_.size()); }
  // Sorted ordered pairs (x, y) with x ≻ y.
  const std::vector<std::pair<int, int>>& arcs() const { return arcs_; }

  // x ≻ y?
  bool Dominates(int x, int y) const {
    return dominated_by_[x].Test(y);
  }
  // {u : u ≻ v}.
  const DynamicBitset& DominatorsOf(int v) const { return dominators_[v]; }
  // {v : u ≻ v}.
  const DynamicBitset& DominatedBy(int u) const { return dominated_by_[u]; }

  // True iff every conflict edge of `graph` is oriented (§2.2: a priority
  // that cannot be extended further is total).
  bool IsTotalFor(const ConflictGraph& graph) const;

  // True iff `other` extends this priority: other ⊇ this as arc sets.
  bool IsExtendedBy(const Priority& other) const;

  // This priority plus `extra_arcs`; validated like Create.
  Result<Priority> Extend(const ConflictGraph& graph,
                          const std::vector<std::pair<int, int>>& extra_arcs)
      const;

  // E.g. "{3≻1, 4≻2}".
  std::string ToString() const;

  friend bool operator==(const Priority& a, const Priority& b) {
    return a.vertex_count_ == b.vertex_count_ && a.arcs_ == b.arcs_;
  }

 private:
  int vertex_count_ = 0;
  std::vector<std::pair<int, int>> arcs_;
  std::vector<DynamicBitset> dominators_;    // incoming domination
  std::vector<DynamicBitset> dominated_by_;  // outgoing domination
};

// The winnow operator ω≻(r) = {t ∈ r | ¬∃ t' ∈ r. t' ≻ t} (Chomicki,
// TODS'03), i.e. the members of `r` not dominated by any member of `r`.
[[nodiscard]] DynamicBitset Winnow(const Priority& priority,
                                   const DynamicBitset& r);

// Allocation-free form: overwrites `out` (same universe as `r`) with ω≻(r).
// `out` must not alias `r`.
void WinnowInto(const Priority& priority, const DynamicBitset& r,
                DynamicBitset& out);

// Restricts `priority` to each non-singleton component of `decomposition`,
// remapped to local ids. Priority arcs always join conflicting tuples, so
// every arc lands in exactly one component; the result has one entry per
// decomposition.components() element.
class ComponentDecomposition;
[[nodiscard]] std::vector<Priority> ProjectPriorities(
    const ComponentDecomposition& decomposition, const Priority& priority);

}  // namespace prefrep

#endif  // PREFREP_PRIORITY_PRIORITY_H_
