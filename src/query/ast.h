// First-order query AST (§2 / §2.3).
//
// Queries are first-order formulas over relation atoms and the built-in
// predicates =, !=, <, <=, >, >= (order predicates are interpreted over the
// numeric domain N only). Closed queries evaluate to a boolean on a
// database; open queries (with free variables) evaluate to answer sets.

#ifndef PREFREP_QUERY_AST_H_
#define PREFREP_QUERY_AST_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "relational/value.h"

namespace prefrep {

enum class QueryKind {
  kTrue,
  kFalse,
  kAtom,        // R(t1, ..., tk)
  kComparison,  // t1 op t2
  kNot,
  kAnd,
  kOr,
  kExists,
  kForAll,
};

enum class ComparisonOp { kEq, kNe, kLt, kLe, kGt, kGe };

// "=", "!=", "<", "<=", ">", ">=".
std::string_view ComparisonOpSymbol(ComparisonOp op);
// Evaluates `op` under the paper's semantics: '='/'!=' compare within a
// domain (cross-domain values are simply unequal); the order predicates
// hold only between two numbers.
bool EvalComparison(ComparisonOp op, const Value& lhs, const Value& rhs);
// The complement predicate (for negation normal form): != for =, >= for <...
ComparisonOp NegateComparison(ComparisonOp op);

// A term: a variable or a constant.
struct Term {
  enum class Kind { kVariable, kConstant };

  static Term Var(std::string name);
  static Term Const(Value value);
  static Term ConstName(std::string name) {
    return Const(Value::Name(std::move(name)));
  }
  static Term ConstNumber(int64_t n) { return Const(Value::Number(n)); }

  bool is_variable() const { return kind == Kind::kVariable; }
  bool is_constant() const { return kind == Kind::kConstant; }

  std::string ToString() const;
  friend bool operator==(const Term& a, const Term& b);

  Kind kind = Kind::kConstant;
  std::string variable;  // when kVariable
  Value constant;        // when kConstant
};

// An AST node. Nodes own their children; trees are passed around as
// std::unique_ptr<Query> and deep-copied with Clone().
struct Query {
  QueryKind kind = QueryKind::kTrue;

  // kAtom.
  std::string relation;
  std::vector<Term> terms;

  // kComparison.
  ComparisonOp op = ComparisonOp::kEq;
  Term lhs, rhs;

  // kNot (1 child), kAnd / kOr (>= 1 children), quantifiers (1 child).
  std::vector<std::unique_ptr<Query>> children;

  // kExists / kForAll.
  std::vector<std::string> bound_vars;

  // ---- factory helpers ----------------------------------------------------
  static std::unique_ptr<Query> True();
  static std::unique_ptr<Query> False();
  static std::unique_ptr<Query> Atom(std::string relation,
                                     std::vector<Term> terms);
  static std::unique_ptr<Query> Cmp(ComparisonOp op, Term lhs, Term rhs);
  static std::unique_ptr<Query> Not(std::unique_ptr<Query> child);
  static std::unique_ptr<Query> And(std::vector<std::unique_ptr<Query>> cs);
  static std::unique_ptr<Query> Or(std::vector<std::unique_ptr<Query>> cs);
  static std::unique_ptr<Query> Exists(std::vector<std::string> vars,
                                       std::unique_ptr<Query> child);
  static std::unique_ptr<Query> ForAll(std::vector<std::string> vars,
                                       std::unique_ptr<Query> child);

  std::unique_ptr<Query> Clone() const;

  // ---- classification -----------------------------------------------------
  // Variables not bound by any enclosing quantifier.
  std::set<std::string> FreeVariables() const;
  bool IsClosed() const { return FreeVariables().empty(); }
  // No quantifiers anywhere ({∀,∃}-free in the paper's Figure 5).
  bool IsQuantifierFree() const;
  // No variables at all (quantifier-free with constant terms only).
  bool IsGround() const;
  // An existentially quantified conjunction of atoms and comparisons
  // (the "conjunctive queries" column of Figure 5).
  bool IsConjunctive() const;

  std::string ToString() const;
};

// Names of all relations referenced by atoms anywhere in `query`, sorted
// and deduplicated. The session result cache (server/session.h) uses this
// as the relation part of an entry's invalidation footprint: a cached
// verdict/answer set can only change when one of these relations (or the
// quantifier domain) changes.
std::vector<std::string> ReferencedRelations(const Query& query);

// Structural classification of a query, one field per Figure 5 column
// the CQA planner (cqa/planner.h) routes on. Computed in a single pass;
// the individual predicates above stay as the reference definitions
// (ClassifyQuery is pinned against them in tests/query_test.cc).
struct QueryShape {
  bool closed = true;           // no free variables
  bool ground = true;           // no variables at all (implies QF)
  bool quantifier_free = true;  // no ∀/∃ anywhere
  bool conjunctive = false;     // ∃-quantified conjunction of atoms/cmps
  bool negation_free = true;    // no kNot anywhere (monotone)
  bool has_atom = false;        // references at least one relation
};

QueryShape ClassifyQuery(const Query& query);

// A deep copy of `query` with every *free* occurrence of the given
// variables replaced by the corresponding constants (bound occurrences
// under a shadowing quantifier are left alone).
std::unique_ptr<Query> SubstituteVariables(
    const Query& query, const std::map<std::string, Value>& bindings);

// True iff the query contains no negation (kNot) anywhere — such queries
// are monotone in the database, which GroundConsistentOpenAnswers relies
// on (an answer in some repair is an answer in the full database).
bool IsNegationFree(const Query& query);

}  // namespace prefrep

#endif  // PREFREP_QUERY_AST_H_
