#include "query/ast.h"

#include <algorithm>

#include "base/logging.h"

namespace prefrep {

std::string_view ComparisonOpSymbol(ComparisonOp op) {
  switch (op) {
    case ComparisonOp::kEq:
      return "=";
    case ComparisonOp::kNe:
      return "!=";
    case ComparisonOp::kLt:
      return "<";
    case ComparisonOp::kLe:
      return "<=";
    case ComparisonOp::kGt:
      return ">";
    case ComparisonOp::kGe:
      return ">=";
  }
  return "?";
}

bool EvalComparison(ComparisonOp op, const Value& lhs, const Value& rhs) {
  switch (op) {
    case ComparisonOp::kEq:
      return lhs == rhs;
    case ComparisonOp::kNe:
      return lhs != rhs;
    default:
      break;
  }
  // Order predicates are defined over N only.
  if (!lhs.is_number() || !rhs.is_number()) return false;
  switch (op) {
    case ComparisonOp::kLt:
      return lhs.number() < rhs.number();
    case ComparisonOp::kLe:
      return lhs.number() <= rhs.number();
    case ComparisonOp::kGt:
      return lhs.number() > rhs.number();
    case ComparisonOp::kGe:
      return lhs.number() >= rhs.number();
    default:
      return false;
  }
}

ComparisonOp NegateComparison(ComparisonOp op) {
  switch (op) {
    case ComparisonOp::kEq:
      return ComparisonOp::kNe;
    case ComparisonOp::kNe:
      return ComparisonOp::kEq;
    case ComparisonOp::kLt:
      return ComparisonOp::kGe;
    case ComparisonOp::kLe:
      return ComparisonOp::kGt;
    case ComparisonOp::kGt:
      return ComparisonOp::kLe;
    case ComparisonOp::kGe:
      return ComparisonOp::kLt;
  }
  return op;
}

Term Term::Var(std::string name) {
  Term t;
  t.kind = Kind::kVariable;
  t.variable = std::move(name);
  return t;
}

Term Term::Const(Value value) {
  Term t;
  t.kind = Kind::kConstant;
  t.constant = std::move(value);
  return t;
}

std::string Term::ToString() const {
  if (is_variable()) return variable;
  if (constant.is_name()) {
    return "'" + constant.name() + "'";
  }
  return constant.ToString();
}

bool operator==(const Term& a, const Term& b) {
  if (a.kind != b.kind) return false;
  return a.is_variable() ? a.variable == b.variable
                         : a.constant == b.constant;
}

std::unique_ptr<Query> Query::True() {
  auto q = std::make_unique<Query>();
  q->kind = QueryKind::kTrue;
  return q;
}

std::unique_ptr<Query> Query::False() {
  auto q = std::make_unique<Query>();
  q->kind = QueryKind::kFalse;
  return q;
}

std::unique_ptr<Query> Query::Atom(std::string relation,
                                   std::vector<Term> terms) {
  auto q = std::make_unique<Query>();
  q->kind = QueryKind::kAtom;
  q->relation = std::move(relation);
  q->terms = std::move(terms);
  return q;
}

std::unique_ptr<Query> Query::Cmp(ComparisonOp op, Term lhs, Term rhs) {
  auto q = std::make_unique<Query>();
  q->kind = QueryKind::kComparison;
  q->op = op;
  q->lhs = std::move(lhs);
  q->rhs = std::move(rhs);
  return q;
}

std::unique_ptr<Query> Query::Not(std::unique_ptr<Query> child) {
  auto q = std::make_unique<Query>();
  q->kind = QueryKind::kNot;
  q->children.push_back(std::move(child));
  return q;
}

std::unique_ptr<Query> Query::And(std::vector<std::unique_ptr<Query>> cs) {
  CHECK(!cs.empty());
  if (cs.size() == 1) return std::move(cs[0]);
  auto q = std::make_unique<Query>();
  q->kind = QueryKind::kAnd;
  q->children = std::move(cs);
  return q;
}

std::unique_ptr<Query> Query::Or(std::vector<std::unique_ptr<Query>> cs) {
  CHECK(!cs.empty());
  if (cs.size() == 1) return std::move(cs[0]);
  auto q = std::make_unique<Query>();
  q->kind = QueryKind::kOr;
  q->children = std::move(cs);
  return q;
}

std::unique_ptr<Query> Query::Exists(std::vector<std::string> vars,
                                     std::unique_ptr<Query> child) {
  CHECK(!vars.empty());
  auto q = std::make_unique<Query>();
  q->kind = QueryKind::kExists;
  q->bound_vars = std::move(vars);
  q->children.push_back(std::move(child));
  return q;
}

std::unique_ptr<Query> Query::ForAll(std::vector<std::string> vars,
                                     std::unique_ptr<Query> child) {
  CHECK(!vars.empty());
  auto q = std::make_unique<Query>();
  q->kind = QueryKind::kForAll;
  q->bound_vars = std::move(vars);
  q->children.push_back(std::move(child));
  return q;
}

std::unique_ptr<Query> Query::Clone() const {
  auto q = std::make_unique<Query>();
  q->kind = kind;
  q->relation = relation;
  q->terms = terms;
  q->op = op;
  q->lhs = lhs;
  q->rhs = rhs;
  q->bound_vars = bound_vars;
  q->children.reserve(children.size());
  for (const auto& child : children) q->children.push_back(child->Clone());
  return q;
}

namespace {

void CollectFree(const Query& q, std::set<std::string>& bound,
                 std::set<std::string>& free) {
  switch (q.kind) {
    case QueryKind::kTrue:
    case QueryKind::kFalse:
      return;
    case QueryKind::kAtom:
      for (const Term& t : q.terms) {
        if (t.is_variable() && !bound.contains(t.variable)) {
          free.insert(t.variable);
        }
      }
      return;
    case QueryKind::kComparison:
      for (const Term* t : {&q.lhs, &q.rhs}) {
        if (t->is_variable() && !bound.contains(t->variable)) {
          free.insert(t->variable);
        }
      }
      return;
    case QueryKind::kExists:
    case QueryKind::kForAll: {
      std::vector<std::string> newly_bound;
      for (const std::string& v : q.bound_vars) {
        if (bound.insert(v).second) newly_bound.push_back(v);
      }
      CollectFree(*q.children[0], bound, free);
      for (const std::string& v : newly_bound) bound.erase(v);
      return;
    }
    default:
      for (const auto& child : q.children) CollectFree(*child, bound, free);
      return;
  }
}

}  // namespace

std::set<std::string> Query::FreeVariables() const {
  std::set<std::string> bound, free;
  CollectFree(*this, bound, free);
  return free;
}

bool Query::IsQuantifierFree() const {
  if (kind == QueryKind::kExists || kind == QueryKind::kForAll) return false;
  for (const auto& child : children) {
    if (!child->IsQuantifierFree()) return false;
  }
  return true;
}

bool Query::IsGround() const {
  switch (kind) {
    case QueryKind::kAtom:
      for (const Term& t : terms) {
        if (t.is_variable()) return false;
      }
      break;
    case QueryKind::kComparison:
      if (lhs.is_variable() || rhs.is_variable()) return false;
      break;
    case QueryKind::kExists:
    case QueryKind::kForAll:
      return false;
    default:
      break;
  }
  for (const auto& child : children) {
    if (!child->IsGround()) return false;
  }
  return true;
}

bool Query::IsConjunctive() const {
  switch (kind) {
    case QueryKind::kTrue:
    case QueryKind::kAtom:
    case QueryKind::kComparison:
      return true;
    case QueryKind::kExists:
      return children[0]->IsConjunctive();
    case QueryKind::kAnd:
      for (const auto& child : children) {
        if (!child->IsConjunctive()) return false;
      }
      return true;
    default:
      return false;
  }
}

namespace {

Term SubstituteTerm(const Term& term,
                    const std::map<std::string, Value>& bindings,
                    const std::set<std::string>& shadowed) {
  if (term.is_variable() && !shadowed.contains(term.variable)) {
    auto it = bindings.find(term.variable);
    if (it != bindings.end()) return Term::Const(it->second);
  }
  return term;
}

std::unique_ptr<Query> SubstituteImpl(
    const Query& q, const std::map<std::string, Value>& bindings,
    std::set<std::string>& shadowed) {
  auto out = std::make_unique<Query>();
  out->kind = q.kind;
  out->relation = q.relation;
  out->op = q.op;
  out->bound_vars = q.bound_vars;
  switch (q.kind) {
    case QueryKind::kAtom:
      out->terms.reserve(q.terms.size());
      for (const Term& t : q.terms) {
        out->terms.push_back(SubstituteTerm(t, bindings, shadowed));
      }
      return out;
    case QueryKind::kComparison:
      out->lhs = SubstituteTerm(q.lhs, bindings, shadowed);
      out->rhs = SubstituteTerm(q.rhs, bindings, shadowed);
      return out;
    case QueryKind::kExists:
    case QueryKind::kForAll: {
      std::vector<std::string> newly;
      for (const std::string& v : q.bound_vars) {
        if (shadowed.insert(v).second) newly.push_back(v);
      }
      out->children.push_back(
          SubstituteImpl(*q.children[0], bindings, shadowed));
      for (const std::string& v : newly) shadowed.erase(v);
      return out;
    }
    default:
      for (const auto& child : q.children) {
        out->children.push_back(SubstituteImpl(*child, bindings, shadowed));
      }
      return out;
  }
}

}  // namespace

std::unique_ptr<Query> SubstituteVariables(
    const Query& query, const std::map<std::string, Value>& bindings) {
  std::set<std::string> shadowed;
  return SubstituteImpl(query, bindings, shadowed);
}

bool IsNegationFree(const Query& query) {
  if (query.kind == QueryKind::kNot) return false;
  for (const auto& child : query.children) {
    if (!IsNegationFree(*child)) return false;
  }
  return true;
}

namespace {

// One recursive pass collecting every flat flag of QueryShape (the
// non-local `closed` and the grammar-shaped `conjunctive` reuse the
// reference predicates).
void CollectShape(const Query& q, QueryShape& shape) {
  switch (q.kind) {
    case QueryKind::kAtom:
      shape.has_atom = true;
      for (const Term& t : q.terms) {
        if (t.is_variable()) shape.ground = false;
      }
      break;
    case QueryKind::kComparison:
      if (q.lhs.is_variable() || q.rhs.is_variable()) shape.ground = false;
      break;
    case QueryKind::kNot:
      shape.negation_free = false;
      break;
    case QueryKind::kExists:
    case QueryKind::kForAll:
      shape.ground = false;
      shape.quantifier_free = false;
      break;
    default:
      break;
  }
  for (const auto& child : q.children) CollectShape(*child, shape);
}

}  // namespace

QueryShape ClassifyQuery(const Query& query) {
  QueryShape shape;
  CollectShape(query, shape);
  shape.closed = query.IsClosed();
  shape.conjunctive = query.IsConjunctive();
  return shape;
}

std::string Query::ToString() const {
  switch (kind) {
    case QueryKind::kTrue:
      return "true";
    case QueryKind::kFalse:
      return "false";
    case QueryKind::kAtom: {
      std::string out = relation + "(";
      for (size_t i = 0; i < terms.size(); ++i) {
        if (i > 0) out += ", ";
        out += terms[i].ToString();
      }
      return out + ")";
    }
    case QueryKind::kComparison:
      return lhs.ToString() + " " + std::string(ComparisonOpSymbol(op)) +
             " " + rhs.ToString();
    case QueryKind::kNot:
      return "not (" + children[0]->ToString() + ")";
    case QueryKind::kAnd:
    case QueryKind::kOr: {
      std::string sep = kind == QueryKind::kAnd ? " and " : " or ";
      std::string out = "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += sep;
        out += children[i]->ToString();
      }
      return out + ")";
    }
    case QueryKind::kExists:
    case QueryKind::kForAll: {
      std::string out = kind == QueryKind::kExists ? "exists " : "forall ";
      for (size_t i = 0; i < bound_vars.size(); ++i) {
        if (i > 0) out += ", ";
        out += bound_vars[i];
      }
      return out + " . (" + children[0]->ToString() + ")";
    }
  }
  return "?";
}

namespace {

void CollectRelations(const Query& query, std::vector<std::string>* out) {
  if (query.kind == QueryKind::kAtom) out->push_back(query.relation);
  for (const std::unique_ptr<Query>& child : query.children) {
    CollectRelations(*child, out);
  }
}

}  // namespace

std::vector<std::string> ReferencedRelations(const Query& query) {
  std::vector<std::string> out;
  CollectRelations(query, &out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace prefrep
