// PreparedQuery: compile-once, evaluate-per-repair query evaluation.
//
// Preferred-consistent-answer semantics (cqa/cqa.h) evaluates one fixed
// query in every enumerated repair of one fixed database, so anything the
// evaluator derives from the (database, query) pair alone is loop-invariant:
// validation, variable typing, the active domain, relation lookups, and
// tuple indexes. The seed evaluator (query/evaluator.h) recomputes all of
// it per call; PreparedQuery hoists it into a single Compile step so that
// the per-repair work is only the quantifier search itself, against the
// repair's DynamicBitset mask:
//
//   - variables are numbered into dense frame slots (array indexing instead
//     of std::map<std::string, Value> environments),
//   - every atom is resolved to its relation index at compile time,
//   - atom checks are O(arity) hash probes against a per-relation tuple
//     index (every term is bound when an atom is reached, so the probe is
//     an exact-tuple lookup), filtered by the mask bit,
//   - each variable's domain (active domain restricted by inferred types)
//     is materialized once.
//
// Semantics match EvalClosed/EvalOpen: quantified variables range over
// the active domain of the *full* database plus query constants,
// regardless of the mask (all repairs share the domains D and N). The
// randomized suite in tests/prepared_eval_test.cc pins the equivalence.
// One deliberate divergence: binders are lexically scoped here (each
// quantifier gets its own slot), whereas the reference evaluator keys
// its environment and type inference by variable *name* and so
// conflates distinct binders reusing a name — e.g. the domains of the
// two x's in (exists x . R(x)) and (exists x . S(x)) wrongly narrow
// each other there. PreparedQuery gives such queries their standard
// first-order meaning (pinned by ShadowedBinderNamesAreScopedPerBinder).
//
// A PreparedQuery borrows the Database: the database must outlive it and
// must not be mutated after Compile. Evaluation reuses internal scratch
// buffers, so a given PreparedQuery must not be evaluated concurrently.

#ifndef PREFREP_QUERY_PREPARED_H_
#define PREFREP_QUERY_PREPARED_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "base/bitset.h"
#include "base/status.h"
#include "query/ast.h"
#include "query/evaluator.h"
#include "relational/database.h"

namespace prefrep {

class PreparedQuery {
 public:
  // Validates and compiles `query` against `db`. The returned object
  // borrows `db` (see header comment) but owns everything else — the Query
  // AST can be destroyed afterwards.
  static Result<PreparedQuery> Compile(const Database& db, const Query& query);

  // Free variables of the compiled query, sorted by name (the column order
  // of EvalOpen answers, matching query/evaluator.h).
  const std::vector<std::string>& free_variables() const {
    return free_variables_;
  }
  bool is_closed() const { return free_variables_.empty(); }

  // Evaluates over the sub-database `mask` (nullptr for the full
  // database). EvalClosed requires a closed query.
  Result<bool> EvalClosed(const DynamicBitset* mask) const;
  Result<OpenAnswer> EvalOpen(const DynamicBitset* mask) const;

 private:
  // A compiled term: either a frame slot or an inline constant.
  struct CompiledTerm {
    int slot = -1;  // >= 0: variable; -1: constant
    Value constant;
  };

  // One node of the compiled tree (stored flat in nodes_, children by
  // index; node 0 is the root).
  struct Node {
    QueryKind kind = QueryKind::kTrue;
    // kAtom.
    int relation = -1;  // index into both db_->relations() and indexes_
    std::vector<CompiledTerm> terms;
    // kComparison.
    ComparisonOp op = ComparisonOp::kEq;
    CompiledTerm lhs, rhs;
    // kNot / kAnd / kOr / quantifiers.
    std::vector<int> children;
    // kExists / kForAll.
    std::vector<int> slots;
  };

  // Exact-tuple hash index over one relation: value-hash -> rows with that
  // hash (collisions are verified against the stored tuples).
  struct TupleIndex {
    bool built = false;
    std::unordered_map<uint64_t, std::vector<int32_t>> rows;
  };

  class Compiler;

  bool EvalNode(int node, const DynamicBitset* mask) const;
  bool EvalAtom(const Node& n, const DynamicBitset* mask) const;
  bool EvalQuantifier(const Node& n, bool existential, size_t var_index,
                      const DynamicBitset* mask) const;
  const Value& Resolve(const CompiledTerm& t) const {
    return t.slot >= 0 ? frame_[t.slot] : t.constant;
  }

  const Database* db_ = nullptr;
  std::vector<Node> nodes_;
  std::vector<std::string> free_variables_;
  std::vector<int> free_slots_;  // frame slot of each free variable
  // Candidate values per frame slot (active domain restricted by the
  // slot's inferred type).
  std::vector<std::vector<Value>> domains_;
  // Tuple indexes for the relations referenced by atoms (index-aligned
  // with db_->relations(); unreferenced relations stay unbuilt).
  std::vector<TupleIndex> indexes_;
  // Scratch: variable bindings during evaluation (size = slot count).
  mutable std::vector<Value> frame_;
};

}  // namespace prefrep

#endif  // PREFREP_QUERY_PREPARED_H_
