// Parser for the textual first-order query language.
//
// Syntax (keywords are case-insensitive):
//
//   formula  := ('exists' | 'forall') var (',' var)* '.' formula
//             | or_expr
//   or_expr  := and_expr ('or' and_expr)*
//   and_expr := unary ('and' unary)*
//   unary    := 'not' unary | primary
//   primary  := 'true' | 'false' | '(' formula ')' | quantified
//             | Relation '(' term (',' term)* ')'
//             | term op term                       with op in = != < <= > >=
//   term     := identifier | integer | 'quoted name'
//
// Term identifiers starting with an upper-case letter are name constants
// (as in the paper: Mgr(Mary, x1, y1, z1)); identifiers starting with a
// lower-case letter or '_' are variables. Quoted strings are always name
// constants (use them for names that do not start with a capital).
//
// Example (the paper's query Q1):
//   exists x1,y1,z1,x2,y2,z2 . Mgr(Mary,x1,y1,z1) and Mgr(John,x2,y2,z2)
//                              and y1 < y2

#ifndef PREFREP_QUERY_PARSER_H_
#define PREFREP_QUERY_PARSER_H_

#include <memory>
#include <string_view>

#include "base/status.h"
#include "query/ast.h"

namespace prefrep {

// Parses `text` into a query AST. Errors carry the offending position.
Result<std::unique_ptr<Query>> ParseQuery(std::string_view text);

}  // namespace prefrep

#endif  // PREFREP_QUERY_PARSER_H_
