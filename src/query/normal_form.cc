#include "query/normal_form.h"

#include "base/logging.h"

namespace prefrep {

namespace {

std::unique_ptr<Query> NnfImpl(const Query& q, bool negated) {
  switch (q.kind) {
    case QueryKind::kTrue:
      return negated ? Query::False() : Query::True();
    case QueryKind::kFalse:
      return negated ? Query::True() : Query::False();
    case QueryKind::kAtom: {
      auto atom = Query::Atom(q.relation, q.terms);
      return negated ? Query::Not(std::move(atom)) : std::move(atom);
    }
    case QueryKind::kComparison:
      // Comparisons negate in place via the complement operator.
      return Query::Cmp(negated ? NegateComparison(q.op) : q.op, q.lhs,
                        q.rhs);
    case QueryKind::kNot:
      return NnfImpl(*q.children[0], !negated);
    case QueryKind::kAnd:
    case QueryKind::kOr: {
      bool and_like = (q.kind == QueryKind::kAnd) != negated;
      std::vector<std::unique_ptr<Query>> children;
      children.reserve(q.children.size());
      for (const auto& child : q.children) {
        children.push_back(NnfImpl(*child, negated));
      }
      return and_like ? Query::And(std::move(children))
                      : Query::Or(std::move(children));
    }
    case QueryKind::kExists:
    case QueryKind::kForAll: {
      bool exists_like = (q.kind == QueryKind::kExists) != negated;
      auto child = NnfImpl(*q.children[0], negated);
      return exists_like ? Query::Exists(q.bound_vars, std::move(child))
                         : Query::ForAll(q.bound_vars, std::move(child));
    }
  }
  return Query::True();
}

}  // namespace

std::unique_ptr<Query> ToNnf(const Query& query) {
  return NnfImpl(query, /*negated=*/false);
}

bool GroundLiteral::ComparisonHolds() const {
  CHECK(!is_atom);
  bool holds = EvalComparison(op, lhs, rhs);
  return positive ? holds : !holds;
}

namespace {

Result<GroundLiteral> MakeAtomLiteral(const Query& q, bool positive) {
  GroundLiteral lit;
  lit.positive = positive;
  lit.is_atom = true;
  lit.relation = q.relation;
  std::vector<Value> values;
  values.reserve(q.terms.size());
  for (const Term& t : q.terms) {
    if (!t.is_constant()) {
      return Status::InvalidArgument("non-ground atom in GroundDnf: " +
                                     q.ToString());
    }
    values.push_back(t.constant);
  }
  lit.tuple = Tuple(std::move(values));
  return lit;
}

Result<GroundLiteral> MakeComparisonLiteral(const Query& q) {
  if (!q.lhs.is_constant() || !q.rhs.is_constant()) {
    return Status::InvalidArgument("non-ground comparison in GroundDnf: " +
                                   q.ToString());
  }
  GroundLiteral lit;
  lit.positive = true;
  lit.is_atom = false;
  lit.op = q.op;
  lit.lhs = q.lhs.constant;
  lit.rhs = q.rhs.constant;
  return lit;
}

// DNF of an NNF node, as a list of disjuncts.
Result<std::vector<GroundDisjunct>> DnfOfNnf(const Query& q,
                                             size_t max_disjuncts) {
  switch (q.kind) {
    case QueryKind::kTrue:
      return std::vector<GroundDisjunct>{GroundDisjunct{}};
    case QueryKind::kFalse:
      return std::vector<GroundDisjunct>{};
    case QueryKind::kAtom: {
      PREFREP_ASSIGN_OR_RETURN(GroundLiteral lit, MakeAtomLiteral(q, true));
      return std::vector<GroundDisjunct>{GroundDisjunct{std::move(lit)}};
    }
    case QueryKind::kComparison: {
      PREFREP_ASSIGN_OR_RETURN(GroundLiteral lit, MakeComparisonLiteral(q));
      return std::vector<GroundDisjunct>{GroundDisjunct{std::move(lit)}};
    }
    case QueryKind::kNot: {
      const Query& child = *q.children[0];
      if (child.kind != QueryKind::kAtom) {
        return Status::Internal("NNF invariant violated: negation above " +
                                child.ToString());
      }
      PREFREP_ASSIGN_OR_RETURN(GroundLiteral lit,
                               MakeAtomLiteral(child, false));
      return std::vector<GroundDisjunct>{GroundDisjunct{std::move(lit)}};
    }
    case QueryKind::kOr: {
      std::vector<GroundDisjunct> out;
      for (const auto& child : q.children) {
        PREFREP_ASSIGN_OR_RETURN(std::vector<GroundDisjunct> part,
                                 DnfOfNnf(*child, max_disjuncts));
        for (auto& disjunct : part) out.push_back(std::move(disjunct));
        if (out.size() > max_disjuncts) {
          return Status::ResourceExhausted("DNF too large");
        }
      }
      return out;
    }
    case QueryKind::kAnd: {
      std::vector<GroundDisjunct> acc{GroundDisjunct{}};
      for (const auto& child : q.children) {
        PREFREP_ASSIGN_OR_RETURN(std::vector<GroundDisjunct> part,
                                 DnfOfNnf(*child, max_disjuncts));
        std::vector<GroundDisjunct> next;
        for (const GroundDisjunct& left : acc) {
          for (const GroundDisjunct& right : part) {
            GroundDisjunct merged = left;
            merged.insert(merged.end(), right.begin(), right.end());
            next.push_back(std::move(merged));
            if (next.size() > max_disjuncts) {
              return Status::ResourceExhausted("DNF too large");
            }
          }
        }
        acc = std::move(next);
      }
      return acc;
    }
    default:
      return Status::InvalidArgument(
          "GroundDnf requires a quantifier-free query");
  }
}

}  // namespace

Result<std::vector<GroundDisjunct>> GroundDnf(const Query& query,
                                              size_t max_disjuncts) {
  if (!query.IsQuantifierFree()) {
    return Status::InvalidArgument("query is not quantifier-free");
  }
  if (!query.IsGround()) {
    return Status::InvalidArgument("query is not ground");
  }
  std::unique_ptr<Query> nnf = ToNnf(query);
  return DnfOfNnf(*nnf, max_disjuncts);
}

}  // namespace prefrep
