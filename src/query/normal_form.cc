#include "query/normal_form.h"

#include "base/logging.h"

namespace prefrep {

namespace {

std::unique_ptr<Query> NnfImpl(const Query& q, bool negated) {
  switch (q.kind) {
    case QueryKind::kTrue:
      return negated ? Query::False() : Query::True();
    case QueryKind::kFalse:
      return negated ? Query::True() : Query::False();
    case QueryKind::kAtom: {
      auto atom = Query::Atom(q.relation, q.terms);
      return negated ? Query::Not(std::move(atom)) : std::move(atom);
    }
    case QueryKind::kComparison:
      // Comparisons negate in place via the complement operator.
      return Query::Cmp(negated ? NegateComparison(q.op) : q.op, q.lhs,
                        q.rhs);
    case QueryKind::kNot:
      return NnfImpl(*q.children[0], !negated);
    case QueryKind::kAnd:
    case QueryKind::kOr: {
      bool and_like = (q.kind == QueryKind::kAnd) != negated;
      std::vector<std::unique_ptr<Query>> children;
      children.reserve(q.children.size());
      for (const auto& child : q.children) {
        children.push_back(NnfImpl(*child, negated));
      }
      return and_like ? Query::And(std::move(children))
                      : Query::Or(std::move(children));
    }
    case QueryKind::kExists:
    case QueryKind::kForAll: {
      bool exists_like = (q.kind == QueryKind::kExists) != negated;
      auto child = NnfImpl(*q.children[0], negated);
      return exists_like ? Query::Exists(q.bound_vars, std::move(child))
                         : Query::ForAll(q.bound_vars, std::move(child));
    }
  }
  return Query::True();
}

}  // namespace

std::unique_ptr<Query> ToNnf(const Query& query) {
  return NnfImpl(query, /*negated=*/false);
}

bool GroundLiteral::ComparisonHolds() const {
  CHECK(!is_atom);
  bool holds = EvalComparison(op, lhs, rhs);
  return positive ? holds : !holds;
}

namespace {

LiteralTemplate MakeAtomTemplate(const Query& q, bool positive) {
  LiteralTemplate lit;
  lit.positive = positive;
  lit.is_atom = true;
  lit.relation = q.relation;
  lit.terms = q.terms;
  return lit;
}

LiteralTemplate MakeComparisonTemplate(const Query& q) {
  LiteralTemplate lit;
  lit.positive = true;
  lit.is_atom = false;
  lit.op = q.op;
  lit.lhs = q.lhs;
  lit.rhs = q.rhs;
  return lit;
}

// Both DNF budgets in one struct, plus the shared overflow checks. The
// literal budget is the real memory bound: max_disjuncts alone caps the
// row count, but And-of-Or nesting multiplies row *width* at the same
// time, so the product is what must stay bounded.
struct DnfBudget {
  size_t max_disjuncts;
  size_t max_literals;

  Status Check(const std::vector<DisjunctTemplate>& dnf,
               size_t literal_count) const {
    if (dnf.size() > max_disjuncts) {
      return Status::ResourceExhausted(
          "DNF too large: over " + std::to_string(max_disjuncts) +
          " disjuncts");
    }
    if (literal_count > max_literals) {
      return Status::ResourceExhausted(
          "DNF too large: over " + std::to_string(max_literals) +
          " literals");
    }
    return Status::Ok();
  }
};

// DNF of an NNF node, as a list of disjunct templates.
Result<std::vector<DisjunctTemplate>> DnfOfNnf(const Query& q,
                                               const DnfBudget& budget) {
  switch (q.kind) {
    case QueryKind::kTrue:
      return std::vector<DisjunctTemplate>{DisjunctTemplate{}};
    case QueryKind::kFalse:
      return std::vector<DisjunctTemplate>{};
    case QueryKind::kAtom:
      return std::vector<DisjunctTemplate>{
          DisjunctTemplate{MakeAtomTemplate(q, true)}};
    case QueryKind::kComparison:
      return std::vector<DisjunctTemplate>{
          DisjunctTemplate{MakeComparisonTemplate(q)}};
    case QueryKind::kNot: {
      const Query& child = *q.children[0];
      if (child.kind != QueryKind::kAtom) {
        return Status::Internal("NNF invariant violated: negation above " +
                                child.ToString());
      }
      return std::vector<DisjunctTemplate>{
          DisjunctTemplate{MakeAtomTemplate(child, false)}};
    }
    case QueryKind::kOr: {
      std::vector<DisjunctTemplate> out;
      size_t literals = 0;
      for (const auto& child : q.children) {
        PREFREP_ASSIGN_OR_RETURN(std::vector<DisjunctTemplate> part,
                                 DnfOfNnf(*child, budget));
        for (auto& disjunct : part) {
          literals += disjunct.size();
          out.push_back(std::move(disjunct));
        }
        PREFREP_RETURN_IF_ERROR(budget.Check(out, literals));
      }
      return out;
    }
    case QueryKind::kAnd: {
      std::vector<DisjunctTemplate> acc{DisjunctTemplate{}};
      for (const auto& child : q.children) {
        PREFREP_ASSIGN_OR_RETURN(std::vector<DisjunctTemplate> part,
                                 DnfOfNnf(*child, budget));
        std::vector<DisjunctTemplate> next;
        size_t literals = 0;
        for (const DisjunctTemplate& left : acc) {
          for (const DisjunctTemplate& right : part) {
            DisjunctTemplate merged = left;
            merged.insert(merged.end(), right.begin(), right.end());
            literals += merged.size();
            next.push_back(std::move(merged));
            PREFREP_RETURN_IF_ERROR(budget.Check(next, literals));
          }
        }
        acc = std::move(next);
      }
      return acc;
    }
    default:
      return Status::InvalidArgument(
          "GroundDnf requires a quantifier-free query");
  }
}

Result<Value> ResolveTemplateTerm(const Term& t,
                                  const std::map<std::string, Value>& bindings) {
  if (t.is_constant()) return t.constant;
  auto it = bindings.find(t.variable);
  if (it == bindings.end()) {
    return Status::InvalidArgument("unbound variable '" + t.variable +
                                   "' when instantiating a DNF disjunct");
  }
  return it->second;
}

}  // namespace

Result<std::vector<DisjunctTemplate>> QuantifierFreeDnf(
    const Query& query, size_t max_disjuncts, size_t max_literals) {
  if (!query.IsQuantifierFree()) {
    return Status::InvalidArgument("query is not quantifier-free");
  }
  std::unique_ptr<Query> nnf = ToNnf(query);
  return DnfOfNnf(*nnf, DnfBudget{max_disjuncts, max_literals});
}

Result<GroundDisjunct> InstantiateDisjunct(
    const DisjunctTemplate& disjunct,
    const std::map<std::string, Value>& bindings) {
  GroundDisjunct out;
  out.reserve(disjunct.size());
  for (const LiteralTemplate& lit : disjunct) {
    GroundLiteral ground;
    ground.positive = lit.positive;
    ground.is_atom = lit.is_atom;
    if (lit.is_atom) {
      ground.relation = lit.relation;
      std::vector<Value> values;
      values.reserve(lit.terms.size());
      for (const Term& t : lit.terms) {
        PREFREP_ASSIGN_OR_RETURN(Value v, ResolveTemplateTerm(t, bindings));
        values.push_back(v);
      }
      ground.tuple = Tuple(std::move(values));
    } else {
      ground.op = lit.op;
      PREFREP_ASSIGN_OR_RETURN(ground.lhs,
                               ResolveTemplateTerm(lit.lhs, bindings));
      PREFREP_ASSIGN_OR_RETURN(ground.rhs,
                               ResolveTemplateTerm(lit.rhs, bindings));
    }
    out.push_back(std::move(ground));
  }
  return out;
}

Result<std::vector<GroundDisjunct>> GroundDnf(const Query& query,
                                              size_t max_disjuncts,
                                              size_t max_literals) {
  if (!query.IsQuantifierFree()) {
    return Status::InvalidArgument("query is not quantifier-free");
  }
  if (!query.IsGround()) {
    return Status::InvalidArgument("query is not ground");
  }
  PREFREP_ASSIGN_OR_RETURN(
      std::vector<DisjunctTemplate> templates,
      QuantifierFreeDnf(query, max_disjuncts, max_literals));
  static const std::map<std::string, Value> kNoBindings;
  std::vector<GroundDisjunct> out;
  out.reserve(templates.size());
  for (const DisjunctTemplate& disjunct : templates) {
    PREFREP_ASSIGN_OR_RETURN(GroundDisjunct ground,
                             InstantiateDisjunct(disjunct, kNoBindings));
    out.push_back(std::move(ground));
  }
  return out;
}

}  // namespace prefrep
