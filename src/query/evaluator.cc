#include "query/evaluator.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

namespace prefrep {

namespace {

// Per-variable domain compatibility, narrowed by a static pass.
struct VarType {
  bool may_be_name = true;
  bool may_be_number = true;
};

// Walks the query narrowing variable types from atom positions and order
// comparisons. Conflicting uses simply narrow to nothing (the variable
// ranges over an empty domain), which is sound.
void InferTypes(const Database& db, const Query& q,
                std::map<std::string, VarType>& types) {
  switch (q.kind) {
    case QueryKind::kAtom: {
      auto rel = db.relation(q.relation);
      if (!rel.ok()) return;  // caught by validation
      const Schema& schema = (*rel)->schema();
      for (size_t i = 0; i < q.terms.size() &&
                         i < static_cast<size_t>(schema.arity());
           ++i) {
        if (!q.terms[i].is_variable()) continue;
        VarType& vt = types[q.terms[i].variable];
        if (schema.attribute(static_cast<int>(i)).type == ValueType::kName) {
          vt.may_be_number = false;
        } else {
          vt.may_be_name = false;
        }
      }
      return;
    }
    case QueryKind::kComparison: {
      bool is_order = q.op != ComparisonOp::kEq && q.op != ComparisonOp::kNe;
      for (const Term* t : {&q.lhs, &q.rhs}) {
        if (t->is_variable() && is_order) {
          types[t->variable].may_be_name = false;
        }
      }
      // Equality with a constant narrows to the constant's domain.
      if (!is_order) {
        const Term* terms[2] = {&q.lhs, &q.rhs};
        for (int i = 0; i < 2; ++i) {
          if (terms[i]->is_variable() && terms[1 - i]->is_constant() &&
              q.op == ComparisonOp::kEq) {
            VarType& vt = types[terms[i]->variable];
            if (terms[1 - i]->constant.is_name()) {
              vt.may_be_number = false;
            } else {
              vt.may_be_name = false;
            }
          }
        }
      }
      return;
    }
    default:
      for (const auto& child : q.children) InferTypes(db, *child, types);
      return;
  }
}

// The active domain of the database plus query constants, per value type.
struct ActiveDomain {
  std::vector<Value> names;
  std::vector<Value> numbers;
};

void CollectQueryConstants(const Query& q, std::set<Value>& values) {
  switch (q.kind) {
    case QueryKind::kAtom:
      for (const Term& t : q.terms) {
        if (t.is_constant()) values.insert(t.constant);
      }
      return;
    case QueryKind::kComparison:
      if (q.lhs.is_constant()) values.insert(q.lhs.constant);
      if (q.rhs.is_constant()) values.insert(q.rhs.constant);
      return;
    default:
      for (const auto& child : q.children) {
        CollectQueryConstants(*child, values);
      }
      return;
  }
}

ActiveDomain ComputeActiveDomain(const Database& db, const Query& q) {
  std::set<Value> values;
  for (const Relation& rel : db.relations()) {
    for (const Tuple& t : rel.tuples()) {
      for (const Value& v : t.values()) values.insert(v);
    }
  }
  CollectQueryConstants(q, values);
  ActiveDomain domain;
  for (const Value& v : values) {
    (v.is_name() ? domain.names : domain.numbers).push_back(v);
  }
  return domain;
}

class Evaluator {
 public:
  Evaluator(const Database& db, const DynamicBitset* mask, const Query& root)
      : db_(db), mask_(mask), domain_(ComputeActiveDomain(db, root)) {
    InferTypes(db, root, types_);
  }

  bool Eval(const Query& q) {
    switch (q.kind) {
      case QueryKind::kTrue:
        return true;
      case QueryKind::kFalse:
        return false;
      case QueryKind::kAtom:
        return EvalAtom(q);
      case QueryKind::kComparison:
        return EvalComparison(q.op, Resolve(q.lhs), Resolve(q.rhs));
      case QueryKind::kNot:
        return !Eval(*q.children[0]);
      case QueryKind::kAnd:
        for (const auto& child : q.children) {
          if (!Eval(*child)) return false;
        }
        return true;
      case QueryKind::kOr:
        for (const auto& child : q.children) {
          if (Eval(*child)) return true;
        }
        return false;
      case QueryKind::kExists:
        return EvalQuantifier(q, /*existential=*/true, 0);
      case QueryKind::kForAll:
        return EvalQuantifier(q, /*existential=*/false, 0);
    }
    return false;
  }

  // Candidate values a variable ranges over, given the inferred types.
  std::vector<Value> DomainOf(const std::string& var) const {
    std::vector<Value> out;
    auto it = types_.find(var);
    VarType vt = it == types_.end() ? VarType{} : it->second;
    if (vt.may_be_name) {
      out.insert(out.end(), domain_.names.begin(), domain_.names.end());
    }
    if (vt.may_be_number) {
      out.insert(out.end(), domain_.numbers.begin(), domain_.numbers.end());
    }
    return out;
  }

  void Bind(const std::string& var, const Value& value) {
    env_[var] = value;
  }
  void Unbind(const std::string& var) { env_.erase(var); }

 private:
  Value Resolve(const Term& t) const {
    if (t.is_constant()) return t.constant;
    auto it = env_.find(t.variable);
    CHECK(it != env_.end()) << "unbound variable '" << t.variable
                            << "' (query not closed?)";
    return it->second;
  }

  bool EvalAtom(const Query& q) {
    auto rel_idx_result = db_.RelationIndex(q.relation);
    CHECK(rel_idx_result.ok()) << rel_idx_result.status().ToString();
    int rel_idx = *rel_idx_result;
    const Relation& rel = db_.relations()[rel_idx];
    std::vector<Value> wanted(q.terms.size());
    for (size_t i = 0; i < q.terms.size(); ++i) wanted[i] = Resolve(q.terms[i]);
    for (int row = 0; row < rel.size(); ++row) {
      if (mask_ != nullptr && !mask_->Test(db_.GlobalId(rel_idx, row))) {
        continue;
      }
      const Tuple& t = rel.tuple(row);
      bool match = true;
      for (size_t i = 0; i < wanted.size() && match; ++i) {
        match = t.value(static_cast<int>(i)) == wanted[i];
      }
      if (match) return true;
    }
    return false;
  }

  bool EvalQuantifier(const Query& q, bool existential, size_t var_index) {
    if (var_index == q.bound_vars.size()) {
      return Eval(*q.children[0]);
    }
    const std::string& var = q.bound_vars[var_index];
    for (const Value& v : DomainOf(var)) {
      Bind(var, v);
      bool result = EvalQuantifier(q, existential, var_index + 1);
      Unbind(var);
      if (existential && result) return true;
      if (!existential && !result) return false;
    }
    return !existential;
  }

  const Database& db_;
  const DynamicBitset* mask_;
  ActiveDomain domain_;
  std::map<std::string, VarType> types_;
  std::map<std::string, Value> env_;
};

Status ValidateNode(const Database& db, const Query& q) {
  switch (q.kind) {
    case QueryKind::kAtom: {
      PREFREP_ASSIGN_OR_RETURN(const Relation* rel, db.relation(q.relation));
      const Schema& schema = rel->schema();
      if (static_cast<int>(q.terms.size()) != schema.arity()) {
        return Status::InvalidArgument(
            "atom " + q.ToString() + " has arity " +
            std::to_string(q.terms.size()) + ", expected " +
            std::to_string(schema.arity()));
      }
      for (int i = 0; i < schema.arity(); ++i) {
        const Term& t = q.terms[i];
        if (t.is_constant() &&
            t.constant.type() != schema.attribute(i).type) {
          return Status::InvalidArgument(
              "constant " + t.ToString() + " has wrong type for attribute " +
              schema.attribute(i).name + " of " + schema.relation_name());
        }
      }
      return Status::Ok();
    }
    case QueryKind::kComparison: {
      bool is_order = q.op != ComparisonOp::kEq && q.op != ComparisonOp::kNe;
      if (is_order) {
        for (const Term* t : {&q.lhs, &q.rhs}) {
          if (t->is_constant() && t->constant.is_name()) {
            return Status::InvalidArgument(
                "order comparison on name constant " + t->ToString() +
                " (order predicates are defined over numbers only)");
          }
        }
      }
      return Status::Ok();
    }
    default:
      for (const auto& child : q.children) {
        PREFREP_RETURN_IF_ERROR(ValidateNode(db, *child));
      }
      return Status::Ok();
  }
}

}  // namespace

Status ValidateQuery(const Database& db, const Query& query) {
  return ValidateNode(db, query);
}

Result<bool> EvalClosed(const Database& db, const DynamicBitset* mask,
                        const Query& query) {
  PREFREP_RETURN_IF_ERROR(ValidateQuery(db, query));
  if (!query.IsClosed()) {
    return Status::InvalidArgument("query has free variables: " +
                                   query.ToString());
  }
  if (mask != nullptr && mask->size() != db.tuple_count()) {
    return Status::InvalidArgument("mask size does not match database");
  }
  Evaluator evaluator(db, mask, query);
  return evaluator.Eval(query);
}

Result<OpenAnswer> EvalOpen(const Database& db, const DynamicBitset* mask,
                            const Query& query) {
  PREFREP_RETURN_IF_ERROR(ValidateQuery(db, query));
  if (mask != nullptr && mask->size() != db.tuple_count()) {
    return Status::InvalidArgument("mask size does not match database");
  }
  std::set<std::string> free = query.FreeVariables();
  OpenAnswer answer;
  answer.variables.assign(free.begin(), free.end());

  Evaluator evaluator(db, mask, query);
  std::set<Tuple> rows;
  // Enumerate assignments of the free variables over their domains.
  std::vector<Value> assignment(answer.variables.size());
  std::function<void(size_t)> recurse = [&](size_t idx) {
    if (idx == answer.variables.size()) {
      if (evaluator.Eval(query)) {
        rows.insert(Tuple(assignment));
      }
      return;
    }
    for (const Value& v : evaluator.DomainOf(answer.variables[idx])) {
      evaluator.Bind(answer.variables[idx], v);
      assignment[idx] = v;
      recurse(idx + 1);
      evaluator.Unbind(answer.variables[idx]);
    }
  };
  recurse(0);
  answer.rows.assign(rows.begin(), rows.end());
  return answer;
}

}  // namespace prefrep
