// First-order query evaluation over a database (or a masked subset such as
// a repair), with active-domain semantics.
//
// Quantified variables range over the *active domain*: every value
// appearing in the full database plus every constant in the query, split
// by domain (names vs numbers). Using the full database's domain for all
// repairs matches the paper's setup in which all instances share the
// domains D and N; for domain-independent queries the choice is
// irrelevant. A light type-inference pass restricts each variable to the
// domains compatible with its uses (attribute positions, order
// comparisons), which keeps evaluation sound and fast.

#ifndef PREFREP_QUERY_EVALUATOR_H_
#define PREFREP_QUERY_EVALUATOR_H_

#include <string>
#include <vector>

#include "base/bitset.h"
#include "base/status.h"
#include "query/ast.h"
#include "relational/database.h"

namespace prefrep {

// Static checks: referenced relations exist, atom arities match, constants
// match attribute types, order comparisons never involve name-typed terms.
Status ValidateQuery(const Database& db, const Query& query);

// Evaluates a closed query over the sub-database `mask` (pass nullptr for
// the full database). Fails on non-closed or invalid queries.
Result<bool> EvalClosed(const Database& db, const DynamicBitset* mask,
                        const Query& query);

// Answers to an open query: all assignments of the free variables (sorted
// by variable name) that satisfy the query.
struct OpenAnswer {
  std::vector<std::string> variables;  // sorted
  std::vector<Tuple> rows;             // sorted, distinct
};

Result<OpenAnswer> EvalOpen(const Database& db, const DynamicBitset* mask,
                            const Query& query);

}  // namespace prefrep

#endif  // PREFREP_QUERY_EVALUATOR_H_
