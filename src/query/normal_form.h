// Normal-form transformations used by the polynomial CQA engine:
// negation normal form for arbitrary queries, and ground DNF for
// quantifier-free ground queries (the {∀,∃}-free class of Figure 5).

#ifndef PREFREP_QUERY_NORMAL_FORM_H_
#define PREFREP_QUERY_NORMAL_FORM_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/status.h"
#include "query/ast.h"
#include "relational/tuple.h"

namespace prefrep {

// Pushes negations down to literals (using quantifier and De Morgan
// dualities); the result contains kNot only directly above atoms, and
// comparisons/constants are negated in place.
[[nodiscard]] std::unique_ptr<Query> ToNnf(const Query& query);

// A ground literal of a DNF disjunct: either a (possibly negated) fact
// R(c1...ck), or a comparison between constants (pre-evaluated).
struct GroundLiteral {
  bool positive = true;
  bool is_atom = true;
  // kAtom payload.
  std::string relation;
  Tuple tuple;
  // kComparison payload (op applied to constants).
  ComparisonOp op = ComparisonOp::kEq;
  Value lhs, rhs;

  // Evaluates a comparison literal (CHECK-fails on atoms).
  bool ComparisonHolds() const;
};

using GroundDisjunct = std::vector<GroundLiteral>;

// Default budgets for the DNF conversion: the blowup is exponential in
// the (fixed) query size, not in the data, but an adversarially nested
// query can still balloon — both the disjunct count and the total
// literal count (disjunct count x disjunct width) are capped so the
// conversion degrades to kResourceExhausted instead of OOM, mirroring
// the enumeration engine's materialization byte budget. The CQA planner
// reacts to kResourceExhausted by falling back to enumeration.
inline constexpr size_t kDefaultDnfDisjunctBudget = 65536;
inline constexpr size_t kDefaultDnfLiteralBudget = size_t{1} << 20;

// Converts a ground quantifier-free query to disjunctive normal form.
// Fails with kInvalidArgument on non-ground/quantified input and with
// kResourceExhausted if the DNF would exceed `max_disjuncts` disjuncts
// or `max_literals` literals in total.
Result<std::vector<GroundDisjunct>> GroundDnf(
    const Query& query, size_t max_disjuncts = kDefaultDnfDisjunctBudget,
    size_t max_literals = kDefaultDnfLiteralBudget);

// A DNF literal that may still contain variables: a (possibly negated)
// atom over terms, or a comparison over terms. The variable-free payload
// of GroundLiteral is produced from it by InstantiateDisjunct.
struct LiteralTemplate {
  bool positive = true;
  bool is_atom = true;
  // kAtom payload.
  std::string relation;
  std::vector<Term> terms;
  // kComparison payload.
  ComparisonOp op = ComparisonOp::kEq;
  Term lhs, rhs;
};

using DisjunctTemplate = std::vector<LiteralTemplate>;

// DNF of a quantifier-free (not necessarily ground) query. This is the
// loop-invariant skeleton of GroundConsistentOpenAnswers: it is computed
// once per query, and only InstantiateDisjunct runs per candidate answer.
Result<std::vector<DisjunctTemplate>> QuantifierFreeDnf(
    const Query& query, size_t max_disjuncts = kDefaultDnfDisjunctBudget,
    size_t max_literals = kDefaultDnfLiteralBudget);

// Grounds `disjunct` by substituting `bindings` for its variables; fails
// with kInvalidArgument if any variable is unbound.
Result<GroundDisjunct> InstantiateDisjunct(
    const DisjunctTemplate& disjunct,
    const std::map<std::string, Value>& bindings);

}  // namespace prefrep

#endif  // PREFREP_QUERY_NORMAL_FORM_H_
