#include "query/prepared.h"

#include <algorithm>
#include <functional>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace prefrep {

namespace {

// FNV-1a-style combination of O(1) value hashes; must hash a stored tuple
// and a resolved term buffer identically.
uint64_t HashValues(const Value* values, size_t count) {
  Value::Hash vh;
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < count; ++i) {
    h ^= vh(values[i]);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

// Walks the validated AST once, numbering variables into frame slots
// (lexically scoped: a quantifier shadowing an outer variable gets a fresh
// slot), then derives per-slot types and domains from the compiled nodes.
class PreparedQuery::Compiler {
 public:
  Compiler(const Database& db, const Query& root) : db_(db), root_(root) {}

  Status Run(PreparedQuery& out) {
    PREFREP_RETURN_IF_ERROR(ValidateQuery(db_, root_));
    PREFREP_ASSIGN_OR_RETURN(int root_index, CompileNode(root_));
    CHECK_EQ(root_index, 0);
    InferSlotTypes();
    BuildDomains();
    BuildTupleIndexes();

    out.db_ = &db_;
    out.nodes_ = std::move(nodes_);
    out.domains_ = std::move(domains_);
    out.indexes_ = std::move(indexes_);
    out.frame_.assign(slot_count(), Value());
    // Free variables sorted by name — the answer column order.
    std::vector<std::pair<std::string, int>> free_vars(
        free_slots_by_name_.begin(), free_slots_by_name_.end());
    std::sort(free_vars.begin(), free_vars.end());
    for (auto& [name, slot] : free_vars) {
      out.free_variables_.push_back(name);
      out.free_slots_.push_back(slot);
    }
    return Status::Ok();
  }

 private:
  // Per-slot domain compatibility, narrowed by a static pass (mirrors the
  // reference evaluator: conflicting uses narrow to the empty domain,
  // which is sound).
  struct SlotType {
    bool may_be_name = true;
    bool may_be_number = true;
  };

  int slot_count() const { return static_cast<int>(slot_types_.size()); }

  int NewSlot() {
    slot_types_.emplace_back();
    return slot_count() - 1;
  }

  // Slot of a variable occurrence: innermost binder, or a (shared) free
  // slot when no quantifier binds it.
  int SlotOf(const std::string& name) {
    auto it = scopes_.find(name);
    if (it != scopes_.end() && !it->second.empty()) return it->second.back();
    auto [free_it, inserted] = free_slots_by_name_.try_emplace(name, -1);
    if (inserted) free_it->second = NewSlot();
    return free_it->second;
  }

  CompiledTerm CompileTerm(const Term& t) {
    CompiledTerm ct;
    if (t.is_variable()) {
      ct.slot = SlotOf(t.variable);
    } else {
      ct.constant = t.constant;
    }
    return ct;
  }

  Result<int> CompileNode(const Query& q) {
    int index = static_cast<int>(nodes_.size());
    nodes_.emplace_back();
    Node node;
    node.kind = q.kind;
    switch (q.kind) {
      case QueryKind::kTrue:
      case QueryKind::kFalse:
        break;
      case QueryKind::kAtom: {
        PREFREP_ASSIGN_OR_RETURN(node.relation,
                                 db_.RelationIndex(q.relation));
        node.terms.reserve(q.terms.size());
        for (const Term& t : q.terms) node.terms.push_back(CompileTerm(t));
        break;
      }
      case QueryKind::kComparison:
        node.op = q.op;
        node.lhs = CompileTerm(q.lhs);
        node.rhs = CompileTerm(q.rhs);
        break;
      case QueryKind::kNot:
      case QueryKind::kAnd:
      case QueryKind::kOr:
        for (const auto& child : q.children) {
          PREFREP_ASSIGN_OR_RETURN(int child_index, CompileNode(*child));
          node.children.push_back(child_index);
        }
        break;
      case QueryKind::kExists:
      case QueryKind::kForAll: {
        node.slots.reserve(q.bound_vars.size());
        for (const std::string& var : q.bound_vars) {
          int slot = NewSlot();
          scopes_[var].push_back(slot);
          node.slots.push_back(slot);
        }
        PREFREP_ASSIGN_OR_RETURN(int child_index,
                                 CompileNode(*q.children[0]));
        node.children.push_back(child_index);
        for (const std::string& var : q.bound_vars) {
          scopes_[var].pop_back();
        }
        break;
      }
    }
    nodes_[index] = std::move(node);
    return index;
  }

  void NarrowToDomainOf(const Value& constant, int slot) {
    if (constant.is_name()) {
      slot_types_[slot].may_be_number = false;
    } else {
      slot_types_[slot].may_be_name = false;
    }
  }

  // Mirrors the reference evaluator's InferTypes, but over compiled slots
  // (so shadowed binders are typed independently).
  void InferSlotTypes() {
    for (const Node& n : nodes_) {
      switch (n.kind) {
        case QueryKind::kAtom: {
          const Schema& schema = db_.relations()[n.relation].schema();
          for (size_t i = 0; i < n.terms.size(); ++i) {
            if (n.terms[i].slot < 0) continue;
            if (schema.attribute(static_cast<int>(i)).type ==
                ValueType::kName) {
              slot_types_[n.terms[i].slot].may_be_number = false;
            } else {
              slot_types_[n.terms[i].slot].may_be_name = false;
            }
          }
          break;
        }
        case QueryKind::kComparison: {
          bool is_order =
              n.op != ComparisonOp::kEq && n.op != ComparisonOp::kNe;
          if (is_order) {
            for (const CompiledTerm* t : {&n.lhs, &n.rhs}) {
              if (t->slot >= 0) slot_types_[t->slot].may_be_name = false;
            }
          } else if (n.op == ComparisonOp::kEq) {
            // Equality with a constant narrows to the constant's domain.
            if (n.lhs.slot >= 0 && n.rhs.slot < 0) {
              NarrowToDomainOf(n.rhs.constant, n.lhs.slot);
            }
            if (n.rhs.slot >= 0 && n.lhs.slot < 0) {
              NarrowToDomainOf(n.lhs.constant, n.rhs.slot);
            }
          }
          break;
        }
        default:
          break;
      }
    }
  }

  // Active domain of the full database plus query constants, split by
  // type; each slot then gets the subset its inferred type allows (names
  // first, mirroring the reference evaluator's enumeration order).
  void BuildDomains() {
    std::unordered_set<Value, Value::Hash> seen;
    std::vector<Value> names;
    std::vector<Value> numbers;
    auto add = [&](const Value& v) {
      if (!seen.insert(v).second) return;
      (v.is_name() ? names : numbers).push_back(v);
    };
    for (const Relation& rel : db_.relations()) {
      for (const Tuple& t : rel.tuples()) {
        for (const Value& v : t.values()) add(v);
      }
    }
    for (const Node& n : nodes_) {
      if (n.kind == QueryKind::kAtom) {
        for (const CompiledTerm& t : n.terms) {
          if (t.slot < 0) add(t.constant);
        }
      } else if (n.kind == QueryKind::kComparison) {
        if (n.lhs.slot < 0) add(n.lhs.constant);
        if (n.rhs.slot < 0) add(n.rhs.constant);
      }
    }
    std::sort(names.begin(), names.end());
    std::sort(numbers.begin(), numbers.end());

    domains_.resize(slot_types_.size());
    for (int slot = 0; slot < slot_count(); ++slot) {
      std::vector<Value>& domain = domains_[slot];
      if (slot_types_[slot].may_be_name) {
        domain.insert(domain.end(), names.begin(), names.end());
      }
      if (slot_types_[slot].may_be_number) {
        domain.insert(domain.end(), numbers.begin(), numbers.end());
      }
    }
  }

  // Exact-tuple indexes for the relations the query actually touches.
  void BuildTupleIndexes() {
    indexes_.resize(db_.relation_count());
    for (const Node& n : nodes_) {
      if (n.kind != QueryKind::kAtom) continue;
      TupleIndex& index = indexes_[n.relation];
      if (index.built) continue;
      index.built = true;
      const Relation& rel = db_.relations()[n.relation];
      index.rows.reserve(static_cast<size_t>(rel.size()));
      for (int row = 0; row < rel.size(); ++row) {
        const std::vector<Value>& values = rel.tuple(row).values();
        index.rows[HashValues(values.data(), values.size())].push_back(row);
      }
    }
  }

  const Database& db_;
  const Query& root_;
  std::vector<Node> nodes_;
  std::vector<SlotType> slot_types_;
  std::vector<std::vector<Value>> domains_;
  std::vector<TupleIndex> indexes_;
  // Innermost-binder-first scope stack per variable name.
  std::unordered_map<std::string, std::vector<int>> scopes_;
  std::unordered_map<std::string, int> free_slots_by_name_;
};

Result<PreparedQuery> PreparedQuery::Compile(const Database& db,
                                             const Query& query) {
  PreparedQuery prepared;
  Compiler compiler(db, query);
  PREFREP_RETURN_IF_ERROR(compiler.Run(prepared));
  return prepared;
}

bool PreparedQuery::EvalNode(int node, const DynamicBitset* mask) const {
  const Node& n = nodes_[node];
  switch (n.kind) {
    case QueryKind::kTrue:
      return true;
    case QueryKind::kFalse:
      return false;
    case QueryKind::kAtom:
      return EvalAtom(n, mask);
    case QueryKind::kComparison:
      return EvalComparison(n.op, Resolve(n.lhs), Resolve(n.rhs));
    case QueryKind::kNot:
      return !EvalNode(n.children[0], mask);
    case QueryKind::kAnd:
      for (int child : n.children) {
        if (!EvalNode(child, mask)) return false;
      }
      return true;
    case QueryKind::kOr:
      for (int child : n.children) {
        if (EvalNode(child, mask)) return true;
      }
      return false;
    case QueryKind::kExists:
      return EvalQuantifier(n, /*existential=*/true, 0, mask);
    case QueryKind::kForAll:
      return EvalQuantifier(n, /*existential=*/false, 0, mask);
  }
  return false;
}

bool PreparedQuery::EvalAtom(const Node& n, const DynamicBitset* mask) const {
  // Every term is bound here, so the atom is an exact-tuple probe.
  Value wanted[16];
  std::vector<Value> wanted_heap;
  const Value* values;
  size_t count = n.terms.size();
  if (count <= 16) {
    for (size_t i = 0; i < count; ++i) wanted[i] = Resolve(n.terms[i]);
    values = wanted;
  } else {
    wanted_heap.reserve(count);
    for (const CompiledTerm& t : n.terms) wanted_heap.push_back(Resolve(t));
    values = wanted_heap.data();
  }
  const TupleIndex& index = indexes_[n.relation];
  auto it = index.rows.find(HashValues(values, count));
  if (it == index.rows.end()) return false;
  const Relation& rel = db_->relations()[n.relation];
  for (int32_t row : it->second) {
    if (mask != nullptr && !mask->Test(db_->GlobalId(n.relation, row))) {
      continue;
    }
    const Tuple& t = rel.tuple(row);
    bool match = true;
    for (size_t i = 0; i < count && match; ++i) {
      match = t.value(static_cast<int>(i)) == values[i];
    }
    if (match) return true;
  }
  return false;
}

bool PreparedQuery::EvalQuantifier(const Node& n, bool existential,
                                   size_t var_index,
                                   const DynamicBitset* mask) const {
  if (var_index == n.slots.size()) {
    return EvalNode(n.children[0], mask);
  }
  int slot = n.slots[var_index];
  for (const Value& v : domains_[slot]) {
    frame_[slot] = v;
    bool result = EvalQuantifier(n, existential, var_index + 1, mask);
    if (existential && result) return true;
    if (!existential && !result) return false;
  }
  return !existential;
}

Result<bool> PreparedQuery::EvalClosed(const DynamicBitset* mask) const {
  if (!is_closed()) {
    return Status::InvalidArgument("prepared query has free variables");
  }
  if (mask != nullptr && mask->size() != db_->tuple_count()) {
    return Status::InvalidArgument("mask size does not match database");
  }
  return EvalNode(0, mask);
}

Result<OpenAnswer> PreparedQuery::EvalOpen(const DynamicBitset* mask) const {
  if (mask != nullptr && mask->size() != db_->tuple_count()) {
    return Status::InvalidArgument("mask size does not match database");
  }
  OpenAnswer answer;
  answer.variables = free_variables_;
  std::set<Tuple> rows;
  const size_t vars = free_slots_.size();
  if (vars == 0) {
    if (EvalNode(0, mask)) rows.insert(Tuple(std::vector<Value>{}));
    answer.rows.assign(rows.begin(), rows.end());
    return answer;
  }
  // Odometer over the free variables' domains (no recursion closure;
  // this runs once per repair in PreferredConsistentAnswers).
  for (size_t i = 0; i < vars; ++i) {
    const std::vector<Value>& domain = domains_[free_slots_[i]];
    if (domain.empty()) return answer;  // no assignments at all
    frame_[free_slots_[i]] = domain[0];
  }
  std::vector<size_t> pos(vars, 0);
  std::vector<Value> assignment(vars);
  for (;;) {
    if (EvalNode(0, mask)) {
      for (size_t i = 0; i < vars; ++i) {
        assignment[i] = frame_[free_slots_[i]];
      }
      rows.insert(Tuple(assignment));
    }
    // Advance the last wheel, carrying leftwards.
    size_t i = vars;
    while (i > 0) {
      --i;
      const std::vector<Value>& domain = domains_[free_slots_[i]];
      if (++pos[i] < domain.size()) {
        frame_[free_slots_[i]] = domain[pos[i]];
        break;
      }
      pos[i] = 0;
      frame_[free_slots_[i]] = domain[0];
      if (i == 0) {
        answer.rows.assign(rows.begin(), rows.end());
        return answer;
      }
    }
  }
}

}  // namespace prefrep
