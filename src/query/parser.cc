#include "query/parser.h"

#include <cctype>

#include "base/strings.h"

namespace prefrep {

namespace {

enum class TokenKind {
  kIdent,
  kNumber,
  kQuotedName,
  kLParen,
  kRParen,
  kComma,
  kDot,
  kCompare,  // = != < <= > >=
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  ComparisonOp op = ComparisonOp::kEq;  // when kCompare
  size_t position = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    while (true) {
      SkipWhitespace();
      size_t start = pos_;
      if (pos_ >= text_.size()) {
        tokens.push_back({TokenKind::kEnd, "", ComparisonOp::kEq, start});
        return tokens;
      }
      char c = text_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t begin = pos_;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_')) {
          ++pos_;
        }
        tokens.push_back({TokenKind::kIdent,
                          std::string(text_.substr(begin, pos_ - begin)),
                          ComparisonOp::kEq, start});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '-' && pos_ + 1 < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
        size_t begin = pos_;
        ++pos_;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
          ++pos_;
        }
        tokens.push_back({TokenKind::kNumber,
                          std::string(text_.substr(begin, pos_ - begin)),
                          ComparisonOp::kEq, start});
        continue;
      }
      switch (c) {
        case '\'': {
          ++pos_;
          size_t begin = pos_;
          while (pos_ < text_.size() && text_[pos_] != '\'') ++pos_;
          if (pos_ >= text_.size()) {
            return Status::ParseError("unterminated quoted name at position " +
                                      std::to_string(start));
          }
          tokens.push_back({TokenKind::kQuotedName,
                            std::string(text_.substr(begin, pos_ - begin)),
                            ComparisonOp::kEq, start});
          ++pos_;  // closing quote
          continue;
        }
        case '(':
          tokens.push_back({TokenKind::kLParen, "(", ComparisonOp::kEq,
                            start});
          ++pos_;
          continue;
        case ')':
          tokens.push_back({TokenKind::kRParen, ")", ComparisonOp::kEq,
                            start});
          ++pos_;
          continue;
        case ',':
          tokens.push_back({TokenKind::kComma, ",", ComparisonOp::kEq,
                            start});
          ++pos_;
          continue;
        case '.':
          tokens.push_back({TokenKind::kDot, ".", ComparisonOp::kEq, start});
          ++pos_;
          continue;
        case '=':
          tokens.push_back({TokenKind::kCompare, "=", ComparisonOp::kEq,
                            start});
          ++pos_;
          continue;
        case '!':
          if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
            tokens.push_back({TokenKind::kCompare, "!=", ComparisonOp::kNe,
                              start});
            pos_ += 2;
            continue;
          }
          return Status::ParseError("unexpected '!' at position " +
                                    std::to_string(start));
        case '<':
          if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
            tokens.push_back({TokenKind::kCompare, "<=", ComparisonOp::kLe,
                              start});
            pos_ += 2;
          } else if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '>') {
            tokens.push_back({TokenKind::kCompare, "<>", ComparisonOp::kNe,
                              start});
            pos_ += 2;
          } else {
            tokens.push_back({TokenKind::kCompare, "<", ComparisonOp::kLt,
                              start});
            ++pos_;
          }
          continue;
        case '>':
          if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
            tokens.push_back({TokenKind::kCompare, ">=", ComparisonOp::kGe,
                              start});
            pos_ += 2;
          } else {
            tokens.push_back({TokenKind::kCompare, ">", ComparisonOp::kGt,
                              start});
            ++pos_;
          }
          continue;
        default:
          return Status::ParseError(std::string("unexpected character '") +
                                    c + "' at position " +
                                    std::to_string(start));
      }
    }
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

std::string Lowered(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(
                          static_cast<unsigned char>(c)));
  return out;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::unique_ptr<Query>> Parse() {
    PREFREP_ASSIGN_OR_RETURN(std::unique_ptr<Query> q, ParseFormula());
    if (Current().kind != TokenKind::kEnd) {
      return Error("trailing input");
    }
    return q;
  }

 private:
  const Token& Current() const { return tokens_[index_]; }
  const Token& Peek() const {
    return tokens_[std::min(index_ + 1, tokens_.size() - 1)];
  }
  void Advance() {
    if (index_ + 1 < tokens_.size()) ++index_;
  }
  bool IsKeyword(const char* kw) const {
    return Current().kind == TokenKind::kIdent &&
           Lowered(Current().text) == kw;
  }
  Status Error(const std::string& message) const {
    return Status::ParseError(message + " at position " +
                              std::to_string(Current().position));
  }

  Result<std::unique_ptr<Query>> ParseFormula() {
    if (IsKeyword("exists") || IsKeyword("forall")) {
      return ParseQuantified();
    }
    return ParseOr();
  }

  Result<std::unique_ptr<Query>> ParseQuantified() {
    bool is_exists = IsKeyword("exists");
    Advance();
    std::vector<std::string> vars;
    while (true) {
      if (Current().kind != TokenKind::kIdent) {
        return Error("expected variable name");
      }
      if (std::isupper(static_cast<unsigned char>(Current().text[0]))) {
        return Error("quantified variable '" + Current().text +
                     "' must start with a lower-case letter");
      }
      vars.push_back(Current().text);
      Advance();
      if (Current().kind == TokenKind::kComma) {
        Advance();
        continue;
      }
      break;
    }
    if (Current().kind != TokenKind::kDot) {
      return Error("expected '.' after quantified variables");
    }
    Advance();
    PREFREP_ASSIGN_OR_RETURN(std::unique_ptr<Query> body, ParseFormula());
    return is_exists ? Query::Exists(std::move(vars), std::move(body))
                     : Query::ForAll(std::move(vars), std::move(body));
  }

  Result<std::unique_ptr<Query>> ParseOr() {
    std::vector<std::unique_ptr<Query>> parts;
    PREFREP_ASSIGN_OR_RETURN(std::unique_ptr<Query> first, ParseAnd());
    parts.push_back(std::move(first));
    while (IsKeyword("or")) {
      Advance();
      PREFREP_ASSIGN_OR_RETURN(std::unique_ptr<Query> next, ParseAnd());
      parts.push_back(std::move(next));
    }
    return Query::Or(std::move(parts));
  }

  Result<std::unique_ptr<Query>> ParseAnd() {
    std::vector<std::unique_ptr<Query>> parts;
    PREFREP_ASSIGN_OR_RETURN(std::unique_ptr<Query> first, ParseUnary());
    parts.push_back(std::move(first));
    while (IsKeyword("and")) {
      Advance();
      PREFREP_ASSIGN_OR_RETURN(std::unique_ptr<Query> next, ParseUnary());
      parts.push_back(std::move(next));
    }
    return Query::And(std::move(parts));
  }

  Result<std::unique_ptr<Query>> ParseUnary() {
    if (IsKeyword("not")) {
      Advance();
      PREFREP_ASSIGN_OR_RETURN(std::unique_ptr<Query> child, ParseUnary());
      return Query::Not(std::move(child));
    }
    return ParsePrimary();
  }

  Result<std::unique_ptr<Query>> ParsePrimary() {
    if (IsKeyword("true")) {
      Advance();
      return Query::True();
    }
    if (IsKeyword("false")) {
      Advance();
      return Query::False();
    }
    if (IsKeyword("exists") || IsKeyword("forall")) {
      return ParseQuantified();
    }
    if (Current().kind == TokenKind::kLParen) {
      // Either a parenthesized formula or nothing else: terms never start
      // with '(' in this grammar.
      Advance();
      PREFREP_ASSIGN_OR_RETURN(std::unique_ptr<Query> inner, ParseFormula());
      if (Current().kind != TokenKind::kRParen) {
        return Error("expected ')'");
      }
      Advance();
      return inner;
    }
    // Relation atom: IDENT '(' ... ')'.
    if (Current().kind == TokenKind::kIdent &&
        Peek().kind == TokenKind::kLParen && !IsKeyword("not") &&
        !IsKeyword("and") && !IsKeyword("or")) {
      std::string relation = Current().text;
      Advance();  // relation name
      Advance();  // '('
      std::vector<Term> terms;
      while (true) {
        PREFREP_ASSIGN_OR_RETURN(Term t, ParseTerm());
        terms.push_back(std::move(t));
        if (Current().kind == TokenKind::kComma) {
          Advance();
          continue;
        }
        break;
      }
      if (Current().kind != TokenKind::kRParen) {
        return Error("expected ')' after atom arguments");
      }
      Advance();
      return Query::Atom(std::move(relation), std::move(terms));
    }
    // Comparison: term op term.
    PREFREP_ASSIGN_OR_RETURN(Term lhs, ParseTerm());
    if (Current().kind != TokenKind::kCompare) {
      return Error("expected comparison operator");
    }
    ComparisonOp op = Current().op;
    Advance();
    PREFREP_ASSIGN_OR_RETURN(Term rhs, ParseTerm());
    return Query::Cmp(op, std::move(lhs), std::move(rhs));
  }

  Result<Term> ParseTerm() {
    const Token& tok = Current();
    switch (tok.kind) {
      case TokenKind::kNumber: {
        PREFREP_ASSIGN_OR_RETURN(int64_t value, ParseInt64(tok.text));
        Advance();
        return Term::ConstNumber(value);
      }
      case TokenKind::kQuotedName: {
        Term t = Term::ConstName(tok.text);
        Advance();
        return t;
      }
      case TokenKind::kIdent: {
        // Capitalized identifier = name constant; otherwise variable.
        Term t = std::isupper(static_cast<unsigned char>(tok.text[0]))
                     ? Term::ConstName(tok.text)
                     : Term::Var(tok.text);
        Advance();
        return t;
      }
      default:
        return Error("expected a term (variable, number or name)");
    }
  }

  std::vector<Token> tokens_;
  size_t index_ = 0;
};

}  // namespace

Result<std::unique_ptr<Query>> ParseQuery(std::string_view text) {
  Lexer lexer(text);
  PREFREP_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace prefrep
