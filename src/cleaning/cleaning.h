// Data cleaning: the baseline the paper's introduction argues against.
//
// A cleaning pass resolves conflicts using provenance-derived priorities
// (source reliability or timestamps) and applies one of the standard
// actions to tuples in unresolved conflicts (§1: remove the tuple, leave
// the tuple, or report it to a contingency table). The report quantifies
// exactly the shortcomings the paper lists: with incomplete preference
// information the "cleaned" database may stay inconsistent (keep policy)
// or lose information (remove policy) — which is what preferred consistent
// query answers avoid.

#ifndef PREFREP_CLEANING_CLEANING_H_
#define PREFREP_CLEANING_CLEANING_H_

#include <string>
#include <vector>

#include "base/bitset.h"
#include "base/status.h"
#include "priority/priority.h"
#include "repair/repair.h"

namespace prefrep {

// What to do with tuples involved in conflicts the priority cannot resolve.
enum class UnresolvedConflictPolicy {
  kKeep,    // leave both tuples (result may remain inconsistent)
  kRemove,  // drop both tuples (loses information; result is consistent)
};

struct CleaningReport {
  // Tuples surviving the cleaning pass.
  DynamicBitset kept;
  // Tuples removed because a dominating tuple won their conflict.
  DynamicBitset removed_dominated;
  // Tuples removed (kRemove) or flagged (kKeep) due to unresolved
  // conflicts; this doubles as the contingency table (§1).
  DynamicBitset contingency;
  // Number of conflicts remaining among `kept` (0 under kRemove).
  int residual_conflicts = 0;

  std::string Summary(const Database& db) const;
};

// Derives a priority from per-source reliability ranks (Example 3): in a
// conflict, the tuple from the more reliable source dominates. Tuples with
// unknown sources never dominate nor get dominated.
Result<Priority> PriorityFromSourceReliability(
    const RepairProblem& problem, const std::vector<int64_t>& source_ranks);

// Derives a priority from tuple timestamps: the newer tuple dominates
// (set `newer_wins` false for "first write wins"). Tuples without
// timestamps participate in no domination.
[[nodiscard]] Priority PriorityFromTimestamps(const RepairProblem& problem,
                                              bool newer_wins = true);

// One-shot cleaning: eagerly removes every tuple dominated in some
// conflict, then applies `policy` to tuples left in unresolved conflicts.
// This is deliberately the eager industry-style pass (cf. Grosof-style
// prioritized conflict handling discussed in §5), *not* Algorithm 1: it
// reproduces Example 3's "cleaned" database r' = {Mary-R&D, John-R&D}
// under kKeep — still inconsistent — and under kRemove it may return a
// non-maximal set (information loss). Both shortcomings motivate the
// paper's preferred-repair semantics.
[[nodiscard]] CleaningReport CleanWithPolicy(const RepairProblem& problem,
                                             const Priority& priority,
                                             UnresolvedConflictPolicy policy);

}  // namespace prefrep

#endif  // PREFREP_CLEANING_CLEANING_H_
