#include "cleaning/cleaning.h"

namespace prefrep {

std::string CleaningReport::Summary(const Database& db) const {
  std::string out;
  out += "kept " + std::to_string(kept.Count()) + " tuple(s), removed " +
         std::to_string(removed_dominated.Count()) +
         " dominated tuple(s), " + std::to_string(contingency.Count()) +
         " in unresolved conflicts, " + std::to_string(residual_conflicts) +
         " residual conflict(s)\n";
  ForEachSetBit(kept, [&](int id) {
    out += "  kept       " + db.DescribeTuple(id) + "\n";
  });
  ForEachSetBit(removed_dominated, [&](int id) {
    out += "  dominated  " + db.DescribeTuple(id) + "\n";
  });
  ForEachSetBit(contingency, [&](int id) {
    out += "  unresolved " + db.DescribeTuple(id) + "\n";
  });
  return out;
}

Result<Priority> PriorityFromSourceReliability(
    const RepairProblem& problem, const std::vector<int64_t>& source_ranks) {
  int n = problem.tuple_count();
  std::vector<int64_t> tuple_ranks(n, 0);
  std::vector<bool> known(n, false);
  for (TupleId id = 0; id < n; ++id) {
    int source = problem.db().MetaOf(id).source_id;
    if (source == TupleMeta::kNoSource) continue;
    if (source < 0 || source >= static_cast<int>(source_ranks.size())) {
      return Status::OutOfRange("tuple " + std::to_string(id) +
                                " has source " + std::to_string(source) +
                                " outside the rank table");
    }
    tuple_ranks[id] = source_ranks[source];
    known[id] = true;
  }
  std::vector<std::pair<int, int>> arcs;
  for (auto [u, v] : problem.graph().edges()) {
    if (!known[u] || !known[v] || tuple_ranks[u] == tuple_ranks[v]) continue;
    if (tuple_ranks[u] > tuple_ranks[v]) {
      arcs.emplace_back(u, v);
    } else {
      arcs.emplace_back(v, u);
    }
  }
  return Priority::Create(problem.graph(), std::move(arcs));
}

Priority PriorityFromTimestamps(const RepairProblem& problem,
                                bool newer_wins) {
  std::vector<std::pair<int, int>> arcs;
  for (auto [u, v] : problem.graph().edges()) {
    int64_t tu = problem.db().MetaOf(u).timestamp;
    int64_t tv = problem.db().MetaOf(v).timestamp;
    if (tu == TupleMeta::kNoTimestamp || tv == TupleMeta::kNoTimestamp ||
        tu == tv) {
      continue;
    }
    bool u_wins = newer_wins ? tu > tv : tu < tv;
    if (u_wins) {
      arcs.emplace_back(u, v);
    } else {
      arcs.emplace_back(v, u);
    }
  }
  auto priority = Priority::Create(problem.graph(), std::move(arcs));
  CHECK(priority.ok()) << priority.status().ToString();
  return *std::move(priority);
}

CleaningReport CleanWithPolicy(const RepairProblem& problem,
                               const Priority& priority,
                               UnresolvedConflictPolicy policy) {
  const ConflictGraph& graph = problem.graph();
  int n = graph.vertex_count();
  CleaningReport report;
  report.kept = DynamicBitset::AllSet(n);
  report.removed_dominated = DynamicBitset(n);
  report.contingency = DynamicBitset(n);

  // Pass 1: every tuple that loses some oriented conflict is removed.
  for (auto [u, v] : graph.edges()) {
    if (priority.Dominates(u, v)) report.removed_dominated.Set(v);
    if (priority.Dominates(v, u)) report.removed_dominated.Set(u);
  }
  report.kept.Subtract(report.removed_dominated);

  // Pass 2: conflicts among survivors are unresolved by the priority.
  for (auto [u, v] : graph.edges()) {
    if (report.kept.Test(u) && report.kept.Test(v)) {
      report.contingency.Set(u);
      report.contingency.Set(v);
    }
  }
  if (policy == UnresolvedConflictPolicy::kRemove) {
    report.kept.Subtract(report.contingency);
    report.residual_conflicts = 0;
  } else {
    int residual = 0;
    for (auto [u, v] : graph.edges()) {
      if (report.kept.Test(u) && report.kept.Test(v)) ++residual;
    }
    report.residual_conflicts = residual;
  }
  return report;
}

}  // namespace prefrep
