// Repair-space sampling.
//
// Exact consistent answers range over *all* (preferred) repairs, which is
// intractable at scale (Fig. 5). A pragmatic downstream tool is sampling:
// estimate the probability that a query holds across repairs, spot-check
// family membership rates, or drive property tests. Because the repair
// space factorizes over connected components of the conflict graph,
// *exactly uniform* sampling is feasible whenever each component's
// maximal-independent-set list is enumerable: sample one MIS per
// component independently and take the union.
//
// GreedyRandomRepair is the cheap non-uniform alternative (random
// permutation, greedy maximal extension) usable on arbitrary instances.

#ifndef PREFREP_REPAIR_SAMPLING_H_
#define PREFREP_REPAIR_SAMPLING_H_

#include <vector>

#include "base/biguint.h"
#include "base/random.h"
#include "base/status.h"
#include "graph/conflict_graph.h"

namespace prefrep {

// Exactly uniform repair sampling via per-component MIS lists.
class RepairSampler {
 public:
  // Materializes each component's repair list; fails with
  // kResourceExhausted if some component has more than
  // `per_component_limit` maximal independent sets.
  static Result<RepairSampler> Create(const ConflictGraph* graph,
                                      size_t per_component_limit = 1u << 16);

  // A repair drawn uniformly from the full repair space.
  DynamicBitset Sample(Rng& rng) const;

  // Exact size of the sample space (product of per-component counts).
  BigUint RepairCount() const;

 private:
  const ConflictGraph* graph_ = nullptr;
  DynamicBitset isolated_;  // vertices present in every repair
  std::vector<std::vector<DynamicBitset>> component_choices_;
};

// A maximal independent set built by inserting vertices in uniformly
// random order (fast; NOT uniform over repairs in general).
[[nodiscard]] DynamicBitset GreedyRandomRepair(const ConflictGraph& graph,
                                               Rng& rng);

}  // namespace prefrep

#endif  // PREFREP_REPAIR_SAMPLING_H_
