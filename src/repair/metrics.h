// Repair-space metrics: a one-stop structural report for an inconsistent
// database — what a user inspects before choosing a repair family and
// before attempting exact preferred-CQA (whose cost is governed by these
// numbers).

#ifndef PREFREP_REPAIR_METRICS_H_
#define PREFREP_REPAIR_METRICS_H_

#include <string>

#include "base/biguint.h"
#include "priority/priority.h"
#include "repair/repair.h"

namespace prefrep {

struct RepairSpaceMetrics {
  int tuple_count = 0;
  int conflict_count = 0;
  // Tuples involved in at least one conflict.
  int conflicting_tuple_count = 0;
  int component_count = 0;        // of the conflict graph
  int largest_component = 0;      // vertex count
  int max_degree = 0;             // most-conflicted tuple
  BigUint repair_count;           // exact
  int min_repair_size = 0;        // via per-component decomposition
  int max_repair_size = 0;
  // Priority coverage: oriented conflicts / conflicts (0 when none).
  int oriented_conflicts = 0;

  std::string ToString() const;
};

// Computes all metrics; `priority` may be nullptr. Repair-size bounds use
// the per-component decomposition (exponential only within a component).
[[nodiscard]] RepairSpaceMetrics ComputeRepairSpaceMetrics(
    const RepairProblem& problem, const Priority* priority);

}  // namespace prefrep

#endif  // PREFREP_REPAIR_METRICS_H_
