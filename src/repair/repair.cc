#include "repair/repair.h"

namespace prefrep {

Result<RepairProblem> RepairProblem::Create(
    const Database* db, std::vector<FunctionalDependency> fds) {
  CHECK(db != nullptr);
  PREFREP_ASSIGN_OR_RETURN(std::vector<ConflictEdge> edges,
                           FindConflicts(*db, fds));
  RepairProblem problem;
  problem.db_ = db;
  problem.fds_ = std::move(fds);
  problem.graph_ = ConflictGraph(db->tuple_count(), edges);
  return problem;
}

}  // namespace prefrep
