#include "repair/repair.h"

namespace prefrep {

Result<RepairProblem> RepairProblem::Create(
    const Database* db, std::vector<FunctionalDependency> fds) {
  CHECK(db != nullptr);
  PREFREP_ASSIGN_OR_RETURN(std::vector<ConflictEdge> edges,
                           FindConflicts(*db, fds));
  RepairProblem problem;
  problem.db_ = db;
  problem.fds_ = std::move(fds);
  problem.graph_ = ConflictGraph(db->tuple_count(), edges);
  return problem;
}

RepairProblem RepairProblem::FromPrecomputedGraph(
    const Database* db, std::vector<FunctionalDependency> fds,
    ConflictGraph graph) {
  CHECK(db != nullptr);
  CHECK_EQ(graph.vertex_count(), db->tuple_count());
  RepairProblem problem;
  problem.db_ = db;
  problem.fds_ = std::move(fds);
  problem.graph_ = std::move(graph);
  return problem;
}

}  // namespace prefrep
