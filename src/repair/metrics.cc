#include "repair/metrics.h"

#include <algorithm>
#include <limits>

#include "graph/mis.h"

namespace prefrep {

std::string RepairSpaceMetrics::ToString() const {
  std::string out;
  out += "tuples:               " + std::to_string(tuple_count) + "\n";
  out += "conflicts:            " + std::to_string(conflict_count) + "\n";
  out += "conflicting tuples:   " + std::to_string(conflicting_tuple_count) +
         "\n";
  out += "components:           " + std::to_string(component_count) +
         " (largest " + std::to_string(largest_component) + ")\n";
  out += "max conflicts/tuple:  " + std::to_string(max_degree) + "\n";
  out += "repairs:              " + repair_count.ToString() + "\n";
  out += "repair sizes:         [" + std::to_string(min_repair_size) + ", " +
         std::to_string(max_repair_size) + "]\n";
  out += "oriented conflicts:   " + std::to_string(oriented_conflicts) +
         " / " + std::to_string(conflict_count) + "\n";
  return out;
}

RepairSpaceMetrics ComputeRepairSpaceMetrics(const RepairProblem& problem,
                                             const Priority* priority) {
  const ConflictGraph& graph = problem.graph();
  RepairSpaceMetrics metrics;
  metrics.tuple_count = graph.vertex_count();
  metrics.conflict_count = graph.edge_count();
  for (int v = 0; v < graph.vertex_count(); ++v) {
    int degree = graph.Degree(v);
    metrics.max_degree = std::max(metrics.max_degree, degree);
    if (degree > 0) ++metrics.conflicting_tuple_count;
  }
  metrics.repair_count = problem.CountRepairs();

  int min_size = 0;
  int max_size = 0;
  auto components = graph.ConnectedComponents();
  metrics.component_count = static_cast<int>(components.size());
  for (const std::vector<int>& component : components) {
    metrics.largest_component = std::max(
        metrics.largest_component, static_cast<int>(component.size()));
    if (component.size() == 1) {
      ++min_size;
      ++max_size;
      continue;
    }
    int comp_min = std::numeric_limits<int>::max();
    int comp_max = 0;
    for (const DynamicBitset& mis :
         ComponentMaximalIndependentSets(graph, component)) {
      int size = mis.Count();
      comp_min = std::min(comp_min, size);
      comp_max = std::max(comp_max, size);
    }
    min_size += comp_min;
    max_size += comp_max;
  }
  metrics.min_repair_size = min_size;
  metrics.max_repair_size = max_size;

  if (priority != nullptr) {
    for (auto [u, v] : graph.edges()) {
      if (priority->Dominates(u, v) || priority->Dominates(v, u)) {
        ++metrics.oriented_conflicts;
      }
    }
  }
  return metrics;
}

}  // namespace prefrep
