// Repairs (Definition 1): maximal subsets of the database consistent with
// the functional dependencies == maximal independent sets of the conflict
// graph. RepairProblem bundles a database, its FDs and the derived conflict
// graph — the common input of everything in src/core and src/cqa.

#ifndef PREFREP_REPAIR_REPAIR_H_
#define PREFREP_REPAIR_REPAIR_H_

#include <vector>

#include "base/biguint.h"
#include "base/bitset.h"
#include "base/status.h"
#include "constraints/conflicts.h"
#include "constraints/fd.h"
#include "graph/conflict_graph.h"
#include "graph/mis.h"
#include "relational/database.h"

namespace prefrep {

class RepairProblem {
 public:
  // Builds the conflict graph of `db` w.r.t. `fds`. The database must
  // outlive the problem.
  static Result<RepairProblem> Create(const Database* db,
                                      std::vector<FunctionalDependency> fds);

  // Adopts an already-computed conflict graph instead of re-running
  // detection — the incremental snapshot derivation (server/snapshot.h)
  // maintains the graph under deltas and hands it over here. The caller
  // guarantees `graph` IS the conflict graph of (db, fds); nothing is
  // re-verified.
  static RepairProblem FromPrecomputedGraph(const Database* db,
                                            std::vector<FunctionalDependency> fds,
                                            ConflictGraph graph);

  const Database& db() const { return *db_; }
  const std::vector<FunctionalDependency>& fds() const { return fds_; }
  const ConflictGraph& graph() const { return graph_; }
  int tuple_count() const { return graph_.vertex_count(); }

  // True iff the subset contains no conflicting pair (is consistent).
  bool IsConsistentSubset(const DynamicBitset& subset) const {
    return graph_.IsIndependent(subset);
  }
  // True iff `subset` is a repair: maximal consistent subset.
  bool IsRepair(const DynamicBitset& subset) const {
    return graph_.IsMaximalIndependent(subset);
  }

  // Visits every repair; callback returns false to stop. Returns true iff
  // enumeration completed.
  bool EnumerateRepairs(
      const std::function<bool(const DynamicBitset&)>& callback) const {
    return EnumerateMaximalIndependentSets(graph_, callback);
  }

  // All repairs, failing with kResourceExhausted beyond `limit`.
  Result<std::vector<DynamicBitset>> AllRepairs(size_t limit = kDefaultRepairListLimit) const {
    return AllMaximalIndependentSets(graph_, limit);
  }

  // Exact repair count (2^n for Example 4's r_n).
  BigUint CountRepairs() const { return CountMaximalIndependentSets(graph_); }

  // The repair as a materialized database.
  Database MaterializeRepair(const DynamicBitset& repair) const {
    return db_->Induce(repair);
  }

 private:
  const Database* db_ = nullptr;
  std::vector<FunctionalDependency> fds_;
  ConflictGraph graph_;
};

}  // namespace prefrep

#endif  // PREFREP_REPAIR_REPAIR_H_
