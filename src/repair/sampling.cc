#include "repair/sampling.h"

#include "graph/mis.h"

namespace prefrep {

Result<RepairSampler> RepairSampler::Create(const ConflictGraph* graph,
                                            size_t per_component_limit) {
  CHECK(graph != nullptr);
  RepairSampler sampler;
  sampler.graph_ = graph;
  sampler.isolated_ = DynamicBitset(graph->vertex_count());
  for (const std::vector<int>& component : graph->ConnectedComponents()) {
    if (component.size() == 1) {
      sampler.isolated_.Set(component[0]);
      continue;
    }
    std::vector<DynamicBitset> choices =
        ComponentMaximalIndependentSets(*graph, component);
    if (choices.size() > per_component_limit) {
      return Status::ResourceExhausted(
          "component with " + std::to_string(choices.size()) +
          " repairs exceeds the sampling limit");
    }
    sampler.component_choices_.push_back(std::move(choices));
  }
  return sampler;
}

DynamicBitset RepairSampler::Sample(Rng& rng) const {
  DynamicBitset repair = isolated_;
  for (const std::vector<DynamicBitset>& choices : component_choices_) {
    repair |= choices[rng.UniformInt(choices.size())];
  }
  DCHECK(graph_->IsMaximalIndependent(repair));
  return repair;
}

BigUint RepairSampler::RepairCount() const {
  BigUint count = BigUint::One();
  for (const std::vector<DynamicBitset>& choices : component_choices_) {
    count *= BigUint(choices.size());
  }
  return count;
}

DynamicBitset GreedyRandomRepair(const ConflictGraph& graph, Rng& rng) {
  int n = graph.vertex_count();
  DynamicBitset repair(n);
  DynamicBitset blocked(n);
  for (int v : rng.Permutation(n)) {
    if (blocked.Test(v)) continue;
    repair.Set(v);
    blocked.Set(v);
    blocked |= graph.Neighbors(v);
  }
  DCHECK(graph.IsMaximalIndependent(repair));
  return repair;
}

}  // namespace prefrep
