#include "sql/sql.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>

#include "base/strings.h"

namespace prefrep {

namespace {

enum class SqlTokenKind {
  kIdent,
  kNumber,
  kString,
  kStar,
  kComma,
  kDot,
  kLParen,
  kRParen,
  kCompare,
  kEnd,
};

struct SqlToken {
  SqlTokenKind kind;
  std::string text;
  ComparisonOp op = ComparisonOp::kEq;
  size_t position = 0;
};

Result<std::vector<SqlToken>> TokenizeSql(std::string_view text) {
  std::vector<SqlToken> tokens;
  size_t pos = 0;
  auto push = [&](SqlTokenKind kind, std::string t, ComparisonOp op,
                  size_t at) {
    tokens.push_back({kind, std::move(t), op, at});
  };
  while (pos < text.size()) {
    char c = text[pos];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos;
      continue;
    }
    size_t start = pos;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (pos < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[pos])) ||
              text[pos] == '_')) {
        ++pos;
      }
      push(SqlTokenKind::kIdent, std::string(text.substr(start, pos - start)),
           ComparisonOp::kEq, start);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && pos + 1 < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[pos + 1])))) {
      ++pos;
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos]))) {
        ++pos;
      }
      push(SqlTokenKind::kNumber,
           std::string(text.substr(start, pos - start)), ComparisonOp::kEq,
           start);
      continue;
    }
    switch (c) {
      case '\'': {
        ++pos;
        size_t begin = pos;
        while (pos < text.size() && text[pos] != '\'') ++pos;
        if (pos >= text.size()) {
          return Status::ParseError("unterminated string literal");
        }
        push(SqlTokenKind::kString,
             std::string(text.substr(begin, pos - begin)), ComparisonOp::kEq,
             start);
        ++pos;
        continue;
      }
      case '*':
        push(SqlTokenKind::kStar, "*", ComparisonOp::kEq, start);
        ++pos;
        continue;
      case ',':
        push(SqlTokenKind::kComma, ",", ComparisonOp::kEq, start);
        ++pos;
        continue;
      case '.':
        push(SqlTokenKind::kDot, ".", ComparisonOp::kEq, start);
        ++pos;
        continue;
      case '(':
        push(SqlTokenKind::kLParen, "(", ComparisonOp::kEq, start);
        ++pos;
        continue;
      case ')':
        push(SqlTokenKind::kRParen, ")", ComparisonOp::kEq, start);
        ++pos;
        continue;
      case '=':
        push(SqlTokenKind::kCompare, "=", ComparisonOp::kEq, start);
        ++pos;
        continue;
      case '!':
        if (pos + 1 < text.size() && text[pos + 1] == '=') {
          push(SqlTokenKind::kCompare, "!=", ComparisonOp::kNe, start);
          pos += 2;
          continue;
        }
        return Status::ParseError("unexpected '!' in SQL");
      case '<':
        if (pos + 1 < text.size() && text[pos + 1] == '=') {
          push(SqlTokenKind::kCompare, "<=", ComparisonOp::kLe, start);
          pos += 2;
        } else if (pos + 1 < text.size() && text[pos + 1] == '>') {
          push(SqlTokenKind::kCompare, "<>", ComparisonOp::kNe, start);
          pos += 2;
        } else {
          push(SqlTokenKind::kCompare, "<", ComparisonOp::kLt, start);
          ++pos;
        }
        continue;
      case '>':
        if (pos + 1 < text.size() && text[pos + 1] == '=') {
          push(SqlTokenKind::kCompare, ">=", ComparisonOp::kGe, start);
          pos += 2;
        } else {
          push(SqlTokenKind::kCompare, ">", ComparisonOp::kGt, start);
          ++pos;
        }
        continue;
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' in SQL at position " +
                                  std::to_string(start));
    }
  }
  tokens.push_back({SqlTokenKind::kEnd, "", ComparisonOp::kEq, text.size()});
  return tokens;
}

struct ColumnRef {
  std::string alias;
  std::string attribute;
  std::string VariableName() const { return alias + "." + attribute; }
};

class SqlParser {
 public:
  SqlParser(const Database& db, std::vector<SqlToken> tokens)
      : db_(db), tokens_(std::move(tokens)) {}

  // Parses the statement; returns the open query and fills
  // `selected_vars` with the free (selected) variable names.
  Result<std::unique_ptr<Query>> Parse(bool boolean_result) {
    if (!ConsumeKeyword("select")) return Error("expected SELECT");
    PREFREP_RETURN_IF_ERROR(ParseSelectList());
    if (!ConsumeKeyword("from")) return Error("expected FROM");
    PREFREP_RETURN_IF_ERROR(ParseFromList());
    std::unique_ptr<Query> where;
    if (ConsumeKeyword("where")) {
      PREFREP_ASSIGN_OR_RETURN(where, ParseCondition());
    }
    if (Current().kind != SqlTokenKind::kEnd) return Error("trailing input");
    return Assemble(std::move(where), boolean_result);
  }

 private:
  const SqlToken& Current() const { return tokens_[index_]; }
  const SqlToken& Peek() const {
    return tokens_[std::min(index_ + 1, tokens_.size() - 1)];
  }
  void Advance() {
    if (index_ + 1 < tokens_.size()) ++index_;
  }
  static std::string Lower(std::string_view s) {
    std::string out(s);
    for (char& c : out) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    return out;
  }
  bool IsKeyword(const char* kw) const {
    return Current().kind == SqlTokenKind::kIdent &&
           Lower(Current().text) == kw;
  }
  bool ConsumeKeyword(const char* kw) {
    if (!IsKeyword(kw)) return false;
    Advance();
    return true;
  }
  Status Error(const std::string& message) const {
    return Status::ParseError(message + " at position " +
                              std::to_string(Current().position));
  }

  Status ParseSelectList() {
    if (Current().kind == SqlTokenKind::kStar) {
      select_star_ = true;
      Advance();
      return Status::Ok();
    }
    while (true) {
      PREFREP_ASSIGN_OR_RETURN(ColumnRef column, ParseColumn());
      selected_.push_back(column);
      if (Current().kind == SqlTokenKind::kComma) {
        Advance();
        continue;
      }
      return Status::Ok();
    }
  }

  Result<ColumnRef> ParseColumn() {
    if (Current().kind != SqlTokenKind::kIdent) {
      return Error("expected column reference alias.Attribute");
    }
    ColumnRef column;
    column.alias = Current().text;
    Advance();
    if (Current().kind != SqlTokenKind::kDot) {
      return Error("expected '.' in column reference");
    }
    Advance();
    if (Current().kind != SqlTokenKind::kIdent) {
      return Error("expected attribute name after '.'");
    }
    column.attribute = Current().text;
    Advance();
    return column;
  }

  Status ParseFromList() {
    while (true) {
      if (Current().kind != SqlTokenKind::kIdent) {
        return Error("expected relation name in FROM");
      }
      std::string relation = Current().text;
      Advance();
      std::string alias = relation;
      if (Current().kind == SqlTokenKind::kIdent && !IsKeyword("where")) {
        alias = Current().text;
        Advance();
      }
      PREFREP_ASSIGN_OR_RETURN(const Relation* rel, db_.relation(relation));
      if (aliases_.contains(alias)) {
        return Error("duplicate alias '" + alias + "'");
      }
      aliases_.emplace(alias, rel);
      from_order_.push_back(alias);
      if (Current().kind == SqlTokenKind::kComma) {
        Advance();
        continue;
      }
      return Status::Ok();
    }
  }

  Result<std::unique_ptr<Query>> ParseCondition() { return ParseOr(); }

  Result<std::unique_ptr<Query>> ParseOr() {
    std::vector<std::unique_ptr<Query>> parts;
    PREFREP_ASSIGN_OR_RETURN(std::unique_ptr<Query> first, ParseAnd());
    parts.push_back(std::move(first));
    while (ConsumeKeyword("or")) {
      PREFREP_ASSIGN_OR_RETURN(std::unique_ptr<Query> next, ParseAnd());
      parts.push_back(std::move(next));
    }
    return Query::Or(std::move(parts));
  }

  Result<std::unique_ptr<Query>> ParseAnd() {
    std::vector<std::unique_ptr<Query>> parts;
    PREFREP_ASSIGN_OR_RETURN(std::unique_ptr<Query> first, ParseNot());
    parts.push_back(std::move(first));
    while (ConsumeKeyword("and")) {
      PREFREP_ASSIGN_OR_RETURN(std::unique_ptr<Query> next, ParseNot());
      parts.push_back(std::move(next));
    }
    return Query::And(std::move(parts));
  }

  Result<std::unique_ptr<Query>> ParseNot() {
    if (ConsumeKeyword("not")) {
      PREFREP_ASSIGN_OR_RETURN(std::unique_ptr<Query> child, ParseNot());
      return Query::Not(std::move(child));
    }
    if (Current().kind == SqlTokenKind::kLParen) {
      Advance();
      PREFREP_ASSIGN_OR_RETURN(std::unique_ptr<Query> inner, ParseOr());
      if (Current().kind != SqlTokenKind::kRParen) return Error("expected ')'");
      Advance();
      return inner;
    }
    return ParseComparison();
  }

  Result<std::unique_ptr<Query>> ParseComparison() {
    PREFREP_ASSIGN_OR_RETURN(Term lhs, ParseOperand());
    if (Current().kind != SqlTokenKind::kCompare) {
      return Error("expected comparison operator");
    }
    ComparisonOp op = Current().op;
    Advance();
    PREFREP_ASSIGN_OR_RETURN(Term rhs, ParseOperand());
    return Query::Cmp(op, std::move(lhs), std::move(rhs));
  }

  Result<Term> ParseOperand() {
    switch (Current().kind) {
      case SqlTokenKind::kNumber: {
        PREFREP_ASSIGN_OR_RETURN(int64_t v, ParseInt64(Current().text));
        Advance();
        return Term::ConstNumber(v);
      }
      case SqlTokenKind::kString: {
        Term t = Term::ConstName(Current().text);
        Advance();
        return t;
      }
      case SqlTokenKind::kIdent: {
        PREFREP_ASSIGN_OR_RETURN(ColumnRef column, ParseColumn());
        PREFREP_RETURN_IF_ERROR(ValidateColumn(column));
        return Term::Var(column.VariableName());
      }
      default:
        return Error("expected column, number or string literal");
    }
  }

  Status ValidateColumn(const ColumnRef& column) const {
    auto it = aliases_.find(column.alias);
    if (it == aliases_.end()) {
      return Status::ParseError("unknown alias '" + column.alias + "'");
    }
    if (!it->second->schema().HasAttribute(column.attribute)) {
      return Status::ParseError("relation of alias '" + column.alias +
                                "' has no attribute '" + column.attribute +
                                "'");
    }
    return Status::Ok();
  }

  Result<std::unique_ptr<Query>> Assemble(std::unique_ptr<Query> where,
                                          bool boolean_result) {
    // One atom per FROM entry, terms = per-column variables.
    std::vector<std::unique_ptr<Query>> conjuncts;
    std::vector<std::string> all_vars;
    for (const std::string& alias : from_order_) {
      const Relation* rel = aliases_.at(alias);
      std::vector<Term> terms;
      for (const Attribute& attr : rel->schema().attributes()) {
        std::string var = alias + "." + attr.name;
        terms.push_back(Term::Var(var));
        all_vars.push_back(var);
      }
      conjuncts.push_back(
          Query::Atom(rel->schema().relation_name(), std::move(terms)));
    }
    if (where != nullptr) conjuncts.push_back(std::move(where));
    std::unique_ptr<Query> body = Query::And(std::move(conjuncts));

    // Determine free (selected) variables.
    std::set<std::string> free;
    if (!boolean_result) {
      if (select_star_) {
        free.insert(all_vars.begin(), all_vars.end());
      } else {
        for (const ColumnRef& column : selected_) {
          PREFREP_RETURN_IF_ERROR(ValidateColumn(column));
          free.insert(column.VariableName());
        }
      }
    }
    std::vector<std::string> quantified;
    for (const std::string& var : all_vars) {
      if (!free.contains(var)) quantified.push_back(var);
    }
    if (quantified.empty()) return body;
    return Query::Exists(std::move(quantified), std::move(body));
  }

  const Database& db_;
  std::vector<SqlToken> tokens_;
  size_t index_ = 0;
  bool select_star_ = false;
  std::vector<ColumnRef> selected_;
  std::map<std::string, const Relation*> aliases_;
  std::vector<std::string> from_order_;
};

}  // namespace

Result<std::unique_ptr<Query>> ParseSql(const Database& db,
                                        std::string_view sql) {
  PREFREP_ASSIGN_OR_RETURN(std::vector<SqlToken> tokens, TokenizeSql(sql));
  SqlParser parser(db, std::move(tokens));
  return parser.Parse(/*boolean_result=*/false);
}

Result<std::unique_ptr<Query>> ParseSqlBoolean(const Database& db,
                                               std::string_view sql) {
  PREFREP_ASSIGN_OR_RETURN(std::vector<SqlToken> tokens, TokenizeSql(sql));
  SqlParser parser(db, std::move(tokens));
  return parser.Parse(/*boolean_result=*/true);
}

}  // namespace prefrep
