// A small SQL front end: single-block SELECT-FROM-WHERE queries are
// translated into the first-order queries of src/query, so SQL can drive
// every consistent-query-answering engine in the library.
//
// Supported grammar (keywords case-insensitive):
//
//   select   := SELECT select_list FROM from_list [WHERE condition]
//   select_list := '*' | column (',' column)*
//   column   := alias '.' attribute
//   from_list := relation [alias] (',' relation [alias])*
//   condition := disjunctions/conjunctions/NOT over comparisons:
//                operand op operand, op in = != <> < <= > >=
//   operand  := column | integer | 'name literal'
//
// Translation: each FROM entry contributes an atom whose terms are fresh
// variables "<alias>.<attr>"; the WHERE clause becomes a formula over
// those variables; selected columns stay free (the open-query answer),
// all other variables are existentially quantified. SELECT * keeps every
// column of every FROM entry free.
//
// Example (the paper's Q1 in SQL):
//   SELECT m.Salary, j.Salary FROM Mgr m, Mgr j
//   WHERE m.Name = 'Mary' AND j.Name = 'John' AND m.Salary < j.Salary
// A closed (boolean) query is obtained by selecting no columns via
// ParseSqlBoolean, which existentially quantifies everything.

#ifndef PREFREP_SQL_SQL_H_
#define PREFREP_SQL_SQL_H_

#include <memory>
#include <string_view>

#include "base/status.h"
#include "query/ast.h"
#include "relational/database.h"

namespace prefrep {

// Parses a SELECT statement into an open query whose free variables are
// the selected columns (named "alias.attribute").
Result<std::unique_ptr<Query>> ParseSql(const Database& db,
                                        std::string_view sql);

// Like ParseSql but closes the query: SELECT-list columns are ignored and
// every variable is existentially quantified ("does a row exist?").
Result<std::unique_ptr<Query>> ParseSqlBoolean(const Database& db,
                                               std::string_view sql);

}  // namespace prefrep

#endif  // PREFREP_SQL_SQL_H_
