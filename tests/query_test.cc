// Unit tests for src/query: AST classification, parser, evaluator and
// normal forms.

#include <gtest/gtest.h>

#include "query/ast.h"
#include "query/evaluator.h"
#include "query/normal_form.h"
#include "query/parser.h"
#include "workload/generators.h"

namespace prefrep {
namespace {

std::unique_ptr<Query> MustParse(std::string_view text) {
  auto q = ParseQuery(text);
  CHECK(q.ok()) << q.status().ToString();
  return *std::move(q);
}

// --------------------------------------------------------------------- AST --

TEST(AstTest, ComparisonSemantics) {
  EXPECT_TRUE(EvalComparison(ComparisonOp::kEq, Value::Number(3),
                             Value::Number(3)));
  EXPECT_TRUE(EvalComparison(ComparisonOp::kLt, Value::Number(2),
                             Value::Number(5)));
  EXPECT_TRUE(EvalComparison(ComparisonOp::kGe, Value::Number(5),
                             Value::Number(5)));
  // Order predicates are undefined (false) on names.
  EXPECT_FALSE(EvalComparison(ComparisonOp::kLt, Value::Name("a"),
                              Value::Name("b")));
  // Cross-domain equality is false; inequality true.
  EXPECT_FALSE(EvalComparison(ComparisonOp::kEq, Value::Name("1"),
                              Value::Number(1)));
  EXPECT_TRUE(EvalComparison(ComparisonOp::kNe, Value::Name("1"),
                             Value::Number(1)));
}

TEST(AstTest, NegateComparisonIsInvolution) {
  for (ComparisonOp op :
       {ComparisonOp::kEq, ComparisonOp::kNe, ComparisonOp::kLt,
        ComparisonOp::kLe, ComparisonOp::kGt, ComparisonOp::kGe}) {
    EXPECT_EQ(NegateComparison(NegateComparison(op)), op);
  }
}

TEST(AstTest, FreeVariables) {
  auto q = MustParse("exists x . R(x, y) and z < 3");
  EXPECT_EQ(q->FreeVariables(), (std::set<std::string>{"y", "z"}));
  EXPECT_FALSE(q->IsClosed());
  auto closed = MustParse("exists x, y . R(x, y)");
  EXPECT_TRUE(closed->IsClosed());
}

TEST(AstTest, ShadowingQuantifierKeepsOuterFree) {
  // x free in the left conjunct, bound in the right.
  auto q = MustParse("R(x, 1) and (exists x . R(x, 2))");
  EXPECT_EQ(q->FreeVariables(), (std::set<std::string>{"x"}));
}

TEST(AstTest, ClassifyQueryMatchesReferencePredicates) {
  // The planner's single-pass QueryShape must agree with the per-predicate
  // walks it replaces, across every shape class it distinguishes.
  const char* samples[] = {
      "true",
      "not false",
      "R(1, 2)",
      "not R(1, 2)",
      "R(1, 2) and not R(2, 2)",
      "R(x, 1)",
      "R(x, y) or R(y, x)",
      "R(x, 1) and x < 3",
      "exists x . R(x, 1)",
      "exists x, y . R(x, y) and x < y",
      "forall x . R(x, 1)",
      "exists x . not R(x, 1)",
      "R(x, 1) and (exists x . R(x, 2))",
  };
  for (const char* text : samples) {
    auto q = MustParse(text);
    QueryShape shape = ClassifyQuery(*q);
    EXPECT_EQ(shape.closed, q->IsClosed()) << text;
    EXPECT_EQ(shape.ground, q->IsGround()) << text;
    EXPECT_EQ(shape.quantifier_free, q->IsQuantifierFree()) << text;
    EXPECT_EQ(shape.conjunctive, q->IsConjunctive()) << text;
  }
  EXPECT_FALSE(ClassifyQuery(*MustParse("true")).has_atom);
  EXPECT_TRUE(ClassifyQuery(*MustParse("true")).negation_free);
  EXPECT_TRUE(ClassifyQuery(*MustParse("R(x, y)")).has_atom);
  EXPECT_FALSE(ClassifyQuery(*MustParse("not R(1, 1)")).negation_free);
  // Comparisons with variables break groundness but not atomlessness.
  QueryShape cmp = ClassifyQuery(*MustParse("x < 3"));
  EXPECT_FALSE(cmp.ground);
  EXPECT_FALSE(cmp.has_atom);
}

TEST(AstTest, Classification) {
  EXPECT_TRUE(MustParse("R(1, 2)")->IsGround());
  EXPECT_TRUE(MustParse("R(1, 2) and not R(2, 2)")->IsQuantifierFree());
  EXPECT_FALSE(MustParse("exists x . R(x, 1)")->IsQuantifierFree());
  EXPECT_FALSE(MustParse("R(x, 1)")->IsGround());
  EXPECT_TRUE(MustParse("exists x, y . R(x, y) and x < y")->IsConjunctive());
  EXPECT_FALSE(MustParse("exists x . not R(x, 1)")->IsConjunctive());
  EXPECT_FALSE(MustParse("R(1, 1) or R(2, 2)")->IsConjunctive());
  EXPECT_FALSE(MustParse("forall x . R(x, 1)")->IsConjunctive());
}

TEST(AstTest, CloneIsDeep) {
  auto q = MustParse("exists x . R(x, 1) and x < 2");
  auto copy = q->Clone();
  EXPECT_EQ(q->ToString(), copy->ToString());
  copy->bound_vars[0] = "zzz";
  EXPECT_NE(q->ToString(), copy->ToString());
}

// ------------------------------------------------------------------ parser --

TEST(ParserTest, PaperQueryQ1Parses) {
  auto q = MustParse(
      "exists x1,y1,z1,x2,y2,z2 . Mgr(Mary,x1,y1,z1) and "
      "Mgr(John,x2,y2,z2) and y1 < y2");
  EXPECT_TRUE(q->IsClosed());
  EXPECT_TRUE(q->IsConjunctive());
  EXPECT_EQ(q->kind, QueryKind::kExists);
}

TEST(ParserTest, CapitalizedTermsAreNameConstants) {
  auto q = MustParse("R(Mary, x)");
  ASSERT_EQ(q->kind, QueryKind::kAtom);
  EXPECT_TRUE(q->terms[0].is_constant());
  EXPECT_EQ(q->terms[0].constant.name(), "Mary");
  EXPECT_TRUE(q->terms[1].is_variable());
}

TEST(ParserTest, QuotedNamesAndNumbers) {
  auto q = MustParse("R('mary', -7)");
  EXPECT_EQ(q->terms[0].constant.name(), "mary");
  EXPECT_EQ(q->terms[1].constant.number(), -7);
}

TEST(ParserTest, PrecedenceAndBindsTighterThanOr) {
  auto q = MustParse("R(1) or R(2) and R(3)");
  ASSERT_EQ(q->kind, QueryKind::kOr);
  ASSERT_EQ(q->children.size(), 2u);
  EXPECT_EQ(q->children[1]->kind, QueryKind::kAnd);
}

TEST(ParserTest, QuantifierScopesToEndOfFormula) {
  auto q = MustParse("exists x . R(x) and R(2)");
  ASSERT_EQ(q->kind, QueryKind::kExists);
  EXPECT_EQ(q->children[0]->kind, QueryKind::kAnd);
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  auto q = MustParse("(R(1) or R(2)) and R(3)");
  ASSERT_EQ(q->kind, QueryKind::kAnd);
  EXPECT_EQ(q->children[0]->kind, QueryKind::kOr);
}

TEST(ParserTest, NotAndComparisons) {
  auto q = MustParse("not (x = 1) and x != 2 and x <= 3 and x <> 4");
  ASSERT_EQ(q->kind, QueryKind::kAnd);
  EXPECT_EQ(q->children[0]->kind, QueryKind::kNot);
  EXPECT_EQ(q->children[1]->op, ComparisonOp::kNe);
  EXPECT_EQ(q->children[2]->op, ComparisonOp::kLe);
  EXPECT_EQ(q->children[3]->op, ComparisonOp::kNe);  // SQL-style <>
}

TEST(ParserTest, KeywordsCaseInsensitive) {
  auto q = MustParse("EXISTS x . R(x) AND NOT FALSE");
  EXPECT_EQ(q->kind, QueryKind::kExists);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("R(1").ok());
  EXPECT_FALSE(ParseQuery("R(1) R(2)").ok());
  EXPECT_FALSE(ParseQuery("exists . R(1)").ok());
  EXPECT_FALSE(ParseQuery("exists X . R(X)").ok());  // capitalized variable
  EXPECT_FALSE(ParseQuery("x <").ok());
  EXPECT_FALSE(ParseQuery("R(1) and").ok());
  EXPECT_FALSE(ParseQuery("'unterminated").ok());
  EXPECT_FALSE(ParseQuery("x ! 1").ok());
  for (const char* bad : {"R(1))", "(R(1)", "R()"}) {
    EXPECT_FALSE(ParseQuery(bad).ok()) << bad;
  }
}

TEST(ParserTest, RoundTripThroughToString) {
  for (const char* text : {
           "exists x, y . (R(x, y) and x < y)",
           "(R(1, 2) or not (R(2, 1)))",
           "forall x . (R(x, 'a') or x = 3)",
       }) {
    auto q = MustParse(text);
    auto q2 = MustParse(q->ToString());
    EXPECT_EQ(q->ToString(), q2->ToString()) << text;
  }
}

// --------------------------------------------------------------- evaluator --

class EvaluatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.AddRelation(*Schema::Create(
                        "Emp", {Attribute{"Name", ValueType::kName},
                                Attribute{"Salary", ValueType::kNumber}}))
                    .ok());
    ASSERT_TRUE(
        db_.Insert("Emp", Tuple::Of(Value::Name("Mary"), Value::Number(40)))
            .ok());
    ASSERT_TRUE(
        db_.Insert("Emp", Tuple::Of(Value::Name("John"), Value::Number(10)))
            .ok());
    ASSERT_TRUE(
        db_.Insert("Emp", Tuple::Of(Value::Name("Ann"), Value::Number(40)))
            .ok());
  }

  bool Eval(std::string_view text, const DynamicBitset* mask = nullptr) {
    auto q = MustParse(text);
    auto result = EvalClosed(db_, mask, *q);
    CHECK(result.ok()) << result.status().ToString();
    return *result;
  }

  Database db_;
};

TEST_F(EvaluatorTest, GroundAtoms) {
  EXPECT_TRUE(Eval("Emp(Mary, 40)"));
  EXPECT_FALSE(Eval("Emp(Mary, 10)"));
  EXPECT_TRUE(Eval("not Emp(Mary, 10)"));
}

TEST_F(EvaluatorTest, Connectives) {
  EXPECT_TRUE(Eval("Emp(Mary, 40) and Emp(John, 10)"));
  EXPECT_FALSE(Eval("Emp(Mary, 40) and Emp(John, 99)"));
  EXPECT_TRUE(Eval("Emp(John, 99) or Emp(Ann, 40)"));
  EXPECT_TRUE(Eval("true"));
  EXPECT_FALSE(Eval("false"));
}

TEST_F(EvaluatorTest, ExistentialQuantification) {
  EXPECT_TRUE(Eval("exists x . Emp(x, 40)"));
  EXPECT_FALSE(Eval("exists x . Emp(x, 99)"));
  EXPECT_TRUE(Eval("exists s . Emp(Mary, s) and s > 20"));
  EXPECT_TRUE(Eval("exists x, y . Emp(x, y) and y < 20"));
}

TEST_F(EvaluatorTest, UniversalQuantification) {
  // Every salary in the database is >= 10.
  EXPECT_TRUE(Eval("forall x, s . (not Emp(x, s)) or s >= 10"));
  EXPECT_FALSE(Eval("forall x, s . (not Emp(x, s)) or s >= 20"));
}

TEST_F(EvaluatorTest, PaperStyleJoinQuery) {
  // "Mary earns more than John".
  EXPECT_TRUE(
      Eval("exists s1, s2 . Emp(Mary, s1) and Emp(John, s2) and s1 > s2"));
  EXPECT_FALSE(
      Eval("exists s1, s2 . Emp(Mary, s1) and Emp(John, s2) and s1 < s2"));
}

TEST_F(EvaluatorTest, MaskRestrictsVisibleTuples) {
  // Mask keeping only John's row (global id 1).
  DynamicBitset mask = DynamicBitset::FromIndices(3, {1});
  EXPECT_FALSE(Eval("Emp(Mary, 40)", &mask));
  EXPECT_TRUE(Eval("Emp(John, 10)", &mask));
  // The quantifier domain still includes masked-out values (shared domain),
  // but no atom can match them.
  EXPECT_FALSE(Eval("exists x . Emp(x, 40)", &mask));
}

TEST_F(EvaluatorTest, ValidationErrors) {
  // Unknown relation.
  EXPECT_FALSE(EvalClosed(db_, nullptr, *MustParse("Nope(1)")).ok());
  // Wrong arity.
  EXPECT_FALSE(EvalClosed(db_, nullptr, *MustParse("Emp(Mary)")).ok());
  // Type mismatch: Salary is numeric.
  EXPECT_FALSE(EvalClosed(db_, nullptr, *MustParse("Emp(Mary, Ann)")).ok());
  // Order comparison on a name constant.
  EXPECT_FALSE(
      EvalClosed(db_, nullptr, *MustParse("exists x . Emp(x, 40) and x < Ann"))
          .ok());
  // Free variables in a closed-query API.
  EXPECT_FALSE(EvalClosed(db_, nullptr, *MustParse("Emp(x, 40)")).ok());
}

TEST_F(EvaluatorTest, OpenQueryAnswers) {
  auto answer = EvalOpen(db_, nullptr, *MustParse("Emp(x, 40)"));
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->variables, (std::vector<std::string>{"x"}));
  ASSERT_EQ(answer->rows.size(), 2u);
  EXPECT_EQ(answer->rows[0], Tuple::Of(Value::Name("Ann")));
  EXPECT_EQ(answer->rows[1], Tuple::Of(Value::Name("Mary")));
}

TEST_F(EvaluatorTest, OpenQueryTwoVariables) {
  auto answer =
      EvalOpen(db_, nullptr, *MustParse("Emp(x, s) and s < 20"));
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->variables, (std::vector<std::string>{"s", "x"}));
  ASSERT_EQ(answer->rows.size(), 1u);
  // Variables are sorted: (s, x) = (10, John).
  EXPECT_EQ(answer->rows[0],
            Tuple::Of(Value::Number(10), Value::Name("John")));
}

TEST_F(EvaluatorTest, OpenQueryOnMask) {
  DynamicBitset mask = DynamicBitset::FromIndices(3, {0, 1});  // Mary, John
  auto answer = EvalOpen(db_, &mask, *MustParse("Emp(x, 40)"));
  ASSERT_TRUE(answer.ok());
  ASSERT_EQ(answer->rows.size(), 1u);
  EXPECT_EQ(answer->rows[0], Tuple::Of(Value::Name("Mary")));
}

// ------------------------------------------------------------ normal forms --

TEST(NormalFormTest, NnfPushesNegationThroughConnectives) {
  auto q = MustParse("not (R(1) and (R(2) or not R(3)))");
  auto nnf = ToNnf(*q);
  EXPECT_EQ(nnf->ToString(), "(not (R(1)) or (not (R(2)) and R(3)))");
}

TEST(NormalFormTest, NnfFlipsQuantifiers) {
  auto q = MustParse("not (exists x . R(x))");
  auto nnf = ToNnf(*q);
  EXPECT_EQ(nnf->kind, QueryKind::kForAll);
  EXPECT_EQ(nnf->children[0]->kind, QueryKind::kNot);
}

TEST(NormalFormTest, NnfNegatesComparisonsInPlace) {
  auto q = MustParse("not (x < 3)");
  auto nnf = ToNnf(*q);
  EXPECT_EQ(nnf->kind, QueryKind::kComparison);
  EXPECT_EQ(nnf->op, ComparisonOp::kGe);
}

TEST(NormalFormTest, GroundDnfBasic) {
  auto q = MustParse("R(1, 2) and (R(2, 1) or not R(3, 3))");
  auto dnf = GroundDnf(*q);
  ASSERT_TRUE(dnf.ok());
  ASSERT_EQ(dnf->size(), 2u);
  EXPECT_EQ((*dnf)[0].size(), 2u);
  EXPECT_TRUE((*dnf)[0][0].positive);
  EXPECT_FALSE((*dnf)[1][1].positive);
}

TEST(NormalFormTest, GroundDnfRejectsVariablesAndQuantifiers) {
  EXPECT_FALSE(GroundDnf(*MustParse("R(x, 2)")).ok());
  EXPECT_FALSE(GroundDnf(*MustParse("exists x . R(x, 2)")).ok());
}

TEST(NormalFormTest, GroundDnfComparisonLiteral) {
  auto dnf = GroundDnf(*MustParse("1 < 2 and not (3 < 1)"));
  ASSERT_TRUE(dnf.ok());
  ASSERT_EQ(dnf->size(), 1u);
  EXPECT_TRUE((*dnf)[0][0].ComparisonHolds());
  EXPECT_TRUE((*dnf)[0][1].ComparisonHolds());  // negation folded into op
}

TEST(NormalFormTest, TrueAndFalseDnf) {
  auto dnf_true = GroundDnf(*MustParse("true"));
  ASSERT_TRUE(dnf_true.ok());
  ASSERT_EQ(dnf_true->size(), 1u);
  EXPECT_TRUE((*dnf_true)[0].empty());
  auto dnf_false = GroundDnf(*MustParse("false"));
  ASSERT_TRUE(dnf_false.ok());
  EXPECT_TRUE(dnf_false->empty());
}

}  // namespace
}  // namespace prefrep
