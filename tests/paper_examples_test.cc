// End-to-end reproduction of the paper's running example (Examples 1-3):
// the Mgr data-integration scenario, the queries Q1 and Q2, the cleaning
// baseline, and preferred consistent query answers under the
// source-reliability priority of Example 3.

#include <gtest/gtest.h>

#include "base/random.h"
#include "cleaning/cleaning.h"
#include "core/algorithm1.h"
#include "cqa/cqa.h"
#include "query/parser.h"
#include "workload/generators.h"

namespace prefrep {
namespace {

constexpr char kQ1[] =
    "exists x1, y1, z1, x2, y2, z2 . "
    "Mgr(Mary, x1, y1, z1) and Mgr(John, x2, y2, z2) and y1 < y2";

constexpr char kQ2[] =
    "exists x1, y1, z1, x2, y2, z2 . "
    "Mgr(Mary, x1, y1, z1) and Mgr(John, x2, y2, z2) and y1 > y2 and "
    "z1 < z2";

class PaperExamples : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario_ = MakeMgrScenario();
    auto problem = RepairProblem::Create(scenario_.db.get(), scenario_.fds);
    ASSERT_TRUE(problem.ok());
    problem_ = std::make_unique<RepairProblem>(*std::move(problem));
    auto q1 = ParseQuery(kQ1);
    ASSERT_TRUE(q1.ok()) << q1.status().ToString();
    q1_ = *std::move(q1);
    auto q2 = ParseQuery(kQ2);
    ASSERT_TRUE(q2.ok());
    q2_ = *std::move(q2);
    // Example 3's preference: s3 less reliable than both s1 and s2.
    auto priority =
        PriorityFromSourceReliability(*problem_, {0, 1, 1, 0});
    ASSERT_TRUE(priority.ok()) << priority.status().ToString();
    priority_ = std::make_unique<Priority>(*std::move(priority));
  }

  MgrScenario scenario_;
  std::unique_ptr<RepairProblem> problem_;
  std::unique_ptr<Query> q1_, q2_;
  std::unique_ptr<Priority> priority_;
};

TEST_F(PaperExamples, Example1InstanceIsInconsistentWithThreeConflicts) {
  EXPECT_FALSE(*IsConsistent(*scenario_.db, scenario_.fds));
  EXPECT_EQ(problem_->graph().edge_count(), 3);
}

TEST_F(PaperExamples, Example1Q1IsTrueInTheInconsistentDatabase) {
  // "The answer to Q1 in r is true but this is misleading."
  auto holds = EvalClosed(*scenario_.db, nullptr, *q1_);
  ASSERT_TRUE(holds.ok()) << holds.status().ToString();
  EXPECT_TRUE(*holds);
}

TEST_F(PaperExamples, Example2TrueIsNotAConsistentAnswerToQ1) {
  // Q1 is false in r1 and r2, so true is not the consistent answer.
  Priority empty = Priority::Empty(problem_->graph());
  auto verdict = PreferredConsistentAnswer(*problem_, empty,
                                           RepairFamily::kAll, *q1_);
  ASSERT_TRUE(verdict.ok());
  EXPECT_EQ(*verdict, CqaVerdict::kUndetermined);
}

TEST_F(PaperExamples, Example3PriorityOrientsTwoOfThreeConflicts) {
  // s1 vs s2 reliability is unknown: the (Mary-R&D, John-R&D) conflict
  // stays unoriented; the two conflicts against s3 tuples are oriented.
  EXPECT_EQ(priority_->arc_count(), 2);
  EXPECT_TRUE(priority_->Dominates(scenario_.mary_rd, scenario_.mary_it));
  EXPECT_TRUE(priority_->Dominates(scenario_.john_rd, scenario_.john_pr));
  EXPECT_FALSE(priority_->Dominates(scenario_.mary_rd, scenario_.john_rd));
  EXPECT_FALSE(priority_->Dominates(scenario_.john_rd, scenario_.mary_rd));
}

TEST_F(PaperExamples, Example3CleaningLeavesAnInconsistentDatabase) {
  // "The cleaning of r with this information yields an inconsistent
  //  database r' = {(Mary,R&D,40k,3), (John,R&D,10k,2)}."
  CleaningReport report = CleanWithPolicy(*problem_, *priority_,
                                          UnresolvedConflictPolicy::kKeep);
  int n = scenario_.db->tuple_count();
  EXPECT_EQ(report.kept, DynamicBitset::FromIndices(
                             n, {scenario_.mary_rd, scenario_.john_rd}));
  EXPECT_EQ(report.residual_conflicts, 1);
  // The cleaned database is still inconsistent.
  Database cleaned = scenario_.db->Induce(report.kept);
  EXPECT_FALSE(*IsConsistent(cleaned, scenario_.fds));
}

TEST_F(PaperExamples, Example3Q2FalseInCleanedDatabase) {
  CleaningReport report = CleanWithPolicy(*problem_, *priority_,
                                          UnresolvedConflictPolicy::kKeep);
  auto holds = EvalClosed(*scenario_.db, &report.kept, *q2_);
  ASSERT_TRUE(holds.ok());
  EXPECT_FALSE(*holds);  // "The answer to this query ... is false."
}

TEST_F(PaperExamples, Example3FalseIsTheConsistentAnswerInCleanedDatabase) {
  // Treat the cleaned r' as a database of its own: its repairs are
  // {Mary-R&D} and {John-R&D}; Q2 is false in both.
  CleaningReport report = CleanWithPolicy(*problem_, *priority_,
                                          UnresolvedConflictPolicy::kKeep);
  Database cleaned = scenario_.db->Induce(report.kept);
  auto cleaned_problem = RepairProblem::Create(&cleaned, scenario_.fds);
  ASSERT_TRUE(cleaned_problem.ok());
  Priority empty = Priority::Empty(cleaned_problem->graph());
  auto verdict = PreferredConsistentAnswer(*cleaned_problem, empty,
                                           RepairFamily::kAll, *q2_);
  ASSERT_TRUE(verdict.ok());
  EXPECT_EQ(*verdict, CqaVerdict::kCertainlyFalse);
}

TEST_F(PaperExamples, Example3Q2UndeterminedUnderPlainRep) {
  // "neither false nor true is a consistent answer to Q2 in r".
  Priority empty = Priority::Empty(problem_->graph());
  auto verdict = PreferredConsistentAnswer(*problem_, empty,
                                           RepairFamily::kAll, *q2_);
  ASSERT_TRUE(verdict.ok());
  EXPECT_EQ(*verdict, CqaVerdict::kUndetermined);
}

TEST_F(PaperExamples, Example3PreferredRepairsAreR1AndR2) {
  // "Intuitively the repairs r1 and r2 incorporate more of reliable
  //  information than the repair r3."
  int n = scenario_.db->tuple_count();
  DynamicBitset r1 = DynamicBitset::FromIndices(
      n, {scenario_.mary_rd, scenario_.john_pr});
  DynamicBitset r2 = DynamicBitset::FromIndices(
      n, {scenario_.john_rd, scenario_.mary_it});
  DynamicBitset r3 = DynamicBitset::FromIndices(
      n, {scenario_.mary_it, scenario_.john_pr});
  for (RepairFamily family :
       {RepairFamily::kLocal, RepairFamily::kSemiGlobal, RepairFamily::kGlobal,
        RepairFamily::kCommon}) {
    EXPECT_TRUE(
        IsPreferredRepair(problem_->graph(), *priority_, family, r1))
        << RepairFamilyName(family);
    EXPECT_TRUE(
        IsPreferredRepair(problem_->graph(), *priority_, family, r2))
        << RepairFamilyName(family);
    EXPECT_FALSE(
        IsPreferredRepair(problem_->graph(), *priority_, family, r3))
        << RepairFamilyName(family);
  }
}

TEST_F(PaperExamples, Example3TrueIsThePreferredConsistentAnswerToQ2) {
  // The paper's punchline: with the source-reliability priority, true is
  // the preferred consistent answer to Q2 under every optimal family.
  for (RepairFamily family :
       {RepairFamily::kLocal, RepairFamily::kSemiGlobal, RepairFamily::kGlobal,
        RepairFamily::kCommon}) {
    auto verdict =
        PreferredConsistentAnswer(*problem_, *priority_, family, *q2_);
    ASSERT_TRUE(verdict.ok());
    EXPECT_EQ(*verdict, CqaVerdict::kCertainlyTrue)
        << RepairFamilyName(family);
  }
}

TEST_F(PaperExamples, Q1RemainsUndeterminedUnderThePreference) {
  // Q1 ("John earns more than Mary") is false in r1 (40k vs 30k) and
  // false in r2 (20k vs 10k): certainly false under the preference.
  auto verdict = PreferredConsistentAnswer(*problem_, *priority_,
                                           RepairFamily::kGlobal, *q1_);
  ASSERT_TRUE(verdict.ok());
  EXPECT_EQ(*verdict, CqaVerdict::kCertainlyFalse);
}

TEST_F(PaperExamples, RemovePolicyLosesInformation) {
  // The kRemove policy yields a consistent but *non-maximal* database:
  // both R&D tuples vanish, so it is not a repair (information loss).
  CleaningReport report = CleanWithPolicy(*problem_, *priority_,
                                          UnresolvedConflictPolicy::kRemove);
  EXPECT_EQ(report.kept.Count(), 0);
  EXPECT_FALSE(problem_->IsRepair(report.kept));
  Database cleaned = scenario_.db->Induce(report.kept);
  EXPECT_TRUE(*IsConsistent(cleaned, scenario_.fds));
}

TEST_F(PaperExamples, Prop1TotalPriorityMakesCleaningChoiceIndependent) {
  // Prop. 1: for a *total* priority Algorithm 1 computes the unique clean
  // database regardless of the choice sequence. Make Example 3's priority
  // total by ranking the sources s1 > s2 > s3: every conflict edge is now
  // oriented, and the clean database is {Mary-R&D, John-PR} (Mary-R&D
  // beats both John-R&D and Mary-IT; removing John-R&D frees John-PR).
  int n = scenario_.db->tuple_count();
  std::vector<int64_t> ranks(n);
  ranks[scenario_.mary_rd] = 3;
  ranks[scenario_.john_rd] = 2;
  ranks[scenario_.mary_it] = 1;
  ranks[scenario_.john_pr] = 0;
  Priority total = Priority::FromRanking(problem_->graph(), ranks);
  ASSERT_TRUE(total.IsTotalFor(problem_->graph()));

  DynamicBitset golden = DynamicBitset::FromIndices(
      n, {scenario_.mary_rd, scenario_.john_pr});
  EXPECT_EQ(CleanDatabase(problem_->graph(), total), golden);
  EXPECT_EQ(CleanDatabaseTotal(problem_->graph(), total), golden);

  // Choice-independence: 10 shuffled choice orders, identical repairs.
  Rng rng(20060329);  // EDBT 2006 vintage; any fixed seed works.
  std::vector<int> choice_order(n);
  for (int i = 0; i < n; ++i) choice_order[i] = i;
  for (int trial = 0; trial < 10; ++trial) {
    rng.Shuffle(choice_order);
    EXPECT_EQ(CleanDatabase(problem_->graph(), total, choice_order), golden)
        << "choice order trial " << trial;
  }
}

TEST_F(PaperExamples, Prop1ChoiceIndependenceOnRnUnderRandomTotalRanking) {
  // Prop. 1 on Example 4's r_6 (2^6 repairs): any ranking-derived total
  // priority must make Algorithm 1 choice-independent there too.
  GeneratedInstance rn = MakeRnInstance(6);
  auto problem = RepairProblem::Create(rn.db.get(), rn.fds);
  ASSERT_TRUE(problem.ok());
  Rng rng(4);
  Priority total = RandomRankingPriority(rng, problem->graph(), 1.0);
  ASSERT_TRUE(total.IsTotalFor(problem->graph()));

  DynamicBitset golden = CleanDatabase(problem->graph(), total);
  EXPECT_TRUE(problem->IsRepair(golden));
  EXPECT_EQ(CleanDatabaseTotal(problem->graph(), total), golden);
  std::vector<int> choice_order(problem->tuple_count());
  for (int i = 0; i < problem->tuple_count(); ++i) choice_order[i] = i;
  for (int trial = 0; trial < 10; ++trial) {
    rng.Shuffle(choice_order);
    EXPECT_EQ(CleanDatabase(problem->graph(), total, choice_order), golden)
        << "choice order trial " << trial;
  }
}

TEST_F(PaperExamples, OpenQueryWhoManagesWhat) {
  // Consistent answers to Mgr(x, y, s, r) under the preference: no tuple
  // is in all preferred repairs (r1 and r2 are disjoint), so the certain
  // answer set is empty; under a total priority it is the clean database.
  auto open = ParseQuery("Mgr(x, y, s, r)");
  ASSERT_TRUE(open.ok());
  auto answers = PreferredConsistentAnswers(*problem_, *priority_,
                                            RepairFamily::kGlobal, **open);
  ASSERT_TRUE(answers.ok());
  EXPECT_TRUE(answers->rows.empty());
}

}  // namespace
}  // namespace prefrep
