// Tests for src/core/extensions.h: total-extension enumeration and the
// empirical identity between the total-extension family and C-Rep.

#include <gtest/gtest.h>

#include <set>

#include "core/algorithm1.h"
#include "core/extensions.h"
#include "core/families.h"
#include "repair/repair.h"
#include "workload/generators.h"

namespace prefrep {
namespace {

RepairProblem MustProblem(const GeneratedInstance& inst) {
  auto problem = RepairProblem::Create(inst.db.get(), inst.fds);
  CHECK(problem.ok()) << problem.status().ToString();
  return *std::move(problem);
}

TEST(ExtensionsTest, CountsOrientationsOfAFreeEdge) {
  GeneratedInstance rn = MakeRnInstance(2);  // two disjoint conflict edges
  RepairProblem problem = MustProblem(rn);
  Priority empty = Priority::Empty(problem.graph());
  int count = 0;
  EnumerateTotalExtensions(problem.graph(), empty, [&](const Priority& p) {
    EXPECT_TRUE(p.IsTotalFor(problem.graph()));
    ++count;
    return true;
  });
  EXPECT_EQ(count, 4);  // 2 orientations per edge
}

TEST(ExtensionsTest, RespectsExistingArcs) {
  GeneratedInstance rn = MakeRnInstance(2);
  RepairProblem problem = MustProblem(rn);
  auto fixed = Priority::Create(problem.graph(), {{0, 1}});
  ASSERT_TRUE(fixed.ok());
  int count = 0;
  EnumerateTotalExtensions(problem.graph(), *fixed, [&](const Priority& p) {
    EXPECT_TRUE(p.Dominates(0, 1));  // the fixed arc survives
    ++count;
    return true;
  });
  EXPECT_EQ(count, 2);  // only the second edge is free
}

TEST(ExtensionsTest, PrunesCyclicOrientationsOnTriangles) {
  // Conflict triangle: 8 raw orientations, 2 of them cyclic -> 6 total
  // priorities.
  GeneratedInstance tri = MakeKeyGroupsInstance(1, 3);
  RepairProblem problem = MustProblem(tri);
  Priority empty = Priority::Empty(problem.graph());
  int count = 0;
  EnumerateTotalExtensions(problem.graph(), empty, [&](const Priority&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 6);
}

TEST(ExtensionsTest, EarlyStopWorks) {
  GeneratedInstance rn = MakeRnInstance(3);
  RepairProblem problem = MustProblem(rn);
  Priority empty = Priority::Empty(problem.graph());
  int count = 0;
  bool complete = EnumerateTotalExtensions(
      problem.graph(), empty, [&](const Priority&) { return ++count < 3; });
  EXPECT_FALSE(complete);
  EXPECT_EQ(count, 3);
}

// The headline property: the total-extension family equals C-Rep — the
// choices of Algorithm 1 correspond exactly to deferred orientation
// decisions. Checked across workload classes and random partial
// priorities.
TEST(ExtensionsTest, ExtensionFamilyEqualsCommonRepairs) {
  Rng rng(20260610);
  for (int trial = 0; trial < 12; ++trial) {
    GeneratedInstance inst;
    switch (trial % 4) {
      case 0:
        inst = MakeKeyGroupsInstance(2, 3);
        break;
      case 1:
        inst = MakeDuplicatesInstance(1, 2, 2);
        break;
      case 2:
        inst = MakeChainInstance(6);
        break;
      default:
        inst = MakeCycleInstance(3);
        break;
    }
    RepairProblem problem = MustProblem(inst);
    Priority priority =
        RandomDagPriority(rng, problem.graph(), rng.UniformDouble());

    auto extension_family =
        ExtensionFamilyRepairs(problem.graph(), priority);
    ASSERT_TRUE(extension_family.ok());
    auto common =
        PreferredRepairs(problem.graph(), priority, RepairFamily::kCommon);
    ASSERT_TRUE(common.ok());

    std::set<DynamicBitset> lhs(extension_family->begin(),
                                extension_family->end());
    std::set<DynamicBitset> rhs(common->begin(), common->end());
    EXPECT_EQ(lhs, rhs) << "trial " << trial;
  }
}

TEST(ExtensionsTest, TotalPriorityHasSingletonFamily) {
  GeneratedInstance chain = MakeChainInstance(5);
  RepairProblem problem = MustProblem(chain);
  Rng rng(4);
  Priority total = RandomRankingPriority(rng, problem.graph(), 1.0);
  auto family = ExtensionFamilyRepairs(problem.graph(), total);
  ASSERT_TRUE(family.ok());
  ASSERT_EQ(family->size(), 1u);
  EXPECT_EQ((*family)[0], CleanDatabaseTotal(problem.graph(), total));
}

}  // namespace
}  // namespace prefrep
