// Unit tests for src/priority: priority validation (Definition 2),
// extension/totality, ranking-derived priorities and the winnow operator.

#include <gtest/gtest.h>

#include "priority/priority.h"
#include "repair/repair.h"
#include "workload/generators.h"

namespace prefrep {
namespace {

ConflictGraph Path(int n) {
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return ConflictGraph(n, edges);
}

TEST(PriorityTest, EmptyPriority) {
  ConflictGraph g = Path(3);
  Priority p = Priority::Empty(g);
  EXPECT_EQ(p.arc_count(), 0);
  EXPECT_FALSE(p.Dominates(0, 1));
  EXPECT_FALSE(p.IsTotalFor(g));
}

TEST(PriorityTest, CreateValid) {
  ConflictGraph g = Path(3);
  auto p = Priority::Create(g, {{0, 1}, {2, 1}});
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->Dominates(0, 1));
  EXPECT_TRUE(p->Dominates(2, 1));
  EXPECT_FALSE(p->Dominates(1, 0));
  EXPECT_EQ(p->DominatorsOf(1).ToVector(), (std::vector<int>{0, 2}));
  EXPECT_EQ(p->DominatedBy(0).ToVector(), (std::vector<int>{1}));
}

TEST(PriorityTest, CreateDeduplicatesArcs) {
  ConflictGraph g = Path(3);
  auto p = Priority::Create(g, {{0, 1}, {0, 1}});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->arc_count(), 1);
}

TEST(PriorityTest, RejectsNonConflictingPair) {
  // Definition 2: the priority is defined only on conflicting tuples.
  ConflictGraph g = Path(3);
  auto p = Priority::Create(g, {{0, 2}});
  EXPECT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kInvalidArgument);
}

TEST(PriorityTest, RejectsBothDirections) {
  ConflictGraph g = Path(3);
  EXPECT_FALSE(Priority::Create(g, {{0, 1}, {1, 0}}).ok());
}

TEST(PriorityTest, RejectsCyclicRelation) {
  // Triangle oriented cyclically: 0>1, 1>2, 2>0.
  ConflictGraph g(3, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_FALSE(Priority::Create(g, {{0, 1}, {1, 2}, {2, 0}}).ok());
  // Acyclic orientation of the same triangle is fine.
  EXPECT_TRUE(Priority::Create(g, {{0, 1}, {1, 2}, {0, 2}}).ok());
}

TEST(PriorityTest, RejectsOutOfRange) {
  ConflictGraph g = Path(3);
  EXPECT_FALSE(Priority::Create(g, {{0, 7}}).ok());
}

TEST(PriorityTest, FromBinaryRelationFiltersNonConflicts) {
  // §2.2: an arbitrary acyclic relation is used only on conflicting pairs.
  ConflictGraph g = Path(3);
  auto p = Priority::FromBinaryRelation(g, {{0, 1}, {0, 2}, {2, 1}});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->arc_count(), 2);  // (0,2) dropped: not a conflict
  EXPECT_TRUE(p->Dominates(0, 1));
  EXPECT_TRUE(p->Dominates(2, 1));
}

TEST(PriorityTest, FromBinaryRelationStillRejectsCycles) {
  ConflictGraph g = Path(3);
  // Cycle through a non-conflicting pair is still a cyclic relation.
  EXPECT_FALSE(
      Priority::FromBinaryRelation(g, {{0, 1}, {1, 2}, {2, 0}}).ok());
}

TEST(PriorityTest, TotalityDetection) {
  ConflictGraph g = Path(3);
  auto partial = Priority::Create(g, {{0, 1}});
  EXPECT_FALSE(partial->IsTotalFor(g));
  auto total = Priority::Create(g, {{0, 1}, {1, 2}});
  EXPECT_TRUE(total->IsTotalFor(g));
}

TEST(PriorityTest, ExtensionRelation) {
  ConflictGraph g = Path(3);
  Priority base = *Priority::Create(g, {{0, 1}});
  auto extended = base.Extend(g, {{2, 1}});
  ASSERT_TRUE(extended.ok());
  EXPECT_TRUE(base.IsExtendedBy(*extended));
  EXPECT_FALSE(extended->IsExtendedBy(base));
  // Every priority extends itself and the empty priority.
  EXPECT_TRUE(base.IsExtendedBy(base));
  EXPECT_TRUE(Priority::Empty(g).IsExtendedBy(base));
}

TEST(PriorityTest, ExtendRejectsReversal) {
  ConflictGraph g = Path(3);
  Priority base = *Priority::Create(g, {{0, 1}});
  EXPECT_FALSE(base.Extend(g, {{1, 0}}).ok());
}

TEST(PriorityTest, FromRankingOrientsTowardLowerRank) {
  ConflictGraph g = Path(3);
  // ranks: t0=5, t1=1, t2=3; higher rank dominates.
  Priority p = Priority::FromRanking(g, {5, 1, 3});
  EXPECT_TRUE(p.Dominates(0, 1));
  EXPECT_TRUE(p.Dominates(2, 1));
  EXPECT_TRUE(p.IsTotalFor(g));
}

TEST(PriorityTest, FromRankingLeavesTiesUnoriented) {
  ConflictGraph g = Path(3);
  Priority p = Priority::FromRanking(g, {5, 5, 3});
  EXPECT_FALSE(p.Dominates(0, 1));
  EXPECT_FALSE(p.Dominates(1, 0));
  EXPECT_TRUE(p.Dominates(1, 2));
}

TEST(PriorityTest, FromRankingLowerWins) {
  ConflictGraph g = Path(3);
  // E.g. "older timestamp wins": lower rank dominates.
  Priority p = Priority::FromRanking(g, {5, 1, 3}, /*higher_wins=*/false);
  EXPECT_TRUE(p.Dominates(1, 0));
  EXPECT_TRUE(p.Dominates(1, 2));
}

TEST(PriorityTest, ToString) {
  ConflictGraph g = Path(3);
  Priority p = *Priority::Create(g, {{0, 1}, {2, 1}});
  EXPECT_EQ(p.ToString(), "{0≻1, 2≻1}");
}

// ------------------------------------------------------------------ winnow --

TEST(WinnowTest, UndominatedSurvive) {
  ConflictGraph g = Path(3);
  Priority p = *Priority::Create(g, {{0, 1}, {1, 2}});
  DynamicBitset all = DynamicBitset::AllSet(3);
  EXPECT_EQ(Winnow(p, all).ToVector(), (std::vector<int>{0}));
}

TEST(WinnowTest, DominationOnlyCountsInsideTheSet) {
  ConflictGraph g = Path(3);
  Priority p = *Priority::Create(g, {{0, 1}, {1, 2}});
  // Without tuple 0, tuple 1 is no longer dominated.
  DynamicBitset sub = DynamicBitset::FromIndices(3, {1, 2});
  EXPECT_EQ(Winnow(p, sub).ToVector(), (std::vector<int>{1}));
}

TEST(WinnowTest, EmptyPriorityKeepsEverything) {
  ConflictGraph g = Path(4);
  Priority p = Priority::Empty(g);
  DynamicBitset all = DynamicBitset::AllSet(4);
  EXPECT_EQ(Winnow(p, all), all);
}

TEST(WinnowTest, EmptySetYieldsEmptyWinnow) {
  ConflictGraph g = Path(3);
  Priority p = *Priority::Create(g, {{0, 1}});
  EXPECT_TRUE(Winnow(p, DynamicBitset(3)).None());
}

TEST(WinnowTest, NonEmptySetHasNonEmptyWinnow) {
  // Acyclicity of ≻ guarantees an undominated element in any nonempty set.
  GeneratedInstance inst = MakeCycleInstance(4);
  auto problem = RepairProblem::Create(inst.db.get(), inst.fds);
  ASSERT_TRUE(problem.ok());
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    Priority p = RandomDagPriority(rng, problem->graph(), 0.8);
    DynamicBitset set(problem->tuple_count());
    for (int i = 0; i < problem->tuple_count(); ++i) {
      if (rng.Bernoulli(0.5)) set.Set(i);
    }
    if (set.None()) continue;
    EXPECT_TRUE(Winnow(p, set).Any());
  }
}

}  // namespace
}  // namespace prefrep
