// Unit tests for src/base: Status/Result, DynamicBitset, BigUint, Rng,
// string helpers.

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>
#include <utility>

#include "base/biguint.h"
#include "base/bitset.h"
#include "base/random.h"
#include "base/status.h"
#include "base/strings.h"

namespace prefrep {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad input");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad input");
  EXPECT_EQ(st.ToString(), "invalid_argument: bad input");
}

TEST(StatusTest, FactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::Ok(), Status::Ok());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrPassesThroughValue) {
  Result<int> r = 7;
  EXPECT_EQ(r.value_or(-1), 7);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

Result<int> Doubled(Result<int> in) {
  PREFREP_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*Doubled(21), 42);
  EXPECT_EQ(Doubled(Status::Internal("x")).status().code(),
            StatusCode::kInternal);
}

// --------------------------------------------------------- DynamicBitset --

TEST(BitsetTest, EmptyAndSize) {
  DynamicBitset s(130);
  EXPECT_EQ(s.size(), 130);
  EXPECT_EQ(s.Count(), 0);
  EXPECT_TRUE(s.None());
  EXPECT_FALSE(s.Any());
}

TEST(BitsetTest, SetResetTest) {
  DynamicBitset s(100);
  s.Set(0);
  s.Set(63);
  s.Set(64);
  s.Set(99);
  EXPECT_TRUE(s.Test(0));
  EXPECT_TRUE(s.Test(63));
  EXPECT_TRUE(s.Test(64));
  EXPECT_TRUE(s.Test(99));
  EXPECT_FALSE(s.Test(1));
  EXPECT_EQ(s.Count(), 4);
  s.Reset(63);
  EXPECT_FALSE(s.Test(63));
  EXPECT_EQ(s.Count(), 3);
}

TEST(BitsetTest, AllSetRespectsPadding) {
  DynamicBitset s = DynamicBitset::AllSet(70);
  EXPECT_EQ(s.Count(), 70);
  DynamicBitset c = s.Complement();
  EXPECT_EQ(c.Count(), 0);
}

TEST(BitsetTest, FromIndices) {
  DynamicBitset s = DynamicBitset::FromIndices(10, {1, 3, 5});
  EXPECT_EQ(s.ToVector(), (std::vector<int>{1, 3, 5}));
}

TEST(BitsetTest, SetAlgebra) {
  DynamicBitset a = DynamicBitset::FromIndices(8, {0, 1, 2});
  DynamicBitset b = DynamicBitset::FromIndices(8, {2, 3});
  EXPECT_EQ((a | b).ToVector(), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ((a & b).ToVector(), (std::vector<int>{2}));
  EXPECT_EQ(Difference(a, b).ToVector(), (std::vector<int>{0, 1}));
}

TEST(BitsetTest, SubsetAndIntersects) {
  DynamicBitset a = DynamicBitset::FromIndices(8, {1, 2});
  DynamicBitset b = DynamicBitset::FromIndices(8, {0, 1, 2, 3});
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(a.IsSubsetOf(a));
  EXPECT_TRUE(a.Intersects(b));
  DynamicBitset c = DynamicBitset::FromIndices(8, {5});
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_EQ(a.IntersectionCount(b), 2);
}

TEST(BitsetTest, NextSetBitScansAcrossWords) {
  DynamicBitset s = DynamicBitset::FromIndices(200, {5, 64, 150, 199});
  EXPECT_EQ(s.FirstSetBit(), 5);
  EXPECT_EQ(s.NextSetBit(6), 64);
  EXPECT_EQ(s.NextSetBit(65), 150);
  EXPECT_EQ(s.NextSetBit(151), 199);
  EXPECT_EQ(s.NextSetBit(200 - 0), -1);
}

TEST(BitsetTest, NextSetBitOnEmpty) {
  DynamicBitset s(65);
  EXPECT_EQ(s.FirstSetBit(), -1);
}

TEST(BitsetTest, SoleElement) {
  DynamicBitset s = DynamicBitset::FromIndices(80, {77});
  EXPECT_EQ(s.SoleElement(), 77);
}

TEST(BitsetTest, ForEachSetBitVisitsAscending) {
  DynamicBitset s = DynamicBitset::FromIndices(130, {0, 64, 128});
  std::vector<int> seen;
  ForEachSetBit(s, [&](int i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<int>{0, 64, 128}));
}

TEST(BitsetTest, EqualityAndOrdering) {
  DynamicBitset a = DynamicBitset::FromIndices(10, {1});
  DynamicBitset b = DynamicBitset::FromIndices(10, {1});
  DynamicBitset c = DynamicBitset::FromIndices(10, {2});
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  std::set<DynamicBitset> sorted{c, a, b};
  EXPECT_EQ(sorted.size(), 2u);
}

TEST(BitsetTest, HashUsableInUnorderedSet) {
  std::unordered_set<DynamicBitset, DynamicBitset::Hash> seen;
  seen.insert(DynamicBitset::FromIndices(64, {0, 5}));
  seen.insert(DynamicBitset::FromIndices(64, {0, 5}));
  seen.insert(DynamicBitset::FromIndices(64, {1}));
  EXPECT_EQ(seen.size(), 2u);
}

TEST(BitsetTest, ToString) {
  EXPECT_EQ(DynamicBitset::FromIndices(8, {1, 4}).ToString(), "{1, 4}");
  EXPECT_EQ(DynamicBitset(4).ToString(), "{}");
}

TEST(BitsetTest, ComplementOfSubset) {
  DynamicBitset a = DynamicBitset::FromIndices(5, {0, 2, 4});
  EXPECT_EQ(a.Complement().ToVector(), (std::vector<int>{1, 3}));
}

TEST(BitsetTest, ThreeOperandAssignForms) {
  DynamicBitset a = DynamicBitset::FromIndices(130, {0, 64, 100, 129});
  DynamicBitset b = DynamicBitset::FromIndices(130, {64, 101, 129});
  DynamicBitset out(130);
  out.AssignOr(a, b);
  EXPECT_EQ(out.ToVector(), (std::vector<int>{0, 64, 100, 101, 129}));
  out.AssignAnd(a, b);
  EXPECT_EQ(out.ToVector(), (std::vector<int>{64, 129}));
  out.AssignDifference(a, b);
  EXPECT_EQ(out.ToVector(), (std::vector<int>{0, 100}));
  // Self-assignment of an operand is fine: plain word-parallel loops.
  out = a;
  out.AssignDifference(out, b);
  EXPECT_EQ(out.ToVector(), (std::vector<int>{0, 100}));
}

TEST(BitsetTest, CountInWordRange) {
  DynamicBitset s = DynamicBitset::FromIndices(200, {0, 63, 64, 127, 130});
  EXPECT_EQ(s.CountInWordRange(0, s.WordCount()), s.Count());
  EXPECT_EQ(s.CountInWordRange(0, 1), 2);  // bits 0, 63
  EXPECT_EQ(s.CountInWordRange(1, 2), 2);  // bits 64, 127
  EXPECT_EQ(s.CountInWordRange(2, 3), 1);  // bit 130
  EXPECT_EQ(s.CountInWordRange(3, 4), 0);
  EXPECT_EQ(s.CountInWordRange(1, 1), 0);  // empty range
}

TEST(BitsetTest, MemoryBytesTracksWordsInUseNotCapacity) {
  // Assigning a small bitset into a wide one keeps the vector's capacity;
  // the materialization budgets must be charged for the words in use.
  DynamicBitset wide(64 * 16);
  size_t small_bytes = DynamicBitset(10).MemoryBytes();
  wide = DynamicBitset(10);
  EXPECT_EQ(wide.MemoryBytes(), small_bytes);
  EXPECT_EQ(small_bytes, sizeof(DynamicBitset) + sizeof(uint64_t));
}

TEST(BitsetTest, WordHashValueMatchesIncrementalUpdates) {
  DynamicBitset s(300);
  uint64_t hash = s.WordHashValue();
  EXPECT_EQ(hash, 0u);  // all-zero words mix to zero
  for (int bit : {0, 63, 64, 200, 299, 64, 0}) {  // sets then clears some
    int word = bit / 64;
    uint64_t before = s.Word(word);
    s.Assign(bit, !s.Test(bit));
    hash ^= DynamicBitset::WordHashMix(word, before) ^
            DynamicBitset::WordHashMix(word, s.Word(word));
    EXPECT_EQ(hash, s.WordHashValue());
  }
  EXPECT_EQ(s.ToVector(), (std::vector<int>{63, 200, 299}));
}

TEST(BitsetTest, WordHashDistinguishesWordPositions) {
  // The same word value in different positions must mix differently.
  DynamicBitset a = DynamicBitset::FromIndices(128, {0});
  DynamicBitset b = DynamicBitset::FromIndices(128, {64});
  EXPECT_NE(a.WordHashValue(), b.WordHashValue());
}

TEST(BitsetPoolTest, ReusesReleasedBuffers) {
  BitsetPool pool(50);
  EXPECT_EQ(pool.idle_count(), 0u);
  {
    BitsetPool::Handle h1 = pool.Acquire();
    BitsetPool::Handle h2 = pool.Acquire();
    h1->Set(7);
    h2->Set(8);
    EXPECT_EQ(h1->size(), 50);
    EXPECT_EQ(pool.idle_count(), 0u);
  }
  EXPECT_EQ(pool.idle_count(), 2u);
  // Reacquired buffers come back cleared.
  BitsetPool::Handle h = pool.Acquire();
  EXPECT_EQ(pool.idle_count(), 1u);
  EXPECT_TRUE(h->None());
}

TEST(BitsetPoolTest, MoveTransfersOwnership) {
  BitsetPool pool(8);
  BitsetPool::Handle a = pool.Acquire();
  a->Set(3);
  BitsetPool::Handle b = std::move(a);
  EXPECT_TRUE(b->Test(3));
  {
    BitsetPool::Handle c = std::move(b);
    EXPECT_TRUE(c->Test(3));
  }
  EXPECT_EQ(pool.idle_count(), 1u);
}

// ----------------------------------------------------------------- BigUint --

TEST(BigUintTest, ZeroAndOne) {
  EXPECT_TRUE(BigUint::Zero().IsZero());
  EXPECT_EQ(BigUint::Zero().ToString(), "0");
  EXPECT_EQ(BigUint::One().ToString(), "1");
}

TEST(BigUintTest, FromUint64RoundTrips) {
  BigUint v(1234567890123456789ull);
  EXPECT_EQ(v.ToString(), "1234567890123456789");
  uint64_t back = 0;
  ASSERT_TRUE(v.ToUint64(&back));
  EXPECT_EQ(back, 1234567890123456789ull);
}

TEST(BigUintTest, Addition) {
  BigUint a(999999999);  // one limb, max
  BigUint b(1);
  EXPECT_EQ((a + b).ToString(), "1000000000");
}

TEST(BigUintTest, MultiplicationCarries) {
  BigUint a(123456789);
  BigUint b(987654321);
  EXPECT_EQ((a * b).ToString(), "121932631112635269");
}

TEST(BigUintTest, MultiplyByZero) {
  EXPECT_TRUE((BigUint(12345) * BigUint::Zero()).IsZero());
}

TEST(BigUintTest, PowerOfTwoSmall) {
  EXPECT_EQ(BigUint::PowerOfTwo(0).ToString(), "1");
  EXPECT_EQ(BigUint::PowerOfTwo(10).ToString(), "1024");
  EXPECT_EQ(BigUint::PowerOfTwo(63).ToString(), "9223372036854775808");
}

TEST(BigUintTest, PowerOfTwoBeyondUint64) {
  // 2^100 = 1267650600228229401496703205376.
  BigUint v = BigUint::PowerOfTwo(100);
  EXPECT_EQ(v.ToString(), "1267650600228229401496703205376");
  uint64_t out = 0;
  EXPECT_FALSE(v.ToUint64(&out));
}

TEST(BigUintTest, PowGeneral) {
  EXPECT_EQ(BigUint::Pow(BigUint(3), 5).ToString(), "243");
  EXPECT_EQ(BigUint::Pow(BigUint(10), 20).ToString(),
            "100000000000000000000");
  EXPECT_EQ(BigUint::Pow(BigUint(7), 0).ToString(), "1");
}

TEST(BigUintTest, Comparisons) {
  EXPECT_TRUE(BigUint(5) < BigUint(7));
  EXPECT_TRUE(BigUint(5) < BigUint::PowerOfTwo(80));
  EXPECT_TRUE(BigUint(5) == BigUint(5));
  EXPECT_TRUE(BigUint(5) <= BigUint(5));
}

TEST(BigUintTest, ToDoubleApproximation) {
  EXPECT_DOUBLE_EQ(BigUint(1000).ToDouble(), 1000.0);
  double big = BigUint::PowerOfTwo(64).ToDouble();
  EXPECT_NEAR(big, 1.8446744073709552e19, 1e5);
}

// --------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a.Next() != b.Next());
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformIntWithinBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.UniformInt(13), 13u);
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.UniformInt(4));
  EXPECT_EQ(seen.size(), 4u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(3);
  std::set<int64_t> seen;
  for (int i = 0; i < 200; ++i) {
    int64_t v = rng.UniformRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_GT(hits, 2500);
  EXPECT_LT(hits, 3500);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(13);
  std::vector<int> p = rng.Permutation(50);
  std::set<int> unique(p.begin(), p.end());
  EXPECT_EQ(unique.size(), 50u);
  EXPECT_EQ(*unique.begin(), 0);
  EXPECT_EQ(*unique.rbegin(), 49);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5};
  rng.Shuffle(v);
  std::multiset<int> contents(v.begin(), v.end());
  EXPECT_EQ(contents, (std::multiset<int>{1, 2, 3, 4, 5}));
}

// ----------------------------------------------------------------- strings --

TEST(StringsTest, StrSplitBasic) {
  EXPECT_EQ(StrSplit("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StringsTest, StrSplitKeepsEmptyFields) {
  EXPECT_EQ(StrSplit("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, StrJoin) {
  EXPECT_EQ(StrJoin({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(StrJoin({}, ","), "");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace("hi"), "hi");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(StringsTest, ParseInt64Valid) {
  EXPECT_EQ(*ParseInt64("0"), 0);
  EXPECT_EQ(*ParseInt64("42"), 42);
  EXPECT_EQ(*ParseInt64("-17"), -17);
  EXPECT_EQ(*ParseInt64("9223372036854775807"), 9223372036854775807ll);
  EXPECT_EQ(*ParseInt64("-9223372036854775808"),
            std::numeric_limits<int64_t>::min());
}

TEST(StringsTest, ParseInt64Invalid) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("-").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("9223372036854775808").ok());   // INT64_MAX + 1
  EXPECT_FALSE(ParseInt64("99999999999999999999").ok());  // way over
}

TEST(StringsTest, IsIdentifier) {
  EXPECT_TRUE(IsIdentifier("abc"));
  EXPECT_TRUE(IsIdentifier("A_1"));
  EXPECT_TRUE(IsIdentifier("_x"));
  EXPECT_FALSE(IsIdentifier(""));
  EXPECT_FALSE(IsIdentifier("1a"));
  EXPECT_FALSE(IsIdentifier("a-b"));
  EXPECT_FALSE(IsIdentifier("a b"));
}

}  // namespace
}  // namespace prefrep
