// Tests for src/cqa/planner: tier classification (pinned via
// ExplainPlan), the conflict-free and DNF-budget regressions, degenerate
// edge cases, and the randomized differential suite pinning every
// planner-chosen fast path against planner-forced enumeration.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "cqa/planner.h"
#include "query/normal_form.h"
#include "query/parser.h"
#include "workload/generators.h"

namespace prefrep {
namespace {

std::unique_ptr<Query> MustParse(std::string_view text) {
  auto q = ParseQuery(text);
  CHECK(q.ok()) << q.status().ToString();
  return *std::move(q);
}

RepairProblem MustProblem(const GeneratedInstance& inst) {
  auto problem = RepairProblem::Create(inst.db.get(), inst.fds);
  CHECK(problem.ok()) << problem.status().ToString();
  return *std::move(problem);
}

constexpr RepairFamily kAllFamilies[] = {
    RepairFamily::kAll, RepairFamily::kLocal, RepairFamily::kSemiGlobal,
    RepairFamily::kGlobal, RepairFamily::kCommon};

// ------------------------------------------------------- tier pinning --

TEST(PlannerTierTest, ConflictFreeInstancePlansSingleRepair) {
  GeneratedInstance inst = MakeKeyGroupsInstance(3, 1);  // consistent
  RepairProblem problem = MustProblem(inst);
  ASSERT_EQ(problem.graph().edge_count(), 0u);
  Priority empty = Priority::Empty(problem.graph());
  auto quantified = MustParse("exists x . R(x, 0)");
  for (RepairFamily family : kAllFamilies) {
    CqaPlan plan = ExplainPlan(problem, empty, family, *quantified,
                               CqaRequest::kVerdict);
    EXPECT_EQ(plan.tier, CqaTier::kSingleRepair) << RepairFamilyName(family);
    plan = ExplainPlan(problem, empty, family, *MustParse("R(x, y)"),
                       CqaRequest::kOpenAnswers);
    EXPECT_EQ(plan.tier, CqaTier::kSingleRepair) << RepairFamilyName(family);
  }
}

TEST(PlannerTierTest, GroundQueryUnderRepPlansFastPath) {
  GeneratedInstance rn = MakeRnInstance(2);
  RepairProblem problem = MustProblem(rn);
  Priority empty = Priority::Empty(problem.graph());
  auto query = MustParse("R(0, 0) or not R(1, 1)");
  CqaPlan plan =
      ExplainPlan(problem, empty, RepairFamily::kAll, *query,
                  CqaRequest::kVerdict);
  EXPECT_EQ(plan.tier, CqaTier::kGroundFastPath);
  EXPECT_FALSE(plan.family_collapsed);

  // Rep ignores the priority, so kAll stays on the fast path even under
  // a non-empty priority.
  auto ranked = Priority::Create(problem.graph(), {{0, 1}});
  ASSERT_TRUE(ranked.ok());
  plan = ExplainPlan(problem, *ranked, RepairFamily::kAll, *query,
                     CqaRequest::kVerdict);
  EXPECT_EQ(plan.tier, CqaTier::kGroundFastPath);
}

TEST(PlannerTierTest, EmptyPriorityCollapsesEveryFamilyToRep) {
  GeneratedInstance rn = MakeRnInstance(2);
  RepairProblem problem = MustProblem(rn);
  Priority empty = Priority::Empty(problem.graph());
  auto query = MustParse("R(0, 0)");
  for (RepairFamily family : kAllFamilies) {
    CqaPlan plan =
        ExplainPlan(problem, empty, family, *query, CqaRequest::kVerdict);
    EXPECT_EQ(plan.tier, CqaTier::kGroundFastPath) << RepairFamilyName(family);
    EXPECT_EQ(plan.effective_family, RepairFamily::kAll);
    EXPECT_EQ(plan.family_collapsed, family != RepairFamily::kAll);
  }
}

TEST(PlannerTierTest, PreferredFamilyUnderPriorityPlansEnumeration) {
  GeneratedInstance rn = MakeRnInstance(2);
  RepairProblem problem = MustProblem(rn);
  auto ranked = Priority::Create(problem.graph(), {{0, 1}});
  ASSERT_TRUE(ranked.ok());
  CqaPlan plan = ExplainPlan(problem, *ranked, RepairFamily::kGlobal,
                             *MustParse("R(0, 0)"), CqaRequest::kVerdict);
  EXPECT_EQ(plan.tier, CqaTier::kEnumeration);
  EXPECT_EQ(plan.effective_family, RepairFamily::kGlobal);
  EXPECT_FALSE(plan.family_collapsed);
}

TEST(PlannerTierTest, QueryShapeRouting) {
  GeneratedInstance rn = MakeRnInstance(2);
  RepairProblem problem = MustProblem(rn);
  Priority empty = Priority::Empty(problem.graph());
  // Quantified closed query: no polynomial verdict.
  CqaPlan plan = ExplainPlan(problem, empty, RepairFamily::kAll,
                             *MustParse("exists x . R(x, 0)"),
                             CqaRequest::kVerdict);
  EXPECT_EQ(plan.tier, CqaTier::kEnumeration);
  // Open quantifier-free negation-free query: monotone certification.
  plan = ExplainPlan(problem, empty, RepairFamily::kAll,
                     *MustParse("R(x, y)"), CqaRequest::kOpenAnswers);
  EXPECT_EQ(plan.tier, CqaTier::kGroundFastPath);
  // Negation disables the monotone candidate argument.
  plan = ExplainPlan(problem, empty, RepairFamily::kAll,
                     *MustParse("not R(x, 0)"), CqaRequest::kOpenAnswers);
  EXPECT_EQ(plan.tier, CqaTier::kEnumeration);
}

TEST(PlannerTierTest, PlanRendering) {
  GeneratedInstance rn = MakeRnInstance(1);
  RepairProblem problem = MustProblem(rn);
  Priority empty = Priority::Empty(problem.graph());
  CqaPlan plan = ExplainPlan(problem, empty, RepairFamily::kGlobal,
                             *MustParse("R(0, 0)"), CqaRequest::kVerdict);
  EXPECT_NE(plan.ToString().find("tier 1"), std::string::npos);
  EXPECT_NE(plan.ToString().find("ground-fast-path"), std::string::npos);
  EXPECT_NE(plan.reason.find("collapsed"), std::string::npos);
  EXPECT_EQ(CqaTierName(CqaTier::kSingleRepair), "single-repair");
  EXPECT_EQ(CqaTierName(CqaTier::kEnumeration), "enumeration");
}

// ------------------------------- satellite 1: conflict-free regression --

TEST(PlannerRegressionTest, ConflictFreeShortCircuitNeverEnumerates) {
  // 2000 key groups of size 1: conflict-free, so tier 2 would pay a
  // 2000-component decomposition per call. The planner must answer with
  // one evaluation and report tier 0 as the executed plan.
  GeneratedInstance inst = MakeKeyGroupsInstance(2000, 1);
  RepairProblem problem = MustProblem(inst);
  ASSERT_EQ(problem.graph().edge_count(), 0u);
  Priority empty = Priority::Empty(problem.graph());
  auto query = MustParse("forall x, y . (not R(x, y)) or R(x, y)");

  CqaPlan executed;
  auto verdict = PlannedConsistentAnswer(problem, empty, RepairFamily::kCommon,
                                         *query, CqaPlannerOptions(), &executed);
  ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
  EXPECT_EQ(*verdict, CqaVerdict::kCertainlyTrue);
  EXPECT_EQ(executed.tier, CqaTier::kSingleRepair);

  // Bit-for-bit against the enumeration engine.
  CqaPlannerOptions forced;
  forced.force_tier = CqaTier::kEnumeration;
  auto reference = PlannedConsistentAnswer(problem, empty,
                                           RepairFamily::kCommon, *query,
                                           forced, &executed);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(executed.tier, CqaTier::kEnumeration);
  EXPECT_EQ(*verdict, *reference);

  // Open answers short-circuit the same way.
  auto open = MustParse("R(x, y)");
  auto fast = PlannedConsistentAnswers(problem, empty, RepairFamily::kLocal,
                                       *open, CqaPlannerOptions(), &executed);
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(executed.tier, CqaTier::kSingleRepair);
  auto slow = PlannedConsistentAnswers(problem, empty, RepairFamily::kLocal,
                                       *open, forced);
  ASSERT_TRUE(slow.ok());
  EXPECT_EQ(fast->variables, slow->variables);
  EXPECT_EQ(fast->rows, slow->rows);
}

// ------------------------------------ satellite 2: DNF budget fallback --

TEST(PlannerBudgetTest, BlownDnfBudgetFallsBackToEnumeration) {
  GeneratedInstance rn = MakeRnInstance(2);
  RepairProblem problem = MustProblem(rn);
  Priority empty = Priority::Empty(problem.graph());
  // DNF of the negation has 2^3 = 8 disjuncts; cap at 4.
  auto query = MustParse(
      "(R(0, 0) and R(0, 1)) or (R(1, 0) and R(1, 1)) or "
      "(R(0, 0) and R(1, 1))");
  CqaPlannerOptions tiny;
  tiny.max_dnf_disjuncts = 4;

  CqaPlan plan = ExplainPlan(problem, empty, RepairFamily::kAll, *query,
                             CqaRequest::kVerdict, tiny);
  EXPECT_EQ(plan.tier, CqaTier::kEnumeration);
  EXPECT_NE(plan.reason.find("budget"), std::string::npos) << plan.reason;

  // Unforced: the planner answers anyway, via tier 2.
  CqaPlan executed;
  auto verdict = PlannedConsistentAnswer(problem, empty, RepairFamily::kAll,
                                         *query, tiny, &executed);
  ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
  EXPECT_EQ(executed.tier, CqaTier::kEnumeration);

  // The verdict matches both the default (fast-path) plan and forced
  // enumeration.
  auto roomy = PlannedConsistentAnswer(problem, empty, RepairFamily::kAll,
                                       *query, CqaPlannerOptions(), &executed);
  ASSERT_TRUE(roomy.ok());
  EXPECT_EQ(executed.tier, CqaTier::kGroundFastPath);
  EXPECT_EQ(*verdict, *roomy);

  // Forcing the fast path past the budget surfaces the exhaustion.
  CqaPlannerOptions forced_fast = tiny;
  forced_fast.force_tier = CqaTier::kGroundFastPath;
  auto exhausted = PlannedConsistentAnswer(problem, empty, RepairFamily::kAll,
                                           *query, forced_fast);
  ASSERT_FALSE(exhausted.ok());
  EXPECT_EQ(exhausted.status().code(), StatusCode::kResourceExhausted);
}

TEST(PlannerBudgetTest, LiteralBudgetCapsDnfConversion) {
  // 4 conjoined disjunctions of width 2: 16 disjuncts x 4 literals each
  // = 64 literals. A 32-literal budget must trip even though the
  // disjunct budget would admit the result.
  auto query = MustParse(
      "(R(0, 0) or R(0, 1)) and (R(1, 0) or R(1, 1)) and "
      "(R(2, 0) or R(2, 1)) and (R(3, 0) or R(3, 1))");
  auto full = QuantifierFreeDnf(*query, /*max_disjuncts=*/1024,
                                /*max_literals=*/1024);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->size(), 16u);
  auto capped = QuantifierFreeDnf(*query, /*max_disjuncts=*/1024,
                                  /*max_literals=*/32);
  ASSERT_FALSE(capped.ok());
  EXPECT_EQ(capped.status().code(), StatusCode::kResourceExhausted);
}

// ----------------------------------------------- forced-tier contract --

TEST(PlannerForceTest, ForcedTiersValidateEligibility) {
  GeneratedInstance rn = MakeRnInstance(2);
  RepairProblem problem = MustProblem(rn);
  Priority empty = Priority::Empty(problem.graph());
  auto ranked = Priority::Create(problem.graph(), {{0, 1}});
  ASSERT_TRUE(ranked.ok());
  auto ground = MustParse("R(0, 0)");

  CqaPlannerOptions force_single;
  force_single.force_tier = CqaTier::kSingleRepair;
  auto verdict = PlannedConsistentAnswer(problem, empty, RepairFamily::kAll,
                                         *ground, force_single);
  ASSERT_FALSE(verdict.ok());
  EXPECT_EQ(verdict.status().code(), StatusCode::kInvalidArgument);

  CqaPlannerOptions force_fast;
  force_fast.force_tier = CqaTier::kGroundFastPath;
  verdict = PlannedConsistentAnswer(problem, empty, RepairFamily::kAll,
                                    *MustParse("exists x . R(x, 0)"),
                                    force_fast);
  ASSERT_FALSE(verdict.ok());
  EXPECT_EQ(verdict.status().code(), StatusCode::kInvalidArgument);

  // A preferred family under a real priority is not Rep-equivalent.
  verdict = PlannedConsistentAnswer(problem, *ranked, RepairFamily::kGlobal,
                                    *ground, force_fast);
  ASSERT_FALSE(verdict.ok());
  EXPECT_EQ(verdict.status().code(), StatusCode::kInvalidArgument);

  // But kAll under the same priority is.
  verdict = PlannedConsistentAnswer(problem, *ranked, RepairFamily::kAll,
                                    *ground, force_fast);
  EXPECT_TRUE(verdict.ok()) << verdict.status().ToString();
}

// --------------------------------------- satellite 3: degenerate cases --

TEST(PlannerEdgeCaseTest, EmptyDatabase) {
  GeneratedInstance inst = MakeRnInstance(0);
  RepairProblem problem = MustProblem(inst);
  Priority empty = Priority::Empty(problem.graph());
  CqaPlannerOptions forced;
  forced.force_tier = CqaTier::kEnumeration;

  CqaPlan executed;
  for (const char* text : {"R(0, 0)", "not R(0, 0)", "exists x . R(x, 0)"}) {
    auto query = MustParse(text);
    auto fast = PlannedConsistentAnswer(problem, empty, RepairFamily::kAll,
                                        *query, CqaPlannerOptions(), &executed);
    ASSERT_TRUE(fast.ok()) << text;
    EXPECT_EQ(executed.tier, CqaTier::kSingleRepair) << text;
    auto slow = PlannedConsistentAnswer(problem, empty, RepairFamily::kAll,
                                        *query, forced);
    ASSERT_TRUE(slow.ok()) << text;
    EXPECT_EQ(*fast, *slow) << text;
  }
  auto open = PlannedConsistentAnswers(problem, empty, RepairFamily::kAll,
                                       *MustParse("R(x, y)"));
  ASSERT_TRUE(open.ok());
  EXPECT_TRUE(open->rows.empty());
}

TEST(PlannerEdgeCaseTest, ConstantOnlyQueries) {
  GeneratedInstance rn = MakeRnInstance(2);  // conflicted
  RepairProblem problem = MustProblem(rn);
  Priority empty = Priority::Empty(problem.graph());
  CqaPlannerOptions forced;
  forced.force_tier = CqaTier::kEnumeration;

  const std::pair<const char*, CqaVerdict> cases[] = {
      {"true", CqaVerdict::kCertainlyTrue},
      {"false", CqaVerdict::kCertainlyFalse},
      {"not false", CqaVerdict::kCertainlyTrue},
      {"true and not false", CqaVerdict::kCertainlyTrue},
  };
  for (const auto& [text, want] : cases) {
    auto query = MustParse(text);
    CqaPlan executed;
    auto fast = PlannedConsistentAnswer(problem, empty, RepairFamily::kAll,
                                        *query, CqaPlannerOptions(), &executed);
    ASSERT_TRUE(fast.ok()) << text << ": " << fast.status().ToString();
    EXPECT_EQ(*fast, want) << text;
    EXPECT_EQ(executed.tier, CqaTier::kGroundFastPath) << text;
    auto slow = PlannedConsistentAnswer(problem, empty, RepairFamily::kAll,
                                        *query, forced);
    ASSERT_TRUE(slow.ok()) << text;
    EXPECT_EQ(*fast, *slow) << text;
  }

  // Zero-variable open answers: {()} iff the query is certain.
  for (const char* text : {"true", "not false", "false"}) {
    auto query = MustParse(text);
    auto fast = PlannedConsistentAnswers(problem, empty, RepairFamily::kAll,
                                         *query);
    auto slow = PlannedConsistentAnswers(problem, empty, RepairFamily::kAll,
                                         *query, forced);
    ASSERT_TRUE(fast.ok()) << text << ": " << fast.status().ToString();
    ASSERT_TRUE(slow.ok()) << text;
    EXPECT_EQ(fast->variables, slow->variables) << text;
    EXPECT_EQ(fast->rows, slow->rows) << text;
  }
}

TEST(PlannerEdgeCaseTest, UnknownRelationFailsIdenticallyAcrossTiers) {
  GeneratedInstance rn = MakeRnInstance(2);
  RepairProblem problem = MustProblem(rn);
  Priority empty = Priority::Empty(problem.graph());
  CqaPlannerOptions forced;
  forced.force_tier = CqaTier::kEnumeration;
  auto query = MustParse("S(0, 0)");

  auto fast = PlannedConsistentAnswer(problem, empty, RepairFamily::kAll,
                                      *query);
  auto slow = PlannedConsistentAnswer(problem, empty, RepairFamily::kAll,
                                      *query, forced);
  ASSERT_FALSE(fast.ok());
  ASSERT_FALSE(slow.ok());
  EXPECT_EQ(fast.status().code(), slow.status().code());

  auto fast_open = PlannedConsistentAnswers(problem, empty,
                                            RepairFamily::kAll, *query);
  auto slow_open = PlannedConsistentAnswers(problem, empty,
                                            RepairFamily::kAll, *query,
                                            forced);
  ASSERT_FALSE(fast_open.ok());
  ASSERT_FALSE(slow_open.ok());
  EXPECT_EQ(fast_open.status().code(), slow_open.status().code());
}

// ------------------------------------------------- aggregation planning --

TEST(PlannerAggregateTest, CountStarRoutesToComponentRange) {
  GeneratedInstance rn = MakeRnInstance(3);
  RepairProblem problem = MustProblem(rn);
  Priority empty = Priority::Empty(problem.graph());
  CqaPlan executed;
  auto fast = PlannedAggregateRange(problem, empty, RepairFamily::kGlobal,
                                    "R", "", AggregateFunction::kCount,
                                    CqaPlannerOptions(),
                                    &executed);
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();
  EXPECT_EQ(executed.tier, CqaTier::kGroundFastPath);
  EXPECT_TRUE(executed.family_collapsed);

  CqaPlannerOptions forced;
  forced.force_tier = CqaTier::kEnumeration;
  auto slow = PlannedAggregateRange(problem, empty, RepairFamily::kGlobal,
                                    "R", "", AggregateFunction::kCount,
                                    forced, &executed);
  ASSERT_TRUE(slow.ok());
  EXPECT_EQ(executed.tier, CqaTier::kEnumeration);
  EXPECT_EQ(fast->lo, slow->lo);
  EXPECT_EQ(fast->hi, slow->hi);
  EXPECT_EQ(fast->empty_possible, slow->empty_possible);

  // SUM has no polynomial range: plans enumeration.
  auto sum = PlannedAggregateRange(problem, empty, RepairFamily::kAll, "R",
                                   "B", AggregateFunction::kSum,
                                   CqaPlannerOptions(),
                                   &executed);
  ASSERT_TRUE(sum.ok()) << sum.status().ToString();
  EXPECT_EQ(executed.tier, CqaTier::kEnumeration);
}

// -------------------------------- satellite 4: differential equivalence --

// Builds a random literal over R; `vars` (possibly empty) supplies the
// variable pool for open queries.
std::unique_ptr<Query> RandomAtom(Rng& rng, const Relation& rel, int arity,
                                  const std::vector<std::string>& vars) {
  std::vector<Term> terms;
  const Tuple* sample =
      rel.size() > 0
          ? &rel.tuple(static_cast<int>(rng.UniformInt(rel.size())))
          : nullptr;
  for (int i = 0; i < arity; ++i) {
    if (!vars.empty() && rng.Bernoulli(0.3)) {
      terms.push_back(
          Term::Var(vars[static_cast<size_t>(rng.UniformInt(vars.size()))]));
    } else if (sample != nullptr && rng.Bernoulli(0.7)) {
      terms.push_back(Term::Const(sample->values()[static_cast<size_t>(i)]));
    } else {
      terms.push_back(
          Term::ConstNumber(static_cast<int64_t>(rng.UniformInt(4))));
    }
  }
  return Query::Atom("R", std::move(terms));
}

std::unique_ptr<Query> RandomQuery(Rng& rng, const Relation& rel, int arity,
                                   const std::vector<std::string>& vars,
                                   bool allow_negation) {
  std::vector<std::unique_ptr<Query>> literals;
  int count = 1 + static_cast<int>(rng.UniformInt(3));
  for (int i = 0; i < count; ++i) {
    std::unique_ptr<Query> atom;
    if (!vars.empty() && rng.Bernoulli(0.2)) {
      // Comparison literal: exercises the non-atom leg of the DNF and
      // candidate-certification paths.
      atom = Query::Cmp(
          rng.Bernoulli(0.5) ? ComparisonOp::kLt : ComparisonOp::kNe,
          Term::Var(vars[static_cast<size_t>(rng.UniformInt(vars.size()))]),
          Term::ConstNumber(static_cast<int64_t>(rng.UniformInt(4))));
    } else {
      atom = RandomAtom(rng, rel, arity, vars);
    }
    literals.push_back(allow_negation && rng.Bernoulli(0.35)
                           ? Query::Not(std::move(atom))
                           : std::move(atom));
  }
  if (literals.size() == 1) return std::move(literals[0]);
  return rng.Bernoulli(0.5) ? Query::And(std::move(literals))
                            : Query::Or(std::move(literals));
}

TEST(PlannerDifferentialTest, PlannerMatchesForcedEnumeration) {
  // Deterministic by default; CI's sanitizer leg sweeps extra seeds.
  uint64_t seed = 20260808;
  if (const char* env = std::getenv("PLANNER_TEST_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }
  Rng rng(seed);
  int verdicts_compared = 0;
  int answer_sets_compared = 0;
  for (int trial = 0; trial < 40; ++trial) {
    GeneratedInstance inst = MakeRandomInstance(rng, 12, 3, 3, 2);
    RepairProblem problem = MustProblem(inst);
    const Relation& rel = *inst.db->relation("R").value();

    // Both priority kinds plus the empty priority, cycling per trial.
    Priority priority = [&]() {
      switch (trial % 3) {
        case 0:
          return Priority::Empty(problem.graph());
        case 1:
          return RandomRankingPriority(rng, problem.graph(), 0.7);
        default:
          return RandomDagPriority(rng, problem.graph(), 0.7);
      }
    }();
    RepairFamily family = kAllFamilies[trial % 5];

    CqaPlannerOptions forced;
    forced.force_tier = CqaTier::kEnumeration;

    for (int q = 0; q < 4; ++q) {
      // Shape class cycles: ground qf, open qf (negation-free and not),
      // and quantified/conjunctive closed.
      std::unique_ptr<Query> query;
      switch (q) {
        case 0:
          query = RandomQuery(rng, rel, 3, {}, /*allow_negation=*/true);
          break;
        case 1:
          query = RandomQuery(rng, rel, 3, {"x"}, /*allow_negation=*/false);
          break;
        case 2:
          query = RandomQuery(rng, rel, 3, {"x", "y"},
                              /*allow_negation=*/true);
          break;
        default: {
          auto body = RandomQuery(rng, rel, 3, {"x"},
                                  /*allow_negation=*/true);
          std::set<std::string> free = body->FreeVariables();
          if (free.empty()) {
            query = std::move(body);
          } else {
            std::vector<std::string> bound(free.begin(), free.end());
            query = rng.Bernoulli(0.5)
                        ? Query::Exists(std::move(bound), std::move(body))
                        : Query::ForAll(std::move(bound), std::move(body));
          }
          break;
        }
      }

      if (query->IsClosed()) {
        auto fast = PlannedConsistentAnswer(problem, priority, family, *query);
        auto slow = PlannedConsistentAnswer(problem, priority, family, *query,
                                            forced);
        ASSERT_TRUE(fast.ok()) << fast.status().ToString() << " for "
                               << query->ToString();
        ASSERT_TRUE(slow.ok()) << slow.status().ToString();
        EXPECT_EQ(*fast, *slow)
            << "trial " << trial << " family " << RepairFamilyName(family)
            << " query " << query->ToString();
        ++verdicts_compared;
      }

      auto fast_open =
          PlannedConsistentAnswers(problem, priority, family, *query);
      auto slow_open = PlannedConsistentAnswers(problem, priority, family,
                                                *query, forced);
      ASSERT_TRUE(fast_open.ok())
          << fast_open.status().ToString() << " for " << query->ToString();
      ASSERT_TRUE(slow_open.ok()) << slow_open.status().ToString();
      EXPECT_EQ(fast_open->variables, slow_open->variables)
          << query->ToString();
      EXPECT_EQ(fast_open->rows, slow_open->rows)
          << "trial " << trial << " family " << RepairFamilyName(family)
          << " query " << query->ToString();
      ++answer_sets_compared;
    }

    // COUNT(*) aggregation rides the same differential.
    auto fast_count = PlannedAggregateRange(problem, priority, family, "R",
                                            "", AggregateFunction::kCount);
    auto slow_count =
        PlannedAggregateRange(problem, priority, family, "R", "",
                              AggregateFunction::kCount, forced);
    ASSERT_TRUE(fast_count.ok()) << fast_count.status().ToString();
    ASSERT_TRUE(slow_count.ok());
    EXPECT_EQ(fast_count->lo, slow_count->lo) << "trial " << trial;
    EXPECT_EQ(fast_count->hi, slow_count->hi) << "trial " << trial;
    EXPECT_EQ(fast_count->empty_possible, slow_count->empty_possible);
  }
  EXPECT_EQ(answer_sets_compared, 160);
  EXPECT_GE(verdicts_compared, 40);
}

}  // namespace
}  // namespace prefrep
