// Tests for src/cqa: preferred consistent query answers (Definition 3),
// the polynomial ground-query engine and its differential validation
// against the naive enumerate-all-repairs engine.

#include <gtest/gtest.h>

#include "cqa/cqa.h"
#include "query/parser.h"
#include "workload/generators.h"

namespace prefrep {
namespace {

std::unique_ptr<Query> MustParse(std::string_view text) {
  auto q = ParseQuery(text);
  CHECK(q.ok()) << q.status().ToString();
  return *std::move(q);
}

RepairProblem MustProblem(const GeneratedInstance& inst) {
  auto problem = RepairProblem::Create(inst.db.get(), inst.fds);
  CHECK(problem.ok()) << problem.status().ToString();
  return *std::move(problem);
}

// ------------------------------------------------------ basic semantics --

TEST(CqaTest, ConsistentDatabaseAnswersMatchPlainEvaluation) {
  GeneratedInstance inst = MakeKeyGroupsInstance(2, 1);  // consistent
  RepairProblem problem = MustProblem(inst);
  Priority empty = Priority::Empty(problem.graph());
  auto verdict = PreferredConsistentAnswer(problem, empty, RepairFamily::kAll,
                                           *MustParse("R(0, 0)"));
  ASSERT_TRUE(verdict.ok());
  EXPECT_EQ(*verdict, CqaVerdict::kCertainlyTrue);
  verdict = PreferredConsistentAnswer(problem, empty, RepairFamily::kAll,
                                      *MustParse("R(0, 7)"));
  EXPECT_EQ(*verdict, CqaVerdict::kCertainlyFalse);
}

TEST(CqaTest, ConflictingFactIsUndetermined) {
  // r_1 = {(0,0),(0,1)}: each repair keeps exactly one of the two facts.
  GeneratedInstance rn = MakeRnInstance(1);
  RepairProblem problem = MustProblem(rn);
  Priority empty = Priority::Empty(problem.graph());
  auto verdict = PreferredConsistentAnswer(problem, empty, RepairFamily::kAll,
                                           *MustParse("R(0, 0)"));
  ASSERT_TRUE(verdict.ok());
  EXPECT_EQ(*verdict, CqaVerdict::kUndetermined);
  // The disjunction holds in every repair.
  verdict = PreferredConsistentAnswer(problem, empty, RepairFamily::kAll,
                                      *MustParse("R(0, 0) or R(0, 1)"));
  EXPECT_EQ(*verdict, CqaVerdict::kCertainlyTrue);
}

TEST(CqaTest, PriorityResolvesTheAnswer) {
  GeneratedInstance rn = MakeRnInstance(1);
  RepairProblem problem = MustProblem(rn);
  // Prefer (0,0) over (0,1): ids 0 and 1.
  auto priority = Priority::Create(problem.graph(), {{0, 1}});
  ASSERT_TRUE(priority.ok());
  for (RepairFamily family :
       {RepairFamily::kLocal, RepairFamily::kSemiGlobal, RepairFamily::kGlobal,
        RepairFamily::kCommon}) {
    auto verdict = PreferredConsistentAnswer(problem, *priority, family,
                                             *MustParse("R(0, 0)"));
    ASSERT_TRUE(verdict.ok());
    EXPECT_EQ(*verdict, CqaVerdict::kCertainlyTrue)
        << RepairFamilyName(family);
  }
  // The unrestricted family still cannot decide.
  auto verdict = PreferredConsistentAnswer(problem, *priority,
                                           RepairFamily::kAll,
                                           *MustParse("R(0, 0)"));
  EXPECT_EQ(*verdict, CqaVerdict::kUndetermined);
}

TEST(CqaTest, RejectsOpenQueriesInClosedApi) {
  GeneratedInstance rn = MakeRnInstance(1);
  RepairProblem problem = MustProblem(rn);
  Priority empty = Priority::Empty(problem.graph());
  EXPECT_FALSE(PreferredConsistentAnswer(problem, empty, RepairFamily::kAll,
                                         *MustParse("R(x, 0)"))
                   .ok());
}

TEST(CqaTest, QuantifiedQueryOverRepairs) {
  // In every repair of r_2 there is some tuple with B = 0 or B = 1 for
  // each key; "exists x . R(x, 0)" holds only in repairs keeping a 0-tuple.
  GeneratedInstance rn = MakeRnInstance(2);
  RepairProblem problem = MustProblem(rn);
  Priority empty = Priority::Empty(problem.graph());
  auto undetermined = PreferredConsistentAnswer(
      problem, empty, RepairFamily::kAll, *MustParse("exists x . R(x, 0)"));
  EXPECT_EQ(*undetermined, CqaVerdict::kUndetermined);
  auto certain = PreferredConsistentAnswer(
      problem, empty, RepairFamily::kAll,
      *MustParse("forall x, y . (not R(x, y)) or y <= 1"));
  EXPECT_EQ(*certain, CqaVerdict::kCertainlyTrue);
}

// -------------------------------------------------- open-query answers --

TEST(CqaTest, OpenQueryConsistentAnswersIntersect) {
  // r_2: keys 0 and 1, values {0,1} each. The consistent answers to
  // R(x, y) are empty; to "R(x,0) or R(x,1)" (projected on x) both keys.
  GeneratedInstance rn = MakeRnInstance(2);
  RepairProblem problem = MustProblem(rn);
  Priority empty = Priority::Empty(problem.graph());
  auto none = PreferredConsistentAnswers(problem, empty, RepairFamily::kAll,
                                         *MustParse("R(x, y)"));
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->rows.empty());

  auto keys = PreferredConsistentAnswers(
      problem, empty, RepairFamily::kAll,
      *MustParse("R(x, 0) or R(x, 1)"));
  ASSERT_TRUE(keys.ok());
  ASSERT_EQ(keys->rows.size(), 2u);
  EXPECT_EQ(keys->rows[0], Tuple::Of(Value::Number(0)));
  EXPECT_EQ(keys->rows[1], Tuple::Of(Value::Number(1)));
}

TEST(CqaTest, OpenQueryPreferredAnswersGrowWithPriorities) {
  GeneratedInstance rn = MakeRnInstance(2);
  RepairProblem problem = MustProblem(rn);
  // Prefer value 0 for key 0 (ids 0,1) and value 1 for key 1 (ids 2,3).
  auto priority = Priority::Create(problem.graph(), {{0, 1}, {3, 2}});
  ASSERT_TRUE(priority.ok());
  auto answers = PreferredConsistentAnswers(
      problem, *priority, RepairFamily::kGlobal, *MustParse("R(x, y)"));
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers->rows.size(), 2u);
  EXPECT_EQ(answers->rows[0], Tuple::Of(Value::Number(0), Value::Number(0)));
  EXPECT_EQ(answers->rows[1], Tuple::Of(Value::Number(1), Value::Number(1)));
}

// ----------------------------------------------- polynomial ground CQA --

TEST(GroundCqaTest, MatchesDefinitionOnRn) {
  GeneratedInstance rn = MakeRnInstance(2);
  RepairProblem problem = MustProblem(rn);
  EXPECT_FALSE(*GroundConsistentAnswer(problem, *MustParse("R(0, 0)")));
  EXPECT_TRUE(
      *GroundConsistentAnswer(problem, *MustParse("R(0, 0) or R(0, 1)")));
  EXPECT_TRUE(*GroundConsistentAnswer(problem, *MustParse("not false")));
  // A fact outside the database is false in every repair.
  EXPECT_TRUE(*GroundConsistentAnswer(problem, *MustParse("not R(9, 9)")));
  EXPECT_FALSE(*GroundConsistentAnswer(problem, *MustParse("R(9, 9)")));
}

TEST(GroundCqaTest, ConflictFreeFactIsCertain) {
  // A tuple involved in no conflict belongs to every repair.
  GeneratedInstance inst = MakeKeyGroupsInstance(1, 3);
  ASSERT_TRUE(inst.db->Insert("R", Tuple::Of(Value::Number(9),
                                             Value::Number(9)))
                  .ok());
  RepairProblem problem = MustProblem(inst);
  EXPECT_TRUE(*GroundConsistentAnswer(problem, *MustParse("R(9, 9)")));
  EXPECT_FALSE(*GroundConsistentAnswer(problem, *MustParse("not R(9, 9)")));
}

TEST(GroundCqaTest, RejectsNonGroundQueries) {
  GeneratedInstance rn = MakeRnInstance(1);
  RepairProblem problem = MustProblem(rn);
  EXPECT_FALSE(GroundConsistentAnswer(problem, *MustParse("R(x, 0)")).ok());
  EXPECT_FALSE(
      GroundConsistentAnswer(problem, *MustParse("exists x . R(x, 0)")).ok());
}

TEST(GroundCqaTest, NegativeLiteralNeedsWitness) {
  // Key group {(0,0),(0,1),(0,2)}: "not R(0,0)" holds in the repairs
  // keeping (0,1) or (0,2) — not in all; and "R(0,1) or not R(0,0)" is
  // also not certain (repair {(0,0)} falsifies both parts).
  GeneratedInstance inst = MakeKeyGroupsInstance(1, 3);
  RepairProblem problem = MustProblem(inst);
  EXPECT_FALSE(*GroundConsistentAnswer(problem, *MustParse("not R(0, 0)")));
  EXPECT_FALSE(*GroundConsistentAnswer(
      problem, *MustParse("R(0, 1) or not R(0, 0)")));
  // But "not R(0,0) or not R(0,1)" holds in every repair (they conflict).
  EXPECT_TRUE(*GroundConsistentAnswer(
      problem, *MustParse("not R(0, 0) or not R(0, 1)")));
}

TEST(GroundCqaTest, GroundVerdictThreeValues) {
  GeneratedInstance rn = MakeRnInstance(1);
  RepairProblem problem = MustProblem(rn);
  EXPECT_EQ(*GroundConsistentVerdict(problem,
                                     *MustParse("R(0, 0) or R(0, 1)")),
            CqaVerdict::kCertainlyTrue);
  EXPECT_EQ(*GroundConsistentVerdict(problem,
                                     *MustParse("R(0, 0) and R(0, 1)")),
            CqaVerdict::kCertainlyFalse);
  EXPECT_EQ(*GroundConsistentVerdict(problem, *MustParse("R(0, 0)")),
            CqaVerdict::kUndetermined);
}

// Differential test: the polynomial engine agrees with the naive
// enumerate-all-repairs engine on random instances and random ground
// queries. This is the key correctness evidence for the Fig. 5 row 1
// implementation.
TEST(GroundCqaTest, DifferentialAgainstNaiveEngine) {
  Rng rng(777);
  int compared = 0;
  for (int trial = 0; trial < 12; ++trial) {
    GeneratedInstance inst = MakeRandomInstance(rng, 14, 3, 3, 2);
    RepairProblem problem = MustProblem(inst);
    Priority empty = Priority::Empty(problem.graph());
    const Relation& rel = *inst.db->relation("R").value();

    auto random_fact = [&]() -> std::unique_ptr<Query> {
      std::vector<Term> terms;
      if (rng.Bernoulli(0.8) && rel.size() > 0) {
        // An existing tuple (possibly in a conflict).
        const Tuple& t = rel.tuple(
            static_cast<int>(rng.UniformInt(rel.size())));
        for (const Value& v : t.values()) terms.push_back(Term::Const(v));
      } else {
        for (int i = 0; i < 3; ++i) {
          terms.push_back(Term::ConstNumber(
              static_cast<int64_t>(rng.UniformInt(4))));
        }
      }
      return Query::Atom("R", std::move(terms));
    };

    for (int q = 0; q < 8; ++q) {
      // Random ground query: combination of up to 3 literals.
      std::vector<std::unique_ptr<Query>> literals;
      int count = 1 + static_cast<int>(rng.UniformInt(3));
      for (int i = 0; i < count; ++i) {
        auto atom = random_fact();
        literals.push_back(rng.Bernoulli(0.4) ? Query::Not(std::move(atom))
                                              : std::move(atom));
      }
      std::unique_ptr<Query> query =
          rng.Bernoulli(0.5) ? Query::And(std::move(literals))
                             : Query::Or(std::move(literals));

      auto fast = GroundConsistentAnswer(problem, *query);
      ASSERT_TRUE(fast.ok()) << fast.status().ToString();
      auto naive = PreferredConsistentAnswer(problem, empty,
                                             RepairFamily::kAll, *query);
      ASSERT_TRUE(naive.ok());
      EXPECT_EQ(*fast, *naive == CqaVerdict::kCertainlyTrue)
          << "trial " << trial << " query " << query->ToString();
      ++compared;
    }
  }
  EXPECT_EQ(compared, 96);
}

// X-Rep ⊆ Rep implies: certainly-true under Rep stays certainly-true under
// every preferred family (monotonicity of the certain answer).
TEST(CqaTest, PreferredAnswersRefineRepAnswers) {
  Rng rng(4242);
  for (int trial = 0; trial < 6; ++trial) {
    GeneratedInstance inst = MakeRandomInstance(rng, 12, 3, 3, 2);
    RepairProblem problem = MustProblem(inst);
    Priority p = RandomDagPriority(rng, problem.graph(), 0.6);
    const Relation& rel = *inst.db->relation("R").value();
    if (rel.size() == 0) continue;
    const Tuple& t =
        rel.tuple(static_cast<int>(rng.UniformInt(rel.size())));
    std::vector<Term> terms;
    for (const Value& v : t.values()) terms.push_back(Term::Const(v));
    auto query = Query::Atom("R", std::move(terms));

    auto rep = PreferredConsistentAnswer(problem, p, RepairFamily::kAll,
                                         *query);
    ASSERT_TRUE(rep.ok());
    for (RepairFamily family :
         {RepairFamily::kLocal, RepairFamily::kSemiGlobal,
          RepairFamily::kGlobal, RepairFamily::kCommon}) {
      auto pref = PreferredConsistentAnswer(problem, p, family, *query);
      ASSERT_TRUE(pref.ok());
      if (*rep == CqaVerdict::kCertainlyTrue) {
        EXPECT_EQ(*pref, CqaVerdict::kCertainlyTrue)
            << RepairFamilyName(family);
      }
      if (*rep == CqaVerdict::kCertainlyFalse) {
        EXPECT_EQ(*pref, CqaVerdict::kCertainlyFalse)
            << RepairFamilyName(family);
      }
    }
  }
}

}  // namespace
}  // namespace prefrep
