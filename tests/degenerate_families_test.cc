// Executable versions of the paper's §3 / §3.4 cautionary constructions:
//
//   Example 6  — a family satisfying P1-P4 that practically ignores the
//                priority (all repairs unless the priority is total);
//   Example 10 — T-Rep: clean under one arbitrarily chosen total
//                extension; globally optimal and categorical, but it
//                violates monotonicity (P2), "groundless elimination".
//
// These justify the paper's §3.4 conclusion — families should be optimal
// AND monotone — and double as regression tests for the machinery they
// are built from.

#include <gtest/gtest.h>

#include <set>

#include "core/algorithm1.h"
#include "core/extensions.h"
#include "core/families.h"
#include "core/optimality.h"
#include "repair/repair.h"
#include "workload/generators.h"

namespace prefrep {
namespace {

RepairProblem MustProblem(const GeneratedInstance& inst) {
  auto problem = RepairProblem::Create(inst.db.get(), inst.fds);
  CHECK(problem.ok()) << problem.status().ToString();
  return *std::move(problem);
}

// Example 6's family: the Algorithm 1 singleton for total priorities,
// every repair otherwise.
std::set<DynamicBitset> Example6Family(const ConflictGraph& graph,
                                       const Priority& priority) {
  std::set<DynamicBitset> out;
  if (priority.IsTotalFor(graph)) {
    out.insert(CleanDatabaseTotal(graph, priority));
    return out;
  }
  EnumerateMaximalIndependentSets(graph, [&](const DynamicBitset& r) {
    out.insert(r);
    return true;
  });
  return out;
}

// Example 10's T-Rep: deterministically complete the priority to a total
// extension (first-found in enumeration order), then clean.
std::set<DynamicBitset> TRepFamily(const ConflictGraph& graph,
                                   const Priority& priority) {
  DynamicBitset result(graph.vertex_count());
  EnumerateTotalExtensions(graph, priority, [&](const Priority& total) {
    result = CleanDatabaseTotal(graph, total);
    return false;  // fix the first total extension
  });
  return {result};
}

TEST(DegenerateFamiliesTest, Example6SatisfiesTheAxiomsButIgnoresInput) {
  // Example 7's triangle with the partial priority ta ≻ tb, ta ≻ tc.
  GeneratedInstance inst = MakeKeyGroupsInstance(1, 3);
  RepairProblem problem = MustProblem(inst);
  const ConflictGraph& g = problem.graph();
  auto partial = Priority::Create(g, {{0, 1}, {0, 2}});
  ASSERT_TRUE(partial.ok());

  std::set<DynamicBitset> family = Example6Family(g, *partial);
  // P1 and P3-like behavior hold trivially...
  EXPECT_EQ(family.size(), 3u);  // all repairs
  // ...P4 holds (total priority -> Algorithm 1 singleton)...
  auto total = partial->Extend(g, {{1, 2}});
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(Example6Family(g, *total).size(), 1u);
  // ...but the partial priority, which L-Rep already uses decisively
  // (only {ta} is locally optimal), is completely wasted:
  auto l_rep = PreferredRepairs(g, *partial, RepairFamily::kLocal);
  ASSERT_TRUE(l_rep.ok());
  EXPECT_EQ(l_rep->size(), 1u);
  EXPECT_GT(family.size(), l_rep->size());
}

TEST(DegenerateFamiliesTest, TRepIsGloballyOptimalAndCategorical) {
  GeneratedInstance inst = MakeChainInstance(5);
  RepairProblem problem = MustProblem(inst);
  const ConflictGraph& g = problem.graph();
  Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    Priority priority = RandomDagPriority(rng, g, 0.4);
    std::set<DynamicBitset> family = TRepFamily(g, priority);
    ASSERT_EQ(family.size(), 1u);  // P1 + P4 by construction
    // Members are globally optimal (they are Algorithm 1 outputs of a
    // total extension, hence common repairs of that extension).
    EXPECT_TRUE(IsGloballyOptimal(g, priority, *family.begin()));
    EXPECT_TRUE(IsCommonRepair(g, priority, *family.begin()));
  }
}

TEST(DegenerateFamiliesTest, TRepViolatesMonotonicity) {
  // §3.4: optimality alone does not prevent "groundless elimination";
  // monotonicity does. T-Rep picks one total extension arbitrarily, so an
  // *extension* of the user's priority can produce a repair outside the
  // original family — violating P2.
  GeneratedInstance inst = MakeRnInstance(1);  // single conflict {0,1}
  RepairProblem problem = MustProblem(inst);
  const ConflictGraph& g = problem.graph();
  Priority empty = Priority::Empty(g);

  std::set<DynamicBitset> base = TRepFamily(g, empty);
  ASSERT_EQ(base.size(), 1u);
  // The enumerator orients 0 ≻ 1 first, so T-Rep(∅) = {{0}}.
  EXPECT_TRUE(base.begin()->Test(0));

  // The user now *extends* the (empty) priority with 1 ≻ 0.
  auto extended = Priority::Create(g, {{1, 0}});
  ASSERT_TRUE(extended.ok());
  ASSERT_TRUE(empty.IsExtendedBy(*extended));
  std::set<DynamicBitset> narrowed = TRepFamily(g, *extended);
  ASSERT_EQ(narrowed.size(), 1u);
  EXPECT_TRUE(narrowed.begin()->Test(1));

  // P2 demands T-Rep(extended) ⊆ T-Rep(empty) — violated.
  EXPECT_FALSE(base.contains(*narrowed.begin()));

  // The principled families are monotone here: C-Rep(∅) contains both
  // repairs, and C-Rep(extended) ⊆ C-Rep(∅).
  auto c_base = PreferredRepairs(g, empty, RepairFamily::kCommon);
  auto c_narrow = PreferredRepairs(g, *extended, RepairFamily::kCommon);
  ASSERT_TRUE(c_base.ok() && c_narrow.ok());
  EXPECT_EQ(c_base->size(), 2u);
  ASSERT_EQ(c_narrow->size(), 1u);
  std::set<DynamicBitset> c_base_set(c_base->begin(), c_base->end());
  EXPECT_TRUE(c_base_set.contains((*c_narrow)[0]));
}

}  // namespace
}  // namespace prefrep
