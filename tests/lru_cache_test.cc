// Tests for src/server/lru_cache.h: recency-ordered eviction, touch
// semantics of Get/Put, Peek's non-touching lookup, and the LRU-to-MRU
// iteration order the derived-session seeding relies on.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "server/lru_cache.h"

namespace prefrep {
namespace {

TEST(LruCacheTest, MissReturnsNull) {
  LruCache<int> cache(2);
  EXPECT_EQ(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.Peek("a"), nullptr);
  EXPECT_FALSE(cache.Contains("a"));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(LruCacheTest, PutGetRoundTrip) {
  LruCache<int> cache(2);
  cache.Put("a", 1);
  ASSERT_NE(cache.Get("a"), nullptr);
  EXPECT_EQ(*cache.Get("a"), 1);
  EXPECT_TRUE(cache.Contains("a"));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<int> cache(2);
  cache.Put("a", 1);
  cache.Put("b", 2);
  cache.Put("c", 3);  // evicts a: oldest, never touched
  EXPECT_FALSE(cache.Contains("a"));
  EXPECT_TRUE(cache.Contains("b"));
  EXPECT_TRUE(cache.Contains("c"));
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(LruCacheTest, GetRefreshesRecency) {
  LruCache<int> cache(2);
  cache.Put("a", 1);
  cache.Put("b", 2);
  ASSERT_NE(cache.Get("a"), nullptr);  // a becomes most recent
  cache.Put("c", 3);                   // evicts b, not a
  EXPECT_TRUE(cache.Contains("a"));
  EXPECT_FALSE(cache.Contains("b"));
  EXPECT_TRUE(cache.Contains("c"));
}

TEST(LruCacheTest, PutOverwriteRefreshesRecencyAndValue) {
  LruCache<int> cache(2);
  cache.Put("a", 1);
  cache.Put("b", 2);
  cache.Put("a", 10);  // overwrite: a most recent, size unchanged
  EXPECT_EQ(cache.size(), 2u);
  cache.Put("c", 3);  // evicts b
  EXPECT_TRUE(cache.Contains("a"));
  EXPECT_FALSE(cache.Contains("b"));
  EXPECT_EQ(*cache.Get("a"), 10);
}

TEST(LruCacheTest, PeekDoesNotTouch) {
  LruCache<int> cache(2);
  cache.Put("a", 1);
  cache.Put("b", 2);
  ASSERT_NE(cache.Peek("a"), nullptr);  // read-only: a stays oldest
  cache.Put("c", 3);                    // still evicts a
  EXPECT_FALSE(cache.Contains("a"));
  EXPECT_TRUE(cache.Contains("b"));
}

TEST(LruCacheTest, ZeroCapacityIsUnbounded) {
  LruCache<int> cache;
  for (int i = 0; i < 1000; ++i) cache.Put("k" + std::to_string(i), i);
  EXPECT_EQ(cache.size(), 1000u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(LruCacheTest, ClearEmptiesButKeepsCapacity) {
  LruCache<int> cache(2);
  cache.Put("a", 1);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.capacity(), 2u);
  EXPECT_FALSE(cache.Contains("a"));
  cache.Put("b", 2);
  EXPECT_TRUE(cache.Contains("b"));
}

TEST(LruCacheTest, ClearResetsEvictionCounter) {
  LruCache<int> cache(1);
  cache.Put("a", 1);
  cache.Put("b", 2);  // evicts "a"
  cache.Put("c", 3);  // evicts "b"
  ASSERT_EQ(cache.evictions(), 2u);
  // An emptied cache reports no evictions; the counter restarts from the
  // clear, not from construction.
  cache.Clear();
  EXPECT_EQ(cache.evictions(), 0u);
  cache.Put("d", 4);
  EXPECT_EQ(cache.evictions(), 0u);
  cache.Put("e", 5);  // evicts "d"
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(LruCacheTest, ForEachVisitsLruToMru) {
  LruCache<int> cache(10);
  cache.Put("a", 1);
  cache.Put("b", 2);
  cache.Put("c", 3);
  ASSERT_NE(cache.Get("a"), nullptr);  // order now b, c, a
  std::vector<std::string> order;
  cache.ForEachLruToMru(
      [&](const std::string& key, const int&) { order.push_back(key); });
  EXPECT_EQ(order, (std::vector<std::string>{"b", "c", "a"}));
}

TEST(LruCacheTest, ManyEntriesSurviveRehashing) {
  // string_view keys point into list nodes; a growing map must rehash
  // without invalidating them.
  LruCache<int> cache(512);
  for (int i = 0; i < 512; ++i) cache.Put("key-" + std::to_string(i), i);
  for (int i = 0; i < 512; ++i) {
    int* v = cache.Get("key-" + std::to_string(i));
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, i);
  }
}

}  // namespace
}  // namespace prefrep
