// Unit tests for src/relational: values, schemas, tuples, relations,
// databases and CSV I/O.

#include <gtest/gtest.h>

#include "relational/csv.h"
#include "relational/database.h"
#include "relational/relation.h"
#include "relational/schema.h"
#include "relational/tuple.h"
#include "relational/value.h"

namespace prefrep {
namespace {

Schema TestSchema() {
  auto schema = Schema::Create(
      "Mgr", {Attribute{"Name", ValueType::kName},
              Attribute{"Dept", ValueType::kName},
              Attribute{"Salary", ValueType::kNumber}});
  CHECK(schema.ok());
  return *schema;
}

// ------------------------------------------------------------------ Value --

TEST(ValueTest, NameAndNumberConstruction) {
  Value mary = Value::Name("Mary");
  Value n = Value::Number(42);
  EXPECT_TRUE(mary.is_name());
  EXPECT_TRUE(n.is_number());
  EXPECT_EQ(mary.name(), "Mary");
  EXPECT_EQ(n.number(), 42);
}

TEST(ValueTest, DomainsAreDisjoint) {
  // A name never equals a number, even with "equal-looking" content.
  EXPECT_FALSE(Value::Name("42") == Value::Number(42));
}

TEST(ValueTest, UniqueNameAssumption) {
  EXPECT_TRUE(Value::Name("Mary") == Value::Name("Mary"));
  EXPECT_TRUE(Value::Name("Mary") != Value::Name("John"));
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Name("IT").ToString(), "IT");
  EXPECT_EQ(Value::Number(-5).ToString(), "-5");
}

TEST(ValueTest, CanonicalOrderSeparatesTypes) {
  // Canonical (container) order: names sort before numbers by type tag.
  EXPECT_TRUE(Value::Name("z") < Value::Number(0));
  EXPECT_TRUE(Value::Name("a") < Value::Name("b"));
  EXPECT_TRUE(Value::Number(1) < Value::Number(2));
}

TEST(ValueTest, HashAgreesWithEquality) {
  Value::Hash h;
  EXPECT_EQ(h(Value::Name("x")), h(Value::Name("x")));
  EXPECT_EQ(h(Value::Number(9)), h(Value::Number(9)));
  EXPECT_NE(h(Value::Name("42")), h(Value::Number(42)));
}

// ------------------------------------------------------------------ Schema --

TEST(SchemaTest, CreateValid) {
  Schema schema = TestSchema();
  EXPECT_EQ(schema.relation_name(), "Mgr");
  EXPECT_EQ(schema.arity(), 3);
  EXPECT_EQ(schema.attribute(2).name, "Salary");
}

TEST(SchemaTest, AttributeIndexLookup) {
  Schema schema = TestSchema();
  EXPECT_EQ(*schema.AttributeIndex("Dept"), 1);
  EXPECT_FALSE(schema.AttributeIndex("Nope").ok());
  EXPECT_TRUE(schema.HasAttribute("Name"));
  EXPECT_FALSE(schema.HasAttribute("name"));  // case-sensitive
}

TEST(SchemaTest, RejectsDuplicateAttributes) {
  auto schema = Schema::Create("R", {Attribute{"A", ValueType::kNumber},
                                     Attribute{"A", ValueType::kName}});
  EXPECT_FALSE(schema.ok());
  EXPECT_EQ(schema.status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, RejectsEmptyAttributeList) {
  EXPECT_FALSE(Schema::Create("R", {}).ok());
}

TEST(SchemaTest, RejectsBadNames) {
  EXPECT_FALSE(
      Schema::Create("9R", {Attribute{"A", ValueType::kNumber}}).ok());
  EXPECT_FALSE(
      Schema::Create("R", {Attribute{"bad name", ValueType::kNumber}}).ok());
}

TEST(SchemaTest, ToStringListsTypes) {
  EXPECT_EQ(TestSchema().ToString(),
            "Mgr(Name:name, Dept:name, Salary:number)");
}

TEST(SchemaTest, Equality) {
  EXPECT_TRUE(TestSchema() == TestSchema());
  auto other = Schema::Create("Mgr", {Attribute{"Name", ValueType::kName}});
  EXPECT_FALSE(TestSchema() == *other);
}

// ------------------------------------------------------------------- Tuple --

TEST(TupleTest, OfBuilder) {
  Tuple t = Tuple::Of(Value::Name("Mary"), Value::Number(3));
  EXPECT_EQ(t.arity(), 2);
  EXPECT_EQ(t.value(0).name(), "Mary");
  EXPECT_EQ(t.value(1).number(), 3);
}

TEST(TupleTest, ToString) {
  EXPECT_EQ(Tuple::Of(Value::Name("a"), Value::Number(1)).ToString(),
            "(a, 1)");
}

TEST(TupleTest, EqualityAndHash) {
  Tuple a = Tuple::Of(Value::Number(1), Value::Number(2));
  Tuple b = Tuple::Of(Value::Number(1), Value::Number(2));
  Tuple c = Tuple::Of(Value::Number(1), Value::Number(3));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  Tuple::Hash h;
  EXPECT_EQ(h(a), h(b));
}

TEST(TupleTest, ValidateAgainstSchema) {
  Schema schema = TestSchema();
  EXPECT_TRUE(ValidateTuple(schema,
                            Tuple::Of(Value::Name("M"), Value::Name("IT"),
                                      Value::Number(10)))
                  .ok());
  // Wrong arity.
  EXPECT_FALSE(ValidateTuple(schema, Tuple::Of(Value::Name("M"))).ok());
  // Wrong type at position 2.
  EXPECT_FALSE(ValidateTuple(schema,
                             Tuple::Of(Value::Name("M"), Value::Name("IT"),
                                       Value::Name("ten")))
                   .ok());
}

// ---------------------------------------------------------------- Relation --

TEST(RelationTest, AddAndFind) {
  Relation rel(TestSchema());
  Tuple t = Tuple::Of(Value::Name("Mary"), Value::Name("IT"),
                      Value::Number(20));
  ASSERT_TRUE(rel.AddTuple(t).ok());
  EXPECT_EQ(rel.size(), 1);
  EXPECT_EQ(*rel.Find(t), 0);
  EXPECT_TRUE(rel.Contains(t));
}

TEST(RelationTest, RejectsDuplicates) {
  Relation rel(TestSchema());
  Tuple t = Tuple::Of(Value::Name("Mary"), Value::Name("IT"),
                      Value::Number(20));
  ASSERT_TRUE(rel.AddTuple(t).ok());
  auto again = rel.AddTuple(t);
  EXPECT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(rel.size(), 1);
}

TEST(RelationTest, RejectsSchemaViolations) {
  Relation rel(TestSchema());
  EXPECT_FALSE(rel.AddTuple(Tuple::Of(Value::Number(1))).ok());
}

TEST(RelationTest, KeepsMetadata) {
  Relation rel(TestSchema());
  ASSERT_TRUE(rel.AddTuple(Tuple::Of(Value::Name("M"), Value::Name("IT"),
                                     Value::Number(1)),
                           TupleMeta{7, 1234})
                  .ok());
  EXPECT_EQ(rel.meta(0).source_id, 7);
  EXPECT_EQ(rel.meta(0).timestamp, 1234);
}

// ---------------------------------------------------------------- Database --

Database TwoRelationDb() {
  Database db;
  CHECK(db.AddRelation(*Schema::Create(
                 "R", {Attribute{"A", ValueType::kNumber},
                       Attribute{"B", ValueType::kNumber}}))
            .ok());
  CHECK(db.AddRelation(*Schema::Create(
                 "S", {Attribute{"X", ValueType::kName}}))
            .ok());
  return db;
}

TEST(DatabaseTest, AddRelationRejectsDuplicates) {
  Database db = TwoRelationDb();
  auto dup = Schema::Create("R", {Attribute{"Z", ValueType::kName}});
  EXPECT_FALSE(db.AddRelation(*dup).ok());
}

TEST(DatabaseTest, GlobalIdsAreDenseAcrossInterleavedInserts) {
  Database db = TwoRelationDb();
  auto id0 = db.Insert("R", Tuple::Of(Value::Number(1), Value::Number(1)));
  auto id1 = db.Insert("S", Tuple::Of(Value::Name("a")));
  auto id2 = db.Insert("R", Tuple::Of(Value::Number(2), Value::Number(2)));
  ASSERT_TRUE(id0.ok() && id1.ok() && id2.ok());
  EXPECT_EQ(*id0, 0);
  EXPECT_EQ(*id1, 1);
  EXPECT_EQ(*id2, 2);
  EXPECT_EQ(db.tuple_count(), 3);
  // Mapping back.
  EXPECT_EQ(db.RelationIndexOf(*id1), 1);
  EXPECT_EQ(db.RowOf(*id2), 1);
  EXPECT_EQ(db.GlobalId(0, 1), *id2);
  EXPECT_EQ(db.TupleOf(*id1), Tuple::Of(Value::Name("a")));
}

TEST(DatabaseTest, InsertIntoUnknownRelationFails) {
  Database db = TwoRelationDb();
  EXPECT_FALSE(db.Insert("T", Tuple::Of(Value::Number(1))).ok());
}

TEST(DatabaseTest, FindTuple) {
  Database db = TwoRelationDb();
  Tuple t = Tuple::Of(Value::Number(5), Value::Number(6));
  auto id = db.Insert("R", t);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*db.FindTuple("R", t), *id);
  EXPECT_FALSE(db.FindTuple("R", Tuple::Of(Value::Number(9),
                                           Value::Number(9)))
                   .ok());
}

TEST(DatabaseTest, RelationMask) {
  Database db = TwoRelationDb();
  ASSERT_TRUE(db.Insert("R", Tuple::Of(Value::Number(1), Value::Number(1)))
                  .ok());
  ASSERT_TRUE(db.Insert("S", Tuple::Of(Value::Name("a"))).ok());
  ASSERT_TRUE(db.Insert("R", Tuple::Of(Value::Number(2), Value::Number(2)))
                  .ok());
  EXPECT_EQ(db.RelationMask(0).ToVector(), (std::vector<int>{0, 2}));
  EXPECT_EQ(db.RelationMask(1).ToVector(), (std::vector<int>{1}));
}

TEST(DatabaseTest, InduceKeepsSubsetAndMetadata) {
  Database db = TwoRelationDb();
  ASSERT_TRUE(db.Insert("R", Tuple::Of(Value::Number(1), Value::Number(1)),
                        TupleMeta{3, 10})
                  .ok());
  ASSERT_TRUE(db.Insert("R", Tuple::Of(Value::Number(2), Value::Number(2)))
                  .ok());
  ASSERT_TRUE(db.Insert("S", Tuple::Of(Value::Name("a"))).ok());

  Database induced = db.Induce(DynamicBitset::FromIndices(3, {0, 2}));
  EXPECT_EQ(induced.tuple_count(), 2);
  EXPECT_EQ((*induced.relation("R"))->size(), 1);
  EXPECT_EQ((*induced.relation("S"))->size(), 1);
  EXPECT_EQ(induced.MetaOf(0).source_id, 3);
}

TEST(DatabaseTest, DescribeTupleIncludesProvenance) {
  Database db = TwoRelationDb();
  ASSERT_TRUE(db.Insert("S", Tuple::Of(Value::Name("a")), TupleMeta{2, 99})
                  .ok());
  EXPECT_EQ(db.DescribeTuple(0), "S(a)  [source=2 ts=99]");
}

// --------------------------------------------------------------------- CSV --

TEST(CsvTest, LoadBasic) {
  Database db = TwoRelationDb();
  auto n = LoadCsv(db, "R", "1,2\n3,4\n# comment\n\n5,6\n");
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 3);
  EXPECT_EQ(db.tuple_count(), 3);
  EXPECT_EQ(db.TupleOf(2), Tuple::Of(Value::Number(5), Value::Number(6)));
}

TEST(CsvTest, LoadWithProvenance) {
  Database db = TwoRelationDb();
  CsvOptions opts;
  opts.with_provenance = true;
  auto n = LoadCsv(db, "R", "1,2,7,1000\n", opts);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(db.MetaOf(0).source_id, 7);
  EXPECT_EQ(db.MetaOf(0).timestamp, 1000);
}

TEST(CsvTest, LoadNameTyped) {
  Database db = TwoRelationDb();
  auto n = LoadCsv(db, "S", "alpha\n beta \n");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(db.TupleOf(1), Tuple::Of(Value::Name("beta")));
}

TEST(CsvTest, LoadRejectsFieldCountMismatch) {
  Database db = TwoRelationDb();
  auto n = LoadCsv(db, "R", "1,2,3\n");
  EXPECT_FALSE(n.ok());
  EXPECT_EQ(n.status().code(), StatusCode::kParseError);
}

TEST(CsvTest, LoadRejectsBadNumber) {
  Database db = TwoRelationDb();
  EXPECT_FALSE(LoadCsv(db, "R", "1,two\n").ok());
}

TEST(CsvTest, LoadRejectsDuplicateTuple) {
  Database db = TwoRelationDb();
  EXPECT_FALSE(LoadCsv(db, "R", "1,2\n1,2\n").ok());
}

TEST(CsvTest, RoundTrip) {
  Database db = TwoRelationDb();
  ASSERT_TRUE(LoadCsv(db, "R", "1,2\n3,4\n").ok());
  auto text = DumpCsv(db, "R");
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "1,2\n3,4\n");

  Database db2 = TwoRelationDb();
  ASSERT_TRUE(LoadCsv(db2, "R", *text).ok());
  EXPECT_EQ(db2.tuple_count(), 2);
}

TEST(CsvTest, DumpWithProvenance) {
  Database db = TwoRelationDb();
  CsvOptions opts;
  opts.with_provenance = true;
  ASSERT_TRUE(LoadCsv(db, "R", "1,2,3,4\n", opts).ok());
  auto text = DumpCsv(db, "R", opts);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "1,2,3,4\n");
}

}  // namespace
}  // namespace prefrep
