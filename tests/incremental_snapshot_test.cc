// The incremental-maintenance equivalence suite: Snapshot::Derive must be
// bit-for-bit indistinguishable from Snapshot::Create on the post-delta
// database — same conflict graph, same component decomposition, same
// repair enumerations, same verdicts and certain-answer sets across all
// five families, priority kinds and serial/sharded execution. Also pins
// the derived-session cache seeding contract (seeded answers == cold
// answers, surviving entries really hit) and Derive's cancellation
// cleanliness.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/exec_context.h"
#include "base/random.h"
#include "query/parser.h"
#include "relational/delta.h"
#include "server/session.h"
#include "server/snapshot.h"
#include "workload/generators.h"

namespace prefrep {
namespace {

std::unique_ptr<Query> MustParse(std::string_view text) {
  auto q = ParseQuery(text);
  CHECK(q.ok()) << q.status().ToString();
  return *std::move(q);
}

std::shared_ptr<const Snapshot> MustSnapshot(const GeneratedInstance& inst) {
  auto snapshot = Snapshot::Create(*inst.db, inst.fds);
  CHECK(snapshot.ok()) << snapshot.status().ToString();
  return *std::move(snapshot);
}

constexpr RepairFamily kAllFamilies[] = {
    RepairFamily::kAll, RepairFamily::kLocal, RepairFamily::kSemiGlobal,
    RepairFamily::kGlobal, RepairFamily::kCommon};

// A random delta over a MakeComponentsInstance / MakeRandomInstance
// database: each base tuple deleted with probability `delete_p`, plus up
// to `insert_attempts` random R(K, V, W)-shaped inserts reusing small
// numeric values so some land in existing key groups (fresh conflicts) and
// duplicates get rejected naturally.
DatabaseDelta RandomDelta(Rng& rng, const Database& db, double delete_p,
                          int insert_attempts, int domain) {
  DatabaseDelta delta(&db);
  for (TupleId id = 0; id < db.tuple_count(); ++id) {
    if (rng.UniformDouble() < delete_p) CHECK(delta.Delete(id).ok());
  }
  const Schema& schema = db.relations()[0].schema();
  for (int i = 0; i < insert_attempts; ++i) {
    std::vector<Value> values;
    values.reserve(schema.arity());
    for (int a = 0; a < schema.arity(); ++a) {
      values.emplace_back(Value::Number(rng.UniformInt(domain)));
    }
    (void)delta.Insert(schema.relation_name(), Tuple(std::move(values)));
  }
  return delta;
}

// Structural equality of two snapshots over the same logical database
// version: databases, conflict graphs, decompositions (including each
// component's induced local graph) must agree exactly.
void ExpectSameSnapshot(const Snapshot& derived, const Snapshot& rebuilt) {
  // Database.
  ASSERT_EQ(derived.db().tuple_count(), rebuilt.db().tuple_count());
  for (TupleId id = 0; id < derived.db().tuple_count(); ++id) {
    ASSERT_EQ(derived.db().RelationIndexOf(id), rebuilt.db().RelationIndexOf(id));
    ASSERT_EQ(derived.db().RowOf(id), rebuilt.db().RowOf(id));
    ASSERT_TRUE(derived.db().TupleOf(id) == rebuilt.db().TupleOf(id));
  }
  // Conflict graph: the edge list is normalized and sorted in both, so
  // equality really is bit-for-bit. The adjacency rows are compared
  // separately because DeriveFrom assembles them from shared parent rows
  // plus fresh rows — the edge list alone would not catch a wrongly
  // shared (stale) row. Compared as neighbor SETS, not raw bitsets: a
  // shared row of a derived graph may be RAGGED (sized to the parent
  // universe); ToVector also flags any stray bit outside the child
  // universe, which would have no counterpart in the rebuilt row.
  EXPECT_EQ(derived.graph().edges(), rebuilt.graph().edges());
  ASSERT_EQ(derived.graph().vertex_count(), rebuilt.graph().vertex_count());
  for (int v = 0; v < derived.graph().vertex_count(); ++v) {
    EXPECT_EQ(derived.graph().Neighbors(v).ToVector(),
              rebuilt.graph().Neighbors(v).ToVector())
        << "adjacency mismatch at vertex " << v;
  }
  // Decomposition.
  const ComponentDecomposition& a = derived.decomposition();
  const ComponentDecomposition& b = rebuilt.decomposition();
  EXPECT_TRUE(a.isolated() == b.isolated());
  ASSERT_EQ(a.components().size(), b.components().size());
  for (size_t c = 0; c < a.components().size(); ++c) {
    EXPECT_EQ(a.components()[c].vertices, b.components()[c].vertices);
    EXPECT_EQ(a.components()[c].graph.edges(), b.components()[c].graph.edges());
  }
}

// ------------------------------------------------ structural identity --

TEST(SnapshotDeriveTest, RejectsDeltaStagedAgainstForeignDatabase) {
  Rng rng(1);
  GeneratedInstance inst = MakeComponentsInstance(rng, {3, 2});
  std::shared_ptr<const Snapshot> base = MustSnapshot(inst);
  // Staged against the generator's database, not the snapshot's copy.
  DatabaseDelta delta(inst.db.get());
  auto derived = Snapshot::Derive(base, delta);
  ASSERT_FALSE(derived.ok());
  EXPECT_EQ(derived.status().code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotDeriveTest, EmptyDeltaReproducesBase) {
  Rng rng(2);
  GeneratedInstance inst = MakeComponentsInstance(rng, {4, 3, 2});
  std::shared_ptr<const Snapshot> base = MustSnapshot(inst);
  DatabaseDelta delta(&base->db());
  auto derived = Snapshot::Derive(base, delta);
  ASSERT_TRUE(derived.ok()) << derived.status().ToString();
  ExpectSameSnapshot(**derived, *base);
  const SnapshotDeltaInfo* info = (*derived)->delta_info();
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->parent_id, base->id());
  EXPECT_TRUE(info->domain_preserved);
  EXPECT_EQ(info->rebuilt_components, 0);
  EXPECT_TRUE(info->dirty_parent_components.empty());
  EXPECT_EQ(info->first_shifted_id, base->db().tuple_count());
}

TEST(SnapshotDeriveTest, UntouchedRelationsShareStorageWithParent) {
  // Mgr scenario has one relation; build a two-relation database by hand.
  Database db;
  auto r = Schema::Create("R", {Attribute{"K", ValueType::kNumber},
                                Attribute{"V", ValueType::kNumber}});
  auto s = Schema::Create("S", {Attribute{"A", ValueType::kNumber}});
  CHECK(r.ok() && s.ok());
  CHECK(db.AddRelation(*r).ok());
  CHECK(db.AddRelation(*s).ok());
  for (int i = 0; i < 3; ++i) {
    CHECK(db.Insert("R", Tuple::Of(Value::Number(0), Value::Number(i))).ok());
    CHECK(db.Insert("S", Tuple::Of(Value::Number(i))).ok());
  }
  auto fd = FunctionalDependency::CreateByName(*r, {"K"}, {"V"});
  ASSERT_TRUE(fd.ok());
  auto base = Snapshot::Create(std::move(db), {*fd});
  ASSERT_TRUE(base.ok());

  DatabaseDelta delta(&(*base)->db());
  ASSERT_TRUE(delta.Insert("S", Tuple::Of(Value::Number(3))).ok());
  auto derived = Snapshot::Derive(*base, delta);
  ASSERT_TRUE(derived.ok()) << derived.status().ToString();
  // R untouched by the delta: shares storage. S rebuilt.
  EXPECT_TRUE((*derived)->db().relations()[0].SharesStorageWith(
      (*base)->db().relations()[0]));
  EXPECT_FALSE((*derived)->db().relations()[1].SharesStorageWith(
      (*base)->db().relations()[1]));
  // The delta only touched conflict-free S: every component carried.
  const SnapshotDeltaInfo* info = (*derived)->delta_info();
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->rebuilt_components, 0);
  EXPECT_EQ(info->carried_components,
            static_cast<int>((*base)->decomposition().components().size()));
  EXPECT_NE((*derived)->Describe().find("delta from #"), std::string::npos);
}

TEST(SnapshotDeriveTest, RandomizedDeriveMatchesCreateStructurally) {
  Rng rng(20260808);
  for (int round = 0; round < 20; ++round) {
    GeneratedInstance inst =
        (round % 2 == 0)
            ? MakeComponentsInstance(rng, /*components=*/5, /*min_size=*/1,
                                     /*max_size=*/5)
            : MakeRandomInstance(rng, /*tuple_target=*/30, /*arity=*/3,
                                 /*domain_size=*/6, /*fd_count=*/2);
    std::shared_ptr<const Snapshot> base = MustSnapshot(inst);
    DatabaseDelta delta =
        RandomDelta(rng, base->db(), /*delete_p=*/0.15, /*insert_attempts=*/6,
                    /*domain=*/8);
    auto derived = Snapshot::Derive(base, delta);
    ASSERT_TRUE(derived.ok()) << derived.status().ToString();
    auto rebuilt = Snapshot::Create(*delta.ApplyNaive(), base->fds());
    ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
    ExpectSameSnapshot(**derived, **rebuilt);
    // Reuse accounting is consistent.
    const SnapshotDeltaInfo* info = (*derived)->delta_info();
    ASSERT_NE(info, nullptr);
    EXPECT_EQ(info->carried_components + info->rebuilt_components,
              static_cast<int>((*derived)->decomposition().components().size()));
  }
}

TEST(SnapshotDeriveTest, BalancedTailDeltaSharesIdentityAdjacency) {
  // Replace-style deltas (equal delete/insert counts) confined to the last
  // relation keep the tuple universe size fixed, so DeriveFrom can share
  // the adjacency bitsets of every untouched tuple with the parent graph.
  // Randomized rounds: delete a random-size tail of the last relation,
  // insert the same number of fresh tuples into it, and check (a) the
  // derived graph is bit-for-bit the rebuilt graph and (b) every vertex
  // below the delta's reach with an unchanged neighborhood shares its
  // bitset with the parent.
  Rng rng(20260809);
  for (int round = 0; round < 8; ++round) {
    GeneratedInstance inst = MakeMultiRelationComponentsInstance(
        rng, /*relations=*/3, /*groups_per_relation=*/4, /*min_size=*/2,
        /*max_size=*/5);
    std::shared_ptr<const Snapshot> base = MustSnapshot(inst);
    const int n = base->db().tuple_count();
    const int ops = 1 + static_cast<int>(rng.UniformInt(4));
    DatabaseDelta delta(&base->db());
    for (int i = 0; i < ops; ++i) {
      ASSERT_TRUE(delta.Delete(static_cast<TupleId>(n - 1 - i)).ok());
    }
    for (int i = 0; i < ops; ++i) {
      ASSERT_TRUE(delta
                      .Insert("R2", Tuple::Of(Value::Number(rng.UniformInt(4)),
                                              Value::Number(0),
                                              Value::Number(1000 + i)))
                      .ok());
    }
    auto derived = Snapshot::Derive(base, delta);
    ASSERT_TRUE(derived.ok()) << derived.status().ToString();
    auto rebuilt = Snapshot::Create(*delta.ApplyNaive(), base->fds());
    ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
    ExpectSameSnapshot(**derived, **rebuilt);

    // Sharing engaged: same universe size, so every identity vertex whose
    // neighborhood survived untouched reuses the parent's heap bitset.
    ASSERT_EQ((*derived)->graph().vertex_count(), n);
    const int first_shifted = (*derived)->delta_info()->first_shifted_id;
    EXPECT_EQ(first_shifted, n - ops);
    int shared = 0;
    for (int v = 0; v < first_shifted; ++v) {
      if ((*derived)->graph().SharesAdjacencyWith(base->graph(), v)) {
        ++shared;
      } else {
        // A non-shared identity vertex must be genuinely dirty: adjacent
        // (in either version) to the delta's reach.
        EXPECT_TRUE(
            base->graph().Neighbors(v) != (*derived)->graph().Neighbors(v) ||
            [&] {
              for (int w = first_shifted; w < n; ++w) {
                if (base->graph().HasEdge(v, w) ||
                    (*derived)->graph().HasEdge(v, w)) {
                  return true;
                }
              }
              return false;
            }())
            << "vertex " << v << " rebuilt without cause";
      }
    }
    // The two untouched relations alone put most vertices in the shared
    // region.
    EXPECT_GT(shared, first_shifted / 2);
  }
}

// Number of identity-region vertices ([0, first_shifted)) whose adjacency
// bitset is the parent's heap object, plus a per-vertex audit that every
// NON-shared identity vertex is genuinely dirty (its neighborhood differs
// between the versions, comparing as sets since rows may be ragged).
int CountSharedIdentityRows(const Snapshot& derived, const Snapshot& base,
                            int first_shifted) {
  int shared = 0;
  for (int v = 0; v < first_shifted; ++v) {
    if (derived.graph().SharesAdjacencyWith(base.graph(), v)) {
      ++shared;
    } else {
      EXPECT_NE(base.graph().Neighbors(v).ToVector(),
                derived.graph().Neighbors(v).ToVector())
          << "vertex " << v << " rebuilt without cause";
    }
  }
  return shared;
}

TEST(SnapshotDeriveTest, InsertOnlyDeltaSharesCleanAdjacency) {
  // Insert-only deltas grow the universe; every pre-existing id is
  // identity-mapped (first_shifted == old count), so all clean rows must
  // be shared with the parent and read zero-extended over the larger
  // child universe.
  Rng rng(20260810);
  for (int round = 0; round < 8; ++round) {
    GeneratedInstance inst = MakeMultiRelationComponentsInstance(
        rng, /*relations=*/3, /*groups_per_relation=*/4, /*min_size=*/2,
        /*max_size=*/5);
    std::shared_ptr<const Snapshot> base = MustSnapshot(inst);
    const int n = base->db().tuple_count();
    const int ops = 1 + static_cast<int>(rng.UniformInt(5));
    DatabaseDelta delta(&base->db());
    for (int i = 0; i < ops; ++i) {
      ASSERT_TRUE(delta
                      .Insert("R1", Tuple::Of(Value::Number(rng.UniformInt(4)),
                                              Value::Number(0),
                                              Value::Number(2000 + i)))
                      .ok());
    }
    auto derived = Snapshot::Derive(base, delta);
    ASSERT_TRUE(derived.ok()) << derived.status().ToString();
    auto rebuilt = Snapshot::Create(*delta.ApplyNaive(), base->fds());
    ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
    ExpectSameSnapshot(**derived, **rebuilt);

    ASSERT_EQ((*derived)->graph().vertex_count(), n + ops);
    const int first_shifted = (*derived)->delta_info()->first_shifted_id;
    EXPECT_EQ(first_shifted, n);  // nothing deleted, nothing renumbered
    const int shared = CountSharedIdentityRows(**derived, *base, first_shifted);
    // The inserts land in one relation's key groups; the two untouched
    // relations alone keep a clean majority.
    EXPECT_GT(shared, n / 2);
  }
}

TEST(SnapshotDeriveTest, DeleteOnlyTailDeltaSharesCleanAdjacency) {
  // Tail deletions shrink the universe; ids below the first deleted id
  // are identity-mapped, and their clean rows — sized to the LARGER
  // parent universe — are shared and read truncated.
  Rng rng(20260811);
  for (int round = 0; round < 8; ++round) {
    GeneratedInstance inst = MakeMultiRelationComponentsInstance(
        rng, /*relations=*/3, /*groups_per_relation=*/4, /*min_size=*/2,
        /*max_size=*/5);
    std::shared_ptr<const Snapshot> base = MustSnapshot(inst);
    const int n = base->db().tuple_count();
    const int ops = 1 + static_cast<int>(rng.UniformInt(5));
    DatabaseDelta delta(&base->db());
    for (int i = 0; i < ops; ++i) {
      ASSERT_TRUE(delta.Delete(static_cast<TupleId>(n - 1 - i)).ok());
    }
    auto derived = Snapshot::Derive(base, delta);
    ASSERT_TRUE(derived.ok()) << derived.status().ToString();
    auto rebuilt = Snapshot::Create(*delta.ApplyNaive(), base->fds());
    ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
    ExpectSameSnapshot(**derived, **rebuilt);

    ASSERT_EQ((*derived)->graph().vertex_count(), n - ops);
    const int first_shifted = (*derived)->delta_info()->first_shifted_id;
    EXPECT_EQ(first_shifted, n - ops);
    const int shared = CountSharedIdentityRows(**derived, *base, first_shifted);
    EXPECT_GT(shared, first_shifted / 2);
  }
}

TEST(SnapshotDeriveTest, DeleteOnlyScatteredDeltaSharesPrefixAdjacency) {
  // Scattered deletions renumber everything past the FIRST deleted id, so
  // sharing is confined to the prefix before it — keep the deletions in
  // the upper half to make that prefix (and its sharing) non-trivial, and
  // let the equivalence check cover the renumbered remainder.
  Rng rng(20260812);
  for (int round = 0; round < 8; ++round) {
    GeneratedInstance inst = MakeMultiRelationComponentsInstance(
        rng, /*relations=*/3, /*groups_per_relation=*/4, /*min_size=*/2,
        /*max_size=*/5);
    std::shared_ptr<const Snapshot> base = MustSnapshot(inst);
    const int n = base->db().tuple_count();
    std::vector<TupleId> victims;
    for (TupleId id = n / 2; id < n; ++id) {
      if (rng.UniformDouble() < 0.2) victims.push_back(id);
    }
    if (victims.empty()) victims.push_back(n / 2 + 1);
    DatabaseDelta delta(&base->db());
    for (TupleId id : victims) ASSERT_TRUE(delta.Delete(id).ok());
    auto derived = Snapshot::Derive(base, delta);
    ASSERT_TRUE(derived.ok()) << derived.status().ToString();
    auto rebuilt = Snapshot::Create(*delta.ApplyNaive(), base->fds());
    ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
    ExpectSameSnapshot(**derived, **rebuilt);

    const int first_shifted = (*derived)->delta_info()->first_shifted_id;
    EXPECT_EQ(first_shifted, static_cast<int>(victims.front()));
    const int shared = CountSharedIdentityRows(**derived, *base, first_shifted);
    EXPECT_GT(shared, 0);
  }
}

TEST(SnapshotDeriveTest, SkewedMixedDeltaSharesCleanAdjacency) {
  // Unequal delete/insert counts (the shapes PR 9 rebuilt from scratch):
  // a couple of upper-half deletions plus a larger batch of inserts.
  Rng rng(20260813);
  for (int round = 0; round < 8; ++round) {
    GeneratedInstance inst = MakeMultiRelationComponentsInstance(
        rng, /*relations=*/3, /*groups_per_relation=*/4, /*min_size=*/2,
        /*max_size=*/5);
    std::shared_ptr<const Snapshot> base = MustSnapshot(inst);
    const int n = base->db().tuple_count();
    DatabaseDelta delta(&base->db());
    const int deletes = 1 + static_cast<int>(rng.UniformInt(2));
    for (int i = 0; i < deletes; ++i) {
      ASSERT_TRUE(delta.Delete(static_cast<TupleId>(n - 1 - 2 * i)).ok());
    }
    const int inserts = deletes + 2 + static_cast<int>(rng.UniformInt(3));
    for (int i = 0; i < inserts; ++i) {
      ASSERT_TRUE(delta
                      .Insert("R0", Tuple::Of(Value::Number(rng.UniformInt(4)),
                                              Value::Number(0),
                                              Value::Number(3000 + i)))
                      .ok());
    }
    ASSERT_NE(delta.insert_count(), delta.delete_count());
    auto derived = Snapshot::Derive(base, delta);
    ASSERT_TRUE(derived.ok()) << derived.status().ToString();
    auto rebuilt = Snapshot::Create(*delta.ApplyNaive(), base->fds());
    ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
    ExpectSameSnapshot(**derived, **rebuilt);

    const int first_shifted = (*derived)->delta_info()->first_shifted_id;
    ASSERT_GT(first_shifted, 0);
    EXPECT_GT(CountSharedIdentityRows(**derived, *base, first_shifted), 0);
  }
}

TEST(SnapshotDeriveTest, FreshEdgeMergingTwoComponentsKeepsCountsSane) {
  // One inserted tuple conflicting into two distinct parent components
  // (via two different FDs) merges them: the child has FEWER non-trivial
  // components than the parent lost. rebuilt_components must count the
  // child components actually BFS-built (here: the single merged one),
  // never a negative set difference.
  Database db;
  auto r = Schema::Create("R", {Attribute{"A", ValueType::kNumber},
                                Attribute{"B", ValueType::kNumber},
                                Attribute{"C", ValueType::kNumber}});
  CHECK(r.ok());
  CHECK(db.AddRelation(*r).ok());
  // Component X: same A=1, differing B (FD A->B).
  CHECK(db.Insert("R", Tuple::Of(Value::Number(1), Value::Number(0),
                                 Value::Number(7))).ok());
  CHECK(db.Insert("R", Tuple::Of(Value::Number(1), Value::Number(1),
                                 Value::Number(8))).ok());
  // Component Y: same C=9, differing B (FD C->B).
  CHECK(db.Insert("R", Tuple::Of(Value::Number(2), Value::Number(0),
                                 Value::Number(9))).ok());
  CHECK(db.Insert("R", Tuple::Of(Value::Number(3), Value::Number(1),
                                 Value::Number(9))).ok());
  auto fd_ab = FunctionalDependency::CreateByName(*r, {"A"}, {"B"});
  auto fd_cb = FunctionalDependency::CreateByName(*r, {"C"}, {"B"});
  ASSERT_TRUE(fd_ab.ok() && fd_cb.ok());
  auto base = Snapshot::Create(std::move(db), {*fd_ab, *fd_cb});
  ASSERT_TRUE(base.ok());
  ASSERT_EQ((*base)->decomposition().components().size(), 2u);

  // Bridges X (A=1, B=2) and Y (C=9, B=2).
  DatabaseDelta delta(&(*base)->db());
  ASSERT_TRUE(delta.Insert("R", Tuple::Of(Value::Number(1), Value::Number(2),
                                          Value::Number(9))).ok());
  auto derived = Snapshot::Derive(*base, delta);
  ASSERT_TRUE(derived.ok()) << derived.status().ToString();
  auto rebuilt = Snapshot::Create(*delta.ApplyNaive(), (*base)->fds());
  ASSERT_TRUE(rebuilt.ok());
  ExpectSameSnapshot(**derived, **rebuilt);

  ASSERT_EQ((*derived)->decomposition().components().size(), 1u);
  EXPECT_EQ((*derived)->decomposition().components()[0].vertices.size(), 5u);
  const SnapshotDeltaInfo* info = (*derived)->delta_info();
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->rebuilt_components, 1);
  EXPECT_EQ(info->carried_components, 0);
  EXPECT_GE(info->rebuilt_components, 0);
  EXPECT_EQ(info->dirty_parent_components.size(), 2u);
  // ToString renders the merge as 1/1 components rebuilt, never negative.
  EXPECT_NE(info->ToString().find("1/1 components rebuilt"),
            std::string::npos);
}

// ------------------------------------------- answer-level equivalence --

TEST(SnapshotDeriveTest, RandomizedAnswersMatchAcrossFamiliesAndPriorities) {
  Rng rng(7);
  std::vector<std::unique_ptr<Query>> queries;
  queries.push_back(MustParse("exists x, y, z . R(x, y, z)"));
  queries.push_back(MustParse("exists x, z . R(x, 0, z)"));
  queries.push_back(MustParse("R(x, y, z)"));  // open

  for (int round = 0; round < 4; ++round) {
    GeneratedInstance inst =
        MakeComponentsInstance(rng, /*components=*/4, /*min_size=*/2,
                               /*max_size=*/4);
    std::shared_ptr<const Snapshot> base = MustSnapshot(inst);
    DatabaseDelta delta =
        RandomDelta(rng, base->db(), /*delete_p=*/0.2, /*insert_attempts=*/4,
                    /*domain=*/6);
    auto derived_or = Snapshot::Derive(base, delta);
    ASSERT_TRUE(derived_or.ok()) << derived_or.status().ToString();
    auto rebuilt_or = Snapshot::Create(*delta.ApplyNaive(), base->fds());
    ASSERT_TRUE(rebuilt_or.ok());
    Session derived(*derived_or);
    Session rebuilt(*rebuilt_or);

    std::vector<Priority> priorities;
    priorities.push_back(Priority::Empty((*derived_or)->graph()));
    priorities.push_back(
        RandomRankingPriority(rng, (*derived_or)->graph(), 0.6));
    priorities.push_back(RandomDagPriority(rng, (*derived_or)->graph(), 0.6));

    for (const Priority& priority : priorities) {
      for (RepairFamily family : kAllFamilies) {
        // Repair enumeration, serial vs sharded.
        for (int threads : {1, 4}) {
          EvalOptions options;
          options.threads = threads;
          auto from_derived = derived.Repairs(priority, family, options);
          auto from_rebuilt = rebuilt.Repairs(priority, family, options);
          ASSERT_TRUE(from_derived.ok() && from_rebuilt.ok());
          EXPECT_EQ(*from_derived, *from_rebuilt);
        }
        // Verdicts and certain answers.
        for (const auto& query : queries) {
          if (query->FreeVariables().empty()) {
            auto a = derived.Ask(*query, priority, family, {});
            auto b = rebuilt.Ask(*query, priority, family, {});
            ASSERT_TRUE(a.ok() && b.ok());
            EXPECT_EQ(*a, *b);
          } else {
            auto a = derived.Answers(*query, priority, family, {});
            auto b = rebuilt.Answers(*query, priority, family, {});
            ASSERT_TRUE(a.ok() && b.ok());
            EXPECT_EQ(a->variables, b->variables);
            EXPECT_EQ(a->rows, b->rows);
          }
        }
      }
    }
  }
}

// ---------------------------------------------------- session seeding --

// Two-relation fixture for seeding tests: conflicts live in R, S is a
// spectator the delta can touch without invalidating R-only footprints.
struct SeedFixture {
  std::shared_ptr<const Snapshot> base;
};

SeedFixture MakeSeedFixture() {
  Database db;
  auto r = Schema::Create("R", {Attribute{"K", ValueType::kNumber},
                                Attribute{"V", ValueType::kNumber}});
  auto s = Schema::Create("S", {Attribute{"A", ValueType::kNumber},
                                Attribute{"B", ValueType::kNumber}});
  CHECK(r.ok() && s.ok());
  CHECK(db.AddRelation(*r).ok());
  CHECK(db.AddRelation(*s).ok());
  // Three key groups of two conflicting tuples each.
  for (int k = 0; k < 3; ++k) {
    CHECK(db.Insert("R", Tuple::Of(Value::Number(k), Value::Number(0))).ok());
    CHECK(db.Insert("R", Tuple::Of(Value::Number(k), Value::Number(1))).ok());
  }
  for (int i = 0; i < 3; ++i) {
    CHECK(db.Insert("S", Tuple::Of(Value::Number(i), Value::Number(i))).ok());
  }
  auto fd = FunctionalDependency::CreateByName(*r, {"K"}, {"V"});
  CHECK(fd.ok());
  auto base = Snapshot::Create(std::move(db), {*fd});
  CHECK(base.ok());
  return SeedFixture{*base};
}

TEST(SessionSeedingTest, ResultsSurviveSpectatorRelationDelta) {
  SeedFixture fx = MakeSeedFixture();
  Session parent(fx.base);
  Priority empty = Priority::Empty(fx.base->graph());
  auto closed = MustParse("exists x, y . R(x, y)");
  auto open = MustParse("R(x, y)");
  auto parent_verdict = parent.Ask(*closed, empty, RepairFamily::kAll, {});
  auto parent_answers = parent.Answers(*open, empty, RepairFamily::kAll, {});
  ASSERT_TRUE(parent_verdict.ok() && parent_answers.ok());

  // Delta touches only S, with a fresh combination of already-resident
  // values: ids stable (appends only), domain preserved, R untouched.
  DatabaseDelta delta(&fx.base->db());
  ASSERT_TRUE(
      delta.Insert("S", Tuple::Of(Value::Number(0), Value::Number(1))).ok());
  auto derived_or = Snapshot::Derive(fx.base, delta);
  ASSERT_TRUE(derived_or.ok()) << derived_or.status().ToString();

  Session seeded(*derived_or, parent);
  SessionCacheStats stats = seeded.cache_stats();
  EXPECT_GE(stats.seeded_plans, 2u);
  EXPECT_EQ(stats.seeded_results, 2u);
  EXPECT_EQ(stats.seed_dropped, 0u);

  // The seeded entries really hit, and agree with a cold session.
  Session cold(*derived_or);
  bool hit = false;
  auto seeded_verdict =
      seeded.Ask(*closed, empty, RepairFamily::kAll, {}, nullptr, &hit);
  ASSERT_TRUE(seeded_verdict.ok());
  EXPECT_TRUE(hit);
  auto cold_verdict = cold.Ask(*closed, empty, RepairFamily::kAll, {});
  ASSERT_TRUE(cold_verdict.ok());
  EXPECT_EQ(*seeded_verdict, *cold_verdict);
  EXPECT_EQ(*seeded_verdict, *parent_verdict);

  auto seeded_answers =
      seeded.Answers(*open, empty, RepairFamily::kAll, {}, nullptr, &hit);
  ASSERT_TRUE(seeded_answers.ok());
  EXPECT_TRUE(hit);
  auto cold_answers = cold.Answers(*open, empty, RepairFamily::kAll, {});
  ASSERT_TRUE(cold_answers.ok());
  EXPECT_EQ(seeded_answers->rows, cold_answers->rows);
  EXPECT_EQ(stats.result_hits, 0u);  // stats snapshot was taken before
  EXPECT_GE(seeded.cache_stats().result_hits, 2u);
}

TEST(SessionSeedingTest, ResultsDropWhenFootprintRelationTouched) {
  SeedFixture fx = MakeSeedFixture();
  Session parent(fx.base);
  Priority empty = Priority::Empty(fx.base->graph());
  auto closed = MustParse("exists x, y . R(x, y)");
  ASSERT_TRUE(parent.Ask(*closed, empty, RepairFamily::kAll, {}).ok());

  // Another tuple in R's key group 0: R's footprint is invalidated.
  DatabaseDelta delta(&fx.base->db());
  ASSERT_TRUE(
      delta.Insert("R", Tuple::Of(Value::Number(0), Value::Number(2))).ok());
  auto derived_or = Snapshot::Derive(fx.base, delta);
  ASSERT_TRUE(derived_or.ok());

  Session seeded(*derived_or, parent);
  SessionCacheStats stats = seeded.cache_stats();
  EXPECT_EQ(stats.seeded_results, 0u);
  EXPECT_GE(stats.seed_dropped, 1u);
  // Still answers correctly, just cold.
  bool hit = true;
  auto verdict =
      seeded.Ask(*closed, empty, RepairFamily::kAll, {}, nullptr, &hit);
  ASSERT_TRUE(verdict.ok());
  EXPECT_FALSE(hit);
  Session cold(*derived_or);
  auto cold_verdict = cold.Ask(*closed, empty, RepairFamily::kAll, {});
  ASSERT_TRUE(cold_verdict.ok());
  EXPECT_EQ(*verdict, *cold_verdict);
}

TEST(SessionSeedingTest, ResultsDropWhenDomainChanges) {
  SeedFixture fx = MakeSeedFixture();
  Session parent(fx.base);
  Priority empty = Priority::Empty(fx.base->graph());
  auto closed = MustParse("exists x, y . R(x, y)");
  ASSERT_TRUE(parent.Ask(*closed, empty, RepairFamily::kAll, {}).ok());

  // A brand-new value in spectator S: R untouched, but quantifier domains
  // range over the whole database's active domain, so nothing survives.
  DatabaseDelta delta(&fx.base->db());
  ASSERT_TRUE(
      delta.Insert("S", Tuple::Of(Value::Number(999), Value::Number(0))).ok());
  auto derived_or = Snapshot::Derive(fx.base, delta);
  ASSERT_TRUE(derived_or.ok());
  ASSERT_FALSE((*derived_or)->delta_info()->domain_preserved);

  Session seeded(*derived_or, parent);
  EXPECT_EQ(seeded.cache_stats().seeded_results, 0u);
  EXPECT_GE(seeded.cache_stats().seed_dropped, 1u);
}

TEST(SessionSeedingTest, RandomizedSeededAgreesWithCold) {
  Rng rng(31);
  for (int round = 0; round < 6; ++round) {
    GeneratedInstance inst =
        MakeComponentsInstance(rng, /*components=*/4, /*min_size=*/2,
                               /*max_size=*/4);
    std::shared_ptr<const Snapshot> base = MustSnapshot(inst);
    Session parent(base);
    std::vector<std::unique_ptr<Query>> queries;
    queries.push_back(MustParse("exists x, y, z . R(x, y, z)"));
    queries.push_back(MustParse("exists x, z . R(x, 1, z)"));
    queries.push_back(MustParse("R(x, y, z)"));
    Priority empty = Priority::Empty(base->graph());
    for (const auto& query : queries) {
      for (RepairFamily family : kAllFamilies) {
        if (query->FreeVariables().empty()) {
          ASSERT_TRUE(parent.Ask(*query, empty, family, {}).ok());
        } else {
          ASSERT_TRUE(parent.Answers(*query, empty, family, {}).ok());
        }
      }
    }
    DatabaseDelta delta =
        RandomDelta(rng, base->db(), /*delete_p=*/0.15, /*insert_attempts=*/3,
                    /*domain=*/6);
    auto derived_or = Snapshot::Derive(base, delta);
    ASSERT_TRUE(derived_or.ok());
    Session seeded(*derived_or, parent);
    Session cold(*derived_or);
    for (const auto& query : queries) {
      for (RepairFamily family : kAllFamilies) {
        if (query->FreeVariables().empty()) {
          auto a = seeded.Ask(*query, empty, family, {});
          auto b = cold.Ask(*query, empty, family, {});
          ASSERT_TRUE(a.ok() && b.ok());
          EXPECT_EQ(*a, *b);
        } else {
          auto a = seeded.Answers(*query, empty, family, {});
          auto b = cold.Answers(*query, empty, family, {});
          ASSERT_TRUE(a.ok() && b.ok());
          EXPECT_EQ(a->variables, b->variables);
          EXPECT_EQ(a->rows, b->rows);
        }
      }
    }
  }
}

// -------------------------------------------------------- cancellation --

TEST(SnapshotDeriveTest, CancelledDeriveIsCleanAndRerunnable) {
  Rng rng(47);
  GeneratedInstance inst = MakeComponentsInstance(rng, {5, 4, 3, 2});
  std::shared_ptr<const Snapshot> base = MustSnapshot(inst);
  const std::string base_before = base->Describe();
  DatabaseDelta delta =
      RandomDelta(rng, base->db(), /*delete_p=*/0.25, /*insert_attempts=*/5,
                  /*domain=*/8);
  auto rebuilt = Snapshot::Create(*delta.ApplyNaive(), base->fds());
  ASSERT_TRUE(rebuilt.ok());

  // Cancel at every poll point until a run survives to completion.
  bool completed = false;
  for (int polls = 1; polls < 64 && !completed; ++polls) {
    ExecutionContext context;
    context.CancelAfterPolls(polls);
    auto derived = Snapshot::Derive(base, delta, &context);
    if (derived.ok()) {
      completed = true;
      ExpectSameSnapshot(**derived, **rebuilt);
    } else {
      EXPECT_EQ(derived.status().code(), StatusCode::kCancelled);
    }
    // The parent is untouched either way.
    EXPECT_EQ(base->Describe(), base_before);
  }
  EXPECT_TRUE(completed);
  // A rerun with no interference is bit-for-bit identical.
  auto rerun = Snapshot::Derive(base, delta);
  ASSERT_TRUE(rerun.ok());
  ExpectSameSnapshot(**rerun, **rebuilt);
}

TEST(SnapshotDeriveTest, CancelledUnbalancedDeriveIsCleanAndRerunnable) {
  // Same poll-point fuzz as above, but through the ragged adjacency
  // sharing path: insert-only (universe grows) and delete-only tail
  // (universe shrinks) deltas.
  Rng rng(53);
  GeneratedInstance inst = MakeMultiRelationComponentsInstance(
      rng, /*relations=*/3, /*groups_per_relation=*/4, /*min_size=*/2,
      /*max_size=*/5);
  std::shared_ptr<const Snapshot> base = MustSnapshot(inst);
  const int n = base->db().tuple_count();
  const std::string base_before = base->Describe();

  std::vector<DatabaseDelta> deltas;
  DatabaseDelta insert_only(&base->db());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(insert_only
                    .Insert("R1", Tuple::Of(Value::Number(i % 4),
                                            Value::Number(0),
                                            Value::Number(4000 + i)))
                    .ok());
  }
  deltas.push_back(std::move(insert_only));
  DatabaseDelta delete_only(&base->db());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(delete_only.Delete(static_cast<TupleId>(n - 1 - i)).ok());
  }
  deltas.push_back(std::move(delete_only));

  for (const DatabaseDelta& delta : deltas) {
    ASSERT_NE(delta.insert_count(), delta.delete_count());
    auto rebuilt = Snapshot::Create(*delta.ApplyNaive(), base->fds());
    ASSERT_TRUE(rebuilt.ok());
    bool completed = false;
    for (int polls = 1; polls < 64 && !completed; ++polls) {
      ExecutionContext context;
      context.CancelAfterPolls(polls);
      auto derived = Snapshot::Derive(base, delta, &context);
      if (derived.ok()) {
        completed = true;
        ExpectSameSnapshot(**derived, **rebuilt);
      } else {
        EXPECT_EQ(derived.status().code(), StatusCode::kCancelled);
      }
      EXPECT_EQ(base->Describe(), base_before);
    }
    EXPECT_TRUE(completed);
  }
}

}  // namespace
}  // namespace prefrep
