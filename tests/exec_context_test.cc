// Tests for base/exec_context.h (deadline / cancellation / budget
// governance) and base/failpoint.h (the test-only fault-injection
// registry).

#include "base/exec_context.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <new>
#include <stdexcept>
#include <thread>
#include <vector>

#include "base/failpoint.h"

namespace prefrep {
namespace {

TEST(ExecutionLimitsTest, DefaultsMatchLegacyBudgets) {
  ExecutionLimits limits;
  EXPECT_EQ(limits.component_list_budget_bytes, size_t{256} << 20);
  EXPECT_EQ(limits.max_dnf_disjuncts, size_t{65536});
  EXPECT_EQ(limits.max_dnf_literals, size_t{1} << 20);
  EXPECT_EQ(limits.max_repair_list, size_t{1} << 20);
}

TEST(ResourceArbiterTest, ChargeRefundAccounting) {
  ResourceArbiter arbiter(100);
  EXPECT_TRUE(arbiter.TryCharge(60));
  EXPECT_EQ(arbiter.used(), 60u);
  EXPECT_FALSE(arbiter.TryCharge(41));  // would exceed
  EXPECT_EQ(arbiter.used(), 60u);      // rejected charge leaves no trace
  EXPECT_TRUE(arbiter.TryCharge(40));
  EXPECT_EQ(arbiter.used(), 100u);
  arbiter.Refund(50);
  EXPECT_EQ(arbiter.used(), 50u);
  EXPECT_TRUE(arbiter.TryCharge(50));
}

TEST(ResourceArbiterTest, ZeroByteChargeAlwaysAdmitted) {
  ResourceArbiter arbiter(0);
  EXPECT_TRUE(arbiter.TryCharge(0));
  EXPECT_FALSE(arbiter.TryCharge(1));
}

TEST(ResourceArbiterTest, MirrorsChargesIntoStats) {
  ExecutionStats stats;
  ResourceArbiter arbiter(1000, &stats);
  ASSERT_TRUE(arbiter.TryCharge(400));
  ASSERT_TRUE(arbiter.TryCharge(300));
  arbiter.Refund(700);
  ASSERT_TRUE(arbiter.TryCharge(100));
  ExecutionStatsSnapshot snap = stats.Snapshot();
  EXPECT_EQ(snap.bytes_charged, 800u);  // cumulative admissions
  EXPECT_EQ(snap.peak_bytes, 700u);     // high-water of concurrent holds
}

TEST(ResourceArbiterTest, ConcurrentChargesNeverExceedLimit) {
  constexpr size_t kLimit = 10000;
  ResourceArbiter arbiter(kLimit);
  std::atomic<size_t> admitted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        if (arbiter.TryCharge(7)) {
          admitted.fetch_add(7, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_LE(arbiter.used(), kLimit);
  EXPECT_EQ(arbiter.used(), admitted.load());
}

TEST(ExecutionContextTest, FreshContextIsLive) {
  ExecutionContext context;
  EXPECT_FALSE(context.interrupted());
  EXPECT_FALSE(context.ShouldStop());
  EXPECT_TRUE(context.status().ok());
}

TEST(ExecutionContextTest, RequestCancelLatchesCancelled) {
  ExecutionContext context;
  context.RequestCancel();
  EXPECT_TRUE(context.interrupted());
  EXPECT_TRUE(context.ShouldStop());
  EXPECT_EQ(context.status().code(), StatusCode::kCancelled);
  // Latched: a second cancel or a later Fail cannot overwrite it.
  context.RequestCancel();
  context.Fail(Status::Internal("late"));
  EXPECT_EQ(context.status().code(), StatusCode::kCancelled);
}

TEST(ExecutionContextTest, ExpiredDeadlineTripsOnFirstPoll) {
  ExecutionContext context;
  context.set_deadline(ExecutionContext::Clock::now() -
                       std::chrono::milliseconds(1));
  EXPECT_TRUE(context.ShouldStop());
  EXPECT_EQ(context.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(ExecutionContextTest, FutureDeadlineExpires) {
  ExecutionContext context;
  context.SetDeadlineAfter(std::chrono::milliseconds(20));
  EXPECT_FALSE(context.ShouldStop());
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_TRUE(context.ShouldStop());
  EXPECT_EQ(context.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(ExecutionContextTest, FailLatchesStatusFirstInterruptWins) {
  ExecutionContext context;
  context.Fail(Status::Internal("worker exploded"));
  EXPECT_TRUE(context.interrupted());
  EXPECT_EQ(context.status().code(), StatusCode::kInternal);
  EXPECT_NE(context.status().message().find("worker exploded"),
            std::string::npos);
  context.RequestCancel();  // loses: already failed
  EXPECT_EQ(context.status().code(), StatusCode::kInternal);
}

TEST(ExecutionContextTest, CancelAfterPollsCancelsAtExactPoll) {
  ExecutionContext context;
  context.CancelAfterPolls(3);
  EXPECT_FALSE(context.ShouldStop());  // poll 1
  EXPECT_FALSE(context.ShouldStop());  // poll 2
  EXPECT_TRUE(context.ShouldStop());   // poll 3 -> cancel
  EXPECT_EQ(context.status().code(), StatusCode::kCancelled);
}

TEST(ExecutionContextTest, CancelAfterZeroPollsCancelsImmediately) {
  ExecutionContext context;
  context.CancelAfterPolls(0);
  EXPECT_TRUE(context.ShouldStop());
  EXPECT_EQ(context.status().code(), StatusCode::kCancelled);
}

TEST(ExecutionContextTest, PollCountCountsLivePolls) {
  ExecutionContext context;
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(context.ShouldStop());
  EXPECT_EQ(context.poll_count(), 5u);
  // interrupted() is not a poll.
  EXPECT_FALSE(context.interrupted());
  EXPECT_EQ(context.poll_count(), 5u);
}

TEST(ExecutionContextTest, StatusWithStatsEmbedsSnapshot) {
  ExecutionContext context;
  context.stats().AddRepairsExamined(42);
  context.RequestCancel();
  Status status = context.StatusWithStats();
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  EXPECT_NE(status.message().find("repairs=42"), std::string::npos);
}

TEST(ExecutionContextTest, StatsSnapshotRoundTrips) {
  ExecutionStats stats;
  stats.AddComponentsCompleted(2);
  stats.AddRepairsExamined(7);
  stats.OnCharge(100, 100);
  ExecutionStatsSnapshot snap = stats.Snapshot();
  EXPECT_EQ(snap.components_completed, 2u);
  EXPECT_EQ(snap.repairs_examined, 7u);
  EXPECT_EQ(snap.bytes_charged, 100u);
  EXPECT_EQ(snap.peak_bytes, 100u);
  EXPECT_FALSE(snap.ToString().empty());
}

TEST(ExecutionContextTest, ConcurrentCancelRaceLatchesExactlyOne) {
  // Hammer the latch from many threads; exactly one interrupt must win
  // and the terminal code must be stable afterwards.
  for (int round = 0; round < 20; ++round) {
    ExecutionContext context;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&context, t] {
        if (t % 2 == 0) {
          context.RequestCancel();
        } else {
          context.Fail(Status::Internal("racer"));
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    StatusCode code = context.status().code();
    EXPECT_TRUE(code == StatusCode::kCancelled ||
                code == StatusCode::kInternal);
    EXPECT_EQ(context.status().code(), code) << "terminal code changed";
  }
}

// ---------------------------------------------------------------------------
// Failpoint registry.

TEST(FailpointTest, DisarmedSiteIsFree) {
  // Always valid: PREFREP_FAILPOINT on an unarmed site is a no-op in
  // every build mode.
  PREFREP_FAILPOINT("exec_context_test.nosite");
}

TEST(FailpointTest, ArmedSiteFires) {
  if (!failpoint::kEnabled) GTEST_SKIP() << "failpoints compiled out";
  int fired = 0;
  failpoint::ScopedFailpoint fp("exec_context_test.fires",
                                [&fired] { ++fired; });
  PREFREP_FAILPOINT("exec_context_test.fires");
  PREFREP_FAILPOINT("exec_context_test.fires");
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(fp.hit_count(), 2u);
}

TEST(FailpointTest, SkipAndLimitWindowTheAction) {
  if (!failpoint::kEnabled) GTEST_SKIP() << "failpoints compiled out";
  int fired = 0;
  failpoint::Arm("exec_context_test.window", [&fired] { ++fired; },
                 /*skip=*/2, /*limit=*/1);
  for (int i = 0; i < 5; ++i) PREFREP_FAILPOINT("exec_context_test.window");
  failpoint::Disarm("exec_context_test.window");
  EXPECT_EQ(fired, 1);  // hits 1,2 skipped; hit 3 fires; limit exhausted
}

TEST(FailpointTest, ThrowingActionPropagates) {
  if (!failpoint::kEnabled) GTEST_SKIP() << "failpoints compiled out";
  failpoint::ScopedFailpoint fp("exec_context_test.throws", [] {
    throw std::bad_alloc();
  });
  EXPECT_THROW(PREFREP_FAILPOINT("exec_context_test.throws"),
               std::bad_alloc);
}

TEST(FailpointTest, DisarmAllClearsEverything) {
  if (!failpoint::kEnabled) GTEST_SKIP() << "failpoints compiled out";
  int fired = 0;
  failpoint::Arm("exec_context_test.a", [&fired] { ++fired; });
  failpoint::Arm("exec_context_test.b", [&fired] { ++fired; });
  failpoint::DisarmAll();
  PREFREP_FAILPOINT("exec_context_test.a");
  PREFREP_FAILPOINT("exec_context_test.b");
  EXPECT_EQ(fired, 0);
}

}  // namespace
}  // namespace prefrep
