// Tests for the component-decomposed enumeration engine: the decomposition
// itself, the lazy cross-product composition, and the load-bearing
// structural property behind src/core/families.cc — per-component
// enumeration composed via cross-product yields exactly the whole-graph
// repair set, for all five families, on randomized multi-component graphs.

#include <gtest/gtest.h>

#include <set>
#include <utility>
#include <vector>

#include "base/random.h"
#include "core/families.h"
#include "core/optimality.h"
#include "graph/components.h"
#include "graph/mis.h"
#include "priority/priority.h"
#include "repair/repair.h"
#include "workload/generators.h"

namespace prefrep {
namespace {

using SetOfSets = std::set<std::vector<int>>;

// A random graph of several small clusters whose global vertex ids are
// interleaved by a random permutation, so components are not contiguous
// id ranges. Clusters may themselves fall apart into several connected
// components — the decomposition under test must not care.
ConflictGraph RandomClusteredGraph(Rng& rng, int* out_vertex_count) {
  int clusters = static_cast<int>(rng.UniformRange(2, 4));
  std::vector<std::pair<int, int>> edges;
  std::vector<int> cluster_of;
  for (int c = 0; c < clusters; ++c) {
    int size = static_cast<int>(rng.UniformRange(1, 5));
    int base = static_cast<int>(cluster_of.size());
    for (int i = 0; i < size; ++i) cluster_of.push_back(c);
    for (int i = 0; i < size; ++i) {
      for (int j = i + 1; j < size; ++j) {
        if (rng.Bernoulli(0.5)) edges.emplace_back(base + i, base + j);
      }
    }
  }
  int n = static_cast<int>(cluster_of.size());
  std::vector<int> relabel = rng.Permutation(n);
  for (auto& [u, v] : edges) {
    u = relabel[u];
    v = relabel[v];
  }
  *out_vertex_count = n;
  return ConflictGraph(n, edges);
}

// Reference implementation by exhaustive subset search: all repairs, then
// the family filter via the (enumeration-free) per-repair checkers.
std::vector<DynamicBitset> BruteForceRepairs(const ConflictGraph& g) {
  int n = g.vertex_count();
  CHECK(n <= 20);
  std::vector<DynamicBitset> repairs;
  for (uint32_t mask = 0; mask < (uint32_t{1} << n); ++mask) {
    DynamicBitset s(n);
    for (int i = 0; i < n; ++i) {
      if ((mask >> i) & 1) s.Set(i);
    }
    if (g.IsMaximalIndependent(s)) repairs.push_back(std::move(s));
  }
  return repairs;
}

SetOfSets BruteForceFamily(const ConflictGraph& g, const Priority& p,
                           RepairFamily family) {
  std::vector<DynamicBitset> repairs = BruteForceRepairs(g);
  SetOfSets out;
  for (const DynamicBitset& r : repairs) {
    bool member = false;
    switch (family) {
      case RepairFamily::kAll:
        member = true;
        break;
      case RepairFamily::kLocal:
        member = IsLocallyOptimal(g, p, r);
        break;
      case RepairFamily::kSemiGlobal:
        member = IsSemiGloballyOptimal(g, p, r);
        break;
      case RepairFamily::kGlobal:
        member = IsGloballyOptimalAmong(p, r, repairs);
        break;
      case RepairFamily::kCommon:
        member = IsCommonRepair(g, p, r);
        break;
    }
    if (member) out.insert(r.ToVector());
  }
  return out;
}

SetOfSets EnumeratedFamily(const ConflictGraph& g, const Priority& p,
                           RepairFamily family) {
  SetOfSets out;
  bool complete = EnumeratePreferredRepairs(
      g, p, family, [&out](const DynamicBitset& r) {
        EXPECT_TRUE(out.insert(r.ToVector()).second)
            << "duplicate repair " << r.ToString();
        return true;
      });
  EXPECT_TRUE(complete);
  return out;
}

// Composes the family by hand: enumerate each component's family on its
// compact local graph under the projected priority, then cross-product.
SetOfSets ComposedFamily(const ConflictGraph& g, const Priority& p,
                         RepairFamily family) {
  ComponentDecomposition decomposition(g);
  std::vector<Priority> local = ProjectPriorities(decomposition, p);
  std::vector<std::vector<DynamicBitset>> choices;
  for (size_t c = 0; c < decomposition.components().size(); ++c) {
    auto members = PreferredRepairs(decomposition.components()[c].graph,
                                    local[c], family);
    CHECK(members.ok());
    choices.push_back(*std::move(members));
  }
  SetOfSets out;
  ComponentProductEnumerator product(decomposition, std::move(choices));
  product.Enumerate([&out](const DynamicBitset& r) {
    EXPECT_TRUE(out.insert(r.ToVector()).second);
    return true;
  });
  return out;
}

// ----------------------------------------------------- decomposition --

TEST(ComponentDecompositionTest, SplitsAndRemaps) {
  // {0,3} path-of-2 via 3-5, isolated 1, triangle 2-4-6... build explicit:
  // edges: 3-5, 2-4, 4-6, 2-6 → components {3,5}, {2,4,6}; isolated {0,1}.
  ConflictGraph g(7, {{3, 5}, {2, 4}, {4, 6}, {2, 6}});
  ComponentDecomposition d(g);
  ASSERT_EQ(d.components().size(), 2u);
  EXPECT_EQ(d.isolated().ToVector(), (std::vector<int>{0, 1}));
  EXPECT_EQ(d.components()[0].vertices, (std::vector<int>{2, 4, 6}));
  EXPECT_EQ(d.components()[1].vertices, (std::vector<int>{3, 5}));
  EXPECT_EQ(d.components()[0].graph.vertex_count(), 3);
  EXPECT_EQ(d.components()[0].graph.edge_count(), 3);
  EXPECT_EQ(d.components()[1].graph.edge_count(), 1);
  EXPECT_EQ(d.ComponentOf(4), 0);
  EXPECT_EQ(d.ComponentOf(5), 1);
  EXPECT_EQ(d.ComponentOf(0), -1);
  EXPECT_EQ(d.LocalIndex(6), 2);
  EXPECT_EQ(d.LocalIndex(3), 0);
}

TEST(ComponentDecompositionTest, ScatterGatherRoundTrip) {
  ConflictGraph g(6, {{1, 4}, {4, 5}});
  ComponentDecomposition d(g);
  ASSERT_EQ(d.components().size(), 1u);
  DynamicBitset local = DynamicBitset::FromIndices(3, {0, 2});  // {1, 5}
  DynamicBitset global(6);
  global.Set(0);  // outside the component: must survive Scatter
  d.Scatter(0, local, global);
  EXPECT_EQ(global.ToVector(), (std::vector<int>{0, 1, 5}));
  DynamicBitset back(3);
  d.Gather(0, global, back);
  EXPECT_EQ(back, local);
}

TEST(ComponentDecompositionTest, InducedSubgraphKeepsInternalEdgesOnly) {
  ConflictGraph g(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  ConflictGraph sub = InducedSubgraph(g, {1, 2, 4});
  EXPECT_EQ(sub.vertex_count(), 3);
  EXPECT_EQ(sub.edge_count(), 1);  // only 1-2 survives
  EXPECT_TRUE(sub.HasEdge(0, 1));
  EXPECT_FALSE(sub.HasEdge(1, 2));
}

TEST(ComponentDecompositionTest, PriorityProjectionRestrictsArcs) {
  ConflictGraph g(6, {{0, 2}, {2, 4}, {1, 5}});
  auto p = Priority::Create(g, {{0, 2}, {4, 2}, {5, 1}});
  ASSERT_TRUE(p.ok());
  ComponentDecomposition d(g);
  ASSERT_EQ(d.components().size(), 2u);  // {0,2,4} and {1,5}
  std::vector<Priority> local = ProjectPriorities(d, *p);
  ASSERT_EQ(local.size(), 2u);
  EXPECT_EQ(local[0].arcs(),
            (std::vector<std::pair<int, int>>{{0, 1}, {2, 1}}));
  EXPECT_EQ(local[1].arcs(), (std::vector<std::pair<int, int>>{{1, 0}}));
}

// ------------------------------------------------- product enumerator --

TEST(ComponentProductEnumeratorTest, EnumeratesFullProduct) {
  // Two disjoint edges + an isolated vertex: 2 x 2 combinations.
  ConflictGraph g(5, {{0, 3}, {1, 4}});
  ComponentDecomposition d(g);
  std::vector<std::vector<DynamicBitset>> choices;
  for (const GraphComponent& c : d.components()) {
    choices.push_back({DynamicBitset::FromIndices(2, {0}),
                       DynamicBitset::FromIndices(2, {1})});
    EXPECT_EQ(c.graph.vertex_count(), 2);
  }
  ComponentProductEnumerator product(d, std::move(choices));
  EXPECT_EQ(product.Count().ToString(), "4");
  SetOfSets seen;
  EXPECT_TRUE(product.Enumerate([&seen](const DynamicBitset& r) {
    EXPECT_TRUE(r.Test(2));  // isolated vertex in every output
    seen.insert(r.ToVector());
    return true;
  }));
  EXPECT_EQ(seen, (SetOfSets{{0, 1, 2}, {0, 2, 4}, {1, 2, 3}, {2, 3, 4}}));
}

TEST(ComponentProductEnumeratorTest, EarlyStopShortCircuits) {
  // 3 components x 4 singleton-ish lists: product 4^3 = 64; stop at 5.
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < 3; ++i) {
    // A 4-cycle has 4 repairs... use a path P4: repairs {0,2},{0,3},{1,3}.
    int b = 4 * i;
    edges.insert(edges.end(), {{b, b + 1}, {b + 1, b + 2}, {b + 2, b + 3}});
  }
  ConflictGraph g(12, edges);
  ComponentDecomposition d(g);
  ASSERT_EQ(d.components().size(), 3u);
  std::vector<std::vector<DynamicBitset>> choices;
  for (const GraphComponent& c : d.components()) {
    auto repairs = AllMaximalIndependentSets(c.graph);
    ASSERT_TRUE(repairs.ok());
    ASSERT_EQ(repairs->size(), 3u);
    choices.push_back(*std::move(repairs));
  }
  ComponentProductEnumerator product(d, std::move(choices));
  EXPECT_EQ(product.Count().ToString(), "27");
  int seen = 0;
  EXPECT_FALSE(product.Enumerate([&seen](const DynamicBitset&) {
    return ++seen < 5;
  }));
  EXPECT_EQ(seen, 5);
}

TEST(ComponentProductEnumeratorTest, EmptyChoiceListMakesEmptyProduct) {
  ConflictGraph g(4, {{0, 1}, {2, 3}});
  ComponentDecomposition d(g);
  std::vector<std::vector<DynamicBitset>> choices(2);
  choices[0].push_back(DynamicBitset::FromIndices(2, {0}));
  // choices[1] left empty.
  ComponentProductEnumerator product(d, std::move(choices));
  EXPECT_EQ(product.Count().ToString(), "0");
  int seen = 0;
  EXPECT_TRUE(product.Enumerate([&seen](const DynamicBitset&) {
    ++seen;
    return true;
  }));
  EXPECT_EQ(seen, 0);
}

TEST(ComponentProductEnumeratorTest, DisjointBoxesPartitionTheProduct) {
  // Same 3 x P4 setup as EarlyStopShortCircuits: 3 components with 3
  // repairs each, product 27. Partition the product the way the CQA shard
  // planner does — fix one digit entirely, split another into ranges,
  // leave the third unconstrained — and check the boxes' outputs union to
  // exactly the full enumeration with no repair visited twice.
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < 3; ++i) {
    int b = 4 * i;
    edges.insert(edges.end(), {{b, b + 1}, {b + 1, b + 2}, {b + 2, b + 3}});
  }
  ConflictGraph g(12, edges);
  ComponentDecomposition d(g);
  std::vector<std::vector<DynamicBitset>> choices;
  for (const GraphComponent& c : d.components()) {
    auto repairs = AllMaximalIndependentSets(c.graph);
    ASSERT_TRUE(repairs.ok());
    choices.push_back(*std::move(repairs));
  }
  ComponentProductEnumerator full(d, &choices);
  SetOfSets expected;
  EXPECT_TRUE(full.Enumerate([&expected](const DynamicBitset& r) {
    expected.insert(r.ToVector());
    return true;
  }));
  EXPECT_EQ(expected.size(), 27u);

  using DigitRange = ComponentProductEnumerator::DigitRange;
  SetOfSets seen;
  for (size_t i = 0; i < 3; ++i) {            // digit 0 fixed per index
    for (auto [lo, hi] : {std::pair<size_t, size_t>{0, 2}, {2, 3}}) {
      ComponentProductEnumerator box(d, &choices);
      EXPECT_TRUE(box.EnumerateSlices(
          {DigitRange{0, i, i + 1}, DigitRange{1, lo, hi}},
          [&seen](const DynamicBitset& r) {
            EXPECT_TRUE(seen.insert(r.ToVector()).second)
                << "repair visited by two boxes: " << r.ToString();
            return true;
          }));
    }
  }
  EXPECT_EQ(seen, expected);

  // An empty range makes the box a vacuously complete empty slice.
  ComponentProductEnumerator empty_box(d, &choices);
  EXPECT_TRUE(empty_box.EnumerateSlices({DigitRange{2, 1, 1}},
                                        [](const DynamicBitset&) {
                                          ADD_FAILURE() << "empty box emitted";
                                          return true;
                                        }));
}

// --------------------------------------------- composition property --

TEST(ComponentsPropertyTest, ComposedEnumerationMatchesWholeGraph) {
  Rng rng(20260729);
  for (int trial = 0; trial < 40; ++trial) {
    int n = 0;
    ConflictGraph g = RandomClusteredGraph(rng, &n);
    Priority priority = trial % 2 == 0
                            ? RandomRankingPriority(rng, g, 0.6)
                            : RandomDagPriority(rng, g, 0.7);
    for (RepairFamily family : kAllFamilies) {
      SetOfSets expected = BruteForceFamily(g, priority, family);
      SetOfSets enumerated = EnumeratedFamily(g, priority, family);
      SetOfSets composed = ComposedFamily(g, priority, family);
      EXPECT_EQ(enumerated, expected)
          << RepairFamilyName(family) << " trial " << trial
          << " enumerated != brute force";
      EXPECT_EQ(composed, expected)
          << RepairFamilyName(family) << " trial " << trial
          << " composed cross-product != brute force";
    }
  }
}

TEST(ComponentsPropertyTest, SingleComponentGraphsStillMatch) {
  // Cycle instances are connected: exercises the streaming path.
  for (int k : {3, 4}) {
    GeneratedInstance inst = MakeCycleInstance(k);
    auto problem = RepairProblem::Create(inst.db.get(), inst.fds);
    ASSERT_TRUE(problem.ok());
    const ConflictGraph& g = problem->graph();
    ASSERT_EQ(ComponentDecomposition(g).components().size(), 1u);
    Rng rng(7 + k);
    Priority priority = RandomRankingPriority(rng, g, 0.5);
    for (RepairFamily family : kAllFamilies) {
      EXPECT_EQ(EnumeratedFamily(g, priority, family),
                BruteForceFamily(g, priority, family))
          << RepairFamilyName(family) << " k=" << k;
    }
  }
}

// ----------------------------------------------- limit propagation --

TEST(ComponentsTest, EarlyStopPropagatesThroughFamilies) {
  // 8 disjoint edges: 256 repairs in every family under empty priority.
  GeneratedInstance rn = MakeRnInstance(8);
  auto problem = RepairProblem::Create(rn.db.get(), rn.fds);
  ASSERT_TRUE(problem.ok());
  Priority empty = Priority::Empty(problem->graph());
  for (RepairFamily family : kAllFamilies) {
    int seen = 0;
    bool complete = EnumeratePreferredRepairs(
        problem->graph(), empty, family,
        [&seen](const DynamicBitset&) { return ++seen < 7; });
    EXPECT_FALSE(complete) << RepairFamilyName(family);
    EXPECT_EQ(seen, 7) << RepairFamilyName(family);
  }
}

TEST(ComponentsTest, LimitPropagatesAsResourceExhausted) {
  GeneratedInstance rn = MakeRnInstance(10);
  auto problem = RepairProblem::Create(rn.db.get(), rn.fds);
  ASSERT_TRUE(problem.ok());
  Priority empty = Priority::Empty(problem->graph());
  for (RepairFamily family : kAllFamilies) {
    auto limited = PreferredRepairs(problem->graph(), empty, family, 50);
    ASSERT_FALSE(limited.ok()) << RepairFamilyName(family);
    EXPECT_EQ(limited.status().code(), StatusCode::kResourceExhausted);
    auto full = PreferredRepairs(problem->graph(), empty, family, 2000);
    ASSERT_TRUE(full.ok()) << RepairFamilyName(family);
    EXPECT_EQ(full->size(), 1024u) << RepairFamilyName(family);
  }
}

}  // namespace
}  // namespace prefrep
