// Randomized property tests for the classical FD-theory machinery
// (closure, implication, candidate keys, minimal cover, BCNF).

#include <gtest/gtest.h>

#include "base/random.h"
#include "constraints/fd_theory.h"

namespace prefrep {
namespace {

constexpr int kArity = 5;

Schema WideSchema() {
  std::vector<Attribute> attrs;
  for (int i = 0; i < kArity; ++i) {
    attrs.push_back(Attribute{"A" + std::to_string(i), ValueType::kNumber});
  }
  auto schema = Schema::Create("R", std::move(attrs));
  CHECK(schema.ok());
  return *schema;
}

std::vector<FunctionalDependency> RandomFds(Rng& rng, const Schema& schema,
                                            int count) {
  std::vector<FunctionalDependency> fds;
  for (int i = 0; i < count; ++i) {
    std::vector<int> lhs, rhs;
    for (int a = 0; a < schema.arity(); ++a) {
      if (rng.Bernoulli(0.35)) lhs.push_back(a);
      if (rng.Bernoulli(0.35)) rhs.push_back(a);
    }
    if (lhs.empty()) lhs.push_back(static_cast<int>(rng.UniformInt(kArity)));
    if (rhs.empty()) rhs.push_back(static_cast<int>(rng.UniformInt(kArity)));
    auto fd = FunctionalDependency::Create(schema, lhs, rhs);
    CHECK(fd.ok());
    fds.push_back(*std::move(fd));
  }
  return fds;
}

AttributeSet RandomAttrs(Rng& rng) {
  AttributeSet set(kArity);
  for (int a = 0; a < kArity; ++a) {
    if (rng.Bernoulli(0.4)) set.Set(a);
  }
  return set;
}

class FdTheoryProperty : public ::testing::TestWithParam<int> {};

TEST_P(FdTheoryProperty, ClosureIsExtensiveIdempotentMonotone) {
  Rng rng(100 + GetParam());
  Schema schema = WideSchema();
  std::vector<FunctionalDependency> fds = RandomFds(rng, schema, 4);
  for (int i = 0; i < 20; ++i) {
    AttributeSet x = RandomAttrs(rng);
    AttributeSet cx = AttributeClosure(schema, fds, x);
    // Extensive: X ⊆ X+.
    EXPECT_TRUE(x.IsSubsetOf(cx));
    // Idempotent: (X+)+ = X+.
    EXPECT_EQ(AttributeClosure(schema, fds, cx), cx);
    // Monotone: X ⊆ Y implies X+ ⊆ Y+.
    AttributeSet y = x;
    for (int a = 0; a < kArity; ++a) {
      if (rng.Bernoulli(0.3)) y.Set(a);
    }
    EXPECT_TRUE(cx.IsSubsetOf(AttributeClosure(schema, fds, y)));
  }
}

TEST_P(FdTheoryProperty, MinimalCoverIsEquivalent) {
  Rng rng(200 + GetParam());
  Schema schema = WideSchema();
  std::vector<FunctionalDependency> fds = RandomFds(rng, schema, 5);
  std::vector<FunctionalDependency> cover = MinimalCover(schema, fds);
  // Same closures on every attribute set => same implied FDs.
  for (int i = 0; i < 20; ++i) {
    AttributeSet x = RandomAttrs(rng);
    EXPECT_EQ(AttributeClosure(schema, fds, x),
              AttributeClosure(schema, cover, x));
  }
  // Cover shape: singleton RHS everywhere.
  for (const auto& fd : cover) {
    EXPECT_EQ(fd.rhs().size(), 1u);
  }
  // No redundant FD: dropping any one changes the theory.
  for (size_t drop = 0; drop < cover.size(); ++drop) {
    std::vector<FunctionalDependency> rest;
    for (size_t j = 0; j < cover.size(); ++j) {
      if (j != drop) rest.push_back(cover[j]);
    }
    EXPECT_FALSE(Implies(schema, rest, cover[drop]))
        << "redundant FD in minimal cover";
  }
}

TEST_P(FdTheoryProperty, CandidateKeysAreMinimalAndComplete) {
  Rng rng(300 + GetParam());
  Schema schema = WideSchema();
  std::vector<FunctionalDependency> fds = RandomFds(rng, schema, 4);
  std::vector<AttributeSet> keys = CandidateKeys(schema, fds);
  ASSERT_FALSE(keys.empty());  // the full attribute set is always a superkey
  for (const AttributeSet& key : keys) {
    EXPECT_TRUE(IsSuperkey(schema, fds, key));
    // Minimal: dropping any attribute destroys the superkey property.
    ForEachSetBit(key, [&](int a) {
      AttributeSet smaller = key;
      smaller.Reset(a);
      EXPECT_FALSE(IsSuperkey(schema, fds, smaller));
    });
    // Pairwise incomparable.
    for (const AttributeSet& other : keys) {
      if (other == key) continue;
      EXPECT_FALSE(key.IsSubsetOf(other));
    }
  }
  // Completeness: every random superkey contains some candidate key.
  for (int i = 0; i < 20; ++i) {
    AttributeSet x = RandomAttrs(rng);
    if (!IsSuperkey(schema, fds, x)) continue;
    bool contains_key = false;
    for (const AttributeSet& key : keys) {
      if (key.IsSubsetOf(x)) contains_key = true;
    }
    EXPECT_TRUE(contains_key) << x.ToString();
  }
}

TEST_P(FdTheoryProperty, BcnfAgreesWithDefinition) {
  Rng rng(400 + GetParam());
  Schema schema = WideSchema();
  std::vector<FunctionalDependency> fds = RandomFds(rng, schema, 3);
  bool bcnf = IsBcnf(schema, fds);
  bool violation = false;
  for (const auto& fd : fds) {
    AttributeSet lhs = AttributeSet::FromIndices(kArity, fd.lhs());
    AttributeSet rhs = AttributeSet::FromIndices(kArity, fd.rhs());
    if (rhs.IsSubsetOf(lhs)) continue;  // trivial
    if (!IsSuperkey(schema, fds, lhs)) violation = true;
  }
  EXPECT_EQ(bcnf, !violation);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FdTheoryProperty, ::testing::Range(0, 6));

}  // namespace
}  // namespace prefrep
