// Tests for src/relational/delta.*: DatabaseDelta staging validation, the
// canonical apply order (Apply pinned against ApplyNaive, randomized),
// DeltaRemap invariants, copy-on-write storage sharing for untouched
// relations, cancellation, and the ValueCensus active-domain check.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "base/exec_context.h"
#include "base/random.h"
#include "relational/database.h"
#include "relational/delta.h"
#include "relational/relation.h"
#include "workload/generators.h"

namespace prefrep {
namespace {

// Two relations so untouched-relation sharing is observable: R(K, V) and
// S(A).
Database TwoRelationDb() {
  Database db;
  auto r = Schema::Create("R", {Attribute{"K", ValueType::kNumber},
                                Attribute{"V", ValueType::kNumber}});
  auto s = Schema::Create("S", {Attribute{"A", ValueType::kName}});
  CHECK(r.ok() && s.ok());
  CHECK(db.AddRelation(*r).ok());
  CHECK(db.AddRelation(*s).ok());
  for (int i = 0; i < 4; ++i) {
    CHECK(db.Insert("R", Tuple::Of(Value::Number(i), Value::Number(i * 10)))
              .ok());
  }
  CHECK(db.Insert("S", Tuple::Of(Value::Name("a"))).ok());
  CHECK(db.Insert("S", Tuple::Of(Value::Name("b"))).ok());
  return db;
}

// ------------------------------------------------------------- staging --

TEST(DeltaStagingTest, InsertValidatesRelationAndSchema) {
  Database db = TwoRelationDb();
  DatabaseDelta delta(&db);
  EXPECT_FALSE(delta.Insert("Nope", Tuple::Of(Value::Number(1))).ok());
  // Wrong arity.
  EXPECT_FALSE(delta.Insert("R", Tuple::Of(Value::Number(1))).ok());
  // Wrong type in position 0.
  EXPECT_FALSE(
      delta.Insert("R", Tuple::Of(Value::Name("x"), Value::Number(1))).ok());
  EXPECT_TRUE(delta.empty());
  EXPECT_TRUE(
      delta.Insert("R", Tuple::Of(Value::Number(9), Value::Number(9))).ok());
  EXPECT_EQ(delta.insert_count(), 1);
}

TEST(DeltaStagingTest, InsertRejectsDuplicates) {
  Database db = TwoRelationDb();
  DatabaseDelta delta(&db);
  // Duplicate of a resident base tuple.
  EXPECT_FALSE(
      delta.Insert("R", Tuple::Of(Value::Number(0), Value::Number(0))).ok());
  // Duplicate of an earlier pending insert.
  EXPECT_TRUE(
      delta.Insert("R", Tuple::Of(Value::Number(9), Value::Number(9))).ok());
  EXPECT_FALSE(
      delta.Insert("R", Tuple::Of(Value::Number(9), Value::Number(9))).ok());
}

TEST(DeltaStagingTest, DeleteThenReinsertSameValuesIsAllowed) {
  Database db = TwoRelationDb();
  DatabaseDelta delta(&db);
  TupleId id = *db.FindTuple("R", Tuple::Of(Value::Number(0), Value::Number(0)));
  ASSERT_TRUE(delta.Delete(id).ok());
  EXPECT_TRUE(
      delta.Insert("R", Tuple::Of(Value::Number(0), Value::Number(0))).ok());
  Database out = *delta.Apply();
  EXPECT_EQ(out.tuple_count(), db.tuple_count());
}

TEST(DeltaStagingTest, DeleteValidatesIdAndDoubleDelete) {
  Database db = TwoRelationDb();
  DatabaseDelta delta(&db);
  EXPECT_FALSE(delta.Delete(TupleId{-1}).ok());
  EXPECT_FALSE(delta.Delete(TupleId{db.tuple_count()}).ok());
  EXPECT_TRUE(delta.Delete(TupleId{0}).ok());
  EXPECT_FALSE(delta.Delete(TupleId{0}).ok());  // already deleted
  EXPECT_TRUE(delta.IsDeleted(TupleId{0}));
}

TEST(DeltaStagingTest, DeleteByValueResolvesThroughIndex) {
  Database db = TwoRelationDb();
  DatabaseDelta delta(&db);
  EXPECT_TRUE(delta.Delete("S", Tuple::Of(Value::Name("a"))).ok());
  EXPECT_FALSE(delta.Delete("S", Tuple::Of(Value::Name("zzz"))).ok());
  EXPECT_EQ(delta.delete_count(), 1);
}

TEST(DeltaStagingTest, RemoveInsertUnstagesPendingTuple) {
  Database db = TwoRelationDb();
  DatabaseDelta delta(&db);
  Tuple staged = Tuple::Of(Value::Number(9), Value::Number(9));
  ASSERT_TRUE(delta.Insert("R", staged).ok());
  // Nothing pending for these values / this relation.
  EXPECT_EQ(delta.RemoveInsert("R", Tuple::Of(Value::Number(8),
                                              Value::Number(8)))
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(delta.RemoveInsert("Nope", staged).code(), StatusCode::kNotFound);
  ASSERT_TRUE(delta.RemoveInsert("R", staged).ok());
  EXPECT_TRUE(delta.empty());
  // Un-staging frees the duplicate check: the same values stage again.
  EXPECT_TRUE(delta.Insert("R", staged).ok());
}

TEST(DeltaStagingTest, DeleteByValueUnstagesPendingInsert) {
  Database db = TwoRelationDb();
  DatabaseDelta delta(&db);
  Tuple staged = Tuple::Of(Value::Number(9), Value::Number(9));
  ASSERT_TRUE(delta.Insert("R", staged).ok());
  // Deleting the staged values un-stages the insert rather than failing
  // with kNotFound; the insert/delete pair is a no-op delta.
  ASSERT_TRUE(delta.Delete("R", staged).ok());
  EXPECT_TRUE(delta.empty());
  EXPECT_EQ(delta.Apply()->tuple_count(), db.tuple_count());
  // Later pending inserts keep their delta order across an un-stage.
  Tuple first = Tuple::Of(Value::Number(7), Value::Number(7));
  Tuple second = Tuple::Of(Value::Number(8), Value::Number(8));
  ASSERT_TRUE(delta.Insert("R", first).ok());
  ASSERT_TRUE(delta.Insert("R", staged).ok());
  ASSERT_TRUE(delta.Insert("R", second).ok());
  ASSERT_TRUE(delta.Delete("R", staged).ok());
  ASSERT_EQ(delta.insert_count(), 2);
  EXPECT_TRUE(delta.inserts()[0].tuple == first);
  EXPECT_TRUE(delta.inserts()[1].tuple == second);
}

TEST(DeltaStagingTest, DeleteByValueOnReinsertedTupleUnstagesTheReinsert) {
  Database db = TwoRelationDb();
  DatabaseDelta delta(&db);
  Tuple values = Tuple::Of(Value::Number(0), Value::Number(0));
  TupleId id = *db.FindTuple("R", values);
  ASSERT_TRUE(delta.Delete(id).ok());
  ASSERT_TRUE(delta.Insert("R", values).ok());  // reborn copy
  // The base copy is already staged for deletion, so delete-by-value must
  // target the reborn pending insert.
  ASSERT_TRUE(delta.Delete("R", values).ok());
  EXPECT_EQ(delta.insert_count(), 0);
  EXPECT_EQ(delta.delete_count(), 1);
  // With no pending re-insert left, a second delete-by-value reports the
  // already-staged deletion.
  EXPECT_EQ(delta.Delete("R", values).code(), StatusCode::kAlreadyExists);
}

TEST(DeltaStagingTest, TouchedRelationsSortedUnique) {
  Database db = TwoRelationDb();
  DatabaseDelta delta(&db);
  ASSERT_TRUE(delta.Delete("S", Tuple::Of(Value::Name("a"))).ok());
  ASSERT_TRUE(
      delta.Insert("R", Tuple::Of(Value::Number(9), Value::Number(9))).ok());
  ASSERT_TRUE(
      delta.Insert("R", Tuple::Of(Value::Number(8), Value::Number(8))).ok());
  EXPECT_EQ(delta.TouchedRelations(), (std::vector<int>{0, 1}));
  EXPECT_NE(delta.Describe().find("+2/-1"), std::string::npos);
}

// --------------------------------------------------------------- apply --

// Databases compared field by field: schemas, tuples in global-id order,
// metadata.
void ExpectSameDatabase(const Database& a, const Database& b) {
  ASSERT_EQ(a.tuple_count(), b.tuple_count());
  ASSERT_EQ(a.relation_count(), b.relation_count());
  for (int r = 0; r < a.relation_count(); ++r) {
    EXPECT_EQ(a.relations()[r].schema().relation_name(),
              b.relations()[r].schema().relation_name());
    ASSERT_EQ(a.relations()[r].size(), b.relations()[r].size());
  }
  for (TupleId id = 0; id < a.tuple_count(); ++id) {
    EXPECT_EQ(a.RelationIndexOf(id), b.RelationIndexOf(id));
    EXPECT_EQ(a.RowOf(id), b.RowOf(id));
    EXPECT_TRUE(a.TupleOf(id) == b.TupleOf(id));
    EXPECT_EQ(a.MetaOf(id).source_id, b.MetaOf(id).source_id);
    EXPECT_EQ(a.MetaOf(id).timestamp, b.MetaOf(id).timestamp);
  }
}

TEST(DeltaApplyTest, EmptyDeltaIsIdentity) {
  Database db = TwoRelationDb();
  DatabaseDelta delta(&db);
  DeltaRemap remap;
  Database out = *delta.Apply(&remap);
  ExpectSameDatabase(out, db);
  EXPECT_EQ(remap.first_shifted, db.tuple_count());
  for (TupleId id = 0; id < db.tuple_count(); ++id) {
    EXPECT_EQ(remap.old_to_new[id], id);
    EXPECT_TRUE(remap.IdentityOn(id));
  }
}

TEST(DeltaApplyTest, UntouchedRelationsShareStorage) {
  Database db = TwoRelationDb();
  DatabaseDelta delta(&db);
  ASSERT_TRUE(
      delta.Insert("R", Tuple::Of(Value::Number(9), Value::Number(9))).ok());
  Database out = *delta.Apply();
  // S untouched: copy-on-write storage is shared with the base. R was
  // rebuilt (insert) and must not share.
  EXPECT_TRUE(out.relations()[1].SharesStorageWith(db.relations()[1]));
  EXPECT_FALSE(out.relations()[0].SharesStorageWith(db.relations()[0]));
}

TEST(DeltaApplyTest, RemapInvariants) {
  Database db = TwoRelationDb();
  DatabaseDelta delta(&db);
  TupleId dead = *db.FindTuple("R", Tuple::Of(Value::Number(1), Value::Number(10)));
  ASSERT_TRUE(delta.Delete(dead).ok());
  ASSERT_TRUE(
      delta.Insert("S", Tuple::Of(Value::Name("c"))).ok());
  DeltaRemap remap;
  Database out = *delta.Apply(&remap);
  EXPECT_EQ(remap.old_tuple_count, db.tuple_count());
  EXPECT_EQ(remap.new_tuple_count, out.tuple_count());
  EXPECT_EQ(remap.first_shifted, dead);
  EXPECT_EQ(remap.old_to_new[dead], -1);
  // Monotone on survivors; identity below first_shifted.
  TupleId prev = -1;
  for (TupleId id = 0; id < remap.old_tuple_count; ++id) {
    TupleId mapped = remap.old_to_new[id];
    if (mapped < 0) continue;
    EXPECT_GT(mapped, prev);
    prev = mapped;
    if (id < remap.first_shifted) {
      EXPECT_EQ(mapped, id);
    }
    // Surviving tuples denote the same values.
    EXPECT_TRUE(db.TupleOf(id) == out.TupleOf(mapped));
  }
  // Inserts at the top of the id space, in delta order.
  ASSERT_EQ(remap.inserted_ids.size(), 1u);
  EXPECT_EQ(remap.inserted_ids[0], out.tuple_count() - 1);
  EXPECT_TRUE(out.TupleOf(remap.inserted_ids[0]) ==
              Tuple::Of(Value::Name("c")));
}

TEST(DeltaApplyTest, RandomizedApplyMatchesNaive) {
  Rng rng(20260808);
  for (int round = 0; round < 30; ++round) {
    GeneratedInstance inst =
        MakeRandomInstance(rng, /*tuple_target=*/40, /*arity=*/3,
                           /*domain_size=*/8, /*fd_count=*/2);
    DatabaseDelta delta(inst.db.get());
    // Random deletes (~20%) and inserts (~10 attempts, duplicates skipped).
    for (TupleId id = 0; id < inst.db->tuple_count(); ++id) {
      if (rng.UniformDouble() < 0.2) CHECK(delta.Delete(id).ok());
    }
    const std::string rel =
        inst.db->relations()[0].schema().relation_name();
    for (int i = 0; i < 10; ++i) {
      Tuple t = Tuple::Of(Value::Number(rng.UniformInt(8)),
                          Value::Number(rng.UniformInt(8)),
                          Value::Number(rng.UniformInt(8)));
      (void)delta.Insert(rel, t);  // duplicate attempts are rejected
    }
    DeltaRemap fast_remap, naive_remap;
    Database fast = *delta.Apply(&fast_remap);
    Database naive = *delta.ApplyNaive(&naive_remap);
    ExpectSameDatabase(fast, naive);
    EXPECT_EQ(fast_remap.old_to_new, naive_remap.old_to_new);
    EXPECT_EQ(fast_remap.inserted_ids, naive_remap.inserted_ids);
    EXPECT_EQ(fast_remap.first_shifted, naive_remap.first_shifted);
  }
}

TEST(DeltaApplyTest, CancelledApplyReturnsCancelled) {
  Database db = TwoRelationDb();
  DatabaseDelta delta(&db);
  ASSERT_TRUE(delta.Delete(TupleId{0}).ok());
  ExecutionContext context;
  context.RequestCancel();
  Result<Database> out = delta.Apply(nullptr, &context);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kCancelled);
}

// -------------------------------------------------------------- census --

TEST(ValueCensusTest, PreservedWhenValuesStayResident) {
  Database db = TwoRelationDb();
  // Value 0 occurs in R twice (K=0 and V=0 of tuple 0)? K=0,V=0 tuple only.
  DatabaseDelta delta(&db);
  // Insert a tuple made entirely of already-resident values.
  ASSERT_TRUE(
      delta.Insert("R", Tuple::Of(Value::Number(1), Value::Number(0))).ok());
  ValueCensus census = ValueCensus::Of(db);
  EXPECT_TRUE(census.Apply(delta));
}

TEST(ValueCensusTest, NewValueChangesDomain) {
  Database db = TwoRelationDb();
  DatabaseDelta delta(&db);
  ASSERT_TRUE(
      delta.Insert("R", Tuple::Of(Value::Number(777), Value::Number(0))).ok());
  ValueCensus census = ValueCensus::Of(db);
  EXPECT_FALSE(census.Apply(delta));
}

TEST(ValueCensusTest, LastOccurrenceRemovalChangesDomain) {
  Database db = TwoRelationDb();
  DatabaseDelta delta(&db);
  // (3, 30): both 3 and 30 occur exactly once in the database.
  TupleId id = *db.FindTuple("R", Tuple::Of(Value::Number(3), Value::Number(30)));
  ASSERT_TRUE(delta.Delete(id).ok());
  ValueCensus census = ValueCensus::Of(db);
  EXPECT_FALSE(census.Apply(delta));
}

TEST(ValueCensusTest, DeleteAndReinsertSameValuesPreserves) {
  Database db = TwoRelationDb();
  DatabaseDelta delta(&db);
  TupleId id = *db.FindTuple("R", Tuple::Of(Value::Number(3), Value::Number(30)));
  ASSERT_TRUE(delta.Delete(id).ok());
  // Net change for 3 and 30 is zero: the domain survives even though each
  // value's only occurrence was deleted, because the reinsert restores it.
  ASSERT_TRUE(
      delta.Insert("R", Tuple::Of(Value::Number(3), Value::Number(30))).ok());
  ValueCensus census = ValueCensus::Of(db);
  EXPECT_TRUE(census.Apply(delta));
}

}  // namespace
}  // namespace prefrep
