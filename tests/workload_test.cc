// Tests for src/workload: structural invariants and determinism of every
// generator (the benchmarks' workloads must be exactly what DESIGN.md
// claims they are).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "constraints/fd_theory.h"
#include "cqa/cqa.h"
#include "query/parser.h"
#include "repair/repair.h"
#include "workload/generators.h"

namespace prefrep {
namespace {

RepairProblem MustProblem(const GeneratedInstance& inst) {
  auto problem = RepairProblem::Create(inst.db.get(), inst.fds);
  CHECK(problem.ok()) << problem.status().ToString();
  return *std::move(problem);
}

TEST(WorkloadTest, RnStructure) {
  GeneratedInstance rn = MakeRnInstance(5);
  EXPECT_EQ(rn.db->tuple_count(), 10);
  RepairProblem problem = MustProblem(rn);
  // n disjoint conflict edges.
  EXPECT_EQ(problem.graph().edge_count(), 5);
  auto components = problem.graph().ConnectedComponents();
  EXPECT_EQ(components.size(), 5u);
  for (const auto& c : components) EXPECT_EQ(c.size(), 2u);
}

TEST(WorkloadTest, KeyGroupsAreCliques) {
  GeneratedInstance inst = MakeKeyGroupsInstance(3, 4);
  RepairProblem problem = MustProblem(inst);
  // 3 cliques of size 4: 3 * C(4,2) = 18 edges.
  EXPECT_EQ(problem.graph().edge_count(), 18);
  // The FD is a key dependency (Prop. 3 territory).
  EXPECT_TRUE(IsSingleKeyDependency(inst.db->relations()[0].schema(),
                                    inst.fds));
}

TEST(WorkloadTest, DuplicatesStructure) {
  GeneratedInstance inst = MakeDuplicatesInstance(2, 3, 2);
  RepairProblem problem = MustProblem(inst);
  // Per group: 3 duplicates (pairwise non-adjacent) + 2 rivals adjacent to
  // everything else in the group: edges = duplicates*rivals + C(rivals,2)
  // = 3*2 + 1 = 7 per group.
  EXPECT_EQ(problem.graph().edge_count(), 14);
  // Not a key dependency (that is the point of Example 8).
  EXPECT_FALSE(IsSingleKeyDependency(inst.db->relations()[0].schema(),
                                     inst.fds));
}

TEST(WorkloadTest, ChainIsAPathWithAlternatingFds) {
  GeneratedInstance inst = MakeChainInstance(8);
  RepairProblem problem = MustProblem(inst);
  EXPECT_EQ(problem.graph().edge_count(), 7);
  for (int i = 0; i + 1 < 8; ++i) {
    EXPECT_TRUE(problem.graph().HasEdge(i, i + 1));
  }
  // Ends have degree 1, middles 2.
  EXPECT_EQ(problem.graph().Degree(0), 1);
  EXPECT_EQ(problem.graph().Degree(4), 2);
  // Edges alternate between the two FDs: check via per-FD conflicts.
  std::vector<FunctionalDependency> fd1 = {inst.fds[0]};
  auto fd1_edges = FindConflicts(*inst.db, fd1);
  ASSERT_TRUE(fd1_edges.ok());
  for (auto [u, v] : *fd1_edges) {
    EXPECT_EQ(u % 2, 0);  // FD1 edges start at even positions
    EXPECT_EQ(v, u + 1);
  }
}

TEST(WorkloadTest, CycleIsChordless) {
  for (int k : {3, 5}) {
    GeneratedInstance inst = MakeCycleInstance(k);
    RepairProblem problem = MustProblem(inst);
    EXPECT_EQ(problem.graph().vertex_count(), 2 * k);
    EXPECT_EQ(problem.graph().edge_count(), 2 * k);
    for (int v = 0; v < 2 * k; ++v) {
      EXPECT_EQ(problem.graph().Degree(v), 2) << "k=" << k << " v=" << v;
    }
    // Connected single cycle.
    EXPECT_EQ(problem.graph().ConnectedComponents().size(), 1u);
  }
}

TEST(WorkloadTest, RandomInstanceDeterministicForSeed) {
  Rng rng1(1234), rng2(1234);
  GeneratedInstance a = MakeRandomInstance(rng1, 20, 3, 4, 2);
  GeneratedInstance b = MakeRandomInstance(rng2, 20, 3, 4, 2);
  ASSERT_EQ(a.db->tuple_count(), b.db->tuple_count());
  for (int i = 0; i < a.db->tuple_count(); ++i) {
    EXPECT_EQ(a.db->TupleOf(i), b.db->TupleOf(i));
  }
  ASSERT_EQ(a.fds.size(), b.fds.size());
  for (size_t i = 0; i < a.fds.size(); ++i) {
    EXPECT_TRUE(a.fds[i] == b.fds[i]);
  }
}

TEST(WorkloadTest, RandomPrioritiesRespectDensityExtremes) {
  GeneratedInstance inst = MakeCycleInstance(4);
  RepairProblem problem = MustProblem(inst);
  Rng rng(5);
  Priority none = RandomRankingPriority(rng, problem.graph(), 0.0);
  EXPECT_EQ(none.arc_count(), 0);
  Priority total = RandomRankingPriority(rng, problem.graph(), 1.0);
  EXPECT_TRUE(total.IsTotalFor(problem.graph()));
  Priority dag_total = RandomDagPriority(rng, problem.graph(), 1.0);
  EXPECT_TRUE(dag_total.IsTotalFor(problem.graph()));
}

TEST(WorkloadTest, IntegrationWorkloadSourcesAreConsistent) {
  Rng rng(99);
  GeneratedInstance inst = MakeIntegrationWorkload(rng, 4, 20, 0.6, 3);
  // Each source in isolation satisfies the key FD: one value per key.
  for (int s = 0; s < 4; ++s) {
    Database source_db;
    ASSERT_TRUE(
        source_db.AddRelation(inst.db->relations()[0].schema()).ok());
    for (int id = 0; id < inst.db->tuple_count(); ++id) {
      if (inst.db->MetaOf(id).source_id != s) continue;
      auto inserted = source_db.Insert("R", inst.db->TupleOf(id));
      ASSERT_TRUE(inserted.ok());
    }
    EXPECT_TRUE(*IsConsistent(source_db, inst.fds)) << "source " << s;
  }
}

TEST(WorkloadTest, IntegrationWorkloadConflictsOnlyAcrossSources) {
  Rng rng(7);
  GeneratedInstance inst = MakeIntegrationWorkload(rng, 3, 30, 0.7, 2);
  RepairProblem problem = MustProblem(inst);
  for (auto [u, v] : problem.graph().edges()) {
    EXPECT_NE(inst.db->MetaOf(u).source_id, inst.db->MetaOf(v).source_id);
  }
}

TEST(WorkloadTest, ComponentPathsGraphHasRequestedComponents) {
  Rng rng(2026);
  ConflictGraph g = MakeComponentPathsGraph(rng, {1, 3, 5, 1, 4});
  EXPECT_EQ(g.vertex_count(), 14);
  // Edges: (3-1) + (5-1) + (4-1) = 9; paths are acyclic so component
  // sizes are recoverable from the component list.
  EXPECT_EQ(g.edge_count(), 9);
  std::vector<size_t> sizes;
  for (const auto& component : g.ConnectedComponents()) {
    sizes.push_back(component.size());
  }
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes, (std::vector<size_t>{1, 1, 3, 4, 5}));
  // Every vertex of a path has degree <= 2.
  for (int v = 0; v < g.vertex_count(); ++v) {
    EXPECT_LE(g.Degree(v), 2);
  }
}

TEST(WorkloadTest, ComponentPathsGraphDeterministicForSeed) {
  Rng rng1(77), rng2(77);
  ConflictGraph a = MakeComponentPathsGraph(rng1, {4, 6, 2});
  ConflictGraph b = MakeComponentPathsGraph(rng2, {4, 6, 2});
  EXPECT_EQ(a.edges(), b.edges());
}

TEST(WorkloadTest, ComponentsInstanceGroupsAreComponents) {
  Rng rng(31337);
  std::vector<int> sizes = {4, 1, 6, 3, 1, 5};
  GeneratedInstance inst = MakeComponentsInstance(rng, sizes);
  RepairProblem problem = MustProblem(inst);
  int total = 0;
  for (int s : sizes) total += s;
  EXPECT_EQ(problem.graph().vertex_count(), total);
  // Conflicts only join tuples of the same key (= same group).
  for (auto [u, v] : problem.graph().edges()) {
    EXPECT_EQ(inst.db->TupleOf(u).value(0), inst.db->TupleOf(v).value(0));
  }
  // Groups of size >= 2 are connected (>= 2 V-classes, complete
  // multipartite); size-1 groups are isolated vertices.
  std::vector<size_t> component_sizes;
  for (const auto& component : problem.graph().ConnectedComponents()) {
    component_sizes.push_back(component.size());
  }
  std::sort(component_sizes.begin(), component_sizes.end());
  EXPECT_EQ(component_sizes, (std::vector<size_t>{1, 1, 3, 4, 5, 6}));
}

TEST(WorkloadTest, ComponentsInstanceConvenienceRespectsBounds) {
  Rng rng(8);
  GeneratedInstance inst = MakeComponentsInstance(rng, 5, 2, 4);
  RepairProblem problem = MustProblem(inst);
  auto components = problem.graph().ConnectedComponents();
  EXPECT_EQ(components.size(), 5u);  // min_size 2 forbids isolated vertices
  for (const auto& component : components) {
    EXPECT_GE(component.size(), 2u);
    EXPECT_LE(component.size(), 4u);
  }
}

TEST(WorkloadTest, MgrScenarioMatchesThePaperExactly) {
  MgrScenario s = MakeMgrScenario();
  EXPECT_EQ(s.db->tuple_count(), 4);
  EXPECT_EQ(s.db->TupleOf(s.mary_rd),
            Tuple::Of(Value::Name("Mary"), Value::Name("R&D"),
                      Value::Number(40000), Value::Number(3)));
  EXPECT_EQ(s.db->MetaOf(s.mary_rd).source_id, 1);
  EXPECT_EQ(s.db->MetaOf(s.mary_it).source_id, 3);
  EXPECT_EQ(s.db->MetaOf(s.john_pr).source_id, 3);
  EXPECT_EQ(s.fds.size(), 2u);
}

TEST(WorkloadTest, OpenGroundCqaOnIntegrationWorkload) {
  // GroundConsistentOpenAnswers (polynomial) agrees with the naive
  // intersection engine on monotone open queries.
  Rng rng(42);
  GeneratedInstance inst = MakeIntegrationWorkload(rng, 3, 8, 0.8, 2);
  RepairProblem problem = MustProblem(inst);
  Priority empty = Priority::Empty(problem.graph());
  auto query = ParseQuery("R(k, v)");
  ASSERT_TRUE(query.ok());
  auto fast = GroundConsistentOpenAnswers(problem, **query);
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();
  auto naive = PreferredConsistentAnswers(problem, empty, RepairFamily::kAll,
                                          **query);
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(fast->variables, naive->variables);
  EXPECT_EQ(fast->rows, naive->rows);
  // Sanity: certain rows are exactly the conflict-free facts here.
  for (const Tuple& row : fast->rows) {
    // Row order is (k, v) — variables sorted alphabetically.
    auto id = inst.db->FindTuple("R", row);
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(problem.graph().Degree(*id), 0);
  }
}

TEST(WorkloadTest, OpenGroundCqaRejectsNegation) {
  GeneratedInstance rn = MakeRnInstance(1);
  RepairProblem problem = MustProblem(rn);
  auto query = ParseQuery("not R(x, 0)");
  ASSERT_TRUE(query.ok());
  EXPECT_FALSE(GroundConsistentOpenAnswers(problem, **query).ok());
  auto quantified = ParseQuery("exists y . R(x, y)");
  ASSERT_TRUE(quantified.ok());
  EXPECT_FALSE(GroundConsistentOpenAnswers(problem, **quantified).ok());
}

}  // namespace
}  // namespace prefrep
